//! Flash timing parameters.
//!
//! These are the calibration inputs of the whole study (see the
//! "Calibration" section of `DESIGN.md`): datasheet-class numbers for a
//! PM983-era 3D TLC device. They are *inputs* to the mechanisms, not
//! fitted outputs — every figure's shape must emerge from firmware policy
//! on top of these constants.

use kvssd_sim::SimDuration;

/// NAND and interconnect timing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlashTiming {
    /// Array-to-register page read time (tR).
    pub t_read: SimDuration,
    /// Register-to-array page program time (tPROG).
    pub t_program: SimDuration,
    /// Block erase time (tBERS).
    pub t_erase: SimDuration,
    /// Channel (ONFI bus) bandwidth in bytes/second. Transfers between
    /// controller and die registers serialize per channel.
    pub channel_bytes_per_sec: u64,
    /// Controller-side ECC decode cost per transferred byte on reads,
    /// expressed as ns per KiB. Charged on the channel pipeline: the read
    /// path (transfer + decode) is what saturates first for large
    /// transfers at high queue depth.
    pub ecc_decode_ns_per_kib: u64,
    /// Controller-side ECC encode cost per byte on programs (ns per KiB).
    pub ecc_encode_ns_per_kib: u64,
    /// Fixed per-flash-command die overhead (command/address cycles).
    pub t_cmd_overhead: SimDuration,
}

impl FlashTiming {
    /// Datasheet-class constants for a PM983-era TLC device:
    /// tR 90 us, tPROG 700 us, tBERS 5 ms, 400 MB/s per channel,
    /// 1 us/KiB ECC decode, 0.25 us/KiB encode, 3 us command overhead.
    pub fn pm983_like() -> Self {
        FlashTiming {
            t_read: SimDuration::from_micros(90),
            t_program: SimDuration::from_micros(700),
            t_erase: SimDuration::from_millis(5),
            channel_bytes_per_sec: 400_000_000,
            ecc_decode_ns_per_kib: 1_000,
            ecc_encode_ns_per_kib: 250,
            t_cmd_overhead: SimDuration::from_micros(3),
        }
    }

    /// Channel occupancy for moving `bytes` plus the ECC work that rides
    /// the same pipeline, for the read direction.
    pub fn read_pipeline_time(&self, bytes: u64) -> SimDuration {
        SimDuration::for_bytes(bytes, self.channel_bytes_per_sec)
            + SimDuration::from_nanos(bytes.div_ceil(1024) * self.ecc_decode_ns_per_kib)
    }

    /// Channel occupancy for moving `bytes` toward the die, including ECC
    /// encode.
    pub fn write_pipeline_time(&self, bytes: u64) -> SimDuration {
        SimDuration::for_bytes(bytes, self.channel_bytes_per_sec)
            + SimDuration::from_nanos(bytes.div_ceil(1024) * self.ecc_encode_ns_per_kib)
    }
}

impl Default for FlashTiming {
    fn default() -> Self {
        Self::pm983_like()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pipeline_costs_scale_with_bytes() {
        let t = FlashTiming::pm983_like();
        let small = t.read_pipeline_time(1024);
        let large = t.read_pipeline_time(4096);
        assert!(large > small * 3 && large < small * 5);
    }

    #[test]
    fn read_pipeline_includes_decode() {
        let t = FlashTiming::pm983_like();
        // 4 KiB: 10.24 us transfer + 4 us decode.
        let d = t.read_pipeline_time(4096);
        assert!((d.as_micros_f64() - 14.24).abs() < 0.1, "got {d}");
    }

    #[test]
    fn write_pipeline_cheaper_ecc_than_read() {
        let t = FlashTiming::pm983_like();
        assert!(t.write_pipeline_time(32 * 1024) < t.read_pipeline_time(32 * 1024));
    }

    #[test]
    fn zero_bytes_cost_nothing() {
        let t = FlashTiming::pm983_like();
        assert_eq!(t.read_pipeline_time(0), SimDuration::ZERO);
        assert_eq!(t.write_pipeline_time(0), SimDuration::ZERO);
    }
}
