//! The NAND flash device model.
//!
//! [`FlashDevice`] owns the die and channel resource timelines and
//! enforces the physical contract real FTLs live under:
//!
//! * a page must be erased before it is programmed,
//! * pages within a block are programmed strictly in order,
//! * only programmed pages can be read,
//! * dies serve one array operation at a time; transfers serialize on the
//!   die's channel,
//! * programs and erases can fail (per the device's [`FaultPlan`]),
//!   retiring the block.
//!
//! Contract violations are **errors returned to the caller** (they would
//! be firmware bugs); injected faults are expected runtime outcomes and
//! are reported in the `Ok` result so the caller still learns when the
//! operation finished occupying the hardware.

use kvssd_sim::{Resource, SimDuration, SimTime};

use crate::fault::FaultPlan;
use crate::geometry::{BlockId, Geometry, PageAddr};
use crate::timing::FlashTiming;

/// A firmware-level usage error: the caller violated the NAND contract.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlashError {
    /// Address outside the device geometry.
    OutOfRange(PageAddr),
    /// Programmed a page out of order within its block.
    OutOfOrderProgram {
        /// The offending address.
        addr: PageAddr,
        /// The page that must be programmed next in that block.
        expected: u32,
    },
    /// Read a page that was never programmed since the last erase.
    ReadingUnwritten(PageAddr),
    /// Operation on a retired (bad) block.
    BadBlock(BlockId),
    /// Transfer length exceeds the page size.
    TransferTooLarge {
        /// Bytes requested.
        requested: u64,
        /// Physical page size.
        page_bytes: u32,
    },
}

impl std::fmt::Display for FlashError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FlashError::OutOfRange(a) => write!(f, "page {a} outside geometry"),
            FlashError::OutOfOrderProgram { addr, expected } => {
                write!(
                    f,
                    "out-of-order program of {addr}, expected page {expected}"
                )
            }
            FlashError::ReadingUnwritten(a) => write!(f, "read of unwritten page {a}"),
            FlashError::BadBlock(b) => write!(f, "operation on bad block b{}", b.0),
            FlashError::TransferTooLarge {
                requested,
                page_bytes,
            } => write!(
                f,
                "transfer of {requested} B exceeds page of {page_bytes} B"
            ),
        }
    }
}

impl std::error::Error for FlashError {}

/// Outcome of a program operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProgramResult {
    /// When the die finished the program.
    pub done: SimTime,
    /// True when the program failed and the block was retired; the
    /// firmware must re-place the data elsewhere.
    pub failed: bool,
}

/// Outcome of an erase operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EraseResult {
    /// When the die finished the erase.
    pub done: SimTime,
    /// True when the erase failed and the block was retired.
    pub failed: bool,
}

/// Operation and byte counters, plus failure tallies.
#[derive(Debug, Clone, Default)]
pub struct FlashStats {
    /// Page reads issued.
    pub reads: u64,
    /// Page programs issued (including failed ones).
    pub programs: u64,
    /// Block erases issued (including failed ones).
    pub erases: u64,
    /// Bytes transferred out on reads.
    pub bytes_read: u64,
    /// Bytes transferred in on programs.
    pub bytes_written: u64,
    /// Injected program failures.
    pub program_failures: u64,
    /// Injected erase failures.
    pub erase_failures: u64,
}

#[derive(Debug, Clone, Default)]
struct BlockState {
    next_page: u32,
    erase_count: u32,
    bad: bool,
}

/// The simulated NAND array (see module docs).
#[derive(Debug)]
pub struct FlashDevice {
    geometry: Geometry,
    timing: FlashTiming,
    fault: FaultPlan,
    dies: Vec<Resource>,
    channels: Vec<Resource>,
    blocks: Vec<BlockState>,
    stats: FlashStats,
}

impl FlashDevice {
    /// Creates a device with all blocks erased and no fault injection.
    pub fn new(geometry: Geometry, timing: FlashTiming) -> Self {
        Self::with_faults(geometry, timing, FaultPlan::none())
    }

    /// Creates a device with the given fault-injection plan.
    pub fn with_faults(geometry: Geometry, timing: FlashTiming, fault: FaultPlan) -> Self {
        FlashDevice {
            dies: vec![Resource::new(); geometry.dies() as usize],
            channels: vec![Resource::new(); geometry.channels as usize],
            blocks: vec![BlockState::default(); geometry.total_blocks() as usize],
            geometry,
            timing,
            fault,
            stats: FlashStats::default(),
        }
    }

    /// The device geometry.
    pub fn geometry(&self) -> &Geometry {
        &self.geometry
    }

    /// The device timing parameters.
    pub fn timing(&self) -> &FlashTiming {
        &self.timing
    }

    /// Operation counters.
    pub fn stats(&self) -> &FlashStats {
        &self.stats
    }

    /// Next page to be programmed in `block` (== pages written since the
    /// last erase).
    pub fn written_pages(&self, block: BlockId) -> u32 {
        self.blocks[block.0 as usize].next_page
    }

    /// Erase cycles `block` has seen.
    pub fn erase_count(&self, block: BlockId) -> u32 {
        self.blocks[block.0 as usize].erase_count
    }

    /// True when `block` has been retired.
    pub fn is_bad(&self, block: BlockId) -> bool {
        self.blocks[block.0 as usize].bad
    }

    /// Marks a block fully programmed without consuming simulated time.
    ///
    /// Simulation-setup helper for content that exists at mount time
    /// (e.g. the KV firmware's flash-resident index region); never use it
    /// on a block an FTL is actively filling.
    pub fn preprogram_block(&mut self, block: BlockId) {
        let st = &mut self.blocks[block.0 as usize];
        assert!(!st.bad, "cannot preprogram a bad block");
        st.next_page = self.geometry.pages_per_block;
    }

    /// Reads `bytes` from a programmed page starting at time `now`.
    ///
    /// The die is busy for command overhead + tR; the data then streams
    /// over the die's channel (transfer + ECC decode). Returns the
    /// completion time.
    pub fn read_page(
        &mut self,
        now: SimTime,
        addr: PageAddr,
        bytes: u64,
    ) -> Result<SimTime, FlashError> {
        self.check_addr(addr)?;
        self.check_transfer(bytes)?;
        // Note: reads from *bad* (retired) blocks are allowed — a grown
        // bad block only loses its ability to be programmed/erased; pages
        // programmed before retirement remain readable, which is what
        // lets firmware migrate surviving data off it.
        let st = &self.blocks[addr.block.0 as usize];
        if addr.page >= st.next_page {
            return Err(FlashError::ReadingUnwritten(addr));
        }
        let die = self.geometry.die_of(addr.block) as usize;
        let ch = self.geometry.channel_of(addr.block) as usize;
        let array = self.dies[die].acquire(now, self.timing.t_cmd_overhead + self.timing.t_read);
        let xfer =
            self.channels[ch].acquire_after(now, array.end, self.timing.read_pipeline_time(bytes));
        self.stats.reads += 1;
        self.stats.bytes_read += bytes;
        Ok(xfer.end)
    }

    /// Programs the next page of a block with `bytes` of payload.
    ///
    /// Data first streams over the channel (transfer + ECC encode), then
    /// the die is busy for tPROG. A failed program retires the block.
    pub fn program_page(
        &mut self,
        now: SimTime,
        addr: PageAddr,
        bytes: u64,
    ) -> Result<ProgramResult, FlashError> {
        self.check_addr(addr)?;
        self.check_transfer(bytes)?;
        let st = &self.blocks[addr.block.0 as usize];
        if st.bad {
            return Err(FlashError::BadBlock(addr.block));
        }
        if addr.page != st.next_page {
            return Err(FlashError::OutOfOrderProgram {
                addr,
                expected: st.next_page,
            });
        }
        let die = self.geometry.die_of(addr.block) as usize;
        let ch = self.geometry.channel_of(addr.block) as usize;
        let xfer = self.channels[ch].acquire(now, self.timing.write_pipeline_time(bytes));
        let prog = self.dies[die].acquire_after(
            now,
            xfer.end,
            self.timing.t_cmd_overhead + self.timing.t_program,
        );
        self.stats.programs += 1;
        self.stats.bytes_written += bytes;
        let erase_count = self.blocks[addr.block.0 as usize].erase_count;
        let failed = self.fault.program_fails(addr.block, addr.page, erase_count);
        let st = &mut self.blocks[addr.block.0 as usize];
        st.next_page += 1;
        if failed {
            st.bad = true;
            self.stats.program_failures += 1;
        }
        Ok(ProgramResult {
            done: prog.end,
            failed,
        })
    }

    /// Programs one page on each of several blocks that live on *distinct
    /// planes of the same die*, paying a single tPROG (multi-plane
    /// programming). The block FTL uses this for stripe-aligned
    /// sequential writes — one of the firmware advantages sequential
    /// workloads enjoy on block-SSDs.
    ///
    /// Returns one [`ProgramResult`] per address, in order.
    pub fn program_multiplane(
        &mut self,
        now: SimTime,
        addrs: &[PageAddr],
        bytes_each: u64,
    ) -> Result<Vec<ProgramResult>, FlashError> {
        assert!(!addrs.is_empty(), "multiplane program of zero pages");
        let die0 = self.geometry.die_of(addrs[0].block);
        let mut planes = kvssd_sim::PrehashedSet::default();
        for &a in addrs {
            self.check_addr(a)?;
            assert_eq!(
                self.geometry.die_of(a.block),
                die0,
                "multiplane pages must share a die"
            );
            assert!(
                planes.insert(self.geometry.plane_of(a.block)),
                "multiplane pages must be on distinct planes"
            );
            let st = &self.blocks[a.block.0 as usize];
            if st.bad {
                return Err(FlashError::BadBlock(a.block));
            }
            if a.page != st.next_page {
                return Err(FlashError::OutOfOrderProgram {
                    addr: a,
                    expected: st.next_page,
                });
            }
        }
        self.check_transfer(bytes_each)?;
        let ch = self.geometry.channel_of(addrs[0].block) as usize;
        let total = bytes_each * addrs.len() as u64;
        let xfer = self.channels[ch].acquire(now, self.timing.write_pipeline_time(total));
        let prog = self.dies[die0 as usize].acquire_after(
            now,
            xfer.end,
            self.timing.t_cmd_overhead + self.timing.t_program,
        );
        self.stats.programs += addrs.len() as u64;
        self.stats.bytes_written += total;
        let mut out = Vec::with_capacity(addrs.len());
        for &a in addrs {
            let erase_count = self.blocks[a.block.0 as usize].erase_count;
            let failed = self.fault.program_fails(a.block, a.page, erase_count);
            let st = &mut self.blocks[a.block.0 as usize];
            st.next_page += 1;
            if failed {
                st.bad = true;
                self.stats.program_failures += 1;
            }
            out.push(ProgramResult {
                done: prog.end,
                failed,
            });
        }
        Ok(out)
    }

    /// Erases a block, making all its pages programmable again. A failed
    /// erase retires the block.
    pub fn erase_block(&mut self, now: SimTime, block: BlockId) -> Result<EraseResult, FlashError> {
        if block.0 >= self.geometry.total_blocks() {
            return Err(FlashError::OutOfRange(PageAddr { block, page: 0 }));
        }
        if self.blocks[block.0 as usize].bad {
            return Err(FlashError::BadBlock(block));
        }
        let die = self.geometry.die_of(block) as usize;
        let w = self.dies[die].acquire(now, self.timing.t_cmd_overhead + self.timing.t_erase);
        self.stats.erases += 1;
        let st = &mut self.blocks[block.0 as usize];
        st.erase_count += 1;
        let failed = self.fault.erase_fails(block, st.erase_count);
        st.next_page = 0;
        if failed {
            st.bad = true;
            self.stats.erase_failures += 1;
        }
        Ok(EraseResult {
            done: w.end,
            failed,
        })
    }

    /// Wear summary across all blocks: (min, mean, max) erase counts.
    ///
    /// The KV firmware's hash-scattered placement spreads erases fairly
    /// evenly; a skewed summary under a hot workload is the signal a
    /// wear-leveler would act on.
    pub fn wear_summary(&self) -> (u32, f64, u32) {
        let mut min = u32::MAX;
        let mut max = 0u32;
        let mut sum = 0u64;
        for b in &self.blocks {
            min = min.min(b.erase_count);
            max = max.max(b.erase_count);
            sum += b.erase_count as u64;
        }
        (min, sum as f64 / self.blocks.len() as f64, max)
    }

    /// Total die busy time (array operations) so far.
    pub fn die_busy_total(&self) -> SimDuration {
        self.dies.iter().map(Resource::busy_total).sum()
    }

    /// Mean die utilization over `[0, until]`.
    pub fn die_utilization(&self, until: SimTime) -> f64 {
        if until == SimTime::ZERO {
            return 0.0;
        }
        self.die_busy_total().as_nanos() as f64 / (until.as_nanos() as f64 * self.dies.len() as f64)
    }

    fn check_addr(&self, addr: PageAddr) -> Result<(), FlashError> {
        if self.geometry.contains(addr) {
            Ok(())
        } else {
            Err(FlashError::OutOfRange(addr))
        }
    }

    fn check_transfer(&self, bytes: u64) -> Result<(), FlashError> {
        if bytes <= self.geometry.page_bytes as u64 {
            Ok(())
        } else {
            Err(FlashError::TransferTooLarge {
                requested: bytes,
                page_bytes: self.geometry.page_bytes,
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dev() -> FlashDevice {
        FlashDevice::new(Geometry::small(), FlashTiming::pm983_like())
    }

    fn p(dev: &FlashDevice, die: u32, plane: u32, idx: u32, page: u32) -> PageAddr {
        PageAddr {
            block: dev.geometry().block_at(die, plane, idx),
            page,
        }
    }

    #[test]
    fn program_then_read_round_trips() {
        let mut d = dev();
        let a = p(&d, 0, 0, 0, 0);
        let r = d.program_page(SimTime::ZERO, a, 32 * 1024).unwrap();
        assert!(!r.failed);
        let done = d.read_page(r.done, a, 4096).unwrap();
        assert!(done > r.done);
        assert_eq!(d.stats().programs, 1);
        assert_eq!(d.stats().reads, 1);
    }

    #[test]
    fn reading_unwritten_page_is_an_error() {
        let mut d = dev();
        let a = p(&d, 0, 0, 0, 0);
        assert_eq!(
            d.read_page(SimTime::ZERO, a, 100),
            Err(FlashError::ReadingUnwritten(a))
        );
    }

    #[test]
    fn out_of_order_program_rejected() {
        let mut d = dev();
        let a = p(&d, 0, 0, 0, 1);
        match d.program_page(SimTime::ZERO, a, 100) {
            Err(FlashError::OutOfOrderProgram { expected: 0, .. }) => {}
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn double_program_rejected_until_erase() {
        let mut d = dev();
        let a = p(&d, 0, 0, 0, 0);
        d.program_page(SimTime::ZERO, a, 100).unwrap();
        assert!(matches!(
            d.program_page(SimTime::ZERO, a, 100),
            Err(FlashError::OutOfOrderProgram { .. })
        ));
        let e = d.erase_block(SimTime::ZERO, a.block).unwrap();
        assert!(!e.failed);
        d.program_page(e.done, a, 100).unwrap();
        assert_eq!(d.erase_count(a.block), 1);
    }

    #[test]
    fn erase_invalidates_reads() {
        let mut d = dev();
        let a = p(&d, 0, 0, 0, 0);
        let r = d.program_page(SimTime::ZERO, a, 100).unwrap();
        d.erase_block(r.done, a.block).unwrap();
        assert!(matches!(
            d.read_page(r.done, a, 100),
            Err(FlashError::ReadingUnwritten(_))
        ));
    }

    #[test]
    fn same_die_ops_serialize_different_dies_overlap() {
        let mut d = dev();
        let a0 = p(&d, 0, 0, 0, 0);
        let a1 = p(&d, 0, 0, 1, 0); // same die, different block
        let b0 = p(&d, 1, 0, 0, 0); // different die, same channel
        let ra0 = d.program_page(SimTime::ZERO, a0, 1024).unwrap();
        let ra1 = d.program_page(SimTime::ZERO, a1, 1024).unwrap();
        assert!(ra1.done > ra0.done, "same die must serialize");
        let mut d2 = dev();
        let rb0 = d2.program_page(SimTime::ZERO, b0, 1024).unwrap();
        // Fresh device: die 1 op does not wait for die 0 history.
        assert!(rb0.done <= ra0.done);
    }

    #[test]
    fn channel_contention_slows_reads_on_sibling_dies() {
        // Two dies on one channel, large transfers: second read's
        // completion is pushed by the shared channel.
        let mut d = dev();
        let a = p(&d, 0, 0, 0, 0);
        let b = p(&d, 1, 0, 0, 0);
        let wa = d.program_page(SimTime::ZERO, a, 32 * 1024).unwrap();
        let wb = d.program_page(SimTime::ZERO, b, 32 * 1024).unwrap();
        let t0 = wa.done.max(wb.done);
        let ra = d.read_page(t0, a, 32 * 1024).unwrap();
        let rb = d.read_page(t0, b, 32 * 1024).unwrap();
        let solo = d.timing().t_cmd_overhead
            + d.timing().t_read
            + d.timing().read_pipeline_time(32 * 1024);
        assert_eq!(ra.since(t0), solo);
        assert!(rb.since(t0) > solo, "second transfer queues on channel");
    }

    #[test]
    fn multiplane_program_shares_one_tprog() {
        let mut d = dev();
        let a = p(&d, 0, 0, 0, 0);
        let b = p(&d, 0, 1, 0, 0);
        let rs = d
            .program_multiplane(SimTime::ZERO, &[a, b], 32 * 1024)
            .unwrap();
        assert_eq!(rs.len(), 2);
        assert_eq!(rs[0].done, rs[1].done);
        // Compare against two sequential single-plane programs.
        let mut d2 = dev();
        let r1 = d2.program_page(SimTime::ZERO, a, 32 * 1024).unwrap();
        let r2 = d2.program_page(SimTime::ZERO, b, 32 * 1024).unwrap();
        let _ = r1;
        assert!(
            rs[0].done < r2.done,
            "multiplane must beat two serial programs"
        );
        assert_eq!(d.written_pages(a.block), 1);
        assert_eq!(d.written_pages(b.block), 1);
    }

    #[test]
    #[should_panic(expected = "distinct planes")]
    fn multiplane_same_plane_panics() {
        let mut d = dev();
        let a = p(&d, 0, 0, 0, 0);
        let b = p(&d, 0, 0, 1, 0);
        let _ = d.program_multiplane(SimTime::ZERO, &[a, b], 1024);
    }

    #[test]
    fn injected_program_failure_retires_block() {
        let fault = FaultPlan {
            program_fail_one_in: Some(1), // every program fails
            erase_fail_one_in: None,
        };
        let mut d = FlashDevice::with_faults(Geometry::small(), FlashTiming::pm983_like(), fault);
        let a = p(&d, 0, 0, 0, 0);
        let r = d.program_page(SimTime::ZERO, a, 1024).unwrap();
        assert!(r.failed);
        assert!(d.is_bad(a.block));
        assert_eq!(
            d.program_page(r.done, PageAddr { page: 1, ..a }, 1024),
            Err(FlashError::BadBlock(a.block))
        );
        assert_eq!(d.stats().program_failures, 1);
    }

    #[test]
    fn transfer_larger_than_page_rejected() {
        let mut d = dev();
        let a = p(&d, 0, 0, 0, 0);
        assert!(matches!(
            d.program_page(SimTime::ZERO, a, 33 * 1024),
            Err(FlashError::TransferTooLarge { .. })
        ));
    }

    #[test]
    fn out_of_range_rejected() {
        let mut d = dev();
        let bad = PageAddr {
            block: BlockId(d.geometry().total_blocks()),
            page: 0,
        };
        assert!(matches!(
            d.read_page(SimTime::ZERO, bad, 1),
            Err(FlashError::OutOfRange(_))
        ));
        assert!(matches!(
            d.erase_block(SimTime::ZERO, bad.block),
            Err(FlashError::OutOfRange(_))
        ));
    }

    #[test]
    fn stats_accumulate_bytes() {
        let mut d = dev();
        let a = p(&d, 0, 0, 0, 0);
        let r = d.program_page(SimTime::ZERO, a, 10_000).unwrap();
        d.read_page(r.done, a, 5_000).unwrap();
        assert_eq!(d.stats().bytes_written, 10_000);
        assert_eq!(d.stats().bytes_read, 5_000);
    }

    #[test]
    fn wear_summary_tracks_erases() {
        let mut d = dev();
        let a = p(&d, 0, 0, 0, 0);
        assert_eq!(d.wear_summary(), (0, 0.0, 0));
        d.erase_block(SimTime::ZERO, a.block).unwrap();
        d.erase_block(SimTime::ZERO, a.block).unwrap();
        let (min, mean, max) = d.wear_summary();
        assert_eq!(min, 0);
        assert_eq!(max, 2);
        assert!(mean > 0.0 && mean < 1.0);
    }

    #[test]
    fn utilization_reflects_busy_dies() {
        let mut d = dev();
        let a = p(&d, 0, 0, 0, 0);
        let r = d.program_page(SimTime::ZERO, a, 32 * 1024).unwrap();
        let u = d.die_utilization(r.done);
        assert!(u > 0.0 && u <= 1.0);
    }
}
