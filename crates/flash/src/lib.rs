//! NAND flash substrate shared by both firmware personalities.
//!
//! The paper's central methodological trick is using *one* piece of
//! hardware (a Samsung PM983) flashed with either key-value or block
//! firmware, so every observed difference is attributable to firmware
//! policy. This crate is the simulated equivalent of that hardware: a
//! NAND array with explicit geometry ([`Geometry`]), timing
//! ([`FlashTiming`]), per-die and per-channel contention, and the real
//! NAND programming constraints (erase-before-program, in-order page
//! programming within a block). Both `kvssd-core` (KV firmware) and
//! `kvssd-block-ftl` (block firmware) drive the same [`FlashDevice`].
//!
//! # Example
//!
//! ```
//! use kvssd_flash::{FlashDevice, Geometry, FlashTiming, PageAddr};
//! use kvssd_sim::SimTime;
//!
//! let mut flash = FlashDevice::new(Geometry::small(), FlashTiming::pm983_like());
//! let block = flash.geometry().block_at(0, 0, 0);
//! let page = PageAddr { block, page: 0 };
//! let page_bytes = flash.geometry().page_bytes as u64;
//! let programmed = flash.program_page(SimTime::ZERO, page, page_bytes).unwrap();
//! assert!(!programmed.failed);
//! let read_done = flash.read_page(programmed.done, page, 4096).unwrap();
//! assert!(read_done > programmed.done);
//! ```

pub mod device;
pub mod fault;
pub mod geometry;
pub mod timing;

pub use device::{EraseResult, FlashDevice, FlashError, FlashStats, ProgramResult};
pub use fault::FaultPlan;
pub use geometry::{BlockId, Geometry, PageAddr};
pub use timing::FlashTiming;
