//! Deterministic fault injection.
//!
//! Real NAND develops grown bad blocks; FTLs must tolerate program and
//! erase failures by retiring blocks. [`FaultPlan`] injects such failures
//! deterministically (keyed by block, page, and the block's erase count)
//! so failure-handling paths can be tested reproducibly.

use kvssd_sim::rng::mix64;

use crate::geometry::BlockId;

/// A deterministic plan for injecting flash faults.
///
/// A rate of `one_in = n` fails roughly one in `n` candidate operations,
/// chosen by a hash of the operation's coordinates — the same run always
/// fails the same operations.
#[derive(Debug, Clone, Copy, Default)]
pub struct FaultPlan {
    /// Fail roughly one program in this many (`None` disables).
    pub program_fail_one_in: Option<u64>,
    /// Fail roughly one erase in this many (`None` disables).
    pub erase_fail_one_in: Option<u64>,
}

impl FaultPlan {
    /// A plan that injects no faults.
    pub fn none() -> Self {
        Self::default()
    }

    /// Should the program of (`block`, `page`) on its `erase_count`-th
    /// program/erase cycle fail?
    pub fn program_fails(&self, block: BlockId, page: u32, erase_count: u32) -> bool {
        match self.program_fail_one_in {
            None => false,
            Some(n) => {
                let h = mix64((block.0 as u64) << 40 | (page as u64) << 20 | erase_count as u64);
                h.is_multiple_of(n)
            }
        }
    }

    /// Should the erase of `block` on cycle `erase_count` fail?
    pub fn erase_fails(&self, block: BlockId, erase_count: u32) -> bool {
        match self.erase_fail_one_in {
            None => false,
            Some(n) => {
                let h = mix64(0x5EED ^ ((block.0 as u64) << 32 | erase_count as u64));
                h.is_multiple_of(n)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_plan_never_fails() {
        let p = FaultPlan::none();
        for b in 0..100 {
            assert!(!p.program_fails(BlockId(b), 0, 0));
            assert!(!p.erase_fails(BlockId(b), 0));
        }
    }

    #[test]
    fn fault_rate_is_approximate() {
        let p = FaultPlan {
            program_fail_one_in: Some(100),
            erase_fail_one_in: None,
        };
        let mut fails = 0;
        let trials = 100_000;
        for i in 0..trials {
            if p.program_fails(BlockId(i % 512), i % 64, i / 512) {
                fails += 1;
            }
        }
        let rate = fails as f64 / trials as f64;
        assert!((rate - 0.01).abs() < 0.005, "rate {rate}");
    }

    #[test]
    fn faults_are_deterministic() {
        let p = FaultPlan {
            program_fail_one_in: Some(10),
            erase_fail_one_in: Some(10),
        };
        for b in 0..1000 {
            assert_eq!(
                p.program_fails(BlockId(b), 3, 1),
                p.program_fails(BlockId(b), 3, 1)
            );
            assert_eq!(p.erase_fails(BlockId(b), 2), p.erase_fails(BlockId(b), 2));
        }
    }

    #[test]
    fn erase_count_changes_outcome_for_some_block() {
        let p = FaultPlan {
            program_fail_one_in: Some(7),
            erase_fail_one_in: None,
        };
        let differs = (0..1000)
            .any(|b| p.program_fails(BlockId(b), 0, 0) != p.program_fails(BlockId(b), 0, 1));
        assert!(differs);
    }
}
