//! Physical geometry of the NAND array.
//!
//! The hierarchy is `channel → die → plane → block → page`. Blocks get a
//! flat [`BlockId`] so FTL mapping tables stay compact; helpers recover
//! the channel/die/plane coordinates needed for contention modeling.

use std::fmt;

/// Flat identifier of a physical erase block.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct BlockId(pub u32);

/// A physical flash page: a block plus the page offset within it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PageAddr {
    /// The erase block.
    pub block: BlockId,
    /// Page index within the block (programmed strictly in order).
    pub page: u32,
}

impl fmt::Display for PageAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b{}p{}", self.block.0, self.page)
    }
}

/// Geometry of the NAND array.
///
/// The defaults model a PM983-class device scaled down ~1000x so macro
/// experiments (fill the device, rewrite it all) finish in seconds of host
/// time. All paper effects are ratio effects, so scaling capacity and the
/// firmware DRAM budgets together preserves every threshold (see
/// `DESIGN.md`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Geometry {
    /// Independent data channels between controller and dies.
    pub channels: u32,
    /// Dies attached to each channel.
    pub dies_per_channel: u32,
    /// Planes per die (multi-plane programming doubles program bandwidth
    /// for stripe-aligned writes).
    pub planes_per_die: u32,
    /// Erase blocks per plane.
    pub blocks_per_plane: u32,
    /// Pages per erase block.
    pub pages_per_block: u32,
    /// Physical page size in bytes. The paper infers 32 KiB for the PM983
    /// with KV firmware (Sec. IV, Fig. 5 analysis).
    pub page_bytes: u32,
}

impl Geometry {
    /// Scaled PM983-class default: 4 channels x 8 dies x 2 planes x
    /// 32 blocks x 64 pages x 32 KiB = 4 GiB.
    pub fn pm983_scaled() -> Self {
        Geometry {
            channels: 4,
            dies_per_channel: 8,
            planes_per_die: 2,
            blocks_per_plane: 32,
            pages_per_block: 64,
            page_bytes: 32 * 1024,
        }
    }

    /// A tiny geometry for unit tests: 2 channels x 2 dies x 2 planes x
    /// 4 blocks x 8 pages x 32 KiB = 16 MiB.
    pub fn small() -> Self {
        Geometry {
            channels: 2,
            dies_per_channel: 2,
            planes_per_die: 2,
            blocks_per_plane: 4,
            pages_per_block: 8,
            page_bytes: 32 * 1024,
        }
    }

    /// Total number of dies.
    pub fn dies(&self) -> u32 {
        self.channels * self.dies_per_channel
    }

    /// Total number of erase blocks.
    pub fn total_blocks(&self) -> u32 {
        self.dies() * self.planes_per_die * self.blocks_per_plane
    }

    /// Total raw capacity in bytes.
    pub fn capacity_bytes(&self) -> u64 {
        self.total_blocks() as u64 * self.block_bytes()
    }

    /// Bytes per erase block.
    pub fn block_bytes(&self) -> u64 {
        self.pages_per_block as u64 * self.page_bytes as u64
    }

    /// The die a block lives on.
    pub fn die_of(&self, block: BlockId) -> u32 {
        block.0 / (self.planes_per_die * self.blocks_per_plane)
    }

    /// The plane (within its die) a block lives on.
    pub fn plane_of(&self, block: BlockId) -> u32 {
        (block.0 / self.blocks_per_plane) % self.planes_per_die
    }

    /// The channel a block's die is attached to.
    pub fn channel_of(&self, block: BlockId) -> u32 {
        self.die_of(block) / self.dies_per_channel
    }

    /// Block id for explicit (die, plane, index) coordinates.
    ///
    /// # Panics
    ///
    /// Panics if any coordinate is out of range.
    pub fn block_at(&self, die: u32, plane: u32, index: u32) -> BlockId {
        assert!(die < self.dies(), "die {die} out of range");
        assert!(plane < self.planes_per_die, "plane {plane} out of range");
        assert!(
            index < self.blocks_per_plane,
            "block index {index} out of range"
        );
        BlockId((die * self.planes_per_die + plane) * self.blocks_per_plane + index)
    }

    /// Validates a page address against this geometry.
    pub fn contains(&self, addr: PageAddr) -> bool {
        addr.block.0 < self.total_blocks() && addr.page < self.pages_per_block
    }
}

impl Default for Geometry {
    fn default() -> Self {
        Self::pm983_scaled()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scaled_default_is_4gib() {
        let g = Geometry::pm983_scaled();
        assert_eq!(g.capacity_bytes(), 4 * 1024 * 1024 * 1024);
        assert_eq!(g.dies(), 32);
        assert_eq!(g.total_blocks(), 2048);
    }

    #[test]
    fn coordinates_round_trip() {
        let g = Geometry::small();
        for die in 0..g.dies() {
            for plane in 0..g.planes_per_die {
                for idx in 0..g.blocks_per_plane {
                    let b = g.block_at(die, plane, idx);
                    assert_eq!(g.die_of(b), die);
                    assert_eq!(g.plane_of(b), plane);
                }
            }
        }
    }

    #[test]
    fn block_ids_are_dense_and_unique() {
        let g = Geometry::small();
        let mut seen = kvssd_sim::PrehashedSet::default();
        for die in 0..g.dies() {
            for plane in 0..g.planes_per_die {
                for idx in 0..g.blocks_per_plane {
                    assert!(seen.insert(g.block_at(die, plane, idx)));
                }
            }
        }
        assert_eq!(seen.len() as u32, g.total_blocks());
        assert!(seen.iter().all(|b| b.0 < g.total_blocks()));
    }

    #[test]
    fn channel_of_groups_dies() {
        let g = Geometry::pm983_scaled();
        let b0 = g.block_at(0, 0, 0);
        let b7 = g.block_at(7, 0, 0);
        let b8 = g.block_at(8, 0, 0);
        assert_eq!(g.channel_of(b0), 0);
        assert_eq!(g.channel_of(b7), 0);
        assert_eq!(g.channel_of(b8), 1);
    }

    #[test]
    fn contains_checks_bounds() {
        let g = Geometry::small();
        assert!(g.contains(PageAddr {
            block: BlockId(0),
            page: 0
        }));
        assert!(!g.contains(PageAddr {
            block: BlockId(g.total_blocks()),
            page: 0
        }));
        assert!(!g.contains(PageAddr {
            block: BlockId(0),
            page: g.pages_per_block
        }));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn block_at_rejects_bad_die() {
        let g = Geometry::small();
        let _ = g.block_at(g.dies(), 0, 0);
    }
}
