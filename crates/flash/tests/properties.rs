// Proptest-based suite: compiled only with `--features proptest` (needs
// network to fetch proptest; the default offline pass runs the in-repo
// generator suites instead).
#![cfg(feature = "proptest")]

//! Property tests: the flash device enforces the NAND contract under
//! arbitrary operation sequences, checked against a reference state
//! machine.

use kvssd_sim::PrehashedMap;

use proptest::prelude::*;

use kvssd_flash::{BlockId, FlashDevice, FlashTiming, Geometry, PageAddr};
use kvssd_sim::SimTime;

#[derive(Debug, Clone)]
enum FlashOp {
    Program { block: u8, bytes: u16 },
    Read { block: u8, page: u8, bytes: u16 },
    Erase { block: u8 },
}

fn op_strategy() -> impl Strategy<Value = FlashOp> {
    prop_oneof![
        (any::<u8>(), 1u16..32_768).prop_map(|(b, n)| FlashOp::Program { block: b, bytes: n }),
        (any::<u8>(), any::<u8>(), 1u16..32_768).prop_map(|(b, p, n)| FlashOp::Read {
            block: b,
            page: p,
            bytes: n
        }),
        any::<u8>().prop_map(|b| FlashOp::Erase { block: b }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The device's accept/reject decisions and its visible state match
    /// a trivial reference model for any op sequence.
    #[test]
    fn device_matches_reference_state_machine(
        ops in prop::collection::vec(op_strategy(), 1..200),
    ) {
        let g = Geometry::small();
        let mut dev = FlashDevice::new(g, FlashTiming::pm983_like());
        // Reference: block -> pages programmed since last erase.
        let mut model: PrehashedMap<u32, u32> = PrehashedMap::default();
        let nblocks = g.total_blocks();
        let mut t = SimTime::ZERO;
        for op in ops {
            match op {
                FlashOp::Program { block, bytes } => {
                    let b = block as u32 % nblocks;
                    let next = *model.get(&b).unwrap_or(&0);
                    let addr = PageAddr { block: BlockId(b), page: next };
                    if next < g.pages_per_block {
                        let r = dev.program_page(t, addr, bytes as u64).unwrap();
                        prop_assert!(!r.failed, "no fault plan installed");
                        t = t.max(r.done);
                        model.insert(b, next + 1);
                    } else {
                        // Full block: programming must be rejected.
                        prop_assert!(dev
                            .program_page(t, addr, bytes as u64)
                            .is_err());
                    }
                }
                FlashOp::Read { block, page, bytes } => {
                    let b = block as u32 % nblocks;
                    let p = page as u32 % g.pages_per_block;
                    let written = *model.get(&b).unwrap_or(&0);
                    let addr = PageAddr { block: BlockId(b), page: p };
                    let res = dev.read_page(t, addr, bytes as u64);
                    if p < written {
                        let done = res.unwrap();
                        prop_assert!(done > t, "reads take time");
                        t = done;
                    } else {
                        prop_assert!(res.is_err(), "unwritten page must not read");
                    }
                }
                FlashOp::Erase { block } => {
                    let b = block as u32 % nblocks;
                    let r = dev.erase_block(t, BlockId(b)).unwrap();
                    prop_assert!(!r.failed);
                    t = t.max(r.done);
                    model.insert(b, 0);
                }
            }
            // Visible counters agree with the model at every step.
            for (&b, &pages) in &model {
                prop_assert_eq!(dev.written_pages(BlockId(b)), pages);
            }
        }
    }

    /// Timing sanity under load: total die busy time equals the sum of
    /// array-operation times, independent of interleaving.
    #[test]
    fn die_busy_time_is_conserved(
        programs in prop::collection::vec(any::<u8>(), 1..60),
    ) {
        let g = Geometry::small();
        let mut dev = FlashDevice::new(g, FlashTiming::pm983_like());
        let timing = *dev.timing();
        let mut counts: PrehashedMap<u32, u32> = PrehashedMap::default();
        let mut issued = 0u64;
        for b in programs {
            let blk = b as u32 % g.total_blocks();
            let next = counts.entry(blk).or_insert(0);
            if *next >= g.pages_per_block {
                continue;
            }
            dev.program_page(
                SimTime::ZERO,
                PageAddr { block: BlockId(blk), page: *next },
                1024,
            )
            .unwrap();
            *next += 1;
            issued += 1;
        }
        let per_op = timing.t_cmd_overhead + timing.t_program;
        prop_assert_eq!(dev.die_busy_total().as_nanos(), per_op.as_nanos() * issued);
        prop_assert_eq!(dev.stats().programs, issued);
    }
}
