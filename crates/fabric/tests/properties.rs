//! Property tests for the fabric's determinism contract.
//!
//! The fabric runs entirely in virtual time with per-channel seeded
//! fault streams, so a fixed (seed, traffic) pair must produce the
//! exact same delivery sequence anywhere — including while other
//! fabrics hammer away on other OS threads, and regardless of how many
//! of them there are.

use kvssd_fabric::{Fabric, FabricConfig, LinkConfig};
use kvssd_sim::{SimDuration, SimTime};

/// A faulty two-link fabric plus a deterministic traffic pattern;
/// returns every delivery outcome in issue order.
fn scenario() -> Vec<Option<u64>> {
    let link = LinkConfig {
        latency: SimDuration::from_micros(15),
        bytes_per_sec: 1 << 30,
        queue_depth: 4,
        jitter: SimDuration::from_micros(40),
        drop_ppm: 120_000,
        duplicate_ppm: 60_000,
    };
    let mut fabric = Fabric::new(FabricConfig::new(0xFAB, link), 2);
    let mut out = Vec::new();
    for i in 0..400u64 {
        let now = SimTime::from_nanos(i * 3_000);
        let l = (i % 2) as usize;
        let bytes = 64 + (i % 7) * 512;
        out.push(fabric.request(now, l, bytes).map(|t| t.as_nanos()));
        out.push(fabric.response(now, l, bytes / 2).map(|t| t.as_nanos()));
        if i == 150 {
            fabric.partition(0);
        }
        if i == 200 {
            fabric.heal(0);
        }
    }
    let s = fabric.stats();
    assert!(s.dropped > 0, "drop stream never fired");
    assert!(s.duplicated > 0, "duplicate stream never fired");
    assert!(s.partition_drops > 0, "partition never swallowed traffic");
    out
}

#[test]
fn delivery_sequence_is_deterministic_across_thread_counts() {
    let reference = scenario();
    for threads in [1usize, 2, 4, 8] {
        let outcomes: Vec<Vec<Option<u64>>> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..threads).map(|_| s.spawn(scenario)).collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("scenario thread panicked"))
                .collect()
        });
        for (i, o) in outcomes.iter().enumerate() {
            assert_eq!(
                o, &reference,
                "thread {i}/{threads} diverged from the single-thread run"
            );
        }
    }
}

#[test]
fn different_seeds_give_different_fault_streams() {
    let run = |seed: u64| -> Vec<Option<u64>> {
        let link = LinkConfig {
            jitter: SimDuration::from_micros(50),
            drop_ppm: 100_000,
            ..LinkConfig::ideal()
        };
        let mut f = Fabric::new(FabricConfig::new(seed, link), 1);
        (0..64)
            .map(|i| {
                f.request(SimTime::from_nanos(i * 1_000), 0, 64)
                    .map(|t| t.as_nanos())
            })
            .collect()
    };
    assert_ne!(run(1), run(2), "seed must steer jitter and drops");
    assert_eq!(run(7), run(7), "same seed must replay exactly");
}
