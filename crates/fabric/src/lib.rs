//! A simulated NVMe-oF-style transport fabric between a router and its
//! shards.
//!
//! The cluster layer fans replica legs out through in-process
//! submission queues, which models a perfect, zero-latency
//! interconnect — the one component a real KV-SSD disaggregation has
//! to pay for. This crate supplies that missing cost on the repo's
//! virtual clock, with no wall time anywhere:
//!
//! * **Per-link latency**: a configurable one-way propagation delay in
//!   each direction (router → shard for requests, shard → router for
//!   completions).
//! * **Bandwidth**: serialization delay proportional to payload bytes,
//!   modeled as a FIFO wire ([`kvssd_sim::Resource`]) per direction, so
//!   concurrent messages on one link queue behind each other exactly
//!   like capsules on an NVMe-oF connection.
//! * **Bounded per-link queues**: at most `queue_depth` undelivered
//!   messages per direction; a sender that finds the queue full stalls
//!   (in virtual time) until the earliest outstanding delivery, and the
//!   stall is accounted.
//! * **Seeded fault injection**: per-message jitter, drop, and
//!   duplication driven by a [`kvssd_sim::DeterministicRng`] stream per
//!   channel (derived from the fabric seed, the link id, and the
//!   direction), plus whole-link partitions. Two same-seed runs make
//!   identical decisions; per-channel streams keep them independent of
//!   scheduling order elsewhere.
//!
//! The fabric never calls the OS: every instant is computed from the
//! caller's `SimTime`, so it composes with the rest of the simulator
//! and stays kvlint-clean (`no-wall-clock`, `no-unseeded-entropy`).
//!
//! # Example
//!
//! ```
//! use kvssd_fabric::{Fabric, FabricConfig, LinkConfig};
//! use kvssd_sim::{SimDuration, SimTime};
//!
//! let links = LinkConfig {
//!     latency: SimDuration::from_micros(10),
//!     ..LinkConfig::ideal()
//! };
//! let mut fabric = Fabric::new(FabricConfig::new(7, links), 2);
//! let arrive = fabric.request(SimTime::ZERO, 1, 4096).unwrap();
//! assert!(arrive >= SimTime::ZERO + SimDuration::from_micros(10));
//! let acked = fabric.response(arrive, 1, 16).unwrap();
//! assert!(acked >= arrive + SimDuration::from_micros(10));
//!
//! // Partition the link: messages are swallowed until it heals.
//! fabric.partition(1);
//! assert!(fabric.request(acked, 1, 64).is_none());
//! fabric.heal(1);
//! assert!(fabric.request(acked, 1, 64).is_some());
//! ```

pub mod fabric;
pub mod link;

pub use fabric::{Fabric, FabricConfig, FabricStats};
pub use link::{Channel, ChannelStats, Delivery, LinkConfig};
