//! The fabric proper: one bidirectional link per shard, partitions,
//! and aggregated accounting.

use kvssd_sim::{mix64, SimTime};

use crate::link::{Channel, ChannelStats, Delivery, LinkConfig};

/// Fabric-wide parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FabricConfig {
    /// Seed for every channel's fault stream (each channel derives its
    /// own independent stream from this, its link id, and its
    /// direction).
    pub seed: u64,
    /// Link shape applied to new links unless overridden per link.
    pub default_link: LinkConfig,
}

impl FabricConfig {
    /// A fabric seeded with `seed` whose links all start as
    /// `default_link`.
    pub fn new(seed: u64, default_link: LinkConfig) -> Self {
        FabricConfig { seed, default_link }
    }

    /// An ideal (free, lossless) fabric — the degenerate anchor that
    /// must reproduce the in-process transport byte for byte.
    pub fn ideal(seed: u64) -> Self {
        Self::new(seed, LinkConfig::ideal())
    }
}

/// Aggregated counters across every link and direction.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FabricStats {
    /// Request messages offered (router → shard).
    pub requests: u64,
    /// Response messages offered (shard → router).
    pub responses: u64,
    /// Messages lost to seeded drops, both directions.
    pub dropped: u64,
    /// Messages swallowed by partitions, both directions.
    pub partition_drops: u64,
    /// Messages duplicated on the wire.
    pub duplicated: u64,
    /// Sends that stalled on a full channel queue.
    pub queue_stalls: u64,
    /// Payload bytes offered, both directions.
    pub bytes: u64,
}

/// One shard's bidirectional attachment point.
#[derive(Debug)]
struct Link {
    /// Router → shard (commands and write payloads).
    request: Channel,
    /// Shard → router (completions and read payloads).
    response: Channel,
    partitioned: bool,
}

/// The transport fabric between a router and its shards (see crate
/// docs). Link index `i` is the cluster's shard index `i`; the fabric
/// mirrors shard add/remove so the two stay aligned.
#[derive(Debug)]
pub struct Fabric {
    config: FabricConfig,
    links: Vec<Link>,
    /// Monotonic link id: re-added links get fresh fault streams
    /// instead of replaying a departed shard's.
    next_link_id: u64,
}

impl Fabric {
    /// A fabric with `links` attachment points, all shaped by the
    /// config's default link.
    pub fn new(config: FabricConfig, links: usize) -> Self {
        let mut fabric = Fabric {
            config,
            links: Vec::with_capacity(links),
            next_link_id: 0,
        };
        for _ in 0..links {
            fabric.add_link();
        }
        fabric
    }

    /// The fabric configuration.
    pub fn config(&self) -> &FabricConfig {
        &self.config
    }

    /// Number of attachment points.
    pub fn link_count(&self) -> usize {
        self.links.len()
    }

    /// Reshapes one link (both directions). Traffic already in flight
    /// keeps its old timing; the fault streams continue unreset, so a
    /// reshape mid-run stays deterministic.
    pub fn shape_link(&mut self, link: usize, config: LinkConfig) {
        assert!(config.queue_depth > 0, "channel queue depth must be >= 1");
        *self.links[link].request.config_mut() = config;
        *self.links[link].response.config_mut() = config;
    }

    /// Builder-style [`Self::shape_link`].
    pub fn with_link(mut self, link: usize, config: LinkConfig) -> Self {
        self.shape_link(link, config);
        self
    }

    /// Sends a request of `bytes` toward shard `link` at `now`;
    /// returns the arrival instant of the original copy, or `None` if
    /// it was lost. [`Self::request_delivery`] exposes duplicate
    /// deliveries as well.
    pub fn request(&mut self, now: SimTime, link: usize, bytes: u64) -> Option<SimTime> {
        self.request_delivery(now, link, bytes).delivered
    }

    /// Sends a response of `bytes` from shard `link` back to the
    /// router at `now`; returns the arrival instant of the original
    /// copy, or `None` if it was lost. [`Self::response_delivery`]
    /// exposes duplicate deliveries as well.
    pub fn response(&mut self, now: SimTime, link: usize, bytes: u64) -> Option<SimTime> {
        self.response_delivery(now, link, bytes).delivered
    }

    /// [`Self::request`] returning the full [`Delivery`] — including a
    /// duplicated wire copy's second arrival, which deadline-aware
    /// receivers must dedupe (mutations) or absorb (reads/acks).
    pub fn request_delivery(&mut self, now: SimTime, link: usize, bytes: u64) -> Delivery {
        let l = &mut self.links[link];
        l.request.send(now, bytes, l.partitioned)
    }

    /// [`Self::response`] returning the full [`Delivery`].
    pub fn response_delivery(&mut self, now: SimTime, link: usize, bytes: u64) -> Delivery {
        let l = &mut self.links[link];
        l.response.send(now, bytes, l.partitioned)
    }

    /// Cuts the link to shard `link`: every message in either
    /// direction is swallowed until [`Self::heal`].
    pub fn partition(&mut self, link: usize) {
        self.links[link].partitioned = true;
    }

    /// Restores a partitioned link.
    pub fn heal(&mut self, link: usize) {
        self.links[link].partitioned = false;
    }

    /// True while the link is partitioned.
    pub fn is_partitioned(&self, link: usize) -> bool {
        self.links[link].partitioned
    }

    /// Attaches a new link (a shard joining) shaped by the default
    /// link config; returns its index.
    pub fn add_link(&mut self) -> usize {
        let id = self.next_link_id;
        self.next_link_id += 1;
        // Direction tags keep the two streams of one link independent.
        let request_seed = mix64(self.config.seed ^ mix64(id.wrapping_mul(2)));
        let response_seed = mix64(self.config.seed ^ mix64(id.wrapping_mul(2) + 1));
        self.links.push(Link {
            request: Channel::new(self.config.default_link, request_seed),
            response: Channel::new(self.config.default_link, response_seed),
            partitioned: false,
        });
        self.links.len() - 1
    }

    /// Detaches link `link` (a shard leaving); later indices shift
    /// down by one, mirroring the cluster's shard vector.
    pub fn remove_link(&mut self, link: usize) {
        self.links.remove(link);
    }

    /// One direction's counters for one link.
    pub fn link_stats(&self, link: usize) -> (&ChannelStats, &ChannelStats) {
        (
            self.links[link].request.stats(),
            self.links[link].response.stats(),
        )
    }

    /// Aggregated counters across all links.
    pub fn stats(&self) -> FabricStats {
        let mut s = FabricStats::default();
        for l in &self.links {
            let rq = l.request.stats();
            let rs = l.response.stats();
            s.requests += rq.messages;
            s.responses += rs.messages;
            s.dropped += rq.dropped + rs.dropped;
            s.partition_drops += rq.partition_drops + rs.partition_drops;
            s.duplicated += rq.duplicated + rs.duplicated;
            s.queue_stalls += rq.queue_stalls + rs.queue_stalls;
            s.bytes += rq.bytes + rs.bytes;
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kvssd_sim::SimDuration;

    fn us(n: u64) -> SimDuration {
        SimDuration::from_micros(n)
    }

    #[test]
    fn request_and_response_are_independent_directions() {
        let cfg = FabricConfig::new(
            1,
            LinkConfig {
                latency: us(10),
                ..LinkConfig::ideal()
            },
        );
        let mut f = Fabric::new(cfg, 2);
        let a = f.request(SimTime::ZERO, 0, 64).unwrap();
        let b = f.response(SimTime::ZERO, 0, 64).unwrap();
        assert_eq!(a, SimTime::ZERO + us(10));
        assert_eq!(b, SimTime::ZERO + us(10), "directions do not serialize");
    }

    #[test]
    fn per_link_shapes_differ() {
        let mut f = Fabric::new(FabricConfig::ideal(1), 2).with_link(
            1,
            LinkConfig {
                latency: us(500),
                ..LinkConfig::ideal()
            },
        );
        assert_eq!(f.request(SimTime::ZERO, 0, 64), Some(SimTime::ZERO));
        assert_eq!(
            f.request(SimTime::ZERO, 1, 64),
            Some(SimTime::ZERO + us(500))
        );
    }

    #[test]
    fn partition_and_heal_round_trip() {
        let mut f = Fabric::new(FabricConfig::ideal(1), 1);
        f.partition(0);
        assert!(f.is_partitioned(0));
        assert_eq!(f.request(SimTime::ZERO, 0, 64), None);
        assert_eq!(f.response(SimTime::ZERO, 0, 64), None);
        f.heal(0);
        assert!(f.request(SimTime::ZERO, 0, 64).is_some());
        assert_eq!(f.stats().partition_drops, 2);
    }

    #[test]
    fn readded_links_get_fresh_streams() {
        let jittery = FabricConfig::new(
            7,
            LinkConfig {
                jitter: us(100),
                ..LinkConfig::ideal()
            },
        );
        let mut f = Fabric::new(jittery, 2);
        let before: Vec<_> = (0..8)
            .map(|_| f.request(SimTime::ZERO, 1, 64).unwrap())
            .collect();
        f.remove_link(1);
        let idx = f.add_link();
        assert_eq!(idx, 1);
        let after: Vec<_> = (0..8)
            .map(|_| f.request(SimTime::ZERO, 1, 64).unwrap())
            .collect();
        assert_ne!(before, after, "a re-added link must not replay its past");
    }

    #[test]
    fn stats_aggregate_both_directions() {
        let mut f = Fabric::new(FabricConfig::ideal(1), 2);
        let _ = f.request(SimTime::ZERO, 0, 100);
        let _ = f.request(SimTime::ZERO, 1, 100);
        let _ = f.response(SimTime::ZERO, 0, 50);
        let s = f.stats();
        assert_eq!(s.requests, 2);
        assert_eq!(s.responses, 1);
        assert_eq!(s.bytes, 250);
    }
}
