//! One directed fabric channel: wire serialization, propagation,
//! bounded queueing, and seeded per-message faults.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use kvssd_sim::{DeterministicRng, Resource, SimDuration, SimTime};

/// Shape and fault profile of one link direction.
///
/// A link between the router and a shard is two independent channels
/// (request and response) sharing one `LinkConfig` by default; the
/// fabric can override either side per link.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LinkConfig {
    /// One-way propagation delay added to every message.
    pub latency: SimDuration,
    /// Wire bandwidth in bytes/second; serialization delay is
    /// `bytes / bytes_per_sec`, and messages queue FIFO behind each
    /// other on the wire. `0` means an infinitely fast wire (no
    /// serialization delay at all — the ideal-fabric anchor).
    pub bytes_per_sec: u64,
    /// Maximum undelivered messages in flight on this channel; a full
    /// channel stalls the sender until the earliest outstanding
    /// delivery.
    pub queue_depth: usize,
    /// Upper bound of the seeded per-message jitter, added on top of
    /// `latency` (uniform in `0..=jitter`). Zero disables the draw.
    pub jitter: SimDuration,
    /// Per-message drop probability in parts per million. A dropped
    /// message still occupies the wire (it was transmitted and lost
    /// downstream) but never delivers.
    pub drop_ppm: u32,
    /// Per-message duplication probability in parts per million. A
    /// duplicate occupies the wire a second time and the receiver sees
    /// a *second delivery* ([`Delivery::duplicate`]) — the upper layer
    /// owns deduplication (the cluster's replicas dedupe mutations by
    /// op id), exactly like a transport that retransmits above the
    /// point where the ULP could have suppressed it.
    pub duplicate_ppm: u32,
}

impl LinkConfig {
    /// The ideal link: zero latency, infinite bandwidth, effectively
    /// unbounded queue, no faults. A fabric built from ideal links is
    /// byte-identical to the in-process transport (the degenerate
    /// anchor, mirroring `SqConfig::passthrough`).
    pub const fn ideal() -> Self {
        LinkConfig {
            latency: SimDuration::ZERO,
            bytes_per_sec: 0,
            queue_depth: usize::MAX,
            jitter: SimDuration::ZERO,
            drop_ppm: 0,
            duplicate_ppm: 0,
        }
    }

    /// An RDMA-class datacenter link: 10 µs one-way, ~6 GB/s
    /// (50 GbE-ish), deep queue, fault-free. The fabric experiments'
    /// baseline.
    pub const fn datacenter() -> Self {
        LinkConfig {
            latency: SimDuration::from_micros(10),
            bytes_per_sec: 6_000_000_000,
            queue_depth: 256,
            jitter: SimDuration::ZERO,
            drop_ppm: 0,
            duplicate_ppm: 0,
        }
    }

    /// Sets the one-way latency.
    pub fn latency(mut self, latency: SimDuration) -> Self {
        self.latency = latency;
        self
    }

    /// Sets the jitter bound.
    pub fn jitter(mut self, jitter: SimDuration) -> Self {
        self.jitter = jitter;
        self
    }

    /// Sets the drop probability (parts per million).
    pub fn drop_ppm(mut self, ppm: u32) -> Self {
        self.drop_ppm = ppm;
        self
    }
}

impl Default for LinkConfig {
    fn default() -> Self {
        Self::ideal()
    }
}

/// Per-channel traffic and fault counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ChannelStats {
    /// Messages offered to the channel (including dropped ones).
    pub messages: u64,
    /// Payload bytes offered.
    pub bytes: u64,
    /// Messages lost to the seeded drop fault.
    pub dropped: u64,
    /// Messages duplicated on the wire.
    pub duplicated: u64,
    /// Messages swallowed by a partition.
    pub partition_drops: u64,
    /// Sends that found the channel full and had to wait.
    pub queue_stalls: u64,
    /// Total virtual time senders spent waiting for a free slot.
    pub stall_time: SimDuration,
}

/// The outcome of offering one message to a channel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Delivery {
    /// When the message reaches the far end; `None` if it was lost
    /// (seeded drop or partition).
    pub delivered: Option<SimTime>,
    /// When the duplicated wire copy reaches the far end (`None` when
    /// the duplication fault did not fire). The copy queues behind the
    /// original on the wire, so it never arrives earlier. A drop fault
    /// loses only the original copy: a message that is both dropped and
    /// duplicated still reaches the receiver once, via the duplicate.
    pub duplicate: Option<SimTime>,
    /// When the sender's slot was admitted (after any queue stall).
    pub admitted: SimTime,
}

impl Delivery {
    /// The earliest instant any copy of the message arrived (`None`
    /// when every copy was lost).
    pub fn first_arrival(&self) -> Option<SimTime> {
        match (self.delivered, self.duplicate) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        }
    }
}

/// One direction of one link (see module docs).
#[derive(Debug)]
pub struct Channel {
    config: LinkConfig,
    wire: Resource,
    /// Outstanding (undelivered) delivery instants, pruned lazily.
    inflight: BinaryHeap<Reverse<SimTime>>,
    rng: DeterministicRng,
    stats: ChannelStats,
}

impl Channel {
    /// Creates an idle channel with its own seeded fault stream.
    ///
    /// # Panics
    ///
    /// Panics if `queue_depth` is zero.
    pub fn new(config: LinkConfig, seed: u64) -> Self {
        assert!(config.queue_depth > 0, "channel queue depth must be >= 1");
        Channel {
            config,
            wire: Resource::new(),
            inflight: BinaryHeap::new(),
            rng: DeterministicRng::seed_from(seed),
            stats: ChannelStats::default(),
        }
    }

    /// The channel configuration.
    pub fn config(&self) -> &LinkConfig {
        &self.config
    }

    /// Mutable configuration access (the fabric reshapes links for
    /// slow-replica and degradation scenarios; the fault stream and
    /// in-flight traffic carry over).
    pub fn config_mut(&mut self) -> &mut LinkConfig {
        &mut self.config
    }

    /// Traffic and fault counters.
    pub fn stats(&self) -> &ChannelStats {
        &self.stats
    }

    /// Offers one message of `bytes` to the channel at `now`;
    /// `partitioned` messages are swallowed without consuming the
    /// fault stream (a partition is a link state, not a per-message
    /// coin flip).
    pub fn send(&mut self, now: SimTime, bytes: u64, partitioned: bool) -> Delivery {
        self.stats.messages += 1;
        self.stats.bytes += bytes;
        if partitioned {
            self.stats.partition_drops += 1;
            return Delivery {
                delivered: None,
                duplicate: None,
                admitted: now,
            };
        }

        // Bounded queue: free slots whose deliveries already happened,
        // then stall on the earliest outstanding one if still full.
        while let Some(&Reverse(t)) = self.inflight.peek() {
            if t <= now {
                self.inflight.pop();
            } else {
                break;
            }
        }
        let mut admitted = now;
        if self.inflight.len() >= self.config.queue_depth {
            // The guard makes the pop infallible; the binding keeps the
            // stall accounting off the panic surface.
            if let Some(Reverse(earliest)) = self.inflight.pop() {
                self.stats.queue_stalls += 1;
                self.stats.stall_time += earliest.since(admitted);
                admitted = earliest;
            }
        }

        // Serialization: messages queue FIFO on the wire.
        let wired = if self.config.bytes_per_sec == 0 {
            admitted
        } else {
            self.wire
                .acquire(
                    admitted,
                    SimDuration::for_bytes(bytes, self.config.bytes_per_sec),
                )
                .end
        };

        // Seeded per-message faults, drawn in a fixed order so the
        // stream is a pure function of (seed, message index, config).
        let jitter = if self.config.jitter.is_zero() {
            SimDuration::ZERO
        } else {
            SimDuration::from_nanos(self.rng.below(self.config.jitter.as_nanos() + 1))
        };
        let dropped =
            self.config.drop_ppm > 0 && self.rng.below(1_000_000) < u64::from(self.config.drop_ppm);
        let duplicated = self.config.duplicate_ppm > 0
            && self.rng.below(1_000_000) < u64::from(self.config.duplicate_ppm);

        // The retransmitted copy occupies the wire again and arrives as
        // a second delivery behind the original (same propagation and
        // jitter — one fault draw per offered message keeps the stream
        // a pure function of the message index).
        let duplicate = if duplicated {
            self.stats.duplicated += 1;
            let rewired = if self.config.bytes_per_sec == 0 {
                wired
            } else {
                self.wire
                    .acquire(
                        wired,
                        SimDuration::for_bytes(bytes, self.config.bytes_per_sec),
                    )
                    .end
            };
            let at = rewired + self.config.latency + jitter;
            self.inflight.push(Reverse(at));
            Some(at)
        } else {
            None
        };

        if dropped {
            // The drop loses the original copy only; a duplicated
            // message still reaches the receiver via the second copy.
            self.stats.dropped += 1;
            return Delivery {
                delivered: None,
                duplicate,
                admitted,
            };
        }

        let delivered = wired + self.config.latency + jitter;
        self.inflight.push(Reverse(delivered));
        Delivery {
            delivered: Some(delivered),
            duplicate,
            admitted,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn us(n: u64) -> SimDuration {
        SimDuration::from_micros(n)
    }

    #[test]
    fn ideal_channel_is_free() {
        let mut c = Channel::new(LinkConfig::ideal(), 1);
        let d = c.send(SimTime::ZERO, 1 << 20, false);
        assert_eq!(d.delivered, Some(SimTime::ZERO));
        assert_eq!(d.admitted, SimTime::ZERO);
    }

    #[test]
    fn latency_and_bandwidth_add_up() {
        let cfg = LinkConfig {
            latency: us(10),
            bytes_per_sec: 1_000_000_000, // 1 GB/s: 4096 B ~ 4.096 us
            ..LinkConfig::ideal()
        };
        let mut c = Channel::new(cfg, 1);
        let d = c.send(SimTime::ZERO, 4096, false).delivered.unwrap();
        assert_eq!(
            d.since(SimTime::ZERO),
            SimDuration::for_bytes(4096, 1_000_000_000) + us(10)
        );
    }

    #[test]
    fn wire_serializes_concurrent_messages() {
        let cfg = LinkConfig {
            bytes_per_sec: 1_000_000, // 1 MB/s: 1000 B = 1 ms
            ..LinkConfig::ideal()
        };
        let mut c = Channel::new(cfg, 1);
        let a = c.send(SimTime::ZERO, 1000, false).delivered.unwrap();
        let b = c.send(SimTime::ZERO, 1000, false).delivered.unwrap();
        assert_eq!(b.since(a), SimDuration::for_bytes(1000, 1_000_000));
    }

    #[test]
    fn bounded_queue_stalls_the_sender() {
        let cfg = LinkConfig {
            latency: us(100),
            queue_depth: 2,
            ..LinkConfig::ideal()
        };
        let mut c = Channel::new(cfg, 1);
        let _ = c.send(SimTime::ZERO, 64, false);
        let _ = c.send(SimTime::ZERO, 64, false);
        let d = c.send(SimTime::ZERO, 64, false); // full: waits for a delivery
        assert_eq!(d.admitted, SimTime::ZERO + us(100));
        assert_eq!(c.stats().queue_stalls, 1);
        assert_eq!(c.stats().stall_time, us(100));
    }

    #[test]
    fn queue_slots_free_as_time_passes() {
        let cfg = LinkConfig {
            latency: us(100),
            queue_depth: 1,
            ..LinkConfig::ideal()
        };
        let mut c = Channel::new(cfg, 1);
        let _ = c.send(SimTime::ZERO, 64, false);
        // Sent after the first delivery landed: no stall.
        let d = c.send(SimTime::ZERO + us(200), 64, false);
        assert_eq!(d.admitted, SimTime::ZERO + us(200));
        assert_eq!(c.stats().queue_stalls, 0);
    }

    #[test]
    fn jitter_is_seeded_and_bounded() {
        let cfg = LinkConfig {
            latency: us(10),
            jitter: us(5),
            ..LinkConfig::ideal()
        };
        let run = |seed| {
            let mut c = Channel::new(cfg, seed);
            (0..32)
                .map(|_| c.send(SimTime::ZERO, 64, false).delivered.unwrap())
                .collect::<Vec<_>>()
        };
        let a = run(9);
        assert_eq!(a, run(9), "same seed, same jitter stream");
        assert_ne!(a, run(10), "different seed, different stream");
        for t in &a {
            let lat = t.since(SimTime::ZERO);
            assert!(
                lat >= us(10) && lat <= us(15),
                "jitter out of bounds: {lat}"
            );
        }
    }

    #[test]
    fn drops_are_seeded_and_counted() {
        let cfg = LinkConfig {
            drop_ppm: 200_000, // 20 %
            ..LinkConfig::ideal()
        };
        let mut c = Channel::new(cfg, 5);
        let lost = (0..1000)
            .filter(|_| c.send(SimTime::ZERO, 64, false).delivered.is_none())
            .count() as u64;
        assert_eq!(c.stats().dropped, lost);
        assert!((100..400).contains(&lost), "~20 % of 1000, got {lost}");
        // Same seed reproduces the exact loss pattern.
        let mut c2 = Channel::new(cfg, 5);
        let lost2 = (0..1000)
            .filter(|_| c2.send(SimTime::ZERO, 64, false).delivered.is_none())
            .count() as u64;
        assert_eq!(lost, lost2);
    }

    #[test]
    fn duplicates_load_the_wire_and_deliver_twice() {
        let cfg = LinkConfig {
            bytes_per_sec: 1_000_000,
            duplicate_ppm: 1_000_000, // always duplicate
            ..LinkConfig::ideal()
        };
        let mut c = Channel::new(cfg, 1);
        let d = c.send(SimTime::ZERO, 1000, false);
        let first = d.delivered.unwrap();
        assert_eq!(c.stats().duplicated, 1);
        // The copy queued behind the original on the wire and arrives
        // one serialization later — a real second delivery.
        let copy = d.duplicate.unwrap();
        assert_eq!(copy.since(first), SimDuration::for_bytes(1000, 1_000_000));
        assert_eq!(d.first_arrival(), Some(first));
        // The retransmission occupied the wire: the next message
        // queues behind two transmissions, not one.
        let second = c.send(SimTime::ZERO, 1000, false).delivered.unwrap();
        assert_eq!(
            second.since(first),
            SimDuration::for_bytes(1000, 1_000_000) * 2
        );
    }

    #[test]
    fn dropped_duplicate_still_reaches_the_receiver_once() {
        // Force both faults: the original copy is lost, the duplicate
        // survives — the message arrives exactly once, late.
        let cfg = LinkConfig {
            bytes_per_sec: 1_000_000,
            drop_ppm: 1_000_000,
            duplicate_ppm: 1_000_000,
            ..LinkConfig::ideal()
        };
        let mut c = Channel::new(cfg, 1);
        let d = c.send(SimTime::ZERO, 1000, false);
        assert_eq!(d.delivered, None);
        let copy = d.duplicate.expect("duplicate copy survives the drop");
        assert_eq!(d.first_arrival(), Some(copy));
        assert_eq!(c.stats().dropped, 1);
        assert_eq!(c.stats().duplicated, 1);
    }

    #[test]
    fn partition_swallows_without_consuming_the_fault_stream() {
        let cfg = LinkConfig {
            jitter: us(50),
            ..LinkConfig::ideal()
        };
        // Stream A: partition swallows the first two sends.
        let mut a = Channel::new(cfg, 3);
        assert!(a.send(SimTime::ZERO, 64, true).delivered.is_none());
        assert!(a.send(SimTime::ZERO, 64, true).delivered.is_none());
        let after = a.send(SimTime::ZERO, 64, false).delivered.unwrap();
        // Stream B: no partition. The first non-partitioned send must
        // draw the same jitter as stream A's.
        let mut b = Channel::new(cfg, 3);
        let first = b.send(SimTime::ZERO, 64, false).delivered.unwrap();
        assert_eq!(after, first);
        assert_eq!(a.stats().partition_drops, 2);
    }

    #[test]
    #[should_panic(expected = "queue depth")]
    fn zero_depth_rejected() {
        let cfg = LinkConfig {
            queue_depth: 0,
            ..LinkConfig::ideal()
        };
        let _ = Channel::new(cfg, 1);
    }
}
