//! Runs every experiment's report at the selected scale
//! (`KVSSD_BENCH_SCALE` = tiny|quick|full) and prints the tables.
//!
//! With an argument, runs just that figure: `repro_all -- fig5`.
//! With `--timings`, appends a per-figure scheduler table (cells, wall
//! seconds, serial-equivalent seconds, slowest cell) drained from the
//! cell scheduler — where each figure's wall-clock went.
//! Worker threads for cell-parallel figures: `KVSSD_BENCH_THREADS`
//! (defaults to `available_parallelism()`; `1` is the exact serial
//! path).
use kvssd_bench::experiments::{self, cells};
use kvssd_bench::Scale;

/// Prints the drained scheduler timings as an aligned table.
fn print_timings(timings: &[cells::FigureTiming]) {
    if timings.is_empty() {
        println!("\n(no cell-scheduled figures ran; nothing to time)");
        return;
    }
    println!("\n=== Cell scheduler timings ===");
    println!(
        "{:<22} {:>7} {:>6} {:>9} {:>10} {:>9}",
        "figure", "threads", "cells", "wall s", "serial s", "max-cell"
    );
    for t in timings {
        let label = if t.phase.is_empty() {
            t.figure.clone()
        } else {
            format!("{}/{}", t.figure, t.phase)
        };
        let serial: f64 = t.cell_seconds.iter().sum();
        let max_cell = t.cell_seconds.iter().copied().fold(0.0f64, f64::max);
        println!(
            "{label:<22} {:>7} {:>6} {:>9.3} {:>10.3} {:>9.3}",
            t.threads, t.cells, t.wall_seconds, serial, max_cell
        );
    }
}

fn main() {
    kvssd_bench::alloctune::retain_large_allocations();
    let scale = Scale::from_env();
    let args: Vec<String> = std::env::args().skip(1).collect();
    let timings = args.iter().any(|a| a == "--timings");
    let figure = args.iter().find(|a| *a != "--timings");

    match figure {
        None => {
            for (_, report) in experiments::FIGURES {
                report(scale);
            }
        }
        Some(name) => match experiments::FIGURES.iter().find(|(n, _)| n == name) {
            Some((_, report)) => report(scale),
            None => {
                let valid = experiments::figure_names();
                eprintln!(
                    "unknown figure `{name}`; valid names: {} (flags: --timings)",
                    valid.join(", ")
                );
                std::process::exit(1);
            }
        },
    }

    if timings {
        print_timings(&cells::take_timings());
    }
}
