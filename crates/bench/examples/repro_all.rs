//! Runs every experiment's report at the selected scale
//! (`KVSSD_BENCH_SCALE` = tiny|quick|full) and prints the tables.
use kvssd_bench::{experiments, Scale};

fn main() {
    let scale = Scale::from_env();
    let only = std::env::args().nth(1);
    let want = |name: &str| only.as_deref().is_none_or(|o| o == name);
    if want("fig2") {
        experiments::fig2::report(scale);
    }
    if want("fig3") {
        experiments::fig3::report(scale);
    }
    if want("fig4") {
        experiments::fig4::report(scale);
    }
    if want("fig5") {
        experiments::fig5::report(scale);
    }
    if want("fig6") {
        experiments::fig6::report(scale);
    }
    if want("fig7") {
        experiments::fig7::report(scale);
    }
    if want("fig8") {
        experiments::fig8::report(scale);
    }
    if want("headline") {
        experiments::headline::report(scale);
    }
    if want("ablations") {
        experiments::ablations::report(scale);
    }
    if want("scaleout") {
        experiments::scaleout::report(scale);
    }
}
