//! Runs every experiment's report at the selected scale
//! (`KVSSD_BENCH_SCALE` = tiny|quick|full) and prints the tables.
//!
//! With an argument, runs just that figure: `repro_all -- fig5`.
//! Worker threads for cell-parallel figures: `KVSSD_BENCH_THREADS`
//! (defaults to `available_parallelism()`; `1` is the exact serial
//! path).
use kvssd_bench::{experiments, Scale};

fn main() {
    let scale = Scale::from_env();
    match std::env::args().nth(1) {
        None => {
            for (_, report) in experiments::FIGURES {
                report(scale);
            }
        }
        Some(name) => match experiments::FIGURES.iter().find(|(n, _)| *n == name) {
            Some((_, report)) => report(scale),
            None => {
                let valid = experiments::figure_names();
                eprintln!("unknown figure `{name}`; valid names: {}", valid.join(", "));
                std::process::exit(1);
            }
        },
    }
}
