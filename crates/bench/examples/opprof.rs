//! Op-path stage profiler runner: prints ns/op and allocs/op for each
//! hot-path stage and records the result in `BENCH_HARNESS.json`
//! (override the path with `KVSSD_BENCH_HARNESS_OUT`).
//!
//! Installs [`kvssd_bench::opprof::CountingAlloc`] as the global
//! allocator so the allocs/op column is live — the one process in the
//! workspace that counts heap traffic.
//!
//! Scale: `KVSSD_BENCH_SCALE` = tiny|quick|full (default quick).

use kvssd_bench::opprof;
use kvssd_bench::Scale;

#[global_allocator]
static ALLOC: opprof::CountingAlloc = opprof::CountingAlloc;

/// Renders the one-line JSON value for the `"opprof"` key.
fn opprof_json(r: &opprof::OpProfResult, scale: Scale) -> String {
    let scale = match scale {
        Scale::Tiny => "tiny",
        Scale::Quick => "quick",
        Scale::Full => "full",
    };
    let stages: Vec<String> = r
        .stages
        .iter()
        .map(|s| {
            format!(
                "\"{}\": {{\"ns_per_op\": {:.1}, \"allocs_per_op\": {:.3}}}",
                s.name, s.ns_per_op, s.allocs_per_op
            )
        })
        .collect();
    format!(
        "  \"opprof\": {{\"scale\": \"{}\", {}}},",
        scale,
        stages.join(", ")
    )
}

/// Replaces or inserts the `"opprof"` line in the harness JSON.
fn patch_harness(path: &str, line: &str) -> std::io::Result<()> {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        // No harness file yet: write a minimal one holding just this
        // section (the trailing comma becomes a closing line).
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
            let body = format!("{{\n{}\n}}\n", line.trim_end_matches(','));
            return std::fs::write(path, body);
        }
        Err(e) => return Err(e),
    };
    let mut out = Vec::new();
    let mut replaced = false;
    for l in text.lines() {
        if l.trim_start().starts_with("\"opprof\"") {
            out.push(line.to_string());
            replaced = true;
        } else {
            out.push(l.to_string());
        }
    }
    if !replaced {
        let brace = out
            .iter()
            .position(|l| l.trim() == "{")
            .expect("harness JSON must open with a brace");
        out.insert(brace + 1, line.to_string());
    }
    std::fs::write(path, out.join("\n") + "\n")
}

fn main() {
    kvssd_bench::alloctune::retain_large_allocations();
    let scale = Scale::from_env();
    let r = opprof::run(scale);
    opprof::print_table(&r);

    let path = kvssd_bench::env_config("KVSSD_BENCH_HARNESS_OUT")
        .unwrap_or_else(|| "BENCH_HARNESS.json".to_string());
    let line = opprof_json(&r, scale);
    patch_harness(&path, &line).expect("update harness JSON");
    println!("updated {path} [opprof]");
}
