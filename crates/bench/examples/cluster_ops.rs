//! Cluster hot-path microbench runner: prints the legacy per-op vs
//! batched fast-path throughput table and records the result in
//! `BENCH_HARNESS.json` (override the path with
//! `KVSSD_BENCH_HARNESS_OUT`).
//!
//! Both legs are measured in this same process on this same host — the
//! improvement figure never compares against a stale snapshot. The JSON
//! update is line-based: the `"cluster_ops"` entry is replaced when
//! present, otherwise inserted after the opening brace, so the harness
//! file's other sections survive untouched.
//!
//! Scale: `KVSSD_BENCH_SCALE` = tiny|quick|full (default quick).

use kvssd_bench::experiments::cluster_ops;
use kvssd_bench::Scale;

/// Renders the one-line JSON value for the `"cluster_ops"` key.
fn cluster_ops_json(r: &cluster_ops::ClusterOpsResult, scale: Scale) -> String {
    let scale = match scale {
        Scale::Tiny => "tiny",
        Scale::Quick => "quick",
        Scale::Full => "full",
    };
    format!(
        "  \"cluster_ops\": {{\"scale\": \"{}\", \"ops\": {}, \
         \"baseline_ops_per_sec\": {:.0}, \"optimized_ops_per_sec\": {:.0}, \
         \"improvement\": {:.2}, \"checksum\": \"{:016x}\"}},",
        scale,
        r.baseline.ops,
        r.baseline.ops_per_sec(),
        r.optimized.ops_per_sec(),
        r.improvement(),
        r.baseline.checksum
    )
}

/// Replaces or inserts the `"cluster_ops"` line in the harness JSON.
fn patch_harness(path: &str, line: &str) -> std::io::Result<()> {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        // No harness file yet: write a minimal one holding just this
        // section (the trailing comma becomes a closing line).
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
            let body = format!("{{\n{}\n}}\n", line.trim_end_matches(','));
            return std::fs::write(path, body);
        }
        Err(e) => return Err(e),
    };
    let mut out = Vec::new();
    let mut replaced = false;
    for l in text.lines() {
        if l.trim_start().starts_with("\"cluster_ops\"") {
            out.push(line.to_string());
            replaced = true;
        } else {
            out.push(l.to_string());
        }
    }
    if !replaced {
        let brace = out
            .iter()
            .position(|l| l.trim() == "{")
            .expect("harness JSON must open with a brace");
        out.insert(brace + 1, line.to_string());
    }
    std::fs::write(path, out.join("\n") + "\n")
}

fn main() {
    kvssd_bench::alloctune::retain_large_allocations();
    let scale = Scale::from_env();
    let r = cluster_ops::run(scale);
    cluster_ops::print_table(&r);

    let path = kvssd_bench::env_config("KVSSD_BENCH_HARNESS_OUT")
        .unwrap_or_else(|| "BENCH_HARNESS.json".to_string());
    let line = cluster_ops_json(&r, scale);
    patch_harness(&path, &line).expect("update harness JSON");
    println!("updated {path} [cluster_ops]");
}
