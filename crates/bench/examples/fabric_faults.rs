//! Fabric fault-sweep runner: prints the drop_ppm × timeout × retries
//! availability table and records the headline trade — retry-rescued
//! ops vs extra wire bytes — in `BENCH_HARNESS.json` (override the
//! path with `KVSSD_BENCH_HARNESS_OUT`).
//!
//! The recorded line quotes the heaviest armed scenario
//! (`drop20-t500r3`) against the raw transport at the same loss rate:
//! how many quorums the deadline retries rescued, what availability
//! that bought back, and the wire-byte premium the re-sent legs cost.
//! The JSON update is line-based: the `"fabric_faults"` entry is
//! replaced when present, otherwise inserted after the opening brace,
//! so the harness file's other sections survive untouched.
//!
//! Scale: `KVSSD_BENCH_SCALE` = tiny|quick|full (default quick).

use kvssd_bench::experiments::fabric_faults;
use kvssd_bench::Scale;

/// Renders the one-line JSON value for the `"fabric_faults"` key.
fn fabric_faults_json(r: &fabric_faults::FabricFaultsResult, scale: Scale) -> String {
    let scale = match scale {
        Scale::Tiny => "tiny",
        Scale::Quick => "quick",
        Scale::Full => "full",
    };
    let raw = r.point("drop20-raw");
    let armed = r.point("drop20-t500r3");
    format!(
        "  \"fabric_faults\": {{\"scale\": \"{}\", \"shards\": {}, \"replicas\": {}, \
         \"drop_ppm\": {}, \"ops\": {}, \"raw_avail_pct\": {:.2}, \
         \"retried_avail_pct\": {:.2}, \"rescued_ops\": {}, \"leg_retries\": {}, \
         \"extra_leg_bytes\": {}, \"dup_suppressed\": {}}},",
        scale,
        fabric_faults::SHARDS,
        fabric_faults::REPLICAS,
        armed.drop_ppm,
        armed.ops,
        raw.availability_pct,
        armed.availability_pct,
        armed.rescued,
        armed.leg_retries,
        r.extra_bytes_vs_raw("drop20-t500r3"),
        armed.dup_suppressed,
    )
}

/// Replaces or inserts the `"fabric_faults"` line in the harness JSON.
fn patch_harness(path: &str, line: &str) -> std::io::Result<()> {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        // No harness file yet: write a minimal one holding just this
        // section (the trailing comma becomes a closing line).
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
            let body = format!("{{\n{}\n}}\n", line.trim_end_matches(','));
            return std::fs::write(path, body);
        }
        Err(e) => return Err(e),
    };
    let mut out = Vec::new();
    let mut replaced = false;
    for l in text.lines() {
        if l.trim_start().starts_with("\"fabric_faults\"") {
            out.push(line.to_string());
            replaced = true;
        } else {
            out.push(l.to_string());
        }
    }
    if !replaced {
        let brace = out
            .iter()
            .position(|l| l.trim() == "{")
            .expect("harness JSON must open with a brace");
        out.insert(brace + 1, line.to_string());
    }
    std::fs::write(path, out.join("\n") + "\n")
}

fn main() {
    kvssd_bench::alloctune::retain_large_allocations();
    let scale = Scale::from_env();
    let r = fabric_faults::report(scale);

    let path = kvssd_bench::env_config("KVSSD_BENCH_HARNESS_OUT")
        .unwrap_or_else(|| "BENCH_HARNESS.json".to_string());
    let line = fabric_faults_json(&r, scale);
    patch_harness(&path, &line).expect("update harness JSON");
    println!("updated {path} [fabric_faults]");
}
