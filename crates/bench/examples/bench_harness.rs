//! Self-timing harness: runs the cell-parallel figure suite twice —
//! once serial (1 thread, the exact pass-through path) and once
//! parallel (`KVSSD_BENCH_THREADS` or `available_parallelism()`) — and
//! writes per-figure wall-clock, speedup, and thread count to
//! `BENCH_HARNESS.json` (override the path with
//! `KVSSD_BENCH_HARNESS_OUT`).
//!
//! Scale: `KVSSD_BENCH_SCALE` = tiny|quick|full (default quick).
use std::fmt::Write as _;

use kvssd_bench::experiments::{self, cells, cluster_ops, device_ops};
use kvssd_bench::walltime::Stopwatch;
use kvssd_bench::{opprof, Scale};

// Count heap traffic for the opprof section (pure pass-through to the
// system allocator otherwise).
#[global_allocator]
static ALLOC: opprof::CountingAlloc = opprof::CountingAlloc;

/// Per-figure wall-clock for one pass (seconds, plus cell stats).
struct Pass {
    figure: &'static str,
    cells: usize,
    seconds: f64,
    max_cell_seconds: f64,
}

/// Runs every ported figure once at the forced thread count.
fn run_pass(scale: Scale, threads: usize) -> Vec<Pass> {
    cells::set_thread_override(Some(threads));
    cells::take_timings(); // drop any stale records
    let mut out = Vec::new();
    for (name, run) in experiments::PORTED {
        let t0 = Stopwatch::start();
        run(scale);
        let seconds = t0.elapsed_secs();
        let timing = cells::take_timings();
        let (ncells, max_cell) = timing.iter().fold((0usize, 0.0f64), |(n, m), t| {
            let cell_max = t.cell_seconds.iter().cloned().fold(0.0f64, f64::max);
            (n + t.cells, m.max(cell_max))
        });
        out.push(Pass {
            figure: name,
            cells: ncells,
            seconds,
            max_cell_seconds: max_cell,
        });
    }
    cells::set_thread_override(None);
    out
}

fn scale_name(scale: Scale) -> &'static str {
    match scale {
        Scale::Tiny => "tiny",
        Scale::Quick => "quick",
        Scale::Full => "full",
    }
}

fn main() {
    kvssd_bench::alloctune::retain_large_allocations();
    let scale = Scale::from_env();
    let threads = cells::thread_count();
    eprintln!(
        "bench_harness: scale={} parallel_threads={}",
        scale_name(scale),
        threads
    );

    eprintln!("bench_harness: device_ops microbench...");
    let ops = device_ops::run(scale);
    eprintln!("bench_harness: cluster_ops microbench...");
    let cl_ops = cluster_ops::run(scale);
    eprintln!("bench_harness: opprof stage profile...");
    let prof = opprof::run(scale);
    eprintln!("bench_harness: serial pass (1 thread)...");
    let serial = run_pass(scale, 1);
    eprintln!("bench_harness: parallel pass ({threads} threads)...");
    let parallel = run_pass(scale, threads.max(1));

    let total_serial: f64 = serial.iter().map(|p| p.seconds).sum();
    let total_parallel: f64 = parallel.iter().map(|p| p.seconds).sum();
    let speedup = |s: f64, p: f64| if p > 0.0 { s / p } else { 0.0 };

    // Manual JSON: the workspace has zero registry dependencies.
    let mut json = String::new();
    json.push_str("{\n");
    writeln!(json, "  \"scale\": \"{}\",", scale_name(scale)).unwrap();
    writeln!(json, "  \"threads\": {threads},").unwrap();
    writeln!(
        json,
        "  \"device_ops\": {{\"scale\": \"{}\", \"ops\": {}, \
         \"baseline_ops_per_sec\": {:.0}, \"optimized_ops_per_sec\": {:.0}, \
         \"improvement\": {:.2}, \"checksum\": \"{:016x}\"}},",
        scale_name(scale),
        ops.baseline.ops,
        ops.baseline.ops_per_sec(),
        ops.optimized.ops_per_sec(),
        ops.improvement(),
        ops.baseline.checksum
    )
    .unwrap();
    writeln!(
        json,
        "  \"cluster_ops\": {{\"scale\": \"{}\", \"ops\": {}, \
         \"baseline_ops_per_sec\": {:.0}, \"optimized_ops_per_sec\": {:.0}, \
         \"improvement\": {:.2}, \"checksum\": \"{:016x}\"}},",
        scale_name(scale),
        cl_ops.baseline.ops,
        cl_ops.baseline.ops_per_sec(),
        cl_ops.optimized.ops_per_sec(),
        cl_ops.improvement(),
        cl_ops.baseline.checksum
    )
    .unwrap();
    let stages: Vec<String> = prof
        .stages
        .iter()
        .map(|s| {
            format!(
                "\"{}\": {{\"ns_per_op\": {:.1}, \"allocs_per_op\": {:.3}}}",
                s.name, s.ns_per_op, s.allocs_per_op
            )
        })
        .collect();
    writeln!(
        json,
        "  \"opprof\": {{\"scale\": \"{}\", {}}},",
        scale_name(scale),
        stages.join(", ")
    )
    .unwrap();
    json.push_str("  \"figures\": [\n");
    for (i, (s, p)) in serial.iter().zip(&parallel).enumerate() {
        assert_eq!(s.figure, p.figure, "pass order must match");
        writeln!(
            json,
            "    {{\"name\": \"{}\", \"cells\": {}, \"serial_seconds\": {:.3}, \
             \"parallel_seconds\": {:.3}, \"speedup\": {:.2}, \
             \"max_cell_seconds\": {:.3}}}{}",
            s.figure,
            s.cells,
            s.seconds,
            p.seconds,
            speedup(s.seconds, p.seconds),
            p.max_cell_seconds,
            if i + 1 < serial.len() { "," } else { "" }
        )
        .unwrap();
    }
    json.push_str("  ],\n");
    writeln!(json, "  \"total_serial_seconds\": {total_serial:.3},").unwrap();
    writeln!(json, "  \"total_parallel_seconds\": {total_parallel:.3},").unwrap();
    writeln!(
        json,
        "  \"speedup\": {:.2}",
        speedup(total_serial, total_parallel)
    )
    .unwrap();
    json.push_str("}\n");

    let path = kvssd_bench::env_config("KVSSD_BENCH_HARNESS_OUT")
        .unwrap_or_else(|| "BENCH_HARNESS.json".to_string());
    std::fs::write(&path, &json).expect("write BENCH_HARNESS.json");
    println!(
        "wrote {path}: serial {total_serial:.2}s, parallel {total_parallel:.2}s \
         ({threads} threads, {:.2}x)",
        speedup(total_serial, total_parallel)
    );
}
