//! Host-side allocator tuning for the experiment binaries.
//!
//! Every figure cell builds multi-million-entry index maps and tears
//! them down again; glibc serves allocations past its mmap threshold
//! (128 KiB by default) with a fresh `mmap` and returns them with
//! `munmap`, so each cell pays the kernel for hundreds of megabytes of
//! page faults that the previous cell already paid. Raising the mmap
//! and trim thresholds keeps those generations on the heap, where the
//! pages stay resident and the next cell reuses them warm — on the
//! quick-scale cluster figures this converts tens of seconds of system
//! time into nothing.
//!
//! This is process-level tuning of *where* memory comes from, not *what*
//! is computed: simulated time, figure bytes, and checksums are
//! untouched. Call it first thing in `main` of an experiment binary;
//! it is deliberately not called from library or test code.

/// `mallopt` parameter numbers from glibc's `malloc.h`.
#[cfg(target_os = "linux")]
const M_TRIM_THRESHOLD: i32 = -1;
#[cfg(target_os = "linux")]
const M_MMAP_THRESHOLD: i32 = -3;

#[cfg(target_os = "linux")]
extern "C" {
    fn mallopt(param: i32, value: i32) -> i32;
}

/// Keeps large, frequently-recycled allocations on the heap instead of
/// round-tripping them through `mmap`/`munmap` on every figure cell.
pub fn retain_large_allocations() {
    #[cfg(target_os = "linux")]
    // SAFETY: mallopt only adjusts allocator tunables; it takes no
    // pointers and is safe to call at any time.
    unsafe {
        mallopt(M_MMAP_THRESHOLD, i32::MAX);
        mallopt(M_TRIM_THRESHOLD, i32::MAX);
    }
}
