//! Scale-out — the cluster experiment the single-device paper cannot run.
//!
//! Sweep shard count N ∈ {1, 2, 4, 8} over the Fig. 6 methodology
//! (fill to ~80 % of aggregate capacity, then uniform-random updates)
//! and report, per N: aggregate bandwidth, host-observed p50/p99/p999
//! write latency, and a Fig. 6-style bandwidth time series. The cluster
//! question: when each shard hits foreground GC, do the collapse
//! windows stay per-shard (aggregate bandwidth dips shallowly, tail
//! latency still shows them) or line up across shards (aggregate
//! collapses like a single device)?
//!
//! Expected shapes: aggregate uniform-workload bandwidth increases with
//! shard count (independent devices, one virtual clock); per-shard
//! collapse windows stay visible in the cluster p999; synchronized
//! whole-cluster collapses are rarer than per-shard ones because
//! consistent hashing decorrelates per-shard fill levels.

use kvssd_kvbench::report::f2;
use kvssd_kvbench::{run_phase, ClusterStore, OpMix, RunMetrics, Table, ValueSize, WorkloadSpec};
use kvssd_sim::SimTime;

use crate::experiments::cells;
use crate::{setup, Scale};

/// Shard counts the sweep visits.
pub const SHARD_COUNTS: [usize; 4] = [1, 2, 4, 8];

/// One shard count's measurements.
#[derive(Debug, Clone)]
pub struct ScaleoutPoint {
    /// Shard (device) count.
    pub shards: usize,
    /// Pairs resident after the fill.
    pub resident_kvps: u64,
    /// Mean aggregate update-phase bandwidth (MB/s, user bytes).
    pub agg_mbps: f64,
    /// Host-observed write latency percentiles (µs).
    pub p50_us: f64,
    /// 99th percentile (µs).
    pub p99_us: f64,
    /// 99.9th percentile (µs) — where per-shard GC pauses surface.
    pub p999_us: f64,
    /// Downsampled aggregate bandwidth timeline (MB/s).
    pub timeline: Vec<f64>,
    /// Update-phase windows in which at least one shard dipped below
    /// half its own mean bandwidth (per-shard collapse windows).
    pub shard_dip_windows: u64,
    /// Of those, windows where **every** shard dipped at once — a
    /// synchronized, single-device-style whole-cluster collapse.
    pub synchronized_dip_windows: u64,
    /// Foreground-GC episodes summed over shards (update phase).
    pub fg_gc_events: u64,
}

impl ScaleoutPoint {
    /// Fraction of dip windows that were synchronized across all shards.
    pub fn sync_fraction(&self) -> f64 {
        if self.shard_dip_windows == 0 {
            return 0.0;
        }
        self.synchronized_dip_windows as f64 / self.shard_dip_windows as f64
    }
}

/// The full sweep.
#[derive(Debug, Clone, Default)]
pub struct ScaleoutResult {
    /// One point per shard count, ascending.
    pub points: Vec<ScaleoutPoint>,
}

impl ScaleoutResult {
    /// Finds the point for a shard count.
    pub fn point(&self, shards: usize) -> &ScaleoutPoint {
        self.points
            .iter()
            .find(|p| p.shards == shards)
            .unwrap_or_else(|| panic!("missing point for {shards} shards"))
    }
}

/// Builds the sweep's cluster for one shard count.
fn cluster(scale: Scale, shards: usize) -> ClusterStore {
    match scale {
        Scale::Tiny => setup::kv_cluster_small(shards, 42),
        _ => setup::kv_cluster(shards, 42),
    }
}

/// A shard count's cluster after its fill phase: the fill sub-cell's
/// product, handed to the measure sub-cell.
struct Filled {
    store: ClusterStore,
    fill_finished: SimTime,
    n_kv: u64,
    shards: usize,
    fg_before: u64,
}

/// Fill sub-cell: builds the cluster and fills it.
fn fill_point(scale: Scale, shards: usize) -> Filled {
    let mut store = cluster(scale, shards);

    // Fill so the *hottest* shard sits at ~80 % occupancy (Fig. 6
    // territory). Consistent hashing spreads keys unevenly, so sizing
    // against the aggregate would overfill whichever shard the ring
    // favors; scale by its exact ring share instead. At N = 1 the share
    // is 1.0 and this reduces to the Fig. 6 fill formula.
    let cap = store.cluster().space().capacity_bytes;
    let cap_shard = cap / shards as u64;
    let max_share = store
        .cluster()
        .shards()
        .iter()
        .map(|s| store.cluster().ring().share_of(s.id()))
        .fold(0.0f64, f64::max);
    let n_kv = (cap_shard as f64 * 0.8 / (4160.0 * max_share)) as u64;
    let f = crate::experiments::fill(&mut store, n_kv, 4096, 8, SimTime::ZERO);
    let fg_before = store.cluster().stats().devices.foreground_gc_events;
    Filled {
        store,
        fill_finished: f.finished,
        n_kv,
        shards,
        fg_before,
    }
}

/// Measure sub-cell: uniform updates over a filled cluster.
fn measure_point(filled: Filled) -> ScaleoutPoint {
    let Filled {
        mut store,
        fill_finished,
        n_kv,
        shards,
        fg_before,
    } = filled;

    // Uniform updates at a queue depth deep enough to keep all shards
    // busy at N = 8.
    let upd = run_phase(
        &mut store,
        &WorkloadSpec::new("updates", n_kv, n_kv)
            .mix(OpMix::UpdateOnly)
            .value(ValueSize::Fixed(4096))
            .queue_depth(32)
            .seed(37),
        crate::experiments::settle(fill_finished),
    );

    let (shard_dips, sync_dips) = dip_windows(&store, upd.started);
    ScaleoutPoint {
        shards,
        resident_kvps: n_kv,
        agg_mbps: upd.mean_mbps(),
        p50_us: pctl_us(&upd, 50.0),
        p99_us: pctl_us(&upd, 99.0),
        p999_us: pctl_us(&upd, 99.9),
        timeline: downsample(&upd),
        shard_dip_windows: shard_dips,
        synchronized_dip_windows: sync_dips,
        fg_gc_events: store.cluster().stats().devices.foreground_gc_events - fg_before,
    }
}

/// Runs the experiment as two sub-cell rounds: one fill cell per shard
/// count, then one measure cell per filled cluster. Each round is
/// scheduled by [`cells::run_cells_phase`], so the largest schedulable
/// unit is a single phase, not fill + measure fused.
pub fn run(scale: Scale) -> ScaleoutResult {
    let fills: Vec<cells::Cell<Filled>> = SHARD_COUNTS
        .iter()
        .map(|&shards| {
            let cell: cells::Cell<Filled> = Box::new(move || fill_point(scale, shards));
            cell
        })
        .collect();
    let filled = cells::run_cells_phase("scaleout", "fill", fills);
    let measures: Vec<cells::Cell<ScaleoutPoint>> = filled
        .into_iter()
        .map(|f| {
            let cell: cells::Cell<ScaleoutPoint> = Box::new(move || measure_point(f));
            cell
        })
        .collect();
    ScaleoutResult {
        points: cells::run_cells_phase("scaleout", "measure", measures),
    }
}

/// Update-phase write percentile in microseconds.
fn pctl_us(m: &RunMetrics, p: f64) -> f64 {
    if m.writes.is_empty() {
        return 0.0;
    }
    m.writes.percentile(p).as_nanos() as f64 / 1_000.0
}

/// Counts update-phase windows with at least one shard below half its
/// own mean bandwidth, and the subset where every shard dipped at once.
fn dip_windows(store: &ClusterStore, update_start: SimTime) -> (u64, u64) {
    // Collect each shard's update-phase points, keyed by window start.
    let mut per_shard: Vec<std::collections::BTreeMap<u64, f64>> = Vec::new();
    for shard in store.cluster().shards() {
        let pts: std::collections::BTreeMap<u64, f64> = shard
            .bandwidth()
            .points()
            .into_iter()
            .filter(|p| p.at >= update_start)
            .map(|p| (p.at.as_nanos(), p.mbps))
            .collect();
        per_shard.push(pts);
    }
    // Per-shard dip threshold: half that shard's own mean across the
    // phase (the Fig. 6 "collapse" criterion, applied per device).
    let thresholds: Vec<f64> = per_shard
        .iter()
        .map(|pts| {
            if pts.is_empty() {
                return 0.0;
            }
            pts.values().sum::<f64>() / pts.len() as f64 / 2.0
        })
        .collect();
    let mut windows: std::collections::BTreeSet<u64> = std::collections::BTreeSet::new();
    for pts in &per_shard {
        windows.extend(pts.keys().copied());
    }
    let mut any_dip = 0u64;
    let mut all_dip = 0u64;
    for w in windows {
        let mut dipping = 0usize;
        for (pts, &thr) in per_shard.iter().zip(&thresholds) {
            // A shard absent from a window moved zero bytes: that is a
            // dip too (a stalled shard produces no points).
            let mbps = pts.get(&w).copied().unwrap_or(0.0);
            if mbps < thr {
                dipping += 1;
            }
        }
        if dipping > 0 {
            any_dip += 1;
        }
        if dipping == per_shard.len() {
            all_dip += 1;
        }
    }
    (any_dip, all_dip)
}

/// Downsamples a phase's aggregate bandwidth series to ~24 points.
fn downsample(m: &RunMetrics) -> Vec<f64> {
    let pts = m.bandwidth.points();
    if pts.is_empty() {
        return Vec::new();
    }
    let chunk = pts.len().div_ceil(24);
    pts.chunks(chunk)
        .map(|c| c.iter().map(|p| p.mbps).sum::<f64>() / c.len() as f64)
        .collect()
}

/// The sweep table and timelines as a string (byte-stable for a given
/// result).
pub fn render(res: &ScaleoutResult) -> String {
    use std::fmt::Write;
    let mut out = String::new();
    writeln!(
        out,
        "\n=== Scale-out: uniform updates at 80 % occupancy, shard sweep ==="
    )
    .unwrap();
    let mut t = Table::new(&[
        "shards",
        "kvps",
        "agg MB/s",
        "p50 us",
        "p99 us",
        "p999 us",
        "dip wins",
        "sync wins",
        "fg-GC",
    ]);
    for p in &res.points {
        t.row(&[
            &p.shards.to_string(),
            &p.resident_kvps.to_string(),
            &f2(p.agg_mbps),
            &f2(p.p50_us),
            &f2(p.p99_us),
            &f2(p.p999_us),
            &p.shard_dip_windows.to_string(),
            &p.synchronized_dip_windows.to_string(),
            &p.fg_gc_events.to_string(),
        ]);
    }
    writeln!(out, "{t}").unwrap();
    for p in &res.points {
        let spark: Vec<String> = p.timeline.iter().map(|v| format!("{v:.0}")).collect();
        writeln!(
            out,
            "N={:<2} agg MB/s timeline: {}",
            p.shards,
            spark.join(" ")
        )
        .unwrap();
    }
    writeln!(
        out,
        "Cluster question: GC collapses stay per-shard (dip windows ≫ sync windows) \
         while aggregate bandwidth scales with N."
    )
    .unwrap();
    out
}

/// Prints the sweep table and timelines.
pub fn report(scale: Scale) -> ScaleoutResult {
    let res = run(scale);
    print!("{}", render(&res));
    res
}
