//! Fig. 5 — write bandwidth vs. value size: the zig-zag.
//!
//! Paper finding: the block-SSD's write bandwidth is smooth in value
//! size, but the KV-SSD's dips sharply just past each multiple of its
//! per-page value budget (~24 KiB: dips at 25 KiB, 49 KiB, ...), because
//! the tail segment of a split blob occupies a page of its own plus
//! offset bookkeeping.

use kvssd_kvbench::report::{bytes, f2};
use kvssd_kvbench::Table;
use kvssd_sim::SimTime;

use crate::experiments::cells;
use crate::{setup, Scale};

/// The sweep's value sizes: straddling the 24 KiB / 48 KiB boundaries.
pub const VALUE_SIZES: [u32; 12] = [
    4 * 1024,
    8 * 1024,
    16 * 1024,
    20 * 1024,
    24 * 1024,
    25 * 1024,
    28 * 1024,
    32 * 1024,
    40 * 1024,
    48 * 1024,
    49 * 1024,
    64 * 1024,
];

/// One value-size point.
#[derive(Debug, Clone)]
pub struct Fig5Row {
    /// Value size in bytes.
    pub value_bytes: u32,
    /// KV-SSD insert bandwidth, MB/s of user data.
    pub kv_mbps: f64,
    /// Block-SSD insert bandwidth, MB/s.
    pub blk_mbps: f64,
}

/// The figure's series.
#[derive(Debug, Clone, Default)]
pub struct Fig5Result {
    /// One row per value size, ascending.
    pub rows: Vec<Fig5Row>,
}

impl Fig5Result {
    /// The KV bandwidth at a size.
    pub fn kv_mbps(&self, value_bytes: u32) -> f64 {
        self.rows
            .iter()
            .find(|r| r.value_bytes == value_bytes)
            .map(|r| r.kv_mbps)
            .unwrap_or_else(|| panic!("missing size {value_bytes}"))
    }
}

/// Runs the experiment: insert-only at QD 64, fixed total volume. One
/// cell per value size, scheduled by [`cells::run_cells`].
pub fn run(scale: Scale) -> Fig5Result {
    let volume = scale.pick(24 << 20, 300 << 20, 1 << 30);
    let work: Vec<cells::Cell<Fig5Row>> = VALUE_SIZES
        .iter()
        .map(|&vs| {
            let cell: cells::Cell<Fig5Row> = Box::new(move || {
                let n = (volume / vs as u64).max(200);
                let mut kv = setup::kv_ssd();
                let m = crate::experiments::fill(&mut kv, n, vs, 64, SimTime::ZERO);
                let kv_mbps = m.mean_mbps();
                let mut blk = setup::block_direct(vs);
                let m = crate::experiments::fill(&mut blk, n, vs, 64, SimTime::ZERO);
                Fig5Row {
                    value_bytes: vs,
                    kv_mbps,
                    blk_mbps: m.mean_mbps(),
                }
            });
            cell
        })
        .collect();
    Fig5Result {
        rows: cells::run_cells("fig5", work),
    }
}

/// The paper-shaped series as a string (byte-stable for a given result).
pub fn render(res: &Fig5Result) -> String {
    use std::fmt::Write;
    let mut out = String::new();
    writeln!(
        out,
        "\n=== Fig. 5: write bandwidth vs value size (insert-only, QD 64) ==="
    )
    .unwrap();
    let mut t = Table::new(&["value", "KV-SSD MB/s", "block MB/s", "KV/blk"]);
    for r in &res.rows {
        t.row(&[
            &bytes(r.value_bytes as u64),
            &f2(r.kv_mbps),
            &f2(r.blk_mbps),
            &f2(r.kv_mbps / r.blk_mbps),
        ]);
    }
    writeln!(out, "{t}").unwrap();
    writeln!(
        out,
        "KV dip past the page budget: 24KiB -> 25KiB bandwidth {:.2} -> {:.2} MB/s ({:.0}% drop; paper shows a sharp dip)",
        res.kv_mbps(24 * 1024),
        res.kv_mbps(25 * 1024),
        100.0 * (1.0 - res.kv_mbps(25 * 1024) / res.kv_mbps(24 * 1024)),
    )
    .unwrap();
    writeln!(
        out,
        "KV recovery then second dip: 48KiB {:.2} MB/s -> 49KiB {:.2} MB/s",
        res.kv_mbps(48 * 1024),
        res.kv_mbps(49 * 1024),
    )
    .unwrap();
    out
}

/// Prints the paper-shaped series.
pub fn report(scale: Scale) -> Fig5Result {
    let res = run(scale);
    print!("{}", render(&res));
    res
}
