//! The parallel experiment scheduler.
//!
//! Every figure's sweep decomposes into independent [`Cell`]s — each
//! builds its own device(s) from fixed seeds, so cells share no state
//! and can run on any thread. [`run_cells`] executes them on a
//! `std::thread::scope` worker pool sized from
//! `available_parallelism()` (override: `KVSSD_BENCH_THREADS`), and
//! collects results **by cell index**, so the assembled figure is
//! byte-identical to the serial path regardless of completion order.
//!
//! `KVSSD_BENCH_THREADS=1` is an exact pass-through: cells run in index
//! order on the calling thread with no pool, mirroring the cluster's
//! 1-shard-equals-bare-device invariant.
//!
//! The scheduler also self-times: per-cell and per-figure wall-clock
//! land in a process-wide registry that the `bench_harness` example
//! drains into `BENCH_HARNESS.json`.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use crate::walltime::Stopwatch;

/// One independent unit of a figure's sweep.
pub type Cell<T> = Box<dyn FnOnce() -> T + Send>;

/// Wall-clock record of one `run_cells` invocation.
#[derive(Debug, Clone)]
pub struct FigureTiming {
    /// Figure label (e.g. `fig5`).
    pub figure: String,
    /// Sub-cell phase within the figure (e.g. `fill`, `measure`);
    /// empty for figures that run as one monolithic round.
    pub phase: String,
    /// Worker threads used.
    pub threads: usize,
    /// Number of cells executed.
    pub cells: usize,
    /// Wall-clock seconds for the whole figure.
    pub wall_seconds: f64,
    /// Wall-clock seconds per cell, by cell index.
    pub cell_seconds: Vec<f64>,
}

static TIMINGS: Mutex<Vec<FigureTiming>> = Mutex::new(Vec::new());

/// Programmatic thread-count override (`0` = none). Takes precedence
/// over the environment so one process can time serial vs parallel
/// passes back to back.
static OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// Forces the worker count (`None` restores env/auto sizing).
pub fn set_thread_override(threads: Option<usize>) {
    OVERRIDE.store(threads.unwrap_or(0), Ordering::SeqCst);
}

/// Worker threads the next `run_cells` will use: the programmatic
/// override, else `KVSSD_BENCH_THREADS`, else `available_parallelism()`.
pub fn thread_count() -> usize {
    let forced = OVERRIDE.load(Ordering::SeqCst);
    if forced > 0 {
        return forced;
    }
    if let Some(s) = crate::env_config("KVSSD_BENCH_THREADS") {
        if let Some(n) = s.trim().parse::<usize>().ok().filter(|&n| n >= 1) {
            return n;
        }
    }
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

/// Drains the accumulated per-figure timings (used by `bench_harness`).
pub fn take_timings() -> Vec<FigureTiming> {
    std::mem::take(&mut *TIMINGS.lock().expect("timing registry"))
}

/// Runs `cells` and returns their results in cell-index order.
pub fn run_cells<T: Send>(figure: &str, cells: Vec<Cell<T>>) -> Vec<T> {
    run_cells_phase(figure, "", cells)
}

/// Runs one phase of a figure split into scheduling sub-cells
/// (e.g. `fill` then `measure`): identical execution semantics to
/// [`run_cells`], but the timing record carries the phase label so the
/// harness and `repro_all --timings` can show where a figure's
/// wall-clock goes.
pub fn run_cells_phase<T: Send>(figure: &str, phase: &str, cells: Vec<Cell<T>>) -> Vec<T> {
    let n = cells.len();
    let threads = thread_count().min(n.max(1));
    let wall = Stopwatch::start();
    let (out, cell_seconds) = if threads <= 1 {
        run_serial(cells)
    } else {
        run_pool(cells, threads)
    };
    TIMINGS.lock().expect("timing registry").push(FigureTiming {
        figure: figure.to_string(),
        phase: phase.to_string(),
        threads,
        cells: n,
        wall_seconds: wall.elapsed_secs(),
        cell_seconds,
    });
    out
}

/// The exact serial path: index order, calling thread, no pool.
fn run_serial<T: Send>(cells: Vec<Cell<T>>) -> (Vec<T>, Vec<f64>) {
    let mut out = Vec::with_capacity(cells.len());
    let mut secs = Vec::with_capacity(cells.len());
    for cell in cells {
        let t0 = Stopwatch::start();
        out.push(cell());
        secs.push(t0.elapsed_secs());
    }
    (out, secs)
}

fn run_pool<T: Send>(cells: Vec<Cell<T>>, threads: usize) -> (Vec<T>, Vec<f64>) {
    let n = cells.len();
    let work: Vec<Mutex<Option<Cell<T>>>> =
        cells.into_iter().map(|c| Mutex::new(Some(c))).collect();
    let slots: Vec<Mutex<Option<(T, f64)>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let cell = work[i]
                    .lock()
                    .expect("work slot")
                    .take()
                    .expect("each cell is claimed exactly once");
                let t0 = Stopwatch::start();
                let result = cell();
                *slots[i].lock().expect("result slot") = Some((result, t0.elapsed_secs()));
            });
        }
    });
    let mut out = Vec::with_capacity(n);
    let mut secs = Vec::with_capacity(n);
    for slot in slots {
        let (result, s) = slot
            .into_inner()
            .expect("result slot")
            .expect("every cell ran to completion");
        out.push(result);
        secs.push(s);
    }
    (out, secs)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_come_back_in_index_order() {
        set_thread_override(Some(4));
        let cells: Vec<Cell<usize>> = (0..32)
            .map(|i| {
                let c: Cell<usize> = Box::new(move || i * i);
                c
            })
            .collect();
        let got = run_cells("test-order", cells);
        set_thread_override(None);
        assert_eq!(got, (0..32).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn serial_override_runs_on_calling_thread() {
        set_thread_override(Some(1));
        let me = std::thread::current().id();
        let cells: Vec<Cell<bool>> = vec![Box::new(move || std::thread::current().id() == me)];
        let got = run_cells("test-serial", cells);
        set_thread_override(None);
        assert_eq!(got, vec![true]);
    }

    #[test]
    fn empty_cell_list_is_fine() {
        let got: Vec<u8> = run_cells("test-empty", Vec::new());
        assert!(got.is_empty());
    }
}
