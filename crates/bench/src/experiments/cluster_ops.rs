//! Cluster hot-path microbenchmark: host-side ops/second of the
//! replicated KV-SSD cluster simulator under a store-heavy churn.
//!
//! The `device_ops` companion for the per-op fast path overhaul. Unlike
//! the figures, this measures *wall-clock* cost of simulating the
//! cluster, not virtual-time behavior. Both legs replay the identical
//! fixed-seed op plan against identically filled clusters:
//!
//! * **baseline** — the pre-overhaul hot loop: one boxed key
//!   allocation per op ([`KeyGen::key`]), one dynamic [`KvStore`]
//!   dispatch and one runner hand-off per op, with every shard's key
//!   registry routed through the legacy byte-ordered tree
//!   ([`kvssd_cluster::KvCluster::set_legacy_key_registry`]);
//! * **optimized** — the batched path the figures run: keys
//!   regenerated in place ([`KeyGen::key_into`]), ops planned into an
//!   [`OpBatch`] and executed through the monomorphized
//!   [`ClusterStore`] `run_ops` fan-out, registries on the
//!   hash-by-key-hash fast path (the default).
//!
//! Both legs must produce an identical behavior checksum (final virtual
//! time, latency aggregates, and every cluster-visible counter) — the
//! fast path is a pure host-side optimization, so any divergence is a
//! bug and the run panics.

use kvssd_cluster::{ClusterConfig, KvCluster};
use kvssd_core::{KvConfig, KvSsd};
use kvssd_flash::{FlashTiming, Geometry};
use kvssd_kvbench::keys::KeyGen;
use kvssd_kvbench::{ClusterStore, KvStore, OpBatch, PhaseRecorder};
use kvssd_sim::rng::mix64;
use kvssd_sim::{
    BandwidthSeries, DeterministicRng, LatencyHistogram, QueueRunner, SimDuration, SimTime,
};

use crate::walltime::Stopwatch;
use crate::Scale;

/// Fixed workload seed: every run of every leg replays the same ops.
const SEED: u64 = 0xC1_05_7E_12;

/// Shards in the cluster under test.
const SHARDS: usize = 4;

/// Replication factor: every store and delete fans out to R registries,
/// so registry cost shows the way a replicated deployment would see it.
const R: usize = 2;

/// Key size (bytes) — the figures' 16-byte keys.
const KEY_BYTES: usize = 16;

/// Value size (bytes). Small enough that per-op host bookkeeping (the
/// thing the fast path attacks) is a visible share of the op.
const VSIZE: u32 = 1024;

/// Queue depth both legs drive at.
const QD: usize = 16;

/// One planned churn operation: key index, value tag, read?
type Planned = (u64, u64, bool);

/// One leg's measurement.
#[derive(Debug, Clone, Copy)]
pub struct Leg {
    /// Host-side ops completed (stores + retrieves).
    pub ops: u64,
    /// Wall-clock seconds for the churn phase.
    pub seconds: f64,
    /// Behavior digest: virtual time, latency aggregates, counters.
    pub checksum: u64,
}

impl Leg {
    /// Ops per wall-clock second.
    pub fn ops_per_sec(&self) -> f64 {
        self.ops as f64 / self.seconds
    }
}

/// Both legs of the microbenchmark.
#[derive(Debug, Clone, Copy)]
pub struct ClusterOpsResult {
    /// Legacy per-op allocating leg.
    pub baseline: Leg,
    /// Batched fast-path leg.
    pub optimized: Leg,
}

impl ClusterOpsResult {
    /// Optimized throughput over baseline throughput.
    pub fn improvement(&self) -> f64 {
        self.optimized.ops_per_sec() / self.baseline.ops_per_sec()
    }
}

/// Roomy geometry: the churn stays GC-light (both legs identically so),
/// keeping the cluster/host path — what this bench compares — the
/// dominant cost.
fn geometry(scale: Scale) -> Geometry {
    Geometry {
        channels: 4,
        dies_per_channel: 2,
        planes_per_die: 2,
        blocks_per_plane: scale.pick(64, 256, 256) as u32,
        pages_per_block: 64,
        page_bytes: 32 * 1024,
    }
}

fn config() -> KvConfig {
    KvConfig {
        // Host-memory-only machinery that costs the same in both legs.
        iterator_buckets: false,
        max_kvps: 1_000_000,
        ..KvConfig::pm983_scaled()
    }
}

/// Resident keys; the churn runs `2 * n` ops.
fn population(scale: Scale) -> u64 {
    scale.pick(2_000, 300_000, 600_000)
}

fn cluster(scale: Scale) -> ClusterStore {
    ClusterStore::new(KvCluster::new(
        ClusterConfig::new(SHARDS, SEED).replication(R),
        |_| KvSsd::new(geometry(scale), FlashTiming::pm983_like(), config()),
    ))
}

/// Plans the fixed-seed churn: 85 % stores (fresh tags), 15 % reads,
/// uniform over the resident population. Shared by both legs, so the
/// ops are identical by construction.
fn plan_churn(n: u64) -> Vec<Planned> {
    let mut rng = DeterministicRng::seed_from(SEED);
    (0..2 * n)
        .map(|op| {
            let key = rng.below(n);
            let is_read = rng.below(100) < 15;
            (key, op, is_read)
        })
        .collect()
}

/// Fills `n` keys (setup: identical in both legs, untimed).
fn filled(scale: Scale, n: u64) -> ClusterStore {
    let mut store = cluster(scale);
    crate::experiments::fill(&mut store, n, VSIZE, QD, SimTime::ZERO);
    store
}

/// The pre-overhaul per-op hot loop: allocate the key, dispatch through
/// `dyn KvStore`, hand the runner one op at a time.
fn drive_per_op(
    store: &mut dyn KvStore,
    keygen: &KeyGen,
    plan: &[Planned],
    start: SimTime,
) -> (SimTime, LatencyHistogram, LatencyHistogram) {
    let mut runner = QueueRunner::starting_at(QD, start);
    let mut writes = LatencyHistogram::new();
    let mut reads = LatencyHistogram::new();
    for &(idx, tag, is_read) in plan {
        let key = keygen.key(idx);
        if is_read {
            let timing = runner.submit(|issue| store.read(issue, &key).0);
            reads.record(timing.latency());
        } else {
            let timing = runner.submit(|issue| store.insert(issue, &key, VSIZE, tag));
            writes.record(timing.latency());
        }
    }
    let finished = runner.drain();
    (store.flush(finished).max(finished), writes, reads)
}

/// The batched fast path: regenerate keys in place, plan into an
/// [`OpBatch`], execute through the store's `run_ops` fan-out.
fn drive_batched(
    store: &mut ClusterStore,
    keygen: &KeyGen,
    plan: &[Planned],
    start: SimTime,
) -> (SimTime, LatencyHistogram, LatencyHistogram) {
    let mut runner = QueueRunner::starting_at(QD, start);
    let mut writes = LatencyHistogram::new();
    let mut reads = LatencyHistogram::new();
    let mut bandwidth = BandwidthSeries::new(SimDuration::from_millis(100));
    let mut not_found = 0u64;
    let mut key_buf = Vec::with_capacity(KEY_BYTES);
    let mut batch = OpBatch::default();
    for chunk in plan.chunks(256) {
        batch.clear();
        for &(idx, tag, is_read) in chunk {
            keygen.key_into(idx, &mut key_buf);
            batch.push(&key_buf, VSIZE, tag, is_read);
        }
        let mut rec = PhaseRecorder {
            writes: &mut writes,
            reads: &mut reads,
            bandwidth: &mut bandwidth,
            not_found: &mut not_found,
            phase_start: start,
        };
        store.run_ops(&mut runner, &batch, &mut rec);
    }
    let finished = runner.drain();
    (store.flush(finished).max(finished), writes, reads)
}

/// Behavior digest over everything the legs could have perturbed:
/// final virtual time, per-kind latency counts and means, and the
/// cluster's device/registry counters.
fn checksum(
    store: &ClusterStore,
    end: SimTime,
    writes: &LatencyHistogram,
    reads: &LatencyHistogram,
) -> u64 {
    let s = store.cluster().stats();
    let mut c = mix64(end.since(SimTime::ZERO).as_nanos());
    for part in [
        s.devices.stores,
        s.devices.retrieves,
        s.devices.not_found,
        s.devices.foreground_gc_events,
        writes.count(),
        reads.count(),
        writes.mean().as_nanos(),
        reads.mean().as_nanos(),
        store.cluster().len(),
    ] {
        c = mix64(c ^ part);
    }
    for shard in store.cluster().shards() {
        c = mix64(c ^ shard.key_count() as u64);
    }
    c
}

/// Replays the fixed-seed churn on a freshly filled cluster and returns
/// the leg measurement. Fill and registry-mode switch are setup; only
/// the churn is timed.
fn run_leg(scale: Scale, plan: &[Planned], fast: bool) -> Leg {
    let n = population(scale);
    let mut store = filled(scale, n);
    store.cluster_mut().set_legacy_key_registry(!fast);
    let keygen = KeyGen::new(KEY_BYTES);
    let start = crate::experiments::settle(store.cluster().quiesce_time());

    let t0 = Stopwatch::start();
    let (end, writes, reads) = if fast {
        drive_batched(&mut store, &keygen, plan, start)
    } else {
        drive_per_op(&mut store, &keygen, plan, start)
    };
    let seconds = t0.elapsed_secs();

    Leg {
        ops: plan.len() as u64,
        seconds,
        checksum: checksum(&store, end, &writes, &reads),
    }
}

/// Measurement rounds per leg; legs are interleaved and each leg keeps
/// its fastest round, so a background noise spike on this (possibly
/// single-CPU) host hits one round, not one leg.
const ROUNDS: usize = 3;

/// Runs both legs (interleaved, best-of-[`ROUNDS`]) and checks they
/// behaved identically.
///
/// # Panics
///
/// Panics if the two legs' behavior checksums diverge — the batched
/// fast path must be wall-clock-only.
pub fn run(scale: Scale) -> ClusterOpsResult {
    let plan = plan_churn(population(scale));
    let mut best: Option<(Leg, Leg)> = None;
    for _ in 0..ROUNDS {
        let baseline = run_leg(scale, &plan, false);
        let optimized = run_leg(scale, &plan, true);
        assert_eq!(
            baseline.checksum, optimized.checksum,
            "batched fast path changed cluster behavior"
        );
        best = Some(match best {
            None => (baseline, optimized),
            Some((b, o)) => (
                if baseline.seconds < b.seconds {
                    baseline
                } else {
                    b
                },
                if optimized.seconds < o.seconds {
                    optimized
                } else {
                    o
                },
            ),
        });
    }
    let (baseline, optimized) = best.expect("ROUNDS > 0");
    ClusterOpsResult {
        baseline,
        optimized,
    }
}

/// Prints the microbench table.
pub fn report(scale: Scale) {
    print_table(&run(scale));
}

/// Prints the table for an already-measured result.
pub fn print_table(r: &ClusterOpsResult) {
    println!("cluster_ops: replicated-cluster host throughput (R={R}, fixed seed)");
    println!("  leg        ops      seconds   ops/sec");
    println!(
        "  legacy     {:<8} {:<9.3} {:.0}",
        r.baseline.ops,
        r.baseline.seconds,
        r.baseline.ops_per_sec()
    );
    println!(
        "  optimized  {:<8} {:<9.3} {:.0}",
        r.optimized.ops,
        r.optimized.seconds,
        r.optimized.ops_per_sec()
    );
    println!(
        "  improvement {:.2}x (checksum {:016x}, legs identical)",
        r.improvement(),
        r.baseline.checksum
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn legs_agree_at_tiny_scale() {
        let r = run(Scale::Tiny);
        assert_eq!(r.baseline.checksum, r.optimized.checksum);
        assert_eq!(r.baseline.ops, r.optimized.ops);
    }
}
