//! Fabric — quorum reads over a paid transport, hedged vs not.
//!
//! Every other figure runs the cluster on the free in-process
//! transport; this one pays for the wire. An 8-shard, 3-way-replicated
//! cluster (majority quorums, lean reads) runs its replica legs over a
//! [`kvssd_fabric::Fabric`] and the sweep asks two questions:
//!
//! 1. **Link sweep** — how do quorum-read percentiles track one-way
//!    link latency and jitter? Three cells at 5/20/80 µs links.
//! 2. **Slow replica** — one shard's link degrades to 2 ms (the classic
//!    gray-failure straggler). Lean reads that land on the slow
//!    replica's quorum stall on it; a hedged spare leg issued at the
//!    hedge delay routes around it. Two cells, hedging off vs on, plus
//!    the extra-legs bill the hedge pays.
//!
//! Expected shapes: the link sweep moves the whole read distribution by
//! ~2 RTTs; the slow-replica cell shows hedging pulling p99/p99.9 from
//! "slow-link RTT" back toward "hedge delay + a fast RTT" at a spare-leg
//! cost well under one extra leg per read.

use kvssd_fabric::LinkConfig;
use kvssd_kvbench::report::f2;
use kvssd_kvbench::{run_phase, ClusterStore, OpMix, Table, ValueSize, WorkloadSpec};
use kvssd_sim::{LatencyHistogram, SimDuration, SimTime};

use crate::experiments::cells;
use crate::{setup, Scale};

/// One sweep scenario (a cell builds its own cluster from this).
#[derive(Debug, Clone, Copy)]
pub struct FabricScenario {
    /// Row label (stable across scales; tests key off it).
    pub name: &'static str,
    /// One-way link latency, µs (every link).
    pub link_us: u64,
    /// Seeded uniform jitter bound, µs (every link).
    pub jitter_us: u64,
    /// One link degraded to this one-way latency, µs (0 = healthy).
    pub slow_link_us: u64,
    /// Hedge delay for the spare read leg, µs (0 = hedging off).
    pub hedge_us: u64,
}

/// The sweep: three healthy-link latency points, then the slow-replica
/// scenario with hedging off and on.
pub const SWEEP: [FabricScenario; 5] = [
    FabricScenario {
        name: "lat5",
        link_us: 5,
        jitter_us: 1,
        slow_link_us: 0,
        hedge_us: 0,
    },
    FabricScenario {
        name: "lat20",
        link_us: 20,
        jitter_us: 5,
        slow_link_us: 0,
        hedge_us: 0,
    },
    FabricScenario {
        name: "lat80",
        link_us: 80,
        jitter_us: 20,
        slow_link_us: 0,
        hedge_us: 0,
    },
    FabricScenario {
        name: "slow",
        link_us: 10,
        jitter_us: 2,
        slow_link_us: 2000,
        hedge_us: 0,
    },
    FabricScenario {
        name: "slow-hedge",
        link_us: 10,
        jitter_us: 2,
        slow_link_us: 2000,
        hedge_us: 750,
    },
];

/// Shard count every cell runs (the slow scenario degrades one link).
pub const SHARDS: usize = 8;

/// Replication factor (majority quorums: 2 of 3).
pub const REPLICAS: usize = 3;

/// The shard index whose link the slow scenarios degrade.
pub const SLOW_SHARD: usize = 1;

/// One scenario's measurements.
#[derive(Debug, Clone)]
pub struct FabricPoint {
    /// Scenario label (`SWEEP` name).
    pub name: &'static str,
    /// One-way link latency, µs.
    pub link_us: u64,
    /// Jitter bound, µs.
    pub jitter_us: u64,
    /// Degraded link's latency, µs (0 = healthy).
    pub slow_link_us: u64,
    /// Hedge delay, µs (0 = off).
    pub hedge_us: u64,
    /// Distinct keys resident after the fill.
    pub resident_kvps: u64,
    /// Quorum-acknowledged write latency, 99th percentile (µs).
    pub write_p99_us: f64,
    /// Quorum-acknowledged read latency, median (µs).
    pub read_p50_us: f64,
    /// Quorum-acknowledged read latency, 99th percentile (µs).
    pub read_p99_us: f64,
    /// Quorum-acknowledged read latency, 99.9th percentile (µs).
    pub read_p999_us: f64,
    /// Spare read legs the hedge launched.
    pub hedged_spares: u64,
    /// Spare legs as a percentage of reads — the extra-read bill.
    pub extra_read_pct: f64,
}

/// The full sweep.
#[derive(Debug, Clone, Default)]
pub struct FabricResult {
    /// One point per `SWEEP` entry, in order.
    pub points: Vec<FabricPoint>,
}

impl FabricResult {
    /// Finds a point by scenario name.
    pub fn point(&self, name: &str) -> &FabricPoint {
        self.points
            .iter()
            .find(|p| p.name == name)
            .unwrap_or_else(|| panic!("missing fabric point `{name}`"))
    }
}

/// Builds one cell's fabric-backed cluster and degrades the slow link.
fn cluster(scale: Scale, sc: FabricScenario) -> ClusterStore {
    let link = LinkConfig::datacenter()
        .latency(SimDuration::from_micros(sc.link_us))
        .jitter(SimDuration::from_micros(sc.jitter_us));
    let hedge = (sc.hedge_us > 0).then(|| SimDuration::from_micros(sc.hedge_us));
    let mut store = match scale {
        Scale::Tiny => setup::kv_cluster_fabric_small(SHARDS, REPLICAS, 42, link, hedge),
        _ => setup::kv_cluster_fabric(SHARDS, REPLICAS, 42, link, hedge),
    };
    if sc.slow_link_us > 0 {
        let slow = link
            .latency(SimDuration::from_micros(sc.slow_link_us))
            .jitter(SimDuration::from_micros(sc.slow_link_us / 10));
        store
            .cluster_mut()
            .fabric_mut()
            .expect("fabric-backed cluster")
            .shape_link(SLOW_SHARD, slow);
    }
    store
}

/// Runs one scenario: fill, then uniform quorum reads.
fn run_point(scale: Scale, sc: FabricScenario) -> FabricPoint {
    let mut store = cluster(scale, sc);
    let n_kv = scale.pick(300, 3_000, 12_000);

    let f = crate::experiments::fill(&mut store, n_kv, 1024, 8, SimTime::ZERO);

    let rd = run_phase(
        &mut store,
        &WorkloadSpec::new("reads", n_kv, n_kv)
            .mix(OpMix::ReadOnly)
            .value(ValueSize::Fixed(1024))
            .queue_depth(4)
            .seed(53),
        crate::experiments::settle(f.finished),
    );

    let spares = store.cluster().hedged_spares();
    FabricPoint {
        name: sc.name,
        link_us: sc.link_us,
        jitter_us: sc.jitter_us,
        slow_link_us: sc.slow_link_us,
        hedge_us: sc.hedge_us,
        resident_kvps: n_kv,
        write_p99_us: pctl_us(&f.writes, 99.0),
        read_p50_us: pctl_us(&rd.reads, 50.0),
        read_p99_us: pctl_us(&rd.reads, 99.0),
        read_p999_us: pctl_us(&rd.reads, 99.9),
        hedged_spares: spares,
        extra_read_pct: spares as f64 * 100.0 / n_kv as f64,
    }
}

/// Runs the experiment. One cell per scenario (each builds its own
/// cluster), scheduled by [`cells::run_cells`].
pub fn run(scale: Scale) -> FabricResult {
    let work: Vec<cells::Cell<FabricPoint>> = SWEEP
        .iter()
        .map(|&sc| {
            let cell: cells::Cell<FabricPoint> = Box::new(move || run_point(scale, sc));
            cell
        })
        .collect();
    FabricResult {
        points: cells::run_cells("fabric", work),
    }
}

/// Histogram percentile in microseconds.
fn pctl_us(h: &LatencyHistogram, p: f64) -> f64 {
    if h.is_empty() {
        return 0.0;
    }
    h.percentile(p).as_nanos() as f64 / 1_000.0
}

/// The sweep table as a string (byte-stable for a given result).
pub fn render(res: &FabricResult) -> String {
    use std::fmt::Write;
    let mut out = String::new();
    writeln!(
        out,
        "\n=== Fabric: quorum reads over a paid transport, hedged vs not ===\n\
         N={SHARDS} R={REPLICAS} majority quorums, lean reads; `slow` rows degrade one link"
    )
    .unwrap();
    let mut t = Table::new(&[
        "scenario",
        "link us",
        "jit us",
        "slow us",
        "hedge us",
        "kvps",
        "wr p99 us",
        "rd p50 us",
        "rd p99 us",
        "rd p999 us",
        "spares",
        "extra rd %",
    ]);
    for p in &res.points {
        t.row(&[
            p.name,
            &p.link_us.to_string(),
            &p.jitter_us.to_string(),
            &p.slow_link_us.to_string(),
            &p.hedge_us.to_string(),
            &p.resident_kvps.to_string(),
            &f2(p.write_p99_us),
            &f2(p.read_p50_us),
            &f2(p.read_p99_us),
            &f2(p.read_p999_us),
            &p.hedged_spares.to_string(),
            &f2(p.extra_read_pct),
        ]);
    }
    writeln!(out, "{t}").unwrap();
    writeln!(
        out,
        "Cluster question: when one replica's link grays out, what does it cost \
         to keep the read tail? Hedged spares cap p99/p99.9 near the hedge delay \
         for a fraction of an extra leg per read."
    )
    .unwrap();
    out
}

/// Prints the sweep table.
pub fn report(scale: Scale) -> FabricResult {
    let res = run(scale);
    print!("{}", render(&res));
    res
}
