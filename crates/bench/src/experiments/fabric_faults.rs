//! Fabric faults — what per-op deadlines and seeded retries buy back
//! when the wire eats legs.
//!
//! The `fabric` figure prices a healthy wire; this one breaks it. An
//! 8-shard, 3-way-replicated cluster (majority quorums) runs a
//! closed-loop store-then-read workload over links with seeded message
//! loss, and the sweep walks `drop_ppm × op_timeout × max_retries`
//! (plus one hedged-write variant) asking: how many operations that a
//! raw transport would have failed with `QuorumUnavailable` does the
//! retry budget rescue, and what do the re-sent legs cost in wire
//! bytes?
//!
//! Expected shapes: at a given loss rate, availability climbs steeply
//! with the first retry and saturates by two or three; the wire bill
//! grows roughly linearly with the retry budget; hedged writes shave
//! a little more unavailability for a few spare legs. Each cell is
//! deterministic — same seed, same faults, same table bytes.

use kvssd_core::KvError;
use kvssd_core::Payload;
use kvssd_fabric::LinkConfig;
use kvssd_kvbench::report::f2;
use kvssd_kvbench::Table;
use kvssd_sim::{SimDuration, SimTime};

use crate::experiments::cells;
use crate::{setup, Scale};

/// One sweep scenario (a cell builds its own faulty cluster from it).
#[derive(Debug, Clone, Copy)]
pub struct FaultScenario {
    /// Row label (stable across scales; tests key off it).
    pub name: &'static str,
    /// Per-message loss probability, parts per million, each way.
    pub drop_ppm: u32,
    /// Per-leg acknowledgement deadline, µs (0 = deadlines off).
    pub timeout_us: u64,
    /// Re-issues allowed per leg once the deadline is armed.
    pub retries: u32,
    /// Hedged-write spare delay, µs (0 = off).
    pub hedge_us: u64,
}

/// The sweep: a light-loss pair (raw vs retried), then a 20 % loss
/// column walking the retry budget, the timeout axis, and hedged
/// writes.
pub const SWEEP: [FaultScenario; 7] = [
    FaultScenario {
        name: "drop2-raw",
        drop_ppm: 20_000,
        timeout_us: 0,
        retries: 0,
        hedge_us: 0,
    },
    FaultScenario {
        name: "drop2-t500r2",
        drop_ppm: 20_000,
        timeout_us: 500,
        retries: 2,
        hedge_us: 0,
    },
    FaultScenario {
        name: "drop20-raw",
        drop_ppm: 200_000,
        timeout_us: 0,
        retries: 0,
        hedge_us: 0,
    },
    FaultScenario {
        name: "drop20-t500r1",
        drop_ppm: 200_000,
        timeout_us: 500,
        retries: 1,
        hedge_us: 0,
    },
    FaultScenario {
        name: "drop20-t500r3",
        drop_ppm: 200_000,
        timeout_us: 500,
        retries: 3,
        hedge_us: 0,
    },
    FaultScenario {
        name: "drop20-t2000r3",
        drop_ppm: 200_000,
        timeout_us: 2000,
        retries: 3,
        hedge_us: 0,
    },
    FaultScenario {
        name: "drop20-t500r3-hw",
        drop_ppm: 200_000,
        timeout_us: 500,
        retries: 3,
        hedge_us: 200,
    },
];

/// Shard count every cell runs.
pub const SHARDS: usize = 8;

/// Replication factor (majority quorums: 2 of 3).
pub const REPLICAS: usize = 3;

/// One scenario's measurements.
#[derive(Debug, Clone)]
pub struct FaultPoint {
    /// Scenario label (`SWEEP` name).
    pub name: &'static str,
    /// Per-message loss, ppm each way.
    pub drop_ppm: u32,
    /// Deadline, µs (0 = off).
    pub timeout_us: u64,
    /// Retry budget per leg.
    pub retries: u32,
    /// Hedged-write delay, µs (0 = off).
    pub hedge_us: u64,
    /// Closed-loop ops attempted (stores + reads).
    pub ops: u64,
    /// Ops that assembled their quorum.
    pub ok_ops: u64,
    /// Ops that failed typed with `QuorumUnavailable`.
    pub unavailable: u64,
    /// Ok ops as a percentage of all ops.
    pub availability_pct: f64,
    /// Ops whose quorum only assembled thanks to retried/hedged legs —
    /// exactly the ops the raw transport would have failed.
    pub rescued: u64,
    /// Leg re-issues after missed deadlines.
    pub leg_retries: u64,
    /// Hedged-write spare legs launched.
    pub write_spares: u64,
    /// Re-delivered mutations deduped at replicas.
    pub dup_suppressed: u64,
    /// Total payload bytes offered to the wire.
    pub wire_bytes: u64,
    /// Messages the wire lost (seeded drops).
    pub dropped: u64,
}

/// The full sweep.
#[derive(Debug, Clone, Default)]
pub struct FabricFaultsResult {
    /// One point per `SWEEP` entry, in order.
    pub points: Vec<FaultPoint>,
}

impl FabricFaultsResult {
    /// Finds a point by scenario name.
    pub fn point(&self, name: &str) -> &FaultPoint {
        self.points
            .iter()
            .find(|p| p.name == name)
            .unwrap_or_else(|| panic!("missing fabric_faults point `{name}`"))
    }

    /// Extra wire bytes a point paid over the raw cell at the same
    /// loss rate (0 when the raw anchor is absent or cheaper).
    pub fn extra_bytes_vs_raw(&self, name: &str) -> u64 {
        let p = self.point(name);
        let raw = self
            .points
            .iter()
            .find(|r| r.drop_ppm == p.drop_ppm && r.timeout_us == 0 && r.hedge_us == 0);
        raw.map_or(0, |r| p.wire_bytes.saturating_sub(r.wire_bytes))
    }
}

/// Runs one scenario: closed-loop fill then read-back, counting typed
/// failures instead of treating them as fatal.
fn run_point(scale: Scale, sc: FaultScenario) -> FaultPoint {
    let link = LinkConfig::datacenter()
        .latency(SimDuration::from_micros(15))
        .jitter(SimDuration::from_micros(5))
        .drop_ppm(sc.drop_ppm);
    let deadlines =
        (sc.timeout_us > 0).then(|| (SimDuration::from_micros(sc.timeout_us), sc.retries));
    let hedge = (sc.hedge_us > 0).then(|| SimDuration::from_micros(sc.hedge_us));
    let mut c = setup::kv_cluster_faulty(
        SHARDS,
        REPLICAS,
        42,
        link,
        scale == Scale::Tiny,
        deadlines,
        hedge,
    );

    let n_kv = scale.pick(300, 3_000, 12_000);
    let mut t = SimTime::ZERO;
    let mut ok_ops = 0u64;
    let mut unavailable = 0u64;
    let mut run = |r: Result<SimTime, KvError>, t: &mut SimTime| match r {
        Ok(done) => {
            ok_ops += 1;
            *t = done;
        }
        Err(KvError::QuorumUnavailable { .. }) => unavailable += 1,
        Err(e) => panic!("fault sweep ops must fail typed, got {e}"),
    };
    for i in 0..n_kv {
        let k = format!("key{i:08}");
        run(c.store(t, k.as_bytes(), Payload::synthetic(512, i)), &mut t);
    }
    for i in 0..n_kv {
        let k = format!("key{i:08}");
        run(c.retrieve(t, k.as_bytes()).map(|l| l.at), &mut t);
    }

    let ops = 2 * n_kv;
    let ts = c.transport_stats();
    FaultPoint {
        name: sc.name,
        drop_ppm: sc.drop_ppm,
        timeout_us: sc.timeout_us,
        retries: sc.retries,
        hedge_us: sc.hedge_us,
        ops,
        ok_ops,
        unavailable,
        availability_pct: ok_ops as f64 * 100.0 / ops as f64,
        rescued: c.retry_rescued_ops(),
        leg_retries: c.leg_retries(),
        write_spares: c.hedged_write_spares(),
        dup_suppressed: c.dup_suppressed(),
        wire_bytes: ts.bytes,
        dropped: ts.dropped,
    }
}

/// Runs the experiment. One cell per scenario (each builds its own
/// cluster), scheduled by [`cells::run_cells`].
pub fn run(scale: Scale) -> FabricFaultsResult {
    let work: Vec<cells::Cell<FaultPoint>> = SWEEP
        .iter()
        .map(|&sc| {
            let cell: cells::Cell<FaultPoint> = Box::new(move || run_point(scale, sc));
            cell
        })
        .collect();
    FabricFaultsResult {
        points: cells::run_cells("fabric_faults", work),
    }
}

/// The sweep table as a string (byte-stable for a given result).
pub fn render(res: &FabricFaultsResult) -> String {
    use std::fmt::Write;
    let mut out = String::new();
    writeln!(
        out,
        "\n=== Fabric faults: deadlines and retries vs the lost-leg black hole ===\n\
         N={SHARDS} R={REPLICAS} majority quorums; closed-loop stores then reads over lossy links"
    )
    .unwrap();
    let mut t = Table::new(&[
        "scenario", "drop ppm", "t/o us", "retries", "hedge us", "ops", "ok", "unavail", "avail %",
        "rescued", "leg rtry", "spares", "dup supp", "wire MB", "dropped",
    ]);
    for p in &res.points {
        t.row(&[
            p.name,
            &p.drop_ppm.to_string(),
            &p.timeout_us.to_string(),
            &p.retries.to_string(),
            &p.hedge_us.to_string(),
            &p.ops.to_string(),
            &p.ok_ops.to_string(),
            &p.unavailable.to_string(),
            &f2(p.availability_pct),
            &p.rescued.to_string(),
            &p.leg_retries.to_string(),
            &p.write_spares.to_string(),
            &p.dup_suppressed.to_string(),
            &f2(p.wire_bytes as f64 / 1e6),
            &p.dropped.to_string(),
        ]);
    }
    writeln!(out, "{t}").unwrap();
    writeln!(
        out,
        "Cluster question: when the wire eats a leg, is the op lost or late? \
         Deadline retries turn QuorumUnavailable into rescued acks for a \
         linear wire-byte premium; hedged writes tie the last slow leg."
    )
    .unwrap();
    out
}

/// Prints the sweep table.
pub fn report(scale: Scale) -> FabricFaultsResult {
    let res = run(scale);
    print!("{}", render(&res));
    res
}
