//! The introduction's headline numbers (Sec. I) and the block-SSD
//! sequential-vs-random baseline (Sec. IV).
//!
//! Paper claims reproduced here:
//! * KV-SSD direct I/O vs block direct I/O at 4 KiB random: bandwidth
//!   as low as 0.44x (reads) / 0.22x (writes); latency up to 2.63x
//!   (writes) / 8.1x (reads),
//! * host CPU: KV-SSD needs ~13x less than RocksDB,
//! * block-SSD sequential 4 KiB I/O enjoys <= 0.8x (read) / 0.6x (write)
//!   of random latency — the benefit hashing takes away from the KV side.

use kvssd_kvbench::report::f2;
use kvssd_kvbench::{run_phase, AccessPattern, KvStore, OpMix, Table, ValueSize, WorkloadSpec};
use kvssd_sim::SimTime;

use crate::{setup, Scale};

/// The headline measurements.
#[derive(Debug, Clone, Default)]
pub struct HeadlineResult {
    /// KV/block write-latency ratio at 4 KiB random QD 1.
    pub write_latency_ratio: f64,
    /// KV/block read-latency ratio at 4 KiB random QD 1.
    pub read_latency_ratio: f64,
    /// KV/block write bandwidth ratio at 4 KiB random QD 32.
    pub write_bw_ratio: f64,
    /// KV/block read bandwidth ratio at 4 KiB random QD 32.
    pub read_bw_ratio: f64,
    /// RocksDB/KV host-CPU ratio over an insert+update+read cycle.
    pub cpu_ratio_rocksdb: f64,
    /// Aerospike/KV host-CPU ratio over the same cycle.
    pub cpu_ratio_aerospike: f64,
    /// Block-SSD sequential/random read-latency ratio (4 KiB).
    pub block_seq_read_ratio: f64,
    /// Block-SSD sequential/random write-latency ratio (4 KiB).
    pub block_seq_write_ratio: f64,
    /// Worst-case KV/block write bandwidth ratio (splitting regime).
    pub worst_write_bw_ratio: f64,
    /// Worst-case KV/block read bandwidth ratio (large split reads).
    pub worst_read_bw_ratio: f64,
}

/// Runs the experiment.
pub fn run(scale: Scale) -> HeadlineResult {
    let n = scale.pick(2_500, 40_000, 100_000);
    let mut out = HeadlineResult::default();

    // Direct-I/O latency (QD 1) and bandwidth (QD 32) comparisons.
    let kv1 = direct_probe(&mut setup::kv_ssd(), n, 1);
    let blk1 = direct_probe(&mut setup::block_direct(4096), n, 1);
    let kv32 = direct_probe(&mut setup::kv_ssd(), n, 32);
    let blk32 = direct_probe(&mut setup::block_direct(4096), n, 32);
    out.write_latency_ratio = kv1.0 / blk1.0;
    out.read_latency_ratio = kv1.1 / blk1.1;
    out.write_bw_ratio = kv32.2 / blk32.2;
    out.read_bw_ratio = kv32.3 / blk32.3;

    // Host CPU over a full insert/update/read cycle.
    let kv_cpu = cpu_cycle(&mut setup::kv_ssd(), n);
    let rdb_cpu = cpu_cycle(&mut setup::rocksdb(), n);
    let as_cpu = cpu_cycle(&mut setup::aerospike(), n);
    out.cpu_ratio_rocksdb = rdb_cpu / kv_cpu;
    out.cpu_ratio_aerospike = as_cpu / kv_cpu;

    // Block-SSD sequential vs random 4 KiB latencies (QD 32), each on a
    // freshly filled device so GC debt from one probe cannot leak into
    // the next.
    let probe = |pattern, mix, seed| {
        let mut blk = setup::block_direct(4096);
        let f = crate::experiments::fill(&mut blk, n, 4096, 32, SimTime::ZERO);
        run_phase(
            &mut blk,
            &WorkloadSpec::new("p", n, n)
                .mix(mix)
                .pattern(pattern)
                .value(ValueSize::Fixed(4096))
                .queue_depth(32)
                .seed(seed),
            crate::experiments::settle(f.finished),
        )
    };
    let rw = probe(AccessPattern::Uniform, OpMix::UpdateOnly, 3);
    let sw = probe(AccessPattern::Sequential, OpMix::UpdateOnly, 4);
    let rr = probe(AccessPattern::Uniform, OpMix::ReadOnly, 5);
    let sr = probe(AccessPattern::Sequential, OpMix::ReadOnly, 6);
    if crate::env_config("KVSSD_DEBUG").is_some() {
        eprintln!(
            "DEBUG seq/rand: rw={} sw={} rr={} sr={}",
            rw.writes.mean(),
            sw.writes.mean(),
            rr.reads.mean(),
            sr.reads.mean()
        );
    }
    out.block_seq_write_ratio = sw.writes.mean().as_micros_f64() / rw.writes.mean().as_micros_f64();
    out.block_seq_read_ratio = sr.reads.mean().as_micros_f64() / rr.reads.mean().as_micros_f64();

    // "As low as" bandwidth ratios: the paper's worst cases come from
    // the splitting regime (writes just past the page budget) and large
    // split reads.
    let kv_w = bw_probe(&mut setup::kv_ssd(), n / 4, 25 * 1024);
    let blk_w = bw_probe(&mut setup::block_direct(25 * 1024), n / 4, 25 * 1024);
    out.worst_write_bw_ratio = kv_w.0 / blk_w.0;
    let kv_r = bw_probe(&mut setup::kv_ssd(), n / 8, 64 * 1024);
    let blk_r = bw_probe(&mut setup::block_direct(64 * 1024), n / 8, 64 * 1024);
    out.worst_read_bw_ratio = kv_r.1 / blk_r.1;
    out
}

/// (insert MB/s, random-read MB/s at QD 32) for a fresh store.
fn bw_probe(store: &mut dyn KvStore, n: u64, value_bytes: u32) -> (f64, f64) {
    let f = crate::experiments::fill(store, n, value_bytes, 32, SimTime::ZERO);
    let r = run_phase(
        store,
        &WorkloadSpec::new("r", n, n)
            .mix(OpMix::ReadOnly)
            .value(ValueSize::Fixed(value_bytes))
            .queue_depth(32)
            .seed(61),
        crate::experiments::settle(f.finished),
    );
    (f.mean_mbps(), r.mean_mbps())
}

/// Returns (write mean us, read mean us, write MB/s, read MB/s) for 4 KiB
/// random direct I/O at `qd`.
fn direct_probe(store: &mut dyn KvStore, n: u64, qd: usize) -> (f64, f64, f64, f64) {
    let f = crate::experiments::fill(store, n, 4096, 32, SimTime::ZERO);
    let w = run_phase(
        store,
        &WorkloadSpec::new("w", n, n)
            .mix(OpMix::UpdateOnly)
            .value(ValueSize::Fixed(4096))
            .queue_depth(qd)
            .seed(41),
        crate::experiments::settle(f.finished),
    );
    let r = run_phase(
        store,
        &WorkloadSpec::new("r", n, n)
            .mix(OpMix::ReadOnly)
            .value(ValueSize::Fixed(4096))
            .queue_depth(qd)
            .seed(43),
        crate::experiments::settle(w.finished),
    );
    (
        w.writes.mean().as_micros_f64(),
        r.reads.mean().as_micros_f64(),
        w.mean_mbps(),
        r.mean_mbps(),
    )
}

/// Total host CPU seconds across insert, update, and read phases.
fn cpu_cycle(store: &mut dyn KvStore, n: u64) -> f64 {
    let f = crate::experiments::fill(store, n, 4096, 8, SimTime::ZERO);
    let u = run_phase(
        store,
        &WorkloadSpec::new("u", n, n)
            .mix(OpMix::UpdateOnly)
            .value(ValueSize::Fixed(4096))
            .queue_depth(8)
            .seed(47),
        crate::experiments::settle(f.finished),
    );
    let _ = run_phase(
        store,
        &WorkloadSpec::new("r", n, n)
            .mix(OpMix::ReadOnly)
            .value(ValueSize::Fixed(4096))
            .queue_depth(8)
            .seed(53),
        crate::experiments::settle(u.finished),
    );
    store.host_cpu_busy().as_secs_f64()
}

/// Prints the headline table.
pub fn report(scale: Scale) -> HeadlineResult {
    let r = run(scale);
    println!("\n=== Headline ratios (Sec. I) — 4 KiB random direct I/O ===");
    let mut t = Table::new(&["metric", "measured", "paper"]);
    t.row(&[
        "KV/blk write latency (QD1)",
        &format!("{:.2}x", r.write_latency_ratio),
        "up to 2.63x",
    ]);
    t.row(&[
        "KV/blk read latency (QD1)",
        &format!("{:.2}x", r.read_latency_ratio),
        "up to 8.1x (1.7x typical)",
    ]);
    t.row(&[
        "KV/blk write bandwidth (QD32)",
        &format!("{:.2}x", r.write_bw_ratio),
        "as low as 0.22x",
    ]);
    t.row(&[
        "KV/blk read bandwidth (QD32)",
        &format!("{:.2}x", r.read_bw_ratio),
        "as low as 0.44x",
    ]);
    t.row(&[
        "RocksDB/KV host CPU",
        &format!("{:.2}x", r.cpu_ratio_rocksdb),
        "~13x",
    ]);
    t.row(&[
        "Aerospike/KV host CPU",
        &format!("{:.2}x", r.cpu_ratio_aerospike),
        "smaller than RocksDB's",
    ]);
    t.row(&[
        "blk seq/rand read latency",
        &f2(r.block_seq_read_ratio),
        "<= 0.8x",
    ]);
    t.row(&[
        "blk seq/rand write latency",
        &f2(r.block_seq_write_ratio),
        "<= 0.6x",
    ]);
    t.row(&[
        "KV/blk write BW, worst (25KiB)",
        &format!("{:.2}x", r.worst_write_bw_ratio),
        "as low as 0.22x",
    ]);
    t.row(&[
        "KV/blk read BW, worst (64KiB)",
        &format!("{:.2}x", r.worst_read_bw_ratio),
        "as low as 0.44x",
    ]);
    println!("{t}");
    r
}
