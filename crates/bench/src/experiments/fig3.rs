//! Fig. 3 — index occupancy: latency at low vs. high KVP counts.
//!
//! Paper setup: 16 B keys, 512 B values; low occupancy = 1.53 M KVPs,
//! high = 3 B KVPs (here scaled ~1000x: the *ratio* of index size to
//! device-DRAM budget is what matters). The block-SSD is filled with the
//! same number of 512 B blocks as the control.
//!
//! Paper findings: KV-SSD reads degrade up to 2x and writes up to 16.4x
//! at high occupancy; the block-SSD stays flat.

use kvssd_core::KvConfig;
use kvssd_kvbench::report::f2;
use kvssd_kvbench::{run_phase, KvStore, OpMix, Table, ValueSize, WorkloadSpec};
use kvssd_sim::SimTime;

use crate::{setup, Scale};

/// One occupancy level's probe results.
#[derive(Debug, Clone)]
pub struct Fig3Row {
    /// `low` or `high`.
    pub occupancy: &'static str,
    /// System label.
    pub system: &'static str,
    /// KVPs (or blocks) resident when probing.
    pub population: u64,
    /// Mean random-write latency (us).
    pub write_us: f64,
    /// Mean random-read latency (us).
    pub read_us: f64,
}

/// The figure's measurements.
#[derive(Debug, Clone, Default)]
pub struct Fig3Result {
    /// Rows, one per (occupancy, system).
    pub rows: Vec<Fig3Row>,
}

impl Fig3Result {
    /// Finds one row.
    pub fn row(&self, occupancy: &str, system: &str) -> &Fig3Row {
        self.rows
            .iter()
            .find(|r| r.occupancy == occupancy && r.system == system)
            .unwrap_or_else(|| panic!("missing {occupancy}/{system}"))
    }

    /// high/low write-latency ratio for a system.
    pub fn write_degradation(&self, system: &str) -> f64 {
        self.row("high", system).write_us / self.row("low", system).write_us
    }

    /// high/low read-latency ratio for a system.
    pub fn read_degradation(&self, system: &str) -> f64 {
        self.row("high", system).read_us / self.row("low", system).read_us
    }
}

/// Runs the experiment.
pub fn run(scale: Scale) -> Fig3Result {
    // Populations: low fits the index DRAM budget comfortably; high
    // overflows it by the same ~36x ratio the paper's 3 B keys imply.
    let (low, high, dram) = match scale {
        Scale::Tiny => (2_000u64, 60_000u64, 128 * 1024u64),
        Scale::Quick => (40_000, 1_200_000, 2 * 1024 * 1024),
        Scale::Full => (80_000, 3_000_000, 4 * 1024 * 1024),
    };
    let probes = scale.pick(2_000, 10_000, 20_000);
    let mut out = Fig3Result::default();
    for (label, n) in [("low", low), ("high", high)] {
        // KV-SSD with the scaled index-DRAM budget.
        let mut kv = setup::kv_ssd_with(KvConfig {
            index_dram_bytes: dram,
            ..setup::kv_config_macro()
        });
        let f = crate::experiments::fill(&mut kv, n, 512, 32, SimTime::ZERO);
        let (w, r) = probe(&mut kv, n, probes, f.finished);
        out.rows.push(Fig3Row {
            occupancy: label,
            system: "KV-SSD",
            population: n,
            write_us: w,
            read_us: r,
        });
        // Block-SSD filled with the same number of 512 B blocks.
        let mut blk = setup::block_direct(512);
        let f = crate::experiments::fill(&mut blk, n, 512, 32, SimTime::ZERO);
        let (w, r) = probe(&mut blk, n, probes, f.finished);
        out.rows.push(Fig3Row {
            occupancy: label,
            system: "Block-SSD",
            population: n,
            write_us: w,
            read_us: r,
        });
    }
    out
}

/// Random 512 B write and read probes at QD 1 (the paper's direct-access
/// latency measurements).
fn probe(store: &mut dyn KvStore, n: u64, probes: u64, start: SimTime) -> (f64, f64) {
    let start = crate::experiments::settle(start);
    let w = run_phase(
        store,
        &WorkloadSpec::new("write-probe", probes, n)
            .mix(OpMix::UpdateOnly)
            .value(ValueSize::Fixed(512))
            .queue_depth(1)
            .seed(13),
        start,
    );
    let r = run_phase(
        store,
        &WorkloadSpec::new("read-probe", probes, n)
            .mix(OpMix::ReadOnly)
            .value(ValueSize::Fixed(512))
            .queue_depth(1)
            .seed(17),
        crate::experiments::settle(w.finished),
    );
    (
        w.writes.mean().as_micros_f64(),
        r.reads.mean().as_micros_f64(),
    )
}

/// Prints the paper-shaped table.
pub fn report(scale: Scale) -> Fig3Result {
    let res = run(scale);
    println!("\n=== Fig. 3: index occupancy (16 B keys, 512 B values, QD 1 probes) ===");
    let mut t = Table::new(&[
        "occupancy",
        "population",
        "system",
        "write mean(us)",
        "read mean(us)",
    ]);
    for r in &res.rows {
        t.row(&[
            r.occupancy,
            &r.population.to_string(),
            r.system,
            &f2(r.write_us),
            &f2(r.read_us),
        ]);
    }
    println!("{t}");
    println!(
        "KV-SSD degradation high/low: write {:.2}x (paper: up to 16.4x), read {:.2}x (paper: up to 2x)",
        res.write_degradation("KV-SSD"),
        res.read_degradation("KV-SSD"),
    );
    println!(
        "Block-SSD degradation high/low: write {:.2}x, read {:.2}x (paper: ~flat)",
        res.write_degradation("Block-SSD"),
        res.read_degradation("Block-SSD"),
    );
    res
}
