//! Fig. 8 — key size vs. device bandwidth: the two-command penalty.
//!
//! Paper finding: each NVMe command carries at most 16 B of key inline;
//! longer keys need a second command, cutting bandwidth to ~0.53x —
//! visible for both synchronous (QD 1) and asynchronous I/O.

use kvssd_kvbench::report::f2;
use kvssd_kvbench::Table;
use kvssd_sim::SimTime;

use crate::{setup, Scale};

/// The sweep's key sizes (bytes). The device accepts 4 B keys, but a
/// 4 B key space holds exactly one key, so the sweep starts at 8 B.
pub const KEY_SIZES: [usize; 8] = [8, 12, 16, 20, 32, 64, 128, 255];

/// One key-size point.
#[derive(Debug, Clone)]
pub struct Fig8Row {
    /// Key length in bytes.
    pub key_bytes: usize,
    /// NVMe commands per store at this key length.
    pub commands: u64,
    /// Synchronous (QD 1) store throughput, K ops/s.
    pub sync_kops: f64,
    /// Asynchronous (QD 32) store throughput, K ops/s.
    pub async_kops: f64,
}

/// The figure's series.
#[derive(Debug, Clone, Default)]
pub struct Fig8Result {
    /// One row per key size, ascending.
    pub rows: Vec<Fig8Row>,
}

impl Fig8Result {
    /// Finds one row.
    pub fn row(&self, key_bytes: usize) -> &Fig8Row {
        self.rows
            .iter()
            .find(|r| r.key_bytes == key_bytes)
            .unwrap_or_else(|| panic!("missing key size {key_bytes}"))
    }
}

/// Runs the experiment: small-value stores across key sizes, sync and
/// async.
pub fn run(scale: Scale) -> Fig8Result {
    let n = scale.pick(3_000, 30_000, 80_000);
    let cs = kvssd_nvme::KvCommandSet::samsung();
    let mut out = Fig8Result::default();
    for &kb in &KEY_SIZES {
        let sync_kops = throughput(n, kb, 1);
        let async_kops = throughput(n, kb, 32);
        out.rows.push(Fig8Row {
            key_bytes: kb,
            commands: cs.commands_for_key(kb),
            sync_kops,
            async_kops,
        });
    }
    out
}

fn throughput(n: u64, key_bytes: usize, qd: usize) -> f64 {
    let mut store = setup::kv_ssd();
    let spec = kvssd_kvbench::WorkloadSpec::new("fill", n, n)
        .mix(kvssd_kvbench::OpMix::InsertOnly)
        .key_bytes(key_bytes)
        .value(kvssd_kvbench::ValueSize::Fixed(128))
        .queue_depth(qd);
    let m = kvssd_kvbench::run_phase(&mut store, &spec, SimTime::ZERO);
    m.ops_per_sec() / 1e3
}

/// Prints the paper-shaped series.
pub fn report(scale: Scale) -> Fig8Result {
    let res = run(scale);
    println!("\n=== Fig. 8: store throughput vs key size (128 B values) ===");
    let mut t = Table::new(&["key", "NVMe cmds", "sync Kops/s", "async Kops/s"]);
    for r in &res.rows {
        t.row(&[
            &format!("{}B", r.key_bytes),
            &r.commands.to_string(),
            &f2(r.sync_kops),
            &f2(r.async_kops),
        ]);
    }
    println!("{t}");
    let r16 = res.row(16);
    let r20 = res.row(20);
    println!(
        "16B -> 20B key async throughput: {:.2} -> {:.2} Kops/s ({:.2}x; paper: drops to ~0.53x for large keys)",
        r16.async_kops,
        r20.async_kops,
        r20.async_kops / r16.async_kops,
    );
    res
}
