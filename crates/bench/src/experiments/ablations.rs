//! Ablations: design choices the paper identifies, toggled.
//!
//! * Bloom filters on/off — cost of negative lookups,
//! * allocation-unit sweep (256 B / 1 KiB / 4 KiB) — space
//!   amplification vs. the paper's ECC-sector argument,
//! * index-DRAM budget sweep — where the Fig. 3 cliff moves,
//! * compound NVMe commands (the paper's reference `[10]` proposal) — recovering the
//!   large-key bandwidth loss of Fig. 8.

use kvssd_core::KvConfig;
use kvssd_kvbench::report::f2;
use kvssd_kvbench::{run_phase, KvStore, OpMix, Table, ValueSize, WorkloadSpec};
use kvssd_nvme::KvCommandSet;
use kvssd_sim::SimTime;

use crate::experiments::cells;
use crate::{setup, Scale};

/// All ablation measurements.
#[derive(Debug, Clone, Default)]
pub struct AblationResult {
    /// Mean not-found lookup latency with Bloom filters (us).
    pub miss_with_bloom_us: f64,
    /// Mean not-found lookup latency without Bloom filters (us).
    pub miss_without_bloom_us: f64,
    /// (alloc unit, amplification at 50 B values).
    pub alloc_amp: Vec<(u32, f64)>,
    /// (index DRAM bytes, mean store latency us at a fixed population).
    pub dram_write_us: Vec<(u64, f64)>,
    /// Space amplification under the Facebook-trace value mixture
    /// (the paper's reference [14]: 57-154 B averages).
    pub facebook_amp: f64,
    /// Async large-key throughput, stock command set (Kops/s).
    pub largekey_stock_kops: f64,
    /// Async large-key throughput with compound commands (Kops/s).
    pub largekey_compound_kops: f64,
}

/// One ablation cell's result (the sections are heterogeneous, so each
/// cell tags which slot of [`AblationResult`] it fills).
enum CellOut {
    Bloom { on: bool, miss_us: f64 },
    Alloc(u32, f64),
    Dram(u64, f64),
    Facebook(f64),
    Compound { on: bool, kops: f64 },
}

/// 1. Bloom filters: negative-lookup latency. Probing a key absent
///    from a DRAM-overflowed index pays a flash walk unless a filter
///    rejects it first.
fn bloom_cell(bloom: bool, n: u64) -> CellOut {
    let mut cfg = KvConfig::pm983_scaled();
    cfg.bloom_enabled = bloom;
    // Overflow the index so a miss without a filter pays flash reads.
    cfg.index_dram_bytes = 32 * 1024;
    let mut kv = setup::kv_ssd_with(cfg);
    let f = crate::experiments::fill(&mut kv, n, 512, 16, SimTime::ZERO);
    let mut t = crate::experiments::settle(f.finished);
    let mut total = 0.0;
    let probes = 2_000u64;
    for i in 0..probes {
        let key = format!("absent.key.{i:08x}");
        let (done, found) = kv.read(t, key.as_bytes());
        assert!(!found);
        total += done.since(t).as_micros_f64();
        t = done;
    }
    CellOut::Bloom {
        on: bloom,
        miss_us: total / probes as f64,
    }
}

/// 2. Allocation-unit sweep at 50 B values.
fn alloc_cell(unit: u32, n: u64) -> CellOut {
    let cfg = KvConfig {
        alloc_unit: unit,
        ..KvConfig::pm983_scaled()
    };
    let mut kv = setup::kv_ssd_with(cfg);
    crate::experiments::fill(&mut kv, n.min(10_000), 50, 16, SimTime::ZERO);
    CellOut::Alloc(unit, kv.space().amplification())
}

/// 3. Index-DRAM budget sweep at a fixed population.
fn dram_cell(dram: u64, population: u64) -> CellOut {
    let cfg = KvConfig {
        index_dram_bytes: dram,
        ..setup::kv_config_macro()
    };
    let mut kv = setup::kv_ssd_with(cfg);
    let f = crate::experiments::fill(&mut kv, population, 512, 32, SimTime::ZERO);
    let probe = run_phase(
        &mut kv,
        &WorkloadSpec::new("w", population / 10, population)
            .mix(OpMix::UpdateOnly)
            .value(ValueSize::Fixed(512))
            .queue_depth(1)
            .seed(59),
        crate::experiments::settle(f.finished),
    );
    CellOut::Dram(dram, probe.writes.mean().as_micros_f64())
}

/// 3.5 Real-trace value shapes: the paper's reference [14] (Facebook,
/// FAST '20) reports 57-154 B average KVPs — the worst regime for the
/// 1 KiB allocation unit.
fn facebook_cell(n: u64) -> CellOut {
    let mut kv = setup::kv_ssd();
    let spec = WorkloadSpec::new("facebook", n.min(20_000), n.min(20_000))
        .mix(OpMix::InsertOnly)
        .value(ValueSize::facebook_like())
        .queue_depth(16);
    run_phase(&mut kv, &spec, SimTime::ZERO);
    CellOut::Facebook(kv.space().amplification())
}

/// 4. Compound commands for 128 B keys (the HotStorage '19 what-if).
fn compound_cell(compound: bool, n: u64) -> CellOut {
    let cfg = KvConfig {
        command_set: if compound {
            KvCommandSet::with_compound(8)
        } else {
            KvCommandSet::samsung()
        },
        ..KvConfig::pm983_scaled()
    };
    let mut kv = setup::kv_ssd_with(cfg);
    let spec = WorkloadSpec::new("fill", n, n)
        .mix(OpMix::InsertOnly)
        .key_bytes(128)
        .value(ValueSize::Fixed(128))
        .queue_depth(32);
    let m = run_phase(&mut kv, &spec, SimTime::ZERO);
    CellOut::Compound {
        on: compound,
        kops: m.ops_per_sec() / 1e3,
    }
}

/// Runs all ablations. Every section is an independent cell (own device,
/// own config), scheduled by [`cells::run_cells`]; results assemble by
/// cell index so sweep vectors keep their serial order.
pub fn run(scale: Scale) -> AblationResult {
    let n = scale.pick(2_000, 20_000, 50_000);
    let population = scale.pick(20_000, 300_000, 600_000);
    let mut work: Vec<cells::Cell<CellOut>> = Vec::new();
    for bloom in [true, false] {
        work.push(Box::new(move || bloom_cell(bloom, n)));
    }
    for unit in [256u32, 1024, 4096] {
        work.push(Box::new(move || alloc_cell(unit, n)));
    }
    for dram in [256u64 * 1024, 2 * 1024 * 1024, 32 * 1024 * 1024] {
        work.push(Box::new(move || dram_cell(dram, population)));
    }
    work.push(Box::new(move || facebook_cell(n)));
    for compound in [false, true] {
        work.push(Box::new(move || compound_cell(compound, n)));
    }

    let mut out = AblationResult::default();
    for cell in cells::run_cells("ablations", work) {
        match cell {
            CellOut::Bloom { on: true, miss_us } => out.miss_with_bloom_us = miss_us,
            CellOut::Bloom { on: false, miss_us } => out.miss_without_bloom_us = miss_us,
            CellOut::Alloc(unit, amp) => out.alloc_amp.push((unit, amp)),
            CellOut::Dram(dram, us) => out.dram_write_us.push((dram, us)),
            CellOut::Facebook(amp) => out.facebook_amp = amp,
            CellOut::Compound { on: true, kops } => out.largekey_compound_kops = kops,
            CellOut::Compound { on: false, kops } => out.largekey_stock_kops = kops,
        }
    }
    out
}

/// The ablation tables as a string (byte-stable for a given result).
pub fn render(r: &AblationResult) -> String {
    use std::fmt::Write;
    let mut out = String::new();
    writeln!(out, "\n=== Ablations ===").unwrap();
    let mut t = Table::new(&["ablation", "config", "measured"]);
    t.row(&[
        "bloom filters",
        "on",
        &format!("{:.2} us / miss", r.miss_with_bloom_us),
    ]);
    t.row(&[
        "bloom filters",
        "off",
        &format!("{:.2} us / miss", r.miss_without_bloom_us),
    ]);
    for (unit, amp) in &r.alloc_amp {
        t.row(&[
            "alloc unit @50B values",
            &kvssd_kvbench::report::bytes(*unit as u64),
            &format!("{:.1}x space amp", amp),
        ]);
    }
    for (dram, us) in &r.dram_write_us {
        t.row(&[
            "index DRAM budget",
            &kvssd_kvbench::report::bytes(*dram),
            &format!("{:.1} us / store", us),
        ]);
    }
    t.row(&[
        "facebook-trace values [14]",
        "1KiB alloc unit",
        &format!("{:.1}x space amp", r.facebook_amp),
    ]);
    t.row(&[
        "command set @128B keys",
        "stock",
        &format!("{:.1} Kops/s", r.largekey_stock_kops),
    ]);
    t.row(&[
        "command set @128B keys",
        "compound x8",
        &format!("{:.1} Kops/s", r.largekey_compound_kops),
    ]);
    writeln!(out, "{t}").unwrap();
    writeln!(
        out,
        "bloom speedup on misses: {:.2}x; compound-command gain @128B keys: {:.2}x",
        r.miss_without_bloom_us / r.miss_with_bloom_us.max(0.01),
        r.largekey_compound_kops / r.largekey_stock_kops.max(0.01),
    )
    .unwrap();
    let _ = f2(0.0);
    out
}

/// Prints the ablation tables.
pub fn report(scale: Scale) -> AblationResult {
    let r = run(scale);
    print!("{}", render(&r));
    r
}
