//! The paper's experiments, one module per table/figure.
//!
//! Every module exposes `run(scale) -> <ResultType>` returning structured
//! measurements (integration tests assert on those) and `report(scale)`
//! printing the paper-shaped rows.

pub mod ablations;
pub mod cells;
pub mod cluster_ops;
pub mod device_ops;
pub mod fabric;
pub mod fabric_faults;
pub mod fig2;
pub mod fig3;
pub mod fig4;
pub mod fig5;
pub mod fig6;
pub mod fig7;
pub mod fig8;
pub mod headline;
pub mod replication;
pub mod scaleout;

use kvssd_kvbench::{
    run_phase, AccessPattern, KvStore, OpMix, RunMetrics, ValueSize, WorkloadSpec,
};
use kvssd_sim::SimTime;

use crate::Scale;

/// A figure entry point taking only the run scale.
pub type FigureFn = fn(Scale);

/// Every figure's name with its report function, in canonical order
/// (the order `repro_all` runs them).
pub const FIGURES: [(&str, FigureFn); 13] = [
    ("fig2", |s| {
        fig2::report(s);
    }),
    ("fig3", |s| {
        fig3::report(s);
    }),
    ("fig4", |s| {
        fig4::report(s);
    }),
    ("fig5", |s| {
        fig5::report(s);
    }),
    ("fig6", |s| {
        fig6::report(s);
    }),
    ("fig7", |s| {
        fig7::report(s);
    }),
    ("fig8", |s| {
        fig8::report(s);
    }),
    ("headline", |s| {
        headline::report(s);
    }),
    ("ablations", |s| {
        ablations::report(s);
    }),
    ("scaleout", |s| {
        scaleout::report(s);
    }),
    ("replication", |s| {
        replication::report(s);
    }),
    ("fabric", |s| {
        fabric::report(s);
    }),
    ("fabric_faults", |s| {
        fabric_faults::report(s);
    }),
];

/// The figures ported onto the parallel cell scheduler, in canonical
/// order. Each entry runs the figure *silently* (no table printing) —
/// what the self-timing harness executes.
pub const PORTED: [(&str, FigureFn); 9] = [
    ("fig2", |s| {
        fig2::run(s);
    }),
    ("fig4", |s| {
        fig4::run(s);
    }),
    ("fig5", |s| {
        fig5::run(s);
    }),
    ("fig7", |s| {
        fig7::run(s);
    }),
    ("ablations", |s| {
        ablations::run(s);
    }),
    ("scaleout", |s| {
        scaleout::run(s);
    }),
    ("replication", |s| {
        replication::run(s);
    }),
    ("fabric", |s| {
        fabric::run(s);
    }),
    ("fabric_faults", |s| {
        fabric_faults::run(s);
    }),
];

/// The canonical figure names, straight from [`FIGURES`] — the one
/// registry help text and tooling list so the set can't drift.
pub fn figure_names() -> Vec<&'static str> {
    FIGURES.iter().map(|(n, _)| *n).collect()
}

/// Fills a store with `n` sequential-order keys of `value_bytes` values
/// at queue depth `qd`; returns the fill metrics.
pub(crate) fn fill(
    store: &mut dyn KvStore,
    n: u64,
    value_bytes: u32,
    qd: usize,
    start: SimTime,
) -> RunMetrics {
    let spec = WorkloadSpec::new("fill", n, n)
        .mix(OpMix::InsertOnly)
        .pattern(AccessPattern::Sequential)
        .value(ValueSize::Fixed(value_bytes))
        .queue_depth(qd);
    run_phase(store, &spec, start)
}

/// Public wrapper around the internal fill helper, for diagnostic
/// examples and tests.
pub fn fill_pub(
    store: &mut dyn KvStore,
    n: u64,
    value_bytes: u32,
    qd: usize,
    start: SimTime,
) -> RunMetrics {
    fill(store, n, value_bytes, qd, start)
}

/// Settle time inserted between phases so buffered state drains.
pub(crate) fn settle(t: SimTime) -> SimTime {
    t + kvssd_sim::SimDuration::from_millis(200)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure_registries_are_consistent() {
        let names = figure_names();
        let unique: std::collections::BTreeSet<_> = names.iter().collect();
        assert_eq!(unique.len(), names.len(), "duplicate figure name");
        assert!(names.contains(&"fabric"), "fabric missing from FIGURES");
        for (n, _) in PORTED {
            assert!(
                names.contains(&n),
                "PORTED figure `{n}` missing from FIGURES"
            );
        }
    }
}
