//! Fig. 2 — end-to-end insert/update/read latency across systems and
//! access patterns.
//!
//! Paper setup: 10 M operations of 16 B keys and 4 KiB values against
//! KV-SSD, RocksDB (ext4, 10 MB block cache), and Aerospike (direct
//! I/O), with sequential, uniform-random, and Zipfian patterns.
//!
//! Paper findings to reproduce:
//! * sequential ≈ random on the KV-SSD (hash indexing erases order),
//! * KV-SSD beats RocksDB for inserts and updates (up to 23.08x / 3.64x)
//!   but loses on reads,
//! * KV-SSD beats Aerospike only for updates.

use kvssd_kvbench::report::f2;
use kvssd_kvbench::{run_phase, AccessPattern, KvStore, OpMix, Table, ValueSize, WorkloadSpec};
use kvssd_sim::SimTime;

use crate::experiments::cells;
use crate::{setup, Scale};

/// One measured cell of the figure.
#[derive(Debug, Clone)]
pub struct Fig2Row {
    /// System label.
    pub system: &'static str,
    /// Pattern label (`Seq`/`Rand`/`Zipf`).
    pub pattern: &'static str,
    /// Operation (`insert`/`update`/`read`).
    pub op: &'static str,
    /// Mean latency in microseconds.
    pub mean_us: f64,
    /// 99th-percentile latency in microseconds.
    pub p99_us: f64,
    /// Host CPU cores consumed during the phase.
    pub cpu_cores: f64,
}

/// All cells of the figure.
#[derive(Debug, Clone, Default)]
pub struct Fig2Result {
    /// Measured cells.
    pub rows: Vec<Fig2Row>,
}

impl Fig2Result {
    /// Mean latency of one cell.
    pub fn mean_us(&self, system: &str, pattern: &str, op: &str) -> f64 {
        self.rows
            .iter()
            .find(|r| r.system == system && r.pattern == pattern && r.op == op)
            .map(|r| r.mean_us)
            .unwrap_or_else(|| panic!("missing cell {system}/{pattern}/{op}"))
    }

    /// Host CPU of one cell.
    pub fn cpu_cores(&self, system: &str, pattern: &str, op: &str) -> f64 {
        self.rows
            .iter()
            .find(|r| r.system == system && r.pattern == pattern && r.op == op)
            .map(|r| r.cpu_cores)
            .unwrap_or_else(|| panic!("missing cell {system}/{pattern}/{op}"))
    }
}

const PATTERNS: [(&str, AccessPattern); 3] = [
    ("Seq", AccessPattern::Sequential),
    ("Rand", AccessPattern::Uniform),
    ("Zipf", AccessPattern::Zipfian { theta: 0.99 }),
];

/// Runs the three phases of one (pattern, system) cell on a fresh store.
fn run_cell(
    mut store: Box<dyn KvStore>,
    pname: &'static str,
    pattern: AccessPattern,
    n: u64,
    qd: usize,
) -> Vec<Fig2Row> {
    let store = store.as_mut();
    let system = store.name();
    let mut rows = Vec::with_capacity(3);
    // Insert phase (pattern = insertion order).
    let ins = run_phase(
        store,
        &WorkloadSpec::new("insert", n, n)
            .mix(OpMix::InsertOnly)
            .pattern(pattern)
            .value(ValueSize::Fixed(4096))
            .queue_depth(qd),
        SimTime::ZERO,
    );
    rows.push(Fig2Row {
        system,
        pattern: pname,
        op: "insert",
        mean_us: ins.writes.mean().as_micros_f64(),
        p99_us: ins.writes.percentile(99.0).as_micros_f64(),
        cpu_cores: ins.cpu_cores_used(),
    });
    // Update phase.
    let upd = run_phase(
        store,
        &WorkloadSpec::new("update", n, n)
            .mix(OpMix::UpdateOnly)
            .pattern(pattern)
            .value(ValueSize::Fixed(4096))
            .queue_depth(qd)
            .seed(7),
        crate::experiments::settle(ins.finished),
    );
    rows.push(Fig2Row {
        system,
        pattern: pname,
        op: "update",
        mean_us: upd.writes.mean().as_micros_f64(),
        p99_us: upd.writes.percentile(99.0).as_micros_f64(),
        cpu_cores: upd.cpu_cores_used(),
    });
    // Read phase.
    let rd = run_phase(
        store,
        &WorkloadSpec::new("read", n, n)
            .mix(OpMix::ReadOnly)
            .pattern(pattern)
            .value(ValueSize::Fixed(4096))
            .queue_depth(qd)
            .seed(11),
        crate::experiments::settle(upd.finished),
    );
    assert_eq!(rd.not_found, 0, "{system}/{pname}: reads must hit");
    rows.push(Fig2Row {
        system,
        pattern: pname,
        op: "read",
        mean_us: rd.reads.mean().as_micros_f64(),
        p99_us: rd.reads.percentile(99.0).as_micros_f64(),
        cpu_cores: rd.cpu_cores_used(),
    });
    rows
}

/// Runs the experiment. One cell per (pattern × system), each on its own
/// freshly seeded store, scheduled by [`cells::run_cells`].
pub fn run(scale: Scale) -> Fig2Result {
    let n = scale.pick(3_000, 50_000, 200_000);
    let qd = 8;
    type Make = fn() -> Box<dyn KvStore>;
    const MAKES: [Make; 3] = [
        || Box::new(setup::kv_ssd()),
        || Box::new(setup::rocksdb()),
        || Box::new(setup::aerospike()),
    ];
    let mut work: Vec<cells::Cell<Vec<Fig2Row>>> = Vec::new();
    for (pname, pattern) in PATTERNS {
        for make in MAKES {
            work.push(Box::new(move || run_cell(make(), pname, pattern, n, qd)));
        }
    }
    Fig2Result {
        rows: cells::run_cells("fig2", work)
            .into_iter()
            .flatten()
            .collect(),
    }
}

/// The paper-shaped table as a string (byte-stable for a given result).
pub fn render(r: &Fig2Result) -> String {
    use std::fmt::Write;
    let mut out = String::new();
    writeln!(
        out,
        "\n=== Fig. 2: end-to-end latency, 16 B keys / 4 KiB values (QD 8) ==="
    )
    .unwrap();
    for op in ["insert", "update", "read"] {
        let mut t = Table::new(&[
            "op",
            "system",
            "Seq mean(us)",
            "Rand mean(us)",
            "Zipf mean(us)",
            "Rand p99(us)",
            "Rand CPU(cores)",
        ]);
        for system in ["KV-SSD", "RocksDB", "Aerospike"] {
            let cell = |p: &str| {
                r.rows
                    .iter()
                    .find(|x| x.system == system && x.pattern == p && x.op == op)
                    .expect("cell")
            };
            t.row(&[
                op,
                system,
                &f2(cell("Seq").mean_us),
                &f2(cell("Rand").mean_us),
                &f2(cell("Zipf").mean_us),
                &f2(cell("Rand").p99_us),
                &f2(cell("Rand").cpu_cores),
            ]);
        }
        writeln!(out, "{t}").unwrap();
    }
    let kv_seq = r.mean_us("KV-SSD", "Seq", "insert");
    let kv_rand = r.mean_us("KV-SSD", "Rand", "insert");
    writeln!(
        out,
        "KV-SSD seq/rand insert ratio: {:.2} (paper: ~1 — hashing erases sequentiality)",
        kv_seq / kv_rand
    )
    .unwrap();
    writeln!(
        out,
        "KV-SSD vs RocksDB insert: {:.2}x better (paper: up to 23.08x)",
        r.mean_us("RocksDB", "Rand", "insert") / r.mean_us("KV-SSD", "Rand", "insert")
    )
    .unwrap();
    writeln!(
        out,
        "KV-SSD vs Aerospike update: {:.2}x better (paper: up to 3.64x)",
        r.mean_us("Aerospike", "Rand", "update") / r.mean_us("KV-SSD", "Rand", "update")
    )
    .unwrap();
    writeln!(
        out,
        "KV-SSD vs RocksDB read: {:.2}x (paper: KV-SSD loses, ratio > 1)",
        r.mean_us("KV-SSD", "Rand", "read") / r.mean_us("RocksDB", "Rand", "read")
    )
    .unwrap();
    out
}

/// Prints the paper-shaped table.
pub fn report(scale: Scale) -> Fig2Result {
    let r = run(scale);
    print!("{}", render(&r));
    r
}
