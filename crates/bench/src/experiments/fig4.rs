//! Fig. 4 — KV-SSD vs. block-SSD latency ratio across value sizes and
//! queue depths.
//!
//! Paper setup: the same number of KV or block I/Os per value size,
//! direct access, queue depths 1 and 64. Ratios below 1 favor KV-SSD.
//!
//! Paper findings: at QD 64 the KV-SSD wins for values below the ~24 KiB
//! page payload budget (write ratio down to 0.86x, read down to 0.37x);
//! past it, splitting makes the KV-SSD lose (up to 5.4x); at QD 1 the
//! key-handling overhead keeps the KV-SSD behind everywhere.

use kvssd_kvbench::report::f2;
use kvssd_kvbench::{run_phase, KvStore, OpMix, Table, ValueSize, WorkloadSpec};
use kvssd_sim::SimTime;

use crate::experiments::cells;
use crate::{setup, Scale};

/// The sweep's value sizes (bytes).
pub const VALUE_SIZES: [u32; 7] = [512, 2048, 8192, 16384, 24576, 32768, 65536];

/// One (value size, queue depth) cell.
#[derive(Debug, Clone)]
pub struct Fig4Row {
    /// Value size in bytes.
    pub value_bytes: u32,
    /// Queue depth.
    pub qd: usize,
    /// Mean KV-SSD write latency (us).
    pub kv_write_us: f64,
    /// Mean block write latency (us).
    pub blk_write_us: f64,
    /// Mean KV-SSD read latency (us).
    pub kv_read_us: f64,
    /// Mean block read latency (us).
    pub blk_read_us: f64,
}

impl Fig4Row {
    /// KV/block write-latency ratio (< 1 favors KV-SSD).
    pub fn write_ratio(&self) -> f64 {
        self.kv_write_us / self.blk_write_us
    }

    /// KV/block read-latency ratio (< 1 favors KV-SSD).
    pub fn read_ratio(&self) -> f64 {
        self.kv_read_us / self.blk_read_us
    }
}

/// The figure's measurements.
#[derive(Debug, Clone, Default)]
pub struct Fig4Result {
    /// One row per (value size, qd).
    pub rows: Vec<Fig4Row>,
}

impl Fig4Result {
    /// Finds one cell.
    pub fn row(&self, value_bytes: u32, qd: usize) -> &Fig4Row {
        self.rows
            .iter()
            .find(|r| r.value_bytes == value_bytes && r.qd == qd)
            .unwrap_or_else(|| panic!("missing {value_bytes}B @ QD{qd}"))
    }
}

/// Runs the experiment. One cell per (value size × queue depth), each
/// building both its devices fresh, scheduled by [`cells::run_cells`].
pub fn run(scale: Scale) -> Fig4Result {
    let per_point = scale.pick(1_200, 8_000, 15_000);
    let mut work: Vec<cells::Cell<Fig4Row>> = Vec::new();
    for &vs in &VALUE_SIZES {
        // Populations sized to a fixed data volume so big values do not
        // overfill the device.
        let n = (per_point * 4096 / vs as u64).clamp(400, per_point);
        for qd in [1usize, 64] {
            work.push(Box::new(move || {
                let (kv_w, kv_r) = measure(&mut setup::kv_ssd(), n, vs, qd);
                let (blk_w, blk_r) = measure(&mut setup::block_direct(vs), n, vs, qd);
                Fig4Row {
                    value_bytes: vs,
                    qd,
                    kv_write_us: kv_w,
                    blk_write_us: blk_w,
                    kv_read_us: kv_r,
                    blk_read_us: blk_r,
                }
            }));
        }
    }
    Fig4Result {
        rows: cells::run_cells("fig4", work),
    }
}

fn measure(store: &mut dyn KvStore, n: u64, value_bytes: u32, qd: usize) -> (f64, f64) {
    let f = crate::experiments::fill(store, n, value_bytes, qd.max(8), SimTime::ZERO);
    let start = crate::experiments::settle(f.finished);
    let w = run_phase(
        store,
        &WorkloadSpec::new("write", n, n)
            .mix(OpMix::UpdateOnly)
            .value(ValueSize::Fixed(value_bytes))
            .queue_depth(qd)
            .seed(23),
        start,
    );
    let r = run_phase(
        store,
        &WorkloadSpec::new("read", n, n)
            .mix(OpMix::ReadOnly)
            .value(ValueSize::Fixed(value_bytes))
            .queue_depth(qd)
            .seed(29),
        crate::experiments::settle(w.finished),
    );
    (
        w.writes.mean().as_micros_f64(),
        r.reads.mean().as_micros_f64(),
    )
}

/// The paper-shaped table as a string (byte-stable for a given result).
pub fn render(res: &Fig4Result) -> String {
    use std::fmt::Write;
    let mut out = String::new();
    writeln!(
        out,
        "\n=== Fig. 4: KV/block latency ratio vs value size (random, direct) ==="
    )
    .unwrap();
    writeln!(
        out,
        "(< 1.00 favors KV-SSD; paper page payload budget is 24 KiB)"
    )
    .unwrap();
    let mut t = Table::new(&[
        "value",
        "QD",
        "write ratio",
        "read ratio",
        "KV write(us)",
        "blk write(us)",
        "KV read(us)",
        "blk read(us)",
    ]);
    for r in &res.rows {
        t.row(&[
            &kvssd_kvbench::report::bytes(r.value_bytes as u64),
            &r.qd.to_string(),
            &f2(r.write_ratio()),
            &f2(r.read_ratio()),
            &f2(r.kv_write_us),
            &f2(r.blk_write_us),
            &f2(r.kv_read_us),
            &f2(r.blk_read_us),
        ]);
    }
    writeln!(out, "{t}").unwrap();
    let small64 = res.row(2048, 64);
    let big64 = res.row(65536, 64);
    writeln!(
        out,
        "QD64 crossover: 2KiB write ratio {:.2} (paper: <=0.86) vs 64KiB write ratio {:.2} (paper: up to 5.4)",
        small64.write_ratio(),
        big64.write_ratio()
    )
    .unwrap();
    out
}

/// Prints the paper-shaped table.
pub fn report(scale: Scale) -> Fig4Result {
    let res = run(scale);
    print!("{}", render(&res));
    res
}
