//! Replication — quorum I/O cost and repair bill across R and N.
//!
//! Sweep replication factor R ∈ {1, 2, 3} against shard count
//! N ∈ {2, 4, 8}. Each cell fills its cluster (every insert fans out to
//! R replicas and acknowledges at the majority write quorum), runs a
//! uniform read phase (majority read quorum), then removes one shard
//! and pays the repair bill: re-replicating every key the victim held
//! from a surviving copy. Reported per cell: quorum write/read latency
//! percentiles, aggregate write bandwidth, and the repair's moved
//! keys / copied / dropped replica legs plus its virtual-time cost.
//!
//! Expected shapes: R = 1 rows reproduce the unreplicated cluster
//! (same placement, same single-leg acks); write latency grows with R
//! (the majority ack waits on more legs) while read latency grows more
//! slowly; the repair bill scales with the victim's key share times R.

use kvssd_kvbench::report::f2;
use kvssd_kvbench::{run_phase, ClusterStore, OpMix, Table, ValueSize, WorkloadSpec};
use kvssd_sim::{LatencyHistogram, SimTime};

use crate::experiments::cells;
use crate::{setup, Scale};

/// The (shards, replicas) grid the sweep visits, in cell order.
pub const SWEEP: [(usize, usize); 9] = [
    (2, 1),
    (2, 2),
    (2, 3),
    (4, 1),
    (4, 2),
    (4, 3),
    (8, 1),
    (8, 2),
    (8, 3),
];

/// One (N, R) cell's measurements.
#[derive(Debug, Clone)]
pub struct ReplicationPoint {
    /// Shard (device) count.
    pub shards: usize,
    /// Replication factor.
    pub replicas: usize,
    /// Distinct keys resident after the fill.
    pub resident_kvps: u64,
    /// Mean fill-phase client goodput (MB/s, acknowledged user bytes —
    /// replica fan-out costs show up as lower goodput, not more bytes).
    pub write_mbps: f64,
    /// Quorum-acknowledged write latency, median (µs).
    pub write_p50_us: f64,
    /// Quorum-acknowledged write latency, 99th percentile (µs).
    pub write_p99_us: f64,
    /// Quorum-acknowledged read latency, median (µs).
    pub read_p50_us: f64,
    /// Quorum-acknowledged read latency, 99th percentile (µs).
    pub read_p99_us: f64,
    /// Keys that gained at least one replica during repair.
    pub moved_keys: u64,
    /// Replica copies written by the repair.
    pub copied_replicas: u64,
    /// Misplaced replicas dropped by the repair.
    pub dropped_replicas: u64,
    /// Virtual time the repair took, start to completion barrier (ms).
    pub repair_ms: f64,
}

/// The full sweep.
#[derive(Debug, Clone, Default)]
pub struct ReplicationResult {
    /// One point per `SWEEP` entry, in order.
    pub points: Vec<ReplicationPoint>,
}

impl ReplicationResult {
    /// Finds the point for a (shards, replicas) pair.
    pub fn point(&self, shards: usize, replicas: usize) -> &ReplicationPoint {
        self.points
            .iter()
            .find(|p| p.shards == shards && p.replicas == replicas)
            .unwrap_or_else(|| panic!("missing point for N={shards} R={replicas}"))
    }
}

/// Builds one cell's cluster.
fn cluster(scale: Scale, shards: usize, replicas: usize) -> ClusterStore {
    match scale {
        Scale::Tiny => setup::kv_cluster_replicated_small(shards, replicas, 42),
        _ => setup::kv_cluster_replicated(shards, replicas, 42),
    }
}

/// An (N, R) cluster after its fill phase: the fill sub-cell's product,
/// handed to the measure sub-cell.
struct Filled {
    store: ClusterStore,
    fill_mbps: f64,
    fill_writes: LatencyHistogram,
    fill_finished: SimTime,
    n_kv: u64,
    shards: usize,
    replicas: usize,
}

/// Fill sub-cell: builds the cluster and fills it at quorum.
fn fill_point(scale: Scale, shards: usize, replicas: usize) -> Filled {
    let mut store = cluster(scale, shards, replicas);

    // Size the fill for the *post-repair* worst case: after the
    // one-shard removal below, N-1 survivors carry min(R, N-1) copies
    // of every key, and the repair must not run a survivor out of
    // space (at N = 2 the lone survivor absorbs the whole keyspace).
    // `rel_skew` converts the ring's hottest share into a
    // hottest/mean ratio that survives the membership change
    // approximately; target the hottest survivor at ~45 % occupancy.
    let cap = store.cluster().space().capacity_bytes;
    let cap_shard = cap / shards as u64;
    let max_share = store
        .cluster()
        .shards()
        .iter()
        .map(|s| store.cluster().ring().share_of(s.id()))
        .fold(0.0f64, f64::max);
    let rel_skew = max_share * shards as f64;
    let survivors = (shards - 1) as f64;
    let copies_after = replicas.min(shards - 1) as f64;
    let n_kv = (cap_shard as f64 * survivors * 0.45 / (4160.0 * rel_skew * copies_after)) as u64;

    let f = crate::experiments::fill(&mut store, n_kv, 4096, 8, SimTime::ZERO);
    Filled {
        store,
        fill_mbps: f.mean_mbps(),
        fill_writes: f.writes,
        fill_finished: f.finished,
        n_kv,
        shards,
        replicas,
    }
}

/// Measure sub-cell: uniform quorum reads, then a one-shard repair.
fn measure_point(filled: Filled) -> ReplicationPoint {
    let Filled {
        mut store,
        fill_mbps,
        fill_writes,
        fill_finished,
        n_kv,
        shards,
        replicas,
    } = filled;

    // Uniform quorum reads over the resident population.
    let rd = run_phase(
        &mut store,
        &WorkloadSpec::new("reads", n_kv, n_kv)
            .mix(OpMix::ReadOnly)
            .value(ValueSize::Fixed(4096))
            .queue_depth(16)
            .seed(53),
        crate::experiments::settle(fill_finished),
    );

    // Repair: remove one shard and re-replicate everything it held.
    let t0 = crate::experiments::settle(rd.finished);
    let victim = store.cluster().shards()[shards / 2].id();
    let rep = store
        .cluster_mut()
        .remove_shard(t0, victim)
        .expect("victim shard is a live member");

    ReplicationPoint {
        shards,
        replicas,
        resident_kvps: n_kv,
        write_mbps: fill_mbps,
        write_p50_us: pctl_us(&fill_writes, 50.0),
        write_p99_us: pctl_us(&fill_writes, 99.0),
        read_p50_us: pctl_us(&rd.reads, 50.0),
        read_p99_us: pctl_us(&rd.reads, 99.0),
        moved_keys: rep.moved_keys,
        copied_replicas: rep.copied_replicas,
        dropped_replicas: rep.dropped_replicas,
        repair_ms: (rep.completed.as_nanos() - t0.as_nanos()) as f64 / 1e6,
    }
}

/// Runs the experiment as two sub-cell rounds: one fill cell per (N, R)
/// pair, then one measure cell per filled cluster, each round scheduled
/// by [`cells::run_cells_phase`].
pub fn run(scale: Scale) -> ReplicationResult {
    let fills: Vec<cells::Cell<Filled>> = SWEEP
        .iter()
        .map(|&(shards, replicas)| {
            let cell: cells::Cell<Filled> = Box::new(move || fill_point(scale, shards, replicas));
            cell
        })
        .collect();
    let filled = cells::run_cells_phase("replication", "fill", fills);
    let measures: Vec<cells::Cell<ReplicationPoint>> = filled
        .into_iter()
        .map(|f| {
            let cell: cells::Cell<ReplicationPoint> = Box::new(move || measure_point(f));
            cell
        })
        .collect();
    ReplicationResult {
        points: cells::run_cells_phase("replication", "measure", measures),
    }
}

/// Histogram percentile in microseconds.
fn pctl_us(h: &LatencyHistogram, p: f64) -> f64 {
    if h.is_empty() {
        return 0.0;
    }
    h.percentile(p).as_nanos() as f64 / 1_000.0
}

/// The sweep table as a string (byte-stable for a given result).
pub fn render(res: &ReplicationResult) -> String {
    use std::fmt::Write;
    let mut out = String::new();
    writeln!(
        out,
        "\n=== Replication: quorum I/O and one-shard repair, R x N sweep ==="
    )
    .unwrap();
    let mut t = Table::new(&[
        "shards",
        "R",
        "kvps",
        "wr MB/s",
        "wr p50 us",
        "wr p99 us",
        "rd p50 us",
        "rd p99 us",
        "moved",
        "copied",
        "dropped",
        "repair ms",
    ]);
    for p in &res.points {
        t.row(&[
            &p.shards.to_string(),
            &p.replicas.to_string(),
            &p.resident_kvps.to_string(),
            &f2(p.write_mbps),
            &f2(p.write_p50_us),
            &f2(p.write_p99_us),
            &f2(p.read_p50_us),
            &f2(p.read_p99_us),
            &p.moved_keys.to_string(),
            &p.copied_replicas.to_string(),
            &p.dropped_replicas.to_string(),
            &f2(p.repair_ms),
        ]);
    }
    writeln!(out, "{t}").unwrap();
    writeln!(
        out,
        "Cluster question: what does durability cost? The majority-quorum ack \
         tracks R slowly while the repair bill tracks it linearly."
    )
    .unwrap();
    out
}

/// Prints the sweep table.
pub fn report(scale: Scale) -> ReplicationResult {
    let res = run(scale);
    print!("{}", render(&res));
    res
}
