//! Fig. 7 — space amplification vs. KVP size.
//!
//! Paper findings: KV-SSD pads small KVPs to 1 KiB — up to 20x
//! amplification (17x at 50 B values), dropping to ~1 for 1–4 KiB
//! values; Aerospike on the raw block-SSD stays < 2x; RocksDB's leveled
//! tree stays ~1.11 worst case. The padding also caps the device at
//! ~3.1 B KVPs per 3.84 TB (scaled here).

use kvssd_kvbench::report::f2;
use kvssd_kvbench::{KvStore, Table};
use kvssd_sim::SimTime;

use crate::experiments::cells;
use crate::{setup, Scale};

/// The sweep's value sizes (bytes).
pub const VALUE_SIZES: [u32; 11] = [16, 32, 50, 64, 100, 128, 256, 512, 1024, 2048, 4096];

/// One (value size, system) amplification measurement.
#[derive(Debug, Clone)]
pub struct Fig7Row {
    /// Value size in bytes.
    pub value_bytes: u32,
    /// System label.
    pub system: &'static str,
    /// stored / user bytes.
    pub amplification: f64,
}

/// The figure's measurements plus the KVP-limit observation.
#[derive(Debug, Clone, Default)]
pub struct Fig7Result {
    /// Amplification cells.
    pub rows: Vec<Fig7Row>,
    /// The device's configured KVP limit (scaled analog of ~3.1 B).
    pub kv_max_kvps: u64,
    /// The device's data capacity in bytes.
    pub kv_capacity_bytes: u64,
}

impl Fig7Result {
    /// Amplification of one cell.
    pub fn amp(&self, system: &str, value_bytes: u32) -> f64 {
        self.rows
            .iter()
            .find(|r| r.system == system && r.value_bytes == value_bytes)
            .map(|r| r.amplification)
            .unwrap_or_else(|| panic!("missing {system}@{value_bytes}"))
    }
}

/// Runs the experiment: insert `n` pairs per (system, size), read the
/// space books. One cell per (value size × system), scheduled by
/// [`cells::run_cells`].
pub fn run(scale: Scale) -> Fig7Result {
    let n = scale.pick(2_000, 20_000, 50_000);
    let mut out = Fig7Result::default();
    {
        let kv = setup::kv_ssd();
        let sp = kv.device().space();
        out.kv_max_kvps = sp.max_kvps;
        out.kv_capacity_bytes = sp.capacity_bytes;
    }
    type Make = fn() -> Box<dyn KvStore>;
    const MAKES: [Make; 3] = [
        || Box::new(setup::kv_ssd()),
        || Box::new(setup::aerospike()),
        || Box::new(setup::rocksdb()),
    ];
    let mut work: Vec<cells::Cell<Fig7Row>> = Vec::new();
    for &vs in &VALUE_SIZES {
        for make in MAKES {
            work.push(Box::new(move || {
                let mut store = make();
                let system = store.name();
                let m = crate::experiments::fill(store.as_mut(), n, vs, 16, SimTime::ZERO);
                let _ = m;
                let usage = store.space();
                Fig7Row {
                    value_bytes: vs,
                    system,
                    amplification: usage.amplification(),
                }
            }));
        }
    }
    out.rows = cells::run_cells("fig7", work);
    out
}

/// The paper-shaped table as a string (byte-stable for a given result).
pub fn render(res: &Fig7Result) -> String {
    use std::fmt::Write;
    let mut out = String::new();
    writeln!(
        out,
        "\n=== Fig. 7: space amplification vs KVP size (16 B keys) ==="
    )
    .unwrap();
    let mut t = Table::new(&["value", "KV-SSD", "Aerospike", "RocksDB"]);
    for &vs in &VALUE_SIZES {
        t.row(&[
            &kvssd_kvbench::report::bytes(vs as u64),
            &f2(res.amp("KV-SSD", vs)),
            &f2(res.amp("Aerospike", vs)),
            &f2(res.amp("RocksDB", vs)),
        ]);
    }
    writeln!(out, "{t}").unwrap();
    writeln!(
        out,
        "KV-SSD @50B: {:.1}x (paper: 17x); smallest values: {:.1}x (paper: up to 20x)",
        res.amp("KV-SSD", 50),
        res.amp("KV-SSD", 16),
    )
    .unwrap();
    writeln!(
        out,
        "KV-SSD 1-4KiB: {:.2}-{:.2}x (paper: ~1); Aerospike @50B: {:.2}x (paper: 1.8x); RocksDB worst: {:.2}x (paper: ~1.11)",
        res.amp("KV-SSD", 1024),
        res.amp("KV-SSD", 4096),
        res.amp("Aerospike", 50),
        VALUE_SIZES
            .iter()
            .map(|&v| res.amp("RocksDB", v))
            .fold(0.0, f64::max),
    )
    .unwrap();
    writeln!(
        out,
        "Device KVP limit: {} pairs on {} of data capacity (paper: ~3.1 B on 3.84 TB; scaled ~1000x)",
        res.kv_max_kvps,
        kvssd_kvbench::report::bytes(res.kv_capacity_bytes),
    )
    .unwrap();
    out
}

/// Prints the paper-shaped table.
pub fn report(scale: Scale) -> Fig7Result {
    let res = run(scale);
    print!("{}", render(&res));
    res
}
