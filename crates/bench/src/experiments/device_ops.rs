//! Device hot-path microbenchmark: host-side ops/second of the KV-SSD
//! simulator under a GC-heavy workload.
//!
//! Unlike the figures, this measures *wall-clock* cost of simulating the
//! device, not virtual-time behavior: it is the measurement harness for
//! the incremental-GC/pre-hashed-map overhaul. Both legs run in the same
//! process on the same host:
//!
//! * **baseline** — [`kvssd_core::KvSsd::set_legacy_gc_scan`] routes
//!   victim selection through the original O(blocks) linear scans;
//! * **optimized** — the incremental [`kvssd_core::victim::VictimQueue`]
//!   path (the default).
//!
//! Both legs replay the identical fixed-seed workload and must produce an
//! identical behavior checksum (virtual time + op/GC counters) — the
//! queue is a pure host-side optimization, so any divergence is a bug and
//! the run panics. The block-count-heavy geometry makes the old scan's
//! O(blocks)-per-selection cost visible the way a full-size device would.

use kvssd_core::{KvConfig, KvSsd, Payload};
use kvssd_flash::{FlashTiming, Geometry};
use kvssd_sim::rng::mix64;
use kvssd_sim::{DeterministicRng, SimTime};

use crate::walltime::Stopwatch;
use crate::Scale;

/// Fixed workload seed: every run of every leg replays the same ops.
const SEED: u64 = 0x5EED_DE71CE;

/// One leg's measurement.
#[derive(Debug, Clone, Copy)]
pub struct Leg {
    /// Host-side ops completed (stores + deletes + retrieves).
    pub ops: u64,
    /// Wall-clock seconds for the whole leg.
    pub seconds: f64,
    /// Behavior digest: virtual time and every GC-visible counter.
    pub checksum: u64,
}

impl Leg {
    /// Ops per wall-clock second.
    pub fn ops_per_sec(&self) -> f64 {
        self.ops as f64 / self.seconds
    }
}

/// Both legs of the microbenchmark.
#[derive(Debug, Clone, Copy)]
pub struct DeviceOpsResult {
    /// Legacy linear-scan leg.
    pub baseline: Leg,
    /// Incremental victim-queue leg.
    pub optimized: Leg,
}

impl DeviceOpsResult {
    /// Optimized throughput over baseline throughput.
    pub fn improvement(&self) -> f64 {
        self.optimized.ops_per_sec() / self.baseline.ops_per_sec()
    }
}

/// Block-heavy geometry: many small erase blocks, so victims drain
/// quickly and selection (the O(blocks) scan in the legacy leg) runs
/// often, while capacity stays small enough for runs in seconds.
fn geometry(scale: Scale) -> Geometry {
    Geometry {
        channels: 4,
        dies_per_channel: 4,
        planes_per_die: 2,
        blocks_per_plane: scale.pick(16, 256, 512) as u32,
        pages_per_block: 4,
        page_bytes: 32 * 1024,
    }
}

fn config() -> KvConfig {
    KvConfig {
        // Host-memory-only machinery that costs the same in both legs.
        iterator_buckets: false,
        max_kvps: 1_000_000,
        ..KvConfig::pm983_scaled()
    }
}

fn key(i: u64) -> [u8; 16] {
    let mut k = *b"dev-ops-00000000";
    k[8..].copy_from_slice(&format!("{i:08}").into_bytes());
    k
}

/// Replays the fixed-seed workload on one device and returns the leg
/// measurement. The fill phase is setup (identical in both legs and
/// GC-light); only the churn phase — where victim selection runs
/// constantly — is timed.
fn run_leg(scale: Scale, legacy: bool) -> Leg {
    let mut d = KvSsd::new(geometry(scale), FlashTiming::pm983_like(), config());
    d.set_legacy_gc_scan(legacy);
    let mut rng = DeterministicRng::seed_from(SEED);
    let vsize = 4096u32;
    let n = (d.space().capacity_bytes * 7 / 10) / (vsize as u64 + 64);
    let churn = n * 2;

    let mut t = SimTime::ZERO;
    for i in 0..n {
        t = d.store(t, &key(i), Payload::synthetic(vsize, i)).unwrap();
    }
    // Overwrite-heavy churn with deletes and reads mixed in: valid
    // counts fall block by block, so victim selection runs constantly.
    let t0 = Stopwatch::start();
    let mut ops = 0;
    for _ in 0..churn {
        let i = rng.below(n);
        match rng.below(10) {
            0..=6 => t = d.store(t, &key(i), Payload::synthetic(vsize, !i)).unwrap(),
            7..=8 => t = d.delete(t, &key(i)).unwrap().0,
            _ => t = d.retrieve(t, &key(i)).unwrap().at,
        }
        ops += 1;
    }
    t = d.flush(t).expect("flush programs open pages");
    let seconds = t0.elapsed_secs();

    let s = d.stats();
    assert!(s.gc_erases > 0, "workload must exercise GC");
    let mut checksum = mix64(t.since(SimTime::ZERO).as_nanos());
    for part in [
        s.stores,
        s.deletes,
        s.retrieves,
        s.gc_erases,
        s.gc_copied_segments,
        s.foreground_gc_events,
        d.len(),
        d.free_blocks() as u64,
    ] {
        checksum = mix64(checksum ^ part);
    }
    Leg {
        ops,
        seconds,
        checksum,
    }
}

/// Measurement rounds per leg; legs are interleaved and each leg keeps
/// its fastest round, so a background noise spike on this (possibly
/// single-CPU) host hits one round, not one leg.
const ROUNDS: usize = 3;

/// Runs both legs (interleaved, best-of-[`ROUNDS`]) and checks they
/// behaved identically.
///
/// # Panics
///
/// Panics if the two legs' behavior checksums diverge — the victim
/// queue must be wall-clock-only.
pub fn run(scale: Scale) -> DeviceOpsResult {
    let mut best: Option<(Leg, Leg)> = None;
    for _ in 0..ROUNDS {
        let baseline = run_leg(scale, true);
        let optimized = run_leg(scale, false);
        assert_eq!(
            baseline.checksum, optimized.checksum,
            "victim queue changed device behavior"
        );
        best = Some(match best {
            None => (baseline, optimized),
            Some((b, o)) => (
                if baseline.seconds < b.seconds {
                    baseline
                } else {
                    b
                },
                if optimized.seconds < o.seconds {
                    optimized
                } else {
                    o
                },
            ),
        });
    }
    let (baseline, optimized) = best.expect("ROUNDS > 0");
    DeviceOpsResult {
        baseline,
        optimized,
    }
}

/// Prints the microbench table.
pub fn report(scale: Scale) {
    print_table(&run(scale));
}

/// Prints the table for an already-measured result.
pub fn print_table(r: &DeviceOpsResult) {
    println!("device_ops: KV-SSD simulator host throughput (GC-heavy, fixed seed)");
    println!("  leg        ops      seconds   ops/sec");
    println!(
        "  legacy     {:<8} {:<9.3} {:.0}",
        r.baseline.ops,
        r.baseline.seconds,
        r.baseline.ops_per_sec()
    );
    println!(
        "  optimized  {:<8} {:<9.3} {:.0}",
        r.optimized.ops,
        r.optimized.seconds,
        r.optimized.ops_per_sec()
    );
    println!(
        "  improvement {:.2}x (checksum {:016x}, legs identical)",
        r.improvement(),
        r.baseline.checksum
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn legs_agree_at_tiny_scale() {
        let r = run(Scale::Tiny);
        assert_eq!(r.baseline.checksum, r.optimized.checksum);
        assert_eq!(r.baseline.ops, r.optimized.ops);
    }
}
