//! Fig. 6 — foreground garbage collection under random updates.
//!
//! Paper setup: fill 80 % of device capacity with 16 B keys / 4 KiB
//! values, then rewrite the same volume with (a) RocksDB random updates
//! on the block-SSD, (b) KV-SSD uniform-random updates, (c) KV-SSD
//! sliding-window pseudo-random updates (footnote 2).
//!
//! Paper findings: the KV-SSD's bandwidth collapses intermittently under
//! foreground GC in (b) and (c); RocksDB on the block-SSD shows no such
//! drop (sequential SST writes + whole-file TRIM keep device GC cheap).

use kvssd_kvbench::report::f2;
use kvssd_kvbench::{run_phase, AccessPattern, OpMix, Table, ValueSize, WorkloadSpec};
use kvssd_sim::SimTime;

use crate::{setup, Scale};

/// One panel's bandwidth trace and summary.
#[derive(Debug, Clone)]
pub struct Fig6Panel {
    /// Panel label (paper sub-figure).
    pub label: &'static str,
    /// Mean update-phase bandwidth (MB/s, user bytes).
    pub mean_mbps: f64,
    /// Minimum complete-window bandwidth.
    pub min_mbps: f64,
    /// Maximum complete-window bandwidth.
    pub max_mbps: f64,
    /// Downsampled bandwidth timeline (MB/s).
    pub timeline: Vec<f64>,
    /// Foreground-GC episodes observed on the KV device (0 for RocksDB).
    pub foreground_gc_events: u64,
    /// GC/defrag/compaction copies observed below the store.
    pub copies: u64,
}

impl Fig6Panel {
    /// min/mean bandwidth — a collapse indicator (small = deep dips).
    pub fn dip_ratio(&self) -> f64 {
        if self.mean_mbps == 0.0 {
            return 1.0;
        }
        self.min_mbps / self.mean_mbps
    }
}

/// All three panels.
#[derive(Debug, Clone, Default)]
pub struct Fig6Result {
    /// Panels (a), (b), (c).
    pub panels: Vec<Fig6Panel>,
}

impl Fig6Result {
    /// Finds a panel by label.
    pub fn panel(&self, label: &str) -> &Fig6Panel {
        self.panels
            .iter()
            .find(|p| p.label == label)
            .unwrap_or_else(|| panic!("missing panel {label}"))
    }
}

/// Runs the experiment.
pub fn run(scale: Scale) -> Fig6Result {
    let mut out = Fig6Result::default();

    // Panel (a): RocksDB on block-SSD. Population sized to ~35 % of the
    // block device so SSTs + compaction headroom fit the filesystem.
    let n_rdb = scale.pick(6_000, 120_000, 250_000);
    {
        let mut store = setup::rocksdb_small_host();
        let f = crate::experiments::fill(&mut store, n_rdb, 4096, 8, SimTime::ZERO);
        let upd = run_phase(
            &mut store,
            &WorkloadSpec::new("updates", n_rdb, n_rdb)
                .mix(OpMix::UpdateOnly)
                .value(ValueSize::Fixed(4096))
                .queue_depth(8)
                .seed(31),
            crate::experiments::settle(f.finished),
        );
        let dev = store.inner().fs().device();
        let timeline = downsample(&upd);
        let (min, max) = min_max(&timeline);
        out.panels.push(Fig6Panel {
            label: "a-rocksdb-block",
            mean_mbps: upd.mean_mbps(),
            min_mbps: min,
            max_mbps: max,
            timeline,
            foreground_gc_events: dev.stats().foreground_gc_events,
            copies: dev.stats().gc_copied_clusters,
        });
    }

    // Panels (b) and (c): KV-SSD filled to ~80 % of its data capacity.
    // At Tiny scale the 80 % fill must stay small, so a smaller device
    // (the unit-test geometry) stands in — occupancy, not absolute size,
    // drives the mechanism.
    let kv_store = || -> kvssd_kvbench::KvSsdStore {
        match scale {
            Scale::Tiny => kvssd_kvbench::KvSsdStore::new(kvssd_core::KvSsd::new(
                kvssd_flash::Geometry::small(),
                setup::timing(),
                kvssd_core::KvConfig::small(),
            )),
            _ => setup::kv_ssd_with(setup::kv_config_macro()),
        }
    };
    let cap = kv_store().device().space().capacity_bytes;
    let n_kv = (cap * 8 / 10) / 4160;
    for (label, pattern) in [
        ("b-kvssd-uniform", AccessPattern::Uniform),
        (
            "c-kvssd-window",
            AccessPattern::SlidingWindow {
                window: (n_kv / 20).max(1),
            },
        ),
    ] {
        let mut store = kv_store();
        let f = crate::experiments::fill(&mut store, n_kv, 4096, 8, SimTime::ZERO);
        let fg_before = store.device().stats().foreground_gc_events;
        let upd = run_phase(
            &mut store,
            &WorkloadSpec::new("updates", n_kv, n_kv)
                .mix(OpMix::UpdateOnly)
                .pattern(pattern)
                .value(ValueSize::Fixed(4096))
                .queue_depth(8)
                .seed(37),
            crate::experiments::settle(f.finished),
        );
        let timeline = downsample(&upd);
        let (min, max) = min_max(&timeline);
        out.panels.push(Fig6Panel {
            label,
            mean_mbps: upd.mean_mbps(),
            min_mbps: min,
            max_mbps: max,
            timeline,
            foreground_gc_events: store.device().stats().foreground_gc_events - fg_before,
            copies: store.device().stats().gc_copied_segments,
        });
    }
    out
}

/// Min and max of a smoothed timeline (ignoring the partial tail).
fn min_max(timeline: &[f64]) -> (f64, f64) {
    let body = &timeline[..timeline.len().saturating_sub(1).max(1)];
    let min = body.iter().cloned().fold(f64::INFINITY, f64::min);
    let max = body.iter().cloned().fold(0.0f64, f64::max);
    (if min.is_finite() { min } else { 0.0 }, max)
}

/// Downsamples a phase's bandwidth series to ~24 points.
fn downsample(m: &kvssd_kvbench::RunMetrics) -> Vec<f64> {
    let pts = m.bandwidth.points();
    if pts.is_empty() {
        return Vec::new();
    }
    let chunk = pts.len().div_ceil(24);
    pts.chunks(chunk)
        .map(|c| c.iter().map(|p| p.mbps).sum::<f64>() / c.len() as f64)
        .collect()
}

/// Prints the paper-shaped panels.
pub fn report(scale: Scale) -> Fig6Result {
    let res = run(scale);
    println!("\n=== Fig. 6: bandwidth under random updates after an 80 % fill ===");
    let mut t = Table::new(&[
        "panel",
        "mean MB/s",
        "min MB/s",
        "max MB/s",
        "min/mean",
        "fg-GC events",
        "copies",
    ]);
    for p in &res.panels {
        t.row(&[
            p.label,
            &f2(p.mean_mbps),
            &f2(p.min_mbps),
            &f2(p.max_mbps),
            &f2(p.dip_ratio()),
            &p.foreground_gc_events.to_string(),
            &p.copies.to_string(),
        ]);
    }
    println!("{t}");
    for p in &res.panels {
        let spark: Vec<String> = p.timeline.iter().map(|v| format!("{v:.0}")).collect();
        println!("{:<18} MB/s timeline: {}", p.label, spark.join(" "));
    }
    println!(
        "Paper: (a) no drastic drop on RocksDB/block; (b),(c) intermittent collapses on KV-SSD."
    );
    res
}
