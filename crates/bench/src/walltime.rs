//! The workspace's **only** wall-clock window.
//!
//! Everything the simulator models runs in virtual time ([`kvssd_sim::SimTime`])
//! so that every figure is a pure function of its seeds — the property the
//! `determinism`/`harness_determinism` suites and the paper's
//! "same substrate, two firmwares" comparison depend on. Real clocks are
//! still needed in exactly one place: the self-timing harness that reports
//! how long the *simulator itself* takes on the host (`BENCH_HARNESS.json`,
//! the `device_ops` microbench, per-cell scheduler timings). Those numbers
//! describe the host, never the modeled device, and feed no experiment
//! table.
//!
//! `kvlint`'s `no-wall-clock` rule forbids `std::time::{Instant, SystemTime}`
//! everywhere except this file, so any new timing need must either route
//! through [`Stopwatch`] or argue its case in a `// kvlint: allow` pragma.
// kvlint's allowlist admits this module wholesale; the clippy mirror of the
// rule needs the expect below (see clippy.toml `disallowed-types`).
#![allow(clippy::disallowed_types)]

use std::time::Instant;

/// A running wall-clock timer. Construct with [`Stopwatch::start`].
#[derive(Debug, Clone, Copy)]
pub struct Stopwatch(Instant);

impl Stopwatch {
    /// Starts timing now.
    pub fn start() -> Self {
        Stopwatch(Instant::now())
    }

    /// Seconds of host wall-clock elapsed since [`Stopwatch::start`].
    pub fn elapsed_secs(&self) -> f64 {
        self.0.elapsed().as_secs_f64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn elapsed_is_monotonic_and_nonnegative() {
        let sw = Stopwatch::start();
        let a = sw.elapsed_secs();
        let b = sw.elapsed_secs();
        assert!(a >= 0.0);
        assert!(b >= a);
    }
}
