//! Shared device and store constructors for the experiments.
//!
//! Every experiment builds its systems from here so all comparisons run
//! on the same scaled PM983 substrate (geometry + timing), differing only
//! in firmware/stack — the paper's methodology.

use kvssd_block_ftl::{BlockFtlConfig, BlockSsd};
use kvssd_cluster::{ClusterConfig, KvCluster};
use kvssd_core::{KvConfig, KvSsd};
use kvssd_fabric::{Fabric, FabricConfig, LinkConfig};
use kvssd_flash::{FlashTiming, Geometry};
use kvssd_hash_store::{HashStore, HashStoreConfig};
use kvssd_host_stack::ExtFs;
use kvssd_kvbench::{ClusterStore, HashKvStore, KvSsdStore, LsmKvStore, RawBlockStore};
use kvssd_lsm_store::{LsmConfig, LsmStore};

/// The shared hardware: scaled PM983 geometry.
pub fn geometry() -> Geometry {
    Geometry::pm983_scaled()
}

/// The shared hardware: PM983-class NAND timing.
pub fn timing() -> FlashTiming {
    FlashTiming::pm983_like()
}

/// A fresh KV-firmware device with default (scaled) configuration.
pub fn kv_ssd() -> KvSsdStore {
    KvSsdStore::new(KvSsd::new(geometry(), timing(), KvConfig::pm983_scaled()))
}

/// A KV-firmware device with a custom configuration.
pub fn kv_ssd_with(config: KvConfig) -> KvSsdStore {
    KvSsdStore::new(KvSsd::new(geometry(), timing(), config))
}

/// A KV configuration for macro runs: iterator buckets off so host
/// memory stays bounded at millions of keys.
pub fn kv_config_macro() -> KvConfig {
    KvConfig {
        iterator_buckets: false,
        ..KvConfig::pm983_scaled()
    }
}

/// A fresh block-firmware device.
pub fn block_ssd() -> BlockSsd {
    BlockSsd::new(geometry(), timing(), BlockFtlConfig::pm983_like())
}

/// Raw block direct I/O with `value_bytes`-sized slots (the Figs. 3–5
/// baseline).
pub fn block_direct(value_bytes: u32) -> RawBlockStore {
    RawBlockStore::new(block_ssd(), value_bytes)
}

/// RocksDB-like store on ext4 over the block-SSD, 10 MB block cache,
/// 192 GB-class host (scaled).
pub fn rocksdb() -> LsmKvStore {
    LsmKvStore::new(LsmStore::new(
        ExtFs::format(block_ssd()),
        LsmConfig::rocksdb_like(),
    ))
}

/// RocksDB-like store on the 6 GB-class macro host (scaled).
pub fn rocksdb_small_host() -> LsmKvStore {
    LsmKvStore::new(LsmStore::new(
        ExtFs::format(block_ssd()),
        LsmConfig::rocksdb_like_small_host(),
    ))
}

/// A KV-SSD cluster of `shards` scaled-PM983 devices behind the default
/// pass-through submission queues (1 shard == the single-device setup).
pub fn kv_cluster(shards: usize, seed: u64) -> ClusterStore {
    kv_cluster_with(shards, seed, kv_config_macro())
}

/// A KV-SSD cluster with a custom per-device configuration.
pub fn kv_cluster_with(shards: usize, seed: u64, config: KvConfig) -> ClusterStore {
    ClusterStore::new(KvCluster::new(ClusterConfig::new(shards, seed), |_| {
        KvSsd::new(geometry(), timing(), config)
    }))
}

/// A KV-SSD cluster of unit-test-geometry devices, for Tiny-scale runs
/// where occupancy (not absolute size) drives the mechanism.
pub fn kv_cluster_small(shards: usize, seed: u64) -> ClusterStore {
    ClusterStore::new(KvCluster::new(ClusterConfig::new(shards, seed), |_| {
        KvSsd::new(
            Geometry::small(),
            FlashTiming::pm983_like(),
            KvConfig::small(),
        )
    }))
}

/// An R-way replicated KV-SSD cluster (majority quorums) of scaled
/// PM983 devices. `r = 1` is [`kv_cluster`] exactly.
pub fn kv_cluster_replicated(shards: usize, r: usize, seed: u64) -> ClusterStore {
    let config = kv_config_macro();
    ClusterStore::new(KvCluster::new(
        ClusterConfig::new(shards, seed).replication(r),
        |_| KvSsd::new(geometry(), timing(), config),
    ))
}

/// An R-way replicated cluster of unit-test-geometry devices for
/// Tiny-scale runs.
pub fn kv_cluster_replicated_small(shards: usize, r: usize, seed: u64) -> ClusterStore {
    ClusterStore::new(KvCluster::new(
        ClusterConfig::new(shards, seed).replication(r),
        |_| {
            KvSsd::new(
                Geometry::small(),
                FlashTiming::pm983_like(),
                KvConfig::small(),
            )
        },
    ))
}

/// An R-way replicated cluster (majority quorums) whose replica legs
/// cross a [`Fabric`] of `link`-shaped links, with lean quorum reads
/// (optionally hedged at `hedge`). Scaled-PM983 devices; reshape
/// individual links afterwards through
/// [`KvCluster::fabric_mut`].
pub fn kv_cluster_fabric(
    shards: usize,
    r: usize,
    seed: u64,
    link: LinkConfig,
    hedge: Option<kvssd_sim::SimDuration>,
) -> ClusterStore {
    let config = kv_config_macro();
    ClusterStore::new(KvCluster::with_transport(
        ClusterConfig::new(shards, seed)
            .replication(r)
            .lean_reads(hedge),
        Box::new(Fabric::new(FabricConfig::new(seed, link), shards)),
        |_| KvSsd::new(geometry(), timing(), config),
    ))
}

/// The fabric-backed replicated cluster on unit-test-geometry devices
/// for Tiny-scale runs.
pub fn kv_cluster_fabric_small(
    shards: usize,
    r: usize,
    seed: u64,
    link: LinkConfig,
    hedge: Option<kvssd_sim::SimDuration>,
) -> ClusterStore {
    ClusterStore::new(KvCluster::with_transport(
        ClusterConfig::new(shards, seed)
            .replication(r)
            .lean_reads(hedge),
        Box::new(Fabric::new(FabricConfig::new(seed, link), shards)),
        |_| {
            KvSsd::new(
                Geometry::small(),
                FlashTiming::pm983_like(),
                KvConfig::small(),
            )
        },
    ))
}

/// A fabric-backed replicated cluster returned bare (no `ClusterStore`
/// adapter): the fault-injection sweep drives it directly because its
/// ops may legitimately fail with `QuorumUnavailable`, which the
/// adapter treats as fatal. `deadlines` arms per-leg timeouts/retries
/// and `write_hedge` arms hedged quorum writes; `small` picks the
/// unit-test device geometry for Tiny-scale runs.
pub fn kv_cluster_faulty(
    shards: usize,
    r: usize,
    seed: u64,
    link: LinkConfig,
    small: bool,
    deadlines: Option<(kvssd_sim::SimDuration, u32)>,
    write_hedge: Option<kvssd_sim::SimDuration>,
) -> KvCluster {
    let mut cfg = ClusterConfig::new(shards, seed)
        .replication(r)
        .hedged_writes(write_hedge);
    if let Some((timeout, retries)) = deadlines {
        cfg = cfg.deadlines(timeout, retries);
    }
    let transport = Box::new(Fabric::new(FabricConfig::new(seed, link), shards));
    if small {
        KvCluster::with_transport(cfg, transport, |_| {
            KvSsd::new(
                Geometry::small(),
                FlashTiming::pm983_like(),
                KvConfig::small(),
            )
        })
    } else {
        let config = kv_config_macro();
        KvCluster::with_transport(cfg, transport, |_| KvSsd::new(geometry(), timing(), config))
    }
}

/// Aerospike-like store with direct device I/O.
pub fn aerospike() -> HashKvStore {
    HashKvStore::new(HashStore::new(
        block_ssd(),
        HashStoreConfig::aerospike_like(),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use kvssd_kvbench::KvStore;
    use kvssd_sim::SimTime;

    #[test]
    fn all_setups_construct_and_serve() {
        let mut stores: Vec<Box<dyn KvStore>> = vec![
            Box::new(kv_ssd()),
            Box::new(rocksdb()),
            Box::new(aerospike()),
            Box::new(block_direct(4096)),
        ];
        for s in &mut stores {
            let t = s.insert(SimTime::ZERO, b"setup-key", 100, 0);
            assert!(s.read(t, b"setup-key").1, "{}", s.name());
        }
    }

    #[test]
    fn macro_config_disables_buckets() {
        assert!(!kv_config_macro().iterator_buckets);
    }
}
