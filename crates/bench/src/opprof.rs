//! Dependency-free op-path profiler: host-side ns/op and allocs/op for
//! each stage of the benchmark hot path.
//!
//! The per-op fast path overhaul claims the hot loop stopped paying for
//! key allocation and per-op dispatch; this module measures each stage
//! in isolation so the claim is quoted, not asserted:
//!
//! * `keygen` — [`KeyGen::key_into`] regenerating into a reused buffer,
//! * `keygen_alloc` — the pre-overhaul [`KeyGen::key`] allocating path,
//! * `ring` — consistent-hash replica lookup
//!   ([`HashRing::replica_set_into`]) into a reused buffer,
//! * `submit` — one [`SubmissionQueue::submit`] round trip
//!   (inflight-heap push/pop plus doorbell amortization),
//! * `device` — one steady-state [`KvSsd::store`] update (the full
//!   firmware model: index, buffer, accounting),
//! * `histogram` — one [`LatencyHistogram::record`].
//!
//! Wall-clock comes only from [`crate::walltime::Stopwatch`] (the
//! workspace's sanctioned window). Allocation counts come from
//! [`CountingAlloc`], a zero-dependency [`GlobalAlloc`] wrapper around
//! the system allocator that the `opprof` example installs with
//! `#[global_allocator]`; without it installed the alloc columns read
//! zero (wall-clock numbers are unaffected).

use std::alloc::{GlobalAlloc, Layout, System};
use std::hint::black_box;
use std::sync::atomic::{AtomicU64, Ordering};

use kvssd_cluster::HashRing;
use kvssd_core::{KvConfig, KvSsd, Payload};
use kvssd_flash::{FlashTiming, Geometry};
use kvssd_kvbench::keys::KeyGen;
use kvssd_nvme::{SqConfig, SubmissionQueue};
use kvssd_sim::rng::mix64;
use kvssd_sim::{LatencyHistogram, SimDuration, SimTime};

use crate::walltime::Stopwatch;
use crate::Scale;

/// Heap allocations observed by [`CountingAlloc`] since process start.
static ALLOCS: AtomicU64 = AtomicU64::new(0);

/// A counting wrapper around the system allocator. Install it as the
/// process's `#[global_allocator]` to make [`allocations`] live:
///
/// ```ignore
/// #[global_allocator]
/// static ALLOC: kvssd_bench::opprof::CountingAlloc =
///     kvssd_bench::opprof::CountingAlloc;
/// ```
pub struct CountingAlloc;

// SAFETY: defers every operation to `System`, which upholds the
// `GlobalAlloc` contract; the counter is a side effect only.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        // SAFETY: caller upholds `alloc`'s contract (nonzero layout).
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        // SAFETY: caller passes a pointer from this allocator with its
        // original layout, as `dealloc`'s contract requires.
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        // SAFETY: caller upholds `alloc_zeroed`'s contract.
        unsafe { System.alloc_zeroed(layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        // SAFETY: caller passes this allocator's pointer/layout pair and
        // a nonzero `new_size`, per `realloc`'s contract.
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

/// Allocations counted so far (zero unless [`CountingAlloc`] is the
/// process's global allocator).
pub fn allocations() -> u64 {
    ALLOCS.load(Ordering::Relaxed)
}

/// One stage's measured cost.
#[derive(Debug, Clone, Copy)]
pub struct StageCost {
    /// Stage name (stable identifiers; see module docs).
    pub name: &'static str,
    /// Host nanoseconds per operation.
    pub ns_per_op: f64,
    /// Heap allocations (malloc/realloc) per operation.
    pub allocs_per_op: f64,
}

/// All stages, in hot-path order.
#[derive(Debug, Clone)]
pub struct OpProfResult {
    /// Measured stages.
    pub stages: Vec<StageCost>,
}

impl OpProfResult {
    /// Finds a stage by name.
    pub fn stage(&self, name: &str) -> &StageCost {
        self.stages
            .iter()
            .find(|s| s.name == name)
            .unwrap_or_else(|| panic!("missing stage {name}"))
    }
}

/// Times `ops` iterations of `f` after a 1/8 warmup, charging the
/// allocation delta to the measured window.
fn measure(name: &'static str, ops: u64, mut f: impl FnMut(u64)) -> StageCost {
    for i in 0..ops / 8 {
        f(i);
    }
    let a0 = allocations();
    let sw = Stopwatch::start();
    for i in 0..ops {
        f(i);
    }
    let secs = sw.elapsed_secs();
    let allocs = allocations() - a0;
    StageCost {
        name,
        ns_per_op: secs * 1e9 / ops as f64,
        allocs_per_op: allocs as f64 / ops as f64,
    }
}

/// Roomy single-device geometry so the `device` stage measures
/// steady-state update cost, not GC.
fn device() -> KvSsd {
    let geometry = Geometry {
        channels: 2,
        dies_per_channel: 2,
        planes_per_die: 2,
        blocks_per_plane: 64,
        pages_per_block: 64,
        page_bytes: 32 * 1024,
    };
    let config = KvConfig {
        iterator_buckets: false,
        max_kvps: 1_000_000,
        ..KvConfig::pm983_scaled()
    };
    KvSsd::new(geometry, FlashTiming::pm983_like(), config)
}

/// Measures every stage at the given scale.
pub fn run(scale: Scale) -> OpProfResult {
    let mut stages = Vec::new();
    let light_ops = scale.pick(100_000, 2_000_000, 4_000_000);
    let device_ops = scale.pick(20_000, 300_000, 600_000);

    // Key generation: reused buffer vs per-op allocation.
    let keygen = KeyGen::new(16);
    let mut key_buf = Vec::with_capacity(16);
    stages.push(measure("keygen", light_ops, |i| {
        keygen.key_into(i & 0xF_FFFF, &mut key_buf);
        black_box(&key_buf);
    }));
    stages.push(measure("keygen_alloc", light_ops, |i| {
        black_box(keygen.key(i & 0xF_FFFF));
    }));

    // Consistent-hash replica lookup into a reused buffer.
    let ring = HashRing::new(0xB1A5, 64, &(0..8).collect::<Vec<_>>());
    let mut replicas = Vec::with_capacity(3);
    stages.push(measure("ring", light_ops, |i| {
        ring.replica_set_into(mix64(i), 3, &mut replicas);
        black_box(&replicas);
    }));

    // Submission-queue round trip with a fixed-latency op.
    let mut sq = SubmissionQueue::new(SqConfig::batched(32, 8, SimDuration::from_micros(1)));
    let mut now = SimTime::ZERO;
    stages.push(measure("submit", light_ops, |_| {
        let timing = sq.submit(now, |issue| issue + SimDuration::from_micros(10));
        black_box(timing);
        now += SimDuration::from_nanos(500);
    }));

    // Steady-state device update on a prefilled device.
    let mut d = device();
    let n_keys = 4_096u64;
    let keys: Vec<Vec<u8>> = (0..n_keys).map(|i| keygen.key(i)).collect();
    let mut t = SimTime::ZERO;
    for (i, k) in keys.iter().enumerate() {
        t = d.store(t, k, Payload::synthetic(1024, i as u64)).unwrap();
    }
    stages.push(measure("device", device_ops, |i| {
        t = d
            .store(
                t,
                &keys[(i % n_keys) as usize],
                Payload::synthetic(1024, !i),
            )
            .unwrap();
    }));

    // Latency-histogram record.
    let mut hist = LatencyHistogram::new();
    stages.push(measure("histogram", light_ops, |i| {
        hist.record(SimDuration::from_nanos(
            2_000 + (i.wrapping_mul(37)) % 50_000,
        ));
    }));
    black_box(&hist);

    OpProfResult { stages }
}

/// Prints the stage table.
pub fn print_table(r: &OpProfResult) {
    println!("opprof: hot-path stage costs (host wall-clock)");
    println!("  stage         ns/op     allocs/op");
    for s in &r.stages {
        println!(
            "  {:<12}  {:<8.1}  {:.3}",
            s.name, s.ns_per_op, s.allocs_per_op
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_every_stage() {
        let r = run(Scale::Tiny);
        for name in [
            "keygen",
            "keygen_alloc",
            "ring",
            "submit",
            "device",
            "histogram",
        ] {
            assert!(r.stage(name).ns_per_op > 0.0, "{name} must take time");
        }
    }
}
