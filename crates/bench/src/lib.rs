//! Experiment harness: regenerates every table and figure of the paper.
//!
//! Each bench target under `benches/` prints the corresponding figure's
//! rows/series (captured into `bench_output.txt` by the top-level
//! `cargo bench` run) and then times a small scenario kernel under
//! Criterion. The experiment logic lives here so integration tests can
//! assert on the *shapes* (who wins, where the crossovers fall) without
//! re-running the benches.
//!
//! Scale: experiments default to a laptop-friendly size; set
//! `KVSSD_BENCH_SCALE=full` for populations closer to the scaled-paper
//! sizes (several times slower).

pub mod alloctune;
pub mod experiments;
pub mod opprof;
pub mod setup;
pub mod walltime;

/// Reads one `KVSSD_*` configuration variable from the environment.
///
/// This is the workspace's only sanctioned environment read: every knob
/// (`KVSSD_BENCH_SCALE`, `KVSSD_BENCH_THREADS`, `KVSSD_BENCH_HARNESS_OUT`,
/// `KVSSD_DEBUG`, ...) funnels through here so `kvlint`'s `no-env-read`
/// rule can allowlist exactly one module — ambient host state must never
/// steer a library crate, or runs stop being pure functions of their
/// seeds. Returns `None` when unset or not valid UTF-8.
#[allow(clippy::disallowed_methods)] // the one sanctioned env read (see doc)
pub fn env_config(name: &str) -> Option<String> {
    debug_assert!(
        name.starts_with("KVSSD_"),
        "bench config variables are namespaced KVSSD_*"
    );
    // No pragma needed here: this file is kvlint's ENV_READ_ALLOWLIST
    // entry, and a pragma that suppresses nothing is itself a violation
    // (dead-pragma) — the allowlist and the pragma surface never overlap.
    std::env::var(name).ok()
}

/// Experiment scale, selected via `KVSSD_BENCH_SCALE`
/// (`tiny`|`quick`|`full`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Minimal populations for (debug-build) integration tests: shapes
    /// hold, absolute numbers are noisy.
    Tiny,
    /// CI-sized populations (the default for `cargo bench`).
    Quick,
    /// Populations near the scaled-paper sizes.
    Full,
}

impl Scale {
    /// Reads the scale from the environment.
    pub fn from_env() -> Self {
        match env_config("KVSSD_BENCH_SCALE").as_deref() {
            Some("full") => Scale::Full,
            Some("tiny") => Scale::Tiny,
            _ => Scale::Quick,
        }
    }

    /// Picks the value for this scale.
    pub fn pick(self, tiny: u64, quick: u64, full: u64) -> u64 {
        match self {
            Scale::Tiny => tiny,
            Scale::Quick => quick,
            Scale::Full => full,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_picks_by_variant() {
        assert_eq!(Scale::Tiny.pick(1, 2, 3), 1);
        assert_eq!(Scale::Quick.pick(1, 2, 3), 2);
        assert_eq!(Scale::Full.pick(1, 2, 3), 3);
    }

    #[test]
    fn env_scale_defaults_to_quick() {
        // (No env mutation: just check the default path when the
        // variable is absent or unknown.)
        if env_config("KVSSD_BENCH_SCALE").is_none() {
            assert_eq!(Scale::from_env(), Scale::Quick);
        }
    }
}
