//! Bench target for the paper's fig4: prints the reproduced
//! rows/series, then times a simulator kernel under Criterion.
//!
//! Run with `cargo bench --bench fig4_value_size_concurrency`; scale via
//! `KVSSD_BENCH_SCALE` = tiny|quick|full (default quick).

#[cfg(feature = "criterion")]
use criterion::Criterion;
use kvssd_bench::{experiments, Scale};

/// A small simulator kernel for Criterion to time: wall-clock cost of
/// simulating 200 split-blob (32 KiB) stores.
#[cfg(feature = "criterion")]
fn kernel(c: &mut Criterion) {
    c.bench_function("sim_split_blob_store", |b| {
        b.iter(|| {
            let mut s = kvssd_bench::setup::kv_ssd();
            let spec = kvssd_kvbench::WorkloadSpec::new("k", 200, 200)
                .mix(kvssd_kvbench::OpMix::InsertOnly)
                .value(kvssd_kvbench::ValueSize::Fixed(32 * 1024))
                .queue_depth(8);
            let m = kvssd_kvbench::run_phase(&mut s, &spec, kvssd_sim::SimTime::ZERO);
            std::hint::black_box(m.finished);
        })
    });
}

fn main() {
    // 1. Regenerate the figure (captured into bench_output.txt).
    experiments::fig4::report(Scale::from_env());

    // 2. Time the kernel (only with the non-default `criterion`
    //    feature; the offline default stops at the printed tables).
    #[cfg(feature = "criterion")]
    {
        let mut c = Criterion::default().sample_size(10).configure_from_args();
        kernel(&mut c);
        c.final_summary();
    }
}
