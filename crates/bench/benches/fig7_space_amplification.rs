//! Bench target for the paper's fig7: prints the reproduced
//! rows/series, then times a simulator kernel under Criterion.
//!
//! Run with `cargo bench --bench fig7_space_amplification`; scale via
//! `KVSSD_BENCH_SCALE` = tiny|quick|full (default quick).

#[cfg(feature = "criterion")]
use criterion::Criterion;
use kvssd_bench::{experiments, Scale};

/// A small simulator kernel for Criterion to time: wall-clock cost of
/// simulating blob layout planning across sizes.
#[cfg(feature = "criterion")]
fn kernel(c: &mut Criterion) {
    c.bench_function("sim_blob_layout_plan", |b| {
        b.iter(|| {
            let cfg = kvssd_core::KvConfig::pm983_scaled();
            let mut total = 0u64;
            for v in (0..2_000u64).map(|i| i * 37 % 66_000) {
                let l = kvssd_core::blob::BlobLayout::plan(&cfg, 16, v);
                total += l.allocated_bytes();
            }
            std::hint::black_box(total);
        })
    });
}

fn main() {
    // 1. Regenerate the figure (captured into bench_output.txt).
    experiments::fig7::report(Scale::from_env());

    // 2. Time the kernel (only with the non-default `criterion`
    //    feature; the offline default stops at the printed tables).
    #[cfg(feature = "criterion")]
    {
        let mut c = Criterion::default().sample_size(10).configure_from_args();
        kernel(&mut c);
        c.final_summary();
    }
}
