//! Bench target for the paper's headline: prints the reproduced
//! rows/series, then times a simulator kernel under Criterion.
//!
//! Run with `cargo bench --bench headline_ratios`; scale via
//! `KVSSD_BENCH_SCALE` = tiny|quick|full (default quick).

#[cfg(feature = "criterion")]
use criterion::Criterion;
use kvssd_bench::{experiments, Scale};

/// A small simulator kernel for Criterion to time: wall-clock cost of
/// simulating 500 mixed ops on KV and block devices.
#[cfg(feature = "criterion")]
fn kernel(c: &mut Criterion) {
    c.bench_function("sim_mixed_direct_io", |b| {
        b.iter(|| {
            let mut kv = kvssd_bench::setup::kv_ssd();
            let mut blk = kvssd_bench::setup::block_direct(4096);
            let spec = kvssd_kvbench::WorkloadSpec::new("k", 500, 500)
                .mix(kvssd_kvbench::OpMix::InsertOnly)
                .queue_depth(8);
            let a = kvssd_kvbench::run_phase(&mut kv, &spec, kvssd_sim::SimTime::ZERO);
            let b = kvssd_kvbench::run_phase(&mut blk, &spec, kvssd_sim::SimTime::ZERO);
            std::hint::black_box((a.finished, b.finished));
        })
    });
}

fn main() {
    // 1. Regenerate the figure (captured into bench_output.txt).
    experiments::headline::report(Scale::from_env());

    // 2. Time the kernel (only with the non-default `criterion`
    //    feature; the offline default stops at the printed tables).
    #[cfg(feature = "criterion")]
    {
        let mut c = Criterion::default().sample_size(10).configure_from_args();
        kernel(&mut c);
        c.final_summary();
    }
}
