//! Bench target for the fabric fault sweep: prints the drop_ppm ×
//! timeout × retries availability table, then times a simulator kernel
//! under Criterion.
//!
//! Run with `cargo bench --bench fabric_faults`; scale via
//! `KVSSD_BENCH_SCALE` = tiny|quick|full (default quick).

#[cfg(feature = "criterion")]
use criterion::Criterion;
use kvssd_bench::{experiments, Scale};

/// A small simulator kernel for Criterion to time: wall-clock cost of
/// deadline-retried quorum stores over a lossy fabric.
#[cfg(feature = "criterion")]
fn kernel(c: &mut Criterion) {
    c.bench_function("sim_cluster_store_fabric_faults", |b| {
        b.iter(|| {
            let link = kvssd_fabric::LinkConfig::datacenter().drop_ppm(200_000);
            let fabric = kvssd_fabric::Fabric::new(kvssd_fabric::FabricConfig::new(42, link), 4);
            let mut cluster = kvssd_cluster::KvCluster::with_transport(
                kvssd_cluster::ClusterConfig::new(4, 42)
                    .replication(3)
                    .deadlines(kvssd_sim::SimDuration::from_micros(500), 3),
                Box::new(fabric),
                |_| {
                    kvssd_core::KvSsd::new(
                        kvssd_flash::Geometry::small(),
                        kvssd_flash::FlashTiming::pm983_like(),
                        kvssd_core::KvConfig::small(),
                    )
                },
            );
            let mut t = kvssd_sim::SimTime::ZERO;
            for i in 0..400u64 {
                let key = format!("faults.key.{i:08}");
                if let Ok(done) =
                    cluster.store(t, key.as_bytes(), kvssd_core::Payload::synthetic(1024, i))
                {
                    t = done;
                }
            }
            std::hint::black_box(t);
        })
    });
}

fn main() {
    // 1. Regenerate the sweep (captured into bench_output.txt).
    experiments::fabric_faults::report(Scale::from_env());

    // 2. Time the kernel (only with the non-default `criterion`
    //    feature; the offline default stops at the printed tables).
    #[cfg(feature = "criterion")]
    {
        let mut c = Criterion::default().sample_size(10).configure_from_args();
        kernel(&mut c);
        c.final_summary();
    }
}
