//! Bench target for the cluster replication sweep: prints the R × N
//! quorum-latency and repair-bill table, then times a simulator kernel
//! under Criterion.
//!
//! Run with `cargo bench --bench replication`; scale via
//! `KVSSD_BENCH_SCALE` = tiny|quick|full (default quick).

#[cfg(feature = "criterion")]
use criterion::Criterion;
use kvssd_bench::{experiments, Scale};

/// A small simulator kernel for Criterion to time: wall-clock cost of
/// 3-way replicated stores through a 4-shard cluster.
#[cfg(feature = "criterion")]
fn kernel(c: &mut Criterion) {
    c.bench_function("sim_cluster_store_replicated", |b| {
        b.iter(|| {
            let mut cluster = kvssd_cluster::KvCluster::for_test_replicated(4, 3);
            let mut t = kvssd_sim::SimTime::ZERO;
            for i in 0..400u64 {
                let key = format!("replica.key.{i:08}");
                t = cluster
                    .store(t, key.as_bytes(), kvssd_core::Payload::synthetic(1024, i))
                    .unwrap();
            }
            std::hint::black_box(t);
        })
    });
}

fn main() {
    // 1. Regenerate the sweep (captured into bench_output.txt).
    experiments::replication::report(Scale::from_env());

    // 2. Time the kernel (only with the non-default `criterion`
    //    feature; the offline default stops at the printed tables).
    #[cfg(feature = "criterion")]
    {
        let mut c = Criterion::default().sample_size(10).configure_from_args();
        kernel(&mut c);
        c.final_summary();
    }
}
