//! Bench target for the transport-fabric sweep: prints the link-latency
//! and slow-replica hedging table, then times a simulator kernel under
//! Criterion.
//!
//! Run with `cargo bench --bench fabric`; scale via
//! `KVSSD_BENCH_SCALE` = tiny|quick|full (default quick).

#[cfg(feature = "criterion")]
use criterion::Criterion;
use kvssd_bench::{experiments, Scale};

/// A small simulator kernel for Criterion to time: wall-clock cost of
/// quorum stores over a latency-shaped fabric.
#[cfg(feature = "criterion")]
fn kernel(c: &mut Criterion) {
    c.bench_function("sim_cluster_store_fabric", |b| {
        b.iter(|| {
            let link = kvssd_fabric::LinkConfig::datacenter();
            let fabric = kvssd_fabric::Fabric::new(kvssd_fabric::FabricConfig::new(42, link), 4);
            let mut cluster = kvssd_cluster::KvCluster::with_transport(
                kvssd_cluster::ClusterConfig::new(4, 42).replication(3),
                Box::new(fabric),
                |_| {
                    kvssd_core::KvSsd::new(
                        kvssd_flash::Geometry::small(),
                        kvssd_flash::FlashTiming::pm983_like(),
                        kvssd_core::KvConfig::small(),
                    )
                },
            );
            let mut t = kvssd_sim::SimTime::ZERO;
            for i in 0..400u64 {
                let key = format!("fabric.key.{i:08}");
                t = cluster
                    .store(t, key.as_bytes(), kvssd_core::Payload::synthetic(1024, i))
                    .unwrap();
            }
            std::hint::black_box(t);
        })
    });
}

fn main() {
    // 1. Regenerate the sweep (captured into bench_output.txt).
    experiments::fabric::report(Scale::from_env());

    // 2. Time the kernel (only with the non-default `criterion`
    //    feature; the offline default stops at the printed tables).
    #[cfg(feature = "criterion")]
    {
        let mut c = Criterion::default().sample_size(10).configure_from_args();
        kernel(&mut c);
        c.final_summary();
    }
}
