//! Bench target for the paper's ablations: prints the reproduced
//! rows/series, then times a simulator kernel under Criterion.
//!
//! Run with `cargo bench --bench ablations`; scale via
//! `KVSSD_BENCH_SCALE` = tiny|quick|full (default quick).

#[cfg(feature = "criterion")]
use criterion::Criterion;
use kvssd_bench::{experiments, Scale};

/// A small simulator kernel for Criterion to time: wall-clock cost of
/// simulating 2000 Bloom-rejected lookups.
#[cfg(feature = "criterion")]
fn kernel(c: &mut Criterion) {
    c.bench_function("sim_bloom_misses", |b| {
        b.iter(|| {
            let mut d = kvssd_core::KvSsd::new(
                kvssd_flash::Geometry::small(),
                kvssd_flash::FlashTiming::pm983_like(),
                kvssd_core::KvConfig::small(),
            );
            let mut t = kvssd_sim::SimTime::ZERO;
            for i in 0..2_000u64 {
                let key = format!("missing.{i:08}");
                let l = d.retrieve(t, key.as_bytes()).unwrap();
                t = l.at;
            }
            std::hint::black_box(t);
        })
    });
}

fn main() {
    // 1. Regenerate the figure (captured into bench_output.txt).
    experiments::ablations::report(Scale::from_env());

    // 2. Time the kernel (only with the non-default `criterion`
    //    feature; the offline default stops at the printed tables).
    #[cfg(feature = "criterion")]
    {
        let mut c = Criterion::default().sample_size(10).configure_from_args();
        kernel(&mut c);
        c.final_summary();
    }
}
