//! Bench target for the paper's fig2: prints the reproduced
//! rows/series, then times a simulator kernel under Criterion.
//!
//! Run with `cargo bench --bench fig2_end_to_end`; scale via
//! `KVSSD_BENCH_SCALE` = tiny|quick|full (default quick).

#[cfg(feature = "criterion")]
use criterion::Criterion;
use kvssd_bench::{experiments, Scale};

/// A small simulator kernel for Criterion to time: wall-clock cost of
/// simulating 1000 KV-SSD inserts at QD 8.
#[cfg(feature = "criterion")]
fn kernel(c: &mut Criterion) {
    c.bench_function("sim_kv_insert_1k", |b| {
        b.iter(|| {
            let mut s = kvssd_bench::setup::kv_ssd();
            let spec = kvssd_kvbench::WorkloadSpec::new("k", 1_000, 1_000)
                .mix(kvssd_kvbench::OpMix::InsertOnly)
                .queue_depth(8);
            let m = kvssd_kvbench::run_phase(&mut s, &spec, kvssd_sim::SimTime::ZERO);
            std::hint::black_box(m.finished);
        })
    });
}

fn main() {
    // 1. Regenerate the figure (captured into bench_output.txt).
    experiments::fig2::report(Scale::from_env());

    // 2. Time the kernel (only with the non-default `criterion`
    //    feature; the offline default stops at the printed tables).
    #[cfg(feature = "criterion")]
    {
        let mut c = Criterion::default().sample_size(10).configure_from_args();
        kernel(&mut c);
        c.final_summary();
    }
}
