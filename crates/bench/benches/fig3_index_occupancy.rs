//! Bench target for the paper's fig3: prints the reproduced
//! rows/series, then times a simulator kernel under Criterion.
//!
//! Run with `cargo bench --bench fig3_index_occupancy`; scale via
//! `KVSSD_BENCH_SCALE` = tiny|quick|full (default quick).

#[cfg(feature = "criterion")]
use criterion::Criterion;
use kvssd_bench::{experiments, Scale};

/// A small simulator kernel for Criterion to time: wall-clock cost of
/// simulating 500 stores against an overflowed index.
#[cfg(feature = "criterion")]
fn kernel(c: &mut Criterion) {
    c.bench_function("sim_kv_index_overflow_probe", |b| {
        b.iter(|| {
            let mut cfg = kvssd_core::KvConfig::pm983_scaled();
            cfg.index_dram_bytes = 64 * 1024;
            let mut s = kvssd_bench::setup::kv_ssd_with(cfg);
            let spec = kvssd_kvbench::WorkloadSpec::new("k", 500, 500)
                .mix(kvssd_kvbench::OpMix::InsertOnly)
                .value(kvssd_kvbench::ValueSize::Fixed(512))
                .queue_depth(8);
            let m = kvssd_kvbench::run_phase(&mut s, &spec, kvssd_sim::SimTime::ZERO);
            std::hint::black_box(m.finished);
        })
    });
}

fn main() {
    // 1. Regenerate the figure (captured into bench_output.txt).
    experiments::fig3::report(Scale::from_env());

    // 2. Time the kernel (only with the non-default `criterion`
    //    feature; the offline default stops at the printed tables).
    #[cfg(feature = "criterion")]
    {
        let mut c = Criterion::default().sample_size(10).configure_from_args();
        kernel(&mut c);
        c.final_summary();
    }
}
