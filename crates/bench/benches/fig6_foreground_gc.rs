//! Bench target for the paper's fig6: prints the reproduced
//! rows/series, then times a simulator kernel under Criterion.
//!
//! Run with `cargo bench --bench fig6_foreground_gc`; scale via
//! `KVSSD_BENCH_SCALE` = tiny|quick|full (default quick).

#[cfg(feature = "criterion")]
use criterion::Criterion;
use kvssd_bench::{experiments, Scale};

/// A small simulator kernel for Criterion to time: wall-clock cost of
/// simulating overwrite churn on a small full device.
#[cfg(feature = "criterion")]
fn kernel(c: &mut Criterion) {
    c.bench_function("sim_kv_gc_churn", |b| {
        b.iter(|| {
            let mut d = kvssd_core::KvSsd::new(
                kvssd_flash::Geometry::small(),
                kvssd_flash::FlashTiming::pm983_like(),
                kvssd_core::KvConfig::small(),
            );
            let mut t = kvssd_sim::SimTime::ZERO;
            for i in 0..600u64 {
                let key = format!("gc.key.{:08}", i % 200);
                t = d
                    .store(t, key.as_bytes(), kvssd_core::Payload::synthetic(4096, i))
                    .unwrap();
            }
            std::hint::black_box(t);
        })
    });
}

fn main() {
    // 1. Regenerate the figure (captured into bench_output.txt).
    experiments::fig6::report(Scale::from_env());

    // 2. Time the kernel (only with the non-default `criterion`
    //    feature; the offline default stops at the printed tables).
    #[cfg(feature = "criterion")]
    {
        let mut c = Criterion::default().sample_size(10).configure_from_args();
        kernel(&mut c);
        c.final_summary();
    }
}
