//! Bench target for the paper's fig5: prints the reproduced
//! rows/series, then times a simulator kernel under Criterion.
//!
//! Run with `cargo bench --bench fig5_bandwidth_value_size`; scale via
//! `KVSSD_BENCH_SCALE` = tiny|quick|full (default quick).

#[cfg(feature = "criterion")]
use criterion::Criterion;
use kvssd_bench::{experiments, Scale};

/// A small simulator kernel for Criterion to time: wall-clock cost of
/// simulating 1000 sequential block writes at QD 32.
#[cfg(feature = "criterion")]
fn kernel(c: &mut Criterion) {
    c.bench_function("sim_block_seq_write_1k", |b| {
        b.iter(|| {
            let mut d = kvssd_bench::setup::block_ssd();
            let mut r = kvssd_sim::QueueRunner::new(32);
            for i in 0..1_000u64 {
                r.submit(|t| d.write(t, i * 4096, 4096).unwrap());
            }
            std::hint::black_box(r.drain());
        })
    });
}

fn main() {
    // 1. Regenerate the figure (captured into bench_output.txt).
    experiments::fig5::report(Scale::from_env());

    // 2. Time the kernel (only with the non-default `criterion`
    //    feature; the offline default stops at the printed tables).
    #[cfg(feature = "criterion")]
    {
        let mut c = Criterion::default().sample_size(10).configure_from_args();
        kernel(&mut c);
        c.final_summary();
    }
}
