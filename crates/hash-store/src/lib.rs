//! An Aerospike-like hash-index key-value store with direct device I/O.
//!
//! The paper's second baseline: "Aerospike with direct access to the
//! block-SSD". Its architecture is the interesting contrast to both
//! RocksDB and the KV-SSD: a **DRAM-resident hash index** (like the
//! KV-FTL's, but in host memory) over a **log-structured device layout**
//! with fixed record granularity and background defragmentation.
//! Mechanisms carried here:
//!
//! * writes append 128 B-aligned records into large write blocks that are
//!   flushed to the device as big sequential writes (block-SSD friendly),
//! * reads are one direct device read at the record's offset — no LSM
//!   read amplification, no page cache,
//! * updates invalidate the old record; write blocks falling below a
//!   liveness threshold are defragmented (live records re-appended) —
//!   the copy tax that makes Aerospike *updates* slower than KV-SSD's
//!   while its *inserts* stay fast (Fig. 2b vs. 2a),
//! * ~2x worst-case space amplification for tiny records (Fig. 7's
//!   Aerospike line) from the 128 B record alignment.

//! # Example
//!
//! ```
//! use kvssd_block_ftl::{BlockFtlConfig, BlockSsd};
//! use kvssd_core::Payload;
//! use kvssd_flash::{FlashTiming, Geometry};
//! use kvssd_hash_store::{HashStore, HashStoreConfig};
//! use kvssd_sim::SimTime;
//!
//! let device = BlockSsd::new(Geometry::small(), FlashTiming::pm983_like(),
//!                            BlockFtlConfig::pm983_like());
//! let mut db = HashStore::new(device, HashStoreConfig::aerospike_like());
//! let t = db.put(SimTime::ZERO, b"rec1", Payload::from_bytes(vec![9; 50]));
//! let (_, v) = db.get(t, b"rec1");
//! assert_eq!(v.unwrap().len(), 50);
//! ```

pub mod store;

pub use store::{HashStore, HashStoreConfig, HashStoreStats};
