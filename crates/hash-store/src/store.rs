//! The hash-index store implementation.

use kvssd_block_ftl::BlockSsd;
use kvssd_core::{KeyBuf, Payload};
use kvssd_host_stack::{CpuCosts, HostCpu};
use kvssd_sim::{PrehashedMap, SimDuration, SimTime};

/// Configuration of the hash-index store.
#[derive(Debug, Clone, Copy)]
pub struct HashStoreConfig {
    /// Record alignment on the device. Aerospike's record granularity is
    /// 128 B — the source of its < 2x small-record space amplification.
    pub record_align: u64,
    /// Per-record header bytes (metadata, generation, checksum;
    /// Aerospike-class ~40 B).
    pub record_header: u64,
    /// Write-block size: records buffer here and hit the device as one
    /// large sequential write.
    pub write_block_bytes: u64,
    /// Defragment write blocks whose live fraction falls below this.
    pub defrag_threshold: f64,
    /// Live records copied per write while defrag has eligible blocks.
    pub defrag_copies_per_write: u32,
    /// Host cores.
    pub host_cores: usize,
    /// CPU cost of a hash-index operation.
    pub cost_index_op: SimDuration,
}

impl HashStoreConfig {
    /// Aerospike-like defaults (write blocks scaled to 128 KiB).
    pub fn aerospike_like() -> Self {
        HashStoreConfig {
            record_align: 128,
            record_header: 40,
            write_block_bytes: 128 * 1024,
            defrag_threshold: 0.5,
            defrag_copies_per_write: 4,
            host_cores: 8,
            cost_index_op: SimDuration::from_micros(1),
        }
    }
}

impl Default for HashStoreConfig {
    fn default() -> Self {
        Self::aerospike_like()
    }
}

/// Store counters.
#[derive(Debug, Clone, Default)]
pub struct HashStoreStats {
    /// Puts applied.
    pub puts: u64,
    /// Gets served.
    pub gets: u64,
    /// Deletes applied.
    pub deletes: u64,
    /// Write blocks flushed to the device.
    pub blocks_flushed: u64,
    /// Records copied by defragmentation.
    pub defrag_copies: u64,
    /// Write blocks reclaimed by defragmentation.
    pub defrag_reclaims: u64,
}

#[derive(Debug, Clone, Copy)]
struct RecordLoc {
    wblock: u32,
    offset: u64,
    len: u64,
}

#[derive(Debug, Clone, Copy, Default)]
struct WBlockMeta {
    live_bytes: u64,
    used_bytes: u64,
    /// Device sectors [0, flushed_hi) already written for this block.
    flushed_hi: u64,
    sealed: bool,
}

/// The Aerospike-like store (see crate docs). Owns its device directly
/// (direct I/O — no filesystem, no page cache).
#[derive(Debug)]
pub struct HashStore {
    config: HashStoreConfig,
    cpu: HostCpu,
    costs: CpuCosts,
    device: BlockSsd,
    index: PrehashedMap<Box<[u8]>, (RecordLoc, Payload)>,
    wblocks: Vec<WBlockMeta>,
    /// Keys whose newest record was appended to each write block (may
    /// contain stale entries; verified against the index during defrag).
    /// Inline key copies: pushing one is allocation-free on the put path.
    wblock_keys: Vec<Vec<KeyBuf>>,
    free_wblocks: Vec<u32>,
    current: u32,
    defrag_queue: Vec<u32>,
    user_bytes: u64,
    stats: HashStoreStats,
}

impl HashStore {
    /// Creates a store over a block device.
    pub fn new(device: BlockSsd, config: HashStoreConfig) -> Self {
        let n_wblocks = (device.capacity_bytes() / config.write_block_bytes) as u32;
        assert!(n_wblocks >= 4, "device too small for the write-block size");
        let mut wblocks = vec![WBlockMeta::default(); n_wblocks as usize];
        wblocks[0].sealed = false;
        HashStore {
            cpu: HostCpu::new(config.host_cores),
            costs: CpuCosts::xeon_like(),
            index: PrehashedMap::default(),
            wblock_keys: vec![Vec::new(); n_wblocks as usize],
            free_wblocks: (1..n_wblocks).rev().collect(),
            current: 0,
            defrag_queue: Vec::new(),
            user_bytes: 0,
            stats: HashStoreStats::default(),
            wblocks,
            device,
            config,
        }
    }

    /// Store counters.
    pub fn stats(&self) -> &HashStoreStats {
        &self.stats
    }

    /// The device underneath.
    pub fn device(&self) -> &BlockSsd {
        &self.device
    }

    /// Host CPU pool (for utilization reporting).
    pub fn cpu(&self) -> &HostCpu {
        &self.cpu
    }

    /// Live key count.
    pub fn len(&self) -> u64 {
        self.index.len() as u64
    }

    /// True when no keys are stored.
    pub fn is_empty(&self) -> bool {
        self.index.is_empty()
    }

    /// Bytes of live user data (keys + values).
    pub fn user_bytes(&self) -> u64 {
        self.user_bytes
    }

    /// Bytes occupied on the device by live + dead records (space
    /// amplification numerator, before defrag reclaims).
    pub fn device_bytes(&self) -> u64 {
        self.wblocks.iter().map(|w| w.used_bytes).sum()
    }

    /// Bytes of live records only (post-defrag steady state — what the
    /// paper's "actual SSD space utilization" converges to).
    pub fn live_device_bytes(&self) -> u64 {
        self.wblocks.iter().map(|w| w.live_bytes).sum()
    }

    /// Inserts or updates a key.
    pub fn put(&mut self, now: SimTime, key: &[u8], value: Payload) -> SimTime {
        self.stats.puts += 1;
        let rec = self.record_bytes(key.len() as u64, value.len());
        let vlen = value.len();
        let mut t = self
            .cpu
            .run(now, self.config.cost_index_op + self.costs.memcpy(rec));
        // Invalidate any previous version.
        let update = self.index.get(key).map(|(l, v)| (*l, v.len()));
        if let Some((old, oldv)) = update {
            self.invalidate(old);
            self.user_bytes -= key.len() as u64 + oldv;
        }
        // Append into the current write block; this probe already
        // settled whether the key exists, so the append need not.
        t = self.append_record(t, key, value, rec, update.is_some());
        self.user_bytes += key.len() as u64 + vlen;
        // Defragmentation tax rides on writes.
        for _ in 0..self.config.defrag_copies_per_write {
            if !self.defrag_step(t) {
                break;
            }
        }
        t
    }

    /// Point lookup: index + one direct device read.
    pub fn get(&mut self, now: SimTime, key: &[u8]) -> (SimTime, Option<Payload>) {
        self.stats.gets += 1;
        let t = self.cpu.run(now, self.config.cost_index_op);
        let Some((loc, value)) = self.index.get(key) else {
            return (t, None);
        };
        let value = value.clone();
        // Direct read of the enclosing 512 B sectors of the record.
        let base = loc.wblock as u64 * self.config.write_block_bytes;
        let lo = loc.offset / 512 * 512;
        let hi = (loc.offset + loc.len).div_ceil(512) * 512;
        let t = self
            .device
            .read(t, base + lo, hi - lo)
            .expect("record read");
        (t, Some(value))
    }

    /// Deletes a key.
    pub fn delete(&mut self, now: SimTime, key: &[u8]) -> (SimTime, bool) {
        self.stats.deletes += 1;
        let t = self.cpu.run(now, self.config.cost_index_op);
        match self.index.remove(key) {
            Some((loc, v)) => {
                self.user_bytes -= key.len() as u64 + v.len();
                self.invalidate(loc);
                (t, true)
            }
            None => (t, false),
        }
    }

    /// End-of-phase barrier. Records are written through at append
    /// time, so this only flushes the device's own volatile state.
    pub fn flush(&mut self, now: SimTime) -> SimTime {
        self.device.flush(now)
    }

    // ----- internals -------------------------------------------------

    fn record_bytes(&self, key_len: u64, value_len: u64) -> u64 {
        (self.config.record_header + key_len + value_len).div_ceil(self.config.record_align)
            * self.config.record_align
    }

    /// Appends a record and writes it through to the device at its
    /// offset (commit-to-device semantics: the paper's Aerospike runs
    /// with direct I/O). Returns the device completion.
    fn append_record(
        &mut self,
        now: SimTime,
        key: &[u8],
        value: Payload,
        rec: u64,
        existing: bool,
    ) -> SimTime {
        let cur = self.current as usize;
        if self.wblocks[cur].used_bytes + rec > self.config.write_block_bytes {
            // Seal the block; its records are already on the device.
            self.wblocks[cur].sealed = true;
            self.stats.blocks_flushed += 1;
            self.maybe_queue_defrag(self.current);
            self.current = self
                .free_wblocks
                .pop()
                .expect("device sized for the working set");
        }
        let cur = self.current as usize;
        let offset = self.wblocks[cur].used_bytes;
        self.wblocks[cur].used_bytes += rec;
        self.wblocks[cur].live_bytes += rec;
        self.wblock_keys[cur].push(KeyBuf::new(key));
        let loc = RecordLoc {
            wblock: self.current,
            offset,
            len: rec,
        };
        // Updates overwrite in place (`insert` would also keep the
        // original boxed key); only first-time keys allocate one.
        if existing {
            *self.index.get_mut(key).expect("caller probed the key") = (loc, value);
        } else {
            self.index.insert(key.into(), (loc, value));
        }
        // Commit-to-device writes flush the not-yet-written enclosing
        // 512 B sectors (records are 128 B-aligned inside the block; the
        // shared boundary sector was already flushed with its
        // predecessor and is patched in the device's write buffer).
        let cur = self.current as usize;
        let dev_base = self.current as u64 * self.config.write_block_bytes;
        let lo = (offset / 512 * 512).max(self.wblocks[cur].flushed_hi);
        let hi = (offset + rec).div_ceil(512) * 512;
        if hi <= lo {
            return now;
        }
        self.wblocks[cur].flushed_hi = hi;
        self.device
            .write(now, dev_base + lo, hi - lo)
            .expect("record write")
    }

    fn invalidate(&mut self, loc: RecordLoc) {
        let w = &mut self.wblocks[loc.wblock as usize];
        w.live_bytes -= loc.len;
        self.maybe_queue_defrag(loc.wblock);
    }

    fn maybe_queue_defrag(&mut self, wblock: u32) {
        let w = &self.wblocks[wblock as usize];
        if w.sealed
            && w.used_bytes > 0
            && (w.live_bytes as f64) < self.config.defrag_threshold * w.used_bytes as f64
            && !self.defrag_queue.contains(&wblock)
            && wblock != self.current
        {
            self.defrag_queue.push(wblock);
        }
    }

    /// Copies one live record off the defrag queue's head block; reclaims
    /// the block when empty. Returns false when idle.
    fn defrag_step(&mut self, now: SimTime) -> bool {
        let Some(&wb) = self.defrag_queue.first() else {
            return false;
        };
        // Pop candidates off the block's key list until one is still
        // live *in this block* (others are stale: overwritten or moved).
        let victim_key = loop {
            let Some(k) = self.wblock_keys[wb as usize].pop() else {
                break None;
            };
            if self
                .index
                .get(k.as_slice())
                .is_some_and(|(loc, _)| loc.wblock == wb)
            {
                break Some(k);
            }
        };
        match victim_key {
            Some(key) => {
                let (loc, value) = self
                    .index
                    .get(key.as_slice())
                    .map(|(l, v)| (*l, v.clone()))
                    .expect("found");
                // Read the record and re-append it.
                let base = wb as u64 * self.config.write_block_bytes;
                let lo = loc.offset / 512 * 512;
                let hi = (loc.offset + loc.len).div_ceil(512) * 512;
                let _ = self
                    .device
                    .read(now, base + lo, hi - lo)
                    .expect("defrag read");
                self.invalidate(loc);
                self.append_record(now, &key, value, loc.len, true);
                self.stats.defrag_copies += 1;
                true
            }
            None => {
                // Block fully dead: TRIM and recycle it.
                self.defrag_queue.remove(0);
                self.wblock_keys[wb as usize].clear();
                let offset = wb as u64 * self.config.write_block_bytes;
                let _ = self
                    .device
                    .trim(now, offset, self.config.write_block_bytes)
                    .expect("defrag trim");
                let w = &mut self.wblocks[wb as usize];
                w.used_bytes = 0;
                w.live_bytes = 0;
                w.flushed_hi = 0;
                w.sealed = false;
                self.free_wblocks.push(wb);
                self.stats.defrag_reclaims += 1;
                true
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kvssd_block_ftl::BlockFtlConfig;
    use kvssd_flash::{FlashTiming, Geometry};

    fn store() -> HashStore {
        let g = Geometry {
            channels: 2,
            dies_per_channel: 2,
            planes_per_die: 2,
            blocks_per_plane: 16,
            pages_per_block: 16,
            page_bytes: 32 * 1024,
        };
        let dev = BlockSsd::new(g, FlashTiming::pm983_like(), BlockFtlConfig::pm983_like());
        HashStore::new(dev, HashStoreConfig::aerospike_like())
    }

    fn key(i: u64) -> Vec<u8> {
        format!("key{i:013}").into_bytes()
    }

    #[test]
    fn put_get_round_trips() {
        let mut s = store();
        let t = s.put(SimTime::ZERO, b"alpha", Payload::from_bytes(vec![5; 50]));
        let (_, v) = s.get(t, b"alpha");
        assert_eq!(v.unwrap().as_bytes().unwrap(), &[5u8; 50][..]);
    }

    #[test]
    fn get_missing_is_cheap_none() {
        let mut s = store();
        let (t, v) = s.get(SimTime::ZERO, b"ghost");
        assert!(v.is_none());
        assert!(t.since(SimTime::ZERO) < SimDuration::from_micros(10));
    }

    #[test]
    fn small_records_have_sub_2x_space_amp() {
        let mut s = store();
        let mut t = SimTime::ZERO;
        for i in 0..1000u64 {
            t = s.put(t, &key(i), Payload::synthetic(50, i));
        }
        // 16 B key + 50 B value + 64 B header = 130 -> 256 B record.
        let amp = s.live_device_bytes() as f64 / s.user_bytes() as f64;
        assert!(amp < 4.0, "amp {amp}");
        assert!(amp > 1.0);
        // Aerospike's paper value for 50 B values is ~1.8x; with the
        // 64 B header our 256 B records over 66 user bytes give ~3.9 --
        // check the 100 B-value case lands under 2.
        let mut s2 = store();
        for i in 0..1000u64 {
            s2.put(t, &key(i), Payload::synthetic(150, i));
        }
        let amp2 = s2.live_device_bytes() as f64 / s2.user_bytes() as f64;
        assert!(amp2 < 2.0, "amp2 {amp2}");
        let _ = t;
    }

    #[test]
    fn updates_invalidate_and_defrag_reclaims() {
        let mut s = store();
        let mut t = SimTime::ZERO;
        for i in 0..2_000u64 {
            t = s.put(t, &key(i), Payload::synthetic(500, 0));
        }
        // Update everything: old records die, defrag must reclaim.
        for i in 0..2_000u64 {
            t = s.put(t, &key(i), Payload::synthetic(500, 1));
        }
        assert!(s.stats().defrag_reclaims > 0, "defrag never reclaimed");
        assert_eq!(s.len(), 2_000);
        // All values current.
        for i in (0..2_000).step_by(97) {
            let (_, v) = s.get(t, &key(i));
            assert_eq!(v, Some(Payload::synthetic(500, 1)));
        }
    }

    #[test]
    fn writes_stream_sequentially_through_write_blocks() {
        let mut s = store();
        let mut t = SimTime::ZERO;
        for i in 0..1_000u64 {
            t = s.put(t, &key(i), Payload::synthetic(400, 0));
        }
        s.flush(t);
        // Blocks seal as they fill; records write through at ascending
        // offsets, which the block-SSD sees as a sequential stream.
        assert!(s.stats().blocks_flushed > 0);
        assert_eq!(s.device().stats().host_writes, 1_000);
    }

    #[test]
    fn delete_removes_and_frees_space() {
        let mut s = store();
        let mut t = SimTime::ZERO;
        for i in 0..100u64 {
            t = s.put(t, &key(i), Payload::synthetic(100, 0));
        }
        let live_before = s.live_device_bytes();
        for i in 0..100u64 {
            let (t2, existed) = s.delete(t, &key(i));
            t = t2;
            assert!(existed);
        }
        assert_eq!(s.len(), 0);
        assert_eq!(s.user_bytes(), 0);
        assert!(s.live_device_bytes() < live_before);
        let (_, gone) = s.delete(t, &key(0));
        assert!(!gone);
    }

    #[test]
    fn inserts_are_fast_updates_pay_defrag() {
        let mut s = store();
        let mut t = SimTime::ZERO;
        let n = 3_000u64;
        let mut insert_total = SimDuration::ZERO;
        for i in 0..n {
            let done = s.put(t, &key(i), Payload::synthetic(512, 0));
            insert_total += done.since(t);
            t = done;
        }
        let copies_before = s.stats().defrag_copies;
        let mut update_total = SimDuration::ZERO;
        for i in 0..n {
            let done = s.put(t, &key((i * 7) % n), Payload::synthetic(512, 1));
            update_total += done.since(t);
            t = done;
        }
        assert!(
            s.stats().defrag_copies > copies_before,
            "updates must trigger defrag copies"
        );
    }
}
