// Proptest-based suite: compiled only with `--features proptest` (needs
// network to fetch proptest; the default offline pass runs the in-repo
// generator suites instead).
#![cfg(feature = "proptest")]

//! Property tests on the KV-FTL's internal structures and the device's
//! packing invariants.

use proptest::prelude::*;

use kvssd_core::bloom::BloomFilter;
use kvssd_core::hash::{key_fingerprint, key_hash};
use kvssd_core::index::{GlobalStore, IndexEntry, IterBuckets, SegLoc};
use kvssd_core::{KvConfig, KvSsd, Payload};
use kvssd_flash::{BlockId, FlashTiming, Geometry};
use kvssd_sim::SimTime;

fn entry(fp: u64, vlen: u32) -> IndexEntry {
    IndexEntry {
        fingerprint: fp,
        key_len: 8,
        value_len: vlen,
        payload: Payload::synthetic(vlen, fp),
        segs: vec![SegLoc {
            block: BlockId(0),
            page: 0,
            offset: 0,
            alloc: 1024,
            raw: vlen + 48,
        }]
        .into(),
    }
}

proptest! {
    /// The global store behaves as a map keyed by (hash, fingerprint).
    #[test]
    fn global_store_is_a_map(ops in prop::collection::vec((any::<u8>(), any::<bool>()), 1..200)) {
        let mut store = GlobalStore::new();
        let mut model = kvssd_sim::PrehashedMap::default();
        for (k, insert) in ops {
            let (h, fp) = (key_hash(&[k]), key_fingerprint(&[k]));
            if insert {
                store.insert(h, fp, entry(fp, k as u32));
                model.insert(k, ());
            } else {
                let removed = store.remove(h, fp).is_some();
                prop_assert_eq!(removed, model.remove(&k).is_some());
            }
            prop_assert_eq!(store.len(), model.len() as u64);
            for mk in model.keys() {
                let (h, fp) = (key_hash(&[*mk]), key_fingerprint(&[*mk]));
                prop_assert!(store.get(h, fp).is_some());
            }
        }
    }

    /// Bloom filters never produce false negatives, for any insert set
    /// and any bits-per-key setting.
    #[test]
    fn bloom_no_false_negatives(
        keys in prop::collection::hash_set(any::<u32>(), 1..300),
        bits in 2u32..16,
    ) {
        let mut f = BloomFilter::new(keys.len() as u64, bits);
        for &k in &keys {
            f.insert(key_hash(&k.to_le_bytes()));
        }
        for &k in &keys {
            prop_assert!(f.may_contain(key_hash(&k.to_le_bytes())));
        }
    }

    /// Iterator buckets return exactly the live keys of a prefix, in
    /// insertion order modulo removals, for any interleaving.
    #[test]
    fn iter_buckets_track_live_keys(
        ops in prop::collection::vec((any::<u8>(), any::<bool>()), 1..150),
    ) {
        let mut ib = IterBuckets::new(true);
        let mut model: Vec<u8> = Vec::new();
        for (k, insert) in ops {
            let key = [b'p', b'f', b'x', b'.', k];
            if insert {
                // The model allows duplicates like repeated device
                // inserts of distinct keys would not; only insert new.
                if !model.contains(&k) {
                    ib.insert(&key);
                    model.push(k);
                }
            } else if let Some(pos) = model.iter().position(|&m| m == k) {
                ib.remove(&key);
                model.swap_remove(pos);
            }
        }
        let h = ib.open(*b"pfx.");
        let got = ib.next(h, usize::MAX).unwrap();
        let mut got_keys: Vec<u8> = got.iter().map(|k| k[4]).collect();
        got_keys.sort_unstable();
        let mut want = model.clone();
        want.sort_unstable();
        prop_assert_eq!(got_keys, want);
    }

    /// Device-level packing invariant: after any sequence of stores, no
    /// flash page holds more payload than its budget, and every byte of
    /// every live blob is accounted exactly once per (block, page).
    #[test]
    fn no_page_overflows_its_payload_budget(
        sizes in prop::collection::vec(0u32..60_000, 1..80),
    ) {
        let cfg = KvConfig::small();
        let payload_budget = cfg.page_payload_bytes;
        let mut dev = KvSsd::new(Geometry::small(), FlashTiming::pm983_like(), cfg);
        let mut t = SimTime::ZERO;
        for (i, &v) in sizes.iter().enumerate() {
            let key = format!("pack.{i:06}");
            t = dev.store(t, key.as_bytes(), Payload::synthetic(v, i as u64)).unwrap();
        }
        // Group live segments by physical page and check occupancy.
                let mut pages: kvssd_sim::PrehashedMap<(u32, u32), Vec<(u32, u32)>> = kvssd_sim::PrehashedMap::default();
        for (i, &v) in sizes.iter().enumerate() {
            let key = format!("pack.{i:06}");
            let l = dev.retrieve(t, key.as_bytes()).unwrap();
            prop_assert_eq!(l.value, Some(Payload::synthetic(v, i as u64)));
            t = l.at;
            let segs = dev.segments_of(key.as_bytes()).expect("live key");
            for s in segs {
                pages
                    .entry((s.block.0, s.page))
                    .or_default()
                    .push((s.offset, s.alloc));
            }
        }
        for ((b, p), mut segs) in pages {
            segs.sort_unstable();
            let mut cursor = 0u32;
            for (off, alloc) in segs {
                prop_assert!(off >= cursor, "segments overlap in b{b}p{p}");
                cursor = off + alloc;
            }
            prop_assert!(
                cursor <= payload_budget,
                "page b{b}p{p} holds {cursor} > budget {payload_budget}"
            );
        }
    }
}

#[test]
fn gc_spreads_wear_across_blocks() {
    // Sustained overwrite churn: the hash-scattered log plus greedy GC
    // should wear blocks within a bounded spread, not burn a corner of
    // the device.
    let mut dev = KvSsd::new(
        Geometry::small(),
        FlashTiming::pm983_like(),
        KvConfig::small(),
    );
    let mut t = SimTime::ZERO;
    let n = 700u64;
    for round in 0..6u64 {
        for i in 0..n {
            let key = format!("wear.{i:06}");
            t = dev
                .store(t, key.as_bytes(), Payload::synthetic(4096, round))
                .unwrap();
        }
    }
    let (_, mean, max) = dev.flash().wear_summary();
    assert!(mean > 1.0, "churn must have erased blocks (mean {mean})");
    assert!(
        (max as f64) < mean * 6.0 + 4.0,
        "wear concentrated: max {max} vs mean {mean:.1}"
    );
}
