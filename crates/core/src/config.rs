//! KV firmware configuration and calibration constants.
//!
//! Every constant here is a *mechanism input* (see `DESIGN.md`,
//! "Calibration"): limits come from the Samsung KV API spec quoted in the
//! paper's Sec. II, layout constants from the paper's Sec. IV inferences
//! (32 KiB physical pages with a ~24 KiB value budget, 1 KiB minimum
//! allocation), and firmware CPU costs are tens-of-microseconds key
//! handling consistent with the paper's QD-1 latency gap vs. block I/O.

use kvssd_nvme::{KvCommandSet, NvmeConfig};
use kvssd_sim::SimDuration;

/// Configuration of the KV firmware personality.
#[derive(Debug, Clone, Copy)]
pub struct KvConfig {
    /// Minimum key length (4 B on the PM983 KV-SSD).
    pub key_min: usize,
    /// Maximum key length (255 B).
    pub key_max: usize,
    /// Maximum value length (2 MiB).
    pub value_max: u64,
    /// Per-blob metadata bytes stored with the pair (key size, value
    /// size, namespace, ... — Sec. II).
    pub meta_bytes: u32,
    /// Header bytes on each continuation segment of a split blob.
    pub seg_header_bytes: u32,
    /// Minimum allocation unit. The paper infers 1 KiB (ECC-sector
    /// argument, Sec. IV "space amplification") — blobs smaller than this
    /// are padded to it.
    pub alloc_unit: u32,
    /// Alignment of allocations beyond the minimum unit ("packs data very
    /// tightly beyond 1KB").
    pub fine_align: u32,
    /// Usable payload bytes per 32 KiB physical page; the rest is
    /// reserved for recovery/erasure data. 25 088 B lets a 24 KiB value
    /// plus metadata and a max-size key fit in one page, matching the
    /// paper's Fig. 5 boundary at 24 KiB.
    pub page_payload_bytes: u32,
    /// Number of index managers (partitioned firmware cores handling
    /// hashing and index operations).
    pub index_managers: usize,
    /// Local-index entries accumulated per manager before a merge into
    /// the global index.
    pub local_index_entries: usize,
    /// Bytes per global-index entry (hash, fingerprint, location(s),
    /// sizes — the multi-level table's amortized per-record footprint).
    pub index_entry_bytes: u32,
    /// Device DRAM dedicated to caching the global index. Scaled with the
    /// 4 GiB default geometry exactly as the PM983's DRAM scales with
    /// 3.84 TB, so the Fig. 3 overflow happens at the same *relative*
    /// occupancy.
    pub index_dram_bytes: u64,
    /// Global index slot budget — the device KVP limit (~3.1 B on
    /// 3.84 TB; scaled so that, like the real device, the limit binds
    /// slightly *below* `capacity / 1 KiB` and tiny-value fills hit the
    /// KVP ceiling rather than the flash.
    pub max_kvps: u64,
    /// Bloom filter bits per expected key, per index manager.
    pub bloom_bits_per_key: u32,
    /// Whether index managers consult Bloom filters at all (ablation
    /// switch; the shipped firmware has them on).
    pub bloom_enabled: bool,
    /// Volatile write-buffer capacity in bytes.
    pub write_buffer_bytes: u64,
    /// Idle time after which a partially filled open page is programmed
    /// with padding.
    pub partial_flush_timeout: SimDuration,
    /// Fraction of blocks reserved: over-provisioning percent.
    pub overprovision_pct: u32,
    /// Fraction of blocks reserved for flash-resident index levels,
    /// percent of total.
    pub index_reserve_pct: u32,
    /// Free-block watermark where background GC starts.
    pub gc_soft_free_blocks: u32,
    /// Free-block watermark where writes stall behind foreground GC.
    pub gc_hard_free_blocks: u32,
    /// Blob segments copied per store while in the background-GC band.
    pub gc_copies_per_store: u32,
    /// Whether iterator buckets retain key copies (disable for macro runs
    /// that never iterate, to bound host memory).
    pub iterator_buckets: bool,

    // --- firmware CPU costs (per index-manager core) ---
    /// Fixed key-hashing cost.
    pub cost_hash: SimDuration,
    /// Additional hashing cost per key byte.
    pub cost_hash_per_byte: SimDuration,
    /// Bloom-filter membership check.
    pub cost_membership: SimDuration,
    /// DRAM-resident index operation (lookup or local insert).
    pub cost_index_dram: SimDuration,
    /// Extra bookkeeping per continuation segment (offset pointer
    /// management for split blobs).
    pub cost_offset_mgmt: SimDuration,
    /// Packing cost per blob (append bookkeeping into the open page).
    pub cost_pack: SimDuration,

    /// NVMe link parameters.
    pub nvme: NvmeConfig,
    /// KV command-set rules (inline key limit, compound what-if).
    pub command_set: KvCommandSet,
}

impl KvConfig {
    /// Defaults scaled for the 4 GiB `Geometry::pm983_scaled()` substrate.
    ///
    /// Scale factor vs. the real 3.84 TB device is ~983x; the index DRAM
    /// budget (4 MiB here vs. ~4 GiB-class there) and the KVP limit
    /// (3.2 M here vs. ~3.1 B there) shrink by the same factor.
    pub fn pm983_scaled() -> Self {
        KvConfig {
            key_min: 4,
            key_max: 255,
            value_max: 2 * 1024 * 1024,
            meta_bytes: 32,
            seg_header_bytes: 16,
            alloc_unit: 1024,
            fine_align: 64,
            page_payload_bytes: 25_088,
            index_managers: 4,
            local_index_entries: 32,
            index_entry_bytes: 48,
            index_dram_bytes: 4 * 1024 * 1024,
            max_kvps: 2_600_000,
            bloom_bits_per_key: 10,
            bloom_enabled: true,
            write_buffer_bytes: 4 * 1024 * 1024,
            partial_flush_timeout: SimDuration::from_millis(1),
            overprovision_pct: 7,
            index_reserve_pct: 5,
            gc_soft_free_blocks: 24,
            gc_hard_free_blocks: 6,
            gc_copies_per_store: 8,
            iterator_buckets: true,
            cost_hash: SimDuration::from_micros(3),
            cost_hash_per_byte: SimDuration::from_nanos(20),
            cost_membership: SimDuration::from_micros(1),
            cost_index_dram: SimDuration::from_micros(2),
            cost_offset_mgmt: SimDuration::from_micros(3),
            cost_pack: SimDuration::from_micros(2),
            nvme: NvmeConfig::pm983_like(),
            command_set: KvCommandSet::samsung(),
        }
    }

    /// A configuration for unit tests on `Geometry::small()` (16 MiB):
    /// tiny watermarks and KVP budget, iterator buckets on.
    pub fn small() -> Self {
        KvConfig {
            index_dram_bytes: 64 * 1024,
            max_kvps: 50_000,
            gc_soft_free_blocks: 6,
            gc_hard_free_blocks: 2,
            write_buffer_bytes: 256 * 1024,
            ..Self::pm983_scaled()
        }
    }

    /// Key-handling CPU cost for a key of `len` bytes (hash + membership
    /// machinery, before any index structure access).
    pub fn key_handling_cost(&self, len: usize) -> SimDuration {
        self.cost_hash + self.cost_hash_per_byte * len as u64 + self.cost_membership
    }

    /// Validates internal consistency.
    ///
    /// # Panics
    ///
    /// Panics on contradictory settings; call after hand-building configs.
    pub fn validate(&self) {
        assert!(self.key_min >= 1 && self.key_min <= self.key_max);
        assert!(self.key_max <= 255, "KV API caps keys at 255 B");
        assert!(self.alloc_unit >= self.fine_align);
        assert!(self.alloc_unit.is_power_of_two());
        assert!(self.fine_align.is_power_of_two());
        assert!(self.gc_hard_free_blocks < self.gc_soft_free_blocks);
        assert!(self.index_managers >= 1);
        assert!(self.local_index_entries >= 1);
        assert!(
            self.page_payload_bytes as u64 >= self.meta_bytes as u64 + self.key_max as u64 + 1024,
            "page payload must fit metadata, a max key, and some value"
        );
    }
}

impl Default for KvConfig {
    fn default() -> Self {
        Self::pm983_scaled()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_validate() {
        KvConfig::pm983_scaled().validate();
        KvConfig::small().validate();
    }

    #[test]
    fn key_handling_cost_scales_with_length() {
        let c = KvConfig::pm983_scaled();
        assert!(c.key_handling_cost(255) > c.key_handling_cost(16));
    }

    #[test]
    fn page_budget_matches_paper_boundary() {
        let c = KvConfig::pm983_scaled();
        // A 24 KiB value + metadata + a 16 B key fits one page...
        assert!(24 * 1024 + c.meta_bytes + 16 <= c.page_payload_bytes);
        // ...but a 25 KiB value does not (the Fig. 5 dip).
        assert!(25 * 1024 + c.meta_bytes + 16 > c.page_payload_bytes);
    }

    #[test]
    #[should_panic]
    fn validate_catches_bad_watermarks() {
        let mut c = KvConfig::pm983_scaled();
        c.gc_hard_free_blocks = c.gc_soft_free_blocks;
        c.validate();
    }
}
