//! KV device errors.

use std::fmt;

/// Errors returned by the KV device API.
///
/// These are *usage* errors (limit violations, device exhaustion).
/// A missing key is not an error — lookups report it as data
/// (`Lookup::value == None`), since not-found is a routine, timed outcome
/// the experiments measure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KvError {
    /// Key shorter than the device minimum (4 B on the PM983).
    KeyTooShort {
        /// Offending length.
        len: usize,
        /// Device minimum.
        min: usize,
    },
    /// Key longer than the device maximum (255 B on the PM983).
    KeyTooLong {
        /// Offending length.
        len: usize,
        /// Device maximum.
        max: usize,
    },
    /// Value larger than the device maximum (2 MiB on the PM983).
    ValueTooLarge {
        /// Offending length.
        len: u64,
        /// Device maximum.
        max: u64,
    },
    /// No space left even after garbage collection: the device cannot
    /// accept the blob.
    DeviceFull,
    /// The global index has reached its slot budget — the paper's
    /// "maximum number of KVPs" limit (~3.1 B on a 3.84 TB device).
    IndexFull {
        /// The configured slot budget.
        max_kvps: u64,
    },
    /// An iterator handle that is not open.
    BadIterator,
    /// A replicated cluster operation could not assemble its quorum:
    /// fewer replica legs acknowledged than the quorum requires (a
    /// lossy or partitioned transport swallowed the rest, even after
    /// any configured per-leg deadline retries). Legs that did execute
    /// stay applied on their devices — for a write this means the data
    /// may be *partially replicated* (durable on the acked replicas,
    /// and possibly on replicas whose acknowledgement was lost), which
    /// the payload exposes instead of leaving callers to guess.
    QuorumUnavailable {
        /// Replica legs that acknowledged.
        acked: usize,
        /// Acknowledgements the quorum required.
        quorum: usize,
        /// Which replica-set lanes acknowledged, as a bitmask (bit `i`
        /// = the `i`-th replica in placement order, the primary being
        /// lane 0). `acked_replicas.count_ones() == acked` whenever
        /// the replica set holds at most 64 lanes.
        acked_replicas: u64,
        /// True when the failed operation was a mutation (store or
        /// delete): the acked lanes durably applied it, so repair can
        /// re-converge the stragglers from a surviving copy.
        write: bool,
    },
    /// An internal invariant did not hold. Every construction site of
    /// this variant is a path the model believes unreachable — it exists
    /// so hot-path code can surface a broken invariant as a typed error
    /// (and the panic-surface ratchet can shrink) instead of aborting an
    /// experiment mid-figure with `unwrap`/`panic!`.
    Internal {
        /// A static description of the violated invariant.
        what: &'static str,
    },
}

impl fmt::Display for KvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            KvError::KeyTooShort { len, min } => {
                write!(f, "key of {len} B below device minimum of {min} B")
            }
            KvError::KeyTooLong { len, max } => {
                write!(f, "key of {len} B above device maximum of {max} B")
            }
            KvError::ValueTooLarge { len, max } => {
                write!(f, "value of {len} B above device maximum of {max} B")
            }
            KvError::DeviceFull => write!(f, "device full: no reclaimable space"),
            KvError::IndexFull { max_kvps } => {
                write!(f, "index full: device KVP limit of {max_kvps} reached")
            }
            KvError::BadIterator => write!(f, "iterator handle is not open"),
            KvError::QuorumUnavailable {
                acked,
                quorum,
                acked_replicas,
                write,
            } => {
                write!(
                    f,
                    "quorum unavailable: {acked} of {quorum} required replica leg(s) acknowledged \
                     (lane mask {acked_replicas:#b})"
                )?;
                if *write && *acked > 0 {
                    write!(f, "; data partially replicated on the acked lanes")?;
                }
                Ok(())
            }
            KvError::Internal { what } => {
                write!(f, "internal invariant violated: {what}")
            }
        }
    }
}

impl std::error::Error for KvError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_display_their_limits() {
        let e = KvError::KeyTooLong { len: 300, max: 255 };
        assert!(e.to_string().contains("300"));
        assert!(e.to_string().contains("255"));
        let e = KvError::IndexFull { max_kvps: 42 };
        assert!(e.to_string().contains("42"));
        let e = KvError::QuorumUnavailable {
            acked: 1,
            quorum: 2,
            acked_replicas: 0b100,
            write: true,
        };
        assert!(e.to_string().contains("1 of 2"));
        assert!(e.to_string().contains("0b100"));
        assert!(e.to_string().contains("partially replicated"));
        let e = KvError::QuorumUnavailable {
            acked: 0,
            quorum: 2,
            acked_replicas: 0,
            write: false,
        };
        assert!(!e.to_string().contains("partially replicated"));
    }

    #[test]
    fn internal_names_the_invariant() {
        let e = KvError::Internal {
            what: "victim selected whenever reclaimable space exists",
        };
        assert!(e.to_string().contains("internal invariant"));
        assert!(e.to_string().contains("victim selected"));
    }

    #[test]
    fn error_trait_object_works() {
        let e: Box<dyn std::error::Error> = Box::new(KvError::DeviceFull);
        assert!(e.to_string().contains("full"));
    }
}
