//! KV-SSD firmware personality — the subject of the paper.
//!
//! This crate implements the Samsung-style KV flash translation layer the
//! paper characterizes, over the same NAND substrate as the block
//! personality (`kvssd-block-ftl`). The mechanisms the paper identifies
//! are all first-class here:
//!
//! * **Key hashing + multi-level hash index** ([`index`]): variable-length
//!   keys are hashed to fixed-length key hashes; the global index keeps a
//!   record per KVP, cached in device DRAM and overflowing to flash as it
//!   grows (the Fig. 3 occupancy cliff). Multiple *index managers* each
//!   hold a local index that merges into the global index in batches, and
//!   carry Bloom filters for fast negative lookups.
//! * **Iterator buckets** ([`index::IterBuckets`]): keys are also bucketed
//!   by their first 4 bytes for prefix iteration, as the KV API requires.
//! * **Byte-aligned log-like data packing** ([`blob`], [`device`]): blobs
//!   (metadata + key + value) are appended to open flash pages with a
//!   1 KiB minimum allocation unit (the Fig. 7 space-amplification
//!   mechanism); values beyond the per-page payload budget split into
//!   page-aligned segments with offset bookkeeping (the Fig. 4/5 penalty).
//! * **Garbage collection** ([`device`]): background copy taxes and
//!   foreground stalls when free blocks run out (the Fig. 6 collapse).
//! * **The vendor NVMe KV command set** (via `kvssd-nvme`): keys longer
//!   than 16 B cost a second command (Fig. 8).
//!
//! # Example
//!
//! ```
//! use kvssd_core::{KvConfig, KvSsd, Payload};
//! use kvssd_flash::{FlashTiming, Geometry};
//! use kvssd_sim::SimTime;
//!
//! let mut dev = KvSsd::new(Geometry::small(), FlashTiming::pm983_like(),
//!                          KvConfig::small());
//! let t = dev.store(SimTime::ZERO, b"sensor-0007", Payload::from_bytes(vec![1, 2, 3]))
//!     .unwrap();
//! let got = dev.retrieve(t, b"sensor-0007").unwrap();
//! assert_eq!(got.value.unwrap().len(), 3);
//! ```

pub mod blob;
pub mod bloom;
pub mod config;
pub mod device;
pub mod error;
pub mod hash;
pub mod index;
pub mod inline_vec;
pub mod keybuf;
pub mod model;
pub mod value;
pub mod victim;

pub use config::KvConfig;
pub use device::{KvSsd, KvSsdStats, Lookup, SpaceReport};
pub use error::KvError;
pub use keybuf::KeyBuf;
pub use model::KvModel;
pub use value::Payload;
