//! An in-repo inline small-vector for segment lists.
//!
//! Most index entries hold 1–2 segments (only values past the per-page
//! budget split), so `IndexEntry` storing a `Vec<SegLoc>` paid a heap
//! allocation per live KVP and a second one per clone. [`InlineVec`]
//! keeps up to `N` elements inline in the struct and spills to a `Vec`
//! only when a blob actually splits beyond that, making the common path
//! allocation-free. No `unsafe`: the inline buffer requires
//! `T: Copy + Default` and unused slots simply hold `T::default()`.

use std::ops::{Deref, DerefMut};

/// A vector storing up to `N` elements inline, spilling to the heap
/// beyond that.
///
/// # Example
///
/// ```
/// use kvssd_core::inline_vec::InlineVec;
///
/// let mut v: InlineVec<u32, 2> = InlineVec::new();
/// v.push(1);
/// v.push(2);
/// assert!(!v.spilled());
/// v.push(3); // exceeds the inline capacity
/// assert!(v.spilled());
/// assert_eq!(v.as_slice(), &[1, 2, 3]);
/// ```
#[derive(Clone)]
pub struct InlineVec<T: Copy + Default, const N: usize> {
    /// Valid element count while inline; ignored once spilled.
    len: usize,
    inline: [T; N],
    heap: Option<Vec<T>>,
}

impl<T: Copy + Default, const N: usize> InlineVec<T, N> {
    /// Creates an empty vector (no heap allocation).
    pub fn new() -> Self {
        InlineVec {
            len: 0,
            inline: [T::default(); N],
            heap: None,
        }
    }

    /// Appends an element, spilling to the heap past `N` elements.
    pub fn push(&mut self, value: T) {
        match &mut self.heap {
            Some(v) => v.push(value),
            None if self.len < N => {
                self.inline[self.len] = value;
                self.len += 1;
            }
            None => {
                let mut v = Vec::with_capacity(N + 1);
                v.extend_from_slice(&self.inline[..self.len]);
                v.push(value);
                self.heap = Some(v);
            }
        }
    }

    /// The elements as a slice.
    pub fn as_slice(&self) -> &[T] {
        match &self.heap {
            Some(v) => v,
            None => &self.inline[..self.len],
        }
    }

    /// The elements as a mutable slice.
    pub fn as_mut_slice(&mut self) -> &mut [T] {
        match &mut self.heap {
            Some(v) => v,
            None => &mut self.inline[..self.len],
        }
    }

    /// Element count.
    pub fn len(&self) -> usize {
        match &self.heap {
            Some(v) => v.len(),
            None => self.len,
        }
    }

    /// True when no elements are stored.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// True once the vector has spilled to the heap.
    pub fn spilled(&self) -> bool {
        self.heap.is_some()
    }

    /// Copies the elements into a fresh `Vec`.
    pub fn to_vec(&self) -> Vec<T> {
        self.as_slice().to_vec()
    }
}

impl<T: Copy + Default, const N: usize> Default for InlineVec<T, N> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T: Copy + Default, const N: usize> Deref for InlineVec<T, N> {
    type Target = [T];
    fn deref(&self) -> &[T] {
        self.as_slice()
    }
}

impl<T: Copy + Default, const N: usize> DerefMut for InlineVec<T, N> {
    fn deref_mut(&mut self) -> &mut [T] {
        self.as_mut_slice()
    }
}

impl<T: Copy + Default, const N: usize> From<Vec<T>> for InlineVec<T, N> {
    fn from(v: Vec<T>) -> Self {
        if v.len() <= N {
            let mut out = Self::new();
            for x in v {
                out.push(x);
            }
            out
        } else {
            InlineVec {
                len: 0,
                inline: [T::default(); N],
                heap: Some(v),
            }
        }
    }
}

impl<T: Copy + Default + PartialEq, const N: usize> PartialEq for InlineVec<T, N> {
    fn eq(&self, other: &Self) -> bool {
        // Representation-independent: spilled-then-shrunk and inline
        // vectors with equal contents compare equal.
        self.as_slice() == other.as_slice()
    }
}

impl<T: Copy + Default + Eq, const N: usize> Eq for InlineVec<T, N> {}

impl<T: Copy + Default + std::fmt::Debug, const N: usize> std::fmt::Debug for InlineVec<T, N> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_list().entries(self.as_slice()).finish()
    }
}

impl<'a, T: Copy + Default, const N: usize> IntoIterator for &'a InlineVec<T, N> {
    type Item = &'a T;
    type IntoIter = std::slice::Iter<'a, T>;
    fn into_iter(self) -> Self::IntoIter {
        self.as_slice().iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stays_inline_up_to_capacity() {
        let mut v: InlineVec<u32, 2> = InlineVec::new();
        assert!(v.is_empty());
        v.push(10);
        v.push(20);
        assert_eq!(v.len(), 2);
        assert!(!v.spilled());
        assert_eq!(v.as_slice(), &[10, 20]);
    }

    #[test]
    fn spills_past_capacity_and_keeps_order() {
        let mut v: InlineVec<u32, 2> = InlineVec::new();
        for i in 0..5 {
            v.push(i);
        }
        assert!(v.spilled());
        assert_eq!(v.as_slice(), &[0, 1, 2, 3, 4]);
        assert_eq!(v.len(), 5);
    }

    #[test]
    fn slice_ops_via_deref() {
        let mut v: InlineVec<u32, 2> = InlineVec::new();
        v.push(1);
        v.push(2);
        v[0] = 9;
        assert_eq!(v[0], 9);
        assert_eq!(v.get(1), Some(&2));
        assert_eq!(v.iter().sum::<u32>(), 11);
    }

    #[test]
    fn equality_ignores_representation() {
        let a: InlineVec<u32, 2> = vec![1, 2].into();
        let mut b: InlineVec<u32, 2> = InlineVec::new();
        b.push(1);
        b.push(2);
        assert_eq!(a, b);
        let c: InlineVec<u32, 2> = vec![1, 2, 3].into();
        assert!(c.spilled());
        assert_ne!(a, c);
    }

    #[test]
    fn from_vec_round_trips() {
        let v: InlineVec<u32, 2> = vec![7, 8, 9].into();
        assert_eq!(v.to_vec(), vec![7, 8, 9]);
        let small: InlineVec<u32, 2> = vec![7].into();
        assert!(!small.spilled());
        assert_eq!(small.to_vec(), vec![7]);
    }
}
