//! Bloom filters for the index managers.
//!
//! The paper (Sec. II): "Index manager-resident Bloom filters can be
//! leveraged to quickly resolve read or exist queries for non-existent
//! keys." Each index manager owns one; negative answers skip the whole
//! index walk (including any flash-resident levels).
//!
//! Standard double-hashing construction: `k` probe positions derived from
//! two 32-bit halves of the 64-bit key hash.

use kvssd_sim::rng::mix64;

/// A fixed-size Bloom filter over 64-bit key hashes.
///
/// Deletions are not supported (real Bloom filters can't); the device
/// tolerates stale positives — they just cost an index lookup that ends
/// in not-found, exactly like a false positive.
#[derive(Debug, Clone)]
pub struct BloomFilter {
    bits: Vec<u64>,
    mask: u64,
    k: u32,
    inserted: u64,
}

impl BloomFilter {
    /// Builds a filter sized for `expected_keys` at `bits_per_key`
    /// (rounded up to a power-of-two bit count). `k` is chosen as
    /// `bits_per_key * ln 2`, clamped to `[1, 8]`.
    pub fn new(expected_keys: u64, bits_per_key: u32) -> Self {
        assert!(bits_per_key > 0, "need at least one bit per key");
        let want_bits = (expected_keys.max(1)).saturating_mul(bits_per_key as u64);
        let nbits = want_bits.next_power_of_two().max(64);
        let k = ((bits_per_key as f64 * 0.69) as u32).clamp(1, 8);
        BloomFilter {
            bits: vec![0; (nbits / 64) as usize],
            mask: nbits - 1,
            k,
            inserted: 0,
        }
    }

    /// Inserts a key hash.
    pub fn insert(&mut self, hash: u64) {
        let (mut h, step) = Self::probes(hash);
        for _ in 0..self.k {
            let bit = h & self.mask;
            self.bits[(bit / 64) as usize] |= 1 << (bit % 64);
            h = h.wrapping_add(step);
        }
        self.inserted += 1;
    }

    /// True if the hash may have been inserted; false means definitely
    /// not present.
    pub fn may_contain(&self, hash: u64) -> bool {
        let (mut h, step) = Self::probes(hash);
        for _ in 0..self.k {
            let bit = h & self.mask;
            if self.bits[(bit / 64) as usize] & (1 << (bit % 64)) == 0 {
                return false;
            }
            h = h.wrapping_add(step);
        }
        true
    }

    /// Number of inserts performed.
    pub fn inserted(&self) -> u64 {
        self.inserted
    }

    /// Filter size in bits.
    pub fn bits(&self) -> u64 {
        self.mask + 1
    }

    fn probes(hash: u64) -> (u64, u64) {
        let h2 = mix64(hash) | 1; // odd step
        (hash, h2)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hash::key_hash;

    #[test]
    fn no_false_negatives() {
        let mut f = BloomFilter::new(10_000, 10);
        let hashes: Vec<u64> = (0..10_000u64)
            .map(|i| key_hash(format!("k{i}").as_bytes()))
            .collect();
        for &h in &hashes {
            f.insert(h);
        }
        for &h in &hashes {
            assert!(f.may_contain(h));
        }
    }

    #[test]
    fn false_positive_rate_is_low() {
        let mut f = BloomFilter::new(10_000, 10);
        for i in 0..10_000u64 {
            f.insert(key_hash(format!("present{i}").as_bytes()));
        }
        let fp = (0..10_000u64)
            .filter(|i| f.may_contain(key_hash(format!("absent{i}").as_bytes())))
            .count();
        // 10 bits/key gives ~1 % theoretical FPR; allow 3 %.
        assert!(fp < 300, "false positive rate too high: {fp}/10000");
    }

    #[test]
    fn empty_filter_rejects_everything() {
        let f = BloomFilter::new(100, 10);
        for i in 0..1000u64 {
            assert!(!f.may_contain(key_hash(format!("x{i}").as_bytes())));
        }
    }

    #[test]
    fn sizes_round_to_power_of_two() {
        let f = BloomFilter::new(1000, 10);
        assert!(f.bits().is_power_of_two());
        assert!(f.bits() >= 10_000);
    }

    #[test]
    fn tracks_insert_count() {
        let mut f = BloomFilter::new(10, 10);
        f.insert(1);
        f.insert(2);
        assert_eq!(f.inserted(), 2);
    }
}
