//! The KV-FTL index subsystem.
//!
//! Three cooperating pieces, mirroring the architecture in the paper's
//! Sec. II / Fig. 1:
//!
//! * [`GlobalStore`] — the *functional* global index: an exact map from
//!   (key-hash, fingerprint) to the blob's location(s) and data. Behavior
//!   is always exact; only *timing* is modeled.
//! * [`IndexTiming`] — the *cost* model of the multi-level hash table:
//!   while the index fits the device-DRAM budget, operations are DRAM
//!   ops; once it overflows, lookups pay a flash read for non-resident
//!   leaf segments and merges pay multi-level read/write chains on a
//!   reserved flash region (real flash ops on the shared substrate, so
//!   index traffic contends with data traffic — the Fig. 3 mechanism).
//! * [`IterBuckets`] — iterator buckets keyed by the first 4 key bytes,
//!   with open-iterator handles (Sec. II: keys are also "stored in an
//!   iterator bucket ... based on the first 4 bytes of the key").

use kvssd_flash::{BlockId, FlashDevice, PageAddr};
use kvssd_sim::rng::mix64;
use kvssd_sim::{PrehashedMap, SimTime};

use crate::inline_vec::InlineVec;
use crate::value::Payload;

/// Segment list of one entry: inline up to 2 segments (the common case
/// — only values past the per-page budget split), heap beyond.
pub type SegList = InlineVec<SegLoc, 2>;

/// Location of one blob segment on flash.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SegLoc {
    /// The erase block.
    pub block: BlockId,
    /// Page within the block.
    pub page: u32,
    /// Byte offset of the segment within the page payload.
    pub offset: u32,
    /// Allocated bytes of the segment.
    pub alloc: u32,
    /// Raw (useful) bytes of the segment.
    pub raw: u32,
}

impl Default for SegLoc {
    /// An all-zero placeholder (unused inline-buffer slots only; never a
    /// live location).
    fn default() -> Self {
        SegLoc {
            block: BlockId(0),
            page: 0,
            offset: 0,
            alloc: 0,
            raw: 0,
        }
    }
}

/// One global-index record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IndexEntry {
    /// Collision-verification fingerprint.
    pub fingerprint: u64,
    /// Key length in bytes.
    pub key_len: u8,
    /// Value length in bytes.
    pub value_len: u32,
    /// The stored value (the simulator's stand-in for flash contents).
    pub payload: Payload,
    /// Segment locations, in order (inline for unsplit blobs).
    pub segs: SegList,
}

impl IndexEntry {
    /// Total allocated bytes across segments.
    pub fn allocated_bytes(&self) -> u64 {
        self.segs.iter().map(|s| s.alloc as u64).sum()
    }

    /// User bytes (key + value).
    pub fn user_bytes(&self) -> u64 {
        self.key_len as u64 + self.value_len as u64
    }
}

/// The exact global index: (hash, fingerprint) -> entry.
///
/// Keyed by both hashes so 64-bit hash collisions between distinct keys
/// stay distinct records, as the device's collision-resolution chain
/// would keep them. Both key components are already uniform 64-bit
/// hashes, so the map skips SipHash for a pre-hash fold
/// ([`PrehashedMap`]) — the single hottest map in the device.
#[derive(Debug, Default)]
pub struct GlobalStore {
    map: PrehashedMap<(u64, u64), IndexEntry>,
}

impl GlobalStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of KVPs resident.
    pub fn len(&self) -> u64 {
        self.map.len() as u64
    }

    /// True when no KVPs are resident.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Inserts or replaces; returns the previous entry if any.
    pub fn insert(&mut self, hash: u64, fp: u64, entry: IndexEntry) -> Option<IndexEntry> {
        self.map.insert((hash, fp), entry)
    }

    /// Looks up an entry.
    pub fn get(&self, hash: u64, fp: u64) -> Option<&IndexEntry> {
        self.map.get(&(hash, fp))
    }

    /// Mutable lookup (GC relocates segments through this).
    pub fn get_mut(&mut self, hash: u64, fp: u64) -> Option<&mut IndexEntry> {
        self.map.get_mut(&(hash, fp))
    }

    /// Removes and returns an entry.
    pub fn remove(&mut self, hash: u64, fp: u64) -> Option<IndexEntry> {
        self.map.remove(&(hash, fp))
    }
}

/// Counters for the index cost model.
#[derive(Debug, Clone, Default)]
pub struct IndexTimingStats {
    /// Flash reads paid by lookups that missed the DRAM cache.
    pub lookup_flash_reads: u64,
    /// Flash reads paid by local-to-global merges.
    pub merge_flash_reads: u64,
    /// Index pages programmed by merges.
    pub index_programs: u64,
    /// Index-region block erases (index log wrap-around).
    pub index_erases: u64,
    /// Merges executed.
    pub merges: u64,
}

/// Timing model of the multi-level hash index (see module docs).
#[derive(Debug)]
pub struct IndexTiming {
    entry_bytes: u32,
    dram_bytes: u64,
    reserved: Vec<BlockId>,
    /// Write cursor into the reserved region: (block index, next page).
    cursor: (usize, u32),
    dirty_bytes: u64,
    stats: IndexTimingStats,
}

impl IndexTiming {
    /// Creates the model over `reserved` index-region blocks, which must
    /// already be pre-programmed (mount-time state).
    pub fn new(entry_bytes: u32, dram_bytes: u64, reserved: Vec<BlockId>) -> Self {
        assert!(
            reserved.len() >= 2,
            "index region needs at least two blocks (one is the write cursor)"
        );
        IndexTiming {
            entry_bytes,
            dram_bytes,
            cursor: (0, u32::MAX), // forces an erase before the first program
            dirty_bytes: 0,
            reserved,
            stats: IndexTimingStats::default(),
        }
    }

    /// Cost-model counters.
    pub fn stats(&self) -> &IndexTimingStats {
        &self.stats
    }

    /// Total index size for `entries` records.
    pub fn index_bytes(&self, entries: u64) -> u64 {
        entries * self.entry_bytes as u64
    }

    /// Fraction of leaf segments resident in DRAM.
    pub fn resident_fraction(&self, entries: u64) -> f64 {
        let size = self.index_bytes(entries);
        if size <= self.dram_bytes {
            1.0
        } else {
            self.dram_bytes as f64 / size as f64
        }
    }

    /// Levels of the index that live on flash for the current size: the
    /// deeper the overflow, the longer a merge's read-modify-write chain.
    pub fn flash_depth(&self, entries: u64) -> u32 {
        let size = self.index_bytes(entries);
        if size <= self.dram_bytes {
            0
        } else {
            let ratio = size as f64 / self.dram_bytes as f64;
            if ratio <= 8.0 {
                1
            } else if ratio <= 64.0 {
                2
            } else {
                3
            }
        }
    }

    /// Charges a point lookup at `now` with `entries` records resident.
    ///
    /// Upper levels are DRAM-resident by design (they are small); only
    /// the leaf segment may be on flash — misses cost one flash read.
    pub fn lookup(
        &mut self,
        now: SimTime,
        hash: u64,
        entries: u64,
        flash: &mut FlashDevice,
    ) -> SimTime {
        if self.segment_resident(hash, entries) {
            return now;
        }
        self.stats.lookup_flash_reads += 1;
        self.flash_read(now, hash, flash)
    }

    /// Charges a local-to-global merge of `hashes` at `now`.
    ///
    /// Each merged entry whose leaf segment is non-resident costs
    /// `flash_depth` reads (the level chain is rewritten leaf-up), and
    /// the merge appends `entry_bytes` per record to the index log,
    /// programming pages as they fill.
    pub fn merge(
        &mut self,
        now: SimTime,
        hashes: &[u64],
        entries: u64,
        flash: &mut FlashDevice,
    ) -> SimTime {
        self.stats.merges += 1;
        let depth = self.flash_depth(entries);
        let mut t = now;
        for &h in hashes {
            if !self.segment_resident(h, entries) {
                for level in 0..depth {
                    self.stats.merge_flash_reads += 1;
                    let done = self.flash_read(t, mix64(h ^ level as u64), flash);
                    t = t.max(done);
                }
            }
            self.dirty_bytes += self.entry_bytes as u64;
        }
        // Flush full index pages to the log.
        let page_bytes = flash.geometry().page_bytes as u64;
        while self.dirty_bytes >= page_bytes && depth > 0 {
            self.dirty_bytes -= page_bytes;
            t = self.flash_program(t, flash);
        }
        if depth == 0 {
            // Fully DRAM-resident: merges are pure DRAM work; drop dirty
            // accounting (checkpointing is free compared to data traffic).
            self.dirty_bytes = 0;
        }
        t
    }

    fn segment_resident(&self, hash: u64, entries: u64) -> bool {
        let frac = self.resident_fraction(entries);
        if frac >= 1.0 {
            return true;
        }
        // Leaf segments hold ~page/entry_bytes records; residency is a
        // deterministic pseudo-random property of the segment id.
        let seg = hash >> 10;
        (mix64(seg) % 1_000_000) < (frac * 1_000_000.0) as u64
    }

    /// One index-page read from the reserved region.
    fn flash_read(&self, now: SimTime, hash: u64, flash: &mut FlashDevice) -> SimTime {
        let n = self.reserved.len();
        let mut idx = (mix64(hash ^ 0x1D9) % n as u64) as usize;
        if idx == self.cursor.0 {
            idx = (idx + 1) % n;
        }
        let block = self.reserved[idx];
        let pages = flash.written_pages(block);
        if pages == 0 {
            return now; // freshly erased cursor neighborhood: DRAM copy
        }
        let page = (mix64(hash ^ 0x5E1) % pages as u64) as u32;
        flash
            .read_page(now, PageAddr { block, page }, 4096)
            .expect("index region read")
    }

    /// One index-page program at the write cursor (erasing the next log
    /// block when the cursor wraps into it).
    fn flash_program(&mut self, now: SimTime, flash: &mut FlashDevice) -> SimTime {
        let pages_per_block = flash.geometry().pages_per_block;
        let mut t = now;
        if self.cursor.1 >= pages_per_block {
            // Advance to the next block in the log and erase it.
            self.cursor.0 = (self.cursor.0 + 1) % self.reserved.len();
            self.cursor.1 = 0;
            let r = flash
                .erase_block(t, self.reserved[self.cursor.0])
                .expect("index region erase");
            self.stats.index_erases += 1;
            t = r.done;
        }
        let addr = PageAddr {
            block: self.reserved[self.cursor.0],
            page: self.cursor.1,
        };
        let r = flash
            .program_page(t, addr, flash.geometry().page_bytes as u64)
            .expect("index region program");
        self.stats.index_programs += 1;
        self.cursor.1 += 1;
        r.done
    }
}

/// An open iterator's cursor.
#[derive(Debug, Clone)]
struct IterState {
    bucket: [u8; 4],
    /// Slot index into the bucket's slot vector (tombstones included),
    /// so positions stay stable under concurrent deletes.
    pos: usize,
}

/// One iterator bucket: insertion-ordered key slots with tombstoned
/// deletes and an O(1) position map.
///
/// Deletes used to linearly scan the bucket for the key; at
/// million-key buckets that made every delete O(bucket). Now a
/// pre-hashed position map finds the slot directly and the slot is
/// tombstoned in place — surviving keys keep their insertion order and
/// open cursors keep their positions (snapshot semantics). Tombstones
/// are compacted away once they dominate a bucket *and* no iterator is
/// open (compaction renumbers slots, which would move cursors).
#[derive(Debug, Default)]
struct Bucket {
    /// Insertion-ordered slots; `None` is a tombstone left by a delete.
    slots: Vec<Option<Box<[u8]>>>,
    /// (key hash, fingerprint) -> slot index.
    pos: PrehashedMap<(u64, u64), usize>,
    tombstones: usize,
}

impl Bucket {
    fn live(&self) -> usize {
        self.slots.len() - self.tombstones
    }

    /// Drops tombstoned slots and renumbers the position map. Only legal
    /// while no iterator holds a cursor into this bucket.
    fn compact(&mut self) {
        self.slots.retain(Option::is_some);
        self.tombstones = 0;
        self.pos.clear();
        for (i, slot) in self.slots.iter().enumerate() {
            let k = slot.as_deref().expect("retained live slots only");
            self.pos.insert(
                (crate::hash::key_hash(k), crate::hash::key_fingerprint(k)),
                i,
            );
        }
    }
}

/// Iterator buckets: prefix -> keys, plus open-iterator handles.
#[derive(Debug, Default)]
pub struct IterBuckets {
    enabled: bool,
    buckets: PrehashedMap<[u8; 4], Bucket>,
    open: PrehashedMap<u64, IterState>,
    next_handle: u64,
}

impl IterBuckets {
    /// Creates the bucket table; when `enabled` is false, inserts are
    /// no-ops (macro-run memory bound) and iteration returns nothing.
    pub fn new(enabled: bool) -> Self {
        IterBuckets {
            enabled,
            ..Self::default()
        }
    }

    /// Whether key copies are being retained.
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// Records a newly stored key. Re-inserting a key that is already
    /// present moves it to the bucket tail (the device never does this:
    /// it inserts only on the new-key path).
    pub fn insert(&mut self, key: &[u8]) {
        if !self.enabled {
            return;
        }
        let b = self
            .buckets
            .entry(crate::hash::iter_bucket(key))
            .or_default();
        let id = (
            crate::hash::key_hash(key),
            crate::hash::key_fingerprint(key),
        );
        if let Some(old) = b.pos.insert(id, b.slots.len()) {
            b.slots[old] = None;
            b.tombstones += 1;
        }
        b.slots.push(Some(key.to_vec().into_boxed_slice()));
    }

    /// Removes a deleted key: O(1) position-map lookup, tombstone in
    /// place (survivors keep insertion order and open cursors stay
    /// valid).
    pub fn remove(&mut self, key: &[u8]) {
        if !self.enabled {
            return;
        }
        let prefix = crate::hash::iter_bucket(key);
        let Some(b) = self.buckets.get_mut(&prefix) else {
            return;
        };
        let id = (
            crate::hash::key_hash(key),
            crate::hash::key_fingerprint(key),
        );
        if let Some(i) = b.pos.remove(&id) {
            debug_assert_eq!(b.slots[i].as_deref(), Some(key));
            b.slots[i] = None;
            b.tombstones += 1;
            // Reclaim tombstone-dominated buckets when no cursor can be
            // invalidated by the renumbering.
            if b.tombstones > b.live().max(32) && !self.open.values().any(|st| st.bucket == prefix)
            {
                b.compact();
            }
        }
    }

    /// Opens an iterator over a 4-byte prefix; returns its handle.
    pub fn open(&mut self, prefix: [u8; 4]) -> u64 {
        let h = self.next_handle;
        self.next_handle += 1;
        self.open.insert(
            h,
            IterState {
                bucket: prefix,
                pos: 0,
            },
        );
        h
    }

    /// Returns up to `n` live keys from an open iterator, advancing it
    /// past any tombstones. `None` when the handle is not open.
    pub fn next(&mut self, handle: u64, n: usize) -> Option<Vec<Box<[u8]>>> {
        let st = self.open.get_mut(&handle)?;
        let mut out = Vec::new();
        if let Some(b) = self.buckets.get(&st.bucket) {
            while st.pos < b.slots.len() && out.len() < n {
                if let Some(k) = &b.slots[st.pos] {
                    out.push(k.clone());
                }
                st.pos += 1;
            }
        }
        Some(out)
    }

    /// Closes an iterator; false when the handle was not open.
    pub fn close(&mut self, handle: u64) -> bool {
        self.open.remove(&handle).is_some()
    }

    /// Keys currently bucketed under `prefix`.
    pub fn bucket_len(&self, prefix: [u8; 4]) -> usize {
        self.buckets.get(&prefix).map_or(0, Bucket::live)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kvssd_flash::{FlashTiming, Geometry};

    fn entry(fp: u64) -> IndexEntry {
        IndexEntry {
            fingerprint: fp,
            key_len: 4,
            value_len: 10,
            payload: Payload::synthetic(10, 0),
            segs: vec![SegLoc {
                block: BlockId(0),
                page: 0,
                offset: 0,
                alloc: 1024,
                raw: 46,
            }]
            .into(),
        }
    }

    #[test]
    fn global_store_distinguishes_colliding_fingerprints() {
        let mut g = GlobalStore::new();
        g.insert(42, 1, entry(1));
        g.insert(42, 2, entry(2));
        assert_eq!(g.len(), 2);
        assert_eq!(g.get(42, 1).unwrap().fingerprint, 1);
        assert_eq!(g.get(42, 2).unwrap().fingerprint, 2);
        assert!(g.remove(42, 1).is_some());
        assert!(g.get(42, 1).is_none());
        assert_eq!(g.len(), 1);
    }

    #[test]
    fn replace_returns_old_entry() {
        let mut g = GlobalStore::new();
        assert!(g.insert(7, 7, entry(7)).is_none());
        let old = g.insert(7, 7, entry(7)).unwrap();
        assert_eq!(old.fingerprint, 7);
        assert_eq!(g.len(), 1);
    }

    fn timing_fixture() -> (IndexTiming, FlashDevice) {
        let mut flash = FlashDevice::new(Geometry::small(), FlashTiming::pm983_like());
        let reserved: Vec<BlockId> = (0..4).map(BlockId).collect();
        for &b in &reserved {
            flash.preprogram_block(b);
        }
        // 64 KiB DRAM, 48 B entries -> overflow past ~1365 entries.
        (IndexTiming::new(48, 64 * 1024, reserved), flash)
    }

    #[test]
    fn small_index_is_fully_resident() {
        let (it, _) = timing_fixture();
        assert_eq!(it.resident_fraction(1_000), 1.0);
        assert_eq!(it.flash_depth(1_000), 0);
    }

    #[test]
    fn lookup_is_free_while_resident() {
        let (mut it, mut flash) = timing_fixture();
        let t = it.lookup(SimTime::ZERO, 123, 1_000, &mut flash);
        assert_eq!(t, SimTime::ZERO);
        assert_eq!(it.stats().lookup_flash_reads, 0);
    }

    #[test]
    fn overflowed_lookups_pay_flash_reads() {
        let (mut it, mut flash) = timing_fixture();
        let entries = 1_000_000; // 48 MB index vs 64 KiB DRAM
        assert!(it.resident_fraction(entries) < 0.01);
        let mut paid = 0;
        for h in 0..100u64 {
            let t = it.lookup(SimTime::ZERO, mix64(h), entries, &mut flash);
            if t > SimTime::ZERO {
                paid += 1;
            }
        }
        assert!(paid > 90, "only {paid} lookups paid flash reads");
        assert_eq!(it.stats().lookup_flash_reads, paid);
    }

    #[test]
    fn depth_grows_with_overflow_ratio() {
        let (it, _) = timing_fixture();
        // 64 KiB budget, 48 B entries: 1365 entries fill DRAM.
        assert_eq!(it.flash_depth(1_365), 0);
        assert_eq!(it.flash_depth(5_000), 1); // ~3.7x
        assert_eq!(it.flash_depth(50_000), 2); // ~37x
        assert_eq!(it.flash_depth(500_000), 3); // ~366x
    }

    #[test]
    fn merge_is_cheap_resident_expensive_overflowed() {
        let (mut it, mut flash) = timing_fixture();
        let hashes: Vec<u64> = (0..32).map(mix64).collect();
        let cheap = it.merge(SimTime::ZERO, &hashes, 1_000, &mut flash);
        assert_eq!(cheap, SimTime::ZERO);
        let costly = it.merge(SimTime::ZERO, &hashes, 1_000_000, &mut flash);
        assert!(costly > SimTime::ZERO);
        assert!(it.stats().merge_flash_reads >= 32, "depth >= 1 per entry");
    }

    #[test]
    fn merge_programs_index_pages_as_log_fills() {
        let (mut it, mut flash) = timing_fixture();
        let hashes: Vec<u64> = (0..64).map(mix64).collect();
        // Enough merged entries to cross a 32 KiB page: 700 * 48 B per
        // call, ~10 calls.
        for round in 0..20u64 {
            let hs: Vec<u64> = hashes.iter().map(|&h| mix64(h ^ round)).collect();
            it.merge(SimTime::ZERO, &hs, 1_000_000, &mut flash);
        }
        assert!(it.stats().index_programs > 0);
    }

    #[test]
    fn iter_buckets_group_by_prefix() {
        let mut ib = IterBuckets::new(true);
        ib.insert(b"user0001");
        ib.insert(b"user0002");
        ib.insert(b"sess0001");
        assert_eq!(ib.bucket_len(*b"user"), 2);
        assert_eq!(ib.bucket_len(*b"sess"), 1);
        let h = ib.open(*b"user");
        let batch = ib.next(h, 10).unwrap();
        assert_eq!(batch.len(), 2);
        assert!(ib.next(h, 10).unwrap().is_empty());
        assert!(ib.close(h));
        assert!(!ib.close(h));
    }

    #[test]
    fn iter_next_paginates() {
        let mut ib = IterBuckets::new(true);
        for i in 0..25u32 {
            ib.insert(format!("pref{i:04}").as_bytes());
        }
        let h = ib.open(*b"pref");
        assert_eq!(ib.next(h, 10).unwrap().len(), 10);
        assert_eq!(ib.next(h, 10).unwrap().len(), 10);
        assert_eq!(ib.next(h, 10).unwrap().len(), 5);
        assert_eq!(ib.next(h, 10).unwrap().len(), 0);
    }

    #[test]
    fn disabled_buckets_are_noops() {
        let mut ib = IterBuckets::new(false);
        ib.insert(b"abcd1");
        assert_eq!(ib.bucket_len(*b"abcd"), 0);
        let h = ib.open(*b"abcd");
        assert!(ib.next(h, 5).unwrap().is_empty());
    }

    #[test]
    fn remove_drops_key_from_bucket() {
        let mut ib = IterBuckets::new(true);
        ib.insert(b"abcd1");
        ib.insert(b"abcd2");
        ib.remove(b"abcd1");
        assert_eq!(ib.bucket_len(*b"abcd"), 1);
        let h = ib.open(*b"abcd");
        let keys = ib.next(h, 10).unwrap();
        assert_eq!(keys[0].as_ref(), b"abcd2");
    }

    #[test]
    fn bad_handle_returns_none() {
        let mut ib = IterBuckets::new(true);
        assert!(ib.next(999, 5).is_none());
    }

    #[test]
    fn large_bucket_deletes_keep_survivor_order() {
        // Regression for the old O(bucket) swap_remove delete: deletes
        // from a large bucket must be position-map hits, and the
        // survivors must still iterate in original insertion order
        // (swap_remove scrambled it).
        let mut ib = IterBuckets::new(true);
        let keys: Vec<String> = (0..1_000).map(|i| format!("bulk{i:05}")).collect();
        for k in &keys {
            ib.insert(k.as_bytes());
        }
        // Delete every third key, scattered over the whole bucket.
        for k in keys.iter().step_by(3) {
            ib.remove(k.as_bytes());
        }
        let expected: Vec<&String> = keys
            .iter()
            .enumerate()
            .filter(|(i, _)| i % 3 != 0)
            .map(|(_, k)| k)
            .collect();
        assert_eq!(ib.bucket_len(*b"bulk"), expected.len());
        let h = ib.open(*b"bulk");
        let mut got = Vec::new();
        loop {
            let batch = ib.next(h, 64).unwrap();
            if batch.is_empty() {
                break;
            }
            got.extend(batch);
        }
        assert_eq!(got.len(), expected.len());
        for (g, e) in got.iter().zip(&expected) {
            assert_eq!(g.as_ref(), e.as_bytes());
        }
    }

    #[test]
    fn deletes_behind_an_open_cursor_do_not_shift_it() {
        // Snapshot semantics: a cursor mid-bucket must not re-see or
        // skip keys when earlier slots are tombstoned under it.
        let mut ib = IterBuckets::new(true);
        for i in 0..10u32 {
            ib.insert(format!("curs{i:04}").as_bytes());
        }
        let h = ib.open(*b"curs");
        assert_eq!(ib.next(h, 4).unwrap().len(), 4);
        // Tombstone two already-visited keys and one upcoming key.
        ib.remove(b"curs0000");
        ib.remove(b"curs0002");
        ib.remove(b"curs0005");
        let rest = ib.next(h, 100).unwrap();
        let names: Vec<&[u8]> = rest.iter().map(AsRef::as_ref).collect();
        assert_eq!(
            names,
            vec![
                b"curs0004".as_slice(),
                b"curs0006",
                b"curs0007",
                b"curs0008",
                b"curs0009"
            ]
        );
    }

    #[test]
    fn tombstone_compaction_preserves_contents() {
        // Drive a bucket well past the compaction threshold with no open
        // iterators; live keys and order must survive the renumbering.
        let mut ib = IterBuckets::new(true);
        for i in 0..200u32 {
            ib.insert(format!("comp{i:04}").as_bytes());
        }
        for i in 0..150u32 {
            ib.remove(format!("comp{i:04}").as_bytes());
        }
        assert_eq!(ib.bucket_len(*b"comp"), 50);
        // Deletes after compaction still resolve via the rebuilt map.
        ib.remove(b"comp0175");
        assert_eq!(ib.bucket_len(*b"comp"), 49);
        let h = ib.open(*b"comp");
        let got = ib.next(h, 100).unwrap();
        assert_eq!(got.len(), 49);
        assert_eq!(got[0].as_ref(), b"comp0150");
        assert_eq!(got[48].as_ref(), b"comp0199");
    }
}
