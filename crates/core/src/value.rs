//! Value payloads: real bytes or synthetic descriptors.
//!
//! Macro experiments store millions of KVPs whose *contents* never matter
//! — only their sizes do. [`Payload::Synthetic`] carries just a length and
//! a tag so such runs do not materialize gigabytes in host memory, while
//! [`Payload::Bytes`] gives the library real storage semantics (and lets
//! tests verify data integrity end to end). The device treats both
//! identically for timing and space accounting.
//!
//! Real bytes live behind an `Arc<[u8]>` so cloning a payload — which
//! retrieve does once per hit — is a refcount bump, not a value copy.

use std::sync::Arc;

/// A value payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Payload {
    /// Real bytes, returned verbatim on retrieve (shared, not copied).
    Bytes(Arc<[u8]>),
    /// A sized placeholder: `len` bytes of notional data identified by
    /// `tag` (so tests can check the right payload came back).
    Synthetic {
        /// Notional length in bytes.
        len: u32,
        /// Caller-chosen identity tag.
        tag: u64,
    },
}

impl Payload {
    /// Wraps real bytes.
    pub fn from_bytes(bytes: impl Into<Vec<u8>>) -> Self {
        Payload::Bytes(bytes.into().into())
    }

    /// A synthetic payload of `len` bytes tagged `tag`.
    pub fn synthetic(len: u32, tag: u64) -> Self {
        Payload::Synthetic { len, tag }
    }

    /// Payload length in bytes.
    pub fn len(&self) -> u64 {
        match self {
            Payload::Bytes(b) => b.len() as u64,
            Payload::Synthetic { len, .. } => *len as u64,
        }
    }

    /// True for zero-length payloads (legal on the device: value length
    /// may be 0).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The bytes, if this payload is real.
    pub fn as_bytes(&self) -> Option<&[u8]> {
        match self {
            Payload::Bytes(b) => Some(b),
            Payload::Synthetic { .. } => None,
        }
    }
}

impl From<Vec<u8>> for Payload {
    fn from(v: Vec<u8>) -> Self {
        Payload::from_bytes(v)
    }
}

impl From<&[u8]> for Payload {
    fn from(v: &[u8]) -> Self {
        Payload::from_bytes(v.to_vec())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn byte_payload_round_trips() {
        let p = Payload::from_bytes(vec![1, 2, 3]);
        assert_eq!(p.len(), 3);
        assert_eq!(p.as_bytes(), Some(&[1u8, 2, 3][..]));
        assert!(!p.is_empty());
    }

    #[test]
    fn synthetic_payload_has_no_bytes() {
        let p = Payload::synthetic(4096, 77);
        assert_eq!(p.len(), 4096);
        assert_eq!(p.as_bytes(), None);
    }

    #[test]
    fn zero_length_values_are_legal() {
        assert!(Payload::from_bytes(vec![]).is_empty());
        assert!(Payload::synthetic(0, 0).is_empty());
    }

    #[test]
    fn clone_is_a_refcount_bump() {
        let p = Payload::from_bytes(vec![7u8; 64]);
        let q = p.clone();
        assert_eq!(
            p.as_bytes().unwrap().as_ptr(),
            q.as_bytes().unwrap().as_ptr(),
            "cloning a byte payload must share storage, not copy it"
        );
    }

    #[test]
    fn conversions() {
        let p: Payload = vec![9u8].into();
        assert_eq!(p.len(), 1);
        let p: Payload = (&[1u8, 2][..]).into();
        assert_eq!(p.len(), 2);
    }
}
