//! Key hashing, implemented in-repo.
//!
//! The KV-FTL's defining move is transforming variable-length keys into
//! fixed-length key hashes before any index or placement decision — which
//! is exactly why sequential key order stops mattering (Sec. IV, "Impact
//! of key-value indexing"). We use a 64-bit FNV-1a core with a SplitMix64
//! finalizer for the primary hash, and an independently seeded variant as
//! a fingerprint for collision verification (the device never stores full
//! keys in its global index).

use kvssd_sim::rng::mix64;

/// Primary 64-bit key hash (FNV-1a + finalizer).
pub fn key_hash(key: &[u8]) -> u64 {
    mix64(fnv1a(key, 0xcbf2_9ce4_8422_2325))
}

/// Independent 64-bit fingerprint used to verify identity on hash-slot
/// collisions.
pub fn key_fingerprint(key: &[u8]) -> u64 {
    mix64(fnv1a(key, 0x6c62_272e_07bb_0142) ^ 0x9E37_79B9_7F4A_7C15)
}

/// The iterator-bucket id: the first four key bytes, zero-padded — the
/// paper notes keys are grouped for iteration "based on the first 4 bytes
/// of the key".
pub fn iter_bucket(key: &[u8]) -> [u8; 4] {
    let mut b = [0u8; 4];
    let n = key.len().min(4);
    b[..n].copy_from_slice(&key[..n]);
    b
}

fn fnv1a(data: &[u8], basis: u64) -> u64 {
    const PRIME: u64 = 0x0000_0100_0000_01B3;
    let mut h = basis;
    for &b in data {
        h ^= b as u64;
        h = h.wrapping_mul(PRIME);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use kvssd_sim::PrehashedSet;

    #[test]
    fn hash_is_deterministic() {
        assert_eq!(key_hash(b"hello"), key_hash(b"hello"));
        assert_ne!(key_hash(b"hello"), key_hash(b"hellp"));
    }

    #[test]
    fn hash_and_fingerprint_are_independent() {
        // Equal hashes never imply equal fingerprints structurally.
        assert_ne!(key_hash(b"k1"), key_fingerprint(b"k1"));
    }

    #[test]
    fn sequential_keys_hash_to_scattered_values() {
        // The core premise of the paper's Fig. 2 analysis: key order is
        // destroyed by hashing. Check that consecutive keys do not land
        // in consecutive hash space.
        let hashes: Vec<u64> = (0..1000u64)
            .map(|i| key_hash(format!("key{i:012}").as_bytes()))
            .collect();
        let mut adjacent = 0;
        for w in hashes.windows(2) {
            if w[1].wrapping_sub(w[0]) < (u64::MAX / 1000) {
                adjacent += 1;
            }
        }
        assert!(adjacent < 10, "{adjacent} sequential pairs stayed adjacent");
    }

    #[test]
    fn no_collisions_on_100k_keys() {
        let mut seen = PrehashedSet::default();
        for i in 0..100_000u64 {
            assert!(seen.insert(key_hash(format!("user.{i}").as_bytes())));
        }
    }

    #[test]
    fn hash_distributes_over_managers() {
        // Manager dispatch uses `hash % n`; check rough uniformity.
        let mut counts = [0u32; 4];
        for i in 0..100_000u64 {
            counts[(key_hash(format!("k{i}").as_bytes()) % 4) as usize] += 1;
        }
        for &c in &counts {
            assert!((c as i64 - 25_000).abs() < 1_500, "skewed: {counts:?}");
        }
    }

    #[test]
    fn iter_bucket_uses_first_four_bytes() {
        assert_eq!(iter_bucket(b"abcdef"), *b"abcd");
        assert_eq!(iter_bucket(b"ab"), [b'a', b'b', 0, 0]);
        assert_eq!(iter_bucket(b""), [0; 4]);
    }
}
