//! An owned key copy that avoids the heap for short keys.
//!
//! Host-side bookkeeping structures (the cluster's per-shard key
//! registry, the hash store's per-write-block key lists) retain a copy
//! of every stored key. With `Box<[u8]>` that is one heap allocation
//! per store operation — pure overhead, since real workload keys
//! (kvbench emits 16-byte keys) fit in the slot a fat pointer already
//! occupies. [`KeyBuf`] keeps keys up to 22 bytes inline and spills
//! longer ones to a box, so the common case allocates nothing.

/// An owned key: inline when short (the universal case), boxed
/// otherwise.
#[derive(Debug, Clone)]
pub enum KeyBuf {
    /// A key of up to [`KeyBuf::INLINE`] bytes, stored in place.
    Inline {
        /// Number of meaningful bytes in `buf`.
        len: u8,
        /// The key bytes, zero-padded.
        buf: [u8; KeyBuf::INLINE],
    },
    /// A longer key, spilled to the heap.
    Heap(Box<[u8]>),
}

impl KeyBuf {
    /// Inline capacity, sized so `KeyBuf` matches the boxed variant's
    /// 24 bytes.
    pub const INLINE: usize = 22;

    /// Copies `key`, inline when it fits.
    pub fn new(key: &[u8]) -> Self {
        if key.len() <= Self::INLINE {
            let mut buf = [0u8; Self::INLINE];
            buf[..key.len()].copy_from_slice(key);
            KeyBuf::Inline {
                len: key.len() as u8,
                buf,
            }
        } else {
            KeyBuf::Heap(key.into())
        }
    }

    /// The key bytes.
    pub fn as_slice(&self) -> &[u8] {
        match self {
            KeyBuf::Inline { len, buf } => &buf[..*len as usize],
            KeyBuf::Heap(k) => k,
        }
    }
}

impl std::ops::Deref for KeyBuf {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn short_keys_stay_inline_and_round_trip() {
        for len in 0..=KeyBuf::INLINE {
            let key: Vec<u8> = (0..len as u8).collect();
            let k = KeyBuf::new(&key);
            assert!(matches!(k, KeyBuf::Inline { .. }));
            assert_eq!(k.as_slice(), &key[..]);
        }
    }

    #[test]
    fn long_keys_spill_and_round_trip() {
        let key: Vec<u8> = (0..=KeyBuf::INLINE as u8).collect();
        let k = KeyBuf::new(&key);
        assert!(matches!(k, KeyBuf::Heap(_)));
        assert_eq!(k.as_slice(), &key[..]);
    }
}
