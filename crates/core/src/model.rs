//! Analytical performance model of the KV-SSD.
//!
//! The paper's conclusion: "We also plan to develop an analytical model
//! of KV-SSD performance that can help researchers generate more
//! representative workloads." This module is that model: closed-form
//! predictions of store/retrieve latency and sustained bandwidth from
//! the same configuration constants the simulator runs on — no
//! simulation involved. The integration tests validate the predictions
//! against the simulator (`tests/model_validation.rs` at the workspace
//! root).
//!
//! The model composes the paper's mechanisms:
//!
//! * **Store latency (QD 1)** = NVMe ingestion + key handling on an
//!   index manager + buffer insertion, plus per-continuation offset
//!   management for split blobs and the amortized local-to-global merge
//!   (which grows with index-overflow depth — the Fig. 3 write cliff).
//! * **Retrieve latency (QD 1)** = ingestion + key handling + index
//!   lookup (a flash read when the leaf misses DRAM — the Fig. 3 read
//!   step) + a page read per segment + transfer out.
//! * **Sustained write bandwidth** = the tightest of the flash-program,
//!   channel, and command-front-end ceilings, scaled by how much user
//!   payload fits a page after the 1 KiB-granular packing (Figs. 4/5:
//!   the utilization term is what carves the zig-zag).

use kvssd_flash::{FlashTiming, Geometry};

use crate::blob::BlobLayout;
use crate::config::KvConfig;

/// The analytical model: configuration in, predictions out.
#[derive(Debug, Clone, Copy)]
pub struct KvModel {
    config: KvConfig,
    geometry: Geometry,
    timing: FlashTiming,
}

impl KvModel {
    /// Builds the model for a device configuration.
    pub fn new(config: KvConfig, geometry: Geometry, timing: FlashTiming) -> Self {
        KvModel {
            config,
            geometry,
            timing,
        }
    }

    /// Fraction of index leaf segments resident in device DRAM at a
    /// population of `entries` (1.0 while the index fits).
    pub fn index_resident_fraction(&self, entries: u64) -> f64 {
        let size = entries as f64 * self.config.index_entry_bytes as f64;
        (self.config.index_dram_bytes as f64 / size).min(1.0)
    }

    /// Flash levels a merge rewrites at this population (0 while the
    /// index is DRAM-resident) — mirrors the simulator's depth rule.
    pub fn merge_depth(&self, entries: u64) -> u32 {
        let size = entries * self.config.index_entry_bytes as u64;
        if size <= self.config.index_dram_bytes {
            0
        } else {
            let ratio = size as f64 / self.config.index_dram_bytes as f64;
            if ratio <= 8.0 {
                1
            } else if ratio <= 64.0 {
                2
            } else {
                3
            }
        }
    }

    /// One flash page read's latency contribution (tR + pipeline).
    fn page_read_us(&self, bytes: u64) -> f64 {
        (self.timing.t_cmd_overhead + self.timing.t_read).as_micros_f64()
            + self.timing.read_pipeline_time(bytes).as_micros_f64()
    }

    /// Predicted mean store latency at queue depth 1, microseconds.
    pub fn store_latency_us(&self, key_len: usize, value_len: u64, entries: u64) -> f64 {
        let layout = BlobLayout::plan(&self.config, key_len, value_len);
        let cmds = self.config.command_set.commands_for_key(key_len) as f64;
        let wire = cmds * 64.0 + key_len as f64 + value_len as f64;
        let link = wire / self.config.nvme.pcie_bytes_per_sec as f64 * 1e6
            + cmds * self.config.nvme.per_command.as_micros_f64()
            + self.config.nvme.per_completion.as_micros_f64();
        let handling = self.config.key_handling_cost(key_len).as_micros_f64()
            + self.config.cost_index_dram.as_micros_f64()
            + self.config.cost_pack.as_micros_f64()
            + (layout.segments() as f64 - 1.0) * self.config.cost_offset_mgmt.as_micros_f64();
        // Amortized local->global merge: every `batch`-th store pays
        // `depth` flash reads per merged entry.
        let depth = self.merge_depth(entries) as f64;
        let miss = 1.0 - self.index_resident_fraction(entries);
        let merge = depth * miss * self.page_read_us(4096);
        // Split blobs write through: dedicated page programs are on the
        // latency path.
        let write_through = if layout.is_split() {
            (self.timing.t_cmd_overhead + self.timing.t_program).as_micros_f64()
                + self
                    .timing
                    .write_pipeline_time(self.geometry.page_bytes as u64)
                    .as_micros_f64()
        } else {
            1.0 // buffer memcpy
        };
        link + handling + merge + write_through
    }

    /// Predicted mean retrieve latency at queue depth 1, microseconds.
    pub fn retrieve_latency_us(&self, key_len: usize, value_len: u64, entries: u64) -> f64 {
        let layout = BlobLayout::plan(&self.config, key_len, value_len);
        let cmds = self.config.command_set.commands_for_key(key_len) as f64;
        let wire = cmds * 64.0 + key_len as f64;
        let link = wire / self.config.nvme.pcie_bytes_per_sec as f64 * 1e6
            + cmds * self.config.nvme.per_command.as_micros_f64()
            + (value_len as f64 + 16.0) / self.config.nvme.pcie_bytes_per_sec as f64 * 1e6
            + self.config.nvme.per_completion.as_micros_f64();
        let handling = self.config.key_handling_cost(key_len).as_micros_f64()
            + self.config.cost_index_dram.as_micros_f64();
        let miss = 1.0 - self.index_resident_fraction(entries);
        let lookup = miss * self.page_read_us(4096);
        // Head segment read, then continuations overlap (their tR's
        // pipeline on distinct dies; the head's completes first).
        let head = self.page_read_us(layout.segment_raw[0] as u64);
        let conts = if layout.is_split() {
            self.page_read_us(*layout.segment_raw.last().expect("split has tail") as u64)
        } else {
            0.0
        };
        link + handling + lookup + head + conts
    }

    /// Predicted sustained insert bandwidth at high queue depth, in user
    /// MB/s (decimal), for fixed-size values.
    pub fn write_bandwidth_mbps(&self, key_len: usize, value_len: u64) -> f64 {
        let layout = BlobLayout::plan(&self.config, key_len, value_len);
        let page_bytes = self.geometry.page_bytes as u64;
        // Pages consumed per blob: co-packed small blobs share pages;
        // split blobs take a dedicated page per segment.
        let pages_per_blob = if layout.is_split() {
            layout.segments() as f64
        } else {
            let per_page = (self.config.page_payload_bytes / layout.segment_alloc[0]).max(1) as f64;
            1.0 / per_page
        };
        // Ceiling 1: die program throughput.
        let t_prog = (self.timing.t_cmd_overhead + self.timing.t_program).as_secs_f64();
        let die_pages_per_sec = self.geometry.dies() as f64 / t_prog;
        // Ceiling 2: channel intake.
        let ch_pages_per_sec = self.geometry.channels as f64
            / self.timing.write_pipeline_time(page_bytes).as_secs_f64();
        // Ceiling 3: command front-end.
        let cmds = self.config.command_set.commands_for_key(key_len) as f64;
        let fe_ops_per_sec = 1.0 / (cmds * self.config.nvme.per_command.as_secs_f64());
        // Ceiling 4: manager key handling across index managers.
        let mgr_ops_per_sec = self.config.index_managers as f64
            / self.config.key_handling_cost(key_len).as_secs_f64();
        let pages_per_sec = die_pages_per_sec.min(ch_pages_per_sec);
        let ops_per_sec = (pages_per_sec / pages_per_blob)
            .min(fe_ops_per_sec)
            .min(mgr_ops_per_sec);
        ops_per_sec * value_len as f64 / 1e6
    }

    /// Predicted write-latency degradation factor from a resident index
    /// to `entries` records (the Fig. 3 headline ratio).
    pub fn write_degradation(&self, key_len: usize, value_len: u64, entries: u64) -> f64 {
        self.store_latency_us(key_len, value_len, entries)
            / self.store_latency_us(key_len, value_len, 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> KvModel {
        KvModel::new(
            KvConfig::pm983_scaled(),
            Geometry::pm983_scaled(),
            FlashTiming::pm983_like(),
        )
    }

    #[test]
    fn residency_saturates_at_one() {
        let m = model();
        assert_eq!(m.index_resident_fraction(10), 1.0);
        assert!(m.index_resident_fraction(10_000_000) < 0.1);
    }

    #[test]
    fn merge_depth_steps_with_population() {
        let m = model();
        assert_eq!(m.merge_depth(1_000), 0);
        assert!(m.merge_depth(500_000) >= 1);
        assert!(m.merge_depth(3_000_000) >= 2);
    }

    #[test]
    fn store_latency_grows_with_population() {
        let m = model();
        let low = m.store_latency_us(16, 512, 1_000);
        let high = m.store_latency_us(16, 512, 1_200_000);
        assert!(
            high / low > 5.0,
            "occupancy cliff should appear in the model ({low} -> {high})"
        );
    }

    #[test]
    fn split_blobs_cost_more_to_store_and_read() {
        let m = model();
        let small_w = m.store_latency_us(16, 24 * 1024, 1_000);
        let big_w = m.store_latency_us(16, 25 * 1024, 1_000);
        assert!(big_w > small_w * 2.0, "{small_w} -> {big_w}");
        let small_r = m.retrieve_latency_us(16, 24 * 1024, 1_000);
        let big_r = m.retrieve_latency_us(16, 25 * 1024, 1_000);
        assert!(big_r > small_r * 1.3, "{small_r} -> {big_r}");
    }

    #[test]
    fn bandwidth_dips_past_the_page_budget() {
        let m = model();
        let at = |v: u64| m.write_bandwidth_mbps(16, v);
        assert!(at(25 * 1024) < at(24 * 1024) * 0.75);
        assert!(at(48 * 1024) > at(25 * 1024) * 1.2);
        assert!(at(49 * 1024) < at(48 * 1024) * 0.85);
    }

    #[test]
    fn second_nvme_command_halves_small_value_throughput() {
        let m = model();
        let short = m.write_bandwidth_mbps(16, 128);
        let long = m.write_bandwidth_mbps(20, 128);
        let ratio = long / short;
        assert!(
            (0.4..0.7).contains(&ratio),
            "two-command keys should land near 0.5x ({ratio})"
        );
    }
}
