//! Blob layout: how a KV pair becomes bytes on flash.
//!
//! A stored pair is a *blob*: `metadata ‖ key ‖ value`. Blobs whose raw
//! size fits the per-page payload budget are appended into the shared
//! open page (byte-aligned, log-like); larger blobs split into
//! **page-aligned segments** — the first carries metadata, key, and the
//! offset table, continuations carry a small header plus value bytes.
//! Each allocation is rounded up to the device's minimum unit (1 KiB) or,
//! beyond that, to the fine alignment (64 B) — the exact rule behind the
//! paper's Fig. 7 space-amplification curve.

use crate::config::KvConfig;
use crate::inline_vec::InlineVec;

/// Per-segment byte counts. Inline up to two segments: the layout is
/// planned on every store, and the common unsplit blob must not allocate.
pub type SegBytes = InlineVec<u32, 2>;

/// The on-flash layout plan for one KV pair.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BlobLayout {
    /// Bytes of user data (key + value).
    pub user_bytes: u64,
    /// Allocated bytes per segment, in order. Single-segment blobs have
    /// one entry.
    pub segment_alloc: SegBytes,
    /// Raw (pre-padding) bytes per segment.
    pub segment_raw: SegBytes,
}

impl BlobLayout {
    /// Plans the layout of a pair with `key_len`-byte key and
    /// `value_len`-byte value under `config`.
    pub fn plan(config: &KvConfig, key_len: usize, value_len: u64) -> Self {
        let budget = config.page_payload_bytes as u64;
        let first_overhead = config.meta_bytes as u64 + key_len as u64;
        let raw_total = first_overhead + value_len;
        let user_bytes = key_len as u64 + value_len;
        if raw_total <= budget {
            let raw = raw_total as u32;
            let mut segment_alloc = SegBytes::new();
            segment_alloc.push(Self::align(config, raw));
            let mut segment_raw = SegBytes::new();
            segment_raw.push(raw);
            return BlobLayout {
                user_bytes,
                segment_alloc,
                segment_raw,
            };
        }
        // Split: first segment fills a whole page payload (metadata, key,
        // offset table, then value bytes); continuations carry a header
        // plus value bytes, each capped at the page payload.
        let mut segment_raw = SegBytes::new();
        let mut remaining = value_len;
        let first_value = budget - first_overhead;
        segment_raw.push(budget as u32);
        remaining -= first_value;
        let cont_capacity = budget - config.seg_header_bytes as u64;
        while remaining > 0 {
            let take = remaining.min(cont_capacity);
            segment_raw.push((take + config.seg_header_bytes as u64) as u32);
            remaining -= take;
        }
        let mut segment_alloc = SegBytes::new();
        for &r in &segment_raw {
            segment_alloc.push(Self::align(config, r));
        }
        BlobLayout {
            user_bytes,
            segment_alloc,
            segment_raw,
        }
    }

    /// Number of segments.
    pub fn segments(&self) -> usize {
        self.segment_alloc.len()
    }

    /// True when the blob splits across pages.
    pub fn is_split(&self) -> bool {
        self.segments() > 1
    }

    /// Total allocated bytes across segments.
    pub fn allocated_bytes(&self) -> u64 {
        self.segment_alloc.iter().map(|&a| a as u64).sum()
    }

    /// Space amplification of this blob alone: allocated / user bytes.
    /// Zero-length pairs report their allocation against one byte.
    pub fn amplification(&self) -> f64 {
        self.allocated_bytes() as f64 / (self.user_bytes.max(1)) as f64
    }

    /// The allocation rule: minimum 1 KiB unit, fine alignment beyond it.
    fn align(config: &KvConfig, raw: u32) -> u32 {
        if raw <= config.alloc_unit {
            config.alloc_unit
        } else {
            raw.div_ceil(config.fine_align) * config.fine_align
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> KvConfig {
        KvConfig::pm983_scaled()
    }

    #[test]
    fn tiny_blob_pads_to_one_kib() {
        // The paper's headline: a 50 B value (16 B key) allocates 1 KiB,
        // amplification ~15.5x against 66 user bytes.
        let l = BlobLayout::plan(&cfg(), 16, 50);
        assert_eq!(l.segments(), 1);
        assert_eq!(l.allocated_bytes(), 1024);
        let amp = l.amplification();
        assert!(amp > 15.0 && amp < 16.0, "amp {amp}");
    }

    #[test]
    fn paper_20x_amplification_for_smallest_values() {
        // ~35 B values with 16 B keys: 1024 / 51 ≈ 20x.
        let l = BlobLayout::plan(&cfg(), 16, 35);
        assert!(l.amplification() > 19.0, "amp {}", l.amplification());
    }

    #[test]
    fn mid_size_blobs_pack_tightly() {
        // 1 KiB..4 KiB values: amplification close to 1 ("packs data very
        // tightly beyond 1KB").
        for v in [1_500u64, 2_048, 3_000, 4_096] {
            let l = BlobLayout::plan(&cfg(), 16, v);
            let amp = l.amplification();
            assert!(amp < 1.1, "value {v}: amp {amp}");
        }
    }

    #[test]
    fn zero_length_value_is_legal_and_padded() {
        let l = BlobLayout::plan(&cfg(), 16, 0);
        assert_eq!(l.allocated_bytes(), 1024);
        assert_eq!(l.user_bytes, 16);
    }

    #[test]
    fn value_at_page_budget_stays_single_segment() {
        let l = BlobLayout::plan(&cfg(), 16, 24 * 1024);
        assert_eq!(l.segments(), 1, "24 KiB value must fit one page");
    }

    #[test]
    fn value_past_page_budget_splits() {
        let l = BlobLayout::plan(&cfg(), 16, 25 * 1024);
        assert_eq!(l.segments(), 2, "25 KiB value must split (Fig. 5 dip)");
        // First segment fills the page payload exactly.
        assert_eq!(l.segment_raw[0], cfg().page_payload_bytes);
    }

    #[test]
    fn segment_count_steps_at_payload_multiples() {
        let c = cfg();
        let b = c.page_payload_bytes as u64;
        let one = BlobLayout::plan(&c, 16, b - c.meta_bytes as u64 - 16);
        assert_eq!(one.segments(), 1);
        let two = BlobLayout::plan(&c, 16, b);
        assert_eq!(two.segments(), 2);
        let large = BlobLayout::plan(&c, 16, 2 * b);
        assert_eq!(large.segments(), 3);
    }

    #[test]
    fn max_value_splits_into_bounded_segments() {
        let c = cfg();
        let l = BlobLayout::plan(&c, 255, c.value_max);
        // 2 MiB / ~24.5 KiB ≈ 86 segments.
        assert!(l.segments() > 80 && l.segments() < 90, "{}", l.segments());
        // Conservation: raw segments carry all the value bytes once.
        let raw: u64 = l.segment_raw.iter().map(|&r| r as u64).sum();
        let overhead =
            c.meta_bytes as u64 + 255 + (l.segments() as u64 - 1) * c.seg_header_bytes as u64;
        assert_eq!(raw, c.value_max + overhead);
    }

    #[test]
    fn no_segment_exceeds_page_payload() {
        let c = cfg();
        for v in [0u64, 100, 25_000, 100_000, c.value_max] {
            let l = BlobLayout::plan(&c, 200, v);
            for &r in &l.segment_raw {
                assert!(r <= c.page_payload_bytes);
            }
            for (&a, &r) in l.segment_alloc.iter().zip(&l.segment_raw) {
                assert!(a >= r, "allocation below raw size");
            }
        }
    }

    #[test]
    fn alignment_rule_is_exact() {
        let c = cfg();
        // 1 KiB minimum...
        assert_eq!(BlobLayout::plan(&c, 16, 1).allocated_bytes(), 1024);
        // ...then 64 B steps: raw = 32 + 16 + 1000 = 1048 -> 1088.
        assert_eq!(BlobLayout::plan(&c, 16, 1000).allocated_bytes(), 1088);
    }
}
