//! Incremental GC victim selection.
//!
//! The KV-FTL's greedy victim policy — among closed blocks whose erase
//! would gain at least one page's payload, take the one with the fewest
//! valid bytes, breaking ties toward the least-worn block and then the
//! lowest block id — used to be a linear scan over *every* block on every
//! foreground-GC cycle. [`VictimQueue`] replaces the scan with a min-heap
//! under **lazy invalidation**:
//!
//! * An entry `(valid_bytes, erase_count, block)` is pushed whenever a
//!   block closes and whenever a closed block's `valid_bytes` drops
//!   (overwrite, delete, GC copy). The heap therefore always contains the
//!   *current* accounting tuple of every closed block (plus any number of
//!   stale ones).
//! * Popped entries are revalidated against current accounting before
//!   use: an entry is discarded unless the block is still closed and its
//!   `(valid_bytes, erase_count)` still match. Since a block's current
//!   tuple is always present, the smallest entry that survives
//!   revalidation is exactly the block the greedy scan would have chosen
//!   — same ordering key, same tie-breaks.
//!
//! The one behavioral subtlety is *abandonment*: when the device selects
//! a victim (consuming its heap entry) but later gives the block up
//! without erasing it, the caller must [`VictimQueue::note`] it again, or
//! the invariant above breaks. `KvSsd::foreground_gc` is the only such
//! path.
//!
//! The queue also tracks **zero-valid closed blocks** (the zero-copy
//! erase sweep): candidates accumulate as valid counts hit zero and are
//! drained in ascending block-id order — the order the old full scan
//! erased them in — after the same revalidation.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use kvssd_flash::BlockId;

/// One pushed accounting snapshot: (valid bytes, erase count, block id),
/// min-ordered exactly like the reference scan's preference order.
type Entry = (u64, u32, u32);

/// Min-heap of GC victim candidates with lazy invalidation (see module
/// docs).
#[derive(Debug, Default)]
pub struct VictimQueue {
    heap: BinaryHeap<Reverse<Entry>>,
    /// Blocks whose valid count hit zero while closed (zero-copy erase
    /// candidates). May hold duplicates and stale ids; drained sorted and
    /// revalidated.
    zero: Vec<u32>,
    /// Reusable drain buffer for the zero-valid sweep.
    zero_scratch: Vec<u32>,
}

impl VictimQueue {
    /// Creates an empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records the current accounting of a *closed* block. Call on every
    /// open→closed transition and on every `valid_bytes` change of a
    /// closed block (including re-noting an abandoned victim).
    pub fn note(&mut self, block: BlockId, valid_bytes: u64, erase_count: u32) {
        self.heap.push(Reverse((valid_bytes, erase_count, block.0)));
        if valid_bytes == 0 {
            self.zero.push(block.0);
        }
    }

    /// Pops the best victim: the smallest `(valid, wear, id)` entry whose
    /// snapshot still matches current accounting and whose reclaimable
    /// gain is at least one page payload.
    ///
    /// `current` returns `Some((valid_bytes, erase_count, gain_bytes))`
    /// for blocks that are still closed, `None` otherwise. Entries that
    /// fail revalidation are discarded (a fresher entry for the same
    /// block is already in the heap); current-but-ineligible entries
    /// (gain below `min_gain`) are discarded too — any future accounting
    /// change re-notes them.
    pub fn pop_best(
        &mut self,
        min_gain: u64,
        mut current: impl FnMut(BlockId) -> Option<(u64, u32, u64)>,
    ) -> Option<BlockId> {
        while let Some(Reverse((valid, wear, id))) = self.heap.pop() {
            let block = BlockId(id);
            let Some((cur_valid, cur_wear, gain)) = current(block) else {
                continue; // no longer closed: stale
            };
            if cur_valid != valid || cur_wear != wear {
                continue; // superseded by a fresher entry
            }
            if gain < min_gain {
                continue; // tightly packed: pure churn to copy
            }
            return Some(block);
        }
        None
    }

    /// Drains the zero-valid candidates in ascending block-id order,
    /// deduplicated, keeping only blocks `still_zero` confirms (closed
    /// with zero valid bytes). The ascending order reproduces the old
    /// full scan's erase order byte-for-byte. The returned buffer is the
    /// queue's reusable scratch — hand it back with
    /// [`VictimQueue::recycle_zero_buf`] after the sweep so the GC loop
    /// stays allocation-free.
    pub fn take_zero_valid(&mut self, mut still_zero: impl FnMut(BlockId) -> bool) -> Vec<u32> {
        let mut buf = std::mem::take(&mut self.zero_scratch);
        buf.clear();
        buf.append(&mut self.zero);
        buf.sort_unstable();
        buf.dedup();
        buf.retain(|&id| still_zero(BlockId(id)));
        buf
    }

    /// Returns the scratch buffer handed out by
    /// [`VictimQueue::take_zero_valid`].
    pub fn recycle_zero_buf(&mut self, buf: Vec<u32>) {
        self.zero_scratch = buf;
    }

    /// Entries currently held (live + stale) — introspection for tests.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when no entries are held.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A tiny accounting model: (valid, wear, closed) per block.
    struct Model {
        blocks: Vec<(u64, u32, bool)>,
        full_bytes: u64,
    }

    impl Model {
        fn current(&self, b: BlockId) -> Option<(u64, u32, u64)> {
            let (v, w, closed) = self.blocks[b.0 as usize];
            closed.then(|| (v, w, self.full_bytes - v))
        }
    }

    #[test]
    fn picks_fewest_valid_then_least_worn_then_lowest_id() {
        let model = Model {
            blocks: vec![(50, 0, true), (10, 5, true), (10, 2, true), (10, 2, true)],
            full_bytes: 100,
        };
        let mut q = VictimQueue::new();
        for (i, &(v, w, _)) in model.blocks.iter().enumerate() {
            q.note(BlockId(i as u32), v, w);
        }
        let got = q.pop_best(1, |b| model.current(b));
        assert_eq!(got, Some(BlockId(2)), "ties: wear 2 beats 5, id 2 beats 3");
    }

    #[test]
    fn stale_entries_are_skipped() {
        let mut model = Model {
            blocks: vec![(40, 0, true), (60, 0, true)],
            full_bytes: 100,
        };
        let mut q = VictimQueue::new();
        q.note(BlockId(0), 40, 0);
        q.note(BlockId(1), 60, 0);
        // Block 0's count drops to 30: re-note (the 40-entry goes stale).
        model.blocks[0].0 = 30;
        q.note(BlockId(0), 30, 0);
        assert_eq!(q.pop_best(1, |b| model.current(b)), Some(BlockId(0)));
        // The stale 40-entry must not resurface; block 1 is next.
        assert_eq!(q.pop_best(1, |b| model.current(b)), Some(BlockId(1)));
        assert_eq!(q.pop_best(1, |b| model.current(b)), None);
    }

    #[test]
    fn ineligible_gain_is_filtered() {
        let model = Model {
            blocks: vec![(95, 0, true)],
            full_bytes: 100,
        };
        let mut q = VictimQueue::new();
        q.note(BlockId(0), 95, 0);
        // Gain 5 < min_gain 10: not a victim.
        assert_eq!(q.pop_best(10, |b| model.current(b)), None);
    }

    #[test]
    fn reopened_blocks_fail_revalidation() {
        let mut model = Model {
            blocks: vec![(0, 1, true)],
            full_bytes: 100,
        };
        let mut q = VictimQueue::new();
        q.note(BlockId(0), 0, 1);
        // Erased and re-closed with the same valid count: wear differs.
        model.blocks[0] = (0, 2, true);
        assert_eq!(q.pop_best(1, |b| model.current(b)), None);
        q.note(BlockId(0), 0, 2);
        assert_eq!(q.pop_best(1, |b| model.current(b)), Some(BlockId(0)));
    }

    #[test]
    fn zero_valid_drains_sorted_deduped_and_revalidated() {
        let mut q = VictimQueue::new();
        q.note(BlockId(7), 0, 0);
        q.note(BlockId(3), 0, 0);
        q.note(BlockId(7), 0, 1); // duplicate id
        q.note(BlockId(5), 0, 0);
        let got = q.take_zero_valid(|b| b.0 != 5);
        assert_eq!(got, vec![3, 7], "sorted, deduped, 5 filtered out");
        q.recycle_zero_buf(got);
        // Drained: a second sweep sees nothing.
        assert!(q.take_zero_valid(|_| true).is_empty());
    }
}
