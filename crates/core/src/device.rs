//! The KV-SSD device: NVMe KV command set + KV-FTL over shared NAND.
//!
//! Orchestrates the pieces: link ingestion, index-manager key handling,
//! the exact global index plus its timing model, byte-aligned log packing
//! with the 1 KiB allocation rule, page-aligned splitting for oversized
//! values, the volatile write buffer, and background/foreground garbage
//! collection. Behavior (what is stored where) is exact; time falls out
//! of the shared resource timelines.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

use kvssd_flash::{BlockId, FlashDevice, FlashTiming, Geometry, PageAddr};
use kvssd_nvme::NvmeLink;
use kvssd_sim::{PrehashedMap, PrehashedSet, Resource, SimDuration, SimTime};

use crate::blob::BlobLayout;
use crate::bloom::BloomFilter;
use crate::config::KvConfig;
use crate::error::KvError;
use crate::hash::{key_fingerprint, key_hash};
use crate::index::{GlobalStore, IndexEntry, IndexTiming, IterBuckets, SegList, SegLoc};
use crate::value::Payload;
use crate::victim::VictimQueue;

/// Keys returned by one iterator batch.
pub type IterBatch = Vec<Box<[u8]>>;

/// Result of a retrieve: when it completed and what it found.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Lookup {
    /// Host-visible completion time.
    pub at: SimTime,
    /// The value, or `None` for not-found (a routine, timed outcome).
    pub value: Option<Payload>,
}

/// Space accounting snapshot (drives Fig. 7).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SpaceReport {
    /// Bytes of user data stored (keys + values of live pairs).
    pub user_bytes: u64,
    /// Bytes allocated on media for those pairs (incl. padding).
    pub allocated_bytes: u64,
    /// Usable data capacity in bytes.
    pub capacity_bytes: u64,
    /// Live KVP count.
    pub kvp_count: u64,
    /// The device KVP limit.
    pub max_kvps: u64,
    /// Page-tail bytes currently trapped as internal fragmentation
    /// (reclaimed when GC erases the owning blocks).
    pub waste_bytes: u64,
}

impl SpaceReport {
    /// Space amplification: allocated / user bytes.
    pub fn amplification(&self) -> f64 {
        self.allocated_bytes as f64 / self.user_bytes.max(1) as f64
    }
}

/// Device counters.
#[derive(Debug, Clone, Default)]
pub struct KvSsdStats {
    /// Store commands completed.
    pub stores: u64,
    /// Retrieve commands completed.
    pub retrieves: u64,
    /// Delete commands completed.
    pub deletes: u64,
    /// Exist commands completed.
    pub exists: u64,
    /// Lookups answered not-found.
    pub not_found: u64,
    /// Negative lookups short-circuited by a Bloom filter.
    pub bloom_negatives: u64,
    /// Stores whose blob split into multiple segments.
    pub split_stores: u64,
    /// Blobs written through (larger than the volatile buffer's half).
    pub write_through: u64,
    /// Segments copied by GC.
    pub gc_copied_segments: u64,
    /// Blocks erased by GC.
    pub gc_erases: u64,
    /// Foreground GC episodes writes waited on.
    pub foreground_gc_events: u64,
    /// Total time writes spent stalled (buffer pressure + foreground GC).
    pub stall_time: SimDuration,
    /// Reads served from the volatile write buffer.
    pub write_buffer_hits: u64,
    /// Segments re-placed after injected program failures.
    pub replaced_after_failure: u64,
    /// Local-to-global index merges.
    pub merges: u64,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum BState {
    Free,
    Open,
    Closed,
    Dead,
    IndexReserved,
}

/// A key identity inside the device: (hash, fingerprint).
type KeyId = (u64, u64);

#[derive(Debug, Clone, Copy)]
struct PendingSeg {
    key: KeyId,
    alloc: u32,
}

#[derive(Debug)]
struct OpenPage {
    block: BlockId,
    page: u32,
    used: u32,
    first_arrival: SimTime,
    entries: Vec<PendingSeg>,
}

#[derive(Debug, Default)]
struct AppendStream {
    active: VecDeque<BlockId>,
    open: Option<OpenPage>,
}

/// A compact reverse-map record: which blob segment lives in a block.
#[derive(Debug, Clone, Copy)]
struct BlobRef {
    key: KeyId,
    seg_no: u32,
}

/// The simulated KV-firmware SSD (see crate docs).
#[derive(Debug)]
pub struct KvSsd {
    config: KvConfig,
    flash: FlashDevice,
    link: NvmeLink,
    managers: Vec<Resource>,
    local_batches: Vec<Vec<u64>>,
    blooms: Vec<BloomFilter>,
    index: GlobalStore,
    itiming: IndexTiming,
    iters: IterBuckets,
    free: Vec<VecDeque<BlockId>>,
    /// Count of blocks across the `free` queues, maintained at the three
    /// places blocks enter or leave them — the per-op GC-band checks read
    /// this instead of summing 64 per-plane queues.
    free_count: u32,
    state: Vec<BState>,
    valid_bytes: Vec<u64>,
    refs: Vec<Vec<BlobRef>>,
    data: AppendStream,
    gc: AppendStream,
    buffer_used: u64,
    buffer_leaves: BinaryHeap<Reverse<(SimTime, u64, KeyId)>>,
    buffer_resident: PrehashedMap<KeyId, SimTime>,
    /// Recently fetched physical pages (controller read cache): repeated
    /// reads of co-packed blobs skip tR, which is what keeps sequential
    /// reads of co-located KVPs from hammering one die.
    read_cache: VecDeque<(BlockId, u32)>,
    gc_victim: Option<BlockId>,
    /// Incremental victim selection: closed blocks' accounting tuples,
    /// min-heaped with lazy invalidation (see [`crate::victim`]).
    victims: VictimQueue,
    /// Routes victim selection through the O(n) reference scan instead
    /// of the queue — the pre-change baseline for the `device_ops`
    /// microbench. Must be enabled on a fresh device.
    legacy_gc_scan: bool,
    /// Whether the most recent store replaced an existing key (vs
    /// inserting a fresh one). Host layers that mirror the device's key
    /// set (the cluster's per-shard registry) read this to skip their
    /// own containment probe.
    last_store_was_update: bool,
    in_gc: bool,
    compound_seq: u64,
    alloc_cursor: usize,
    data_blocks: u32,
    user_bytes: u64,
    allocated_bytes: u64,
    /// Page-tail bytes lost to internal fragmentation, per block and in
    /// total (reclaimed when GC erases the block).
    waste_per_block: Vec<u64>,
    waste_bytes: u64,
    data_capacity: u64,
    /// Reusable segment-list buffer for `retrieve`: the entry's segments
    /// are copied here (instead of cloning a fresh list per lookup) so
    /// the hot read path stays allocation-free after warmup.
    seg_scratch: Vec<SegLoc>,
    /// Reusable work list for `handle_program_failure` (taken and put
    /// back around the call so recursive failures stay correct).
    failure_scratch: Vec<(KeyId, u32)>,
    /// Reusable dedup set for `handle_program_failure`.
    failure_seen: PrehashedSet<(KeyId, u32)>,
    stats: KvSsdStats,
}

impl KvSsd {
    /// Creates a KV-SSD over fresh flash.
    pub fn new(geometry: Geometry, timing: FlashTiming, config: KvConfig) -> Self {
        Self::over(FlashDevice::new(geometry, timing), config)
    }

    /// Creates a KV-SSD over an existing flash substrate (e.g. with a
    /// fault plan installed).
    pub fn over(mut flash: FlashDevice, config: KvConfig) -> Self {
        config.validate();
        let g = *flash.geometry();
        let die_planes = (g.dies() * g.planes_per_die) as usize;
        // Reserve the index region: the first k blocks of every
        // die-plane, so index traffic spreads across dies.
        let per_dp_reserve = (g.blocks_per_plane * config.index_reserve_pct)
            .div_ceil(100)
            .max(1);
        let mut free = vec![VecDeque::new(); die_planes];
        let mut state = vec![BState::Free; g.total_blocks() as usize];
        let mut reserved = Vec::new();
        for die in 0..g.dies() {
            for plane in 0..g.planes_per_die {
                for idx in 0..g.blocks_per_plane {
                    let b = g.block_at(die, plane, idx);
                    if idx < per_dp_reserve {
                        state[b.0 as usize] = BState::IndexReserved;
                        flash.preprogram_block(b);
                        reserved.push(b);
                    } else {
                        free[(die * g.planes_per_die + plane) as usize].push_back(b);
                    }
                }
            }
        }
        let data_blocks = g.total_blocks() as u64 - reserved.len() as u64;
        let raw_data = data_blocks * g.pages_per_block as u64 * config.page_payload_bytes as u64;
        let data_capacity = raw_data * (100 - config.overprovision_pct as u64) / 100;
        let expected_keys_per_manager = (config.max_kvps / config.index_managers as u64).max(1024);
        KvSsd {
            managers: vec![Resource::new(); config.index_managers],
            local_batches: vec![Vec::new(); config.index_managers],
            blooms: (0..config.index_managers)
                .map(|_| BloomFilter::new(expected_keys_per_manager, config.bloom_bits_per_key))
                .collect(),
            index: GlobalStore::new(),
            itiming: IndexTiming::new(config.index_entry_bytes, config.index_dram_bytes, reserved),
            iters: IterBuckets::new(config.iterator_buckets),
            valid_bytes: vec![0; g.total_blocks() as usize],
            refs: vec![Vec::new(); g.total_blocks() as usize],
            data: AppendStream::default(),
            gc: AppendStream::default(),
            buffer_used: 0,
            buffer_leaves: BinaryHeap::new(),
            buffer_resident: PrehashedMap::default(),
            read_cache: VecDeque::new(),
            gc_victim: None,
            victims: VictimQueue::new(),
            legacy_gc_scan: false,
            last_store_was_update: false,
            in_gc: false,
            compound_seq: 0,
            alloc_cursor: 0,
            data_blocks: data_blocks as u32,
            user_bytes: 0,
            allocated_bytes: 0,
            waste_per_block: vec![0; g.total_blocks() as usize],
            waste_bytes: 0,
            data_capacity,
            seg_scratch: Vec::new(),
            failure_scratch: Vec::new(),
            failure_seen: PrehashedSet::default(),
            free_count: free.iter().map(|q| q.len() as u32).sum(),
            free,
            state,
            link: NvmeLink::new(config.nvme),
            stats: KvSsdStats::default(),
            flash,
            config,
        }
    }

    /// The device configuration.
    pub fn config(&self) -> &KvConfig {
        &self.config
    }

    /// Device counters.
    pub fn stats(&self) -> &KvSsdStats {
        &self.stats
    }

    /// Routes GC victim selection through the original O(blocks) linear
    /// scan instead of the incremental [`VictimQueue`]. Behavior is
    /// identical by construction (the differential tests enforce it);
    /// only host-side cost differs. This is the pre-change baseline leg
    /// of the `device_ops` microbench and must be set on a fresh device.
    pub fn set_legacy_gc_scan(&mut self, on: bool) {
        assert!(
            self.is_empty() && self.stats.stores == 0,
            "legacy GC scan mode must be chosen before the first store"
        );
        self.legacy_gc_scan = on;
    }

    /// Whether the most recent [`Self::store`] replaced an existing key
    /// rather than inserting a fresh one. Lets host layers that mirror
    /// the device's key set skip their own containment probe.
    pub fn last_store_was_update(&self) -> bool {
        self.last_store_was_update
    }

    /// Index cost-model counters.
    pub fn index_stats(&self) -> &crate::index::IndexTimingStats {
        self.itiming.stats()
    }

    /// The underlying flash (for utilization reporting).
    pub fn flash(&self) -> &FlashDevice {
        &self.flash
    }

    /// Space accounting snapshot.
    pub fn space(&self) -> SpaceReport {
        SpaceReport {
            user_bytes: self.user_bytes,
            allocated_bytes: self.allocated_bytes,
            capacity_bytes: self.data_capacity,
            kvp_count: self.index.len(),
            max_kvps: self.config.max_kvps,
            waste_bytes: self.waste_bytes,
        }
    }

    /// Live KVP count.
    pub fn len(&self) -> u64 {
        self.index.len()
    }

    /// True when the device holds no pairs.
    pub fn is_empty(&self) -> bool {
        self.index.is_empty()
    }

    /// Free (erased) data blocks currently available.
    pub fn free_blocks(&self) -> u32 {
        debug_assert_eq!(
            self.free_count,
            self.free.iter().map(|q| q.len() as u32).sum::<u32>(),
            "free-block counter drifted from the queues"
        );
        self.free_count
    }

    /// Stores a key-value pair; returns the host-visible completion time.
    pub fn store(&mut self, now: SimTime, key: &[u8], value: Payload) -> Result<SimTime, KvError> {
        self.check_key(key)?;
        let vlen = value.len();
        if vlen > self.config.value_max {
            return Err(KvError::ValueTooLarge {
                len: vlen,
                max: self.config.value_max,
            });
        }
        let (h, fp) = (key_hash(key), key_fingerprint(key));
        let layout = BlobLayout::plan(&self.config, key.len(), vlen);
        // One probe answers both "does it exist" and "how much does the
        // old version hold" (GC may relocate the old segments below, but
        // relocation preserves per-segment allocation).
        let prior_alloc = self.index.get(h, fp).map(IndexEntry::allocated_bytes);
        let existing = prior_alloc.is_some();
        if !existing && self.index.len() >= self.config.max_kvps {
            return Err(KvError::IndexFull {
                max_kvps: self.config.max_kvps,
            });
        }
        let old_alloc = prior_alloc.unwrap_or(0);
        let projected =
            |d: &Self| d.allocated_bytes - old_alloc + layout.allocated_bytes() + d.waste_bytes;
        if projected(self) > self.data_capacity {
            // Much of the projection may be reclaimable page-tail waste;
            // give the collector one synchronous chance before failing.
            self.foreground_gc(now)?;
            if projected(self) > self.data_capacity {
                return Err(KvError::DeviceFull);
            }
        }

        // 1. NVMe ingestion: capsule(s) + payload over the link. With
        // compound commands enabled, only every batch-th store carries a
        // capsule; the rest ride inside it.
        let cmds = if self.config.command_set.compound_commands {
            self.compound_seq += 1;
            if self.compound_seq % self.config.command_set.compound_batch as u64 == 1
                || self.config.command_set.compound_batch == 1
            {
                self.config.command_set.commands_for_key(key.len())
            } else {
                0
            }
        } else {
            self.config.command_set.commands_for_key(key.len())
        };
        let t = self
            .link
            .submit(now, cmds, (key.len() as u64 + vlen).max(1));

        // 2. Key handling on this key's index manager.
        let m = (h % self.managers.len() as u64) as usize;
        let mut handling = self.config.key_handling_cost(key.len())
            + self.config.cost_index_dram
            + self.config.cost_pack;
        if layout.is_split() {
            handling += self.config.cost_offset_mgmt * (layout.segments() as u64 - 1);
            self.stats.split_stores += 1;
        }
        let mut t = self.managers[m].acquire(t, handling).end;

        // 3. Buffer admission (may stall under pressure). Blobs beyond
        // half the buffer are written through instead: their completion
        // waits for the programs rather than for buffer space.
        let total_alloc = layout.allocated_bytes();
        let write_through = total_alloc > self.config.write_buffer_bytes / 2;
        if write_through {
            self.stats.write_through += 1;
        } else {
            t = self.wait_for_buffer_space(t, total_alloc)?;
        }

        // 3.5 Hard watermark: reclaim space synchronously before placing
        // (the foreground-GC stall of Fig. 6). `free_pages()` is at least
        // `free_count * pages_per_block` (open-block tails only add), so
        // the page walk is skipped while whole free blocks alone clear
        // the watermark.
        if self.free_count as u64 <= self.config.gc_hard_free_blocks as u64 + 1
            && self.free_pages() <= self.hard_watermark_pages()
        {
            t = self.foreground_gc(t)?;
        }

        // 4. Invalidate any previous version and commit a skeleton index
        // record up front: garbage collection may run *while* this store
        // is placing segments, and it finds live data through the index.
        let old = self.index.insert(
            h,
            fp,
            IndexEntry {
                fingerprint: fp,
                key_len: key.len() as u8,
                value_len: vlen as u32,
                payload: value,
                segs: SegList::new(),
            },
        );
        let was_update = old.is_some();
        self.last_store_was_update = was_update;
        if let Some(old) = old {
            self.invalidate_entry(&old);
        } else {
            self.iters.insert(key);
        }

        // 5. Place segments, publishing each location as it lands (GC may
        // even relocate a just-placed segment; it updates the entry).
        let mut last_program = t;
        for (i, (&alloc, &raw)) in layout
            .segment_alloc
            .iter()
            .zip(&layout.segment_raw)
            .enumerate()
        {
            let dedicated = layout.is_split();
            match self.append_segment_retry(t, (h, fp), i as u32, alloc, raw, dedicated)? {
                Some((loc, programmed)) => {
                    if let Some(done) = programmed {
                        last_program = last_program.max(done);
                    }
                    self.index
                        .get_mut(h, fp)
                        .ok_or(KvError::Internal {
                            what: "skeleton index entry committed before placement",
                        })?
                        .segs
                        .push(loc);
                }
                None => {
                    // Physical exhaustion mid-append: roll back the
                    // segments already placed and fail the store. The
                    // previous version is already gone, as it would be on
                    // a real device that invalidates before overwriting.
                    if let Some(partial) = self.index.remove(h, fp) {
                        for placed in &partial.segs {
                            self.dec_valid(placed.block, placed.alloc as u64);
                        }
                    }
                    self.iters.remove(key);
                    return Err(KvError::DeviceFull);
                }
            }
        }
        if write_through {
            t = t.max(last_program);
        }

        // 6. Account the committed record. The entry's byte totals equal
        // the layout's: every placed segment carries a layout allocation,
        // and GC relocation or failure re-placement preserve it.
        self.user_bytes += layout.user_bytes;
        self.allocated_bytes += layout.allocated_bytes();
        // An existing key's hash already has its bits set (bloom bits are
        // never cleared), so re-inserting on update would touch the same
        // `k` scattered cache lines to set nothing — skip it.
        if !was_update {
            self.blooms[m].insert(h);
        }
        if !write_through {
            self.buffer_resident
                .entry((h, fp))
                .or_insert(SimTime::from_nanos(u64::MAX));
        }

        // 7. Local-index batch; merge into the global index when full.
        self.local_batches[m].push(h);
        if self.local_batches[m].len() >= self.config.local_index_entries {
            let batch = std::mem::take(&mut self.local_batches[m]);
            let entries = self.index.len();
            let merged = self.itiming.merge(t, &batch, entries, &mut self.flash);
            self.stats.merges += 1;
            t = self.managers[m]
                .acquire_after(t, merged, SimDuration::ZERO)
                .end;
        }

        // 8. Background GC band. `free_pages() < soft * pages_per_block`
        // implies `free_count < soft` (open-block tails only add pages),
        // so the page condition is subsumed by the block-count one.
        if self.free_count < self.config.gc_soft_free_blocks {
            for _ in 0..self.config.gc_copies_per_store {
                if !self.gc_copy_one(t)? {
                    break;
                }
            }
        }

        self.stats.stores += 1;
        Ok(self.link.complete(t, 0))
    }

    /// Retrieves a value by key.
    pub fn retrieve(&mut self, now: SimTime, key: &[u8]) -> Result<Lookup, KvError> {
        self.check_key(key)?;
        let (h, fp) = (key_hash(key), key_fingerprint(key));
        let cmds = self.config.command_set.commands_for_key(key.len());
        let t = self.link.submit(now, cmds, key.len() as u64);
        let m = (h % self.managers.len() as u64) as usize;
        let t = self.managers[m]
            .acquire(t, self.config.key_handling_cost(key.len()))
            .end;
        // Bloom filter: definite negatives skip the index walk.
        if self.config.bloom_enabled && !self.blooms[m].may_contain(h) {
            self.stats.bloom_negatives += 1;
            self.stats.not_found += 1;
            self.stats.retrieves += 1;
            return Ok(Lookup {
                at: self.link.complete(t, 0),
                value: None,
            });
        }
        let t = self.managers[m].acquire(t, self.config.cost_index_dram).end;
        let entries = self.index.len();
        let t = self.itiming.lookup(t, h, entries, &mut self.flash);
        let Some(entry) = self.index.get(h, fp) else {
            self.stats.not_found += 1;
            self.stats.retrieves += 1;
            return Ok(Lookup {
                at: self.link.complete(t, 0),
                value: None,
            });
        };
        // Payload clone is an `Arc` refcount bump (no value copy); the
        // segment list is copied into the reusable scratch buffer instead
        // of cloning a fresh list per lookup.
        let value = entry.payload.clone();
        let vlen = entry.value_len as u64;
        let mut segs = std::mem::take(&mut self.seg_scratch);
        segs.clear();
        segs.extend_from_slice(entry.segs.as_slice());
        let t = self.read_segments(t, (h, fp), &segs);
        self.seg_scratch = segs;
        let t = t?;
        self.stats.retrieves += 1;
        Ok(Lookup {
            at: self.link.complete(t, vlen),
            value: Some(value),
        })
    }

    /// Membership check; returns (completion, exists).
    pub fn exist(&mut self, now: SimTime, key: &[u8]) -> Result<(SimTime, bool), KvError> {
        self.check_key(key)?;
        let (h, fp) = (key_hash(key), key_fingerprint(key));
        let cmds = self.config.command_set.commands_for_key(key.len());
        let t = self.link.submit(now, cmds, key.len() as u64);
        let m = (h % self.managers.len() as u64) as usize;
        let t = self.managers[m]
            .acquire(t, self.config.key_handling_cost(key.len()))
            .end;
        self.stats.exists += 1;
        if self.config.bloom_enabled && !self.blooms[m].may_contain(h) {
            self.stats.bloom_negatives += 1;
            return Ok((self.link.complete(t, 0), false));
        }
        let t = self.managers[m].acquire(t, self.config.cost_index_dram).end;
        let t = self.itiming.lookup(t, h, self.index.len(), &mut self.flash);
        let found = self.index.get(h, fp).is_some();
        Ok((self.link.complete(t, 0), found))
    }

    /// Deletes a key; returns (completion, existed).
    pub fn delete(&mut self, now: SimTime, key: &[u8]) -> Result<(SimTime, bool), KvError> {
        self.check_key(key)?;
        let (h, fp) = (key_hash(key), key_fingerprint(key));
        let cmds = self.config.command_set.commands_for_key(key.len());
        let t = self.link.submit(now, cmds, key.len() as u64);
        let m = (h % self.managers.len() as u64) as usize;
        let t = self.managers[m]
            .acquire(
                t,
                self.config.key_handling_cost(key.len()) + self.config.cost_index_dram,
            )
            .end;
        let mut t = self.itiming.lookup(t, h, self.index.len(), &mut self.flash);
        let existed = match self.index.remove(h, fp) {
            Some(entry) => {
                self.invalidate_entry(&entry);
                self.iters.remove(key);
                // Deletes also dirty the index; count them in a batch.
                self.local_batches[m].push(h);
                if self.local_batches[m].len() >= self.config.local_index_entries {
                    let batch = std::mem::take(&mut self.local_batches[m]);
                    let entries = self.index.len();
                    t = self.itiming.merge(t, &batch, entries, &mut self.flash);
                    self.stats.merges += 1;
                }
                true
            }
            None => {
                self.stats.not_found += 1;
                false
            }
        };
        self.stats.deletes += 1;
        Ok((self.link.complete(t, 0), existed))
    }

    /// Opens an iterator over a 4-byte key prefix.
    pub fn iter_open(&mut self, now: SimTime, prefix: [u8; 4]) -> (SimTime, u64) {
        let t = self.link.submit(now, 1, 4);
        let handle = self.iters.open(prefix);
        (
            self.link.complete(t + SimDuration::from_micros(5), 0),
            handle,
        )
    }

    /// Fetches up to `n` keys from an open iterator.
    pub fn iter_next(
        &mut self,
        now: SimTime,
        handle: u64,
        n: usize,
    ) -> Result<(SimTime, IterBatch), KvError> {
        let t = self.link.submit(now, 1, 0);
        let keys = self.iters.next(handle, n).ok_or(KvError::BadIterator)?;
        // Iterator buckets are scanned from flash in page-sized chunks.
        let pages = keys.len().div_ceil(100).max(1) as u64;
        let mut done = t;
        for i in 0..pages {
            done = done.max(self.itiming.lookup(
                t,
                kvssd_sim::rng::mix64(handle ^ i),
                self.index.len(),
                &mut self.flash,
            ));
        }
        let bytes: u64 = keys.iter().map(|k| k.len() as u64).sum();
        Ok((self.link.complete(done, bytes), keys))
    }

    /// Closes an iterator.
    pub fn iter_close(&mut self, now: SimTime, handle: u64) -> Result<SimTime, KvError> {
        let t = self.link.submit(now, 1, 0);
        if self.iters.close(handle) {
            Ok(self.link.complete(t, 0))
        } else {
            Err(KvError::BadIterator)
        }
    }

    /// Power-cycles the device: flushes the capacitor-backed volatile
    /// buffer (enterprise power-loss protection — no acknowledged write
    /// is lost), drops volatile caches, and pays the mount-time cost of
    /// re-reading the flash-resident index levels. Returns when the
    /// device is ready again.
    pub fn power_cycle(&mut self, now: SimTime) -> Result<SimTime, KvError> {
        // Capacitor flush of in-flight pages.
        let mut t = self.flush(now)?;
        // Volatile state is gone.
        self.read_cache.clear();
        self.drain_buffer(t + SimDuration::from_secs(3600));
        self.buffer_resident.clear();
        self.buffer_leaves.clear();
        self.buffer_used = 0;
        // Mount: walk the flash-resident index levels back into DRAM.
        let entries = self.index.len();
        let resident = self.itiming.resident_fraction(entries);
        if resident < 1.0 {
            let flash_bytes = (self.itiming.index_bytes(entries) as f64 * (1.0 - resident)) as u64;
            let pages = flash_bytes.div_ceil(self.flash.geometry().page_bytes as u64);
            // Mount reads stream across the reserved region; charge an
            // aggregate sequential read (channel-limited).
            let per_page = self
                .flash
                .timing()
                .read_pipeline_time(self.flash.geometry().page_bytes as u64);
            let channels = self.flash.geometry().channels as u64;
            t += SimDuration::from_nanos(per_page.as_nanos() * pages / channels.max(1));
        }
        Ok(t)
    }

    /// Physical segment locations of a live key — diagnostics and
    /// invariant-testing hook (real firmware exposes the same through
    /// vendor log pages). Borrowed straight from the index entry; clone
    /// the slice if the locations must outlive further device calls.
    pub fn segments_of(&self, key: &[u8]) -> Option<&[SegLoc]> {
        let (h, fp) = (key_hash(key), key_fingerprint(key));
        self.index.get(h, fp).map(|e| e.segs.as_slice())
    }

    /// Programs all partially filled open pages (end-of-phase barrier).
    pub fn flush(&mut self, now: SimTime) -> Result<SimTime, KvError> {
        let mut end = now;
        if let Some(done) = self.program_open_page(now, StreamKind::Data)? {
            end = end.max(done);
        }
        if let Some(done) = self.program_open_page(now, StreamKind::Gc)? {
            end = end.max(done);
        }
        Ok(end)
    }

    // ----- internals -------------------------------------------------

    fn check_key(&self, key: &[u8]) -> Result<(), KvError> {
        if key.len() < self.config.key_min {
            return Err(KvError::KeyTooShort {
                len: key.len(),
                min: self.config.key_min,
            });
        }
        if key.len() > self.config.key_max {
            return Err(KvError::KeyTooLong {
                len: key.len(),
                max: self.config.key_max,
            });
        }
        Ok(())
    }

    fn invalidate_entry(&mut self, entry: &IndexEntry) {
        for seg in &entry.segs {
            self.dec_valid(seg.block, seg.alloc as u64);
        }
        self.user_bytes -= entry.user_bytes();
        self.allocated_bytes -= entry.allocated_bytes();
    }

    /// Decrements a block's valid-byte count. When the block is closed,
    /// its accounting tuple changed, so the victim queue gets the fresh
    /// snapshot (lazy invalidation: the old entry goes stale in place).
    fn dec_valid(&mut self, block: BlockId, bytes: u64) {
        let b = block.0 as usize;
        self.valid_bytes[b] -= bytes;
        if self.state[b] == BState::Closed && !self.legacy_gc_scan {
            self.victims
                .note(block, self.valid_bytes[b], self.flash.erase_count(block));
        }
    }

    /// Waits until `bytes` of buffer space are available, returning the
    /// (possibly stalled) time. The space itself is claimed as segments
    /// are appended.
    fn wait_for_buffer_space(&mut self, now: SimTime, bytes: u64) -> Result<SimTime, KvError> {
        let mut t = now;
        self.drain_buffer(t);
        while self.buffer_used + bytes > self.config.write_buffer_bytes {
            match self.buffer_leaves.pop() {
                Some(Reverse((leave, gone_bytes, key))) => {
                    if self.buffer_resident.get(&key) == Some(&leave) {
                        self.buffer_resident.remove(&key);
                    }
                    self.buffer_used -= gone_bytes;
                    if leave > t {
                        self.stats.stall_time += leave.since(t);
                        t = leave;
                    }
                }
                None => {
                    // Everything unprogrammed: force the open page out.
                    match self.program_open_page(t, StreamKind::Data)? {
                        Some(done) => {
                            // Its entries are now in the heap; loop.
                            let _ = done;
                        }
                        None => break, // nothing buffered at all
                    }
                }
            }
        }
        Ok(t)
    }

    fn drain_buffer(&mut self, now: SimTime) {
        while let Some(&Reverse((leave, bytes, key))) = self.buffer_leaves.peek() {
            if leave <= now {
                self.buffer_leaves.pop();
                self.buffer_used -= bytes;
                if self.buffer_resident.get(&key) == Some(&leave) {
                    self.buffer_resident.remove(&key);
                }
            } else {
                break;
            }
        }
    }

    /// [`Self::append_segment`] with retry: if the placement landed on a
    /// page whose program failed (block retired under our feet, and the
    /// failure handler cannot see an unpublished segment), undo the
    /// accounting and place it again.
    fn append_segment_retry(
        &mut self,
        now: SimTime,
        key: KeyId,
        seg_no: u32,
        alloc: u32,
        raw: u32,
        dedicated: bool,
    ) -> Result<Option<(SegLoc, Option<SimTime>)>, KvError> {
        for attempt in 0..16 {
            let Some((loc, done)) = self.append_segment(now, key, seg_no, alloc, raw, dedicated)?
            else {
                return Ok(None);
            };
            if self.state[loc.block.0 as usize] != BState::Dead {
                return Ok(Some((loc, done)));
            }
            // The copy on the dead block is garbage now; it was counted
            // once by account_append, so uncount it once and try again.
            self.dec_valid(loc.block, alloc as u64);
            let _ = attempt;
        }
        Err(KvError::Internal {
            what: "16 consecutive program failures placing one segment — \
                   fault rate too high to make progress",
        })
    }

    /// Appends one segment to a stream; returns its location and, when a
    /// page was programmed as a side effect, that program's completion.
    /// `Ok(None)` means the device is physically out of space.
    fn append_segment(
        &mut self,
        now: SimTime,
        key: KeyId,
        seg_no: u32,
        alloc: u32,
        raw: u32,
        dedicated: bool,
    ) -> Result<Option<(SegLoc, Option<SimTime>)>, KvError> {
        let kind = if self.in_gc {
            StreamKind::Gc
        } else {
            StreamKind::Data
        };
        if dedicated {
            // Page-aligned segment: a whole page to itself (the firmware
            // keeps split-blob offsets page-aligned).
            let ppb = self.flash.geometry().pages_per_block;
            let mut block;
            loop {
                let Some(b) = self.pick_block(now, kind)? else {
                    return Ok(None);
                };
                block = b;
                // The stream's open page owns its block's next program
                // slot; flush it before programming anything else there.
                if self
                    .stream(kind)
                    .open
                    .as_ref()
                    .is_some_and(|p| p.block == block)
                {
                    self.program_open_page(now, kind)?;
                }
                // The flush may have consumed the block's last page.
                if self.flash.written_pages(block) < ppb {
                    break;
                }
                self.close_if_full(block, kind);
            }
            let page = self.flash.written_pages(block);
            let loc = SegLoc {
                block,
                page,
                offset: 0,
                alloc,
                raw,
            };
            self.account_append(block, key, seg_no, alloc);
            self.account_waste(
                block,
                self.config.page_payload_bytes.saturating_sub(alloc) as u64,
            );
            self.buffer_used += alloc as u64;
            let r = self
                .flash
                .program_page(
                    now,
                    PageAddr { block, page },
                    self.flash.geometry().page_bytes as u64,
                )
                .map_err(|_| KvError::Internal {
                    what: "program rejected on a freshly picked open block",
                })?;
            let done = r.done;
            self.close_if_full(block, kind);
            self.buffer_leaves.push(Reverse((done, alloc as u64, key)));
            self.buffer_resident.insert(key, done);
            if r.failed {
                self.handle_program_failure(done, block, page)?;
            }
            return Ok(Some((loc, Some(done))));
        }
        // Shared open page: byte-aligned log append.
        let payload = self.config.page_payload_bytes;
        let mut programmed = None;
        let needs_new_page = match self.stream(kind).open.as_ref() {
            Some(p) => p.used + alloc > payload,
            None => true,
        };
        // Only host data is timeout-flushed (durability expectation);
        // the GC stream is bursty and must keep filling its page across
        // episodes or it litters the array with near-empty pages.
        let timed_out = kind == StreamKind::Data
            && self
                .stream(kind)
                .open
                .as_ref()
                .map(|p| {
                    !p.entries.is_empty()
                        && now.saturating_since(p.first_arrival)
                            >= self.config.partial_flush_timeout
                })
                .unwrap_or(false);
        if needs_new_page || timed_out {
            programmed = self.program_open_page(now, kind)?;
            let Some(block) = self.pick_block(now, kind)? else {
                return Ok(None);
            };
            let page = self.flash.written_pages(block);
            self.stream_mut(kind).open = Some(OpenPage {
                block,
                page,
                used: 0,
                first_arrival: now,
                entries: Vec::new(),
            });
        }
        let payload_limit = self.config.page_payload_bytes;
        let alloc_unit = self.config.alloc_unit;
        let open = self
            .stream_mut(kind)
            .open
            .as_mut()
            .ok_or(KvError::Internal {
                what: "stream open page installed before the append",
            })?;
        let loc = SegLoc {
            block: open.block,
            page: open.page,
            offset: open.used,
            alloc,
            raw,
        };
        open.used += alloc;
        open.entries.push(PendingSeg { key, alloc });
        let full = open.used + alloc_unit > payload_limit;
        let block = open.block;
        self.account_append(block, key, seg_no, alloc);
        self.buffer_used += alloc as u64;
        if full {
            let done = self.program_open_page(now, kind)?;
            programmed = programmed.max(done);
        }
        Ok(Some((loc, programmed)))
    }

    fn account_append(&mut self, block: BlockId, key: KeyId, seg_no: u32, alloc: u32) {
        self.valid_bytes[block.0 as usize] += alloc as u64;
        self.refs[block.0 as usize].push(BlobRef { key, seg_no });
    }

    fn account_waste(&mut self, block: BlockId, bytes: u64) {
        self.waste_per_block[block.0 as usize] += bytes;
        self.waste_bytes += bytes;
    }

    /// Programs the current open page of a stream, if any.
    fn program_open_page(
        &mut self,
        now: SimTime,
        kind: StreamKind,
    ) -> Result<Option<SimTime>, KvError> {
        let Some(open) = self.stream_mut(kind).open.take() else {
            return Ok(None);
        };
        if open.entries.is_empty() {
            // Nothing written: hand the page back by reopening lazily.
            return Ok(None);
        }
        self.account_waste(
            open.block,
            (self.config.page_payload_bytes - open.used) as u64,
        );
        let r = self
            .flash
            .program_page(
                now,
                PageAddr {
                    block: open.block,
                    page: open.page,
                },
                self.flash.geometry().page_bytes as u64,
            )
            .map_err(|_| KvError::Internal {
                what: "program rejected on a stream's own open page",
            })?;
        let done = r.done;
        for seg in &open.entries {
            self.buffer_leaves
                .push(Reverse((done, seg.alloc as u64, seg.key)));
            self.buffer_resident.insert(seg.key, done);
        }
        self.close_if_full(open.block, kind);
        if r.failed {
            self.handle_program_failure(done, open.block, open.page)?;
        }
        Ok(Some(done))
    }

    /// After a failed program, retire the block and re-place every
    /// segment that still maps to the failed page.
    fn handle_program_failure(
        &mut self,
        now: SimTime,
        block: BlockId,
        page: u32,
    ) -> Result<(), KvError> {
        self.state[block.0 as usize] = BState::Dead;
        for stream in [StreamKind::Data, StreamKind::Gc] {
            let s = self.stream_mut(stream);
            s.active.retain(|&b| b != block);
            if s.open.as_ref().is_some_and(|p| p.block == block) {
                s.open = None;
            }
        }
        // A block's ref list may name the same (key, segment) several
        // times (stale refs from overwrites that landed in the same
        // page); each live segment must be re-placed exactly once. The
        // work list and dedup set are reusable scratch, taken out of
        // `self` so the recursive case (a re-placement program failing
        // too) sees fresh buffers.
        let mut seen = std::mem::take(&mut self.failure_seen);
        let mut victims = std::mem::take(&mut self.failure_scratch);
        seen.clear();
        victims.clear();
        victims.extend(
            self.refs[block.0 as usize]
                .iter()
                .filter(|r| {
                    self.index
                        .get(r.key.0, r.key.1)
                        .and_then(|e| e.segs.get(r.seg_no as usize))
                        .is_some_and(|s| s.block == block && s.page == page)
                })
                .map(|r| (r.key, r.seg_no))
                .filter(|v| seen.insert(*v)),
        );
        for &(key, seg_no) in &victims {
            let Some(entry) = self.index.get(key.0, key.1) else {
                continue;
            };
            let seg = entry.segs[seg_no as usize];
            self.dec_valid(block, seg.alloc as u64);
            self.stats.replaced_after_failure += 1;
            let (new_loc, _) = self
                .append_segment(now, key, seg_no, seg.alloc, seg.raw, false)?
                .ok_or(KvError::Internal {
                    what: "no space to re-place data after a program failure",
                })?;
            if let Some(entry) = self.index.get_mut(key.0, key.1) {
                entry.segs[seg_no as usize] = new_loc;
            }
        }
        self.failure_seen = seen;
        self.failure_scratch = victims;
        Ok(())
    }

    fn close_if_full(&mut self, block: BlockId, kind: StreamKind) {
        if self.flash.written_pages(block) >= self.flash.geometry().pages_per_block {
            if self.state[block.0 as usize] == BState::Open {
                self.state[block.0 as usize] = BState::Closed;
                // A block becomes a victim candidate the moment it
                // closes; push its first accounting snapshot.
                if !self.legacy_gc_scan {
                    self.victims.note(
                        block,
                        self.valid_bytes[block.0 as usize],
                        self.flash.erase_count(block),
                    );
                }
            }
            self.stream_mut(kind).active.retain(|&b| b != block);
        }
    }

    fn stream(&self, kind: StreamKind) -> &AppendStream {
        match kind {
            StreamKind::Data => &self.data,
            StreamKind::Gc => &self.gc,
        }
    }

    fn stream_mut(&mut self, kind: StreamKind) -> &mut AppendStream {
        match kind {
            StreamKind::Data => &mut self.data,
            StreamKind::Gc => &mut self.gc,
        }
    }

    /// Picks the next block to program for a stream (round-robin across
    /// its active set, growing the set up to a die-spread target).
    /// `Ok(None)` when the device is physically out of programmable
    /// blocks.
    fn pick_block(&mut self, now: SimTime, kind: StreamKind) -> Result<Option<BlockId>, KvError> {
        let g = *self.flash.geometry();
        let die_planes = (g.dies() * g.planes_per_die) as usize;
        // One open block per die-plane where the block budget allows:
        // hash-scattered appends stripe across the whole array, which is
        // what gives the KV side its parallelism at high queue depth.
        // Tiny test geometries cap the open set so GC still has victims.
        let budget = (self.data_blocks as usize / 4).max(1);
        let target = match kind {
            StreamKind::Data => die_planes.min(budget),
            StreamKind::Gc => die_planes
                .min(8)
                .min((self.data_blocks as usize / 8).max(1)),
        };
        let need_alloc = {
            let s = self.stream(kind);
            s.active.len() < target
        };
        if need_alloc {
            if let Some(b) = self.alloc_block(now)? {
                self.state[b.0 as usize] = BState::Open;
                self.stream_mut(kind).active.push_back(b);
            }
        }
        let s = self.stream_mut(kind);
        let Some(b) = s.active.pop_front() else {
            return Ok(None);
        };
        s.active.push_back(b);
        Ok(Some(b))
    }

    /// Pops a free block, running foreground GC first when the hard
    /// watermark is hit. Returns `Ok(None)` only when truly exhausted
    /// (the caller fails the store as device-full — capacity checks
    /// should prevent this).
    fn alloc_block(&mut self, now: SimTime) -> Result<Option<BlockId>, KvError> {
        if !self.in_gc
            && (self.free_count <= self.config.gc_hard_free_blocks
                || (self.free_count as u64 <= self.config.gc_hard_free_blocks as u64 + 1
                    && self.free_pages() <= self.hard_watermark_pages()))
        {
            self.foreground_gc(now)?;
        }
        // The last few free blocks are the collector's working space:
        // handing them to a data stream would wedge GC (nothing to copy
        // into) the moment the device fills.
        let reserve = (self.config.gc_hard_free_blocks / 2).max(2);
        if !self.in_gc && self.free_blocks() <= reserve {
            return Ok(None);
        }
        for i in 0..self.free.len() {
            let q = (self.alloc_cursor + i) % self.free.len();
            if let Some(b) = self.free[q].pop_front() {
                self.free_count -= 1;
                self.alloc_cursor = (q + 1) % self.free.len();
                return Ok(Some(b));
            }
        }
        Ok(None)
    }

    /// Physically programmable pages remaining: free blocks plus the
    /// unwritten tails of open blocks. GC progress is measured in these.
    fn free_pages(&self) -> u64 {
        let ppb = self.flash.geometry().pages_per_block as u64;
        let mut pages = self.free_blocks() as u64 * ppb;
        for b in self.data.active.iter().chain(self.gc.active.iter()) {
            pages += ppb - self.flash.written_pages(*b) as u64;
        }
        pages
    }

    /// Pages below which the device is considered at its hard watermark.
    fn hard_watermark_pages(&self) -> u64 {
        (self.config.gc_hard_free_blocks as u64 + 1) * self.flash.geometry().pages_per_block as u64
    }

    /// Synchronous GC: reclaim until the hard watermark clears, or until
    /// two victim cycles produce no *net* free-page gain (fully valid,
    /// tightly packed victims cannot be compacted — the write will then
    /// consume the remaining free blocks or fail as device-full).
    /// Returns when the reclamation finished; the caller stalls until
    /// then.
    fn foreground_gc(&mut self, now: SimTime) -> Result<SimTime, KvError> {
        self.stats.foreground_gc_events += 1;
        self.in_gc = true;
        // The GC flag must come back down even if the collector trips an
        // internal-invariant error on the way out.
        let reclaimed = self.foreground_gc_inner(now);
        self.in_gc = false;
        let t = reclaimed?;
        if t > now {
            self.stats.stall_time += t.since(now);
        }
        Ok(t)
    }

    fn foreground_gc_inner(&mut self, now: SimTime) -> Result<SimTime, KvError> {
        let mut t = now;
        let mut futile = 0u32;
        // Hysteresis: reclaim past the trigger so back-to-back writes do
        // not re-enter foreground GC immediately.
        let target = self.hard_watermark_pages() + 2 * self.flash.geometry().pages_per_block as u64;
        while self.free_pages() <= target && futile < 2 {
            // Zero-copy wins first: erase fully dead closed blocks.
            t = self.erase_dead_blocks(t)?;
            if self.free_pages() > target {
                break;
            }
            // Drop a victim handle that went stale (erased + reused).
            if self
                .gc_victim
                .is_some_and(|v| self.state[v.0 as usize] != BState::Closed)
            {
                self.gc_victim = None;
            }
            if self.gc_victim.is_none() && !self.select_victim() {
                break;
            }
            let before = self.free_pages();
            let v = self.gc_victim.ok_or(KvError::Internal {
                what: "GC victim selected just above",
            })?;
            // Drain the victim completely, then erase it.
            let mut guard = 0u32;
            while self.valid_bytes[v.0 as usize] > 0 {
                if !self.gc_copy_one(t)? {
                    break;
                }
                guard += 1;
                if guard > 1_000_000 {
                    return Err(KvError::Internal {
                        what: "GC failed to drain its victim block",
                    });
                }
            }
            if self.valid_bytes[v.0 as usize] == 0 {
                t = self.erase_victim(t)?;
            } else {
                // Copy path exhausted (no space to move data into):
                // abandon this victim so cheaper wins can be retried.
                // Its heap entry was consumed at selection, so re-note
                // it — the queue must keep every closed block's current
                // snapshot for the lazy-invalidation invariant to hold.
                if !self.legacy_gc_scan {
                    self.victims
                        .note(v, self.valid_bytes[v.0 as usize], self.flash.erase_count(v));
                }
                self.gc_victim = None;
                futile += 1;
                continue;
            }
            if self.free_pages() > before {
                futile = 0;
            } else {
                futile += 1;
            }
        }
        Ok(t)
    }

    /// Erases every closed block that holds no valid data (zero-copy
    /// reclaim). Returns the completion of the last erase.
    ///
    /// Candidates come from the victim queue's incremental zero-valid
    /// list rather than a full block scan; draining them in ascending
    /// block-id order reproduces the scan's erase order exactly.
    fn erase_dead_blocks(&mut self, now: SimTime) -> Result<SimTime, KvError> {
        let sticky = self.gc_victim.take();
        let mut t = now;
        if self.legacy_gc_scan {
            for b in 0..self.state.len() {
                if self.state[b] == BState::Closed && self.valid_bytes[b] == 0 {
                    self.gc_victim = Some(BlockId(b as u32));
                    t = self.erase_victim(t)?;
                }
            }
        } else {
            let candidates = {
                let state = &self.state;
                let valid = &self.valid_bytes;
                self.victims.take_zero_valid(|b| {
                    state[b.0 as usize] == BState::Closed && valid[b.0 as usize] == 0
                })
            };
            #[cfg(debug_assertions)]
            {
                let reference: Vec<u32> = (0..self.state.len() as u32)
                    .filter(|&b| {
                        self.state[b as usize] == BState::Closed
                            && self.valid_bytes[b as usize] == 0
                    })
                    .collect();
                debug_assert_eq!(
                    candidates, reference,
                    "zero-valid sweep diverged from reference scan"
                );
            }
            for &id in &candidates {
                self.gc_victim = Some(BlockId(id));
                t = self.erase_victim(t)?;
            }
            self.victims.recycle_zero_buf(candidates);
        }
        // Restore the in-progress victim only if this sweep did not just
        // erase it — a stale victim handle would later erase whatever
        // block reuses that id.
        self.gc_victim = sticky.filter(|v| self.state[v.0 as usize] == BState::Closed);
        Ok(t)
    }

    /// Copies one live segment off the current victim. Returns false when
    /// there is no work.
    fn gc_copy_one(&mut self, now: SimTime) -> Result<bool, KvError> {
        if self.gc_victim.is_none() && !self.select_victim() {
            return Ok(false);
        }
        let v = self.gc_victim.ok_or(KvError::Internal {
            what: "GC victim selected just above",
        })?;
        // Find the next still-live ref in the victim, keeping the segment
        // location the liveness probe already fetched.
        let live = loop {
            let Some(r) = self.refs[v.0 as usize].pop() else {
                break None;
            };
            let seg = self
                .index
                .get(r.key.0, r.key.1)
                .and_then(|e| e.segs.get(r.seg_no as usize))
                .copied();
            match seg {
                Some(s) if s.block == v => break Some((r, s)),
                _ => {}
            }
        };
        let Some((r, seg)) = live else {
            if self.valid_bytes[v.0 as usize] == 0 {
                self.erase_victim(now)?;
            } else {
                // Refs exhausted but bytes remain: accounting bug.
                return Err(KvError::Internal {
                    what: "GC victim holds valid bytes but no live refs",
                });
            }
            return Ok(false);
        };
        self.flash
            .read_page(
                now,
                PageAddr {
                    block: seg.block,
                    page: seg.page,
                },
                seg.raw as u64,
            )
            .map_err(|_| KvError::Internal {
                what: "GC read of a live segment rejected",
            })?;
        let was_gc = self.in_gc;
        self.in_gc = true; // route the re-append to the GC stream
        let appended = self.append_segment_retry(now, r.key, r.seg_no, seg.alloc, seg.raw, false);
        self.in_gc = was_gc;
        let Some((new_loc, _)) = appended? else {
            // Nowhere to move the data: put the ref back and give up.
            self.refs[v.0 as usize].push(r);
            return Ok(false);
        };
        self.dec_valid(v, seg.alloc as u64);
        let install = self
            .index
            .get_mut(r.key.0, r.key.1)
            .map(|entry| {
                // Only install our copy if the entry still points at the
                // victim: a program-failure handler may have re-placed it
                // while our append was in flight.
                if entry.segs[r.seg_no as usize] == seg {
                    entry.segs[r.seg_no as usize] = new_loc;
                    true
                } else {
                    false
                }
            })
            .unwrap_or(true);
        if !install {
            // Our freshly placed copy is redundant; uncount it.
            self.dec_valid(new_loc.block, new_loc.alloc as u64);
        }
        self.stats.gc_copied_segments += 1;
        Ok(true)
    }

    fn erase_victim(&mut self, now: SimTime) -> Result<SimTime, KvError> {
        let Some(v) = self.gc_victim.take() else {
            return Ok(now);
        };
        // Defense in depth: only closed blocks are erasable; a stale
        // victim handle must never take down a live block.
        if self.state[v.0 as usize] != BState::Closed {
            return Ok(now);
        }
        debug_assert_eq!(self.valid_bytes[v.0 as usize], 0);
        self.refs[v.0 as usize].clear();
        self.waste_bytes -= self.waste_per_block[v.0 as usize];
        self.waste_per_block[v.0 as usize] = 0;
        let r = self
            .flash
            .erase_block(now, v)
            .map_err(|_| KvError::Internal {
                what: "erase rejected on a closed victim block",
            })?;
        self.stats.gc_erases += 1;
        if r.failed {
            self.state[v.0 as usize] = BState::Dead;
            return Ok(r.done);
        }
        self.state[v.0 as usize] = BState::Free;
        let g = self.flash.geometry();
        let dp = (g.die_of(v) * g.planes_per_die + g.plane_of(v)) as usize;
        self.free[dp].push_back(v);
        self.free_count += 1;
        Ok(r.done)
    }

    /// Greedy victim selection among closed blocks: fewest valid bytes
    /// first, and only blocks whose erase would actually gain space
    /// (dead bytes + trapped waste of at least one page's payload) —
    /// copying a fully live block around is pure churn.
    ///
    /// Served incrementally from the [`VictimQueue`] (O(log n) amortized
    /// against the old O(blocks) scan); in debug builds every selection
    /// is checked against the retained reference scan, so the whole test
    /// suite doubles as a differential test.
    fn select_victim(&mut self) -> bool {
        let picked = if self.legacy_gc_scan {
            self.select_victim_reference()
        } else {
            let payload = self.config.page_payload_bytes as u64;
            let (state, valid, flash) = (&self.state, &self.valid_bytes, &self.flash);
            let picked = self.victims.pop_best(payload, |b| {
                let i = b.0 as usize;
                (state[i] == BState::Closed).then(|| {
                    let written = flash.written_pages(b) as u64;
                    (valid[i], flash.erase_count(b), written * payload - valid[i])
                })
            });
            debug_assert_eq!(
                picked,
                self.select_victim_reference(),
                "victim queue diverged from the reference greedy scan"
            );
            picked
        };
        match picked {
            Some(id) => {
                self.gc_victim = Some(id);
                true
            }
            None => false,
        }
    }

    /// The original O(blocks) greedy scan, kept as the executable
    /// specification: the legacy baseline mode runs it for real, and
    /// debug builds compare every queue selection against it. Preference
    /// order: fewest valid bytes, then least-worn, then lowest block id.
    fn select_victim_reference(&self) -> Option<BlockId> {
        let payload = self.config.page_payload_bytes as u64;
        let mut best: Option<(u64, BlockId)> = None;
        for b in 0..self.state.len() {
            if self.state[b] != BState::Closed {
                continue;
            }
            let written = self.flash.written_pages(BlockId(b as u32)) as u64;
            let gain = written * payload - self.valid_bytes[b];
            if gain < payload {
                continue;
            }
            let v = self.valid_bytes[b];
            // Greedy on valid bytes; ties go to the least-worn block (a
            // light static wear-leveling policy).
            let wear = self.flash.erase_count(BlockId(b as u32));
            if best.is_none_or(|(bv, bid): (u64, BlockId)| {
                v < bv || (v == bv && wear < self.flash.erase_count(bid))
            }) {
                best = Some((v, BlockId(b as u32)));
            }
        }
        best.map(|(_, id)| id)
    }

    /// Reads a blob's segments: the head first (it holds the offset
    /// table), continuations in parallel after it.
    fn read_segments(
        &mut self,
        t: SimTime,
        key: KeyId,
        segs: &[SegLoc],
    ) -> Result<SimTime, KvError> {
        self.drain_buffer(t);
        // A blob is served from the volatile buffer when it is tracked as
        // resident, or — mechanically — when any of its segments has not
        // reached flash yet (pending in an open page).
        let unprogrammed = segs
            .iter()
            .any(|s| self.flash.written_pages(s.block) <= s.page);
        if unprogrammed || self.buffer_resident.contains_key(&key) {
            self.stats.write_buffer_hits += 1;
            return Ok(t + SimDuration::from_micros(1));
        }
        let head = segs[0];
        let t_head = self.read_cached(t, head)?;
        let mut finish = t_head;
        for seg in &segs[1..] {
            finish = finish.max(self.read_cached(t_head, *seg)?);
        }
        Ok(finish)
    }

    /// Reads one segment through the controller's small page cache.
    fn read_cached(&mut self, t: SimTime, seg: SegLoc) -> Result<SimTime, KvError> {
        const READ_CACHE_PAGES: usize = 8;
        let page = (seg.block, seg.page);
        if self.read_cache.contains(&page) {
            return Ok(t + SimDuration::from_micros(2));
        }
        let done = self
            .flash
            .read_page(
                t,
                PageAddr {
                    block: seg.block,
                    page: seg.page,
                },
                seg.raw as u64,
            )
            .map_err(|_| KvError::Internal {
                what: "read rejected on an indexed live segment",
            })?;
        self.read_cache.push_back(page);
        if self.read_cache.len() > READ_CACHE_PAGES {
            self.read_cache.pop_front();
        }
        Ok(done)
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum StreamKind {
    Data,
    Gc,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dev() -> KvSsd {
        KvSsd::new(
            Geometry::small(),
            FlashTiming::pm983_like(),
            KvConfig::small(),
        )
    }

    fn key(i: u64) -> Vec<u8> {
        format!("key{i:013}").into_bytes() // 16 B keys
    }

    #[test]
    fn store_then_retrieve_round_trips() {
        let mut d = dev();
        let t = d
            .store(
                SimTime::ZERO,
                b"hello-key",
                Payload::from_bytes(vec![7; 100]),
            )
            .unwrap();
        let got = d.retrieve(t, b"hello-key").unwrap();
        assert_eq!(got.value.unwrap().as_bytes().unwrap(), &[7u8; 100][..]);
        assert!(got.at > t);
    }

    #[test]
    fn missing_key_is_not_found_not_error() {
        let mut d = dev();
        let got = d.retrieve(SimTime::ZERO, b"never-stored").unwrap();
        assert!(got.value.is_none());
        assert_eq!(d.stats().not_found, 1);
        assert_eq!(d.stats().bloom_negatives, 1, "bloom should short-circuit");
    }

    #[test]
    fn key_and_value_limits_enforced() {
        let mut d = dev();
        assert!(matches!(
            d.store(SimTime::ZERO, b"abc", Payload::synthetic(1, 0)),
            Err(KvError::KeyTooShort { .. })
        ));
        let long = vec![b'x'; 256];
        assert!(matches!(
            d.store(SimTime::ZERO, &long, Payload::synthetic(1, 0)),
            Err(KvError::KeyTooLong { .. })
        ));
        assert!(matches!(
            d.store(
                SimTime::ZERO,
                b"okkey",
                Payload::synthetic(3 * 1024 * 1024, 0)
            ),
            Err(KvError::ValueTooLarge { .. })
        ));
    }

    #[test]
    fn zero_length_value_is_legal() {
        let mut d = dev();
        let t = d
            .store(SimTime::ZERO, b"empty-val", Payload::from_bytes(vec![]))
            .unwrap();
        let got = d.retrieve(t, b"empty-val").unwrap();
        assert_eq!(got.value.unwrap().len(), 0);
    }

    #[test]
    fn overwrite_replaces_and_keeps_count() {
        let mut d = dev();
        let t = d
            .store(SimTime::ZERO, b"kkkk1", Payload::from_bytes(vec![1]))
            .unwrap();
        let t = d
            .store(t, b"kkkk1", Payload::from_bytes(vec![2, 2]))
            .unwrap();
        assert_eq!(d.len(), 1);
        let got = d.retrieve(t, b"kkkk1").unwrap();
        assert_eq!(got.value.unwrap().len(), 2);
    }

    #[test]
    fn delete_removes_and_reports() {
        let mut d = dev();
        let t = d
            .store(SimTime::ZERO, b"gone1", Payload::from_bytes(vec![9]))
            .unwrap();
        let (t, existed) = d.delete(t, b"gone1").unwrap();
        assert!(existed);
        let (_, exists) = d.exist(t, b"gone1").unwrap();
        assert!(!exists);
        let (_, existed_again) = d.delete(t, b"gone1").unwrap();
        assert!(!existed_again);
        assert_eq!(d.len(), 0);
        assert_eq!(d.space().user_bytes, 0);
    }

    #[test]
    fn exist_answers_both_ways() {
        let mut d = dev();
        let t = d
            .store(SimTime::ZERO, b"here1", Payload::synthetic(10, 0))
            .unwrap();
        assert!(d.exist(t, b"here1").unwrap().1);
        assert!(!d.exist(t, b"there").unwrap().1);
    }

    #[test]
    fn space_accounting_tracks_padding() {
        let mut d = dev();
        d.store(
            SimTime::ZERO,
            b"tiny-key-0000000",
            Payload::synthetic(50, 0),
        )
        .unwrap();
        let s = d.space();
        assert_eq!(s.user_bytes, 16 + 50);
        assert_eq!(s.allocated_bytes, 1024);
        assert!(s.amplification() > 15.0);
        assert_eq!(s.kvp_count, 1);
    }

    #[test]
    fn split_blob_stores_and_reads_back() {
        let mut d = dev();
        let big = Payload::synthetic(100 * 1024, 42);
        let t = d.store(SimTime::ZERO, b"big-blob", big.clone()).unwrap();
        assert_eq!(d.stats().split_stores, 1);
        let got = d.retrieve(t, b"big-blob").unwrap();
        assert_eq!(got.value.unwrap(), big);
    }

    #[test]
    fn split_blob_read_costs_more_than_small() {
        let mut d = dev();
        let t0 = d
            .store(SimTime::ZERO, b"small-one", Payload::synthetic(1024, 0))
            .unwrap();
        let t1 = d
            .store(t0, b"large-one", Payload::synthetic(100 * 1024, 0))
            .unwrap();
        let t1 = d.flush(t1).unwrap() + SimDuration::from_millis(10);
        d.drain_buffer(t1);
        self_clear_residency(&mut d);
        let small = d.retrieve(t1, b"small-one").unwrap();
        let large = d.retrieve(small.at, b"large-one").unwrap();
        assert!(large.at.since(small.at) > small.at.since(t1));
    }

    fn self_clear_residency(d: &mut KvSsd) {
        d.buffer_resident.clear();
    }

    #[test]
    fn iterator_walks_prefix() {
        let mut d = dev();
        let mut t = SimTime::ZERO;
        for i in 0..10u32 {
            t = d
                .store(
                    t,
                    format!("user{i:04}").as_bytes(),
                    Payload::synthetic(8, 0),
                )
                .unwrap();
        }
        t = d.store(t, b"sess0001", Payload::synthetic(8, 0)).unwrap();
        let (t, h) = d.iter_open(t, *b"user");
        let (t, keys) = d.iter_next(t, h, 100).unwrap();
        assert_eq!(keys.len(), 10);
        d.iter_close(t, h).unwrap();
        assert!(matches!(d.iter_next(t, h, 1), Err(KvError::BadIterator)));
    }

    #[test]
    fn kvp_limit_enforced() {
        let mut cfg = KvConfig::small();
        cfg.max_kvps = 5;
        let mut d = KvSsd::new(Geometry::small(), FlashTiming::pm983_like(), cfg);
        let mut t = SimTime::ZERO;
        for i in 0..5u64 {
            t = d.store(t, &key(i), Payload::synthetic(10, 0)).unwrap();
        }
        assert!(matches!(
            d.store(t, &key(5), Payload::synthetic(10, 0)),
            Err(KvError::IndexFull { .. })
        ));
        // Overwrites are still allowed at the limit.
        d.store(t, &key(0), Payload::synthetic(10, 0)).unwrap();
    }

    #[test]
    fn device_full_when_capacity_exhausted() {
        let mut d = dev();
        let cap = d.space().capacity_bytes;
        let huge = 1 << 20; // 1 MiB values
        let mut t = SimTime::ZERO;
        let mut stored = 0u64;
        for i in 0..(cap / huge + 4) {
            match d.store(t, &key(i), Payload::synthetic(huge as u32, 0)) {
                Ok(done) => {
                    t = done;
                    stored += 1;
                }
                Err(KvError::DeviceFull) => break,
                Err(e) => panic!("unexpected error: {e}"),
            }
        }
        assert!(stored > 0);
        assert!(
            d.space().allocated_bytes <= d.space().capacity_bytes,
            "accounting must respect capacity"
        );
    }

    #[test]
    fn updates_drive_gc() {
        let mut d = dev();
        let cap = d.space().capacity_bytes;
        let vsize = 4096u32;
        let n = (cap * 8 / 10) / (vsize as u64 + 64); // ~80 % fill
        let mut t = SimTime::ZERO;
        for i in 0..n {
            t = d.store(t, &key(i), Payload::synthetic(vsize, 0)).unwrap();
        }
        // Rewrite everything pseudo-randomly.
        let mut idx = 1u64;
        for _ in 0..n * 2 {
            idx = idx.wrapping_mul(6364136223846793005).wrapping_add(1) % n;
            t = d.store(t, &key(idx), Payload::synthetic(vsize, 0)).unwrap();
        }
        assert!(d.stats().gc_erases > 0, "GC must have reclaimed blocks");
        assert!(d.stats().gc_copied_segments > 0);
        assert_eq!(d.len(), n);
        // Every key still readable.
        for i in (0..n).step_by(7) {
            let got = d.retrieve(t, &key(i)).unwrap();
            assert!(got.value.is_some(), "key {i} lost after GC");
        }
    }

    #[test]
    fn sequential_and_random_store_latency_match() {
        // The Fig. 2 core claim: hashing erases sequentiality. Sequential
        // and random key orders must cost the same on the KV device.
        let run = |seq: bool| {
            let mut d = dev();
            let mut t = SimTime::ZERO;
            let n = 500u64;
            let mut total = SimDuration::ZERO;
            for i in 0..n {
                let k = if seq { i } else { (i * 2_654_435_761) % n };
                let done = d.store(t, &key(k), Payload::synthetic(512, 0)).unwrap();
                total += done.since(t);
                t = done;
            }
            total / n
        };
        let s = run(true);
        let r = run(false);
        let ratio = s.as_nanos() as f64 / r.as_nanos() as f64;
        assert!(
            (0.9..1.1).contains(&ratio),
            "seq {s} vs rand {r} (ratio {ratio})"
        );
    }

    #[test]
    fn hash_collisions_keep_both_records() {
        // Force the collision path by storing through the raw maps: two
        // different keys are astronomically unlikely to collide in both
        // hashes, so verify the (hash, fp) keying directly instead.
        let mut d = dev();
        let t = d
            .store(SimTime::ZERO, b"key-a-01", Payload::synthetic(1, 1))
            .unwrap();
        let t = d.store(t, b"key-b-02", Payload::synthetic(2, 2)).unwrap();
        assert_eq!(d.len(), 2);
        assert_eq!(d.retrieve(t, b"key-a-01").unwrap().value.unwrap().len(), 1);
        assert_eq!(d.retrieve(t, b"key-b-02").unwrap().value.unwrap().len(), 2);
    }

    #[test]
    fn flush_is_idempotent() {
        let mut d = dev();
        let t = d
            .store(SimTime::ZERO, b"kkkkk", Payload::synthetic(100, 0))
            .unwrap();
        let f1 = d.flush(t).unwrap();
        let f2 = d.flush(f1).unwrap();
        assert!(f1 > t);
        assert_eq!(f2, f1);
    }

    #[test]
    fn fault_injection_preserves_data() {
        use kvssd_flash::FaultPlan;
        let flash = FlashDevice::with_faults(
            Geometry::small(),
            FlashTiming::pm983_like(),
            FaultPlan {
                program_fail_one_in: Some(8),
                erase_fail_one_in: None,
            },
        );
        let mut d = KvSsd::over(flash, KvConfig::small());
        let mut t = SimTime::ZERO;
        let n = 600u64;
        for i in 0..n {
            t = d.store(t, &key(i), Payload::synthetic(2048, i)).unwrap();
        }
        t = d.flush(t).unwrap();
        assert!(d.flash().stats().program_failures > 0);
        for i in 0..n {
            let got = d.retrieve(t, &key(i)).unwrap();
            assert_eq!(
                got.value,
                Some(Payload::synthetic(2048, i)),
                "key {i} lost after program failure"
            );
        }
    }

    /// Drives one device through a randomized GC-heavy workload and
    /// returns a behavior digest: final virtual time plus every piece of
    /// state the victim policy can influence.
    fn gc_workload_digest(legacy: bool, seed: u64) -> (SimTime, u64, u64, u64, u64, u32) {
        use kvssd_sim::DeterministicRng;
        let mut d = dev();
        d.set_legacy_gc_scan(legacy);
        let mut rng = DeterministicRng::seed_from(seed);
        let cap = d.space().capacity_bytes;
        let n = (cap * 7 / 10) / (4096 + 64);
        let mut t = SimTime::ZERO;
        for i in 0..n {
            t = d.store(t, &key(i), Payload::synthetic(4096, i)).unwrap();
        }
        // Random overwrites, deletes, and re-inserts keep valid counts
        // churning so victim selection runs constantly.
        for _ in 0..n * 3 {
            let i = rng.below(n);
            match rng.below(10) {
                0..=6 => {
                    t = d
                        .store(t, &key(i), Payload::synthetic(4096, i ^ 1))
                        .unwrap();
                }
                7..=8 => {
                    t = d.delete(t, &key(i)).unwrap().0;
                }
                _ => {
                    t = d.retrieve(t, &key(i)).unwrap().at;
                }
            }
        }
        t = d.flush(t).unwrap();
        let s = d.stats();
        assert!(s.gc_erases > 0, "workload must exercise GC");
        (
            t,
            s.gc_erases,
            s.gc_copied_segments,
            s.foreground_gc_events,
            d.len(),
            d.free_blocks(),
        )
    }

    #[test]
    fn victim_queue_matches_legacy_scan_end_to_end() {
        // The tentpole's differential test: the incremental victim queue
        // must reproduce the legacy full scan's behavior *exactly* —
        // same victims in the same order means same erase timings, same
        // copy traffic, and therefore an identical virtual-time history.
        for seed in [7, 1931, 0xDEC0DE] {
            let legacy = gc_workload_digest(true, seed);
            let queued = gc_workload_digest(false, seed);
            assert_eq!(legacy, queued, "behavior diverged at seed {seed}");
        }
    }
}

#[cfg(test)]
mod gc_probe {
    use super::*;

    #[test]
    #[ignore]
    fn probe_update_gc() {
        let mut d = KvSsd::new(
            Geometry::small(),
            FlashTiming::pm983_like(),
            KvConfig::small(),
        );
        let cap = d.space().capacity_bytes;
        let vsize = 4096u32;
        let n = (cap * 8 / 10) / (vsize as u64 + 64);
        let mut t = SimTime::ZERO;
        for i in 0..n {
            t = d
                .store(
                    t,
                    format!("key{i:013}").as_bytes(),
                    Payload::synthetic(vsize, 0),
                )
                .unwrap();
        }
        println!(
            "fill done: n={n} alloc={} waste={} cap={} free_blocks={} free_pages={} programs={} erases={} copies={}",
            d.allocated_bytes, d.waste_bytes, cap, d.free_blocks(), d.free_pages(),
            d.flash.stats().programs, d.stats.gc_erases, d.stats.gc_copied_segments
        );
        let mut w: Vec<(usize, u64)> = d
            .waste_per_block
            .iter()
            .cloned()
            .enumerate()
            .filter(|&(_, v)| v > 0)
            .collect();
        w.sort_by_key(|&(_, v)| std::cmp::Reverse(v));
        println!("top waste blocks: {:?}", &w[..w.len().min(8)]);
        let mut idx = 1u64;
        for j in 0..n * 2 {
            idx = idx.wrapping_mul(6364136223846793005).wrapping_add(1) % n;
            match d.store(
                t,
                format!("key{idx:013}").as_bytes(),
                Payload::synthetic(vsize, 0),
            ) {
                Ok(d2) => t = d2,
                Err(e) => {
                    println!(
                        "FAIL at update {j}: {e}; alloc={} waste={} cap={} free_blocks={} free_pages={} erases={} copies={} fg={}",
                        d.allocated_bytes, d.waste_bytes, cap, d.free_blocks(), d.free_pages(),
                        d.stats.gc_erases, d.stats.gc_copied_segments, d.stats.foreground_gc_events
                    );
                    let payload = d.config.page_payload_bytes as u64;
                    let mut per_state = kvssd_sim::PrehashedMap::<String, u32>::default();
                    for b in 0..d.state.len() {
                        *per_state.entry(format!("{:?}", d.state[b])).or_insert(0u32) += 1;
                        if d.state[b] == BState::Closed {
                            let written = d.flash.written_pages(BlockId(b as u32)) as u64;
                            println!(
                                "  closed b{b}: written={written} valid={} gain={}",
                                d.valid_bytes[b],
                                written * payload - d.valid_bytes[b]
                            );
                        }
                    }
                    println!("  states: {per_state:?} victim={:?}", d.gc_victim);
                    println!("  data active: {:?}", d.data.active);
                    println!("  gc active: {:?}", d.gc.active);
                    return;
                }
            }
        }
        println!(
            "all updates ok: erases={} copies={}",
            d.stats.gc_erases, d.stats.gc_copied_segments
        );
    }
}

#[cfg(test)]
mod power_cycle_tests {
    use super::*;

    #[test]
    fn power_cycle_preserves_every_acknowledged_write() {
        let mut d = KvSsd::new(
            Geometry::small(),
            FlashTiming::pm983_like(),
            KvConfig::small(),
        );
        let mut t = SimTime::ZERO;
        for i in 0..300u64 {
            let key = format!("pwr.{i:08}");
            t = d
                .store(t, key.as_bytes(), Payload::synthetic(777, i))
                .unwrap();
        }
        let up = d.power_cycle(t).unwrap();
        assert!(up > t, "mount takes time");
        for i in 0..300u64 {
            let key = format!("pwr.{i:08}");
            let got = d.retrieve(up, key.as_bytes()).unwrap();
            assert_eq!(got.value, Some(Payload::synthetic(777, i)), "lost {i}");
        }
    }

    #[test]
    fn mount_cost_grows_with_flash_resident_index() {
        let mut cfg = KvConfig::small();
        cfg.index_dram_bytes = 16 * 1024; // overflow quickly
        let mut d = KvSsd::new(Geometry::small(), FlashTiming::pm983_like(), cfg);
        let mut t = SimTime::ZERO;
        let t_small_mount = {
            let mut d2 = KvSsd::new(
                Geometry::small(),
                FlashTiming::pm983_like(),
                KvConfig::small(),
            );
            let t2 = d2
                .store(SimTime::ZERO, b"only-key", Payload::synthetic(8, 0))
                .unwrap();
            d2.power_cycle(t2).unwrap().since(t2)
        };
        for i in 0..2_000u64 {
            let key = format!("mnt.{i:08}");
            t = d
                .store(t, key.as_bytes(), Payload::synthetic(64, i))
                .unwrap();
        }
        let big_mount = d.power_cycle(t).unwrap().since(t);
        assert!(
            big_mount > t_small_mount,
            "overflowed index must mount slower ({big_mount} vs {t_small_mount})"
        );
    }
}
