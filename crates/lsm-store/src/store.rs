//! The LSM store: write path, read path, flush, and leveled compaction.

use std::collections::BTreeMap;

use kvssd_core::hash::key_hash;
use kvssd_core::Payload;
use kvssd_host_stack::{ExtFs, FileId, HostCpu, LruCache, PageCache};
use kvssd_sim::{PrehashedMap, PrehashedSet, SimDuration, SimTime};

use crate::config::LsmConfig;
use crate::sst::{merge_runs, SstData, SstMeta};

/// One live entry returned by [`LsmStore::scan`]: owned key + payload.
pub type ScanEntry = (Box<[u8]>, Payload);

/// Store counters.
#[derive(Debug, Clone, Default)]
pub struct LsmStats {
    /// Puts (inserts/updates/deletes) applied.
    pub puts: u64,
    /// Gets served.
    pub gets: u64,
    /// Memtable flushes.
    pub flushes: u64,
    /// Compactions run.
    pub compactions: u64,
    /// Puts that stalled on L0 pressure.
    pub stalls: u64,
    /// Total stall time.
    pub stall_time: SimDuration,
    /// Bytes written by flushes.
    pub bytes_flushed: u64,
    /// Bytes written by compactions.
    pub bytes_compacted: u64,
    /// Gets answered from the memtable.
    pub gets_from_memtable: u64,
    /// Block-cache hits.
    pub block_cache_hits: u64,
    /// Block-cache misses.
    pub block_cache_misses: u64,
}

/// The RocksDB-like store (see crate docs). Owns its filesystem (and
/// through it the block device), its caches, and its host CPU pool.
#[derive(Debug)]
pub struct LsmStore {
    config: LsmConfig,
    cpu: HostCpu,
    bg_cpu: HostCpu,
    fs: ExtFs,
    page_cache: PageCache,
    block_cache: LruCache<(u64, u64)>,
    memtable: BTreeMap<Box<[u8]>, Option<Payload>>,
    memtable_bytes: u64,
    wal: FileId,
    levels: Vec<Vec<SstMeta>>,
    tables: PrehashedMap<FileId, SstData>,
    /// Completion horizon of the background flush/compaction worker.
    bg_done: SimTime,
    live_user_bytes: u64,
    live_keys: u64,
    stats: LsmStats,
}

impl LsmStore {
    /// Creates a store over a formatted filesystem.
    pub fn new(fs: ExtFs, config: LsmConfig) -> Self {
        config.validate();
        let mut cpu = HostCpu::new(config.host_cores);
        let bg_cpu = HostCpu::new(config.bg_threads);
        let mut fs = fs;
        let (_, wal) = fs.create(SimTime::ZERO, &mut cpu);
        LsmStore {
            page_cache: PageCache::new(config.page_cache_bytes),
            block_cache: LruCache::new(
                (config.block_cache_bytes / config.block_bytes).max(1) as usize
            ),
            memtable: BTreeMap::new(),
            memtable_bytes: 0,
            levels: vec![Vec::new()],
            tables: PrehashedMap::default(),
            bg_done: SimTime::ZERO,
            live_user_bytes: 0,
            live_keys: 0,
            stats: LsmStats::default(),
            wal,
            cpu,
            bg_cpu,
            fs,
            config,
        }
    }

    /// Store counters.
    pub fn stats(&self) -> &LsmStats {
        &self.stats
    }

    /// The filesystem (and device) underneath.
    pub fn fs(&self) -> &ExtFs {
        &self.fs
    }

    /// Foreground host CPU pool.
    pub fn cpu(&self) -> &HostCpu {
        &self.cpu
    }

    /// Total host CPU busy time, foreground plus background workers —
    /// what `dstat` would attribute to the store.
    pub fn cpu_busy_total(&self) -> SimDuration {
        self.cpu.busy_total() + self.bg_cpu.busy_total()
    }

    /// Live key count.
    pub fn len(&self) -> u64 {
        self.live_keys
    }

    /// True when no live keys exist.
    pub fn is_empty(&self) -> bool {
        self.live_keys == 0
    }

    /// Bytes of live user data (keys + values).
    pub fn user_bytes(&self) -> u64 {
        self.live_user_bytes
    }

    /// Bytes occupied on disk by SSTs and the WAL.
    pub fn disk_bytes(&self) -> u64 {
        let ssts: u64 = self.levels.iter().flatten().map(|m| m.size_bytes).sum();
        ssts + self.fs.size_of(self.wal).unwrap_or(0)
    }

    /// Inserts or updates a key.
    pub fn put(&mut self, now: SimTime, key: &[u8], value: Payload) -> SimTime {
        self.write(now, key, Some(value))
    }

    /// Deletes a key (writes a tombstone).
    pub fn delete(&mut self, now: SimTime, key: &[u8]) -> SimTime {
        self.write(now, key, None)
    }

    /// Point lookup. Returns (completion, value).
    pub fn get(&mut self, now: SimTime, key: &[u8]) -> (SimTime, Option<Payload>) {
        self.stats.gets += 1;
        let depth = (self.memtable.len().max(2) as f64).log2() as u64;
        let mut t = self.cpu.run(now, self.config.cost_lookup * depth.max(1));
        if let Some(v) = self.memtable.get(key) {
            self.stats.gets_from_memtable += 1;
            return (t, v.clone());
        }
        // L0 newest-first, then each deeper level.
        for lvl in 0..self.levels.len() {
            let metas = &self.levels[lvl];
            let candidates: Vec<usize> = if lvl == 0 {
                (0..metas.len()).rev().collect()
            } else {
                match metas.binary_search_by(|m| {
                    if m.max_key.as_ref() < key {
                        std::cmp::Ordering::Less
                    } else if m.min_key.as_ref() > key {
                        std::cmp::Ordering::Greater
                    } else {
                        std::cmp::Ordering::Equal
                    }
                }) {
                    Ok(i) => vec![i],
                    Err(_) => vec![],
                }
            };
            for i in candidates {
                let meta = &self.levels[lvl][i];
                if !meta.covers(key) {
                    continue;
                }
                t = self.cpu.run(t, self.config.cost_bloom);
                if !meta.bloom.may_contain(key_hash(key)) {
                    continue;
                }
                let file = meta.file;
                let (done, hit) = self.probe_table(t, file, key);
                t = done;
                if let Some(v) = hit {
                    return (t, v);
                }
            }
        }
        (t, None)
    }

    /// Range scan: up to `limit` live entries with keys >= `from`, in
    /// key order (the YCSB workload-E shape). Returns (completion,
    /// entries). Charges a block probe per visited table.
    pub fn scan(&mut self, now: SimTime, from: &[u8], limit: usize) -> (SimTime, Vec<ScanEntry>) {
        // Merge iterators across memtable and every level, newest wins.
        let mut t = now;
        let mut out: Vec<(Box<[u8]>, Payload)> = Vec::new();
        let mut shadowed: PrehashedSet<Box<[u8]>> = PrehashedSet::default();
        // Collect candidates (key-ordered walk over each source).
        let mut candidates: Vec<(Box<[u8]>, Option<Payload>, usize)> = Vec::new();
        for (k, v) in self
            .memtable
            .range::<[u8], _>((std::ops::Bound::Included(from), std::ops::Bound::Unbounded))
        {
            candidates.push((k.clone(), v.clone(), 0));
            if candidates.len() >= limit * 4 {
                break;
            }
        }
        let mut age = 1usize;
        for lvl in 0..self.levels.len() {
            let files: Vec<FileId> = self.levels[lvl]
                .iter()
                .filter(|m| m.max_key.as_ref() >= from)
                .map(|m| m.file)
                .collect();
            for file in files {
                let size = self.fs.size_of(file).expect("live SST");
                t = self.read_block(t, file, u64::MAX, size);
                let data = &self.tables[&file];
                let start = match data
                    .entries()
                    .binary_search_by(|(k, _)| k.as_ref().cmp(from))
                {
                    Ok(i) | Err(i) => i,
                };
                for (k, v) in data.entries().iter().skip(start).take(limit * 2) {
                    candidates.push((k.clone(), v.clone(), age));
                }
                age += 1;
            }
        }
        // Newest version per key wins; tombstones shadow.
        candidates.sort_by(|a, b| a.0.cmp(&b.0).then(a.2.cmp(&b.2)));
        for (k, v, _) in candidates {
            if out.len() >= limit {
                break;
            }
            if shadowed.contains(&k) {
                continue;
            }
            shadowed.insert(k.clone());
            if let Some(v) = v {
                t = self.cpu.run(t, self.config.cost_lookup);
                out.push((k, v));
            }
        }
        (t, out)
    }

    /// Forces the memtable out and waits for all background work — an
    /// end-of-phase barrier for experiments.
    pub fn flush_all(&mut self, now: SimTime) -> SimTime {
        if !self.memtable.is_empty() {
            self.flush_memtable(now);
        }
        self.run_compactions();
        self.bg_done.max(now)
    }

    // ----- internals -------------------------------------------------

    fn write(&mut self, now: SimTime, key: &[u8], value: Option<Payload>) -> SimTime {
        self.stats.puts += 1;
        let vlen = value.as_ref().map_or(0, Payload::len);
        let rec = key.len() as u64 + vlen + self.config.entry_overhead_bytes;
        // WAL append (buffered; fsync per write only if configured).
        let mut t = self
            .fs
            .append(now, &mut self.cpu, &mut self.page_cache, self.wal, rec)
            .expect("WAL append");
        if self.config.wal_fsync {
            t = self
                .fs
                .fsync(t, &mut self.cpu, self.wal)
                .expect("WAL fsync");
        }
        // Memtable insert.
        let depth = (self.memtable.len().max(2) as f64).log2() as u64;
        t = self.cpu.run(
            t,
            self.config.cost_memtable_insert + self.config.cost_lookup * depth,
        );
        // Live-data accounting needs the previous version's size.
        let old_len = self.peek(key).map(Payload::len);
        match (old_len, &value) {
            (None, Some(v)) => {
                self.live_keys += 1;
                self.live_user_bytes += key.len() as u64 + v.len();
            }
            (Some(ov), Some(nv)) => {
                self.live_user_bytes = self.live_user_bytes - ov + nv.len();
            }
            (Some(ov), None) => {
                self.live_keys -= 1;
                self.live_user_bytes -= key.len() as u64 + ov;
            }
            (None, None) => {}
        }
        let prev = self.memtable.insert(key.into(), value);
        let prev_bytes = prev
            .map(|p| key.len() as u64 + p.map_or(0, |v| v.len()) + self.config.entry_overhead_bytes)
            .unwrap_or(0);
        self.memtable_bytes = self.memtable_bytes - prev_bytes + rec;

        if self.memtable_bytes >= self.config.memtable_bytes {
            // Stall when the background worker is too far behind (the
            // L0-depth and pending-compaction-bytes stalls of RocksDB,
            // expressed as a completion-horizon lag) .
            let lagged = self.bg_done.saturating_since(t) > self.config.stall_lag;
            if lagged || self.levels[0].len() >= self.config.l0_stall_trigger {
                self.stats.stalls += 1;
                if self.bg_done > t {
                    self.stats.stall_time += self.bg_done.since(t);
                    t = self.bg_done;
                }
            }
            self.flush_memtable(t);
            self.run_compactions();
        }
        t
    }

    /// Functional lookup (no timing) — used for live-data accounting.
    fn peek(&self, key: &[u8]) -> Option<&Payload> {
        if let Some(v) = self.memtable.get(key) {
            return v.as_ref();
        }
        for (lvl, metas) in self.levels.iter().enumerate() {
            let iter: Box<dyn Iterator<Item = &SstMeta>> = if lvl == 0 {
                Box::new(metas.iter().rev())
            } else {
                Box::new(metas.iter())
            };
            for meta in iter {
                if !meta.covers(key) {
                    continue;
                }
                let data = &self.tables[&meta.file];
                if let Some(idx) = data.find(key) {
                    return data.entry(idx).1;
                }
            }
        }
        None
    }

    /// Reads one table's index + data block for `key`, via block cache,
    /// page cache, then device.
    fn probe_table(
        &mut self,
        now: SimTime,
        file: FileId,
        key: &[u8],
    ) -> (SimTime, Option<Option<Payload>>) {
        let data = &self.tables[&file];
        let idx = data.find(key);
        let size = self.fs.size_of(file).expect("SST exists");
        let entries = data.len() as u64;
        // Index block: cached as block u64::MAX.
        let mut t = now;
        t = self.read_block(t, file, u64::MAX, size);
        let Some(idx) = idx else {
            // Bloom false positive: the index probe already told us no.
            return (t, None);
        };
        let block_no = (idx as u64 * size / entries.max(1)) / self.config.block_bytes;
        t = self.read_block(t, file, block_no, size);
        t = self.cpu.run(t, self.config.cost_block_parse);
        let data = &self.tables[&file];
        let (_, v) = data.entry(idx);
        (t, Some(v.cloned()))
    }

    /// One block through block cache -> page cache -> device.
    fn read_block(&mut self, now: SimTime, file: FileId, block_no: u64, size: u64) -> SimTime {
        if self.block_cache.touch(&(file.0, block_no)) {
            self.stats.block_cache_hits += 1;
            return self.cpu.run(now, self.config.cost_lookup);
        }
        self.stats.block_cache_misses += 1;
        let offset = if block_no == u64::MAX {
            // Index block lives at the tail.
            (size / self.config.block_bytes).saturating_sub(1) * self.config.block_bytes
        } else {
            block_no * self.config.block_bytes
        };
        let offset = offset.min(size.saturating_sub(1));
        let len = self.config.block_bytes.min(size - offset);
        if len == 0 {
            return self.cpu.run(now, self.config.cost_lookup);
        }
        let t = self
            .fs
            .read(now, &mut self.cpu, &mut self.page_cache, file, offset, len)
            .expect("SST block read");
        self.block_cache.insert((file.0, block_no));
        t
    }

    /// Rotates the memtable into an L0 SST on the background worker.
    fn flush_memtable(&mut self, now: SimTime) {
        if self.memtable.is_empty() {
            return;
        }
        self.stats.flushes += 1;
        let entries: Vec<(Box<[u8]>, Option<Payload>)> =
            std::mem::take(&mut self.memtable).into_iter().collect();
        self.memtable_bytes = 0;
        let data = SstData::from_sorted(entries);
        let start = self.bg_done.max(now);
        let t = self.write_sst_chain(start, vec![data], 0, true);
        // WAL writeback + recycle.
        let t = self
            .fs
            .fsync(t, &mut self.bg_cpu, self.wal)
            .expect("WAL writeback");
        let t = self
            .fs
            .delete(t, &mut self.bg_cpu, &mut self.page_cache, self.wal)
            .expect("WAL delete");
        let (t, wal) = self.fs.create(t, &mut self.bg_cpu);
        self.wal = wal;
        self.bg_done = t;
    }

    /// Writes SST runs to `level`, returning the completion time.
    fn write_sst_chain(
        &mut self,
        start: SimTime,
        runs: Vec<SstData>,
        level: usize,
        is_flush: bool,
    ) -> SimTime {
        let mut t = start;
        while self.levels.len() <= level {
            self.levels.push(Vec::new());
        }
        for data in runs {
            if data.is_empty() {
                continue;
            }
            let size = data.user_bytes(self.config.entry_overhead_bytes);
            let cpu_work = self.config.cost_merge_entry * data.len() as u64;
            t = self.bg_cpu.run(t, cpu_work);
            let (t2, file) = self.fs.create(t, &mut self.bg_cpu);
            let t3 = self
                .fs
                .append(t2, &mut self.bg_cpu, &mut self.page_cache, file, size)
                .expect("SST write");
            t = self
                .fs
                .fsync(t3, &mut self.bg_cpu, file)
                .expect("SST fsync");
            if is_flush {
                self.stats.bytes_flushed += size;
            } else {
                self.stats.bytes_compacted += size;
            }
            let meta = SstMeta::describe(file, &data, size, self.config.bloom_bits_per_key);
            self.tables.insert(file, data);
            if level == 0 {
                self.levels[0].push(meta);
            } else {
                let pos = self.levels[level]
                    .binary_search_by(|m| m.min_key.cmp(&meta.min_key))
                    .unwrap_or_else(|e| e);
                self.levels[level].insert(pos, meta);
            }
        }
        t
    }

    /// Target size of level `i` (1-based levels).
    fn level_target(&self, level: usize) -> u64 {
        self.config.level_base_bytes
            * self
                .config
                .level_multiplier
                .pow(level.saturating_sub(1) as u32)
    }

    /// Runs compactions until no level violates its trigger.
    fn run_compactions(&mut self) {
        loop {
            if self.levels[0].len() >= self.config.l0_compaction_trigger {
                self.compact_l0();
                self.stats.compactions += 1;
                continue;
            }
            let over = (1..self.levels.len()).find(|&l| {
                let size: u64 = self.levels[l].iter().map(|m| m.size_bytes).sum();
                size > self.level_target(l)
            });
            match over {
                Some(l) if !self.levels[l].is_empty() => {
                    self.compact_level(l);
                    self.stats.compactions += 1;
                }
                _ => break,
            }
        }
    }

    fn compact_l0(&mut self) {
        let l0: Vec<SstMeta> = std::mem::take(&mut self.levels[0]);
        if self.levels.len() < 2 {
            self.levels.push(Vec::new());
        }
        let lo = l0
            .iter()
            .map(|m| m.min_key.clone())
            .min()
            .expect("L0 files");
        let hi = l0
            .iter()
            .map(|m| m.max_key.clone())
            .max()
            .expect("L0 files");
        let mut l1_in = Vec::new();
        let mut l1_keep = Vec::new();
        for m in std::mem::take(&mut self.levels[1]) {
            if m.overlaps(&lo, &hi) {
                l1_in.push(m);
            } else {
                l1_keep.push(m);
            }
        }
        self.levels[1] = l1_keep;
        // Newest first: L0 newest..oldest, then L1 (disjoint).
        let mut inputs: Vec<&SstMeta> = l0.iter().rev().collect();
        inputs.extend(l1_in.iter());
        self.merge_into(inputs, &l0, &l1_in, 1);
    }

    fn compact_level(&mut self, level: usize) {
        let src = self.levels[level].remove(0);
        while self.levels.len() <= level + 1 {
            self.levels.push(Vec::new());
        }
        let mut next_in = Vec::new();
        let mut next_keep = Vec::new();
        for m in std::mem::take(&mut self.levels[level + 1]) {
            if m.overlaps(&src.min_key, &src.max_key) {
                next_in.push(m);
            } else {
                next_keep.push(m);
            }
        }
        self.levels[level + 1] = next_keep;
        let srcs = vec![src];
        let mut inputs: Vec<&SstMeta> = srcs.iter().collect();
        inputs.extend(next_in.iter());
        self.merge_into(inputs, &srcs, &next_in, level + 1);
    }

    /// Merges `inputs` (newest first) into `out_level`, charging reads of
    /// every input, CPU merge work, writes of the outputs, and deleting
    /// (TRIM-ing) the inputs.
    fn merge_into(
        &mut self,
        inputs: Vec<&SstMeta>,
        owned_a: &[SstMeta],
        owned_b: &[SstMeta],
        out_level: usize,
    ) {
        let mut t = self.bg_done;
        // Read every input through the fs (sequential, page-cache aware).
        for m in &inputs {
            let size = self.fs.size_of(m.file).expect("input exists");
            if size > 0 {
                t = self
                    .fs
                    .read(t, &mut self.bg_cpu, &mut self.page_cache, m.file, 0, size)
                    .expect("compaction input read");
            }
        }
        let runs: Vec<&SstData> = inputs.iter().map(|m| &self.tables[&m.file]).collect();
        // Tombstones drop when merging into the bottom-most populated level.
        let bottom = (out_level + 1..self.levels.len()).all(|l| self.levels[l].is_empty());
        let merged = merge_runs(runs, bottom);
        // Split into target-sized output files.
        let mut outputs = Vec::new();
        let mut cur: Vec<(Box<[u8]>, Option<Payload>)> = Vec::new();
        let mut cur_bytes = 0u64;
        for (k, v) in merged {
            cur_bytes += k.len() as u64
                + v.as_ref().map_or(0, Payload::len)
                + self.config.entry_overhead_bytes;
            cur.push((k, v));
            if cur_bytes >= self.config.sst_target_bytes {
                outputs.push(SstData::from_sorted(std::mem::take(&mut cur)));
                cur_bytes = 0;
            }
        }
        if !cur.is_empty() {
            outputs.push(SstData::from_sorted(cur));
        }
        self.bg_done = t;
        let t = self.write_sst_chain(t, outputs, out_level, false);
        // Delete the inputs (whole-file TRIM on the device).
        let mut t = t;
        for m in owned_a.iter().chain(owned_b) {
            t = self
                .fs
                .delete(t, &mut self.bg_cpu, &mut self.page_cache, m.file)
                .expect("compaction input delete");
            self.tables.remove(&m.file);
            self.block_cache.remove_if(|&(f, _)| f == m.file.0);
        }
        self.bg_done = t;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kvssd_block_ftl::{BlockFtlConfig, BlockSsd};
    use kvssd_flash::{FlashTiming, Geometry};

    fn store() -> LsmStore {
        let g = Geometry {
            channels: 2,
            dies_per_channel: 2,
            planes_per_die: 2,
            blocks_per_plane: 16,
            pages_per_block: 16,
            page_bytes: 32 * 1024,
        };
        let dev = BlockSsd::new(g, FlashTiming::pm983_like(), BlockFtlConfig::pm983_like());
        LsmStore::new(ExtFs::format(dev), LsmConfig::tiny())
    }

    fn key(i: u64) -> Vec<u8> {
        format!("key{i:013}").into_bytes()
    }

    #[test]
    fn put_get_round_trips_in_memtable() {
        let mut s = store();
        let t = s.put(SimTime::ZERO, b"alpha", Payload::from_bytes(vec![1, 2]));
        let (_, v) = s.get(t, b"alpha");
        assert_eq!(v.unwrap().as_bytes().unwrap(), &[1, 2][..]);
        assert_eq!(s.stats().gets_from_memtable, 1);
    }

    #[test]
    fn get_missing_returns_none() {
        let mut s = store();
        let (_, v) = s.get(SimTime::ZERO, b"nothing");
        assert!(v.is_none());
    }

    #[test]
    fn flush_moves_data_to_sst_and_reads_still_work() {
        let mut s = store();
        let mut t = SimTime::ZERO;
        for i in 0..500u64 {
            t = s.put(t, &key(i), Payload::synthetic(256, i));
        }
        assert!(s.stats().flushes > 0, "memtable should have rotated");
        for i in (0..500).step_by(37) {
            let (t2, v) = s.get(t, &key(i));
            t = t2;
            assert_eq!(v, Some(Payload::synthetic(256, i)), "key {i}");
        }
    }

    #[test]
    fn updates_shadow_older_versions_across_flushes() {
        let mut s = store();
        let mut t = SimTime::ZERO;
        for i in 0..300u64 {
            t = s.put(t, &key(i), Payload::synthetic(256, 1));
        }
        for i in 0..300u64 {
            t = s.put(t, &key(i), Payload::synthetic(256, 2));
        }
        t = s.flush_all(t);
        for i in (0..300).step_by(41) {
            let (_, v) = s.get(t, &key(i));
            assert_eq!(v, Some(Payload::synthetic(256, 2)), "key {i}");
        }
        assert_eq!(s.len(), 300);
    }

    #[test]
    fn deletes_tombstone_across_levels() {
        let mut s = store();
        let mut t = SimTime::ZERO;
        for i in 0..200u64 {
            t = s.put(t, &key(i), Payload::synthetic(128, 0));
        }
        t = s.flush_all(t);
        t = s.delete(t, &key(7));
        t = s.flush_all(t);
        let (_, v) = s.get(t, &key(7));
        assert!(v.is_none());
        assert_eq!(s.len(), 199);
    }

    #[test]
    fn compaction_reduces_l0_and_trims_inputs() {
        let mut s = store();
        let mut t = SimTime::ZERO;
        for i in 0..3_000u64 {
            t = s.put(t, &key(i % 600), Payload::synthetic(256, i));
        }
        t = s.flush_all(t);
        assert!(s.stats().compactions > 0);
        assert!(
            s.levels[0].len() < s.config.l0_compaction_trigger,
            "L0 drained"
        );
        // Compaction deletes should have TRIMmed the device.
        assert!(s.fs().device().stats().host_writes > 0);
        let _ = t;
    }

    #[test]
    fn space_amplification_stays_modest_under_leveling() {
        let mut s = store();
        let mut t = SimTime::ZERO;
        for i in 0..4_000u64 {
            t = s.put(t, &key(i % 800), Payload::synthetic(300, i));
        }
        t = s.flush_all(t);
        let amp = s.disk_bytes() as f64 / s.user_bytes() as f64;
        // Leveled LSM space amp: ~1.1 steady state; allow slack for the
        // tiny config (paper quotes 1.11 worst case).
        assert!(amp < 2.5, "space amplification {amp}");
        assert_eq!(s.len(), 800);
        let _ = t;
    }

    #[test]
    fn stalls_appear_under_write_burst() {
        let mut s = store();
        // Open-loop burst: issue puts at fixed tiny intervals so the
        // background flush/compaction worker cannot keep up.
        let mut worst = SimDuration::ZERO;
        for i in 0..30_000u64 {
            let now = SimTime::from_nanos(i * 200);
            let done = s.put(now, &key(i % 2_000), Payload::synthetic(2048, i));
            worst = worst.max(done.since(now));
        }
        assert!(s.stats().flushes > 1);
        assert!(
            s.stats().stalls > 0,
            "write burst should stall ({} flushes)",
            s.stats().flushes
        );
        assert!(worst > SimDuration::from_millis(1), "worst {worst}");
    }

    #[test]
    fn scan_returns_ordered_live_range() {
        let mut s = store();
        let mut t = SimTime::ZERO;
        for i in 0..400u64 {
            t = s.put(t, &key(i), Payload::synthetic(100, i));
        }
        t = s.flush_all(t);
        t = s.delete(t, &key(105));
        t = s.put(t, &key(107), Payload::synthetic(100, 9999));
        let (t2, got) = s.scan(t, &key(100), 10);
        assert!(t2 > t);
        let keys: Vec<&[u8]> = got.iter().map(|(k, _)| k.as_ref()).collect();
        // 105 deleted; order preserved; newest version of 107 returned.
        assert_eq!(keys.len(), 10);
        assert_eq!(keys[0], key(100).as_slice());
        assert!(!keys.contains(&key(105).as_slice()));
        let v107 = got
            .iter()
            .find(|(k, _)| k.as_ref() == key(107).as_slice())
            .map(|(_, v)| v.clone());
        assert_eq!(v107, Some(Payload::synthetic(100, 9999)));
    }

    #[test]
    fn scan_from_end_is_empty() {
        let mut s = store();
        let t = s.put(SimTime::ZERO, b"aaa-key", Payload::synthetic(8, 0));
        let (_, got) = s.scan(t, b"zzz", 5);
        assert!(got.is_empty());
    }

    #[test]
    fn cpu_time_accumulates_per_put() {
        let mut s = store();
        let mut t = SimTime::ZERO;
        for i in 0..100u64 {
            t = s.put(t, &key(i), Payload::synthetic(64, 0));
        }
        assert!(s.cpu().busy_total() > SimDuration::from_micros(100));
        let _ = t;
    }
}

#[cfg(test)]
mod debug_probe {
    use super::*;
    use kvssd_block_ftl::{BlockFtlConfig, BlockSsd};
    use kvssd_flash::{FlashTiming, Geometry};

    #[test]
    #[ignore]
    fn probe_stall_dynamics() {
        let g = Geometry {
            channels: 2,
            dies_per_channel: 2,
            planes_per_die: 2,
            blocks_per_plane: 16,
            pages_per_block: 16,
            page_bytes: 32 * 1024,
        };
        let dev = BlockSsd::new(g, FlashTiming::pm983_like(), BlockFtlConfig::pm983_like());
        let mut s = LsmStore::new(ExtFs::format(dev), LsmConfig::tiny());
        for i in 0..30_000u64 {
            let now = SimTime::from_nanos(i * 200);
            let done = s.put(
                now,
                format!("key{:013}", i % 2000).as_bytes(),
                Payload::synthetic(2048, i),
            );
            if i % 5000 == 0 {
                println!(
                    "i={i} now={now} done={done} bg={} flushes={} stalls={}",
                    s.bg_done, s.stats.flushes, s.stats.stalls
                );
            }
        }
        println!(
            "final: flushes={} stalls={} compactions={}",
            s.stats.flushes, s.stats.stalls, s.stats.compactions
        );
    }
}
