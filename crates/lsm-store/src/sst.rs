//! Sorted string tables: in-memory functional form plus merge logic.
//!
//! An SST is a sorted run of `(key, value-or-tombstone)` entries. The
//! bytes live "on disk" via the filesystem (which tracks extents and
//! timing); the functional content lives here so reads are exact.

use kvssd_core::bloom::BloomFilter;
use kvssd_core::hash::key_hash;
use kvssd_core::Payload;
use kvssd_host_stack::FileId;

/// One table's sorted entries. `None` values are tombstones.
#[derive(Debug, Clone)]
pub struct SstData {
    entries: Vec<(Box<[u8]>, Option<Payload>)>,
}

impl SstData {
    /// Builds from entries that must already be sorted and unique.
    pub fn from_sorted(entries: Vec<(Box<[u8]>, Option<Payload>)>) -> Self {
        debug_assert!(entries.windows(2).all(|w| w[0].0 < w[1].0), "unsorted SST");
        SstData { entries }
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Binary-searches for a key; `Some(index)` on hit.
    pub fn find(&self, key: &[u8]) -> Option<usize> {
        self.entries
            .binary_search_by(|(k, _)| k.as_ref().cmp(key))
            .ok()
    }

    /// Entry at `idx`.
    pub fn entry(&self, idx: usize) -> (&[u8], Option<&Payload>) {
        let (k, v) = &self.entries[idx];
        (k, v.as_ref())
    }

    /// All entries (for merging).
    pub fn entries(&self) -> &[(Box<[u8]>, Option<Payload>)] {
        &self.entries
    }

    /// Smallest key.
    pub fn min_key(&self) -> &[u8] {
        &self.entries.first().expect("nonempty SST").0
    }

    /// Largest key.
    pub fn max_key(&self) -> &[u8] {
        &self.entries.last().expect("nonempty SST").0
    }

    /// Total user bytes (keys + live values).
    pub fn user_bytes(&self, overhead: u64) -> u64 {
        self.entries
            .iter()
            .map(|(k, v)| k.len() as u64 + v.as_ref().map_or(0, Payload::len) + overhead)
            .sum()
    }
}

/// Host-memory metadata of one on-disk SST.
#[derive(Debug)]
pub struct SstMeta {
    /// Backing file.
    pub file: FileId,
    /// Encoded size in bytes.
    pub size_bytes: u64,
    /// Entry count.
    pub entries: u64,
    /// Smallest key.
    pub min_key: Box<[u8]>,
    /// Largest key.
    pub max_key: Box<[u8]>,
    /// Per-table Bloom filter (filter block, kept cached as RocksDB
    /// pins filter blocks).
    pub bloom: BloomFilter,
}

impl SstMeta {
    /// Builds metadata for `data` backed by `file`.
    pub fn describe(file: FileId, data: &SstData, size_bytes: u64, bloom_bits: u32) -> Self {
        let mut bloom = BloomFilter::new(data.len() as u64, bloom_bits);
        for (k, _) in data.entries() {
            bloom.insert(key_hash(k));
        }
        SstMeta {
            file,
            size_bytes,
            entries: data.len() as u64,
            min_key: data.min_key().into(),
            max_key: data.max_key().into(),
            bloom,
        }
    }

    /// True when `key` falls inside this table's key range.
    pub fn covers(&self, key: &[u8]) -> bool {
        self.min_key.as_ref() <= key && key <= self.max_key.as_ref()
    }

    /// True when this table's range overlaps `[lo, hi]`.
    pub fn overlaps(&self, lo: &[u8], hi: &[u8]) -> bool {
        self.min_key.as_ref() <= hi && lo <= self.max_key.as_ref()
    }
}

/// Merges sorted runs (newest first) into one run, dropping shadowed
/// versions. Tombstones are kept unless `drop_tombstones` (bottom level).
pub fn merge_runs(runs: Vec<&SstData>, drop_tombstones: bool) -> Vec<(Box<[u8]>, Option<Payload>)> {
    // Newest-first priority: on equal keys, the earliest run wins.
    let mut cursors: Vec<(usize, usize)> = runs.iter().map(|_| (0, 0)).collect();
    for (i, c) in cursors.iter_mut().enumerate() {
        c.0 = i;
    }
    let mut out: Vec<(Box<[u8]>, Option<Payload>)> = Vec::new();
    loop {
        // Find the smallest current key; ties resolved to newest run.
        let mut best: Option<(usize, &[u8])> = None;
        for &(run, pos) in &cursors {
            if pos >= runs[run].len() {
                continue;
            }
            let k = runs[run].entries()[pos].0.as_ref();
            best = match best {
                None => Some((run, k)),
                Some((brun, bk)) => {
                    if k < bk || (k == bk && run < brun) {
                        Some((run, k))
                    } else {
                        Some((brun, bk))
                    }
                }
            };
        }
        let Some((winner, key)) = best else { break };
        let key = key.to_vec().into_boxed_slice();
        let (_, v) = &runs[winner].entries()[cursors[winner].1];
        if !(drop_tombstones && v.is_none()) {
            out.push((key.clone(), v.clone()));
        }
        // Advance every run past this key.
        for c in &mut cursors {
            let run = &runs[c.0];
            while c.1 < run.len() && run.entries()[c.1].0 == key {
                c.1 += 1;
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kv(k: &str, v: Option<&str>) -> (Box<[u8]>, Option<Payload>) {
        (
            k.as_bytes().into(),
            v.map(|s| Payload::from_bytes(s.as_bytes().to_vec())),
        )
    }

    fn sst(pairs: &[(&str, Option<&str>)]) -> SstData {
        SstData::from_sorted(pairs.iter().map(|&(k, v)| kv(k, v)).collect())
    }

    #[test]
    fn find_and_entry() {
        let s = sst(&[("a", Some("1")), ("c", Some("3"))]);
        assert_eq!(s.find(b"a"), Some(0));
        assert_eq!(s.find(b"b"), None);
        let (k, v) = s.entry(1);
        assert_eq!(k, b"c");
        assert_eq!(v.unwrap().as_bytes().unwrap(), b"3");
    }

    #[test]
    fn meta_covers_and_overlaps() {
        let s = sst(&[("b", Some("1")), ("f", Some("2"))]);
        let m = SstMeta::describe(FileId(1), &s, 100, 10);
        assert!(m.covers(b"d"));
        assert!(!m.covers(b"a"));
        assert!(m.overlaps(b"a", b"c"));
        assert!(!m.overlaps(b"g", b"z"));
        assert_eq!(m.entries, 2);
    }

    #[test]
    fn bloom_rejects_absent_keys() {
        let s = sst(&[("key1", Some("v")), ("key2", Some("v"))]);
        let m = SstMeta::describe(FileId(1), &s, 100, 10);
        assert!(m.bloom.may_contain(key_hash(b"key1")));
        // Absent keys are almost always rejected.
        let rejected = (0..100)
            .filter(|i| !m.bloom.may_contain(key_hash(format!("zz{i}").as_bytes())))
            .count();
        assert!(rejected > 90);
    }

    #[test]
    fn merge_newest_wins() {
        let newer = sst(&[("a", Some("new")), ("b", Some("b1"))]);
        let older = sst(&[("a", Some("old")), ("c", Some("c1"))]);
        let merged = merge_runs(vec![&newer, &older], false);
        assert_eq!(merged.len(), 3);
        assert_eq!(
            merged[0].1.as_ref().unwrap().as_bytes().unwrap(),
            b"new",
            "newer run must shadow older"
        );
    }

    #[test]
    fn merge_keeps_or_drops_tombstones() {
        let newer = sst(&[("a", None)]);
        let older = sst(&[("a", Some("old")), ("b", Some("b1"))]);
        let kept = merge_runs(vec![&newer, &older], false);
        assert_eq!(kept.len(), 2);
        assert!(kept[0].1.is_none(), "tombstone shadows older value");
        let dropped = merge_runs(vec![&newer, &older], true);
        assert_eq!(dropped.len(), 1);
        assert_eq!(dropped[0].0.as_ref(), b"b");
    }

    #[test]
    fn merge_of_disjoint_runs_concatenates() {
        let a = sst(&[("a", Some("1")), ("b", Some("2"))]);
        let b = sst(&[("x", Some("3")), ("y", Some("4"))]);
        let merged = merge_runs(vec![&a, &b], false);
        let keys: Vec<&[u8]> = merged.iter().map(|(k, _)| k.as_ref()).collect();
        assert_eq!(keys, vec![&b"a"[..], b"b", b"x", b"y"]);
    }

    #[test]
    fn user_bytes_counts_live_data() {
        let s = sst(&[("aa", Some("xyz")), ("bb", None)]);
        // 2+3 + 2+0 user, plus 2 * overhead.
        assert_eq!(s.user_bytes(10), 2 + 3 + 2 + 20);
    }
}
