//! LSM store configuration (RocksDB-flavored defaults, scaled).

use kvssd_sim::SimDuration;

/// LSM tuning knobs. Defaults mirror RocksDB's as the paper used it,
/// scaled to the 4 GiB device (the real runs used 64 MB memtables on a
/// 3.84 TB device; everything here shrinks by the same ~1000x as the
/// substrate, except the block cache — the paper pinned that to 10 MB
/// explicitly, so it stays 10 MB).
#[derive(Debug, Clone, Copy)]
pub struct LsmConfig {
    /// Memtable size that triggers a flush.
    pub memtable_bytes: u64,
    /// L0 file count that triggers compaction into L1.
    pub l0_compaction_trigger: usize,
    /// L0 file count at which writes stall behind compaction.
    pub l0_stall_trigger: usize,
    /// Target size of L1; each deeper level is `level_multiplier` larger.
    pub level_base_bytes: u64,
    /// Growth factor between levels.
    pub level_multiplier: u64,
    /// Target SST file size written by flushes and compactions.
    pub sst_target_bytes: u64,
    /// Data block size within SSTs (read granularity).
    pub block_bytes: u64,
    /// Block cache capacity (the paper's experiments pin this to 10 MB).
    pub block_cache_bytes: u64,
    /// OS page cache available to this store's files. The paper's hosts
    /// had 192 GB (6 GB for macro runs); scaled ~1000x.
    pub page_cache_bytes: u64,
    /// Bloom filter bits per key per SST.
    pub bloom_bits_per_key: u32,
    /// fsync the WAL on every write (RocksDB default is no).
    pub wal_fsync: bool,
    /// Writes stall when the background flush/compaction worker's
    /// completion horizon lags the foreground by more than this
    /// (RocksDB's pending-compaction-bytes stall, expressed in time).
    pub stall_lag: SimDuration,
    /// Host cores available to foreground operations.
    pub host_cores: usize,
    /// Dedicated background threads (flush + compaction workers).
    pub bg_threads: usize,
    /// Approximate per-entry overhead bytes in WAL and SST encodings.
    pub entry_overhead_bytes: u64,
    /// CPU cost of a memtable insert (skiplist walk + node write).
    pub cost_memtable_insert: SimDuration,
    /// CPU cost of a memtable/SST point lookup step.
    pub cost_lookup: SimDuration,
    /// CPU cost of a Bloom filter probe.
    pub cost_bloom: SimDuration,
    /// CPU cost to parse/verify one data block on read.
    pub cost_block_parse: SimDuration,
    /// CPU cost per entry merged during flush/compaction.
    pub cost_merge_entry: SimDuration,
}

impl LsmConfig {
    /// Scaled RocksDB-like defaults (see type docs).
    pub fn rocksdb_like() -> Self {
        LsmConfig {
            memtable_bytes: 8 * 1024 * 1024,
            l0_compaction_trigger: 4,
            l0_stall_trigger: 12,
            level_base_bytes: 32 * 1024 * 1024,
            level_multiplier: 10,
            sst_target_bytes: 8 * 1024 * 1024,
            block_bytes: 4096,
            block_cache_bytes: 10 * 1024 * 1024,
            page_cache_bytes: 192 * 1024 * 1024,
            bloom_bits_per_key: 10,
            wal_fsync: false,
            stall_lag: SimDuration::from_millis(20),
            host_cores: 8,
            bg_threads: 2,
            entry_overhead_bytes: 20,
            cost_memtable_insert: SimDuration::from_micros(2),
            cost_lookup: SimDuration::from_nanos(700),
            cost_bloom: SimDuration::from_nanos(500),
            cost_block_parse: SimDuration::from_micros(2),
            cost_merge_entry: SimDuration::from_nanos(400),
        }
    }

    /// The 6 GB-host macro configuration (paper: hosts "reconfigured to
    /// 6GB for certain macro-level experiments"), scaled: a small page
    /// cache so reads actually hit the device.
    pub fn rocksdb_like_small_host() -> Self {
        LsmConfig {
            page_cache_bytes: 6 * 1024 * 1024,
            ..Self::rocksdb_like()
        }
    }

    /// Tiny configuration for unit tests: small memtable and levels so
    /// flushes and compactions happen within a few hundred puts.
    pub fn tiny() -> Self {
        LsmConfig {
            memtable_bytes: 64 * 1024,
            level_base_bytes: 256 * 1024,
            sst_target_bytes: 64 * 1024,
            block_cache_bytes: 64 * 1024,
            page_cache_bytes: 256 * 1024,
            ..Self::rocksdb_like()
        }
    }

    /// Validates internal consistency.
    ///
    /// # Panics
    ///
    /// Panics on contradictory settings.
    pub fn validate(&self) {
        assert!(self.l0_compaction_trigger >= 1);
        assert!(self.l0_stall_trigger > self.l0_compaction_trigger);
        assert!(self.level_multiplier >= 2);
        assert!(self.sst_target_bytes >= self.block_bytes);
        assert!(self.host_cores >= 1);
        assert!(self.bg_threads >= 1);
    }
}

impl Default for LsmConfig {
    fn default() -> Self {
        Self::rocksdb_like()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_validate() {
        LsmConfig::rocksdb_like().validate();
        LsmConfig::rocksdb_like_small_host().validate();
        LsmConfig::tiny().validate();
    }

    #[test]
    fn block_cache_is_papers_10mb() {
        assert_eq!(
            LsmConfig::rocksdb_like().block_cache_bytes,
            10 * 1024 * 1024
        );
    }

    #[test]
    #[should_panic]
    fn stall_below_trigger_rejected() {
        let mut c = LsmConfig::rocksdb_like();
        c.l0_stall_trigger = c.l0_compaction_trigger;
        c.validate();
    }
}
