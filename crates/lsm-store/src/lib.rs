//! A RocksDB-like LSM-tree key-value store on the host stack.
//!
//! This is the paper's primary block-SSD baseline: "RocksDB on an ext4
//! file system and a block-SSD" with a deliberately small **10 MB block
//! cache** (Sec. IV, Fig. 2). The implementation carries the mechanisms
//! the comparison depends on:
//!
//! * a write path of WAL append + memtable insert (cheap per-op, heavy
//!   on host CPU relative to the KV API — the 13x CPU headline),
//! * memtable flushes into L0 SSTs and **leveled compaction**, whose
//!   sequential reads/writes and whole-file deletes (fs TRIM) keep the
//!   block-SSD's garbage collector idle (Fig. 6a),
//! * **write stalls** when L0 grows faster than compaction drains it —
//!   the long insert tail KV-SSD beats (Fig. 2a),
//! * a read path of memtable -> L0 (newest first) -> L1.. with per-SST
//!   Bloom filters, the 10 MB block cache, and the OS page cache
//!   (Fig. 2c, where RocksDB *wins* against KV-SSD).
//!
//! Functional state (which key maps to which value) is exact; I/O and
//! CPU time flow through `kvssd-host-stack` onto the shared block-SSD.
//!
//! # Example
//!
//! ```
//! use kvssd_block_ftl::{BlockFtlConfig, BlockSsd};
//! use kvssd_core::Payload;
//! use kvssd_flash::{FlashTiming, Geometry};
//! use kvssd_host_stack::ExtFs;
//! use kvssd_lsm_store::{LsmConfig, LsmStore};
//! use kvssd_sim::SimTime;
//!
//! let device = BlockSsd::new(Geometry::small(), FlashTiming::pm983_like(),
//!                            BlockFtlConfig::pm983_like());
//! let mut db = LsmStore::new(ExtFs::format(device), LsmConfig::tiny());
//! let t = db.put(SimTime::ZERO, b"k1", Payload::from_bytes(b"v1".to_vec()));
//! let (_, v) = db.get(t, b"k1");
//! assert_eq!(v.unwrap().as_bytes().unwrap(), b"v1");
//! ```

pub mod config;
pub mod sst;
pub mod store;

pub use config::LsmConfig;
pub use store::{LsmStats, LsmStore};
