//! A lightweight item parser on top of the lexer: extracts `fn` / `impl`
//! / `use` items and call sites per file, without building a full AST.
//!
//! This is the symbol layer the graph rules stand on. It is deliberately
//! approximate — no type information, no macro expansion — but it is
//! *structurally* faithful: brace depths are tracked exactly (the lexer
//! already stripped strings and comments), so function bodies, `impl`
//! block ownership, and `use`-rename scopes are attributed correctly.
//! The resolution layer ([`crate::graph`]) compensates for the missing
//! type information by resolving bare names conservatively.

use crate::lexer::{Lexed, Tok, TokKind};

/// One `fn` item (free function, inherent or trait method).
#[derive(Debug, Clone)]
pub struct FnDef {
    /// The function's name.
    pub name: String,
    /// The `impl` target type when defined inside an `impl` block
    /// (`impl Stopwatch { fn start... }` → `Some("Stopwatch")`; for
    /// trait impls this is the *self* type, not the trait).
    pub owner: Option<String>,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// Token index range of the body (empty for bodyless trait decls).
    pub body: std::ops::Range<usize>,
    /// Call sites inside the body, in source order.
    pub calls: Vec<Call>,
}

/// One call site inside a function body.
#[derive(Debug, Clone)]
pub struct Call {
    /// Path segments as written (`kvssd_bench::env_config` →
    /// `["kvssd_bench", "env_config"]`; a method call `x.tick()` →
    /// `["tick"]`). Aliases are unresolved here.
    pub path: Vec<String>,
    /// True for `.name(...)` receiver calls.
    pub method: bool,
    /// 1-based source line.
    pub line: u32,
}

/// The symbols one file contributes to the workspace graph.
#[derive(Debug, Clone, Default)]
pub struct FileSyms {
    /// Every `fn` item, in source order.
    pub fns: Vec<FnDef>,
    /// `use` bindings: local alias → full path segments
    /// (`use a::b as c` → `("c", ["a", "b"])`).
    pub uses: Vec<(String, Vec<String>)>,
}

/// Keywords that can directly precede `(` or `[` without being callees
/// or indexable expressions — used to reject `let [a, b] = ...` patterns
/// and `return (x)` parens as call/index sites.
pub const KEYWORDS: &[&str] = &[
    "as", "box", "break", "const", "continue", "crate", "dyn", "else", "enum", "extern", "fn",
    "for", "if", "impl", "in", "let", "loop", "match", "mod", "move", "mut", "pub", "ref",
    "return", "self", "static", "struct", "super", "trait", "type", "unsafe", "use", "where",
    "while", "yield",
];

fn is_keyword(s: &str) -> bool {
    KEYWORDS.contains(&s)
}

/// Parses the item structure of one lexed file.
pub fn parse_items(lexed: &Lexed) -> FileSyms {
    let toks = &lexed.toks;
    let mut out = FileSyms::default();
    let mut depth = 0u32;
    // Innermost-first stacks: (depth the block opened at, payload).
    let mut fn_stack: Vec<(u32, usize)> = Vec::new();
    let mut impl_stack: Vec<(u32, String)> = Vec::new();
    let mut pending_fn: Option<(String, u32)> = None;
    let mut pending_impl: Option<String> = None;

    let mut i = 0usize;
    while i < toks.len() {
        let t = &toks[i];
        match t.kind {
            TokKind::Punct if t.s == "{" => {
                depth += 1;
                if let Some((name, line)) = pending_fn.take() {
                    let owner = impl_stack.last().map(|(_, o)| o.clone());
                    out.fns.push(FnDef {
                        name,
                        owner,
                        line,
                        body: i + 1..i + 1, // end patched at the closing brace
                        calls: Vec::new(),
                    });
                    fn_stack.push((depth, out.fns.len() - 1));
                } else if let Some(owner) = pending_impl.take() {
                    impl_stack.push((depth, owner));
                }
            }
            TokKind::Punct if t.s == "}" => {
                if let Some((d, idx)) = fn_stack.last().copied() {
                    if d == depth {
                        out.fns[idx].body.end = i;
                        fn_stack.pop();
                    }
                }
                if let Some((d, _)) = impl_stack.last() {
                    if *d == depth {
                        impl_stack.pop();
                    }
                }
                depth = depth.saturating_sub(1);
            }
            TokKind::Punct if t.s == ";" => {
                // Bodyless trait method declaration: record the def with
                // an empty body so callers can still resolve to it.
                if let Some((name, line)) = pending_fn.take() {
                    let owner = impl_stack.last().map(|(_, o)| o.clone());
                    out.fns.push(FnDef {
                        name,
                        owner,
                        line,
                        body: i..i,
                        calls: Vec::new(),
                    });
                }
            }
            TokKind::Ident if t.s == "fn" => {
                // `fn Name` is a definition; `fn(` is a fn-pointer type.
                if let Some(n) = toks.get(i + 1) {
                    if n.kind == TokKind::Ident {
                        pending_fn = Some((n.s.to_string(), t.line));
                        i += 2;
                        continue;
                    }
                }
            }
            // With a fn signature pending, `impl` is return/argument
            // position (`-> impl Iterator`), not an impl block.
            TokKind::Ident if t.s == "impl" && pending_fn.is_none() => {
                if let Some(owner) = impl_target(toks, i + 1) {
                    pending_impl = Some(owner);
                }
            }
            TokKind::Ident if t.s == "trait" => {
                // Trait declarations own their method (default) bodies
                // the same way impls do: `Transport::request`.
                if let Some(n) = toks.get(i + 1) {
                    if n.kind == TokKind::Ident {
                        pending_impl = Some(n.s.to_string());
                    }
                }
            }
            TokKind::Ident if t.s == "use" && depth == 0 => {
                i = parse_use(toks, i + 1, &mut out.uses);
                continue;
            }
            TokKind::Ident if !is_keyword(t.s) => {
                // Call-site detection, attributed to the innermost open fn.
                if let Some((_, fn_idx)) = fn_stack.last().copied() {
                    let after_fn_kw = i > 0 && toks[i - 1].is_ident("fn");
                    let path_start = i == 0 || !toks[i - 1].is_punct("::");
                    if !after_fn_kw && path_start {
                        if let Some((call, next)) = scan_call(toks, i) {
                            out.fns[fn_idx].calls.push(call);
                            i = next;
                            continue;
                        }
                    }
                }
            }
            _ => {}
        }
        i += 1;
    }
    out
}

/// Extracts the self-type name of an `impl` header starting just past
/// the `impl` keyword: the last path segment before `{`, taking the
/// `for`-side type in trait impls and skipping generic argument lists.
fn impl_target(toks: &[Tok], mut i: usize) -> Option<String> {
    let mut angle = 0i64;
    let mut last_ident: Option<&str> = None;
    let mut after_generics = false;
    while i < toks.len() {
        let t = &toks[i];
        if t.is_punct("<") {
            angle += 1;
        } else if t.is_punct(">") {
            angle -= 1;
            after_generics = true;
        } else if angle == 0 {
            if t.is_punct("{") || t.is_punct(";") {
                return last_ident.map(str::to_string);
            }
            if t.is_ident("for") {
                // Trait impl: restart capture on the self type.
                last_ident = None;
            } else if t.is_ident("where") {
                return last_ident.map(str::to_string);
            } else if t.kind == TokKind::Ident && !is_keyword(t.s) {
                // `Foo<T>` — don't let generic params overwrite the
                // path's head once a `<...>` list closed.
                if !(after_generics && last_ident.is_some()) {
                    last_ident = Some(t.s);
                }
                after_generics = false;
            }
        }
        i += 1;
    }
    last_ident.map(str::to_string)
}

/// Parses a `use` declaration starting just past the `use` keyword;
/// returns the token index past the terminating `;`. Appends
/// (alias, full-path) bindings, flattening `{...}` groups and applying
/// `as` renames. Glob imports contribute nothing.
fn parse_use(toks: &[Tok], mut i: usize, out: &mut Vec<(String, Vec<String>)>) -> usize {
    fn tree(
        toks: &[Tok],
        mut i: usize,
        prefix: &[String],
        out: &mut Vec<(String, Vec<String>)>,
    ) -> usize {
        let mut path: Vec<String> = prefix.to_vec();
        while i < toks.len() {
            let t = &toks[i];
            if t.kind == TokKind::Ident && t.s == "as" {
                if let Some(alias) = toks.get(i + 1) {
                    out.push((alias.s.to_string(), path.clone()));
                }
                return i + 2;
            } else if t.kind == TokKind::Ident {
                if t.s == "self" {
                    // `use a::b::{self}` binds `b`.
                } else {
                    path.push(t.s.to_string());
                }
                i += 1;
            } else if t.is_punct("::") {
                if toks.get(i + 1).is_some_and(|n| n.is_punct("{")) {
                    i += 2;
                    while i < toks.len() && !toks[i].is_punct("}") {
                        i = tree(toks, i, &path, out);
                        if toks.get(i).is_some_and(|n| n.is_punct(",")) {
                            i += 1;
                        }
                    }
                    return i + 1; // past `}`
                }
                i += 1;
            } else if t.is_punct("*") {
                return i + 1;
            } else {
                break; // `,` `}` `;`
            }
        }
        if let Some(last) = path.last() {
            if path.len() > prefix.len() || !prefix.is_empty() {
                out.push((last.clone(), path.clone()));
            }
        }
        i
    }
    i = tree(toks, i, &[], out);
    while i < toks.len() && !toks[i].is_punct(";") {
        i += 1;
    }
    i + 1
}

/// Tries to read a call expression whose path starts at token `i`
/// (an identifier). Returns the call and the index just past the
/// opening `(` when `i` begins `path::to::callee(...)`,
/// `callee::<T>(...)`, or `.callee(...)`; `None` otherwise (macro
/// invocations, struct literals, plain expressions).
fn scan_call<'a>(toks: &[Tok<'a>], i: usize) -> Option<(Call, usize)> {
    let method = i > 0 && toks[i - 1].is_punct(".");
    let line = toks[i].line;
    let mut path = vec![toks[i].s.to_string()];
    let mut j = i + 1;
    if !method {
        while toks.get(j).is_some_and(|t| t.is_punct("::"))
            && toks
                .get(j + 1)
                .is_some_and(|t| t.kind == TokKind::Ident && !is_keyword(t.s))
        {
            path.push(toks[j + 1].s.to_string());
            j += 2;
        }
    }
    // Optional turbofish between the callee and its argument list.
    if toks.get(j).is_some_and(|t| t.is_punct("::"))
        && toks.get(j + 1).is_some_and(|t| t.is_punct("<"))
    {
        let mut angle = 0i64;
        let mut k = j + 1;
        while k < toks.len() {
            if toks[k].is_punct("<") {
                angle += 1;
            } else if toks[k].is_punct(">") {
                angle -= 1;
                if angle == 0 {
                    break;
                }
            }
            k += 1;
        }
        j = k + 1;
    }
    if toks.get(j).is_some_and(|t| t.is_punct("(")) {
        Some((Call { path, method, line }, j + 1))
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn parse(src: &str) -> FileSyms {
        parse_items(&lex(src))
    }

    #[test]
    fn free_fns_and_methods_get_owners() {
        let src = "pub fn free() {}\nimpl Stopwatch { pub fn start() -> Self { tick() } }\n";
        let s = parse(src);
        assert_eq!(s.fns.len(), 2);
        assert_eq!(s.fns[0].name, "free");
        assert_eq!(s.fns[0].owner, None);
        assert_eq!(s.fns[1].name, "start");
        assert_eq!(s.fns[1].owner.as_deref(), Some("Stopwatch"));
        assert_eq!(s.fns[1].calls.len(), 1);
        assert_eq!(s.fns[1].calls[0].path, ["tick"]);
    }

    #[test]
    fn trait_impls_attribute_to_the_self_type() {
        let src = "impl fmt::Display for KvError { fn fmt(&self, f: &mut F) -> R { f.pad() } }\n\
                   impl<'a> Iterator for IterBuckets<'a> { fn next(&mut self) -> Option<u32> { None } }\n";
        let s = parse(src);
        assert_eq!(s.fns[0].owner.as_deref(), Some("KvError"));
        assert_eq!(s.fns[1].owner.as_deref(), Some("IterBuckets"));
    }

    #[test]
    fn nested_fns_and_closing_braces_restore_context() {
        let src =
            "impl A { fn outer() { fn inner() { leaf(); } inner(); } }\nfn after() { tail() }\n";
        let s = parse(src);
        let names: Vec<&str> = s.fns.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, ["outer", "inner", "after"]);
        assert_eq!(s.fns[1].calls[0].path, ["leaf"]);
        assert_eq!(s.fns[0].calls[0].path, ["inner"]);
        assert_eq!(s.fns[2].owner, None);
        assert_eq!(s.fns[2].calls[0].path, ["tail"]);
    }

    #[test]
    fn qualified_method_and_turbofish_calls_are_captured() {
        let src = "fn f() { kvssd_bench::env_config(\"X\"); Stopwatch::start(); sw.elapsed_secs(); parse::<u64>(s); }";
        let s = parse(src);
        let calls = &s.fns[0].calls;
        assert_eq!(calls[0].path, ["kvssd_bench", "env_config"]);
        assert!(!calls[0].method);
        assert_eq!(calls[1].path, ["Stopwatch", "start"]);
        assert_eq!(calls[2].path, ["elapsed_secs"]);
        assert!(calls[2].method);
        assert_eq!(calls[3].path, ["parse"]);
    }

    #[test]
    fn use_trees_bind_aliases_groups_and_renames() {
        let src = "use kvssd_bench::walltime::Stopwatch;\n\
                   use kvssd_bench::env_config as cfg;\n\
                   use a::b::{c, d as e, f::g};\n\
                   use h::*;\n";
        let s = parse(src);
        let find = |alias: &str| {
            s.uses
                .iter()
                .find(|(a, _)| a == alias)
                .map(|(_, p)| p.join("::"))
        };
        assert_eq!(
            find("Stopwatch").as_deref(),
            Some("kvssd_bench::walltime::Stopwatch")
        );
        assert_eq!(find("cfg").as_deref(), Some("kvssd_bench::env_config"));
        assert_eq!(find("c").as_deref(), Some("a::b::c"));
        assert_eq!(find("e").as_deref(), Some("a::b::d"));
        assert_eq!(find("g").as_deref(), Some("a::b::f::g"));
        assert!(!s.uses.iter().any(|(a, _)| a == "*" || a == "h"));
    }

    #[test]
    fn fn_pointer_types_and_macros_are_not_defs_or_calls() {
        let src = "fn f(cb: fn(u32) -> u32) { println!(\"x\"); cb(1); }";
        let s = parse(src);
        assert_eq!(s.fns.len(), 1);
        let calls = &s.fns[0].calls;
        assert_eq!(calls.len(), 1, "{calls:?}");
        assert_eq!(calls[0].path, ["cb"]);
    }

    #[test]
    fn bodyless_trait_decls_are_still_defs() {
        let src = "trait Transport { fn request(&mut self, at: SimTime) -> Delivery; }";
        let s = parse(src);
        assert_eq!(s.fns.len(), 1);
        assert_eq!(s.fns[0].name, "request");
        assert!(s.fns[0].calls.is_empty());
        assert_eq!(s.fns[0].owner.as_deref(), Some("Transport"));
    }
}
