//! A small Rust lexer: just enough to strip comments and string/char
//! literals correctly so rule needles only ever match real code tokens.
//!
//! Full `syn`-style parsing is deliberately out of scope — a parser
//! dependency would break the offline-green invariant this crate exists
//! to defend. The lexer handles the lexical constructs that defeat
//! grep-based linting:
//!
//! * line comments (`//`, `///`, `//!`) and **nested** block comments;
//! * string literals with escapes, byte strings, and raw strings with
//!   arbitrary `#` fencing (`r"…"`, `r#"…"#`, `br##"…"##`);
//! * char literals vs. lifetimes (`'a'` vs. `'a`);
//! * `kvlint:` suppression pragmas, extracted from comment text while
//!   the comments themselves are dropped.
//!
//! Output is a token stream of identifiers and punctuation (with `::`
//! fused), each tagged with its 1-based source line.

/// Token kind. String/char literals and comments never become tokens.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// An identifier or keyword.
    Ident,
    /// One punctuation glyph (`::` is fused into a single token).
    Punct,
    /// A numeric literal (`42`, `0x52_4554_5259`, `1.5e3`, `100u64`) —
    /// kept as a token so graph rules can read domain constants.
    Lit,
}

/// One token, borrowing its text from the source.
#[derive(Debug, Clone, Copy)]
pub struct Tok<'a> {
    /// 1-based source line.
    pub line: u32,
    /// Kind (ident vs punctuation).
    pub kind: TokKind,
    /// The token text.
    pub s: &'a str,
}

impl Tok<'_> {
    /// True when this is the identifier `s`.
    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == TokKind::Ident && self.s == s
    }

    /// True when this is the punctuation `s`.
    pub fn is_punct(&self, s: &str) -> bool {
        self.kind == TokKind::Punct && self.s == s
    }

    /// For a [`TokKind::Lit`] integer literal, its numeric value:
    /// handles `0x`/`0o`/`0b` prefixes, `_` separators, and type
    /// suffixes. `None` for floats and malformed literals.
    pub fn int_value(&self) -> Option<u64> {
        if self.kind != TokKind::Lit || self.s.contains('.') {
            return None;
        }
        let s = self.s.replace('_', "");
        let (digits, radix) = match s.as_bytes() {
            [b'0', b'x' | b'X', ..] => (&s[2..], 16),
            [b'0', b'o' | b'O', ..] => (&s[2..], 8),
            [b'0', b'b' | b'B', ..] => (&s[2..], 2),
            _ => (&s[..], 10),
        };
        // Strip a type suffix (`u64`, `i32`, `usize`): digits end at the
        // first char that is not valid in this radix.
        let end = digits
            .find(|c: char| !c.is_digit(radix))
            .unwrap_or(digits.len());
        u64::from_str_radix(&digits[..end], radix).ok()
    }
}

/// A `kvlint: allow(<rule>) — <justification>` pragma found in a
/// comment. Validation (known rule, non-empty justification) happens in
/// the rule layer; the lexer only extracts the pieces.
#[derive(Debug, Clone)]
pub struct Pragma {
    /// 1-based line the pragma comment starts on.
    pub line: u32,
    /// The text between the parentheses (a rule name, hopefully).
    pub rule: String,
    /// Comment text after the closing parenthesis, separators stripped.
    pub justification: String,
}

/// Lexer output: the token stream plus extracted pragmas and the
/// comment geometry graph rules need.
#[derive(Debug, Default)]
pub struct Lexed<'a> {
    /// Identifier/punctuation/literal tokens in source order.
    pub toks: Vec<Tok<'a>>,
    /// Suppression pragmas found in comments.
    pub pragmas: Vec<Pragma>,
    /// Inclusive line ranges covered by comments, in source order.
    /// Used by `unsafe-requires-safety` to walk a comment run upward.
    pub comment_lines: Vec<(u32, u32)>,
    /// Lines on which a comment contains a `SAFETY:` marker.
    pub safety_lines: Vec<u32>,
}

impl Lexed<'_> {
    fn note_comment(&mut self, text: &str, start_line: u32, end_line: u32) {
        self.comment_lines.push((start_line, end_line));
        for (off, chunk) in text.split('\n').enumerate() {
            if chunk.contains("SAFETY:") {
                self.safety_lines.push(start_line + off as u32);
            }
        }
    }
}

/// Scans one comment's text for `kvlint:` pragmas (used for Rust
/// comments here and reused by the manifest scanner for `#` comments).
/// `line` is the line the comment text starts on; embedded newlines (in
/// block comments) advance the recorded pragma line.
///
/// Recognition is anchored: the pragma must start the comment line
/// (after comment decoration `/ * ! #` and whitespace). A `kvlint:`
/// mentioned mid-sentence in prose is documentation, not a pragma —
/// and a mis-anchored pragma still fails loudly, because the violation
/// it meant to excuse stays unsuppressed.
pub fn scan_comment_for_pragmas(text: &str, line: u32, out: &mut Vec<Pragma>) {
    for (off, chunk) in text.split('\n').enumerate() {
        let anchored = chunk.trim_start_matches(['/', '*', '!', '#', ' ', '\t']);
        let Some(rest) = anchored.strip_prefix("kvlint:") else {
            continue;
        };
        let rest = rest.trim_start();
        let Some(rest) = rest.strip_prefix("allow") else {
            // `kvlint:` followed by anything but `allow` — record as a
            // pragma with an unparsable rule so the rule layer can
            // reject it loudly instead of silently ignoring a typo.
            out.push(Pragma {
                line: line + off as u32,
                rule: rest.split_whitespace().next().unwrap_or("").to_string(),
                justification: String::new(),
            });
            continue;
        };
        let rest = rest.trim_start();
        let (rule, tail) = match rest.strip_prefix('(').and_then(|r| r.split_once(')')) {
            Some((rule, tail)) => (rule.trim().to_string(), tail),
            None => (String::new(), rest),
        };
        let justification = tail
            .trim_start_matches([' ', '\t', '-', ':', '\u{2013}', '\u{2014}'])
            .trim_end_matches(['*', '/', ' ', '\t'])
            .trim()
            .to_string();
        out.push(Pragma {
            line: line + off as u32,
            rule,
            justification,
        });
    }
}

fn is_ident_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_'
}

fn is_ident_continue(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

/// Lexes Rust source. Never fails: unterminated constructs are consumed
/// to end-of-file, which is the forgiving behavior a linter wants.
pub fn lex(src: &str) -> Lexed<'_> {
    let b = src.as_bytes();
    let n = b.len();
    let mut out = Lexed::default();
    let mut i = 0usize;
    let mut line = 1u32;

    while i < n {
        let c = b[i];
        match c {
            b'\n' => {
                line += 1;
                i += 1;
            }
            b'/' if i + 1 < n && b[i + 1] == b'/' => {
                let start = i;
                while i < n && b[i] != b'\n' {
                    i += 1;
                }
                scan_comment_for_pragmas(&src[start..i], line, &mut out.pragmas);
                out.note_comment(&src[start..i], line, line);
            }
            b'/' if i + 1 < n && b[i + 1] == b'*' => {
                let start = i;
                let start_line = line;
                let mut depth = 1usize;
                i += 2;
                while i < n && depth > 0 {
                    if b[i] == b'/' && i + 1 < n && b[i + 1] == b'*' {
                        depth += 1;
                        i += 2;
                    } else if b[i] == b'*' && i + 1 < n && b[i + 1] == b'/' {
                        depth -= 1;
                        i += 2;
                    } else {
                        if b[i] == b'\n' {
                            line += 1;
                        }
                        i += 1;
                    }
                }
                scan_comment_for_pragmas(&src[start..i], start_line, &mut out.pragmas);
                out.note_comment(&src[start..i], start_line, line);
            }
            b'"' => {
                i = skip_string(b, i, &mut line);
            }
            b'\'' => {
                i = skip_char_or_lifetime(b, i, &mut line);
            }
            _ if is_ident_start(c) => {
                let start = i;
                while i < n && is_ident_continue(b[i]) {
                    i += 1;
                }
                let ident = &src[start..i];
                // String-literal prefixes: `r`, `b`, `br` glued to a
                // quote (or `#` fencing for raw forms).
                let raw = matches!(ident, "r" | "br");
                let stringy = matches!(ident, "b" | "r" | "br");
                if raw && i < n && (b[i] == b'"' || b[i] == b'#') {
                    i = skip_raw_string(b, i, &mut line);
                } else if stringy && i < n && b[i] == b'"' {
                    i = skip_string(b, i, &mut line);
                } else if ident == "b" && i < n && b[i] == b'\'' {
                    i = skip_char_or_lifetime(b, i, &mut line);
                } else {
                    out.toks.push(Tok {
                        line,
                        kind: TokKind::Ident,
                        s: ident,
                    });
                }
            }
            _ if c.is_ascii_digit() => {
                // Numeric literal: digits, `_`, radix/suffix letters, and
                // `.` only when a digit follows (so `0..n` stays a range
                // and `1.max(2)` stays a method call).
                let start = i;
                i += 1;
                while i < n {
                    if is_ident_continue(b[i]) {
                        i += 1;
                    } else if b[i] == b'.' && i + 1 < n && b[i + 1].is_ascii_digit() {
                        i += 2;
                    } else {
                        break;
                    }
                }
                out.toks.push(Tok {
                    line,
                    kind: TokKind::Lit,
                    s: &src[start..i],
                });
            }
            _ if c.is_ascii_graphic() => {
                if c == b':' && i + 1 < n && b[i + 1] == b':' {
                    out.toks.push(Tok {
                        line,
                        kind: TokKind::Punct,
                        s: "::",
                    });
                    i += 2;
                } else {
                    out.toks.push(Tok {
                        line,
                        kind: TokKind::Punct,
                        s: &src[i..i + 1],
                    });
                    i += 1;
                }
            }
            _ => {
                // Whitespace or non-ASCII byte: skip. (Needles are all
                // ASCII identifiers, so non-ASCII never matters.)
                i += 1;
            }
        }
    }
    out
}

/// Consumes a `"…"` string starting at the opening quote; returns the
/// index just past the closing quote.
fn skip_string(b: &[u8], mut i: usize, line: &mut u32) -> usize {
    let n = b.len();
    i += 1; // opening quote
    while i < n {
        match b[i] {
            b'\\' => i += 2,
            b'"' => return i + 1,
            b'\n' => {
                *line += 1;
                i += 1;
            }
            _ => i += 1,
        }
    }
    i
}

/// Consumes `#*"…"#*` starting at the first `#` or `"`; returns the
/// index just past the closing fence.
fn skip_raw_string(b: &[u8], mut i: usize, line: &mut u32) -> usize {
    let n = b.len();
    let mut hashes = 0usize;
    while i < n && b[i] == b'#' {
        hashes += 1;
        i += 1;
    }
    if i >= n || b[i] != b'"' {
        return i; // `r#foo` raw identifier, not a string
    }
    i += 1;
    while i < n {
        if b[i] == b'\n' {
            *line += 1;
            i += 1;
        } else if b[i] == b'"'
            && b[i + 1..]
                .iter()
                .take(hashes)
                .filter(|&&h| h == b'#')
                .count()
                == hashes
        {
            return i + 1 + hashes;
        } else {
            i += 1;
        }
    }
    i
}

/// Disambiguates `'a'` (char literal) from `'a` (lifetime) starting at
/// the quote; returns the index just past whichever it was.
fn skip_char_or_lifetime(b: &[u8], i: usize, line: &mut u32) -> usize {
    let n = b.len();
    if i + 1 >= n {
        return i + 1;
    }
    if b[i + 1] == b'\\' {
        // Escaped char literal: scan to the closing quote (escape
        // sequences never contain one).
        let mut j = i + 2;
        while j < n && b[j] != b'\'' {
            j += 1;
        }
        return (j + 1).min(n);
    }
    if i + 2 < n && b[i + 2] == b'\'' && b[i + 1] != b'\'' {
        if b[i + 1] == b'\n' {
            *line += 1;
        }
        return i + 3; // 'x'
    }
    // Lifetime (or label): consume the identifier, no closing quote.
    let mut j = i + 1;
    while j < n && is_ident_continue(b[j]) {
        j += 1;
    }
    j
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<&str> {
        lex(src)
            .toks
            .iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.s)
            .collect()
    }

    #[test]
    fn comments_and_strings_are_stripped() {
        let src = r##"
            // Instant in a line comment
            /* Instant in a /* nested */ block */
            let s = "Instant in a string";
            let r = r#"Instant raw"#;
            let b = b"Instant bytes";
            let real = Marker;
        "##;
        let ids = idents(src);
        assert!(!ids.contains(&"Instant"), "{ids:?}");
        assert!(ids.contains(&"Marker"));
    }

    #[test]
    fn char_literals_vs_lifetimes() {
        // Lifetimes must not be treated as unterminated char literals
        // that swallow the rest of the file.
        let src = "fn f<'a>(x: &'a str) -> Out { g('x') }";
        let ids = idents(src);
        assert!(ids.contains(&"str"));
        assert!(ids.contains(&"Out"));
        assert!(ids.contains(&"g"));
        let src2 = "let c = 'q'; let after = Visible;";
        assert!(idents(src2).contains(&"Visible"));
    }

    #[test]
    fn double_colon_is_fused() {
        let l = lex("std::env::var(x)");
        let shape: Vec<(&str, TokKind)> = l.toks.iter().map(|t| (t.s, t.kind)).collect();
        assert_eq!(
            shape[..5],
            [
                ("std", TokKind::Ident),
                ("::", TokKind::Punct),
                ("env", TokKind::Ident),
                ("::", TokKind::Punct),
                ("var", TokKind::Ident),
            ]
        );
    }

    #[test]
    fn raw_string_with_fencing_and_quote_inside() {
        let src = r##"let s = r#"contains "quoted" Instant"#; let tail = Tail;"##;
        let ids = idents(src);
        assert!(!ids.contains(&"Instant"));
        assert!(ids.contains(&"Tail"));
    }

    #[test]
    fn pragmas_are_extracted_with_rule_and_justification() {
        let src = "// kvlint: allow(no-wall-clock) — timing the host, not the device\nlet x = 1;";
        let l = lex(src);
        assert_eq!(l.pragmas.len(), 1);
        assert_eq!(l.pragmas[0].rule, "no-wall-clock");
        assert_eq!(l.pragmas[0].line, 1);
        assert!(l.pragmas[0].justification.starts_with("timing the host"));
    }

    #[test]
    fn pragma_without_parens_is_still_surfaced() {
        let l = lex("// kvlint: allow no parens here\n");
        assert_eq!(l.pragmas.len(), 1);
        assert!(l.pragmas[0].rule.is_empty());
    }

    #[test]
    fn block_comment_pragma_line_accounts_for_offset() {
        let src = "/* first\n   kvlint: allow(no-env-read) — second line of the comment\n*/";
        let l = lex(src);
        assert_eq!(l.pragmas.len(), 1);
        assert_eq!(l.pragmas[0].line, 2);
    }

    #[test]
    fn numeric_literals_lex_as_single_tokens() {
        let l = lex("let d = mix64(seed ^ mix64(0x52_4554_5259)); let r = 0..10; let f = 1.5e3;");
        let lits: Vec<&str> = l
            .toks
            .iter()
            .filter(|t| t.kind == TokKind::Lit)
            .map(|t| t.s)
            .collect();
        assert_eq!(lits, ["0x52_4554_5259", "0", "10", "1.5e3"]);
        let domain = l.toks.iter().find(|t| t.s == "0x52_4554_5259").unwrap();
        assert_eq!(domain.int_value(), Some(0x52_4554_5259));
        assert_eq!(
            l.toks.iter().find(|t| t.s == "1.5e3").unwrap().int_value(),
            None
        );
    }

    #[test]
    fn int_value_handles_radix_and_suffix() {
        let l = lex("a(0b1010); b(0o17); c(100u64); d(0xffu8);");
        let vals: Vec<Option<u64>> = l
            .toks
            .iter()
            .filter(|t| t.kind == TokKind::Lit)
            .map(|t| t.int_value())
            .collect();
        assert_eq!(vals, [Some(10), Some(15), Some(100), Some(0xff)]);
    }

    #[test]
    fn safety_markers_and_comment_runs_are_recorded() {
        let src = "// SAFETY: the buffer is exclusively owned\n// and never aliased.\nunsafe { }\n/* SAFETY: block form */\n";
        let l = lex(src);
        assert_eq!(l.safety_lines, vec![1, 4]);
        assert_eq!(l.comment_lines, vec![(1, 1), (2, 2), (4, 4)]);
    }

    #[test]
    fn multiline_block_comment_safety_line_is_exact() {
        let src = "/* prologue\n   SAFETY: pointer is valid\n*/\n";
        let l = lex(src);
        assert_eq!(l.safety_lines, vec![2]);
        assert_eq!(l.comment_lines, vec![(1, 3)]);
    }

    #[test]
    fn line_numbers_survive_multiline_strings() {
        let src = "let a = \"line\none\";\nlet probe = Probe;";
        let l = lex(src);
        let probe = l.toks.iter().find(|t| t.is_ident("Probe")).unwrap();
        assert_eq!(probe.line, 3);
    }
}
