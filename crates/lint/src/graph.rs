//! The workspace symbol graph: approximate cross-crate call resolution
//! and taint propagation from determinism sinks.
//!
//! Resolution is deliberately conservative in both directions:
//!
//! * **Qualified calls** (`Stopwatch::start`, `kvssd_bench::env_config`,
//!   `walltime::Stopwatch::start`) resolve by matching the qualifier
//!   against the definition's `impl` owner, its file stem (module
//!   name), or its crate directory (`kvssd_bench` ↔ `crates/bench`).
//! * **Bare and method calls** (`checkpoint()`, `sw.elapsed_secs()`)
//!   resolve to a same-file definition when one exists, else to the
//!   unique workspace definition of that name — a name defined in
//!   several places stays unresolved rather than wiring spurious edges.
//! * **`use` renames** are expanded before either step, so
//!   `use kvssd_bench::env_config as cfg; cfg()` still reaches the sink.
//!
//! Taint then walks the reverse call graph from every *source* function
//! (one whose body touches a wall-clock / env / entropy token, or any
//! function living in a sanctioned sink module — wrappers in the
//! sanctioned file are exactly the laundering vector the rule closes).

use std::collections::BTreeMap;

use crate::parser::{Call, FileSyms};

/// The determinism sink families the taint rule tracks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum SinkKind {
    /// `std::time::{Instant, SystemTime}` (sanctioned window:
    /// `crates/bench/src/walltime.rs`).
    WallClock,
    /// `std::env::var`-family reads (sanctioned window:
    /// `kvssd_bench::env_config`).
    EnvRead,
    /// OS-entropy RNG constructors (no sanctioned window).
    Entropy,
}

impl SinkKind {
    /// Human name used in diagnostics.
    pub fn describe(self) -> &'static str {
        match self {
            SinkKind::WallClock => "wall-clock",
            SinkKind::EnvRead => "environment-read",
            SinkKind::Entropy => "OS-entropy",
        }
    }
}

/// One function definition in the workspace graph.
#[derive(Debug, Clone)]
pub struct DefInfo {
    /// Index into the file list the graph was built from.
    pub file: usize,
    /// Function name.
    pub name: String,
    /// `impl`/`trait` owner type, if any.
    pub owner: Option<String>,
    /// 1-based definition line.
    pub line: u32,
}

impl DefInfo {
    /// `Owner::name` or `name`.
    pub fn qualified(&self) -> String {
        match &self.owner {
            Some(o) => format!("{o}::{}", self.name),
            None => self.name.clone(),
        }
    }
}

/// A function flagged by taint propagation.
#[derive(Debug, Clone)]
pub struct TaintFinding {
    /// File index of the flagged function.
    pub file: usize,
    /// Line of the call that carries the taint into the function.
    pub line: u32,
    /// Which sink family it reaches.
    pub kind: SinkKind,
    /// Qualified names from the flagged function down to the source.
    pub chain: Vec<String>,
    /// Workspace-relative path of the file defining the source function.
    pub source_path: String,
}

/// The resolved call graph over one set of files.
#[derive(Debug)]
pub struct SymbolGraph {
    defs: Vec<DefInfo>,
    /// def -> (callee def, call line)
    edges: Vec<Vec<(usize, u32)>>,
    files: Vec<String>,
}

/// `kvssd_bench` ↔ `crates/bench`, `kvssd_lsm_store` ↔
/// `crates/lsm-store`: does a path segment name the crate a file
/// belongs to?
fn segment_names_crate(seg: &str, rel: &str) -> bool {
    let Some(rest) = rel.strip_prefix("crates/") else {
        return false;
    };
    let Some((dir, _)) = rest.split_once('/') else {
        return false;
    };
    let underscored = dir.replace('-', "_");
    seg == underscored || seg.strip_prefix("kvssd_") == Some(underscored.as_str())
}

/// The file stem (`walltime` for `crates/bench/src/walltime.rs`).
fn file_stem(rel: &str) -> &str {
    rel.rsplit('/')
        .next()
        .and_then(|f| f.strip_suffix(".rs"))
        .unwrap_or(rel)
}

impl SymbolGraph {
    /// Builds the graph over `(rel_path, symbols)` pairs, resolving
    /// every call site.
    pub fn build(files: &[(String, FileSyms)]) -> SymbolGraph {
        let mut defs = Vec::new();
        let mut by_name: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
        for (fi, (_rel, syms)) in files.iter().enumerate() {
            for f in &syms.fns {
                by_name.entry(f.name.as_str()).or_default().push(defs.len());
                defs.push(DefInfo {
                    file: fi,
                    name: f.name.clone(),
                    owner: f.owner.clone(),
                    line: f.line,
                });
            }
        }
        let mut edges = vec![Vec::new(); defs.len()];
        let mut def_idx = 0usize;
        for (fi, (rel, syms)) in files.iter().enumerate() {
            for f in &syms.fns {
                for call in &f.calls {
                    for callee in resolve(&defs, &by_name, files, fi, rel, syms, call) {
                        edges[def_idx].push((callee, call.line));
                    }
                }
                def_idx += 1;
            }
        }
        SymbolGraph {
            defs,
            edges,
            files: files.iter().map(|(r, _)| r.clone()).collect(),
        }
    }

    /// All definitions, in file order.
    pub fn defs(&self) -> &[DefInfo] {
        &self.defs
    }

    /// Resolved callees of definition `def`, as `(callee def index,
    /// call line)` pairs — exposed for resolution unit tests.
    pub fn callees(&self, def: usize) -> &[(usize, u32)] {
        &self.edges[def]
    }

    /// Index of the definition named `name` (qualified as
    /// `Owner::name` when an owner is given) — test helper.
    pub fn find_def(&self, owner: Option<&str>, name: &str) -> Option<usize> {
        self.defs
            .iter()
            .position(|d| d.name == name && d.owner.as_deref() == owner)
    }

    /// Propagates taint from `seeds` (definition index, sink kind) up
    /// the reverse call graph. Returns one finding per tainted,
    /// non-seed definition whose file index fails `allowed(file, kind)`.
    pub fn taint(
        &self,
        seeds: &[(usize, SinkKind)],
        allowed: impl Fn(usize, SinkKind) -> bool,
    ) -> Vec<TaintFinding> {
        // Reverse adjacency: callee -> (caller, call line).
        let mut rev: Vec<Vec<(usize, u32)>> = vec![Vec::new(); self.defs.len()];
        for (caller, outs) in self.edges.iter().enumerate() {
            for &(callee, line) in outs {
                rev[callee].push((caller, line));
            }
        }
        let mut findings = Vec::new();
        for kind in [SinkKind::WallClock, SinkKind::EnvRead, SinkKind::Entropy] {
            // hop[d] = (next def toward the source, line of the call).
            let mut hop: Vec<Option<(usize, u32)>> = vec![None; self.defs.len()];
            let mut is_seed = vec![false; self.defs.len()];
            let mut queue: Vec<usize> = Vec::new();
            for &(d, k) in seeds {
                if k == kind && !is_seed[d] {
                    is_seed[d] = true;
                    queue.push(d);
                }
            }
            let mut qi = 0usize;
            while qi < queue.len() {
                let cur = queue[qi];
                qi += 1;
                for &(caller, line) in &rev[cur] {
                    if !is_seed[caller] && hop[caller].is_none() {
                        hop[caller] = Some((cur, line));
                        queue.push(caller);
                    }
                }
            }
            for (d, h) in hop.iter().enumerate() {
                let Some((_, line)) = h else { continue };
                if allowed(self.defs[d].file, kind) {
                    continue;
                }
                let mut chain = vec![self.defs[d].qualified()];
                let mut cur = d;
                let mut source = d;
                while let Some((next, _)) = hop[cur] {
                    chain.push(self.defs[next].qualified());
                    source = next;
                    cur = next;
                }
                findings.push(TaintFinding {
                    file: self.defs[d].file,
                    line: *line,
                    kind,
                    chain,
                    source_path: self.files[self.defs[source].file].clone(),
                });
            }
        }
        findings.sort_by_key(|a| (a.file, a.line, a.kind));
        findings
    }
}

/// Resolves one call site to zero or more definition indices.
fn resolve(
    defs: &[DefInfo],
    by_name: &BTreeMap<&str, Vec<usize>>,
    files: &[(String, FileSyms)],
    file_idx: usize,
    rel: &str,
    syms: &FileSyms,
    call: &Call,
) -> Vec<usize> {
    // Expand a `use`-rename on the leading segment of non-method calls.
    let path: Vec<String> = match (
        call.method,
        syms.uses.iter().find(|(a, _)| *a == call.path[0]),
    ) {
        (false, Some((_, full))) => full
            .iter()
            .chain(call.path.iter().skip(1))
            .cloned()
            .collect(),
        _ => call.path.clone(),
    };
    resolve_expanded(defs, by_name, files, file_idx, rel, &path)
}

fn resolve_expanded(
    defs: &[DefInfo],
    by_name: &BTreeMap<&str, Vec<usize>>,
    files: &[(String, FileSyms)],
    file_idx: usize,
    rel: &str,
    path: &[String],
) -> Vec<usize> {
    let name = path.last().expect("calls have at least one segment");
    let Some(candidates) = by_name.get(name.as_str()) else {
        return Vec::new();
    };
    if path.len() >= 2 {
        let qualifier = &path[path.len() - 2];
        let crate_relative = matches!(qualifier.as_str(), "self" | "crate" | "super");
        let matches: Vec<usize> = candidates
            .iter()
            .copied()
            .filter(|&d| {
                let def = &defs[d];
                let def_rel = &files[def.file].0;
                if crate_relative {
                    return same_crate(rel, def_rel);
                }
                def.owner.as_deref() == Some(qualifier.as_str())
                    || file_stem(def_rel) == qualifier.as_str()
                    || segment_names_crate(qualifier, def_rel)
            })
            .collect();
        return matches;
    }
    // Bare / method call: same-file definitions win; otherwise the name
    // must be unique workspace-wide.
    let local: Vec<usize> = candidates
        .iter()
        .copied()
        .filter(|&d| defs[d].file == file_idx)
        .collect();
    if !local.is_empty() {
        return local;
    }
    if candidates.len() == 1 {
        return candidates.clone();
    }
    Vec::new()
}

/// True when two workspace-relative paths live in the same crate
/// (`crates/<x>/...` prefix, or both outside `crates/`).
fn same_crate(a: &str, b: &str) -> bool {
    let key = |p: &str| -> String {
        match p.strip_prefix("crates/") {
            Some(rest) => rest.split('/').next().unwrap_or("").to_string(),
            None => String::new(),
        }
    };
    key(a) == key(b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::parser::parse_items;

    fn build(files: &[(&str, &str)]) -> SymbolGraph {
        let parsed: Vec<(String, FileSyms)> = files
            .iter()
            .map(|(rel, src)| (rel.to_string(), parse_items(&lex(src))))
            .collect();
        SymbolGraph::build(&parsed)
    }

    #[test]
    fn use_rename_resolves_across_crates() {
        let g = build(&[
            (
                "crates/bench/src/lib.rs",
                "pub fn env_config(n: &str) -> Option<String> { None }",
            ),
            (
                "crates/core/src/lib.rs",
                "use kvssd_bench::env_config as cfg;\nfn f() { cfg(\"X\"); }",
            ),
        ]);
        let caller = g.find_def(None, "f").unwrap();
        let callee = g.find_def(None, "env_config").unwrap();
        assert_eq!(g.callees(caller), &[(callee, 2)]);
    }

    #[test]
    fn qualified_owner_and_crate_paths_resolve() {
        let g = build(&[
            (
                "crates/bench/src/walltime.rs",
                "impl Stopwatch { pub fn start() -> Self { Stopwatch(now()) } }",
            ),
            (
                "crates/core/src/lib.rs",
                "fn a() { Stopwatch::start(); }\nfn b() { kvssd_bench::walltime::Stopwatch::start(); }\nfn c() { walltime::Stopwatch::start(); }",
            ),
        ]);
        let callee = g.find_def(Some("Stopwatch"), "start").unwrap();
        for (f, line) in [("a", 1), ("b", 2), ("c", 3)] {
            let d = g.find_def(None, f).unwrap();
            assert_eq!(g.callees(d), &[(callee, line)], "caller {f}");
        }
    }

    #[test]
    fn method_calls_resolve_when_name_is_unique() {
        let g = build(&[
            (
                "crates/bench/src/walltime.rs",
                "impl Stopwatch { pub fn elapsed_secs(&self) -> f64 { 0.0 } }",
            ),
            (
                "crates/core/src/lib.rs",
                "fn f(sw: &Stopwatch) { sw.elapsed_secs(); }",
            ),
        ]);
        let caller = g.find_def(None, "f").unwrap();
        let callee = g.find_def(Some("Stopwatch"), "elapsed_secs").unwrap();
        assert_eq!(g.callees(caller), &[(callee, 1)]);
    }

    #[test]
    fn ambiguous_bare_names_stay_unresolved_but_same_file_wins() {
        let g = build(&[
            (
                "crates/a/src/lib.rs",
                "pub fn tick() {}\nfn f() { tick(); }",
            ),
            ("crates/b/src/lib.rs", "pub fn tick() {}"),
            ("crates/c/src/lib.rs", "fn g() { tick(); }"),
        ]);
        let f = g.find_def(None, "f").unwrap();
        assert_eq!(g.callees(f).len(), 1, "same-file tick resolves");
        let gg = g.find_def(None, "g").unwrap();
        assert!(
            g.callees(gg).is_empty(),
            "two candidate crates, no qualifier — no edge"
        );
    }

    #[test]
    fn taint_propagates_through_wrappers_and_respects_allowlist() {
        let g = build(&[
            (
                "crates/bench/src/walltime.rs",
                "pub fn checkpoint() -> Instant { Instant::now() }",
            ),
            (
                "crates/bench/src/experiments/cells.rs",
                "fn timed() { checkpoint(); }",
            ),
            (
                "crates/core/src/device.rs",
                "fn sneak() { checkpoint(); }\nfn outer() { sneak(); }",
            ),
        ]);
        let sink = g.find_def(None, "checkpoint").unwrap();
        let findings = g.taint(&[(sink, SinkKind::WallClock)], |file, _| file <= 1);
        let names: Vec<(&str, u32)> = findings
            .iter()
            .map(|f| (f.chain[0].as_str(), f.line))
            .collect();
        assert_eq!(names, [("sneak", 1), ("outer", 2)]);
        assert_eq!(findings[0].chain, ["sneak", "checkpoint"]);
        assert_eq!(findings[1].chain, ["outer", "sneak", "checkpoint"]);
        assert_eq!(findings[0].source_path, "crates/bench/src/walltime.rs");
    }

    #[test]
    fn taint_handles_recursion_without_looping() {
        let g = build(&[(
            "crates/core/src/lib.rs",
            "fn a() { b(); }\nfn b() { a(); entropy(); }\nfn entropy() {}",
        )]);
        let sink = g.find_def(None, "entropy").unwrap();
        let findings = g.taint(&[(sink, SinkKind::Entropy)], |_, _| false);
        assert_eq!(findings.len(), 2);
    }
}
