//! The rule set, pragma validation, and the Rust-token rule pass.
//!
//! Each rule defends one leg of the repo's scientific claim:
//!
//! | rule | invariant |
//! |------|-----------|
//! | `no-wall-clock` | experiments run in pure virtual time |
//! | `no-random-state-map` | figure tables are byte-identical run to run |
//! | `no-env-read` | a run is a pure function of its seeds, not ambient host state |
//! | `no-offline-break` | tier-1 builds with zero registry dependencies |
//! | `no-unseeded-entropy` | every random stream is derived from an explicit seed |

use crate::lexer::{Lexed, Pragma, Tok};
use crate::FileClass;

/// The rules kvlint enforces.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Rule {
    /// `std::time::{Instant, SystemTime}` outside the allowlisted bench
    /// timing module (`crates/bench/src/walltime.rs`).
    NoWallClock,
    /// `std::collections::{HashMap, HashSet}` (SipHash with a random
    /// seed — iteration order varies run to run) in library crates.
    NoRandomStateMap,
    /// `std::env::var`-family reads outside the bench config module
    /// (`crates/bench/src/lib.rs`).
    NoEnvRead,
    /// A non-`path`, non-feature-gated dependency in any `Cargo.toml`.
    NoOfflineBreak,
    /// OS-entropy RNG constructors (`thread_rng`, `from_entropy`, ...).
    NoUnseededEntropy,
}

impl Rule {
    /// Every rule, in reporting order.
    pub const ALL: [Rule; 5] = [
        Rule::NoWallClock,
        Rule::NoRandomStateMap,
        Rule::NoEnvRead,
        Rule::NoOfflineBreak,
        Rule::NoUnseededEntropy,
    ];

    /// The rule's kebab-case name (as used in `kvlint: allow(...)`).
    pub fn name(self) -> &'static str {
        match self {
            Rule::NoWallClock => "no-wall-clock",
            Rule::NoRandomStateMap => "no-random-state-map",
            Rule::NoEnvRead => "no-env-read",
            Rule::NoOfflineBreak => "no-offline-break",
            Rule::NoUnseededEntropy => "no-unseeded-entropy",
        }
    }

    /// Parses a rule name (for pragma validation).
    pub fn from_name(s: &str) -> Option<Rule> {
        Rule::ALL.into_iter().find(|r| r.name() == s)
    }
}

/// Diagnostic category: a real rule, or a malformed suppression pragma
/// (itself an error — a typoed pragma must never silently un-suppress).
pub const BAD_PRAGMA: &str = "bad-pragma";

/// One finding, before path attachment.
#[derive(Debug, Clone)]
pub struct RawDiag {
    /// 1-based line.
    pub line: u32,
    /// Rule name, or [`BAD_PRAGMA`].
    pub rule: &'static str,
    /// Human explanation with the remedy.
    pub message: String,
}

/// Minimum justification length (characters after the separator) for a
/// suppression pragma. Short enough not to bureaucratize, long enough
/// that "ok" doesn't pass review.
pub const MIN_JUSTIFICATION: usize = 10;

/// Validates pragmas: returns the usable `(rule, line)` suppressions and
/// appends a [`BAD_PRAGMA`] diagnostic for each malformed one.
pub fn validate_pragmas(pragmas: &[Pragma], diags: &mut Vec<RawDiag>) -> Vec<(Rule, u32)> {
    let mut ok = Vec::new();
    for p in pragmas {
        match Rule::from_name(&p.rule) {
            None => diags.push(RawDiag {
                line: p.line,
                rule: BAD_PRAGMA,
                message: format!(
                    "`kvlint: allow({})` names an unknown rule; known rules: {}",
                    p.rule,
                    Rule::ALL.map(Rule::name).join(", ")
                ),
            }),
            Some(_) if p.justification.chars().count() < MIN_JUSTIFICATION => {
                diags.push(RawDiag {
                    line: p.line,
                    rule: BAD_PRAGMA,
                    message: format!(
                        "`kvlint: allow({})` must carry a justification (>= {MIN_JUSTIFICATION} \
                         chars after the rule), e.g. `// kvlint: allow({}) — why this is sound`",
                        p.rule, p.rule
                    ),
                });
            }
            Some(rule) => ok.push((rule, p.line)),
        }
    }
    ok
}

/// Applies suppressions: a pragma covers its own line and the line
/// immediately below it (so it can sit at end-of-line or on its own line
/// directly above the code it excuses). Returns (kept, suppressed-counts
/// as (rule-name, n) pairs).
pub fn apply_suppressions(
    diags: Vec<RawDiag>,
    allows: &[(Rule, u32)],
) -> (Vec<RawDiag>, Vec<(&'static str, usize)>) {
    let mut kept = Vec::new();
    let mut suppressed: Vec<(&'static str, usize)> = Vec::new();
    for d in diags {
        let hit = d.rule != BAD_PRAGMA
            && allows.iter().any(|(r, l)| {
                r.name() == d.rule && (*l == d.line || l.checked_add(1) == Some(d.line))
            });
        if hit {
            match suppressed.iter_mut().find(|(r, _)| *r == d.rule) {
                Some((_, n)) => *n += 1,
                None => suppressed.push((d.rule, 1)),
            }
        } else {
            kept.push(d);
        }
    }
    (kept, suppressed)
}

/// Line ranges (inclusive) covered by `#[cfg(test)]` items. Used to
/// exempt in-file test modules from the rules that exempt tests.
pub fn cfg_test_regions(toks: &[Tok]) -> Vec<(u32, u32)> {
    let mut out = Vec::new();
    let mut i = 0usize;
    while i < toks.len() {
        if !(toks[i].is_punct("#") && i + 1 < toks.len() && toks[i + 1].is_punct("[")) {
            i += 1;
            continue;
        }
        let attr_line = toks[i].line;
        let (end, is_test) = scan_attr(toks, i + 1);
        let mut j = end;
        if is_test {
            // Skip any further attributes between #[cfg(test)] and the item.
            while j + 1 < toks.len() && toks[j].is_punct("#") && toks[j + 1].is_punct("[") {
                let (e, _) = scan_attr(toks, j + 1);
                j = e;
            }
            // The attached item ends at its block's closing brace, or at
            // the `;` for block-less items (`mod tests;`, `use ...;`).
            while j < toks.len() && !toks[j].is_punct("{") && !toks[j].is_punct(";") {
                j += 1;
            }
            if j < toks.len() && toks[j].is_punct("{") {
                let mut depth = 0i64;
                while j < toks.len() {
                    if toks[j].is_punct("{") {
                        depth += 1;
                    } else if toks[j].is_punct("}") {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    j += 1;
                }
            }
            let end_line = toks.get(j).or(toks.last()).map_or(attr_line, |t| t.line);
            out.push((attr_line, end_line));
        }
        i = j.max(end);
    }
    out
}

/// Scans an attribute starting at its `[` token; returns (index just
/// past the matching `]`, whether the attribute is exactly `cfg(test)`).
/// The exact-sequence check deliberately does NOT match `cfg(not(test))`
/// or `cfg(any(test, ...))` — only plain `#[cfg(test)]` earns the test
/// exemption.
fn scan_attr(toks: &[Tok], open: usize) -> (usize, bool) {
    let mut depth = 0i64;
    let mut j = open;
    let mut is_test = false;
    while j < toks.len() {
        if toks[j].is_punct("[") {
            depth += 1;
        } else if toks[j].is_punct("]") {
            depth -= 1;
            if depth == 0 {
                return (j + 1, is_test);
            }
        } else if toks[j].is_ident("cfg")
            && j + 3 < toks.len()
            && toks[j + 1].is_punct("(")
            && toks[j + 2].is_ident("test")
            && toks[j + 3].is_punct(")")
        {
            is_test = true;
        }
        j += 1;
    }
    (j, is_test)
}

fn in_regions(line: u32, regions: &[(u32, u32)]) -> bool {
    regions.iter().any(|&(a, b)| a <= line && line <= b)
}

/// Runs every token rule over one lexed Rust file. `class` decides which
/// rules apply; `wall_clock_allowed` / `env_read_allowed` are the
/// per-file path-allowlist decisions made by the caller.
pub fn check_tokens(
    lexed: &Lexed,
    class: FileClass,
    wall_clock_allowed: bool,
    env_read_allowed: bool,
) -> Vec<RawDiag> {
    let mut diags = Vec::new();
    let test_regions = cfg_test_regions(&lexed.toks);
    let toks = &lexed.toks;

    for (i, t) in toks.iter().enumerate() {
        if t.kind != crate::lexer::TokKind::Ident {
            continue;
        }
        match t.s {
            "Instant" | "SystemTime" if !wall_clock_allowed => {
                diags.push(RawDiag {
                    line: t.line,
                    rule: Rule::NoWallClock.name(),
                    message: format!(
                        "`{}` is wall-clock: experiments run in virtual time (SimTime); host \
                         self-timing must go through kvssd_bench::walltime::Stopwatch",
                        t.s
                    ),
                });
            }
            "HashMap" | "HashSet" | "RandomState"
                if class == FileClass::LibrarySrc && !in_regions(t.line, &test_regions) =>
            {
                diags.push(RawDiag {
                    line: t.line,
                    rule: Rule::NoRandomStateMap.name(),
                    message: format!(
                        "`{}` iterates in a randomized order (SipHash random state), which can \
                         leak into figure tables; use kvssd_sim::prehash::{{PrehashedMap, \
                         PrehashedSet}} or BTreeMap in library crates",
                        t.s
                    ),
                });
            }
            "env"
                if !env_read_allowed
                    && toks.get(i + 1).is_some_and(|n| n.is_punct("::"))
                    && toks.get(i + 2).is_some_and(|n| {
                        matches!(n.s, "var" | "var_os" | "vars" | "vars_os")
                            && n.kind == crate::lexer::TokKind::Ident
                    }) =>
            {
                diags.push(RawDiag {
                    line: t.line,
                    rule: Rule::NoEnvRead.name(),
                    message: format!(
                        "`env::{}` reads ambient host state; route configuration through \
                         kvssd_bench::env_config so runs stay pure functions of their seeds",
                        toks[i + 2].s
                    ),
                });
            }
            "thread_rng" | "ThreadRng" | "from_entropy" | "from_os_rng" | "OsRng" | "getrandom" => {
                diags.push(RawDiag {
                    line: t.line,
                    rule: Rule::NoUnseededEntropy.name(),
                    message: format!(
                        "`{}` draws OS entropy; every random stream must derive from an explicit \
                         seed (kvssd_sim::DeterministicRng) so runs are reproducible",
                        t.s
                    ),
                });
            }
            _ => {}
        }
    }
    // One diagnostic per (rule, line): `pub fn now() -> Instant { Instant::now() }`
    // is one violation, not two.
    diags.dedup_by(|a, b| a.line == b.line && a.rule == b.rule);
    diags
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    #[test]
    fn cfg_test_region_covers_module_body() {
        let src = "struct A;\n#[cfg(test)]\nmod tests {\n  fn f() {}\n}\nstruct B;\n";
        let l = lex(src);
        let regions = cfg_test_regions(&l.toks);
        assert_eq!(regions, vec![(2, 5)]);
    }

    #[test]
    fn cfg_not_test_is_not_exempt() {
        let src = "#[cfg(not(test))]\nmod real {}\n";
        let l = lex(src);
        assert!(cfg_test_regions(&l.toks).is_empty());
    }

    #[test]
    fn stacked_attributes_still_find_the_block() {
        let src = "#[cfg(test)]\n#[allow(dead_code)]\nmod t {\n  struct X;\n}\n";
        let l = lex(src);
        assert_eq!(cfg_test_regions(&l.toks), vec![(1, 5)]);
    }

    #[test]
    fn rule_names_round_trip() {
        for r in Rule::ALL {
            assert_eq!(Rule::from_name(r.name()), Some(r));
        }
        assert_eq!(Rule::from_name("no-such-rule"), None);
        assert_eq!(
            Rule::from_name(BAD_PRAGMA),
            None,
            "bad-pragma is not allowable"
        );
    }
}
