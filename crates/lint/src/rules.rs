//! The rule set, pragma validation, and the Rust-token rule pass.
//!
//! Each rule defends one leg of the repo's scientific claim:
//!
//! | rule | invariant |
//! |------|-----------|
//! | `no-wall-clock` | experiments run in pure virtual time |
//! | `no-random-state-map` | figure tables are byte-identical run to run |
//! | `no-env-read` | a run is a pure function of its seeds, not ambient host state |
//! | `no-offline-break` | tier-1 builds with zero registry dependencies |
//! | `no-unseeded-entropy` | every random stream is derived from an explicit seed |
//! | `transitive-taint` | the sanctioned sink modules cannot be laundered through wrappers |
//! | `rng-domain-separation` | every derived RNG stream has a unique seeding domain |
//! | `unsafe-requires-safety` | every `unsafe` block/impl argues its soundness in place |
//! | `panic-surface` | the hot-path crates' panic surface only ever shrinks |
//! | `dead-pragma` | the suppression surface carries no stale grants |
//!
//! The first five are token rules over one file. The second five are the
//! v2 graph/structure rules: `transitive-taint` and
//! `rng-domain-separation` need the whole workspace (see
//! [`crate::graph`] and the orchestration in [`crate::lint_files`]),
//! `panic-surface` ratchets against a committed baseline
//! ([`crate::baseline`]), and `dead-pragma` runs after suppression,
//! judging the pragmas themselves.

use crate::lexer::{Lexed, Pragma, Tok, TokKind};
use crate::parser::KEYWORDS;
use crate::FileClass;

/// The rules kvlint enforces.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Rule {
    /// `std::time::{Instant, SystemTime}` outside the allowlisted bench
    /// timing module (`crates/bench/src/walltime.rs`).
    NoWallClock,
    /// `std::collections::{HashMap, HashSet}` (SipHash with a random
    /// seed — iteration order varies run to run) in library crates.
    NoRandomStateMap,
    /// `std::env::var`-family reads outside the bench config module
    /// (`crates/bench/src/lib.rs`).
    NoEnvRead,
    /// A non-`path`, non-feature-gated dependency in any `Cargo.toml`.
    NoOfflineBreak,
    /// OS-entropy RNG constructors (`thread_rng`, `from_entropy`, ...).
    NoUnseededEntropy,
    /// A library-code call path that reaches a wall-clock / env /
    /// entropy sink through wrapper functions, with no raw sink token of
    /// its own (the laundering vector the token rules cannot see).
    TransitiveTaint,
    /// The same `mix64(0x...)` seeding domain constant used at two
    /// sites: two "independent" RNG streams would be correlated.
    RngDomainSeparation,
    /// An `unsafe` block or `unsafe impl` without an adjacent
    /// `// SAFETY:` comment.
    UnsafeRequiresSafety,
    /// `.unwrap()` / `.expect()` / `panic!` / slice indexing in non-test
    /// code of the hot-path crates, over the committed baseline budget.
    PanicSurface,
    /// A valid `kvlint: allow` pragma that suppresses nothing.
    DeadPragma,
}

impl Rule {
    /// Every rule, in reporting order.
    pub const ALL: [Rule; 10] = [
        Rule::NoWallClock,
        Rule::NoRandomStateMap,
        Rule::NoEnvRead,
        Rule::NoOfflineBreak,
        Rule::NoUnseededEntropy,
        Rule::TransitiveTaint,
        Rule::RngDomainSeparation,
        Rule::UnsafeRequiresSafety,
        Rule::PanicSurface,
        Rule::DeadPragma,
    ];

    /// The rule's kebab-case name (as used in `kvlint: allow(...)`).
    pub fn name(self) -> &'static str {
        match self {
            Rule::NoWallClock => "no-wall-clock",
            Rule::NoRandomStateMap => "no-random-state-map",
            Rule::NoEnvRead => "no-env-read",
            Rule::NoOfflineBreak => "no-offline-break",
            Rule::NoUnseededEntropy => "no-unseeded-entropy",
            Rule::TransitiveTaint => "transitive-taint",
            Rule::RngDomainSeparation => "rng-domain-separation",
            Rule::UnsafeRequiresSafety => "unsafe-requires-safety",
            Rule::PanicSurface => "panic-surface",
            Rule::DeadPragma => "dead-pragma",
        }
    }

    /// One-line description (for `--list-rules` and the SARIF rule
    /// table).
    pub fn summary(self) -> &'static str {
        match self {
            Rule::NoWallClock => "wall-clock types outside the sanctioned timing module",
            Rule::NoRandomStateMap => "randomized-iteration std maps/sets in library code",
            Rule::NoEnvRead => "environment reads outside the sanctioned config module",
            Rule::NoOfflineBreak => "registry dependencies that break offline tier-1 builds",
            Rule::NoUnseededEntropy => "OS-entropy RNG constructors anywhere",
            Rule::TransitiveTaint => {
                "library call paths reaching a determinism sink through wrappers"
            }
            Rule::RngDomainSeparation => "duplicate mix64 seeding-domain constants",
            Rule::UnsafeRequiresSafety => "unsafe block/impl without an adjacent SAFETY: comment",
            Rule::PanicSurface => "panic-capable sites in hot-path crates over the baseline",
            Rule::DeadPragma => "kvlint: allow pragmas that suppress nothing",
        }
    }

    /// Parses a rule name (for pragma validation).
    pub fn from_name(s: &str) -> Option<Rule> {
        Rule::ALL.into_iter().find(|r| r.name() == s)
    }
}

/// Diagnostic category: a real rule, or a malformed suppression pragma
/// (itself an error — a typoed pragma must never silently un-suppress).
pub const BAD_PRAGMA: &str = "bad-pragma";

/// The crates whose panic surface is ratcheted: the ones on the
/// measured device/cluster/fabric path, where a panic aborts an
/// experiment mid-figure instead of surfacing a typed error.
pub const HOT_PATH_CRATES: &[&str] = &[
    "crates/core/src/",
    "crates/cluster/src/",
    "crates/fabric/src/",
];

/// Identifiers that construct OS-entropy RNG state (shared by the token
/// rule and taint seeding).
pub const ENTROPY_IDENTS: &[&str] = &[
    "thread_rng",
    "ThreadRng",
    "from_entropy",
    "from_os_rng",
    "OsRng",
    "getrandom",
];

/// `std::env` reader names (shared by the token rule and taint seeding).
pub const ENV_READ_FNS: &[&str] = &["var", "var_os", "vars", "vars_os"];

/// One finding, before path attachment.
#[derive(Debug, Clone)]
pub struct RawDiag {
    /// 1-based line.
    pub line: u32,
    /// Rule name, or [`BAD_PRAGMA`].
    pub rule: &'static str,
    /// Human explanation with the remedy.
    pub message: String,
}

/// Minimum justification length (characters after the separator) for a
/// suppression pragma. Short enough not to bureaucratize, long enough
/// that "ok" doesn't pass review.
pub const MIN_JUSTIFICATION: usize = 10;

/// Validates pragmas: returns the usable `(rule, line)` suppressions and
/// appends a [`BAD_PRAGMA`] diagnostic for each malformed one.
pub fn validate_pragmas(pragmas: &[Pragma], diags: &mut Vec<RawDiag>) -> Vec<(Rule, u32)> {
    let mut ok = Vec::new();
    for p in pragmas {
        match Rule::from_name(&p.rule) {
            None => diags.push(RawDiag {
                line: p.line,
                rule: BAD_PRAGMA,
                message: format!(
                    "`kvlint: allow({})` names an unknown rule; known rules: {}",
                    p.rule,
                    Rule::ALL.map(Rule::name).join(", ")
                ),
            }),
            Some(_) if p.justification.chars().count() < MIN_JUSTIFICATION => {
                diags.push(RawDiag {
                    line: p.line,
                    rule: BAD_PRAGMA,
                    message: format!(
                        "`kvlint: allow({})` must carry a justification (>= {MIN_JUSTIFICATION} \
                         chars after the rule), e.g. `// kvlint: allow({}) — why this is sound`",
                        p.rule, p.rule
                    ),
                });
            }
            Some(rule) => ok.push((rule, p.line)),
        }
    }
    ok
}

/// Applies suppressions: a pragma covers its own line and the line
/// immediately below it (so it can sit at end-of-line or on its own line
/// directly above the code it excuses). Returns (kept,
/// suppressed-counts as (rule-name, n) pairs, per-allow hit flags — the
/// hit flags feed [`dead_pragma_pass`]).
pub fn apply_suppressions(
    diags: Vec<RawDiag>,
    allows: &[(Rule, u32)],
) -> (Vec<RawDiag>, Vec<(&'static str, usize)>, Vec<bool>) {
    let mut kept = Vec::new();
    let mut suppressed: Vec<(&'static str, usize)> = Vec::new();
    let mut hits = vec![false; allows.len()];
    for d in diags {
        let mut hit = false;
        if d.rule != BAD_PRAGMA {
            for (i, (r, l)) in allows.iter().enumerate() {
                if r.name() == d.rule && (*l == d.line || l.checked_add(1) == Some(d.line)) {
                    hits[i] = true;
                    hit = true;
                }
            }
        }
        if hit {
            match suppressed.iter_mut().find(|(r, _)| *r == d.rule) {
                Some((_, n)) => *n += 1,
                None => suppressed.push((d.rule, 1)),
            }
        } else {
            kept.push(d);
        }
    }
    (kept, suppressed, hits)
}

/// The `dead-pragma` rule: runs after every suppression round for a
/// file, flagging valid pragmas that suppressed nothing — a stale grant
/// is free attack surface for the violation it once excused. A
/// `kvlint: allow(dead-pragma)` pragma covering the stale pragma's line
/// keeps a deliberately prophylactic pragma, and is itself marked live
/// by doing so. Returns the dead-pragma findings plus the number of
/// findings that were excused that way.
pub fn dead_pragma_pass(allows: &[(Rule, u32)], hits: &mut [bool]) -> (Vec<RawDiag>, usize) {
    let mut excused = vec![false; allows.len()];
    for i in 0..allows.len() {
        if hits[i] || excused[i] {
            continue;
        }
        let line = allows[i].1;
        if let Some(j) = (0..allows.len()).find(|&j| {
            j != i
                && allows[j].0 == Rule::DeadPragma
                && (allows[j].1 == line || allows[j].1.checked_add(1) == Some(line))
        }) {
            excused[i] = true;
            hits[j] = true;
        }
    }
    let mut out = Vec::new();
    let mut n_excused = 0usize;
    for (i, &(rule, line)) in allows.iter().enumerate() {
        if hits[i] {
            continue;
        }
        if excused[i] {
            n_excused += 1;
            continue;
        }
        out.push(RawDiag {
            line,
            rule: Rule::DeadPragma.name(),
            message: format!(
                "`kvlint: allow({})` suppresses nothing — delete it; a stale pragma is a \
                 standing grant for the next violation on this line",
                rule.name()
            ),
        });
    }
    (out, n_excused)
}

/// Line ranges (inclusive) covered by `#[cfg(test)]` items. Used to
/// exempt in-file test modules from the rules that exempt tests.
pub fn cfg_test_regions(toks: &[Tok]) -> Vec<(u32, u32)> {
    let mut out = Vec::new();
    let mut i = 0usize;
    while i < toks.len() {
        if !(toks[i].is_punct("#") && i + 1 < toks.len() && toks[i + 1].is_punct("[")) {
            i += 1;
            continue;
        }
        let attr_line = toks[i].line;
        let (end, is_test) = scan_attr(toks, i + 1);
        let mut j = end;
        if is_test {
            // Skip any further attributes between #[cfg(test)] and the item.
            while j + 1 < toks.len() && toks[j].is_punct("#") && toks[j + 1].is_punct("[") {
                let (e, _) = scan_attr(toks, j + 1);
                j = e;
            }
            // The attached item ends at its block's closing brace, or at
            // the `;` for block-less items (`mod tests;`, `use ...;`).
            while j < toks.len() && !toks[j].is_punct("{") && !toks[j].is_punct(";") {
                j += 1;
            }
            if j < toks.len() && toks[j].is_punct("{") {
                let mut depth = 0i64;
                while j < toks.len() {
                    if toks[j].is_punct("{") {
                        depth += 1;
                    } else if toks[j].is_punct("}") {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    j += 1;
                }
            }
            let end_line = toks.get(j).or(toks.last()).map_or(attr_line, |t| t.line);
            out.push((attr_line, end_line));
        }
        i = j.max(end);
    }
    out
}

/// Scans an attribute starting at its `[` token; returns (index just
/// past the matching `]`, whether the attribute is exactly `cfg(test)`).
/// The exact-sequence check deliberately does NOT match `cfg(not(test))`
/// or `cfg(any(test, ...))` — only plain `#[cfg(test)]` earns the test
/// exemption.
fn scan_attr(toks: &[Tok], open: usize) -> (usize, bool) {
    let mut depth = 0i64;
    let mut j = open;
    let mut is_test = false;
    while j < toks.len() {
        if toks[j].is_punct("[") {
            depth += 1;
        } else if toks[j].is_punct("]") {
            depth -= 1;
            if depth == 0 {
                return (j + 1, is_test);
            }
        } else if toks[j].is_ident("cfg")
            && j + 3 < toks.len()
            && toks[j + 1].is_punct("(")
            && toks[j + 2].is_ident("test")
            && toks[j + 3].is_punct(")")
        {
            is_test = true;
        }
        j += 1;
    }
    (j, is_test)
}

fn in_regions(line: u32, regions: &[(u32, u32)]) -> bool {
    regions.iter().any(|&(a, b)| a <= line && line <= b)
}

fn is_keyword(s: &str) -> bool {
    KEYWORDS.contains(&s)
}

/// Runs every token rule over one lexed Rust file. `class` decides which
/// rules apply; `wall_clock_allowed` / `env_read_allowed` are the
/// per-file path-allowlist decisions made by the caller.
pub fn check_tokens(
    lexed: &Lexed,
    class: FileClass,
    wall_clock_allowed: bool,
    env_read_allowed: bool,
) -> Vec<RawDiag> {
    let mut diags = Vec::new();
    let test_regions = cfg_test_regions(&lexed.toks);
    let toks = &lexed.toks;

    for (i, t) in toks.iter().enumerate() {
        if t.kind != TokKind::Ident {
            continue;
        }
        match t.s {
            "Instant" | "SystemTime" if !wall_clock_allowed => {
                diags.push(RawDiag {
                    line: t.line,
                    rule: Rule::NoWallClock.name(),
                    message: format!(
                        "`{}` is wall-clock: experiments run in virtual time (SimTime); host \
                         self-timing must go through kvssd_bench::walltime::Stopwatch",
                        t.s
                    ),
                });
            }
            "HashMap" | "HashSet" | "RandomState"
                if class == FileClass::LibrarySrc && !in_regions(t.line, &test_regions) =>
            {
                diags.push(RawDiag {
                    line: t.line,
                    rule: Rule::NoRandomStateMap.name(),
                    message: format!(
                        "`{}` iterates in a randomized order (SipHash random state), which can \
                         leak into figure tables; use kvssd_sim::prehash::{{PrehashedMap, \
                         PrehashedSet}} or BTreeMap in library crates",
                        t.s
                    ),
                });
            }
            "env"
                if !env_read_allowed
                    && toks.get(i + 1).is_some_and(|n| n.is_punct("::"))
                    && toks.get(i + 2).is_some_and(|n| {
                        ENV_READ_FNS.contains(&n.s) && n.kind == TokKind::Ident
                    }) =>
            {
                diags.push(RawDiag {
                    line: t.line,
                    rule: Rule::NoEnvRead.name(),
                    message: format!(
                        "`env::{}` reads ambient host state; route configuration through \
                         kvssd_bench::env_config so runs stay pure functions of their seeds",
                        toks[i + 2].s
                    ),
                });
            }
            s if ENTROPY_IDENTS.contains(&s) => {
                diags.push(RawDiag {
                    line: t.line,
                    rule: Rule::NoUnseededEntropy.name(),
                    message: format!(
                        "`{}` draws OS entropy; every random stream must derive from an explicit \
                         seed (kvssd_sim::DeterministicRng) so runs are reproducible",
                        t.s
                    ),
                });
            }
            _ => {}
        }
    }
    // One diagnostic per (rule, line): `pub fn now() -> Instant { Instant::now() }`
    // is one violation, not two.
    diags.dedup_by(|a, b| a.line == b.line && a.rule == b.rule);
    diags
}

/// The `unsafe-requires-safety` rule: every `unsafe` block or
/// `unsafe impl` must have a `// SAFETY:` comment on its own line or in
/// the comment run directly above it. `unsafe fn` *declarations* are
/// exempt — the obligation sits at the unsafe *uses* inside them, which
/// are blocks and get checked.
pub fn check_unsafe_safety(lexed: &Lexed) -> Vec<RawDiag> {
    let covered = |line: u32| {
        lexed
            .comment_lines
            .iter()
            .any(|&(a, b)| a <= line && line <= b)
    };
    let safety = |line: u32| lexed.safety_lines.contains(&line);
    let toks = &lexed.toks;
    let mut out = Vec::new();
    for (i, t) in toks.iter().enumerate() {
        if !t.is_ident("unsafe") {
            continue;
        }
        let form = match toks.get(i + 1) {
            Some(n) if n.is_punct("{") => "block",
            Some(n) if n.is_ident("impl") => "impl",
            _ => continue,
        };
        // Trailing `// SAFETY:` on the same line, or a comment run
        // walking upward from the line above that carries the marker.
        let mut ok = safety(t.line);
        let mut cur = t.line;
        while !ok && cur > 1 && covered(cur - 1) {
            cur -= 1;
            ok = safety(cur);
        }
        if !ok {
            out.push(RawDiag {
                line: t.line,
                rule: Rule::UnsafeRequiresSafety.name(),
                message: format!(
                    "`unsafe` {form} without an adjacent `// SAFETY:` comment; state the \
                     invariant that makes it sound directly above the `unsafe`",
                ),
            });
        }
    }
    out
}

/// The `panic-surface` token scan: `.unwrap()` / `.expect()` / `panic!`
/// / slice-indexing sites in non-test code of the hot-path crates
/// ([`HOT_PATH_CRATES`]). Counting (and the baseline ratchet) happens in
/// the orchestration layer; this returns one site per line.
pub fn check_panic_surface(lexed: &Lexed, rel: &str, class: FileClass) -> Vec<RawDiag> {
    if class != FileClass::LibrarySrc || !HOT_PATH_CRATES.iter().any(|p| rel.starts_with(p)) {
        return Vec::new();
    }
    let test_regions = cfg_test_regions(&lexed.toks);
    let toks = &lexed.toks;
    let mut diags: Vec<RawDiag> = Vec::new();
    for (i, t) in toks.iter().enumerate() {
        if in_regions(t.line, &test_regions) {
            continue;
        }
        let what = match t.kind {
            TokKind::Ident
                if matches!(t.s, "unwrap" | "expect")
                    && i > 0
                    && toks[i - 1].is_punct(".")
                    && toks.get(i + 1).is_some_and(|n| n.is_punct("(")) =>
            {
                format!("`.{}()`", t.s)
            }
            TokKind::Ident
                if t.s == "panic" && toks.get(i + 1).is_some_and(|n| n.is_punct("!")) =>
            {
                "`panic!`".to_string()
            }
            // `x[i]` / `f()[i]` / `a[i][j]`: `[` after a value expression.
            // `#[attr]`, `: [u8; N]`, `= [...]`, `let [a, b]` all have a
            // non-value token before the bracket and stay unflagged.
            TokKind::Punct
                if t.s == "["
                    && i > 0
                    && ((toks[i - 1].kind == TokKind::Ident && !is_keyword(toks[i - 1].s))
                        || toks[i - 1].is_punct(")")
                        || toks[i - 1].is_punct("]")) =>
            {
                "slice indexing".to_string()
            }
            _ => continue,
        };
        diags.push(RawDiag {
            line: t.line,
            rule: Rule::PanicSurface.name(),
            message: format!(
                "panic-surface site ({what}) in hot-path library code; return a typed `KvError` \
                 instead (budgeted sites live in kvlint-baseline.toml and may only shrink)"
            ),
        });
    }
    // One site per line keeps baseline counts stable under reformatting.
    diags.dedup_by(|a, b| a.line == b.line);
    diags
}

/// One `mix64(<int literal> ...)` seeding-domain constant.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DomainConst {
    /// 1-based line of the literal.
    pub line: u32,
    /// The literal as written (`0x52_4554_5259`).
    pub text: String,
    /// Its numeric value (what uniqueness is judged on).
    pub value: u64,
}

/// Collects `rng-domain-separation` candidates: integer literals in
/// first-argument position of a `mix64(...)` call in library
/// (non-`cfg(test)`) code. Both the pure form `mix64(0xD0)` and the
/// mixed form `mix64(0xD0 ^ data)` carry a domain constant; the
/// workspace pass flags any value used at more than one site.
pub fn collect_rng_domains(lexed: &Lexed, class: FileClass) -> Vec<DomainConst> {
    if class != FileClass::LibrarySrc {
        return Vec::new();
    }
    let test_regions = cfg_test_regions(&lexed.toks);
    let toks = &lexed.toks;
    let mut out = Vec::new();
    for i in 0..toks.len() {
        if !toks[i].is_ident("mix64") {
            continue;
        }
        if !toks.get(i + 1).is_some_and(|t| t.is_punct("(")) {
            continue;
        }
        let Some(lit) = toks.get(i + 2) else { continue };
        let Some(value) = lit.int_value() else {
            continue;
        };
        if in_regions(lit.line, &test_regions) {
            continue;
        }
        out.push(DomainConst {
            line: lit.line,
            text: lit.s.to_string(),
            value,
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    #[test]
    fn cfg_test_region_covers_module_body() {
        let src = "struct A;\n#[cfg(test)]\nmod tests {\n  fn f() {}\n}\nstruct B;\n";
        let l = lex(src);
        let regions = cfg_test_regions(&l.toks);
        assert_eq!(regions, vec![(2, 5)]);
    }

    #[test]
    fn cfg_not_test_is_not_exempt() {
        let src = "#[cfg(not(test))]\nmod real {}\n";
        let l = lex(src);
        assert!(cfg_test_regions(&l.toks).is_empty());
    }

    #[test]
    fn stacked_attributes_still_find_the_block() {
        let src = "#[cfg(test)]\n#[allow(dead_code)]\nmod t {\n  struct X;\n}\n";
        let l = lex(src);
        assert_eq!(cfg_test_regions(&l.toks), vec![(1, 5)]);
    }

    #[test]
    fn rule_names_round_trip() {
        for r in Rule::ALL {
            assert_eq!(Rule::from_name(r.name()), Some(r));
        }
        assert_eq!(Rule::from_name("no-such-rule"), None);
        assert_eq!(
            Rule::from_name(BAD_PRAGMA),
            None,
            "bad-pragma is not allowable"
        );
    }

    #[test]
    fn suppression_hits_are_tracked_per_pragma() {
        let diags = vec![RawDiag {
            line: 5,
            rule: Rule::NoWallClock.name(),
            message: String::new(),
        }];
        let allows = [(Rule::NoWallClock, 4), (Rule::NoEnvRead, 4)];
        let (kept, suppressed, hits) = apply_suppressions(diags, &allows);
        assert!(kept.is_empty());
        assert_eq!(suppressed, [("no-wall-clock", 1)]);
        assert_eq!(hits, [true, false]);
    }

    #[test]
    fn dead_pragmas_are_flagged_and_excusable() {
        // Pragma 0 hit; pragma 1 dead; pragma 2 dead but excused by 3,
        // which becomes live by excusing it.
        let allows = [
            (Rule::NoWallClock, 3),
            (Rule::NoEnvRead, 9),
            (Rule::NoRandomStateMap, 20),
            (Rule::DeadPragma, 19),
        ];
        let mut hits = vec![true, false, false, false];
        let (dead, excused) = dead_pragma_pass(&allows, &mut hits);
        assert_eq!(excused, 1);
        assert_eq!(dead.len(), 1);
        assert_eq!(dead[0].line, 9);
        assert_eq!(dead[0].rule, "dead-pragma");
        assert!(hits[3], "the excusing dead-pragma allow is live");
    }

    #[test]
    fn unsafe_without_safety_comment_is_flagged() {
        let src = "\
// SAFETY: the allocator never unwinds.
unsafe impl GlobalAlloc for A {
    unsafe fn alloc(&self) -> *mut u8 {
        unsafe { sys_alloc() }
    }
}
fn f() {
    unsafe { raw() } // SAFETY: trailing form also counts
}
";
        let l = lex(src);
        let d = check_unsafe_safety(&l);
        assert_eq!(d.len(), 1, "{d:?}");
        assert_eq!(d[0].line, 4);
        assert_eq!(d[0].rule, "unsafe-requires-safety");
    }

    #[test]
    fn unsafe_safety_walks_multi_line_comment_runs() {
        let src = "\
// SAFETY: the buffer is exclusively owned
// and the layout round-trips through the allocator.
unsafe { dealloc(p) }
";
        let l = lex(src);
        assert!(check_unsafe_safety(&l).is_empty());
    }

    #[test]
    fn panic_surface_sites_in_hot_crates_only() {
        let src = "\
fn f(v: &[u8], o: Option<u8>) -> u8 {
    let a = o.unwrap();
    let b = o.expect(\"set\");
    if v.is_empty() { panic!(\"empty\"); }
    v[0]
}
#[cfg(test)]
mod tests {
    fn t(o: Option<u8>) { o.unwrap(); }
}
";
        let l = lex(src);
        let hot = check_panic_surface(&l, "crates/core/src/device.rs", FileClass::LibrarySrc);
        let lines: Vec<u32> = hot.iter().map(|d| d.line).collect();
        assert_eq!(lines, [2, 3, 4, 5], "{hot:?}");
        assert!(
            check_panic_surface(&l, "crates/sim/src/rng.rs", FileClass::LibrarySrc).is_empty(),
            "sim is not a hot-path crate"
        );
        assert!(
            check_panic_surface(&l, "crates/core/tests/x.rs", FileClass::Tests).is_empty(),
            "tests are exempt"
        );
    }

    #[test]
    fn panic_surface_ignores_non_indexing_brackets() {
        let src = "\
#[derive(Debug)]
struct S { buf: [u8; 4] }
fn f(s: &S, i: usize) -> u8 {
    let _arr = [1, 2, 3];
    let [a, _b] = [i, i];
    let _ = a;
    s.buf[i]
}
";
        let l = lex(src);
        let d = check_panic_surface(&l, "crates/core/src/device.rs", FileClass::LibrarySrc);
        let lines: Vec<u32> = d.iter().map(|x| x.line).collect();
        assert_eq!(lines, [7], "{d:?}");
    }

    #[test]
    fn rng_domains_capture_pure_and_mixed_forms() {
        let src = "\
fn seeds(seed: u64, id: u64) -> (u64, u64) {
    let a = mix64(seed ^ mix64(0x52_4554_5259));
    let b = mix64(0x5EED ^ id);
    (a, b)
}
#[cfg(test)]
mod tests {
    fn t() { let _ = mix64(0x52_4554_5259); }
}
";
        let l = lex(src);
        let d = collect_rng_domains(&l, FileClass::LibrarySrc);
        let got: Vec<(u32, u64)> = d.iter().map(|c| (c.line, c.value)).collect();
        assert_eq!(got, [(2, 0x52_4554_5259), (3, 0x5EED)], "{d:?}");
        assert!(collect_rng_domains(&l, FileClass::Tests).is_empty());
    }
}
