//! SARIF 2.1.0 output so CI can annotate PRs with kvlint findings.
//!
//! Hand-rolled JSON (no serde — the crate stays dependency-free). The
//! emitted log carries one `run` with the full rule table and one
//! `result` per diagnostic, each with a physical location GitHub's
//! SARIF ingestion turns into an inline annotation.

use std::fmt::Write as _;

use crate::rules::{Rule, BAD_PRAGMA};
use crate::{Diagnostic, Report};

/// Escapes a string for embedding in a JSON double-quoted literal.
fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// One-line description per rule, reused as the SARIF rule help text.
fn rule_help(rule: &str) -> &'static str {
    match Rule::from_name(rule) {
        Some(r) => r.summary(),
        None if rule == BAD_PRAGMA => "a malformed `kvlint: allow` pragma",
        None => "kvlint diagnostic",
    }
}

/// Renders the full SARIF 2.1.0 log for a report.
pub fn render(report: &Report) -> String {
    let mut s = String::new();
    s.push_str(
        "{\"version\": \"2.1.0\", \"$schema\": \
         \"https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/Schemata/sarif-schema-2.1.0.json\", \
         \"runs\": [{\"tool\": {\"driver\": {\"name\": \"kvssd-lint\", \
         \"informationUri\": \"https://example.org/kvssd-study\", \"rules\": [",
    );
    let mut rule_ids: Vec<&str> = Rule::ALL.iter().map(|r| r.name()).collect();
    rule_ids.push(BAD_PRAGMA);
    for (i, id) in rule_ids.iter().enumerate() {
        let sep = if i > 0 { ", " } else { "" };
        let _ = write!(
            s,
            "{sep}{{\"id\": \"{}\", \"shortDescription\": {{\"text\": \"{}\"}}}}",
            esc(id),
            esc(rule_help(id))
        );
    }
    s.push_str("]}}, \"results\": [");
    for (i, d) in report.diagnostics.iter().enumerate() {
        let sep = if i > 0 { ", " } else { "" };
        let _ = write!(s, "{sep}{}", result_json(d));
    }
    s.push_str("]}]}");
    s
}

fn result_json(d: &Diagnostic) -> String {
    format!(
        "{{\"ruleId\": \"{}\", \"level\": \"error\", \"message\": {{\"text\": \"{}\"}}, \
         \"locations\": [{{\"physicalLocation\": {{\"artifactLocation\": {{\"uri\": \"{}\"}}, \
         \"region\": {{\"startLine\": {}}}}}}}]}}",
        esc(d.rule),
        esc(&d.message),
        esc(&d.path),
        d.line
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sarif_log_carries_rules_and_results() {
        let mut report = Report::new();
        report.diagnostics.push(Diagnostic {
            path: "crates/x/src/lib.rs".into(),
            line: 7,
            rule: "no-wall-clock",
            message: "uses `Instant` — a \"wall clock\"".into(),
        });
        let log = render(&report);
        assert!(log.contains("\"version\": \"2.1.0\""));
        assert!(log.contains("\"id\": \"panic-surface\""));
        assert!(log.contains("\"startLine\": 7"));
        assert!(log.contains("\\\"wall clock\\\""), "{log}");
        assert!(log.contains("\"uri\": \"crates/x/src/lib.rs\""));
    }

    #[test]
    fn escaping_covers_quotes_backslashes_and_controls() {
        assert_eq!(esc("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(esc("\u{1}"), "\\u0001");
    }
}
