//! `cargo run -p kvssd-lint` — lints the workspace and exits nonzero on
//! any unsuppressed violation.
//!
//! Usage: `kvssd-lint [workspace-root]`. Without an argument the
//! workspace root is found by walking up from the current directory to
//! the first `Cargo.toml` that declares `[workspace]`.

use std::path::PathBuf;
use std::process::ExitCode;

use kvssd_lint::rules::Rule;

fn find_workspace_root() -> Option<PathBuf> {
    let mut dir = std::env::current_dir().ok()?;
    loop {
        let manifest = dir.join("Cargo.toml");
        if let Ok(src) = std::fs::read_to_string(&manifest) {
            if src.lines().any(|l| l.trim() == "[workspace]") {
                return Some(dir);
            }
        }
        if !dir.pop() {
            return None;
        }
    }
}

fn main() -> ExitCode {
    let root = match std::env::args().nth(1) {
        Some(p) => PathBuf::from(p),
        None => match find_workspace_root() {
            Some(r) => r,
            None => {
                eprintln!("kvssd-lint: no workspace root found above the current directory");
                return ExitCode::FAILURE;
            }
        },
    };

    let report = match kvssd_lint::lint_workspace(&root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("kvssd-lint: cannot scan {}: {e}", root.display());
            return ExitCode::FAILURE;
        }
    };

    for d in &report.diagnostics {
        println!("{d}");
    }
    println!(
        "kvlint: {} files scanned, {} violation(s)",
        report.files_scanned,
        report.total_violations()
    );
    for rule in Rule::ALL {
        println!(
            "kvlint-rule {:<22} {} violation(s), {} suppressed",
            rule.name(),
            report.violations.get(rule.name()).copied().unwrap_or(0),
            report.suppressed.get(rule.name()).copied().unwrap_or(0),
        );
    }
    println!(
        "kvlint-rule {:<22} {} violation(s)",
        kvssd_lint::rules::BAD_PRAGMA,
        report
            .violations
            .get(kvssd_lint::rules::BAD_PRAGMA)
            .copied()
            .unwrap_or(0),
    );
    println!("kvlint-summary: {}", report.summary_json());

    if report.is_clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
