//! `cargo run -p kvssd-lint` — lints the workspace and exits nonzero on
//! any unsuppressed violation.
//!
//! ```text
//! kvssd-lint [workspace-root] [--rule NAME]... [--list-rules]
//!            [--sarif PATH] [--write-baseline] [--strict]
//! ```
//!
//! Without a root argument the workspace root is found by walking up
//! from the current directory to the first `Cargo.toml` that declares
//! `[workspace]`. The bare invocation (the tier-1 gate path) keeps its
//! v1 contract: print diagnostics, per-rule table, summary JSON; exit 0
//! iff clean.
//!
//! * `--rule NAME` (repeatable) restricts reporting and the exit code
//!   to the named rules — for drilling into one rule's findings.
//! * `--list-rules` prints the rule table and exits 0.
//! * `--sarif PATH` additionally writes a SARIF 2.1.0 log for CI
//!   annotation.
//! * `--write-baseline` rewrites `kvlint-baseline.toml` from the
//!   current post-suppression panic-surface counts.
//! * `--strict` also fails on baseline *slack* (budget above actual):
//!   the ratchet step of verify.sh/CI, which forces the baseline to
//!   shrink in the same change that removes the sites.

use std::path::PathBuf;
use std::process::ExitCode;

use kvssd_lint::baseline::{Baseline, BASELINE_FILE};
use kvssd_lint::rules::Rule;

fn find_workspace_root() -> Option<PathBuf> {
    let mut dir = std::env::current_dir().ok()?;
    loop {
        let manifest = dir.join("Cargo.toml");
        if let Ok(src) = std::fs::read_to_string(&manifest) {
            if src.lines().any(|l| l.trim() == "[workspace]") {
                return Some(dir);
            }
        }
        if !dir.pop() {
            return None;
        }
    }
}

struct Opts {
    root: Option<PathBuf>,
    rules: Vec<String>,
    list_rules: bool,
    sarif: Option<PathBuf>,
    write_baseline: bool,
    strict: bool,
}

fn parse_args() -> Result<Opts, String> {
    let mut opts = Opts {
        root: None,
        rules: Vec::new(),
        list_rules: false,
        sarif: None,
        write_baseline: false,
        strict: false,
    };
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--rule" => {
                let name = args.next().ok_or("--rule needs a rule name")?;
                if Rule::from_name(&name).is_none() && name != kvssd_lint::rules::BAD_PRAGMA {
                    return Err(format!(
                        "unknown rule `{name}` (try --list-rules for the full table)"
                    ));
                }
                opts.rules.push(name);
            }
            "--list-rules" => opts.list_rules = true,
            "--sarif" => {
                opts.sarif = Some(PathBuf::from(args.next().ok_or("--sarif needs a path")?))
            }
            "--write-baseline" => opts.write_baseline = true,
            "--strict" => opts.strict = true,
            _ if a.starts_with("--") => return Err(format!("unknown flag `{a}`")),
            _ if opts.root.is_none() => opts.root = Some(PathBuf::from(a)),
            _ => return Err(format!("unexpected argument `{a}`")),
        }
    }
    Ok(opts)
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(e) => {
            eprintln!("kvssd-lint: {e}");
            return ExitCode::FAILURE;
        }
    };

    if opts.list_rules {
        for rule in Rule::ALL {
            println!("{:<24} {}", rule.name(), rule.summary());
        }
        println!(
            "{:<24} a malformed `kvlint: allow` pragma (not allowable)",
            kvssd_lint::rules::BAD_PRAGMA
        );
        return ExitCode::SUCCESS;
    }

    let root = match opts.root.clone().or_else(find_workspace_root) {
        Some(r) => r,
        None => {
            eprintln!("kvssd-lint: no workspace root found above the current directory");
            return ExitCode::FAILURE;
        }
    };

    let report = match kvssd_lint::lint_workspace(&root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("kvssd-lint: cannot scan {}: {e}", root.display());
            return ExitCode::FAILURE;
        }
    };

    if opts.write_baseline {
        let path = root.join(BASELINE_FILE);
        let rendered = Baseline::render(&report.panic_surface);
        if let Err(e) = std::fs::write(&path, rendered) {
            eprintln!("kvssd-lint: cannot write {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
        println!(
            "kvlint: wrote {} ({} file(s), {} site(s))",
            path.display(),
            report.panic_surface.len(),
            report.panic_surface_total()
        );
    }

    if let Some(path) = &opts.sarif {
        if let Err(e) = std::fs::write(path, kvssd_lint::sarif::render(&report)) {
            eprintln!("kvssd-lint: cannot write {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
    }

    let selected = |rule: &str| opts.rules.is_empty() || opts.rules.iter().any(|r| r == rule);
    let mut shown = 0usize;
    for d in &report.diagnostics {
        if selected(d.rule) {
            println!("{d}");
            shown += 1;
        }
    }
    println!(
        "kvlint: {} files scanned, {} violation(s){}",
        report.files_scanned,
        shown,
        if opts.rules.is_empty() {
            String::new()
        } else {
            format!(" (rules: {})", opts.rules.join(", "))
        }
    );
    for rule in Rule::ALL {
        if !selected(rule.name()) {
            continue;
        }
        println!(
            "kvlint-rule {:<22} {} violation(s), {} suppressed",
            rule.name(),
            report.violations.get(rule.name()).copied().unwrap_or(0),
            report.suppressed.get(rule.name()).copied().unwrap_or(0),
        );
    }
    if selected(kvssd_lint::rules::BAD_PRAGMA) {
        println!(
            "kvlint-rule {:<22} {} violation(s)",
            kvssd_lint::rules::BAD_PRAGMA,
            report
                .violations
                .get(kvssd_lint::rules::BAD_PRAGMA)
                .copied()
                .unwrap_or(0),
        );
    }
    println!("kvlint-summary: {}", report.summary_json());

    let mut failed = shown > 0;

    if opts.strict {
        match kvssd_lint::load_baseline(&root) {
            Ok(Some(b)) => {
                for (path, actual, budget) in b.slack(&report.panic_surface) {
                    println!(
                        "kvlint-ratchet: {path}: budget {budget} but only {actual} site(s) — \
                         shrink the baseline (cargo run -p kvssd-lint -- --write-baseline)"
                    );
                    failed = true;
                }
            }
            Ok(None) => {
                if !report.panic_surface.is_empty() {
                    println!(
                        "kvlint-ratchet: no {BASELINE_FILE} but {} panic-surface site(s) exist",
                        report.panic_surface_total()
                    );
                    failed = true;
                }
            }
            Err(e) => {
                eprintln!("kvssd-lint: {e}");
                failed = true;
            }
        }
    }

    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
