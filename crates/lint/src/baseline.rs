//! The panic-surface baseline: a committed per-file budget with
//! **ratchet semantics** — new violations fail, the baseline may only
//! shrink.
//!
//! Format (a TOML subset, hand-parsed like the manifest scanner):
//!
//! ```toml
//! [panic-surface]
//! "crates/core/src/device.rs" = 13
//! ```
//!
//! Two comparison modes:
//!
//! * **gate** ([`Baseline::exceeded`]): any file over its budget (or any
//!   un-listed file with sites) is a violation. Runs on every lint pass.
//! * **tight** ([`Baseline::slack`]): any budget above the actual count
//!   is *slack* — headroom a future regression could hide in. The
//!   verify/CI ratchet step fails on slack too, which is what forces
//!   the committed baseline to shrink in the same PR that removes the
//!   panic sites (and, transitively, forbids it from ever growing:
//!   CI re-derives the counts and diffs them against the committed
//!   copy on every push).

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Per-file panic-surface budgets, keyed by workspace-relative path.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Baseline {
    /// path → allowed number of panic-surface sites.
    pub counts: BTreeMap<String, usize>,
}

/// The canonical name of the baseline file at the workspace root.
pub const BASELINE_FILE: &str = "kvlint-baseline.toml";

impl Baseline {
    /// Parses the baseline file format. Unknown sections are ignored so
    /// the format can grow; malformed entry lines are reported as
    /// `Err(line-number)`.
    pub fn parse(src: &str) -> Result<Baseline, u32> {
        let mut counts = BTreeMap::new();
        let mut in_section = false;
        for (idx, raw) in src.lines().enumerate() {
            let line = raw.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            if line.starts_with('[') {
                in_section = line == "[panic-surface]";
                continue;
            }
            if !in_section {
                continue;
            }
            let err = idx as u32 + 1;
            let (path, n) = line.split_once('=').ok_or(err)?;
            let path = path.trim().trim_matches('"');
            let n: usize = n.trim().parse().map_err(|_| err)?;
            if path.is_empty() {
                return Err(err);
            }
            counts.insert(path.to_string(), n);
        }
        Ok(Baseline { counts })
    }

    /// Renders the canonical file content for `actual` counts
    /// (zero-count entries are dropped — absence is the budget).
    pub fn render(actual: &BTreeMap<String, usize>) -> String {
        let mut s = String::from(
            "# kvlint panic-surface baseline — per-file budget of unwrap/expect/panic!/\n\
             # slice-index sites in non-test code of the hot-path crates (core, cluster,\n\
             # fabric). Ratchet semantics: a count above its budget fails the lint gate,\n\
             # and the verify/CI ratchet step also fails on slack (budget above actual),\n\
             # so this file can only shrink. Regenerate with:\n\
             #   cargo run -p kvssd-lint -- --write-baseline\n\n[panic-surface]\n",
        );
        for (path, n) in actual {
            if *n > 0 {
                let _ = writeln!(s, "\"{path}\" = {n}");
            }
        }
        s
    }

    /// Gate check: files whose actual count exceeds their budget
    /// (un-listed files have budget 0). Returns `(path, actual,
    /// budget)` triples.
    pub fn exceeded(&self, actual: &BTreeMap<String, usize>) -> Vec<(String, usize, usize)> {
        actual
            .iter()
            .filter_map(|(path, &n)| {
                let budget = self.counts.get(path).copied().unwrap_or(0);
                (n > budget).then(|| (path.clone(), n, budget))
            })
            .collect()
    }

    /// Tightness check: budgets above the actual count (including
    /// entries for files with no sites at all). Returns `(path,
    /// actual, budget)` triples.
    pub fn slack(&self, actual: &BTreeMap<String, usize>) -> Vec<(String, usize, usize)> {
        self.counts
            .iter()
            .filter_map(|(path, &budget)| {
                let n = actual.get(path).copied().unwrap_or(0);
                (budget > n).then(|| (path.clone(), n, budget))
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn counts(pairs: &[(&str, usize)]) -> BTreeMap<String, usize> {
        pairs.iter().map(|(p, n)| (p.to_string(), *n)).collect()
    }

    #[test]
    fn parse_render_round_trip() {
        let actual = counts(&[
            ("crates/core/src/device.rs", 13),
            ("crates/fabric/src/link.rs", 1),
        ]);
        let rendered = Baseline::render(&actual);
        let parsed = Baseline::parse(&rendered).unwrap();
        assert_eq!(parsed.counts, actual);
    }

    #[test]
    fn zero_entries_are_dropped_on_render() {
        let rendered = Baseline::render(&counts(&[("a.rs", 0), ("b.rs", 2)]));
        assert!(!rendered.contains("a.rs"));
        assert!(rendered.contains("\"b.rs\" = 2"));
    }

    #[test]
    fn exceeded_flags_growth_and_new_files() {
        let b = Baseline::parse("[panic-surface]\n\"a.rs\" = 2\n").unwrap();
        assert!(b.exceeded(&counts(&[("a.rs", 2)])).is_empty());
        assert_eq!(
            b.exceeded(&counts(&[("a.rs", 3)])),
            [("a.rs".to_string(), 3, 2)]
        );
        assert_eq!(
            b.exceeded(&counts(&[("new.rs", 1)])),
            [("new.rs".to_string(), 1, 0)]
        );
    }

    #[test]
    fn slack_flags_stale_budgets() {
        let b = Baseline::parse("[panic-surface]\n\"a.rs\" = 2\n\"gone.rs\" = 1\n").unwrap();
        let s = b.slack(&counts(&[("a.rs", 1)]));
        assert_eq!(
            s,
            [("a.rs".to_string(), 1, 2), ("gone.rs".to_string(), 0, 1)]
        );
        assert!(b.slack(&counts(&[("a.rs", 2), ("gone.rs", 1)])).is_empty());
    }

    #[test]
    fn malformed_lines_report_their_line_number() {
        assert_eq!(Baseline::parse("[panic-surface]\n\"a.rs\" = two\n"), Err(2));
        assert_eq!(Baseline::parse("[panic-surface]\nnonsense\n"), Err(2));
        // Unknown sections are tolerated.
        assert!(Baseline::parse("[future]\nx = 1\n")
            .unwrap()
            .counts
            .is_empty());
    }
}
