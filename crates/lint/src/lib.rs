//! kvlint — the repo's in-house static analyzer.
//!
//! The reproduction's scientific claims rest on invariants that used to
//! be true only by convention: figure tables byte-identical at any
//! thread count, every run reproducible from a seed in pure virtual
//! time, and tier-1 building with zero registry dependencies. kvlint
//! machine-checks them. It tokenizes every workspace `.rs` file (a small
//! lexer — no `syn`, to stay offline-green) and every `Cargo.toml`, and
//! enforces ten rules (see [`rules::Rule`]) with file:line diagnostics.
//!
//! v2 grew the per-file token scanner into a workspace analyzer: a
//! lightweight item parser ([`parser`]) feeds an approximate cross-crate
//! call graph ([`graph`]) so `transitive-taint` can catch sink access
//! laundered through wrapper functions, `rng-domain-separation` checks
//! seeding-domain constants for uniqueness across the whole workspace,
//! and `panic-surface` ratchets the hot-path crates' panic sites against
//! a committed baseline ([`baseline`]) that may only shrink.
//!
//! Violations can be suppressed with a pragma that must carry a
//! justification:
//!
//! ```text
//! let sw = Stopwatch::start(); // kvlint: allow(no-wall-clock) — timing the host simulator, not the device
//! ```
//!
//! (The code before the comment matters: a pragma must start its
//! comment line to be recognized, so this doc example is prose, not a
//! live grant in kvlint's own source.)
//!
//! The pragma covers its own line and the line directly below it. A
//! pragma naming an unknown rule, or missing its justification, is
//! itself an error (`bad-pragma`) — typos must not silently widen the
//! allowed surface. And a pragma that suppresses nothing is an error too
//! (`dead-pragma`) — stale grants get deleted, not inherited.
//!
//! Three entry points make violations impossible to miss: the
//! `cargo run -p kvssd-lint` binary, a tier-1 test that lints the whole
//! workspace (`cargo test` fails on any violation), and named
//! `scripts/verify.sh` / CI steps.

pub mod baseline;
pub mod graph;
pub mod lexer;
pub mod manifest;
pub mod parser;
pub mod rules;
pub mod sarif;

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::fs;
use std::path::{Path, PathBuf};

use baseline::Baseline;
use graph::{SinkKind, SymbolGraph};
use lexer::TokKind;
use parser::FileSyms;
use rules::{RawDiag, Rule};

/// What kind of file a path is, for rule applicability.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FileClass {
    /// Library source (`crates/*/src/**`, root `src/**`): every rule.
    LibrarySrc,
    /// Integration tests and model-checking suites (`**/tests/**`):
    /// exempt from `no-random-state-map` (a test-local map leaks into
    /// no figure).
    Tests,
    /// Example binaries (`**/examples/**`).
    Examples,
    /// Bench targets (`**/benches/**`).
    Benches,
    /// kvlint's own fixture corpus — never linted as workspace code.
    Fixture,
}

/// Classifies a workspace-relative path (forward slashes).
pub fn classify(rel: &str) -> FileClass {
    let seg = |s: &str| rel.split('/').any(|p| p == s);
    if rel.starts_with("crates/lint/fixtures/") {
        FileClass::Fixture
    } else if seg("tests") {
        FileClass::Tests
    } else if seg("examples") {
        FileClass::Examples
    } else if seg("benches") {
        FileClass::Benches
    } else {
        FileClass::LibrarySrc
    }
}

/// The one module allowed to touch `std::time::{Instant, SystemTime}`.
pub const WALL_CLOCK_ALLOWLIST: &[&str] = &["crates/bench/src/walltime.rs"];

/// The one module allowed to read the environment (`env_config`).
pub const ENV_READ_ALLOWLIST: &[&str] = &["crates/bench/src/lib.rs"];

/// One finding, attached to a file.
#[derive(Debug, Clone)]
pub struct Diagnostic {
    /// Workspace-relative path.
    pub path: String,
    /// 1-based line.
    pub line: u32,
    /// Rule name, or [`rules::BAD_PRAGMA`].
    pub rule: &'static str,
    /// Human explanation with the remedy.
    pub message: String,
}

impl std::fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}:{}: {}: {}",
            self.path, self.line, self.rule, self.message
        )
    }
}

/// The result of a workspace pass.
#[derive(Debug, Default)]
pub struct Report {
    /// Files scanned (`.rs` + `Cargo.toml`).
    pub files_scanned: usize,
    /// Unsuppressed findings, in path/line order.
    pub diagnostics: Vec<Diagnostic>,
    /// Per-rule unsuppressed violation counts (all rules always present).
    pub violations: BTreeMap<&'static str, usize>,
    /// Per-rule counts of findings silenced by a valid pragma.
    pub suppressed: BTreeMap<&'static str, usize>,
    /// Post-suppression `panic-surface` site counts per hot-path file —
    /// what the baseline ratchet compares and `--write-baseline` writes.
    /// Populated whether or not a baseline waived the sites.
    pub panic_surface: BTreeMap<String, usize>,
}

impl Report {
    fn new() -> Self {
        let mut r = Report::default();
        for rule in Rule::ALL {
            r.violations.insert(rule.name(), 0);
            r.suppressed.insert(rule.name(), 0);
        }
        r.violations.insert(rules::BAD_PRAGMA, 0);
        r
    }

    /// True when the workspace has zero unsuppressed violations.
    pub fn is_clean(&self) -> bool {
        self.diagnostics.is_empty()
    }

    /// Total unsuppressed violations.
    pub fn total_violations(&self) -> usize {
        self.diagnostics.len()
    }

    /// Total `panic-surface` sites across hot-path files (within-budget
    /// sites included — this is the number the ratchet squeezes).
    pub fn panic_surface_total(&self) -> usize {
        self.panic_surface.values().sum()
    }

    /// The machine-readable one-line summary (stable key order).
    pub fn summary_json(&self) -> String {
        let mut s = String::new();
        let _ = write!(s, "{{\"files\": {}, \"violations\": {{", self.files_scanned);
        for (i, (rule, n)) in self.violations.iter().enumerate() {
            let sep = if i > 0 { ", " } else { "" };
            let _ = write!(s, "{sep}\"{rule}\": {n}");
        }
        let _ = write!(s, "}}, \"suppressed\": {{");
        for (i, (rule, n)) in self.suppressed.iter().enumerate() {
            let sep = if i > 0 { ", " } else { "" };
            let _ = write!(s, "{sep}\"{rule}\": {n}");
        }
        let _ = write!(
            s,
            "}}, \"panic_sites\": {}, \"clean\": {}}}",
            self.panic_surface_total(),
            self.is_clean()
        );
        s
    }

    fn absorb(&mut self, path: &str, kept: Vec<RawDiag>, suppressed: Vec<(&'static str, usize)>) {
        for (rule, n) in suppressed {
            *self.suppressed.entry(rule).or_insert(0) += n;
        }
        for d in kept {
            *self.violations.entry(d.rule).or_insert(0) += 1;
            self.diagnostics.push(Diagnostic {
                path: path.to_string(),
                line: d.line,
                rule: d.rule,
                message: d.message,
            });
        }
    }
}

/// Per-file state carried between the per-file scan and the workspace
/// passes.
struct FileWork {
    rel: String,
    /// Unsuppressed findings accumulated so far.
    diags: Vec<RawDiag>,
    /// Validated suppression pragmas.
    allows: Vec<(Rule, u32)>,
    /// `mix64(<lit>)` seeding-domain constants (library `.rs` only).
    domains: Vec<rules::DomainConst>,
}

/// Lints a set of `(workspace-relative path, source)` files as one
/// workspace: per-file token rules, the cross-file symbol-graph rules,
/// and — when `baseline` is given — the panic-surface ratchet. This is
/// THE engine: the binary, the tier-1 gate, and the fixture tests all go
/// through it.
pub fn lint_files(files: &[(String, String)], baseline: Option<&Baseline>) -> Report {
    let mut report = Report::new();
    let mut work: Vec<FileWork> = Vec::with_capacity(files.len());
    // The graph is built over the `.rs` files only; `syms`/`sinks` run
    // parallel to `graph_files`, which maps back into `work` via
    // `work_idx`.
    let mut graph_files: Vec<(String, FileSyms)> = Vec::new();
    let mut fn_sinks: Vec<Vec<Vec<SinkKind>>> = Vec::new();
    let mut graph_to_work: Vec<usize> = Vec::new();

    for (rel, src) in files {
        report.files_scanned += 1;
        let mut w = FileWork {
            rel: rel.clone(),
            diags: Vec::new(),
            allows: Vec::new(),
            domains: Vec::new(),
        };
        if rel.ends_with(".rs") {
            let class = classify(rel);
            let lexed = lexer::lex(src);
            w.diags = rules::check_tokens(
                &lexed,
                class,
                WALL_CLOCK_ALLOWLIST.contains(&rel.as_str()),
                ENV_READ_ALLOWLIST.contains(&rel.as_str()),
            );
            w.diags.extend(rules::check_unsafe_safety(&lexed));
            w.diags
                .extend(rules::check_panic_surface(&lexed, rel, class));
            w.allows = rules::validate_pragmas(&lexed.pragmas, &mut w.diags);
            w.domains = rules::collect_rng_domains(&lexed, class);
            let syms = parser::parse_items(&lexed);
            fn_sinks.push(
                syms.fns
                    .iter()
                    .map(|f| body_sinks(&lexed.toks, f.body.clone()))
                    .collect(),
            );
            graph_to_work.push(work.len());
            graph_files.push((rel.clone(), syms));
        } else {
            let (mut diags, pragmas) = manifest::check_manifest(src);
            w.allows = rules::validate_pragmas(&pragmas, &mut diags);
            w.diags = diags;
        }
        work.push(w);
    }

    // --- transitive-taint: build the graph, seed it, walk it. ---
    let sym_graph = SymbolGraph::build(&graph_files);
    let mut seeds: Vec<(usize, SinkKind)> = Vec::new();
    let mut def_idx = 0usize;
    for (gi, (rel, syms)) in graph_files.iter().enumerate() {
        let wall_sanctioned = WALL_CLOCK_ALLOWLIST.contains(&rel.as_str());
        let env_sanctioned = ENV_READ_ALLOWLIST.contains(&rel.as_str());
        for (fj, f) in syms.fns.iter().enumerate() {
            for &k in &fn_sinks[gi][fj] {
                seeds.push((def_idx, k));
            }
            // Every fn in the sanctioned timing module is a wall-clock
            // source even when its own body has no `Instant` token
            // (`elapsed_secs` just subtracts) — wrappers in the
            // sanctioned file are exactly the laundering vector.
            if wall_sanctioned {
                seeds.push((def_idx, SinkKind::WallClock));
            }
            if env_sanctioned && f.name == "env_config" {
                seeds.push((def_idx, SinkKind::EnvRead));
            }
            def_idx += 1;
        }
    }
    let taint_allowed = |file: usize, kind: SinkKind| -> bool {
        let rel = graph_files[file].0.as_str();
        match kind {
            // Bench code (and non-library code: tests, examples, bench
            // targets) may time itself and read its config; library
            // crates may not, not even through wrappers.
            SinkKind::WallClock | SinkKind::EnvRead => {
                classify(rel) != FileClass::LibrarySrc || rel.starts_with("crates/bench/")
            }
            // No sanctioned window for OS entropy, anywhere.
            SinkKind::Entropy => false,
        }
    };
    for finding in sym_graph.taint(&seeds, taint_allowed) {
        let w = graph_to_work[finding.file];
        work[w].diags.push(RawDiag {
            line: finding.line,
            rule: Rule::TransitiveTaint.name(),
            message: format!(
                "call path reaches the {} sink in `{}` through wrappers, with no allowlisted \
                 hop: {}",
                finding.kind.describe(),
                finding.source_path,
                finding.chain.join(" -> ")
            ),
        });
    }

    // --- rng-domain-separation: domain constants must be unique. ---
    let mut by_value: BTreeMap<u64, Vec<(usize, u32, String)>> = BTreeMap::new();
    for (wi, w) in work.iter().enumerate() {
        for d in &w.domains {
            by_value
                .entry(d.value)
                .or_default()
                .push((wi, d.line, d.text.clone()));
        }
    }
    for sites in by_value.values().filter(|s| s.len() > 1) {
        for (i, &(wi, line, ref text)) in sites.iter().enumerate() {
            let (owi, oline, _) = sites[if i == 0 { 1 } else { 0 }];
            let other = format!("{}:{}", files[owi].0, oline);
            work[wi].diags.push(RawDiag {
                line,
                rule: Rule::RngDomainSeparation.name(),
                message: format!(
                    "mix64 seeding-domain constant `{text}` is also used at {other}; streams \
                     seeded from the same domain are correlated — pick a fresh constant"
                ),
            });
        }
    }

    // --- suppression, dead-pragma, the baseline ratchet. ---
    for w in &mut work {
        w.diags
            .sort_by(|a, b| (a.line, a.rule).cmp(&(b.line, b.rule)));
        let (mut kept, mut suppressed, mut hits) =
            rules::apply_suppressions(std::mem::take(&mut w.diags), &w.allows);
        let (dead, excused) = rules::dead_pragma_pass(&w.allows, &mut hits);
        kept.extend(dead);
        if excused > 0 {
            suppressed.push((Rule::DeadPragma.name(), excused));
        }
        let panic_sites = kept
            .iter()
            .filter(|d| d.rule == Rule::PanicSurface.name())
            .count();
        if panic_sites > 0 {
            report.panic_surface.insert(w.rel.clone(), panic_sites);
            if let Some(b) = baseline {
                let budget = b.counts.get(&w.rel).copied().unwrap_or(0);
                if panic_sites <= budget {
                    // Within budget: counted, ratcheted, but not a
                    // violation. Over budget: every site stays visible.
                    kept.retain(|d| d.rule != Rule::PanicSurface.name());
                }
            }
        }
        report.absorb(&w.rel, kept, suppressed);
    }
    report
}

/// Sink kinds whose raw tokens appear inside one fn body (token index
/// range) — taint seeds for the symbol graph.
fn body_sinks(toks: &[lexer::Tok], body: std::ops::Range<usize>) -> Vec<SinkKind> {
    let mut out: Vec<SinkKind> = Vec::new();
    let push = |k: SinkKind, out: &mut Vec<SinkKind>| {
        if !out.contains(&k) {
            out.push(k);
        }
    };
    for i in body {
        let t = &toks[i];
        if t.kind != TokKind::Ident {
            continue;
        }
        match t.s {
            "Instant" | "SystemTime" => push(SinkKind::WallClock, &mut out),
            "env"
                if toks.get(i + 1).is_some_and(|n| n.is_punct("::"))
                    && toks.get(i + 2).is_some_and(|n| {
                        n.kind == TokKind::Ident && rules::ENV_READ_FNS.contains(&n.s)
                    }) =>
            {
                push(SinkKind::EnvRead, &mut out)
            }
            s if rules::ENTROPY_IDENTS.contains(&s) => push(SinkKind::Entropy, &mut out),
            _ => {}
        }
    }
    out
}

/// Lints one Rust source string as `rel_path` would be linted in the
/// workspace pass (including the graph rules, over the one-file
/// "workspace"). Public so fixtures and tests hit the exact production
/// path.
pub fn lint_rust_str(rel_path: &str, src: &str) -> (Vec<RawDiag>, Vec<(&'static str, usize)>) {
    let files = [(rel_path.to_string(), src.to_string())];
    flatten(lint_files(&files, None))
}

/// Lints one `Cargo.toml` source string.
pub fn lint_manifest_str(src: &str) -> (Vec<RawDiag>, Vec<(&'static str, usize)>) {
    let files = [("Cargo.toml".to_string(), src.to_string())];
    flatten(lint_files(&files, None))
}

fn flatten(report: Report) -> (Vec<RawDiag>, Vec<(&'static str, usize)>) {
    let kept = report
        .diagnostics
        .into_iter()
        .map(|d| RawDiag {
            line: d.line,
            rule: d.rule,
            message: d.message,
        })
        .collect();
    let suppressed = report
        .suppressed
        .into_iter()
        .filter(|&(_, n)| n > 0)
        .collect();
    (kept, suppressed)
}

/// Directories never descended into: build output, VCS internals, and
/// kvlint's own fixture corpus (fixtures exist to violate the rules).
fn skip_dir(rel: &str) -> bool {
    matches!(rel, "target" | ".git" | "crates/lint/fixtures")
        || rel.ends_with("/target")
        || rel.ends_with("/.git")
}

/// Walks the workspace rooted at `root` and lints every `.rs` and
/// `Cargo.toml`, applying the committed panic-surface baseline
/// (`kvlint-baseline.toml`) when present. Deterministic: files are
/// visited in sorted path order.
pub fn lint_workspace(root: &Path) -> std::io::Result<Report> {
    let baseline = load_baseline(root)?;
    lint_workspace_with(root, baseline.as_ref())
}

/// Reads and parses the committed baseline at `root`, if present. A
/// malformed baseline is an I/O-level error, not a silently-empty
/// budget.
pub fn load_baseline(root: &Path) -> std::io::Result<Option<Baseline>> {
    match fs::read_to_string(root.join(baseline::BASELINE_FILE)) {
        Ok(src) => Baseline::parse(&src).map(Some).map_err(|line| {
            std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!(
                    "{}:{line}: malformed baseline entry",
                    baseline::BASELINE_FILE
                ),
            )
        }),
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(None),
        Err(e) => Err(e),
    }
}

/// [`lint_workspace`] with an explicit baseline decision (`None` turns
/// every panic-surface site into a violation — what `--write-baseline`
/// uses to measure the true count).
pub fn lint_workspace_with(root: &Path, baseline: Option<&Baseline>) -> std::io::Result<Report> {
    let mut paths = Vec::new();
    collect_files(root, root, &mut paths)?;
    paths.sort();
    let mut files = Vec::with_capacity(paths.len());
    for rel in paths {
        let src = fs::read_to_string(root.join(&rel))?;
        files.push((rel, src));
    }
    Ok(lint_files(&files, baseline))
}

fn collect_files(root: &Path, dir: &Path, out: &mut Vec<String>) -> std::io::Result<()> {
    let mut entries: Vec<PathBuf> = fs::read_dir(dir)?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .collect();
    entries.sort();
    for path in entries {
        let rel = path
            .strip_prefix(root)
            .expect("walked paths live under root")
            .to_string_lossy()
            .replace('\\', "/");
        if path.is_dir() {
            if !skip_dir(&rel) {
                collect_files(root, &path, out)?;
            }
        } else if rel.ends_with(".rs") || rel.ends_with("/Cargo.toml") || rel == "Cargo.toml" {
            out.push(rel);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classification_by_path_segment() {
        assert_eq!(classify("crates/core/src/device.rs"), FileClass::LibrarySrc);
        assert_eq!(classify("src/lib.rs"), FileClass::LibrarySrc);
        assert_eq!(classify("tests/determinism.rs"), FileClass::Tests);
        assert_eq!(
            classify("crates/core/tests/properties.rs"),
            FileClass::Tests
        );
        assert_eq!(
            classify("crates/bench/examples/repro_all.rs"),
            FileClass::Examples
        );
        assert_eq!(
            classify("crates/bench/benches/fig2_end_to_end.rs"),
            FileClass::Benches
        );
        assert_eq!(
            classify("crates/lint/fixtures/clean.rs"),
            FileClass::Fixture
        );
    }

    #[test]
    fn library_map_flagged_but_test_file_exempt() {
        let src = "use std::collections::HashMap;\n";
        let (lib, _) = lint_rust_str("crates/x/src/lib.rs", src);
        assert_eq!(lib.len(), 1);
        assert_eq!(lib[0].rule, "no-random-state-map");
        let (test, _) = lint_rust_str("crates/x/tests/model.rs", src);
        assert!(test.is_empty());
    }

    #[test]
    fn allowlisted_files_pass_their_rule() {
        let (d, _) = lint_rust_str("crates/bench/src/walltime.rs", "use std::time::Instant;\n");
        assert!(d.is_empty());
        let (d, _) = lint_rust_str(
            "crates/bench/src/lib.rs",
            "fn f() { std::env::var(\"X\").ok(); }\n",
        );
        assert!(d.is_empty());
    }

    #[test]
    fn summary_json_contains_every_rule() {
        let r = Report::new();
        let json = r.summary_json();
        for rule in Rule::ALL {
            assert!(json.contains(rule.name()), "{json}");
        }
        assert!(json.contains("bad-pragma"));
        assert!(json.contains("\"panic_sites\": 0"));
        assert!(json.contains("\"clean\": true"));
    }

    #[test]
    fn taint_crosses_files_in_a_workspace_pass() {
        let files = [
            (
                "crates/bench/src/walltime.rs".to_string(),
                "pub struct Stopwatch(u64);\nimpl Stopwatch {\n  pub fn start() -> Self { Stopwatch(0) }\n}\n"
                    .to_string(),
            ),
            (
                "crates/core/src/device.rs".to_string(),
                "fn smuggle() -> f64 { let sw = Stopwatch::start(); 0.0 }\n".to_string(),
            ),
        ];
        let report = lint_files(&files, None);
        assert_eq!(
            report.violations["transitive-taint"], 1,
            "{:?}",
            report.diagnostics
        );
        let d = &report.diagnostics[0];
        assert_eq!(d.path, "crates/core/src/device.rs");
        assert_eq!(d.line, 1);
        assert!(d.message.contains("smuggle"), "{}", d.message);
    }

    #[test]
    fn duplicate_rng_domains_flagged_across_files() {
        let files = [
            (
                "crates/cluster/src/a.rs".to_string(),
                "fn s(x: u64) -> u64 { mix64(x ^ mix64(0x11)) }\n".to_string(),
            ),
            (
                "crates/fabric/src/b.rs".to_string(),
                "fn t(x: u64) -> u64 { mix64(0x11 ^ x) }\n".to_string(),
            ),
        ];
        let report = lint_files(&files, None);
        assert_eq!(
            report.violations["rng-domain-separation"], 2,
            "{:?}",
            report.diagnostics
        );
        assert!(report.diagnostics[0]
            .message
            .contains("crates/fabric/src/b.rs:1"));
    }

    #[test]
    fn panic_surface_baseline_waives_within_budget_only() {
        let src = "pub fn f(o: Option<u8>) -> u8 { o.unwrap() }\n".to_string();
        let files = [("crates/core/src/device.rs".to_string(), src)];
        // No baseline: a violation.
        let r = lint_files(&files, None);
        assert_eq!(r.violations["panic-surface"], 1);
        assert_eq!(r.panic_surface["crates/core/src/device.rs"], 1);
        // Budget 1: waived but still counted.
        let b = Baseline::parse("[panic-surface]\n\"crates/core/src/device.rs\" = 1\n").unwrap();
        let r = lint_files(&files, Some(&b));
        assert!(r.is_clean(), "{:?}", r.diagnostics);
        assert_eq!(r.panic_surface_total(), 1);
        // Budget 0 for the file: over budget, back to a violation.
        let b = Baseline::parse("[panic-surface]\n\"other.rs\" = 9\n").unwrap();
        let r = lint_files(&files, Some(&b));
        assert_eq!(r.violations["panic-surface"], 1);
    }

    #[test]
    fn dead_pragma_flagged_in_full_pass() {
        let src = "// kvlint: allow(no-wall-clock) — nothing below ever used a clock\nfn f() {}\n";
        let (d, _) = lint_rust_str("crates/x/src/lib.rs", src);
        assert_eq!(d.len(), 1, "{d:?}");
        assert_eq!(d[0].rule, "dead-pragma");
        assert_eq!(d[0].line, 1);
    }
}
