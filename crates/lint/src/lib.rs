//! kvlint — the repo's in-house static analyzer.
//!
//! The reproduction's scientific claims rest on invariants that used to
//! be true only by convention: figure tables byte-identical at any
//! thread count, every run reproducible from a seed in pure virtual
//! time, and tier-1 building with zero registry dependencies. kvlint
//! machine-checks them. It tokenizes every workspace `.rs` file (a small
//! lexer — no `syn`, to stay offline-green) and every `Cargo.toml`, and
//! enforces five rules (see [`rules::Rule`]) with file:line diagnostics.
//!
//! Violations can be suppressed with a pragma that must carry a
//! justification:
//!
//! ```text
//! // kvlint: allow(no-wall-clock) — timing the host simulator, not the device
//! ```
//!
//! The pragma covers its own line and the line directly below it. A
//! pragma naming an unknown rule, or missing its justification, is
//! itself an error (`bad-pragma`) — typos must not silently widen the
//! allowed surface.
//!
//! Three entry points make violations impossible to miss: the
//! `cargo run -p kvssd-lint` binary, a tier-1 test that lints the whole
//! workspace (`cargo test` fails on any violation), and named
//! `scripts/verify.sh` / CI steps.

pub mod lexer;
pub mod manifest;
pub mod rules;

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::fs;
use std::path::{Path, PathBuf};

use rules::{RawDiag, Rule};

/// What kind of file a path is, for rule applicability.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FileClass {
    /// Library source (`crates/*/src/**`, root `src/**`): every rule.
    LibrarySrc,
    /// Integration tests and model-checking suites (`**/tests/**`):
    /// exempt from `no-random-state-map` (a test-local map leaks into
    /// no figure).
    Tests,
    /// Example binaries (`**/examples/**`).
    Examples,
    /// Bench targets (`**/benches/**`).
    Benches,
    /// kvlint's own fixture corpus — never linted as workspace code.
    Fixture,
}

/// Classifies a workspace-relative path (forward slashes).
pub fn classify(rel: &str) -> FileClass {
    let seg = |s: &str| rel.split('/').any(|p| p == s);
    if rel.starts_with("crates/lint/fixtures/") {
        FileClass::Fixture
    } else if seg("tests") {
        FileClass::Tests
    } else if seg("examples") {
        FileClass::Examples
    } else if seg("benches") {
        FileClass::Benches
    } else {
        FileClass::LibrarySrc
    }
}

/// The one module allowed to touch `std::time::{Instant, SystemTime}`.
pub const WALL_CLOCK_ALLOWLIST: &[&str] = &["crates/bench/src/walltime.rs"];

/// The one module allowed to read the environment (`env_config`).
pub const ENV_READ_ALLOWLIST: &[&str] = &["crates/bench/src/lib.rs"];

/// One finding, attached to a file.
#[derive(Debug, Clone)]
pub struct Diagnostic {
    /// Workspace-relative path.
    pub path: String,
    /// 1-based line.
    pub line: u32,
    /// Rule name, or [`rules::BAD_PRAGMA`].
    pub rule: &'static str,
    /// Human explanation with the remedy.
    pub message: String,
}

impl std::fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}:{}: {}: {}",
            self.path, self.line, self.rule, self.message
        )
    }
}

/// The result of a workspace pass.
#[derive(Debug, Default)]
pub struct Report {
    /// Files scanned (`.rs` + `Cargo.toml`).
    pub files_scanned: usize,
    /// Unsuppressed findings, in path/line order.
    pub diagnostics: Vec<Diagnostic>,
    /// Per-rule unsuppressed violation counts (all rules always present).
    pub violations: BTreeMap<&'static str, usize>,
    /// Per-rule counts of findings silenced by a valid pragma.
    pub suppressed: BTreeMap<&'static str, usize>,
}

impl Report {
    fn new() -> Self {
        let mut r = Report::default();
        for rule in Rule::ALL {
            r.violations.insert(rule.name(), 0);
            r.suppressed.insert(rule.name(), 0);
        }
        r.violations.insert(rules::BAD_PRAGMA, 0);
        r
    }

    /// True when the workspace has zero unsuppressed violations.
    pub fn is_clean(&self) -> bool {
        self.diagnostics.is_empty()
    }

    /// Total unsuppressed violations.
    pub fn total_violations(&self) -> usize {
        self.diagnostics.len()
    }

    /// The machine-readable one-line summary (stable key order).
    pub fn summary_json(&self) -> String {
        let mut s = String::new();
        let _ = write!(s, "{{\"files\": {}, \"violations\": {{", self.files_scanned);
        for (i, (rule, n)) in self.violations.iter().enumerate() {
            let sep = if i > 0 { ", " } else { "" };
            let _ = write!(s, "{sep}\"{rule}\": {n}");
        }
        let _ = write!(s, "}}, \"suppressed\": {{");
        for (i, (rule, n)) in self.suppressed.iter().enumerate() {
            let sep = if i > 0 { ", " } else { "" };
            let _ = write!(s, "{sep}\"{rule}\": {n}");
        }
        let _ = write!(s, "}}, \"clean\": {}}}", self.is_clean());
        s
    }

    fn absorb(&mut self, path: &str, kept: Vec<RawDiag>, suppressed: Vec<(&'static str, usize)>) {
        for (rule, n) in suppressed {
            *self.suppressed.entry(rule).or_insert(0) += n;
        }
        for d in kept {
            *self.violations.entry(d.rule).or_insert(0) += 1;
            self.diagnostics.push(Diagnostic {
                path: path.to_string(),
                line: d.line,
                rule: d.rule,
                message: d.message,
            });
        }
    }
}

/// Lints one Rust source string as `rel_path` would be linted in the
/// workspace pass. Public so fixtures and tests hit the exact
/// production path.
pub fn lint_rust_str(rel_path: &str, src: &str) -> (Vec<RawDiag>, Vec<(&'static str, usize)>) {
    let class = classify(rel_path);
    let lexed = lexer::lex(src);
    let mut diags = rules::check_tokens(
        &lexed,
        class,
        WALL_CLOCK_ALLOWLIST.contains(&rel_path),
        ENV_READ_ALLOWLIST.contains(&rel_path),
    );
    let allows = rules::validate_pragmas(&lexed.pragmas, &mut diags);
    rules::apply_suppressions(diags, &allows)
}

/// Lints one `Cargo.toml` source string.
pub fn lint_manifest_str(src: &str) -> (Vec<RawDiag>, Vec<(&'static str, usize)>) {
    let (mut diags, pragmas) = manifest::check_manifest(src);
    let allows = rules::validate_pragmas(&pragmas, &mut diags);
    rules::apply_suppressions(diags, &allows)
}

/// Directories never descended into: build output, VCS internals, and
/// kvlint's own fixture corpus (fixtures exist to violate the rules).
fn skip_dir(rel: &str) -> bool {
    matches!(rel, "target" | ".git" | "crates/lint/fixtures")
        || rel.ends_with("/target")
        || rel.ends_with("/.git")
}

/// Walks the workspace rooted at `root` and lints every `.rs` and
/// `Cargo.toml`. Deterministic: files are visited in sorted path order.
pub fn lint_workspace(root: &Path) -> std::io::Result<Report> {
    let mut files = Vec::new();
    collect_files(root, root, &mut files)?;
    files.sort();

    let mut report = Report::new();
    for rel in &files {
        let src = fs::read_to_string(root.join(rel))?;
        report.files_scanned += 1;
        let (kept, suppressed) = if rel.ends_with(".rs") {
            lint_rust_str(rel, &src)
        } else {
            lint_manifest_str(&src)
        };
        report.absorb(rel, kept, suppressed);
    }
    Ok(report)
}

fn collect_files(root: &Path, dir: &Path, out: &mut Vec<String>) -> std::io::Result<()> {
    let mut entries: Vec<PathBuf> = fs::read_dir(dir)?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .collect();
    entries.sort();
    for path in entries {
        let rel = path
            .strip_prefix(root)
            .expect("walked paths live under root")
            .to_string_lossy()
            .replace('\\', "/");
        if path.is_dir() {
            if !skip_dir(&rel) {
                collect_files(root, &path, out)?;
            }
        } else if rel.ends_with(".rs") || rel.ends_with("/Cargo.toml") || rel == "Cargo.toml" {
            out.push(rel);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classification_by_path_segment() {
        assert_eq!(classify("crates/core/src/device.rs"), FileClass::LibrarySrc);
        assert_eq!(classify("src/lib.rs"), FileClass::LibrarySrc);
        assert_eq!(classify("tests/determinism.rs"), FileClass::Tests);
        assert_eq!(
            classify("crates/core/tests/properties.rs"),
            FileClass::Tests
        );
        assert_eq!(
            classify("crates/bench/examples/repro_all.rs"),
            FileClass::Examples
        );
        assert_eq!(
            classify("crates/bench/benches/fig2_end_to_end.rs"),
            FileClass::Benches
        );
        assert_eq!(
            classify("crates/lint/fixtures/clean.rs"),
            FileClass::Fixture
        );
    }

    #[test]
    fn library_map_flagged_but_test_file_exempt() {
        let src = "use std::collections::HashMap;\n";
        let (lib, _) = lint_rust_str("crates/x/src/lib.rs", src);
        assert_eq!(lib.len(), 1);
        assert_eq!(lib[0].rule, "no-random-state-map");
        let (test, _) = lint_rust_str("crates/x/tests/model.rs", src);
        assert!(test.is_empty());
    }

    #[test]
    fn allowlisted_files_pass_their_rule() {
        let (d, _) = lint_rust_str("crates/bench/src/walltime.rs", "use std::time::Instant;\n");
        assert!(d.is_empty());
        let (d, _) = lint_rust_str(
            "crates/bench/src/lib.rs",
            "fn f() { std::env::var(\"X\").ok(); }\n",
        );
        assert!(d.is_empty());
    }

    #[test]
    fn summary_json_contains_every_rule() {
        let r = Report::new();
        let json = r.summary_json();
        for rule in Rule::ALL {
            assert!(json.contains(rule.name()), "{json}");
        }
        assert!(json.contains("bad-pragma"));
        assert!(json.contains("\"clean\": true"));
    }
}
