//! `Cargo.toml` scanning for the `no-offline-break` rule.
//!
//! A tiny line-oriented TOML-subset reader — not a general TOML parser,
//! just enough to find dependency declarations in the shapes this
//! workspace (and cargo docs) actually use:
//!
//! * inline specs in a dependency section:
//!   `foo = "1"`, `foo = { path = "..." }`, `foo.workspace = true`
//! * one-dependency tables: `[dependencies.foo]` followed by keys
//!
//! A dependency passes when it is `path`-based, inherited from the
//! workspace table (`workspace = true`, which this rule checks at its
//! definition site too), or `optional = true` (feature-gated: tier-1
//! never enables it). Anything else — plain versions, `git`, registry
//! tables — needs the network and breaks the offline-green invariant.

use crate::lexer::{scan_comment_for_pragmas, Pragma};
use crate::rules::{RawDiag, Rule};

#[derive(Debug, Default, Clone)]
struct DepFlags {
    line: u32,
    path: bool,
    workspace: bool,
    optional: bool,
}

/// Scans one manifest; returns diagnostics plus any pragmas found in
/// `#` comments (so `kvlint: allow(no-offline-break)` works in TOML).
pub fn check_manifest(src: &str) -> (Vec<RawDiag>, Vec<Pragma>) {
    let mut pragmas = Vec::new();
    let mut deps: Vec<(String, DepFlags)> = Vec::new();
    // Section state: None = not a dep section; Some(None) = in a dep
    // section with per-line entries; Some(Some(name)) = in a
    // `[dependencies.<name>]` table.
    let mut section: Option<Option<String>> = None;

    for (idx, raw_line) in src.lines().enumerate() {
        let line_no = idx as u32 + 1;
        let (code, comment) = split_comment(raw_line);
        if let Some(c) = comment {
            scan_comment_for_pragmas(c, line_no, &mut pragmas);
        }
        let code = code.trim();
        if code.is_empty() {
            continue;
        }
        if code.starts_with('[') {
            let name = code.trim_matches(['[', ']']).trim();
            let parts: Vec<&str> = split_header(name);
            section = match parts.iter().position(|p| is_dep_section(p)) {
                // `[dependencies]`, `[workspace.dependencies]`, ...
                Some(i) if i + 1 == parts.len() => Some(None),
                // `[dependencies.foo]`, `[target.'cfg(unix)'.dependencies.foo]`
                Some(i) if i + 2 == parts.len() => Some(Some(parts[i + 1].to_string())),
                _ => None,
            };
            if let Some(Some(name)) = &section {
                deps.push((
                    name.clone(),
                    DepFlags {
                        line: line_no,
                        ..DepFlags::default()
                    },
                ));
            }
            continue;
        }
        let Some(in_dep) = &section else { continue };
        let Some((key, value)) = code.split_once('=') else {
            continue;
        };
        let key = key.trim().trim_matches(['"', '\'']);
        let value = value.trim();
        match in_dep {
            // Inside `[dependencies.foo]`: keys describe that one dep.
            Some(name) => {
                let flags = &mut deps
                    .iter_mut()
                    .rev()
                    .find(|(n, _)| n == name)
                    .expect("table entry pushed at header")
                    .1;
                apply_key(flags, key, value);
            }
            // Inside `[dependencies]`: each line declares one dep.
            None => {
                let (dep, attr) = match key.split_once('.') {
                    Some((dep, attr)) => (dep, Some(attr)),
                    None => (key, None),
                };
                let dep = dep.trim().trim_matches(['"', '\'']);
                let flags = match deps.iter_mut().rev().find(|(n, _)| n == dep) {
                    Some((_, f)) => f,
                    None => {
                        deps.push((
                            dep.to_string(),
                            DepFlags {
                                line: line_no,
                                ..DepFlags::default()
                            },
                        ));
                        &mut deps.last_mut().expect("just pushed").1
                    }
                };
                match attr {
                    // Dotted form: `foo.workspace = true`, `foo.path = "..."`
                    Some(attr) => apply_key(flags, attr.trim(), value),
                    // Spec form: `foo = "1"` or `foo = { ... }`
                    None => {
                        if value.starts_with('{') {
                            for kv in value.trim_matches(['{', '}']).split(',') {
                                if let Some((k, v)) = kv.split_once('=') {
                                    apply_key(flags, k.trim(), v.trim());
                                }
                            }
                        }
                        // A bare string value (`foo = "1"`) sets no flag:
                        // registry dep, judged below.
                    }
                }
            }
        }
    }

    let mut diags = Vec::new();
    for (name, f) in &deps {
        if !(f.path || f.workspace || f.optional) {
            diags.push(RawDiag {
                line: f.line,
                rule: Rule::NoOfflineBreak.name(),
                message: format!(
                    "dependency `{name}` is neither path-based, workspace-inherited, nor \
                     feature-gated (`optional = true`): tier-1 must build offline with zero \
                     registry dependencies"
                ),
            });
        }
    }
    (diags, pragmas)
}

fn apply_key(flags: &mut DepFlags, key: &str, value: &str) {
    match key {
        "path" => flags.path = true,
        "workspace" if value.starts_with("true") => flags.workspace = true,
        "optional" if value.starts_with("true") => flags.optional = true,
        _ => {}
    }
}

fn is_dep_section(s: &str) -> bool {
    matches!(
        s,
        "dependencies" | "dev-dependencies" | "build-dependencies"
    )
}

/// Splits a section header on `.`, keeping quoted components (e.g.
/// `target.'cfg(unix)'.dependencies`) intact.
fn split_header(name: &str) -> Vec<&str> {
    let mut parts = Vec::new();
    let mut start = 0usize;
    let mut quote: Option<char> = None;
    for (i, c) in name.char_indices() {
        match quote {
            Some(q) if c == q => quote = None,
            Some(_) => {}
            None if c == '\'' || c == '"' => quote = Some(c),
            None if c == '.' => {
                parts.push(name[start..i].trim().trim_matches(['"', '\'']));
                start = i + 1;
            }
            None => {}
        }
    }
    parts.push(name[start..].trim().trim_matches(['"', '\'']));
    parts
}

/// Splits a TOML line into (code, comment) at the first `#` outside a
/// quoted string.
fn split_comment(line: &str) -> (&str, Option<&str>) {
    let mut quote: Option<char> = None;
    for (i, c) in line.char_indices() {
        match quote {
            Some(q) if c == q => quote = None,
            Some(_) => {}
            None if c == '"' || c == '\'' => quote = Some(c),
            None if c == '#' => return (&line[..i], Some(&line[i..])),
            None => {}
        }
    }
    (line, None)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diags(src: &str) -> Vec<RawDiag> {
        check_manifest(src).0
    }

    #[test]
    fn path_workspace_and_optional_deps_pass() {
        let src = r#"
[dependencies]
a = { path = "../a" }
b.workspace = true
c = { version = "1", optional = true }

[dependencies.d]
path = "../d"
"#;
        assert!(diags(src).is_empty(), "{:?}", diags(src));
    }

    #[test]
    fn version_git_and_table_registry_deps_fail() {
        let src = r#"
[dependencies]
serde = "1"
tokio = { version = "1", features = ["full"] }
fancy = { git = "https://example.org/fancy" }

[dev-dependencies.proptest]
version = "1"
"#;
        let d = diags(src);
        let names: Vec<&str> = d
            .iter()
            .map(|x| x.message.split('`').nth(1).unwrap())
            .collect();
        assert_eq!(names, ["serde", "tokio", "fancy", "proptest"]);
        assert!(d.iter().all(|x| x.rule == "no-offline-break"));
    }

    #[test]
    fn non_dependency_sections_are_ignored() {
        let src = r#"
[package]
name = "x"
version = "0.1.0"

[features]
proptest = []

[profile.release]
opt-level = 3
"#;
        assert!(diags(src).is_empty());
    }

    #[test]
    fn comments_do_not_declare_deps_but_carry_pragmas() {
        let src = "[dependencies]\n# criterion = \"0.5\"\n# kvlint: allow(no-offline-break) — example pragma in TOML\n";
        let (d, pragmas) = check_manifest(src);
        assert!(d.is_empty());
        assert_eq!(pragmas.len(), 1);
        assert_eq!(pragmas[0].rule, "no-offline-break");
        assert_eq!(pragmas[0].line, 3);
    }

    #[test]
    fn diagnostics_point_at_the_declaration_line() {
        let src = "[dependencies]\nok = { path = \"x\" }\nbad = \"2\"\n";
        let d = diags(src);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].line, 3);
    }
}
