//! Panic-capable sites in a hot-path pseudo-file: unwrap, slice
//! indexing, and panic! each count one site on their line.
pub fn first(v: &[u8], o: Option<u8>) -> u8 {
    let a = o.unwrap();
    let b = v[0];
    if a == 0 {
        panic!("zero is reserved");
    }
    a.wrapping_add(b)
}
