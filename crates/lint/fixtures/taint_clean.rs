//! No call path into the sanctioned timing module: nothing to taint.
pub fn checkpoint() -> u64 {
    42
}
