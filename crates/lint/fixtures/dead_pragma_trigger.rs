//! A stale grant: nothing on or below the pragma line uses a clock.
// kvlint: allow(no-wall-clock) — fixture: this grant went stale when the timer moved out
pub fn f() -> u64 {
    7
}
