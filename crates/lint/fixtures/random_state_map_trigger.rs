//! Fixture: must trigger `no-random-state-map` in a library crate
//! (twice: HashMap import-and-use lines) but NOT inside `#[cfg(test)]`.
use std::collections::HashMap;

pub fn build() -> HashMap<u64, u64> {
    HashMap::new()
}

#[cfg(test)]
mod tests {
    // Exempt by test-region class: no diagnostic for this one.
    use std::collections::HashSet;

    #[test]
    fn exempt() {
        let _ = HashSet::<u8>::new();
    }
}
