//! The same laundering wrapper, excused with a justified pragma.
pub fn checkpoint() -> u64 {
    // kvlint: allow(transitive-taint) — fixture: times the host harness, never a figure
    let _sw = Stopwatch::start();
    0
}
