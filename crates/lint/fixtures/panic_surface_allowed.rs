//! The same sites, each excused with a justified pragma.
pub fn first(v: &[u8], o: Option<u8>) -> u8 {
    // kvlint: allow(panic-surface) — fixture: the caller checked is_some() one line up
    let a = o.unwrap();
    // kvlint: allow(panic-surface) — fixture: the bounds check is two lines above this
    let b = v[0];
    if a == 0 {
        // kvlint: allow(panic-surface) — fixture: unreachable by the fn's precondition
        panic!("zero is reserved");
    }
    a.wrapping_add(b)
}
