//! Fixture: virtual-time code that must NOT trigger `no-wall-clock`.
//! Mentions of Instant in comments and "Instant in strings" are fine;
//! `SimTime` is the sanctioned clock.

pub struct SimTime(pub u64);

pub fn advance(now: SimTime, by: u64) -> SimTime {
    let _doc = "Instant and SystemTime are only words inside this string";
    SimTime(now.0 + by)
}
