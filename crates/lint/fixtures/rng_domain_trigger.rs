//! Two streams seeded from the same mix64 domain constant: correlated.
pub fn seed_a(x: u64) -> u64 {
    mix64(x ^ mix64(0x5EED))
}
pub fn seed_b(x: u64) -> u64 {
    mix64(0x5EED ^ x)
}
