//! A deliberately prophylactic grant, kept with an explicit excuse:
//! allow(dead-pragma) covering the stale pragma's line keeps it.
// kvlint: allow(dead-pragma) — fixture: the grant below is prophylactic for generated code
// kvlint: allow(no-wall-clock) — fixture: a generated include may introduce host timing
pub fn f() -> u64 {
    7
}
