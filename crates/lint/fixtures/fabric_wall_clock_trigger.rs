//! Fixture: wall-clock timing smuggled into a fabric link module must
//! trigger `no-wall-clock` — the transport is NOT on the allowlist, so
//! its latency/jitter math has to stay in `SimTime`/`SimDuration`.
use std::time::Instant;

pub fn link_delay_from_host_clock() -> u64 {
    let t0 = Instant::now();
    t0.elapsed().as_nanos() as u64
}
