//! Fixture: must trigger `no-unseeded-entropy` (three constructors),
//! in any path class — entropy is forbidden even in tests.
pub fn entropy() -> u64 {
    let _a = rand::thread_rng();
    let _b = SmallRng::from_entropy();
    let _c = OsRng.next_u64();
    0
}
