//! A live grant: the pragma suppresses a real finding, so it is not
//! dead (and the finding is not reported).
pub fn g() -> u64 {
    // kvlint: allow(no-wall-clock) — fixture: times the fixture harness, not the device
    let _t = std::time::Instant::now();
    7
}
