//! Fixture twin of the sanctioned host-timing module: every fn here is
//! a wall-clock taint source even without an `Instant` token.
pub struct Stopwatch(u64);
impl Stopwatch {
    pub fn start() -> Stopwatch {
        Stopwatch(0)
    }
}
