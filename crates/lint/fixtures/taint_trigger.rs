//! A library wrapper laundering host time through the sanctioned module.
pub fn checkpoint() -> u64 {
    let _sw = Stopwatch::start();
    0
}
