//! Fixture: HashMap in a library crate, suppressed with a justified
//! pragma (e.g. a map that is never iterated and never reaches output).
pub fn count(keys: &[u64]) -> usize {
    // kvlint: allow(no-random-state-map) — fixture: membership only, never iterated
    let mut seen = std::collections::HashSet::new();
    keys.iter().filter(|k| seen.insert(**k)).count()
}
