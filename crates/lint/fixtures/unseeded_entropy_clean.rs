//! Fixture: explicit-seed randomness — must NOT trigger
//! `no-unseeded-entropy`.
pub fn seeded(seed: u64) -> u64 {
    // DeterministicRng::seed_from(seed) is the sanctioned source.
    seed.wrapping_mul(0x9E37_79B9_7F4A_7C15)
}
