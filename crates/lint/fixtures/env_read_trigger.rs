//! Fixture: must trigger `no-env-read` (var + var_os; `set_var` and
//! `args` are not reads and must NOT trigger).
pub fn ambient() -> Option<String> {
    let _threads = std::env::var_os("KVSSD_BENCH_THREADS");
    std::env::set_var("KVSSD_MARKER", "1");
    let _argv0 = std::env::args().next();
    std::env::var("KVSSD_BENCH_SCALE").ok()
}
