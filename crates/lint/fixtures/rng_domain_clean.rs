//! Distinct domain constants per stream: independent by construction.
pub fn seed_a(x: u64) -> u64 {
    mix64(x ^ mix64(0x5EED_0001))
}
pub fn seed_b(x: u64) -> u64 {
    mix64(0x5EED_0002 ^ x)
}
