//! Fixture: deterministic containers that must NOT trigger
//! `no-random-state-map`.
use std::collections::BTreeMap;

pub fn build() -> BTreeMap<u64, u64> {
    // PrehashedMap/PrehashedSet (fixed-seed hasher) are the sanctioned
    // hash containers; BTreeMap when order itself matters.
    BTreeMap::new()
}
