//! Unsafe without the safety contract written down.
pub fn read_first(v: &[u8]) -> u8 {
    unsafe { *v.as_ptr() }
}
unsafe impl Send for Wrapper {}
pub struct Wrapper(*const u8);
