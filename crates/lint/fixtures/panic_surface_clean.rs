//! The typed-error shape the rule pushes toward: no panic-capable
//! site survives in the hot path.
pub fn first(v: &[u8], o: Option<u8>) -> Option<u8> {
    let a = o?;
    let b = v.first().copied()?;
    Some(a.wrapping_add(b))
}
