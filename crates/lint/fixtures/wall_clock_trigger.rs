//! Fixture: must trigger `no-wall-clock` (twice: import + call).
use std::time::Instant;

pub fn leak_wall_clock() -> f64 {
    let t0 = Instant::now();
    t0.elapsed().as_secs_f64()
}
