//! Fixture: an allow pragma naming an unknown rule must itself be an
//! error (`bad-pragma`) — and must NOT suppress anything.
pub fn f() -> f64 {
    // kvlint: allow(no-wallclock) — typo in the rule name: missing hyphen
    let t0 = std::time::Instant::now();
    t0.elapsed().as_secs_f64()
}
