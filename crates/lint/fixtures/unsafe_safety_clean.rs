//! Unsafe with the contract stated: a SAFETY comment adjacent to each
//! unsafe block/impl satisfies the rule with no pragma.
pub fn read_first(v: &[u8]) -> u8 {
    // SAFETY: the slice's data pointer is valid for reads of its
    // length, and callers guarantee `v` is non-empty.
    unsafe { *v.as_ptr() }
}
// SAFETY: Wrapper's pointer is never dereferenced off-thread.
unsafe impl Send for Wrapper {}
pub struct Wrapper(*const u8);
