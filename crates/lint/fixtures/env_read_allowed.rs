//! Fixture: an env read suppressed with a justified pragma.
pub fn sanctioned() -> Option<String> {
    // kvlint: allow(no-env-read) — fixture: stands in for the bench config module
    std::env::var("KVSSD_BENCH_SCALE").ok()
}
