//! Fixture: entropy suppressed with a justified pragma.
pub fn entropy() -> u64 {
    // kvlint: allow(no-unseeded-entropy) — fixture: one-off tool, result never compared
    let _a = rand::thread_rng();
    0
}
