//! Fixture: configuration by explicit parameter — must NOT trigger
//! `no-env-read`. `env!` (compile-time) is also fine.
pub fn configured(scale: &str) -> u64 {
    let _built_from = env!("CARGO_MANIFEST_DIR");
    match scale {
        "full" => 1_000_000,
        _ => 1_000,
    }
}
