//! The same unsafe block, excused with a justified pragma instead of a
//! SAFETY comment (the comment is the better fix; the pragma works).
pub fn read_first(v: &[u8]) -> u8 {
    // kvlint: allow(unsafe-requires-safety) — fixture: contract documented at the call sites
    unsafe { *v.as_ptr() }
}
