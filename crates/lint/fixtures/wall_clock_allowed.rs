//! Fixture: same pattern as the trigger, suppressed with justified
//! pragmas. Must produce zero diagnostics and two suppressions.
// kvlint: allow(no-wall-clock) — fixture: modeling the sanctioned timing module
use std::time::Instant;

pub fn leak_wall_clock() -> f64 {
    let t0 = Instant::now(); // kvlint: allow(no-wall-clock) — fixture: host-only timing
    t0.elapsed().as_secs_f64()
}
