//! The same duplicate domain, excused at both sites.
pub fn seed_a(x: u64) -> u64 {
    // kvlint: allow(rng-domain-separation) — fixture: the streams are deliberately paired
    mix64(x ^ mix64(0x5EED))
}
pub fn seed_b(x: u64) -> u64 {
    // kvlint: allow(rng-domain-separation) — fixture: the streams are deliberately paired
    mix64(0x5EED ^ x)
}
