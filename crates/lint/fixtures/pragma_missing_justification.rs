//! Fixture: an allow pragma with no justification must itself be an
//! error (`bad-pragma`) — and must NOT suppress anything.
pub fn f() -> f64 {
    // kvlint: allow(no-wall-clock)
    let t0 = std::time::Instant::now();
    t0.elapsed().as_secs_f64()
}
