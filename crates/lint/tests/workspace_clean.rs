//! The repo gates itself: a full `lint_workspace` pass over this
//! workspace must come back clean. Seeding any forbidden pattern in a
//! library crate fails this test with a file:line diagnostic naming
//! the rule — see the `seeded_violation_is_caught` test for proof that
//! the detection path works end to end.

use std::path::{Path, PathBuf};

use kvssd_lint::{lint_workspace, load_baseline};

fn workspace_root() -> PathBuf {
    // crates/lint/ -> crates/ -> workspace root
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("crates/lint has a workspace root two levels up")
        .to_path_buf()
}

#[test]
fn workspace_has_no_unsuppressed_violations() {
    let report = lint_workspace(&workspace_root()).expect("workspace walk succeeds");
    assert!(
        report.files_scanned > 50,
        "suspiciously few files scanned ({}) — walker is likely broken",
        report.files_scanned
    );
    if !report.is_clean() {
        for d in &report.diagnostics {
            eprintln!("{d}");
        }
        panic!(
            "kvlint found {} unsuppressed violation(s); see diagnostics above",
            report.total_violations()
        );
    }
}

#[test]
fn seeded_violation_is_caught() {
    // Build a throwaway mini-workspace containing one forbidden call
    // and prove the full directory pass reports it at file:line.
    let dir = std::env::temp_dir().join(format!("kvlint-seeded-{}", std::process::id()));
    let src = dir.join("crates/demo/src");
    std::fs::create_dir_all(&src).expect("create temp workspace");
    std::fs::write(
        dir.join("Cargo.toml"),
        "[workspace]\nmembers = [\"crates/demo\"]\n",
    )
    .unwrap();
    std::fs::write(
        dir.join("crates/demo/Cargo.toml"),
        "[package]\nname = \"demo\"\n\n[dependencies]\nserde = \"1\"\n",
    )
    .unwrap();
    std::fs::write(
        src.join("lib.rs"),
        "use std::time::Instant;\npub fn now() -> Instant { Instant::now() }\n",
    )
    .unwrap();

    let report = lint_workspace(&dir).expect("temp workspace walk succeeds");
    std::fs::remove_dir_all(&dir).ok();

    assert!(!report.is_clean());
    assert_eq!(report.violations.get("no-wall-clock"), Some(&2));
    assert_eq!(report.violations.get("no-offline-break"), Some(&1));
    let wall = report
        .diagnostics
        .iter()
        .find(|d| d.rule == "no-wall-clock")
        .expect("wall-clock diagnostic present");
    assert_eq!(wall.path, "crates/demo/src/lib.rs");
    assert_eq!(wall.line, 1);
    // The rendered form is the file:line diagnostic the ISSUE demands.
    assert!(wall
        .to_string()
        .starts_with("crates/demo/src/lib.rs:1: no-wall-clock:"));
}

#[test]
fn seeded_panic_sites_ratchet_against_the_baseline() {
    // End-to-end over a throwaway mini-workspace: the full directory
    // pass counts hot-path panic sites, the committed baseline waives
    // exactly its budget, slack is detectable for the strict ratchet,
    // and an over-budget regression turns back into violations.
    let dir = std::env::temp_dir().join(format!("kvlint-ratchet-{}", std::process::id()));
    let src = dir.join("crates/core/src");
    std::fs::create_dir_all(&src).expect("create temp workspace");
    std::fs::write(
        dir.join("Cargo.toml"),
        "[workspace]\nmembers = [\"crates/core\"]\n",
    )
    .unwrap();
    std::fs::write(
        dir.join("crates/core/Cargo.toml"),
        "[package]\nname = \"core\"\n",
    )
    .unwrap();
    let two_sites = "pub fn f(o: Option<u8>) -> u8 {\n    o.unwrap()\n}\n\
                     pub fn g(v: &[u8]) -> u8 {\n    v[0]\n}\n";
    std::fs::write(src.join("device.rs"), two_sites).unwrap();

    // No baseline: every site is a violation.
    let r = lint_workspace(&dir).unwrap();
    assert_eq!(r.violations["panic-surface"], 2, "{:?}", r.diagnostics);
    assert_eq!(r.panic_surface["crates/core/src/device.rs"], 2);

    // A budget of exactly 2 waives them; the count stays visible.
    std::fs::write(
        dir.join("kvlint-baseline.toml"),
        "[panic-surface]\n\"crates/core/src/device.rs\" = 2\n",
    )
    .unwrap();
    let r = lint_workspace(&dir).unwrap();
    assert!(r.is_clean(), "{:?}", r.diagnostics);
    assert_eq!(r.panic_surface_total(), 2);

    // Fixing one site leaves slack the strict ratchet step reports.
    let one_site = "pub fn f(o: Option<u8>) -> Option<u8> {\n    o\n}\n\
                    pub fn g(v: &[u8]) -> u8 {\n    v[0]\n}\n";
    std::fs::write(src.join("device.rs"), one_site).unwrap();
    let r = lint_workspace(&dir).unwrap();
    assert!(r.is_clean(), "within budget: {:?}", r.diagnostics);
    let b = load_baseline(&dir).unwrap().expect("baseline present");
    assert_eq!(
        b.slack(&r.panic_surface),
        vec![("crates/core/src/device.rs".to_string(), 1, 2)]
    );

    // A regression past a (tightened) budget fails the plain gate, and
    // every site in the over-budget file surfaces with file:line.
    std::fs::write(
        dir.join("kvlint-baseline.toml"),
        "[panic-surface]\n\"crates/core/src/device.rs\" = 1\n",
    )
    .unwrap();
    std::fs::write(src.join("device.rs"), two_sites).unwrap();
    let r = lint_workspace(&dir).unwrap();
    std::fs::remove_dir_all(&dir).ok();
    assert_eq!(r.violations["panic-surface"], 2, "{:?}", r.diagnostics);
    assert!(r
        .diagnostics
        .iter()
        .all(|d| d.path == "crates/core/src/device.rs"));
}
