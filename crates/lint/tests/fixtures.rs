//! Every rule, three ways: a fixture that must trigger, the same
//! pattern suppressed by a justified `kvlint: allow` pragma, and a
//! clean file. Plus the pragma-hygiene cases: unknown rule and missing
//! justification are themselves errors.
//!
//! Fixtures live under `crates/lint/fixtures/` (excluded from the
//! workspace pass — they exist to violate the rules) and are linted
//! here through the exact production path (`lint_rust_str` /
//! `lint_manifest_str`) under a library-crate pseudo-path.

use kvssd_lint::rules::{RawDiag, BAD_PRAGMA};
use kvssd_lint::{lint_files, lint_manifest_str, lint_rust_str};

/// Lints a Rust fixture as if it were library-crate source.
fn lint_lib(src: &str) -> (Vec<RawDiag>, Vec<(&'static str, usize)>) {
    lint_rust_str("crates/fixture/src/lib.rs", src)
}

fn rule_lines(diags: &[RawDiag], rule: &str) -> Vec<u32> {
    diags
        .iter()
        .filter(|d| d.rule == rule)
        .map(|d| d.line)
        .collect()
}

fn suppressed_count(sup: &[(&'static str, usize)], rule: &str) -> usize {
    sup.iter().find(|(r, _)| *r == rule).map_or(0, |(_, n)| *n)
}

// ----- no-wall-clock ---------------------------------------------------

#[test]
fn wall_clock_triggers_with_file_lines() {
    let (d, _) = lint_lib(include_str!("../fixtures/wall_clock_trigger.rs"));
    assert_eq!(rule_lines(&d, "no-wall-clock"), vec![2, 5]);
    assert_eq!(d.len(), 2, "{d:?}");
}

#[test]
fn wall_clock_allow_pragma_suppresses() {
    let (d, sup) = lint_lib(include_str!("../fixtures/wall_clock_allowed.rs"));
    assert!(d.is_empty(), "{d:?}");
    assert_eq!(suppressed_count(&sup, "no-wall-clock"), 2);
}

#[test]
fn wall_clock_clean_is_clean() {
    let (d, sup) = lint_lib(include_str!("../fixtures/wall_clock_clean.rs"));
    assert!(d.is_empty(), "{d:?}");
    assert!(sup.is_empty());
}

#[test]
fn fabric_crate_is_not_wall_clock_sanctioned() {
    // The transport simulates a network in virtual time; its timing
    // must come from SimTime/SimDuration, never the host clock. No
    // fabric path is on the allowlist, so wall-clock use anywhere in
    // the crate is an error — checked through the production path with
    // a fabric pseudo-path.
    assert!(
        !kvssd_lint::WALL_CLOCK_ALLOWLIST
            .iter()
            .any(|p| p.contains("fabric")),
        "no fabric module may be wall-clock-sanctioned"
    );
    let (d, sup) = lint_rust_str(
        "crates/fabric/src/link.rs",
        include_str!("../fixtures/fabric_wall_clock_trigger.rs"),
    );
    assert_eq!(rule_lines(&d, "no-wall-clock"), vec![4, 7]);
    assert_eq!(d.len(), 2, "{d:?}");
    assert!(sup.is_empty());
}

// ----- no-random-state-map ---------------------------------------------

#[test]
fn random_state_map_triggers_outside_cfg_test_only() {
    let src = include_str!("../fixtures/random_state_map_trigger.rs");
    let (d, _) = lint_lib(src);
    assert_eq!(rule_lines(&d, "no-random-state-map"), vec![3, 5, 6]);
    assert_eq!(d.len(), 3, "cfg(test) HashSet must be exempt: {d:?}");
    // The same file in a tests/ path class is entirely exempt.
    let (d, _) = lint_rust_str("crates/fixture/tests/model.rs", src);
    assert!(d.is_empty(), "{d:?}");
}

#[test]
fn random_state_map_allow_pragma_suppresses() {
    let (d, sup) = lint_lib(include_str!("../fixtures/random_state_map_allowed.rs"));
    assert!(d.is_empty(), "{d:?}");
    assert_eq!(suppressed_count(&sup, "no-random-state-map"), 1);
}

#[test]
fn random_state_map_clean_is_clean() {
    let (d, sup) = lint_lib(include_str!("../fixtures/random_state_map_clean.rs"));
    assert!(d.is_empty(), "{d:?}");
    assert!(sup.is_empty());
}

// ----- no-env-read -----------------------------------------------------

#[test]
fn env_read_triggers_on_reads_not_writes_or_args() {
    let (d, _) = lint_lib(include_str!("../fixtures/env_read_trigger.rs"));
    assert_eq!(rule_lines(&d, "no-env-read"), vec![4, 7]);
    assert_eq!(d.len(), 2, "set_var/args must not trigger: {d:?}");
}

#[test]
fn env_read_allow_pragma_suppresses() {
    let (d, sup) = lint_lib(include_str!("../fixtures/env_read_allowed.rs"));
    assert!(d.is_empty(), "{d:?}");
    assert_eq!(suppressed_count(&sup, "no-env-read"), 1);
}

#[test]
fn env_read_clean_is_clean() {
    let (d, sup) = lint_lib(include_str!("../fixtures/env_read_clean.rs"));
    assert!(d.is_empty(), "env! is compile-time, not a read: {d:?}");
    assert!(sup.is_empty());
}

// ----- no-unseeded-entropy ---------------------------------------------

#[test]
fn unseeded_entropy_triggers_everywhere_even_tests() {
    let src = include_str!("../fixtures/unseeded_entropy_trigger.rs");
    let (d, _) = lint_lib(src);
    assert_eq!(rule_lines(&d, "no-unseeded-entropy"), vec![4, 5, 6]);
    // Entropy has no test exemption.
    let (d, _) = lint_rust_str("crates/fixture/tests/model.rs", src);
    assert_eq!(d.len(), 3, "{d:?}");
}

#[test]
fn unseeded_entropy_allow_pragma_suppresses() {
    let (d, sup) = lint_lib(include_str!("../fixtures/unseeded_entropy_allowed.rs"));
    assert!(d.is_empty(), "{d:?}");
    assert_eq!(suppressed_count(&sup, "no-unseeded-entropy"), 1);
}

#[test]
fn unseeded_entropy_clean_is_clean() {
    let (d, sup) = lint_lib(include_str!("../fixtures/unseeded_entropy_clean.rs"));
    assert!(d.is_empty(), "{d:?}");
    assert!(sup.is_empty());
}

// ----- no-offline-break ------------------------------------------------

#[test]
fn offline_break_triggers_on_registry_and_git_deps() {
    let (d, _) = lint_manifest_str(include_str!("../fixtures/offline_break_trigger.toml"));
    assert_eq!(rule_lines(&d, "no-offline-break"), vec![9, 10, 13]);
    assert_eq!(d.len(), 3, "path/workspace/optional must pass: {d:?}");
}

#[test]
fn offline_break_allow_pragma_suppresses() {
    let (d, sup) = lint_manifest_str(include_str!("../fixtures/offline_break_allowed.toml"));
    assert!(d.is_empty(), "{d:?}");
    assert_eq!(suppressed_count(&sup, "no-offline-break"), 1);
}

#[test]
fn offline_break_clean_is_clean() {
    let (d, sup) = lint_manifest_str(include_str!("../fixtures/offline_break_clean.toml"));
    assert!(d.is_empty(), "{d:?}");
    assert!(sup.is_empty());
}

// ----- pragma hygiene --------------------------------------------------

#[test]
fn unknown_rule_in_allow_pragma_is_an_error_and_does_not_suppress() {
    let (d, sup) = lint_lib(include_str!("../fixtures/pragma_unknown_rule.rs"));
    assert_eq!(rule_lines(&d, BAD_PRAGMA), vec![4]);
    assert_eq!(rule_lines(&d, "no-wall-clock"), vec![5]);
    assert_eq!(d.len(), 2, "{d:?}");
    assert!(sup.is_empty(), "an invalid pragma must not suppress");
}

#[test]
fn missing_justification_is_an_error_and_does_not_suppress() {
    let (d, sup) = lint_lib(include_str!("../fixtures/pragma_missing_justification.rs"));
    assert_eq!(rule_lines(&d, BAD_PRAGMA), vec![4]);
    assert_eq!(rule_lines(&d, "no-wall-clock"), vec![5]);
    assert!(sup.is_empty());
}

#[test]
fn bad_pragma_itself_cannot_be_allowed() {
    // `allow(bad-pragma)` names a category, not a rule — it is itself a
    // bad pragma, so the escape hatch cannot disable pragma hygiene.
    let (d, _) = lint_lib("// kvlint: allow(bad-pragma) — nice try, not a rule name\n");
    assert_eq!(rule_lines(&d, BAD_PRAGMA), vec![1]);
}

// ----- transitive-taint ------------------------------------------------

/// Lints a two-file pseudo-workspace: the sanctioned timing module plus
/// one library file, through the production workspace pass.
fn lint_with_taint_source(lib_src: &str) -> kvssd_lint::Report {
    let files = [
        (
            "crates/bench/src/walltime.rs".to_string(),
            include_str!("../fixtures/taint_source.rs").to_string(),
        ),
        ("crates/fixture/src/lib.rs".to_string(), lib_src.to_string()),
    ];
    lint_files(&files, None)
}

#[test]
fn transitive_taint_triggers_at_the_laundering_call() {
    let r = lint_with_taint_source(include_str!("../fixtures/taint_trigger.rs"));
    assert_eq!(r.violations["transitive-taint"], 1, "{:?}", r.diagnostics);
    assert_eq!(r.total_violations(), 1);
    let d = &r.diagnostics[0];
    assert_eq!((d.path.as_str(), d.line), ("crates/fixture/src/lib.rs", 3));
    assert!(d.message.contains("checkpoint"), "{}", d.message);
    assert!(d.message.contains("wall-clock"), "{}", d.message);
}

#[test]
fn transitive_taint_allow_pragma_suppresses() {
    let r = lint_with_taint_source(include_str!("../fixtures/taint_allowed.rs"));
    assert!(r.is_clean(), "{:?}", r.diagnostics);
    assert_eq!(r.suppressed["transitive-taint"], 1);
}

#[test]
fn transitive_taint_clean_is_clean() {
    let r = lint_with_taint_source(include_str!("../fixtures/taint_clean.rs"));
    assert!(r.is_clean(), "{:?}", r.diagnostics);
    assert_eq!(r.suppressed["transitive-taint"], 0);
}

// ----- rng-domain-separation -------------------------------------------

#[test]
fn duplicate_rng_domain_triggers_at_both_sites() {
    let (d, _) = lint_lib(include_str!("../fixtures/rng_domain_trigger.rs"));
    assert_eq!(rule_lines(&d, "rng-domain-separation"), vec![3, 6]);
    assert_eq!(d.len(), 2, "{d:?}");
    // Each site's message points at the other site.
    assert!(d[0].message.contains(":6"), "{}", d[0].message);
    assert!(d[1].message.contains(":3"), "{}", d[1].message);
}

#[test]
fn rng_domain_allow_pragma_suppresses() {
    let (d, sup) = lint_lib(include_str!("../fixtures/rng_domain_allowed.rs"));
    assert!(d.is_empty(), "{d:?}");
    assert_eq!(suppressed_count(&sup, "rng-domain-separation"), 2);
}

#[test]
fn rng_domain_clean_is_clean() {
    let (d, sup) = lint_lib(include_str!("../fixtures/rng_domain_clean.rs"));
    assert!(d.is_empty(), "{d:?}");
    assert!(sup.is_empty());
}

// ----- unsafe-requires-safety ------------------------------------------

#[test]
fn unsafe_without_safety_comment_triggers() {
    let (d, _) = lint_lib(include_str!("../fixtures/unsafe_safety_trigger.rs"));
    assert_eq!(rule_lines(&d, "unsafe-requires-safety"), vec![3, 5]);
    assert_eq!(d.len(), 2, "{d:?}");
}

#[test]
fn unsafe_allow_pragma_suppresses() {
    let (d, sup) = lint_lib(include_str!("../fixtures/unsafe_safety_allowed.rs"));
    assert!(d.is_empty(), "{d:?}");
    assert_eq!(suppressed_count(&sup, "unsafe-requires-safety"), 1);
}

#[test]
fn unsafe_with_safety_comment_is_clean() {
    let (d, sup) = lint_lib(include_str!("../fixtures/unsafe_safety_clean.rs"));
    assert!(d.is_empty(), "{d:?}");
    assert!(sup.is_empty(), "SAFETY comments need no pragma");
}

// ----- panic-surface ---------------------------------------------------

/// Lints a panic-surface fixture under a hot-path pseudo-path (the rule
/// only applies to `crates/{core,cluster,fabric}/src/`).
fn lint_hot(src: &str) -> (Vec<RawDiag>, Vec<(&'static str, usize)>) {
    lint_rust_str("crates/core/src/fixture.rs", src)
}

#[test]
fn panic_surface_triggers_per_site_in_hot_path_only() {
    let src = include_str!("../fixtures/panic_surface_trigger.rs");
    let (d, _) = lint_hot(src);
    assert_eq!(rule_lines(&d, "panic-surface"), vec![4, 5, 7]);
    assert_eq!(d.len(), 3, "{d:?}");
    // The same sites outside the hot-path crates are not counted.
    let (d, _) = lint_rust_str("crates/fixture/src/lib.rs", src);
    assert!(d.is_empty(), "{d:?}");
    // Nor in test code of a hot-path crate.
    let (d, _) = lint_rust_str("crates/core/tests/model.rs", src);
    assert!(d.is_empty(), "{d:?}");
}

#[test]
fn panic_surface_allow_pragma_suppresses() {
    let (d, sup) = lint_hot(include_str!("../fixtures/panic_surface_allowed.rs"));
    assert!(d.is_empty(), "{d:?}");
    assert_eq!(suppressed_count(&sup, "panic-surface"), 3);
}

#[test]
fn panic_surface_clean_is_clean() {
    let (d, sup) = lint_hot(include_str!("../fixtures/panic_surface_clean.rs"));
    assert!(d.is_empty(), "{d:?}");
    assert!(sup.is_empty());
}

// ----- dead-pragma -----------------------------------------------------

#[test]
fn stale_pragma_triggers_at_its_own_line() {
    let (d, _) = lint_lib(include_str!("../fixtures/dead_pragma_trigger.rs"));
    assert_eq!(rule_lines(&d, "dead-pragma"), vec![2]);
    assert_eq!(d.len(), 1, "{d:?}");
    assert!(d[0].message.contains("no-wall-clock"), "{}", d[0].message);
}

#[test]
fn prophylactic_pragma_kept_by_allow_dead_pragma() {
    let (d, sup) = lint_lib(include_str!("../fixtures/dead_pragma_allowed.rs"));
    assert!(d.is_empty(), "{d:?}");
    assert_eq!(suppressed_count(&sup, "dead-pragma"), 1);
}

#[test]
fn live_pragma_is_not_dead() {
    let (d, sup) = lint_lib(include_str!("../fixtures/dead_pragma_clean.rs"));
    assert!(d.is_empty(), "{d:?}");
    assert_eq!(suppressed_count(&sup, "no-wall-clock"), 1);
    assert_eq!(suppressed_count(&sup, "dead-pragma"), 0);
}
