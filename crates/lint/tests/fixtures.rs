//! Every rule, three ways: a fixture that must trigger, the same
//! pattern suppressed by a justified `kvlint: allow` pragma, and a
//! clean file. Plus the pragma-hygiene cases: unknown rule and missing
//! justification are themselves errors.
//!
//! Fixtures live under `crates/lint/fixtures/` (excluded from the
//! workspace pass — they exist to violate the rules) and are linted
//! here through the exact production path (`lint_rust_str` /
//! `lint_manifest_str`) under a library-crate pseudo-path.

use kvssd_lint::rules::{RawDiag, BAD_PRAGMA};
use kvssd_lint::{lint_manifest_str, lint_rust_str};

/// Lints a Rust fixture as if it were library-crate source.
fn lint_lib(src: &str) -> (Vec<RawDiag>, Vec<(&'static str, usize)>) {
    lint_rust_str("crates/fixture/src/lib.rs", src)
}

fn rule_lines(diags: &[RawDiag], rule: &str) -> Vec<u32> {
    diags
        .iter()
        .filter(|d| d.rule == rule)
        .map(|d| d.line)
        .collect()
}

fn suppressed_count(sup: &[(&'static str, usize)], rule: &str) -> usize {
    sup.iter().find(|(r, _)| *r == rule).map_or(0, |(_, n)| *n)
}

// ----- no-wall-clock ---------------------------------------------------

#[test]
fn wall_clock_triggers_with_file_lines() {
    let (d, _) = lint_lib(include_str!("../fixtures/wall_clock_trigger.rs"));
    assert_eq!(rule_lines(&d, "no-wall-clock"), vec![2, 5]);
    assert_eq!(d.len(), 2, "{d:?}");
}

#[test]
fn wall_clock_allow_pragma_suppresses() {
    let (d, sup) = lint_lib(include_str!("../fixtures/wall_clock_allowed.rs"));
    assert!(d.is_empty(), "{d:?}");
    assert_eq!(suppressed_count(&sup, "no-wall-clock"), 2);
}

#[test]
fn wall_clock_clean_is_clean() {
    let (d, sup) = lint_lib(include_str!("../fixtures/wall_clock_clean.rs"));
    assert!(d.is_empty(), "{d:?}");
    assert!(sup.is_empty());
}

#[test]
fn fabric_crate_is_not_wall_clock_sanctioned() {
    // The transport simulates a network in virtual time; its timing
    // must come from SimTime/SimDuration, never the host clock. No
    // fabric path is on the allowlist, so wall-clock use anywhere in
    // the crate is an error — checked through the production path with
    // a fabric pseudo-path.
    assert!(
        !kvssd_lint::WALL_CLOCK_ALLOWLIST
            .iter()
            .any(|p| p.contains("fabric")),
        "no fabric module may be wall-clock-sanctioned"
    );
    let (d, sup) = lint_rust_str(
        "crates/fabric/src/link.rs",
        include_str!("../fixtures/fabric_wall_clock_trigger.rs"),
    );
    assert_eq!(rule_lines(&d, "no-wall-clock"), vec![4, 7]);
    assert_eq!(d.len(), 2, "{d:?}");
    assert!(sup.is_empty());
}

// ----- no-random-state-map ---------------------------------------------

#[test]
fn random_state_map_triggers_outside_cfg_test_only() {
    let src = include_str!("../fixtures/random_state_map_trigger.rs");
    let (d, _) = lint_lib(src);
    assert_eq!(rule_lines(&d, "no-random-state-map"), vec![3, 5, 6]);
    assert_eq!(d.len(), 3, "cfg(test) HashSet must be exempt: {d:?}");
    // The same file in a tests/ path class is entirely exempt.
    let (d, _) = lint_rust_str("crates/fixture/tests/model.rs", src);
    assert!(d.is_empty(), "{d:?}");
}

#[test]
fn random_state_map_allow_pragma_suppresses() {
    let (d, sup) = lint_lib(include_str!("../fixtures/random_state_map_allowed.rs"));
    assert!(d.is_empty(), "{d:?}");
    assert_eq!(suppressed_count(&sup, "no-random-state-map"), 1);
}

#[test]
fn random_state_map_clean_is_clean() {
    let (d, sup) = lint_lib(include_str!("../fixtures/random_state_map_clean.rs"));
    assert!(d.is_empty(), "{d:?}");
    assert!(sup.is_empty());
}

// ----- no-env-read -----------------------------------------------------

#[test]
fn env_read_triggers_on_reads_not_writes_or_args() {
    let (d, _) = lint_lib(include_str!("../fixtures/env_read_trigger.rs"));
    assert_eq!(rule_lines(&d, "no-env-read"), vec![4, 7]);
    assert_eq!(d.len(), 2, "set_var/args must not trigger: {d:?}");
}

#[test]
fn env_read_allow_pragma_suppresses() {
    let (d, sup) = lint_lib(include_str!("../fixtures/env_read_allowed.rs"));
    assert!(d.is_empty(), "{d:?}");
    assert_eq!(suppressed_count(&sup, "no-env-read"), 1);
}

#[test]
fn env_read_clean_is_clean() {
    let (d, sup) = lint_lib(include_str!("../fixtures/env_read_clean.rs"));
    assert!(d.is_empty(), "env! is compile-time, not a read: {d:?}");
    assert!(sup.is_empty());
}

// ----- no-unseeded-entropy ---------------------------------------------

#[test]
fn unseeded_entropy_triggers_everywhere_even_tests() {
    let src = include_str!("../fixtures/unseeded_entropy_trigger.rs");
    let (d, _) = lint_lib(src);
    assert_eq!(rule_lines(&d, "no-unseeded-entropy"), vec![4, 5, 6]);
    // Entropy has no test exemption.
    let (d, _) = lint_rust_str("crates/fixture/tests/model.rs", src);
    assert_eq!(d.len(), 3, "{d:?}");
}

#[test]
fn unseeded_entropy_allow_pragma_suppresses() {
    let (d, sup) = lint_lib(include_str!("../fixtures/unseeded_entropy_allowed.rs"));
    assert!(d.is_empty(), "{d:?}");
    assert_eq!(suppressed_count(&sup, "no-unseeded-entropy"), 1);
}

#[test]
fn unseeded_entropy_clean_is_clean() {
    let (d, sup) = lint_lib(include_str!("../fixtures/unseeded_entropy_clean.rs"));
    assert!(d.is_empty(), "{d:?}");
    assert!(sup.is_empty());
}

// ----- no-offline-break ------------------------------------------------

#[test]
fn offline_break_triggers_on_registry_and_git_deps() {
    let (d, _) = lint_manifest_str(include_str!("../fixtures/offline_break_trigger.toml"));
    assert_eq!(rule_lines(&d, "no-offline-break"), vec![9, 10, 13]);
    assert_eq!(d.len(), 3, "path/workspace/optional must pass: {d:?}");
}

#[test]
fn offline_break_allow_pragma_suppresses() {
    let (d, sup) = lint_manifest_str(include_str!("../fixtures/offline_break_allowed.toml"));
    assert!(d.is_empty(), "{d:?}");
    assert_eq!(suppressed_count(&sup, "no-offline-break"), 1);
}

#[test]
fn offline_break_clean_is_clean() {
    let (d, sup) = lint_manifest_str(include_str!("../fixtures/offline_break_clean.toml"));
    assert!(d.is_empty(), "{d:?}");
    assert!(sup.is_empty());
}

// ----- pragma hygiene --------------------------------------------------

#[test]
fn unknown_rule_in_allow_pragma_is_an_error_and_does_not_suppress() {
    let (d, sup) = lint_lib(include_str!("../fixtures/pragma_unknown_rule.rs"));
    assert_eq!(rule_lines(&d, BAD_PRAGMA), vec![4]);
    assert_eq!(rule_lines(&d, "no-wall-clock"), vec![5]);
    assert_eq!(d.len(), 2, "{d:?}");
    assert!(sup.is_empty(), "an invalid pragma must not suppress");
}

#[test]
fn missing_justification_is_an_error_and_does_not_suppress() {
    let (d, sup) = lint_lib(include_str!("../fixtures/pragma_missing_justification.rs"));
    assert_eq!(rule_lines(&d, BAD_PRAGMA), vec![4]);
    assert_eq!(rule_lines(&d, "no-wall-clock"), vec![5]);
    assert!(sup.is_empty());
}

#[test]
fn bad_pragma_itself_cannot_be_allowed() {
    // `allow(bad-pragma)` names a category, not a rule — it is itself a
    // bad pragma, so the escape hatch cannot disable pragma hygiene.
    let (d, _) = lint_lib("// kvlint: allow(bad-pragma) — nice try, not a rule name\n");
    assert_eq!(rule_lines(&d, BAD_PRAGMA), vec![1]);
}
