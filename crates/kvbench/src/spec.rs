//! Workload descriptions.

/// How keys are chosen for each operation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum AccessPattern {
    /// Keys in increasing index order.
    Sequential,
    /// Uniformly random key indices.
    Uniform,
    /// Zipf-skewed key indices (scrambled, YCSB-style). The paper's
    /// skewed pattern; theta 0.99 is the customary default.
    Zipfian {
        /// Skew parameter in (0, 1).
        theta: f64,
    },
    /// The paper's footnote-2 pseudo-random pattern (Fig. 6c): a small
    /// window slides across the whole key population; each op picks a
    /// uniformly random key *within* the window.
    SlidingWindow {
        /// Window width in keys.
        window: u64,
    },
}

/// What each operation does.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpMix {
    /// Insert new keys (indices advance past the existing population).
    InsertOnly,
    /// Overwrite existing keys.
    UpdateOnly,
    /// Read existing keys.
    ReadOnly,
    /// Reads and updates of existing keys.
    Mixed {
        /// Percent of operations that are reads (0..=100).
        read_pct: u8,
    },
    /// YCSB-D semantics: inserts grow the population from
    /// `insert_base + key_space`; reads sample recency-skewed (Zipfian
    /// over the most recent keys).
    ReadLatest {
        /// Percent of operations that are reads (0..=100).
        read_pct: u8,
    },
}

/// Value sizing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ValueSize {
    /// Every value has this many bytes.
    Fixed(u32),
    /// Uniformly random in `[lo, hi]`.
    Uniform {
        /// Smallest value size.
        lo: u32,
        /// Largest value size.
        hi: u32,
    },
    /// A discrete weighted mixture of sizes (up to six buckets; zero
    /// weights disable a bucket). Used for real-trace-shaped value
    /// distributions like Facebook's RocksDB deployments (Cao et al.,
    /// FAST '20 — the paper's reference `[14]`, with KVP averages of
    /// 57-154 B).
    Discrete {
        /// (size bytes, relative weight) buckets.
        choices: [(u32, u32); 6],
    },
}

impl ValueSize {
    /// Facebook ZippyDB-flavored mixture from the paper's reference
    /// `[14]`: tiny values dominate, with a thin tail of larger ones
    /// (mean ~115 B).
    pub fn facebook_like() -> Self {
        ValueSize::Discrete {
            choices: [
                (30, 28),
                (60, 32),
                (100, 20),
                (200, 13),
                (500, 6),
                (2048, 1),
            ],
        }
    }

    /// Mean value size (for bandwidth math).
    pub fn mean(&self) -> u64 {
        match *self {
            ValueSize::Fixed(n) => n as u64,
            ValueSize::Uniform { lo, hi } => (lo as u64 + hi as u64) / 2,
            ValueSize::Discrete { choices } => {
                let wsum: u64 = choices.iter().map(|&(_, w)| w as u64).sum();
                if wsum == 0 {
                    return 0;
                }
                choices
                    .iter()
                    .map(|&(s, w)| s as u64 * w as u64)
                    .sum::<u64>()
                    / wsum
            }
        }
    }
}

/// One benchmark phase: `ops` operations against a population of
/// `key_space` keys.
#[derive(Debug, Clone)]
pub struct WorkloadSpec {
    /// Label for reports.
    pub name: String,
    /// Key-choice pattern.
    pub pattern: AccessPattern,
    /// Operation mix.
    pub mix: OpMix,
    /// Operations to run.
    pub ops: u64,
    /// Number of distinct keys in the population (updates/reads index
    /// into it; inserts grow it from `insert_base`).
    pub key_space: u64,
    /// First key index inserts use (so phases can append populations).
    pub insert_base: u64,
    /// Key length in bytes (the paper's default is 16 B).
    pub key_bytes: usize,
    /// Value sizing (the paper's default is 4 KiB).
    pub value: ValueSize,
    /// Outstanding-request budget.
    pub queue_depth: usize,
    /// RNG seed (runs are deterministic per seed).
    pub seed: u64,
}

impl WorkloadSpec {
    /// A builder-style default: uniform updates, 16 B keys, 4 KiB values,
    /// QD 1 — override fields as needed.
    pub fn new(name: impl Into<String>, ops: u64, key_space: u64) -> Self {
        WorkloadSpec {
            name: name.into(),
            pattern: AccessPattern::Uniform,
            mix: OpMix::UpdateOnly,
            ops,
            key_space,
            insert_base: 0,
            key_bytes: 16,
            value: ValueSize::Fixed(4096),
            queue_depth: 1,
            seed: 42,
        }
    }

    /// Sets the access pattern.
    pub fn pattern(mut self, p: AccessPattern) -> Self {
        self.pattern = p;
        self
    }

    /// Sets the op mix.
    pub fn mix(mut self, m: OpMix) -> Self {
        self.mix = m;
        self
    }

    /// Sets the value size.
    pub fn value(mut self, v: ValueSize) -> Self {
        self.value = v;
        self
    }

    /// Sets the key length.
    pub fn key_bytes(mut self, n: usize) -> Self {
        self.key_bytes = n;
        self
    }

    /// Sets the queue depth.
    pub fn queue_depth(mut self, qd: usize) -> Self {
        self.queue_depth = qd;
        self
    }

    /// Sets the RNG seed.
    pub fn seed(mut self, s: u64) -> Self {
        self.seed = s;
        self
    }

    /// Sets the first index inserts allocate.
    pub fn insert_base(mut self, base: u64) -> Self {
        self.insert_base = base;
        self
    }

    /// Validates internal consistency.
    ///
    /// # Panics
    ///
    /// Panics on contradictory settings.
    pub fn validate(&self) {
        assert!(self.ops > 0, "a workload needs operations");
        assert!(self.queue_depth >= 1);
        assert!(self.key_bytes >= 4 && self.key_bytes <= 255);
        if !matches!(self.mix, OpMix::InsertOnly) {
            assert!(self.key_space > 0, "updates/reads need a population");
        }
        if let AccessPattern::Zipfian { theta } = self.pattern {
            assert!(theta > 0.0 && theta < 1.0);
        }
        if let AccessPattern::SlidingWindow { window } = self.pattern {
            assert!(window >= 1 && window <= self.key_space.max(1));
        }
        if let OpMix::Mixed { read_pct } | OpMix::ReadLatest { read_pct } = self.mix {
            assert!(read_pct <= 100);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_defaults_match_paper() {
        let s = WorkloadSpec::new("w", 10, 10);
        assert_eq!(s.key_bytes, 16);
        assert_eq!(s.value, ValueSize::Fixed(4096));
        s.validate();
    }

    #[test]
    fn value_mean() {
        assert_eq!(ValueSize::Fixed(100).mean(), 100);
        assert_eq!(ValueSize::Uniform { lo: 100, hi: 300 }.mean(), 200);
        let fb = ValueSize::facebook_like();
        let m = fb.mean();
        assert!(
            (57..=154).contains(&m),
            "facebook mixture mean {m} should match the paper's 57-154 B band"
        );
    }

    #[test]
    #[should_panic(expected = "population")]
    fn update_without_population_rejected() {
        WorkloadSpec::new("w", 10, 0).validate();
    }

    #[test]
    #[should_panic]
    fn bad_window_rejected() {
        WorkloadSpec::new("w", 10, 10)
            .pattern(AccessPattern::SlidingWindow { window: 100 })
            .validate();
    }
}
