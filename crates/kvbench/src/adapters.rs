//! [`KvStore`] adapters for the four systems under study.
//!
//! Each adapter owns its whole stack (device included) so experiments
//! compare like against like, and charges the host-side CPU the paper's
//! `dstat` comparison would see: the KV path is a thin API library; the
//! software stores carry their own weight.

use kvssd_block_ftl::BlockSsd;
use kvssd_cluster::KvCluster;
use kvssd_core::{KvSsd, Payload};
use kvssd_hash_store::HashStore;
use kvssd_host_stack::HostCpu;
use kvssd_lsm_store::LsmStore;
use kvssd_sim::{SimDuration, SimTime};

use crate::{KvStore, SpaceUsage};

/// The KV-SSD through the SNIA KV API library: per-op host work is
/// little more than command marshalling.
#[derive(Debug)]
pub struct KvSsdStore {
    device: KvSsd,
    host: HostCpu,
    api_cost: SimDuration,
}

impl KvSsdStore {
    /// Wraps a KV-SSD device.
    pub fn new(device: KvSsd) -> Self {
        KvSsdStore {
            device,
            host: HostCpu::new(8),
            api_cost: SimDuration::from_micros(1),
        }
    }

    /// The device inside (for device-level statistics).
    pub fn device(&self) -> &KvSsd {
        &self.device
    }

    /// Mutable device access (experiments flush between phases).
    pub fn device_mut(&mut self) -> &mut KvSsd {
        &mut self.device
    }
}

impl KvStore for KvSsdStore {
    fn name(&self) -> &'static str {
        "KV-SSD"
    }

    fn insert(&mut self, now: SimTime, key: &[u8], value_len: u32, tag: u64) -> SimTime {
        let t = self.host.run(now, self.api_cost);
        self.device
            .store(t, key, Payload::synthetic(value_len, tag))
            .expect("store within device limits")
    }

    fn read(&mut self, now: SimTime, key: &[u8]) -> (SimTime, bool) {
        let t = self.host.run(now, self.api_cost);
        let l = self.device.retrieve(t, key).expect("valid key");
        (l.at, l.value.is_some())
    }

    fn delete(&mut self, now: SimTime, key: &[u8]) -> SimTime {
        let t = self.host.run(now, self.api_cost);
        self.device.delete(t, key).expect("valid key").0
    }

    fn flush(&mut self, now: SimTime) -> SimTime {
        self.device.flush(now).expect("flush programs open pages")
    }

    fn host_cpu_busy(&self) -> SimDuration {
        self.host.busy_total()
    }

    fn space(&self) -> SpaceUsage {
        let s = self.device.space();
        SpaceUsage {
            user_bytes: s.user_bytes,
            stored_bytes: s.allocated_bytes,
        }
    }
}

/// A sharded KV-SSD cluster through the same thin API library: the host
/// work per op is identical to [`KvSsdStore`] (hashing a key is noise
/// next to command marshalling), so a 1-shard cluster behind the
/// pass-through submission queue reproduces the single-device numbers
/// bit for bit while N shards scale the device side out.
#[derive(Debug)]
pub struct ClusterStore {
    cluster: KvCluster,
    host: HostCpu,
    api_cost: SimDuration,
}

impl ClusterStore {
    /// Wraps a cluster.
    pub fn new(cluster: KvCluster) -> Self {
        ClusterStore {
            cluster,
            host: HostCpu::new(8),
            api_cost: SimDuration::from_micros(1),
        }
    }

    /// The cluster inside (for shard-level statistics).
    pub fn cluster(&self) -> &KvCluster {
        &self.cluster
    }

    /// Mutable cluster access (experiments add/remove shards).
    pub fn cluster_mut(&mut self) -> &mut KvCluster {
        &mut self.cluster
    }
}

impl KvStore for ClusterStore {
    fn name(&self) -> &'static str {
        "KV-SSD cluster"
    }

    fn insert(&mut self, now: SimTime, key: &[u8], value_len: u32, tag: u64) -> SimTime {
        let t = self.host.run(now, self.api_cost);
        self.cluster
            .store(t, key, Payload::synthetic(value_len, tag))
            .expect("store within cluster limits")
    }

    fn read(&mut self, now: SimTime, key: &[u8]) -> (SimTime, bool) {
        let t = self.host.run(now, self.api_cost);
        let l = self.cluster.retrieve(t, key).expect("valid key");
        (l.at, l.value.is_some())
    }

    fn delete(&mut self, now: SimTime, key: &[u8]) -> SimTime {
        let t = self.host.run(now, self.api_cost);
        self.cluster.delete(t, key).expect("valid key").0
    }

    fn flush(&mut self, now: SimTime) -> SimTime {
        self.cluster.flush(now).expect("flush programs open pages")
    }

    fn host_cpu_busy(&self) -> SimDuration {
        self.host.busy_total()
    }

    fn space(&self) -> SpaceUsage {
        let s = self.cluster.space();
        SpaceUsage {
            user_bytes: s.user_bytes,
            stored_bytes: s.allocated_bytes,
        }
    }

    /// The cluster's bulk fast path: identical op sequence to the
    /// default implementation (host charge, then the cluster op), but
    /// monomorphized against `KvCluster` so the workload loop skips the
    /// per-op trait dispatch through `insert`/`read`.
    fn run_ops(
        &mut self,
        runner: &mut kvssd_sim::QueueRunner,
        batch: &crate::OpBatch,
        rec: &mut crate::PhaseRecorder<'_>,
    ) {
        for (op, key) in batch.iter() {
            let mut found = true;
            let timing = runner.submit(|issue| {
                let t = self.host.run(issue, self.api_cost);
                if op.is_read {
                    let l = self.cluster.retrieve(t, key).expect("valid key");
                    found = l.value.is_some();
                    l.at
                } else {
                    self.cluster
                        .store(t, key, Payload::synthetic(op.value_len, op.tag))
                        .expect("store within cluster limits")
                }
            });
            rec.record(op, key.len(), timing, found);
        }
    }
}

/// The RocksDB-like store on ext4 over the block-SSD.
#[derive(Debug)]
pub struct LsmKvStore {
    store: LsmStore,
}

impl LsmKvStore {
    /// Wraps an LSM store.
    pub fn new(store: LsmStore) -> Self {
        LsmKvStore { store }
    }

    /// The store inside (for stall/compaction statistics).
    pub fn inner(&self) -> &LsmStore {
        &self.store
    }
}

impl KvStore for LsmKvStore {
    fn name(&self) -> &'static str {
        "RocksDB"
    }

    fn insert(&mut self, now: SimTime, key: &[u8], value_len: u32, tag: u64) -> SimTime {
        self.store.put(now, key, Payload::synthetic(value_len, tag))
    }

    fn read(&mut self, now: SimTime, key: &[u8]) -> (SimTime, bool) {
        let (t, v) = self.store.get(now, key);
        (t, v.is_some())
    }

    fn delete(&mut self, now: SimTime, key: &[u8]) -> SimTime {
        self.store.delete(now, key)
    }

    fn flush(&mut self, now: SimTime) -> SimTime {
        self.store.flush_all(now)
    }

    fn host_cpu_busy(&self) -> SimDuration {
        self.store.cpu_busy_total()
    }

    fn space(&self) -> SpaceUsage {
        SpaceUsage {
            user_bytes: self.store.user_bytes(),
            stored_bytes: self.store.disk_bytes(),
        }
    }
}

/// The Aerospike-like store with direct device I/O.
#[derive(Debug)]
pub struct HashKvStore {
    store: HashStore,
}

impl HashKvStore {
    /// Wraps a hash store.
    pub fn new(store: HashStore) -> Self {
        HashKvStore { store }
    }

    /// The store inside (for defrag statistics).
    pub fn inner(&self) -> &HashStore {
        &self.store
    }
}

impl KvStore for HashKvStore {
    fn name(&self) -> &'static str {
        "Aerospike"
    }

    fn insert(&mut self, now: SimTime, key: &[u8], value_len: u32, tag: u64) -> SimTime {
        self.store.put(now, key, Payload::synthetic(value_len, tag))
    }

    fn read(&mut self, now: SimTime, key: &[u8]) -> (SimTime, bool) {
        let (t, v) = self.store.get(now, key);
        (t, v.is_some())
    }

    fn delete(&mut self, now: SimTime, key: &[u8]) -> SimTime {
        self.store.delete(now, key).0
    }

    fn flush(&mut self, now: SimTime) -> SimTime {
        self.store.flush(now)
    }

    fn host_cpu_busy(&self) -> SimDuration {
        self.store.cpu().busy_total()
    }

    fn space(&self) -> SpaceUsage {
        SpaceUsage {
            user_bytes: self.store.user_bytes(),
            stored_bytes: self.store.live_device_bytes(),
        }
    }
}

/// Raw block-device direct I/O: each key owns a fixed 512 B-aligned slot
/// sized for the value. This is the paper's "block-SSD direct I/O"
/// baseline (Figs. 3–5): same request sizes as the KV side, no store
/// logic at all.
#[derive(Debug)]
pub struct RawBlockStore {
    device: BlockSsd,
    host: HostCpu,
    slot_bytes: u64,
    slots: kvssd_sim::PrehashedMap<Box<[u8]>, u64>,
    next_slot: u64,
    user_bytes: u64,
}

impl RawBlockStore {
    /// Wraps a block device with `value_bytes`-sized slots.
    pub fn new(device: BlockSsd, value_bytes: u32) -> Self {
        let slot_bytes = (value_bytes as u64).div_ceil(512).max(1) * 512;
        RawBlockStore {
            device,
            host: HostCpu::new(8),
            slot_bytes,
            slots: kvssd_sim::PrehashedMap::default(),
            next_slot: 0,
            user_bytes: 0,
        }
    }

    /// The device inside.
    pub fn device(&self) -> &BlockSsd {
        &self.device
    }

    /// Mutable device access.
    pub fn device_mut(&mut self) -> &mut BlockSsd {
        &mut self.device
    }

    fn slot_of(&mut self, key: &[u8]) -> u64 {
        if let Some(&s) = self.slots.get(key) {
            return s;
        }
        let s = self.next_slot;
        assert!(
            (s + 1) * self.slot_bytes <= self.device.capacity_bytes(),
            "raw store out of slots"
        );
        self.next_slot += 1;
        self.slots.insert(key.into(), s);
        s
    }
}

impl KvStore for RawBlockStore {
    fn name(&self) -> &'static str {
        "Block direct I/O"
    }

    fn insert(&mut self, now: SimTime, key: &[u8], value_len: u32, _tag: u64) -> SimTime {
        let t = self.host.run(now, SimDuration::from_micros(1));
        let new = !self.slots.contains_key(key);
        let slot = self.slot_of(key);
        if new {
            self.user_bytes += key.len() as u64 + value_len as u64;
        }
        let bytes = (value_len as u64).div_ceil(512).max(1) * 512;
        self.device
            .write(t, slot * self.slot_bytes, bytes.min(self.slot_bytes))
            .expect("raw write in range")
    }

    fn read(&mut self, now: SimTime, key: &[u8]) -> (SimTime, bool) {
        let t = self.host.run(now, SimDuration::from_micros(1));
        match self.slots.get(key) {
            Some(&slot) => {
                let done = self
                    .device
                    .read(t, slot * self.slot_bytes, self.slot_bytes)
                    .expect("raw read in range");
                (done, true)
            }
            None => (t, false),
        }
    }

    fn delete(&mut self, now: SimTime, key: &[u8]) -> SimTime {
        let t = self.host.run(now, SimDuration::from_micros(1));
        if let Some(slot) = self.slots.remove(key) {
            self.user_bytes = self.user_bytes.saturating_sub(key.len() as u64);
            return self
                .device
                .trim(t, slot * self.slot_bytes, self.slot_bytes)
                .expect("raw trim in range");
        }
        t
    }

    fn flush(&mut self, now: SimTime) -> SimTime {
        self.device.flush(now)
    }

    fn host_cpu_busy(&self) -> SimDuration {
        self.host.busy_total()
    }

    fn space(&self) -> SpaceUsage {
        SpaceUsage {
            user_bytes: self.user_bytes.max(1),
            stored_bytes: self.slots.len() as u64 * self.slot_bytes,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kvssd_block_ftl::BlockFtlConfig;
    use kvssd_core::KvConfig;
    use kvssd_flash::{FlashTiming, Geometry};
    use kvssd_hash_store::HashStoreConfig;
    use kvssd_host_stack::ExtFs;
    use kvssd_lsm_store::LsmConfig;

    fn all_stores() -> Vec<Box<dyn KvStore>> {
        let g = Geometry::small();
        let timing = FlashTiming::pm983_like();
        vec![
            Box::new(KvSsdStore::new(KvSsd::new(g, timing, KvConfig::small()))),
            Box::new(ClusterStore::new(KvCluster::for_test(2))),
            Box::new(LsmKvStore::new(LsmStore::new(
                ExtFs::format(BlockSsd::new(g, timing, BlockFtlConfig::pm983_like())),
                LsmConfig::tiny(),
            ))),
            Box::new(HashKvStore::new(HashStore::new(
                BlockSsd::new(g, timing, BlockFtlConfig::pm983_like()),
                HashStoreConfig::aerospike_like(),
            ))),
            Box::new(RawBlockStore::new(
                BlockSsd::new(g, timing, BlockFtlConfig::pm983_like()),
                4096,
            )),
        ]
    }

    #[test]
    fn every_adapter_round_trips() {
        for mut s in all_stores() {
            let t = s.insert(SimTime::ZERO, b"adapter-key", 512, 7);
            let (t2, found) = s.read(t, b"adapter-key");
            assert!(found, "{} lost the key", s.name());
            assert!(t2 >= t);
            let (_, missing) = s.read(t2, b"absent-key-xx");
            assert!(!missing, "{} invented a key", s.name());
        }
    }

    #[test]
    fn every_adapter_deletes() {
        for mut s in all_stores() {
            let t = s.insert(SimTime::ZERO, b"doomed-key", 128, 0);
            let t = s.delete(t, b"doomed-key");
            let (_, found) = s.read(t, b"doomed-key");
            assert!(!found, "{} kept a deleted key", s.name());
        }
    }

    #[test]
    fn every_adapter_reports_space_and_cpu() {
        for mut s in all_stores() {
            let mut t = SimTime::ZERO;
            for i in 0..50u64 {
                t = s.insert(t, format!("spacekey{i:08}").as_bytes(), 1000, i);
            }
            let sp = s.space();
            assert!(sp.user_bytes > 0, "{}", s.name());
            assert!(sp.stored_bytes > 0, "{}", s.name());
            assert!(sp.amplification() >= 0.9, "{}", s.name());
            assert!(
                s.host_cpu_busy() > SimDuration::ZERO,
                "{} reported no CPU",
                s.name()
            );
        }
    }

    #[test]
    fn kv_api_uses_least_host_cpu() {
        let mut stores = all_stores();
        let mut cpu = Vec::new();
        for s in &mut stores {
            let mut t = SimTime::ZERO;
            for i in 0..200u64 {
                t = s.insert(t, format!("cpukey{i:010}").as_bytes(), 512, i);
            }
            cpu.push((s.name(), s.host_cpu_busy()));
        }
        let kv = cpu.iter().find(|(n, _)| *n == "KV-SSD").unwrap().1;
        let rdb = cpu.iter().find(|(n, _)| *n == "RocksDB").unwrap().1;
        assert!(
            kv.as_nanos() * 3 < rdb.as_nanos(),
            "KV API should use far less host CPU ({kv} vs {rdb})"
        );
    }
}
