//! Deterministic key generation.
//!
//! Keys are derived from a dense index space `0..n`: a fixed 4-byte
//! prefix (which doubles as the KV-SSD's iterator bucket), a zero-padded
//! decimal body, and optional padding to reach the requested length.
//! `key(i)` is injective and stable, so phases can regenerate the same
//! population without storing it.

/// Generates fixed-length keys from dense indices.
#[derive(Debug, Clone)]
pub struct KeyGen {
    prefix: [u8; 4],
    key_bytes: usize,
}

impl KeyGen {
    /// A generator for `key_bytes`-long keys (minimum 4: the prefix).
    ///
    /// # Panics
    ///
    /// Panics if `key_bytes` is out of the device's 4..=255 range.
    pub fn new(key_bytes: usize) -> Self {
        Self::with_prefix(*b"usr.", key_bytes)
    }

    /// A generator with an explicit 4-byte prefix (iterator bucket).
    pub fn with_prefix(prefix: [u8; 4], key_bytes: usize) -> Self {
        assert!(
            (4..=255).contains(&key_bytes),
            "key length {key_bytes} outside the device's 4..=255"
        );
        KeyGen { prefix, key_bytes }
    }

    /// Key length produced.
    pub fn key_bytes(&self) -> usize {
        self.key_bytes
    }

    /// The key for index `i`.
    pub fn key(&self, i: u64) -> Vec<u8> {
        let mut k = Vec::with_capacity(self.key_bytes);
        self.key_into(i, &mut k);
        k
    }

    /// Writes the key for index `i` into `buf`, clearing it first. Hot
    /// loops reuse one buffer across ops instead of allocating per key.
    pub fn key_into(&self, i: u64, buf: &mut Vec<u8>) {
        buf.clear();
        let k = buf;
        k.extend_from_slice(&self.prefix);
        if self.key_bytes <= 4 {
            k.truncate(self.key_bytes);
            return;
        }
        let body = self.key_bytes - 4;
        if body >= 20 {
            // Room for the full decimal form plus filler.
            let digits = format!("{i:020}");
            k.extend_from_slice(digits.as_bytes());
            while k.len() < self.key_bytes {
                k.push(b'x');
            }
        } else {
            // Compact base-36 body, zero-padded; 8 base-36 digits cover
            // 2.8e12 indices — far beyond any run here.
            let mut buf = [b'0'; 20];
            let mut v = i;
            let mut pos = body;
            while pos > 0 {
                pos -= 1;
                let d = (v % 36) as u8;
                buf[pos] = if d < 10 { b'0' + d } else { b'a' + d - 10 };
                v /= 36;
            }
            assert_eq!(v, 0, "index {i} does not fit in a {body}-char key body");
            k.extend_from_slice(&buf[..body]);
        }
        debug_assert_eq!(k.len(), self.key_bytes);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kvssd_sim::PrehashedSet;

    #[test]
    fn keys_have_requested_length() {
        for len in [4, 8, 16, 24, 64, 255] {
            let g = KeyGen::new(len);
            assert_eq!(g.key(0).len(), len);
            assert_eq!(g.key(123_456).len(), len);
        }
    }

    #[test]
    fn keys_are_unique() {
        let g = KeyGen::new(16);
        let mut seen = PrehashedSet::default();
        for i in 0..100_000 {
            assert!(seen.insert(g.key(i)), "duplicate at {i}");
        }
    }

    #[test]
    fn keys_share_iterator_prefix() {
        let g = KeyGen::new(16);
        assert_eq!(&g.key(7)[..4], b"usr.");
        let g2 = KeyGen::with_prefix(*b"sens", 16);
        assert_eq!(&g2.key(7)[..4], b"sens");
    }

    #[test]
    fn sequential_indices_make_ordered_keys() {
        let g = KeyGen::new(16);
        let a = g.key(41);
        let b = g.key(42);
        assert!(a < b, "key order must follow index order");
    }

    #[test]
    fn key_into_matches_key_exactly() {
        // The hot path reuses one buffer via `key_into`; it must produce
        // byte-identical keys to the allocating `key`, including after
        // reuse with longer prior contents.
        for len in [4, 8, 16, 24, 64] {
            let g = KeyGen::new(len);
            let mut buf = vec![0xAAu8; 300];
            for i in [0u64, 1, 35, 36, 1000, 123_456_789] {
                // Skip indices past the body's base-36 capacity (the
                // overflow panic is covered by `overflowing_body_panics`).
                let body = len.saturating_sub(4) as u32;
                if (1..20).contains(&body) && i >= 36u64.saturating_pow(body) {
                    continue;
                }
                g.key_into(i, &mut buf);
                assert_eq!(buf, g.key(i), "len={len} i={i}");
            }
        }
    }

    #[test]
    fn tiny_keys_work() {
        let g = KeyGen::new(4);
        assert_eq!(g.key(0), b"usr.");
    }

    #[test]
    #[should_panic(expected = "does not fit")]
    fn overflowing_body_panics() {
        let g = KeyGen::new(5); // 1-char body: 36 indices max
        let _ = g.key(36);
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn bad_length_rejected() {
        let _ = KeyGen::new(3);
    }
}
