//! YCSB-style workload presets.
//!
//! The paper's conclusion names YCSB as future work ("we plan to explore
//! KV-SSD performance behavior under real-world workloads and
//! benchmarks, such as YCSB"); these presets express the YCSB core
//! workloads in this harness's terms so that exploration is one function
//! call. Mapping:
//!
//! | preset | YCSB | mix | skew |
//! |---|---|---|---|
//! | A | update heavy | 50 % reads / 50 % updates | Zipfian 0.99 |
//! | B | read mostly  | 95 % reads / 5 % updates  | Zipfian 0.99 |
//! | C | read only    | 100 % reads               | Zipfian 0.99 |
//! | D | read latest  | 95 % reads / 5 % inserts  | inserts grow the population; reads Zipfian over recency |
//! | F | read-modify-write | 50 % reads / 50 % updates (each update preceded by a read at the runner level) | Zipfian 0.99 |
//!
//! Workload E (short scans) maps to the KV-SSD's prefix iterators and is
//! exercised directly in the device tests/examples rather than through
//! the point-op runner.
//!
//! YCSB's standard record is 1 KiB (10 fields x 100 B); key length stays
//! at this harness's 16 B default.

use crate::spec::{AccessPattern, OpMix, ValueSize, WorkloadSpec};

/// YCSB default record size: 10 fields x 100 B.
pub const RECORD_BYTES: u32 = 1000;

/// YCSB default Zipfian constant.
pub const THETA: f64 = 0.99;

fn base(name: &str, ops: u64, population: u64) -> WorkloadSpec {
    WorkloadSpec::new(name, ops, population)
        .pattern(AccessPattern::Zipfian { theta: THETA })
        .value(ValueSize::Fixed(RECORD_BYTES))
        .queue_depth(8)
}

/// The load phase: insert the whole population.
pub fn load(population: u64) -> WorkloadSpec {
    WorkloadSpec::new("ycsb-load", population, population)
        .mix(OpMix::InsertOnly)
        .value(ValueSize::Fixed(RECORD_BYTES))
        .queue_depth(8)
}

/// Workload A: update heavy (50/50).
pub fn workload_a(ops: u64, population: u64) -> WorkloadSpec {
    base("ycsb-a", ops, population).mix(OpMix::Mixed { read_pct: 50 })
}

/// Workload B: read mostly (95/5).
pub fn workload_b(ops: u64, population: u64) -> WorkloadSpec {
    base("ycsb-b", ops, population).mix(OpMix::Mixed { read_pct: 95 })
}

/// Workload C: read only.
pub fn workload_c(ops: u64, population: u64) -> WorkloadSpec {
    base("ycsb-c", ops, population).mix(OpMix::ReadOnly)
}

/// Workload D: read latest — 5 % inserts grow the population and 95 %
/// reads sample Zipfian over recency.
pub fn workload_d(ops: u64, population: u64) -> WorkloadSpec {
    base("ycsb-d", ops, population).mix(OpMix::ReadLatest { read_pct: 95 })
}

/// Workload F: read-modify-write expressed as its I/O footprint — every
/// logical RMW is one read plus one update, i.e. a 50/50 mix at twice
/// the logical operation count.
pub fn workload_f(ops: u64, population: u64) -> WorkloadSpec {
    base("ycsb-f", ops * 2, population).mix(OpMix::Mixed { read_pct: 50 })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adapters::KvSsdStore;
    use crate::runner::run_phase;
    use kvssd_core::{KvConfig, KvSsd};
    use kvssd_flash::{FlashTiming, Geometry};
    use kvssd_sim::SimTime;

    #[test]
    fn presets_validate() {
        for spec in [
            load(100),
            workload_a(100, 100),
            workload_b(100, 100),
            workload_c(100, 100),
            workload_d(100, 100),
            workload_f(100, 100),
        ] {
            spec.validate();
        }
    }

    #[test]
    fn mixes_match_ycsb_definitions() {
        assert_eq!(workload_a(1, 1).mix, OpMix::Mixed { read_pct: 50 });
        assert_eq!(workload_b(1, 1).mix, OpMix::Mixed { read_pct: 95 });
        assert_eq!(workload_c(1, 1).mix, OpMix::ReadOnly);
        assert_eq!(workload_f(10, 1).ops, 20, "F counts read+write per RMW");
    }

    #[test]
    fn ycsb_a_runs_end_to_end_on_the_device() {
        let mut store = KvSsdStore::new(KvSsd::new(
            Geometry::small(),
            FlashTiming::pm983_like(),
            KvConfig::small(),
        ));
        let l = run_phase(&mut store, &load(300), SimTime::ZERO);
        let a = run_phase(&mut store, &workload_a(600, 300), l.finished);
        assert_eq!(a.reads.count() + a.writes.count(), 600);
        assert_eq!(a.not_found, 0, "zipf reads stay inside the population");
        let share = a.reads.count() as f64 / 600.0;
        assert!((share - 0.5).abs() < 0.1, "read share {share}");
    }
}
