//! Aligned text tables for the experiment reports.
//!
//! The benches regenerate the paper's tables and figure series as plain
//! text (captured into `bench_output.txt`); this module does the layout.

use std::fmt;

/// A simple column-aligned table.
///
/// # Example
///
/// ```
/// use kvssd_kvbench::Table;
///
/// let mut t = Table::new(&["system", "latency (us)"]);
/// t.row(&["KV-SSD", "42.0"]);
/// t.row(&["block", "16.0"]);
/// let s = t.to_string();
/// assert!(s.contains("KV-SSD"));
/// assert!(s.lines().count() >= 4); // header + rule + 2 rows
/// ```
#[derive(Debug, Clone)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new(headers: &[&str]) -> Self {
        assert!(!headers.is_empty(), "a table needs columns");
        Table {
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must match the column count).
    pub fn row(&mut self, cells: &[&str]) -> &mut Self {
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row width must match the header"
        );
        self.rows
            .push(cells.iter().map(|s| s.to_string()).collect());
        self
    }

    /// Appends a row of already-owned cells.
    pub fn row_owned(&mut self, cells: Vec<String>) -> &mut Self {
        assert_eq!(cells.len(), self.headers.len());
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when no rows were added.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }
}

impl Table {
    /// CSV rendering (for piping figure series into plotting tools).
    ///
    /// # Example
    ///
    /// ```
    /// use kvssd_kvbench::Table;
    /// let mut t = Table::new(&["x", "y"]);
    /// t.row(&["1", "2.5"]);
    /// assert_eq!(t.to_csv(), "x,y\n1,2.5\n");
    /// ```
    pub fn to_csv(&self) -> String {
        let esc = |c: &str| {
            if c.contains(',') || c.contains('"') {
                format!("\"{}\"", c.replace('"', "\"\""))
            } else {
                c.to_string()
            }
        };
        let mut out = String::new();
        out.push_str(
            &self
                .headers
                .iter()
                .map(|h| esc(h))
                .collect::<Vec<_>>()
                .join(","),
        );
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.iter().map(|c| esc(c)).collect::<Vec<_>>().join(","));
            out.push('\n');
        }
        out
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ncols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let write_row = |f: &mut fmt::Formatter<'_>, cells: &[String]| -> fmt::Result {
            for (i, c) in cells.iter().enumerate() {
                if i > 0 {
                    write!(f, "  ")?;
                }
                write!(f, "{c:<width$}", width = widths[i])?;
            }
            writeln!(f)
        };
        write_row(f, &self.headers)?;
        let rule: usize = widths.iter().sum::<usize>() + 2 * (ncols - 1);
        writeln!(f, "{}", "-".repeat(rule))?;
        for row in &self.rows {
            write_row(f, row)?;
        }
        Ok(())
    }
}

/// Formats a f64 with 2 decimals (table cells).
pub fn f2(v: f64) -> String {
    format!("{v:.2}")
}

/// Formats a ratio as `N.NNx`.
pub fn ratio(subject: f64, baseline: f64) -> String {
    if baseline == 0.0 {
        return "-".to_string();
    }
    format!("{:.2}x", subject / baseline)
}

/// Formats a byte size compactly (KiB/MiB/GiB).
pub fn bytes(n: u64) -> String {
    const K: u64 = 1024;
    if n >= K * K * K {
        format!("{:.2}GiB", n as f64 / (K * K * K) as f64)
    } else if n >= K * K {
        format!("{:.2}MiB", n as f64 / (K * K) as f64)
    } else if n >= K {
        format!("{:.2}KiB", n as f64 / K as f64)
    } else {
        format!("{n}B")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_aligns_columns() {
        let mut t = Table::new(&["a", "long-header"]);
        t.row(&["xxxxxxxx", "1"]);
        t.row(&["y", "2"]);
        let s = t.to_string();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        // All data rows have the same second-column start.
        let col = lines[2].find('1').unwrap();
        assert_eq!(lines[3].find('2').unwrap(), col);
    }

    #[test]
    fn helpers_format() {
        assert_eq!(f2(1.234), "1.23");
        assert_eq!(ratio(5.0, 2.0), "2.50x");
        assert_eq!(ratio(5.0, 0.0), "-");
        assert_eq!(bytes(512), "512B");
        assert_eq!(bytes(2048), "2.00KiB");
        assert_eq!(bytes(3 * 1024 * 1024), "3.00MiB");
        assert_eq!(bytes(5 * 1024 * 1024 * 1024), "5.00GiB");
    }

    #[test]
    fn csv_escapes_commas_and_quotes() {
        let mut t = Table::new(&["a", "b"]);
        t.row(&["x,y", "he said \"hi\""]);
        assert_eq!(t.to_csv(), "a,b\n\"x,y\",\"he said \"\"hi\"\"\"\n");
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn mismatched_row_rejected() {
        let mut t = Table::new(&["a", "b"]);
        t.row(&["only-one"]);
    }
}
