//! Queue-depth workload execution and metric collection.
//!
//! The hot loop is batched: `run_phase` *plans* a run of operations
//! (key, value length, read/write — everything the phase RNG decides)
//! into a reusable [`OpBatch`], then hands the batch to
//! [`KvStore::run_ops`] to execute. Planning consumes the RNG in
//! exactly the per-op order, and execution only spends virtual time, so
//! the batched loop is operation-for-operation identical to submitting
//! each op as it is planned — it just stops paying per-op dispatch and
//! per-op key allocation.

use kvssd_sim::runner::OpTiming;
use kvssd_sim::{
    BandwidthSeries, DeterministicRng, LatencyHistogram, QueueRunner, SimDuration, SimTime,
    ZipfianDistribution,
};

use crate::keys::KeyGen;
use crate::spec::{AccessPattern, OpMix, ValueSize, WorkloadSpec};
use crate::KvStore;

/// Ops planned per [`OpBatch`] before execution. Large enough to
/// amortize the batch hand-off, small enough to stay cache-resident.
const BATCH_OPS: usize = 256;

/// One planned operation inside an [`OpBatch`].
#[derive(Debug, Clone, Copy)]
pub struct PlannedOp {
    key_start: u32,
    key_end: u32,
    /// Value length in bytes (writes; zero for reads).
    pub value_len: u32,
    /// Caller-chosen value identity tag (writes).
    pub tag: u64,
    /// True for point lookups.
    pub is_read: bool,
}

/// A reusable batch of planned operations. Key bytes live in one flat
/// arena, so planning a batch allocates nothing once the buffers are
/// warm.
#[derive(Debug, Default)]
pub struct OpBatch {
    keys: Vec<u8>,
    ops: Vec<PlannedOp>,
}

impl OpBatch {
    /// Empties the batch, keeping its allocations.
    pub fn clear(&mut self) {
        self.keys.clear();
        self.ops.clear();
    }

    /// Number of planned operations.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// True when no operations are planned.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Appends one planned operation (the key is copied into the arena).
    pub fn push(&mut self, key: &[u8], value_len: u32, tag: u64, is_read: bool) {
        let key_start = self.keys.len() as u32;
        self.keys.extend_from_slice(key);
        self.ops.push(PlannedOp {
            key_start,
            key_end: self.keys.len() as u32,
            value_len,
            tag,
            is_read,
        });
    }

    /// The planned operations with their keys, in plan order.
    pub fn iter(&self) -> impl Iterator<Item = (&PlannedOp, &[u8])> {
        self.ops
            .iter()
            .map(|op| (op, &self.keys[op.key_start as usize..op.key_end as usize]))
    }
}

/// Where a batch's outcomes land: the phase's histograms and bandwidth
/// series, borrowed for the duration of one [`KvStore::run_ops`] call.
#[derive(Debug)]
pub struct PhaseRecorder<'a> {
    /// Insert/update latencies.
    pub writes: &'a mut LatencyHistogram,
    /// Read latencies.
    pub reads: &'a mut LatencyHistogram,
    /// Completed-bytes series (phase-relative).
    pub bandwidth: &'a mut BandwidthSeries,
    /// Reads that found no value.
    pub not_found: &'a mut u64,
    /// Phase start (bandwidth windows are phase-relative).
    pub phase_start: SimTime,
}

impl PhaseRecorder<'_> {
    /// Records one executed operation's outcome.
    #[inline]
    pub fn record(&mut self, op: &PlannedOp, key_len: usize, timing: OpTiming, found: bool) {
        if op.is_read {
            self.reads.record(timing.latency());
            if !found {
                *self.not_found += 1;
            }
        } else {
            self.writes.record(timing.latency());
        }
        let user_bytes = key_len as u64 + if op.is_read { 0 } else { op.value_len as u64 };
        // The series is phase-relative so window 0 is the phase start.
        self.bandwidth.record(
            SimTime::from_nanos(timing.completed.since(self.phase_start).as_nanos()),
            user_bytes,
        );
    }
}

/// Everything measured during one phase.
#[derive(Debug)]
pub struct RunMetrics {
    /// The workload's label.
    pub name: String,
    /// The store's label.
    pub store: &'static str,
    /// Insert/update latencies.
    pub writes: LatencyHistogram,
    /// Read latencies.
    pub reads: LatencyHistogram,
    /// Completed-bytes time series (user bytes).
    pub bandwidth: BandwidthSeries,
    /// Phase start.
    pub started: SimTime,
    /// Last completion.
    pub finished: SimTime,
    /// Reads that found no value.
    pub not_found: u64,
    /// Host CPU consumed during this phase.
    pub cpu_busy: SimDuration,
}

impl RunMetrics {
    /// Wall-clock (virtual) duration of the phase.
    pub fn elapsed(&self) -> SimDuration {
        self.finished.since(self.started)
    }

    /// Mean user-data bandwidth in MB/s.
    pub fn mean_mbps(&self) -> f64 {
        let secs = self.elapsed().as_secs_f64();
        if secs == 0.0 {
            return 0.0;
        }
        self.bandwidth.total_bytes() as f64 / 1e6 / secs
    }

    /// Operations per second.
    pub fn ops_per_sec(&self) -> f64 {
        let secs = self.elapsed().as_secs_f64();
        if secs == 0.0 {
            return 0.0;
        }
        (self.writes.count() + self.reads.count()) as f64 / secs
    }

    /// Host CPU utilization over the phase, normalized to one core.
    pub fn cpu_cores_used(&self) -> f64 {
        let secs = self.elapsed().as_secs_f64();
        if secs == 0.0 {
            return 0.0;
        }
        self.cpu_busy.as_secs_f64() / secs
    }

    /// Combined mean op latency in microseconds.
    pub fn mean_latency_us(&self) -> f64 {
        let n = self.writes.count() + self.reads.count();
        if n == 0 {
            return 0.0;
        }
        let total = self.writes.mean().as_micros_f64() * self.writes.count() as f64
            + self.reads.mean().as_micros_f64() * self.reads.count() as f64;
        total / n as f64
    }
}

/// Runs one workload phase against a store, starting at `start`.
/// Returns the metrics; the store is flushed afterwards so subsequent
/// phases see settled state.
pub fn run_phase(store: &mut dyn KvStore, spec: &WorkloadSpec, start: SimTime) -> RunMetrics {
    spec.validate();
    let keygen = KeyGen::new(spec.key_bytes);
    let mut rng = DeterministicRng::seed_from(spec.seed);
    let zipf = match spec.pattern {
        AccessPattern::Zipfian { theta } => {
            let population = if matches!(spec.mix, OpMix::InsertOnly) {
                spec.ops
            } else {
                spec.key_space
            };
            Some(ZipfianDistribution::new(population.max(1), theta))
        }
        _ => None,
    };
    // Recency distribution for ReadLatest mixes (YCSB-D).
    let latest = matches!(spec.mix, OpMix::ReadLatest { .. })
        .then(|| ZipfianDistribution::new(spec.key_space.max(2), 0.99));
    let mut grown = spec.key_space;
    let mut runner = QueueRunner::starting_at(spec.queue_depth, start);
    let mut writes = LatencyHistogram::new();
    let mut reads = LatencyHistogram::new();
    let mut bandwidth = BandwidthSeries::new(SimDuration::from_millis(100));
    let mut not_found = 0u64;
    let cpu_before = store.host_cpu_busy();
    // One key buffer for the whole phase: `key_into` regenerates in
    // place, so the hot loop makes zero key allocations.
    let mut key_buf = Vec::with_capacity(spec.key_bytes);
    let mut batch = OpBatch::default();

    // Plan-then-execute in batches: planning drains the RNG in the
    // exact per-op order, execution spends only virtual time, so this
    // is op-for-op identical to submitting each op as it is planned.
    let mut planned = 0u64;
    while planned < spec.ops {
        batch.clear();
        let batch_end = (planned + BATCH_OPS as u64).min(spec.ops);
        for i in planned..batch_end {
            let idx = pick_index(spec, &mut rng, zipf.as_ref(), i);
            let vlen = match spec.value {
                ValueSize::Fixed(n) => n,
                ValueSize::Uniform { lo, hi } => rng.between(lo as u64, hi as u64) as u32,
                ValueSize::Discrete { choices } => {
                    let wsum: u64 = choices.iter().map(|&(_, w)| w as u64).sum();
                    let mut pick = rng.below(wsum.max(1));
                    let mut chosen = choices[0].0;
                    for &(s, w) in &choices {
                        if pick < w as u64 {
                            chosen = s;
                            break;
                        }
                        pick -= w as u64;
                    }
                    chosen
                }
            };
            let is_read = match spec.mix {
                OpMix::InsertOnly | OpMix::UpdateOnly => false,
                OpMix::ReadOnly => true,
                OpMix::Mixed { read_pct } | OpMix::ReadLatest { read_pct } => {
                    rng.below(100) < read_pct as u64
                }
            };
            // ReadLatest overrides key choice: inserts append, reads
            // skew to the most recent keys.
            let key_idx = if let Some(z) = &latest {
                if is_read {
                    let back = z.sample(&mut rng).min(grown - 1);
                    spec.insert_base + (grown - 1 - back)
                } else {
                    let fresh = grown;
                    grown += 1;
                    spec.insert_base + fresh
                }
            } else {
                idx
            };
            keygen.key_into(key_idx, &mut key_buf);
            batch.push(&key_buf, vlen, idx, is_read);
        }
        planned = batch_end;
        let mut rec = PhaseRecorder {
            writes: &mut writes,
            reads: &mut reads,
            bandwidth: &mut bandwidth,
            not_found: &mut not_found,
            phase_start: start,
        };
        store.run_ops(&mut runner, &batch, &mut rec);
    }
    let finished = runner.drain();
    let settled = store.flush(finished);
    RunMetrics {
        name: spec.name.clone(),
        store: store.name(),
        writes,
        reads,
        bandwidth,
        started: start,
        finished: settled.max(finished),
        not_found,
        cpu_busy: store.host_cpu_busy() - cpu_before,
    }
}

fn pick_index(
    spec: &WorkloadSpec,
    rng: &mut DeterministicRng,
    zipf: Option<&ZipfianDistribution>,
    op: u64,
) -> u64 {
    if matches!(spec.mix, OpMix::InsertOnly) {
        // Insert phases honor the access pattern as an insertion ORDER:
        // sequential inserts ascend; random and Zipfian inserts walk a
        // bijective permutation of the population (every key inserted
        // exactly once, in scattered order, so later read phases always
        // hit). The Zipfian *skew* applies to update/read phases.
        return match spec.pattern {
            AccessPattern::Sequential | AccessPattern::SlidingWindow { .. } => {
                spec.insert_base + op
            }
            AccessPattern::Uniform | AccessPattern::Zipfian { .. } => {
                spec.insert_base + permute(op, spec.ops)
            }
        };
    }
    match spec.pattern {
        AccessPattern::Sequential => op % spec.key_space,
        AccessPattern::Uniform => rng.below(spec.key_space),
        AccessPattern::Zipfian { .. } => {
            // YCSB-style scramble: hot ranks scatter over the key space.
            let rank = zipf.expect("zipf built").sample(rng);
            kvssd_sim::rng::mix64(rank) % spec.key_space
        }
        AccessPattern::SlidingWindow { window } => {
            // Footnote 2: slide a window across the population.
            let span = spec.key_space.saturating_sub(window);
            let base = if spec.ops <= 1 {
                0
            } else {
                span * op / (spec.ops - 1).max(1)
            };
            base + rng.below(window)
        }
    }
}

/// A bijective pseudo-random permutation of `[0, n)` (cycle-walking
/// Feistel over the next power of two).
pub fn permute(i: u64, n: u64) -> u64 {
    assert!(i < n, "permute index out of range");
    if n <= 2 {
        return i;
    }
    let bits = 64 - (n - 1).leading_zeros();
    let half = bits.div_ceil(2);
    let mask = (1u64 << half) - 1;
    let mut x = i;
    loop {
        // Two Feistel rounds over (hi, lo) halves.
        let mut hi = x >> half;
        let mut lo = x & mask;
        for round in 0..2u64 {
            let f = kvssd_sim::rng::mix64(lo ^ (round.wrapping_mul(0x9E37_79B9))) & mask;
            let new_lo = hi ^ f;
            hi = lo;
            lo = new_lo & mask;
        }
        x = (hi << half) | lo;
        x &= (1u64 << (2 * half)) - 1;
        if x < n {
            return x;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adapters::KvSsdStore;
    use kvssd_core::{KvConfig, KvSsd};
    use kvssd_flash::{FlashTiming, Geometry};

    fn store() -> KvSsdStore {
        KvSsdStore::new(KvSsd::new(
            Geometry::small(),
            FlashTiming::pm983_like(),
            KvConfig::small(),
        ))
    }

    fn insert_spec(n: u64) -> WorkloadSpec {
        WorkloadSpec::new("fill", n, n)
            .mix(OpMix::InsertOnly)
            .value(ValueSize::Fixed(512))
    }

    #[test]
    fn insert_phase_populates_store() {
        let mut s = store();
        let m = run_phase(&mut s, &insert_spec(200), SimTime::ZERO);
        assert_eq!(m.writes.count(), 200);
        assert_eq!(m.reads.count(), 0);
        assert_eq!(s.device().len(), 200);
        assert!(m.elapsed() > SimDuration::ZERO);
        assert!(m.mean_mbps() > 0.0);
    }

    #[test]
    fn read_phase_finds_all_keys() {
        let mut s = store();
        let m1 = run_phase(&mut s, &insert_spec(200), SimTime::ZERO);
        let spec = WorkloadSpec::new("read", 300, 200)
            .mix(OpMix::ReadOnly)
            .value(ValueSize::Fixed(512));
        let m2 = run_phase(&mut s, &spec, m1.finished);
        assert_eq!(m2.reads.count(), 300);
        assert_eq!(m2.not_found, 0, "all reads should hit");
        assert!(m2.started >= m1.finished);
    }

    #[test]
    fn mixed_phase_splits_ops() {
        let mut s = store();
        let m1 = run_phase(&mut s, &insert_spec(100), SimTime::ZERO);
        let spec = WorkloadSpec::new("mixed", 1_000, 100)
            .mix(OpMix::Mixed { read_pct: 70 })
            .value(ValueSize::Fixed(256));
        let m2 = run_phase(&mut s, &spec, m1.finished);
        let reads = m2.reads.count() as f64;
        assert!((reads / 1_000.0 - 0.7).abs() < 0.1, "read share {reads}");
    }

    #[test]
    fn deeper_queues_shorten_read_wall_time() {
        // QD benefits show on reads (die parallelism); sustained writes
        // are drain-limited by flash programs at any queue depth.
        let run_at = |qd: usize| {
            let mut s = store();
            let fill = run_phase(&mut s, &insert_spec(500), SimTime::ZERO);
            let spec = WorkloadSpec::new("read", 500, 500)
                .mix(OpMix::ReadOnly)
                .queue_depth(qd)
                .seed(3);
            run_phase(&mut s, &spec, fill.finished + SimDuration::from_secs(1)).elapsed()
        };
        let qd1 = run_at(1);
        let qd16 = run_at(16);
        assert!(
            qd16.as_nanos() * 2 < qd1.as_nanos(),
            "QD16 reads {qd16} should beat QD1 {qd1} by > 2x"
        );
    }

    #[test]
    fn same_seed_same_results() {
        let run_once = || {
            let mut s = store();
            let m1 = run_phase(&mut s, &insert_spec(100), SimTime::ZERO);
            let spec = WorkloadSpec::new("u", 200, 100)
                .pattern(AccessPattern::Zipfian { theta: 0.99 })
                .value(ValueSize::Fixed(128));
            let m = run_phase(&mut s, &spec, m1.finished);
            (m.finished, m.writes.mean())
        };
        assert_eq!(run_once(), run_once());
    }

    #[test]
    fn sliding_window_touches_whole_population() {
        let spec = WorkloadSpec::new("w", 1_000, 1_000)
            .pattern(AccessPattern::SlidingWindow { window: 50 });
        let mut rng = DeterministicRng::seed_from(1);
        let mut lo_seen = false;
        let mut hi_seen = false;
        for i in 0..1_000 {
            let idx = pick_index(&spec, &mut rng, None, i);
            assert!(idx < 1_000);
            lo_seen |= idx < 100;
            hi_seen |= idx > 900;
        }
        assert!(lo_seen && hi_seen, "window must sweep the population");
    }

    #[test]
    fn zipfian_updates_favor_hot_keys() {
        let spec =
            WorkloadSpec::new("z", 10_000, 1_000).pattern(AccessPattern::Zipfian { theta: 0.99 });
        let zipf = ZipfianDistribution::new(1_000, 0.99);
        let mut rng = DeterministicRng::seed_from(5);
        let mut counts = vec![0u32; 1_000];
        for i in 0..10_000 {
            counts[pick_index(&spec, &mut rng, Some(&zipf), i) as usize] += 1;
        }
        let max = *counts.iter().max().unwrap();
        assert!(max > 500, "hottest key only {max} hits");
    }
}

#[cfg(test)]
mod probe {
    use super::*;
    use crate::adapters::KvSsdStore;
    use kvssd_core::{KvConfig, KvSsd};
    use kvssd_flash::{FlashTiming, Geometry};

    #[test]
    #[ignore]
    fn probe_qd_scaling() {
        for qd in [1usize, 16] {
            let mut s = KvSsdStore::new(KvSsd::new(
                Geometry::small(),
                FlashTiming::pm983_like(),
                KvConfig::small(),
            ));
            let mut runner = QueueRunner::new(qd);
            let keygen = KeyGen::new(16);
            let mut lat = Vec::new();
            for i in 0..500u64 {
                let key = keygen.key(i);
                let t = runner.submit(|issue| s.insert(issue, &key, 512, i));
                lat.push(t.latency().as_micros_f64());
            }
            let end = runner.drain();
            let st = s.device().stats().clone();
            println!(
                "qd={qd} wall={} lat[0..5]={:?} lat[100..105]={:?} stall={} merges={} programs={}",
                end,
                &lat[0..5],
                &lat[100..105],
                st.stall_time,
                st.merges,
                s.device().flash().stats().programs
            );
        }
    }
}

#[cfg(test)]
mod probe2 {
    use super::*;
    use crate::adapters::KvSsdStore;
    use kvssd_core::{KvConfig, KvSsd};
    use kvssd_flash::{FlashTiming, Geometry};

    #[test]
    #[ignore]
    fn probe_read_parallelism() {
        let mut s = KvSsdStore::new(KvSsd::new(
            Geometry::small(),
            FlashTiming::pm983_like(),
            KvConfig::small(),
        ));
        let fill = run_phase(
            &mut s,
            &WorkloadSpec::new("fill", 500, 500)
                .mix(OpMix::InsertOnly)
                .value(ValueSize::Fixed(512)),
            SimTime::ZERO,
        );
        let start = fill.finished + SimDuration::from_secs(1);
        let reads_before = s.device().flash().stats().reads;
        let hits_before = s.device().stats().write_buffer_hits;
        let spec = WorkloadSpec::new("read", 500, 500)
            .mix(OpMix::ReadOnly)
            .queue_depth(16)
            .seed(3);
        let m = run_phase(&mut s, &spec, start);
        println!(
            "elapsed={} flash_reads={} buffer_hits={} lookup_flash={} mean={}",
            m.elapsed(),
            s.device().flash().stats().reads - reads_before,
            s.device().stats().write_buffer_hits - hits_before,
            s.device().index_stats().lookup_flash_reads,
            m.reads.mean()
        );
        println!(
            "die_util={:.3}",
            s.device().flash().die_utilization(m.finished)
        );
    }
}

#[cfg(test)]
mod permute_tests {
    use super::*;
    use kvssd_sim::PrehashedSet;

    #[test]
    fn permute_is_a_bijection() {
        for n in [2u64, 7, 100, 1000, 4096] {
            let mut seen = PrehashedSet::default();
            for i in 0..n {
                let p = permute(i, n);
                assert!(p < n, "out of range for n={n}");
                assert!(seen.insert(p), "collision for n={n}");
            }
        }
    }

    #[test]
    fn permute_scatters_neighbors() {
        let n = 10_000u64;
        let mut adjacent = 0;
        for i in 0..n - 1 {
            if permute(i + 1, n) == permute(i, n) + 1 {
                adjacent += 1;
            }
        }
        assert!(adjacent < 50, "{adjacent} adjacent pairs survived");
    }

    #[test]
    fn random_order_insert_covers_population() {
        let spec = WorkloadSpec::new("fill", 500, 500)
            .mix(OpMix::InsertOnly)
            .pattern(AccessPattern::Uniform);
        let mut rng = DeterministicRng::seed_from(1);
        let mut seen = PrehashedSet::default();
        for i in 0..500 {
            seen.insert(pick_index(&spec, &mut rng, None, i));
        }
        assert_eq!(seen.len(), 500, "random-order insert must cover all keys");
    }
}

#[cfg(test)]
mod read_latest_tests {
    use super::*;
    use crate::adapters::KvSsdStore;
    use kvssd_core::{KvConfig, KvSsd};
    use kvssd_flash::{FlashTiming, Geometry};

    #[test]
    fn read_latest_grows_population_and_hits() {
        let mut s = KvSsdStore::new(KvSsd::new(
            Geometry::small(),
            FlashTiming::pm983_like(),
            KvConfig::small(),
        ));
        let fill = WorkloadSpec::new("fill", 500, 500)
            .mix(OpMix::InsertOnly)
            .value(ValueSize::Fixed(128));
        let f = run_phase(&mut s, &fill, SimTime::ZERO);
        let d = WorkloadSpec::new("d", 2_000, 500)
            .mix(OpMix::ReadLatest { read_pct: 95 })
            .value(ValueSize::Fixed(128))
            .seed(19);
        let m = run_phase(&mut s, &d, f.finished);
        assert_eq!(m.not_found, 0, "recency reads must always hit");
        // ~5% inserts grew the store past the initial population.
        assert!(
            s.device().len() > 550,
            "population grew to {}",
            s.device().len()
        );
        let reads = m.reads.count() as f64 / 2_000.0;
        assert!((reads - 0.95).abs() < 0.03, "read share {reads}");
    }
}
