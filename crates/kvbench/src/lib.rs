//! KVbench replacement: workloads, store adapters, runner, and reports.
//!
//! The paper drives every experiment with OpenMPDK KVbench (a ForestDB-
//! benchmark derivative): configurable key/value sizes, sequential /
//! uniform-random / Zipfian access, insert/update/read phases, and
//! asynchronous submission at a queue depth. This crate is that harness
//! for the simulated systems:
//!
//! * [`WorkloadSpec`] — the workload description (pattern, mix, sizes,
//!   queue depth, seed), including the paper's footnote-2 *sliding
//!   window* pseudo-random pattern used in Fig. 6c,
//! * [`KvStore`] — the uniform store interface, with adapters for the
//!   KV-SSD ([`adapters::KvSsdStore`]), RocksDB-like
//!   ([`adapters::LsmKvStore`]), Aerospike-like
//!   ([`adapters::HashKvStore`]), and raw block direct I/O
//!   ([`adapters::RawBlockStore`]) backends,
//! * [`runner`] — queue-depth execution collecting latency histograms,
//!   bandwidth time series, and host-CPU utilization,
//! * [`report`] — aligned text tables for the bench output.

pub mod adapters;
pub mod keys;
pub mod report;
pub mod runner;
pub mod spec;
pub mod ycsb;

pub use adapters::{ClusterStore, HashKvStore, KvSsdStore, LsmKvStore, RawBlockStore};
pub use report::Table;
pub use runner::{run_phase, OpBatch, PhaseRecorder, PlannedOp, RunMetrics};
pub use spec::{AccessPattern, OpMix, ValueSize, WorkloadSpec};

use kvssd_sim::{QueueRunner, SimDuration, SimTime};

/// Space usage snapshot of a store (drives Fig. 7).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpaceUsage {
    /// Bytes of user data (keys + values) live in the store.
    pub user_bytes: u64,
    /// Bytes the store occupies on its device for that data.
    pub stored_bytes: u64,
}

impl SpaceUsage {
    /// Space amplification (stored / user).
    pub fn amplification(&self) -> f64 {
        self.stored_bytes as f64 / self.user_bytes.max(1) as f64
    }
}

/// The uniform key-value store interface the runner drives.
///
/// All operations are virtual-time: they take an issue time and return a
/// completion time. `read` reports whether the key was found (not-found
/// is a timed outcome, not an error).
pub trait KvStore {
    /// Human-readable system name for reports.
    fn name(&self) -> &'static str;

    /// Inserts or updates a pair; returns completion time.
    fn insert(&mut self, now: SimTime, key: &[u8], value_len: u32, tag: u64) -> SimTime;

    /// Point lookup; returns (completion, found).
    fn read(&mut self, now: SimTime, key: &[u8]) -> (SimTime, bool);

    /// Deletes a key; returns completion time.
    fn delete(&mut self, now: SimTime, key: &[u8]) -> SimTime;

    /// Flushes buffered state (end-of-phase barrier).
    fn flush(&mut self, now: SimTime) -> SimTime;

    /// Total host CPU consumed so far (the `dstat` number).
    fn host_cpu_busy(&self) -> SimDuration;

    /// Space usage snapshot.
    fn space(&self) -> SpaceUsage;

    /// Executes a planned batch through `runner`, recording each op's
    /// outcome. Must behave exactly like submitting each planned op in
    /// order via [`insert`](Self::insert)/[`read`](Self::read) — this
    /// default does precisely that; stores with a cheaper internal path
    /// (the cluster fan-out) override it to skip per-op dispatch.
    fn run_ops(&mut self, runner: &mut QueueRunner, batch: &OpBatch, rec: &mut PhaseRecorder<'_>) {
        for (op, key) in batch.iter() {
            let mut found = true;
            let timing = runner.submit(|issue| {
                if op.is_read {
                    let (done, hit) = self.read(issue, key);
                    found = hit;
                    done
                } else {
                    self.insert(issue, key, op.value_len, op.tag)
                }
            });
            rec.record(op, key.len(), timing, found);
        }
    }
}
