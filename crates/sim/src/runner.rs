//! Queue-depth scheduling for asynchronous hosts.
//!
//! The paper issues I/O asynchronously at a configurable queue depth (QD):
//! up to QD requests are outstanding at once, and a new request is issued
//! the moment a slot frees. [`QueueRunner`] reproduces that host behavior
//! on the virtual clock: callers hand it a closure that performs one
//! operation starting at a given issue time and returns the operation's
//! completion time.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::time::{SimDuration, SimTime};

/// Issues operations with at most `queue_depth` outstanding at a time.
///
/// # Example
///
/// ```
/// use kvssd_sim::{QueueRunner, Resource, SimDuration, SimTime};
///
/// // One resource serving 10 us ops, driven at QD 2: ops overlap in the
/// // queue but serialize at the server.
/// let mut server = Resource::new();
/// let mut runner = QueueRunner::new(2);
/// for _ in 0..4 {
///     runner.submit(|issue| server.acquire(issue, SimDuration::from_micros(10)).end);
/// }
/// let end = runner.drain();
/// assert_eq!(end, SimTime::ZERO + SimDuration::from_micros(40));
/// ```
#[derive(Debug)]
pub struct QueueRunner {
    queue_depth: usize,
    now: SimTime,
    inflight: BinaryHeap<Reverse<SimTime>>,
    issued: u64,
    last_completion: SimTime,
}

/// The issue and completion instants of one submitted operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OpTiming {
    /// When the host issued the request.
    pub issued: SimTime,
    /// When the device completed it.
    pub completed: SimTime,
}

impl OpTiming {
    /// Host-observed latency.
    pub fn latency(&self) -> SimDuration {
        self.completed.since(self.issued)
    }
}

impl QueueRunner {
    /// Creates a runner with the given queue depth.
    ///
    /// # Panics
    ///
    /// Panics if `queue_depth` is zero.
    pub fn new(queue_depth: usize) -> Self {
        Self::starting_at(queue_depth, SimTime::ZERO)
    }

    /// Creates a runner whose first issue happens at `start` (used when a
    /// benchmark phase begins after an earlier fill phase).
    pub fn starting_at(queue_depth: usize, start: SimTime) -> Self {
        assert!(queue_depth > 0, "queue depth must be at least 1");
        QueueRunner {
            queue_depth,
            now: start,
            inflight: BinaryHeap::new(),
            issued: 0,
            last_completion: start,
        }
    }

    /// The configured queue depth.
    pub fn queue_depth(&self) -> usize {
        self.queue_depth
    }

    /// The host's current notion of time (advances as slots are awaited).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of operations submitted so far.
    pub fn issued(&self) -> u64 {
        self.issued
    }

    /// Submits one operation.
    ///
    /// If all slots are occupied, the host first waits for the earliest
    /// outstanding completion. `op` receives the issue time and must
    /// return the completion time (which may not precede the issue time).
    pub fn submit<F>(&mut self, op: F) -> OpTiming
    where
        F: FnOnce(SimTime) -> SimTime,
    {
        if self.inflight.len() >= self.queue_depth {
            let Reverse(earliest) = self.inflight.pop().expect("inflight nonempty");
            self.now = self.now.max(earliest);
        }
        let issued = self.now;
        let completed = op(issued);
        assert!(
            completed >= issued,
            "operation completed before it was issued (issue {issued}, complete {completed})"
        );
        self.inflight.push(Reverse(completed));
        self.issued += 1;
        self.last_completion = self.last_completion.max(completed);
        OpTiming { issued, completed }
    }

    /// Waits for all outstanding operations; returns the time the last one
    /// completed. The runner can be reused afterwards.
    pub fn drain(&mut self) -> SimTime {
        while let Some(Reverse(t)) = self.inflight.pop() {
            self.now = self.now.max(t);
        }
        self.now = self.now.max(self.last_completion);
        self.now
    }
}

/// Fan-out/fan-in completion tracking across parallel lanes (shards,
/// devices, queues) that share one virtual clock.
///
/// A scatter operation records each lane's completion independently;
/// [`FanIn::barrier`] is the fan-in instant — the latest completion any
/// lane has reported. Unlike [`QueueRunner`] this imposes no admission
/// control; it only answers "when has *everything* landed?", which is
/// what a cluster flush or a rebalance wave needs.
///
/// # Example
///
/// ```
/// use kvssd_sim::{FanIn, SimDuration, SimTime};
///
/// let mut f = FanIn::new(3);
/// f.record(0, SimTime::ZERO + SimDuration::from_micros(10));
/// f.record(2, SimTime::ZERO + SimDuration::from_micros(25));
/// assert_eq!(f.barrier(), SimTime::ZERO + SimDuration::from_micros(25));
/// assert_eq!(f.lane_last(1), SimTime::ZERO);
/// ```
#[derive(Debug, Clone)]
pub struct FanIn {
    lanes: Vec<SimTime>,
}

impl FanIn {
    /// Creates a fan-in over `lanes` lanes, all starting at t = 0.
    ///
    /// # Panics
    ///
    /// Panics if `lanes` is zero.
    pub fn new(lanes: usize) -> Self {
        assert!(lanes > 0, "fan-in needs at least one lane");
        FanIn {
            lanes: vec![SimTime::ZERO; lanes],
        }
    }

    /// Number of lanes.
    pub fn len(&self) -> usize {
        self.lanes.len()
    }

    /// True when the fan-in currently has no lanes (possible after
    /// [`Self::reset_empty`], e.g. when every leg of an operation was
    /// lost in transit).
    pub fn is_empty(&self) -> bool {
        self.lanes.is_empty()
    }

    /// Records a completion on `lane` (keeps the latest per lane).
    pub fn record(&mut self, lane: usize, done: SimTime) {
        self.lanes[lane] = self.lanes[lane].max(done);
    }

    /// Resets to `lanes` lanes at t = 0, reusing the allocation — the
    /// per-operation quorum path resets one fan-in per op instead of
    /// building a new one.
    ///
    /// # Panics
    ///
    /// Panics if `lanes` is zero.
    pub fn reset(&mut self, lanes: usize) {
        assert!(lanes > 0, "fan-in needs at least one lane");
        self.lanes.clear();
        self.lanes.resize(lanes, SimTime::ZERO);
    }

    /// Resets to zero lanes, reusing the allocation. Pair with
    /// [`Self::push`] when the lane count is not known up front —
    /// a transport can lose legs and a hedged read can add them, so
    /// the per-operation fan-in grows one recorded leg at a time.
    pub fn reset_empty(&mut self) {
        self.lanes.clear();
    }

    /// Appends a lane already carrying its completion; returns its
    /// index. The push-style counterpart of [`Self::record`] for
    /// operations whose leg count is discovered as legs land.
    pub fn push(&mut self, done: SimTime) -> usize {
        self.lanes.push(done);
        self.lanes.len() - 1
    }

    /// The quorum instant: when the `q`-th lane (1-based, by completion
    /// order) landed. `quorum(len())` is [`Self::barrier`]; `quorum(1)`
    /// is the fastest lane. Used by replicated clusters that
    /// acknowledge an operation once `q` of its replica legs completed
    /// while the stragglers keep running.
    ///
    /// `q` is clamped to `1..=len()`: hedged reads and lossy transports
    /// change an operation's leg count mid-op, so a quorum larger than
    /// the legs that actually landed degrades to the barrier over the
    /// recorded legs instead of panicking (and `quorum(0)` asks for no
    /// legs at all, which only a caller bug produces — hence the debug
    /// assertion).
    ///
    /// # Panics
    ///
    /// Panics if no lanes exist at all.
    pub fn quorum(&self, q: usize) -> SimTime {
        assert!(
            !self.lanes.is_empty(),
            "quorum over an empty fan-in (no legs recorded)"
        );
        debug_assert!(q >= 1, "a quorum of zero legs is meaningless");
        let q = q.clamp(1, self.lanes.len());
        // Lane counts are replica factors (single digits); an O(n²)
        // selection scan avoids allocating a scratch copy to sort. The
        // q-th smallest is the least lane value with at least q lanes
        // at or below it.
        let mut best: Option<SimTime> = None;
        for &t in &self.lanes {
            let at_or_below = self.lanes.iter().filter(|&&x| x <= t).count();
            if at_or_below >= q && best.is_none_or(|b| t < b) {
                best = Some(t);
            }
        }
        best.expect("q <= len() guarantees a candidate")
    }

    /// Adds a lane (e.g. a shard joining); returns its index.
    pub fn add_lane(&mut self) -> usize {
        self.lanes.push(SimTime::ZERO);
        self.lanes.len() - 1
    }

    /// Removes a lane; later indices shift down by one.
    pub fn remove_lane(&mut self, lane: usize) {
        self.lanes.remove(lane);
    }

    /// The latest completion recorded on one lane.
    pub fn lane_last(&self, lane: usize) -> SimTime {
        self.lanes[lane]
    }

    /// The fan-in instant: the latest completion across all lanes.
    pub fn barrier(&self) -> SimTime {
        self.lanes.iter().copied().fold(SimTime::ZERO, SimTime::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::resource::Resource;

    fn us(n: u64) -> SimDuration {
        SimDuration::from_micros(n)
    }

    #[test]
    fn fan_in_tracks_lanes_and_barrier() {
        let mut f = FanIn::new(2);
        f.record(0, SimTime::ZERO + us(5));
        f.record(0, SimTime::ZERO + us(3)); // stale completion keeps max
        f.record(1, SimTime::ZERO + us(9));
        assert_eq!(f.lane_last(0), SimTime::ZERO + us(5));
        assert_eq!(f.barrier(), SimTime::ZERO + us(9));
    }

    #[test]
    fn quorum_is_kth_smallest_lane() {
        let mut f = FanIn::new(3);
        f.record(0, SimTime::ZERO + us(30));
        f.record(1, SimTime::ZERO + us(10));
        f.record(2, SimTime::ZERO + us(20));
        assert_eq!(f.quorum(1), SimTime::ZERO + us(10));
        assert_eq!(f.quorum(2), SimTime::ZERO + us(20));
        assert_eq!(f.quorum(3), f.barrier());
        // Duplicate lane times rank correctly.
        f.record(1, SimTime::ZERO + us(20));
        assert_eq!(f.quorum(1), SimTime::ZERO + us(20));
        assert_eq!(f.quorum(2), SimTime::ZERO + us(20));
    }

    #[test]
    fn quorum_beyond_lanes_clamps_to_barrier() {
        // Hedged reads and lossy transports change leg counts mid-op:
        // a quorum larger than the recorded legs must degrade to the
        // barrier, not panic (regression for the old out-of-range
        // assertion).
        let mut f = FanIn::new(3);
        f.record(0, SimTime::ZERO + us(30));
        f.record(1, SimTime::ZERO + us(10));
        f.record(2, SimTime::ZERO + us(20));
        assert_eq!(f.quorum(4), f.barrier());
        assert_eq!(f.quorum(usize::MAX), f.barrier());
    }

    #[test]
    #[should_panic(expected = "empty fan-in")]
    fn quorum_over_zero_lanes_panics() {
        let mut f = FanIn::new(1);
        f.reset_empty();
        let _ = f.quorum(1);
    }

    #[test]
    fn push_grows_a_fan_in_leg_by_leg() {
        let mut f = FanIn::new(1);
        f.reset_empty();
        assert!(f.is_empty());
        assert_eq!(f.push(SimTime::ZERO + us(7)), 0);
        assert_eq!(f.push(SimTime::ZERO + us(3)), 1);
        assert_eq!(f.quorum(1), SimTime::ZERO + us(3));
        assert_eq!(f.quorum(2), SimTime::ZERO + us(7));
        assert_eq!(f.barrier(), SimTime::ZERO + us(7));
    }

    #[test]
    fn reset_reuses_a_fan_in() {
        let mut f = FanIn::new(1);
        f.record(0, SimTime::ZERO + us(9));
        f.reset(3);
        assert_eq!(f.len(), 3);
        assert_eq!(f.barrier(), SimTime::ZERO, "reset must clear lanes");
        let lane = f.add_lane();
        assert_eq!(lane, 3);
        f.record(lane, SimTime::ZERO + us(20));
        assert_eq!(f.barrier(), SimTime::ZERO + us(20));
        f.remove_lane(lane);
        assert_eq!(f.len(), 3);
        assert_eq!(f.barrier(), SimTime::ZERO);
    }

    #[test]
    #[should_panic(expected = "at least one lane")]
    fn fan_in_rejects_zero_lanes() {
        let _ = FanIn::new(0);
    }

    #[test]
    fn qd1_fully_serializes() {
        let mut server = Resource::new();
        let mut r = QueueRunner::new(1);
        let mut latencies = Vec::new();
        for _ in 0..3 {
            let t = r.submit(|issue| server.acquire(issue, us(10)).end);
            latencies.push(t.latency());
        }
        assert!(latencies.iter().all(|&l| l == us(10)));
        assert_eq!(r.drain(), SimTime::ZERO + us(30));
    }

    #[test]
    fn higher_qd_exploits_parallel_servers() {
        // Four parallel dies, QD4 vs QD1: same 8 ops, 4x faster wall time.
        let run = |qd: usize| {
            let mut pool = crate::resource::ResourcePool::new(4);
            let mut r = QueueRunner::new(qd);
            for _ in 0..8 {
                r.submit(|issue| pool.acquire(issue, us(100)).end);
            }
            r.drain()
        };
        assert_eq!(run(1), SimTime::ZERO + us(800));
        assert_eq!(run(4), SimTime::ZERO + us(200));
    }

    #[test]
    fn qd_bounds_outstanding_latency_growth() {
        // Single server at QD4: steady-state latency is ~4x service time.
        let mut server = Resource::new();
        let mut r = QueueRunner::new(4);
        let mut last = SimDuration::ZERO;
        for _ in 0..32 {
            last = r
                .submit(|issue| server.acquire(issue, us(10)).end)
                .latency();
        }
        assert_eq!(last, us(40));
    }

    #[test]
    fn drain_is_idempotent_and_reusable() {
        let mut server = Resource::new();
        let mut r = QueueRunner::new(2);
        r.submit(|issue| server.acquire(issue, us(10)).end);
        let a = r.drain();
        let b = r.drain();
        assert_eq!(a, b);
        r.submit(|issue| server.acquire(issue, us(10)).end);
        assert!(r.drain() > a);
    }

    #[test]
    fn starting_at_offsets_phase() {
        let start = SimTime::ZERO + us(500);
        let mut server = Resource::new();
        let mut r = QueueRunner::starting_at(1, start);
        let t = r.submit(|issue| server.acquire(issue, us(10)).end);
        assert_eq!(t.issued, start);
    }

    #[test]
    #[should_panic(expected = "queue depth")]
    fn zero_qd_rejected() {
        let _ = QueueRunner::new(0);
    }

    #[test]
    #[should_panic(expected = "completed before")]
    fn causality_enforced() {
        let mut r = QueueRunner::starting_at(1, SimTime::from_nanos(100));
        r.submit(|_| SimTime::ZERO);
    }
}
