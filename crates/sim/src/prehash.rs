//! Pre-hashed hash maps for keys that are already uniform hashes.
//!
//! The device hot paths key their maps on values that went through a
//! 64-bit mixer before they ever reach a map — key hashes, fingerprints,
//! iterator handles. Running SipHash over a value that is already a
//! uniform hash is pure overhead, and `std`'s default hasher shows up
//! prominently in device-op profiles. [`PrehashedMap`] swaps it for a
//! single fold-and-multiply per word (the rustc `FxHash` recipe): one
//! `wrapping_mul` redistributes low-entropy inputs (sequential iterator
//! handles, LCNs) across the table's high bits, and is a no-op cost for
//! inputs that are already uniform.
//!
//! No external dependencies — the workspace stays offline-green.

// This module IS the sanctioned wrapper: it rebinds std's maps to a
// fixed hasher, so the disallowed types are allowed here and only here.
#![allow(clippy::disallowed_types)]

// kvlint: allow(no-random-state-map) — this module IS the sanctioned wrapper: it rebinds std's maps to a fixed hasher
use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// `HashMap` keyed by pre-hashed (or low-entropy integer) keys.
// kvlint: allow(no-random-state-map) — alias pins the hasher to PrehashHasher; no RandomState reaches callers
pub type PrehashedMap<K, V> = HashMap<K, V, BuildHasherDefault<PrehashHasher>>;

/// `HashSet` counterpart of [`PrehashedMap`].
// kvlint: allow(no-random-state-map) — alias pins the hasher to PrehashHasher; no RandomState reaches callers
pub type PrehashedSet<K> = HashSet<K, BuildHasherDefault<PrehashHasher>>;

/// Word-at-a-time folding hasher (FxHash-style).
///
/// Each written word is folded into the state with a rotate, xor, and a
/// multiply by a high-entropy odd constant. For keys that are already
/// uniform 64-bit hashes this preserves uniformity; for sequential
/// integers the multiply propagates the low bits into the high bits the
/// table's control bytes are taken from.
#[derive(Debug, Default, Clone, Copy)]
pub struct PrehashHasher {
    hash: u64,
}

/// `pi * 2^62`, odd — the multiplier rustc's FxHash uses for 64-bit words.
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

impl PrehashHasher {
    #[inline]
    fn fold(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for PrehashHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        // Byte-slice fallback (length prefixes, occasional byte keys):
        // fold whole words, then the tail.
        let mut chunks = bytes.chunks_exact(8);
        for c in chunks.by_ref() {
            self.fold(u64::from_le_bytes(c.try_into().expect("8-byte chunk")));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut tail = [0u8; 8];
            tail[..rem.len()].copy_from_slice(rem);
            self.fold(u64::from_le_bytes(tail) ^ rem.len() as u64);
        }
    }

    #[inline]
    fn write_u8(&mut self, v: u8) {
        self.fold(v as u64);
    }

    #[inline]
    fn write_u16(&mut self, v: u16) {
        self.fold(v as u64);
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.fold(v as u64);
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.fold(v);
    }

    #[inline]
    fn write_u128(&mut self, v: u128) {
        self.fold(v as u64);
        self.fold((v >> 64) as u64);
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.fold(v as u64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_round_trips_pair_keys() {
        let mut m: PrehashedMap<(u64, u64), u32> = PrehashedMap::default();
        for i in 0..10_000u64 {
            m.insert((crate::rng::mix64(i), crate::rng::mix64(!i)), i as u32);
        }
        assert_eq!(m.len(), 10_000);
        for i in 0..10_000u64 {
            assert_eq!(
                m.remove(&(crate::rng::mix64(i), crate::rng::mix64(!i))),
                Some(i as u32)
            );
        }
        assert!(m.is_empty());
    }

    #[test]
    fn sequential_integer_keys_spread_over_high_bits() {
        // Hashbrown takes its control byte from the hash's top 7 bits: a
        // pure identity hash of sequential handles would put every entry
        // in the same control class. The multiply must spread them.
        let mut top = PrehashedSet::default();
        for handle in 0..128u64 {
            let mut h = PrehashHasher::default();
            h.write_u64(handle);
            top.insert(h.finish() >> 57);
        }
        assert!(
            top.len() > 32,
            "only {} distinct top-7-bit classes",
            top.len()
        );
    }

    #[test]
    fn byte_slices_hash_consistently_and_distinctly() {
        let mut h1 = PrehashHasher::default();
        h1.write(b"abcdefgh-tail");
        let mut h2 = PrehashHasher::default();
        h2.write(b"abcdefgh-tail");
        assert_eq!(h1.finish(), h2.finish());
        let mut h3 = PrehashHasher::default();
        h3.write(b"abcdefgh-tail!");
        assert_ne!(h1.finish(), h3.finish());
    }

    #[test]
    fn set_handles_collision_free_inserts() {
        let mut s: PrehashedSet<u64> = PrehashedSet::default();
        for i in 0..50_000u64 {
            assert!(s.insert(crate::rng::mix64(i)));
        }
        assert_eq!(s.len(), 50_000);
    }
}
