//! Deterministic randomness for workloads.
//!
//! Everything in the study must be reproducible run-to-run, so all
//! randomness flows through a seeded [`DeterministicRng`]. The generator
//! is an in-repo xoshiro256** (Blackman & Vigna) seeded through a
//! SplitMix64 stream, so the workspace builds with zero external
//! dependencies and the streams are stable across toolchains. The crate
//! also implements the Zipfian distribution (the paper's skewed access
//! pattern) using the classic Gray et al. rejection-free method, plus a
//! cheap stateless `u64 -> u64` mixer used for hash-like deterministic
//! choices.

/// A seeded PRNG with convenience helpers.
///
/// xoshiro256** with SplitMix64 seed expansion: 256 bits of state, a
/// 2^256 - 1 period, and no external dependency. The wrapper API is the
/// contract — the engine underneath stays swappable.
#[derive(Debug, Clone)]
pub struct DeterministicRng {
    state: [u64; 4],
}

impl DeterministicRng {
    /// Creates a generator from a 64-bit seed.
    pub fn seed_from(seed: u64) -> Self {
        // SplitMix64 stream expands the seed into full 256-bit state;
        // mix64(x) computes exactly one SplitMix64 step from state x.
        let mut s = seed;
        let mut next = || {
            let out = mix64(s);
            s = s.wrapping_add(0x9E37_79B9_7F4A_7C15);
            out
        };
        let state = [next(), next(), next(), next()];
        DeterministicRng { state }
    }

    /// Uniform `u64` in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "below(0) is meaningless");
        // Lemire's unbiased multiply-shift rejection method.
        let mut m = self.next_u64() as u128 * bound as u128;
        if (m as u64) < bound {
            let threshold = bound.wrapping_neg() % bound;
            while (m as u64) < threshold {
                m = self.next_u64() as u128 * bound as u128;
            }
        }
        (m >> 64) as u64
    }

    /// Uniform `u64` in `[lo, hi]` inclusive.
    pub fn between(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo <= hi, "between: lo > hi");
        let span = hi - lo;
        if span == u64::MAX {
            return self.next_u64();
        }
        lo + self.below(span + 1)
    }

    /// Uniform float in `[0, 1)`.
    pub fn unit(&mut self) -> f64 {
        // 53 high bits -> [0, 1) with full double precision.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Bernoulli draw with probability `p`.
    pub fn chance(&mut self, p: f64) -> bool {
        self.unit() < p
    }

    /// Raw 64 random bits (xoshiro256** output function).
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.state;
        let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Fills `buf` with random bytes.
    pub fn fill_bytes(&mut self, buf: &mut [u8]) {
        for chunk in buf.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

/// SplitMix64 finalizer: a stateless, well-mixed `u64 -> u64` permutation.
///
/// Used wherever the simulator needs a deterministic pseudo-random choice
/// keyed by an identifier (e.g. "is index segment `s` DRAM-resident?").
pub fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Zipfian distribution over `[0, n)` with parameter `theta` (Gray et al.,
/// SIGMOD '94 — the YCSB generator). Rank 0 is the hottest item.
///
/// # Example
///
/// ```
/// use kvssd_sim::{DeterministicRng, ZipfianDistribution};
///
/// let zipf = ZipfianDistribution::new(1_000, 0.99);
/// let mut rng = DeterministicRng::seed_from(7);
/// let mut hot = 0u32;
/// for _ in 0..1_000 {
///     if zipf.sample(&mut rng) < 10 {
///         hot += 1;
///     }
/// }
/// // The hottest 1% of items draw far more than 1% of accesses.
/// assert!(hot > 100);
/// ```
#[derive(Debug, Clone)]
pub struct ZipfianDistribution {
    n: u64,
    theta: f64,
    alpha: f64,
    zetan: f64,
    eta: f64,
    zeta2: f64,
}

impl ZipfianDistribution {
    /// Builds the distribution for `n` items and skew `theta` in `(0, 1)`.
    ///
    /// `theta` near 0 approaches uniform; the YCSB default is `0.99`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `theta` is outside `(0, 1)`.
    pub fn new(n: u64, theta: f64) -> Self {
        assert!(n > 0, "Zipfian needs at least one item");
        assert!(
            theta > 0.0 && theta < 1.0,
            "theta must be in (0, 1), got {theta}"
        );
        let zetan = Self::zeta(n, theta);
        let zeta2 = Self::zeta(2, theta);
        let alpha = 1.0 / (1.0 - theta);
        let eta = (1.0 - (2.0 / n as f64).powf(1.0 - theta)) / (1.0 - zeta2 / zetan);
        ZipfianDistribution {
            n,
            theta,
            alpha,
            zetan,
            eta,
            zeta2,
        }
    }

    /// Number of items.
    pub fn item_count(&self) -> u64 {
        self.n
    }

    /// Skew parameter.
    pub fn theta(&self) -> f64 {
        self.theta
    }

    /// Draws a rank in `[0, n)`; smaller ranks are hotter.
    pub fn sample(&self, rng: &mut DeterministicRng) -> u64 {
        let u = rng.unit();
        let uz = u * self.zetan;
        if uz < 1.0 {
            return 0;
        }
        if uz < 1.0 + 0.5f64.powf(self.theta) {
            return 1;
        }
        let rank = (self.n as f64 * (self.eta * u - self.eta + 1.0).powf(self.alpha)) as u64;
        rank.min(self.n - 1)
    }

    fn zeta(n: u64, theta: f64) -> f64 {
        // Exact for small n; for large n use the Euler–Maclaurin
        // approximation so construction stays O(1) even at billions of
        // items (the paper's key populations reach 3 billion).
        const EXACT_LIMIT: u64 = 10_000_000;
        if n <= EXACT_LIMIT {
            (1..=n).map(|i| 1.0 / (i as f64).powf(theta)).sum()
        } else {
            let head: f64 = (1..=EXACT_LIMIT)
                .map(|i| 1.0 / (i as f64).powf(theta))
                .sum();
            // integral_{EXACT_LIMIT}^{n} x^-theta dx
            let a = EXACT_LIMIT as f64;
            let b = n as f64;
            let tail = (b.powf(1.0 - theta) - a.powf(1.0 - theta)) / (1.0 - theta);
            head + tail
        }
    }

    /// For diagnostics: expected probability of the hottest item.
    pub fn p_first(&self) -> f64 {
        let _ = self.zeta2; // keep field used in non-test builds
        1.0 / self.zetan
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rng_is_deterministic() {
        let mut a = DeterministicRng::seed_from(42);
        let mut b = DeterministicRng::seed_from(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn below_respects_bound() {
        let mut rng = DeterministicRng::seed_from(1);
        for _ in 0..1_000 {
            assert!(rng.below(7) < 7);
        }
    }

    #[test]
    fn between_is_inclusive() {
        let mut rng = DeterministicRng::seed_from(1);
        let mut saw_lo = false;
        let mut saw_hi = false;
        for _ in 0..10_000 {
            let v = rng.between(3, 5);
            assert!((3..=5).contains(&v));
            saw_lo |= v == 3;
            saw_hi |= v == 5;
        }
        assert!(saw_lo && saw_hi);
    }

    #[test]
    fn mix64_is_a_permutation_sample() {
        // Distinct inputs keep distinct outputs on a sample.
        let mut seen = crate::PrehashedSet::default();
        for i in 0..10_000u64 {
            assert!(seen.insert(mix64(i)));
        }
    }

    #[test]
    fn zipf_is_skewed_and_in_range() {
        let n = 10_000;
        let zipf = ZipfianDistribution::new(n, 0.99);
        let mut rng = DeterministicRng::seed_from(9);
        let mut counts = vec![0u32; n as usize];
        let draws = 200_000;
        for _ in 0..draws {
            let r = zipf.sample(&mut rng) as usize;
            counts[r] += 1;
        }
        // Hottest 1% of items should get a large share (> 30%) of draws.
        let hot: u32 = counts[..(n as usize / 100)].iter().sum();
        assert!(
            hot as f64 / draws as f64 > 0.30,
            "hot share {}",
            hot as f64 / draws as f64
        );
        // And rank 0 should be the single hottest item, roughly matching
        // its theoretical probability.
        let p0 = counts[0] as f64 / draws as f64;
        assert!((p0 - zipf.p_first()).abs() < 0.02, "p0 {p0}");
    }

    #[test]
    fn zipf_low_theta_is_flat_ish() {
        let n = 1_000;
        let zipf = ZipfianDistribution::new(n, 0.01);
        let mut rng = DeterministicRng::seed_from(3);
        let mut hot = 0u32;
        let draws = 100_000;
        for _ in 0..draws {
            if zipf.sample(&mut rng) < n / 100 {
                hot += 1;
            }
        }
        // Near-uniform: the hottest 1% draws close to 1%.
        assert!((hot as f64 / draws as f64) < 0.05);
    }

    #[test]
    fn zeta_approximation_is_close() {
        // Compare exact vs approximate at the switchover boundary.
        let exact = ZipfianDistribution::zeta(10_000_000, 0.99);
        let approx_input = 10_000_001;
        let approx = ZipfianDistribution::zeta(approx_input, 0.99);
        assert!(approx > exact);
        assert!((approx - exact) < 1e-3);
    }

    #[test]
    #[should_panic(expected = "theta")]
    fn zipf_rejects_bad_theta() {
        let _ = ZipfianDistribution::new(10, 1.5);
    }
}
