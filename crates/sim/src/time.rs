//! Virtual-time primitives.
//!
//! All simulated activity is stamped with a [`SimTime`] (nanoseconds since
//! simulation start) and separated by [`SimDuration`]s. Both are thin
//! wrappers over `u64` with saturating-free, panic-on-overflow arithmetic —
//! an overflow would mean a simulation bug, not a value to clamp.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// An instant on the virtual clock, in nanoseconds since simulation start.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of virtual time, in nanoseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimTime {
    /// The simulation epoch (t = 0).
    pub const ZERO: SimTime = SimTime(0);

    /// Creates a time from raw nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        SimTime(ns)
    }

    /// Raw nanoseconds since simulation start.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Seconds since simulation start, as a float (for reporting).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// The later of two instants.
    pub fn max(self, other: SimTime) -> SimTime {
        SimTime(self.0.max(other.0))
    }

    /// The earlier of two instants.
    pub fn min(self, other: SimTime) -> SimTime {
        SimTime(self.0.min(other.0))
    }

    /// Duration elapsed since `earlier`.
    ///
    /// # Panics
    ///
    /// Panics if `earlier` is after `self`; that indicates a causality bug
    /// in a device model.
    pub fn since(self, earlier: SimTime) -> SimDuration {
        assert!(
            earlier.0 <= self.0,
            "SimTime::since: earlier ({}) is after self ({})",
            earlier,
            self
        );
        SimDuration(self.0 - earlier.0)
    }

    /// Duration elapsed since `earlier`, or zero if `earlier` is later.
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }
}

impl SimDuration {
    /// Zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Creates a duration from nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        SimDuration(ns)
    }

    /// Creates a duration from microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us * 1_000)
    }

    /// Creates a duration from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000_000)
    }

    /// Creates a duration from seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000_000)
    }

    /// Duration for transferring `bytes` at `bytes_per_sec`.
    ///
    /// Rounds up to a whole nanosecond so a nonzero transfer never costs
    /// zero time.
    pub fn for_bytes(bytes: u64, bytes_per_sec: u64) -> Self {
        assert!(bytes_per_sec > 0, "bandwidth must be positive");
        if bytes == 0 {
            return SimDuration::ZERO;
        }
        let ns = (bytes as u128 * 1_000_000_000u128).div_ceil(bytes_per_sec as u128);
        SimDuration(ns as u64)
    }

    /// Raw nanoseconds.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Microseconds, as a float (for reporting).
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / 1e3
    }

    /// Seconds, as a float (for reporting).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// True when the duration is zero.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// The larger of two durations.
    pub fn max(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.max(other.0))
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.checked_add(rhs.0).expect("SimTime overflow"))
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.checked_sub(rhs.0).expect("SimTime underflow"))
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.checked_add(rhs.0).expect("SimDuration overflow"))
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.checked_sub(rhs.0).expect("SimDuration underflow"))
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        *self = *self - rhs;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0.checked_mul(rhs).expect("SimDuration overflow"))
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl Sum for SimDuration {
    fn sum<I: Iterator<Item = SimDuration>>(iter: I) -> SimDuration {
        iter.fold(SimDuration::ZERO, |a, b| a + b)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if self.0 >= 1_000_000 {
            write!(f, "{:.3}ms", self.0 as f64 / 1e6)
        } else if self.0 >= 1_000 {
            write!(f, "{:.3}us", self.0 as f64 / 1e3)
        } else {
            write!(f, "{}ns", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_arithmetic_round_trips() {
        let t = SimTime::from_nanos(5_000);
        let d = SimDuration::from_micros(3);
        assert_eq!((t + d).as_nanos(), 8_000);
        assert_eq!((t + d).since(t), d);
    }

    #[test]
    fn duration_constructors_scale() {
        assert_eq!(SimDuration::from_micros(1).as_nanos(), 1_000);
        assert_eq!(SimDuration::from_millis(1).as_nanos(), 1_000_000);
        assert_eq!(SimDuration::from_secs(1).as_nanos(), 1_000_000_000);
    }

    #[test]
    fn for_bytes_rounds_up() {
        // 1 byte at 3 bytes/s takes ceil(1e9 / 3) ns.
        let d = SimDuration::for_bytes(1, 3);
        assert_eq!(d.as_nanos(), 333_333_334);
        assert_eq!(SimDuration::for_bytes(0, 1_000), SimDuration::ZERO);
    }

    #[test]
    fn for_bytes_realistic_bandwidth() {
        // 4 KiB over 3.2 GB/s PCIe is ~1.28 us.
        let d = SimDuration::for_bytes(4096, 3_200_000_000);
        assert!((d.as_micros_f64() - 1.28).abs() < 0.01, "got {d}");
    }

    #[test]
    #[should_panic(expected = "earlier")]
    fn since_panics_on_causality_violation() {
        let _ = SimTime::from_nanos(1).since(SimTime::from_nanos(2));
    }

    #[test]
    fn saturating_since_clamps() {
        let a = SimTime::from_nanos(1);
        let b = SimTime::from_nanos(2);
        assert_eq!(a.saturating_since(b), SimDuration::ZERO);
        assert_eq!(b.saturating_since(a), SimDuration::from_nanos(1));
    }

    #[test]
    fn display_picks_unit() {
        assert_eq!(SimDuration::from_nanos(12).to_string(), "12ns");
        assert_eq!(SimDuration::from_micros(12).to_string(), "12.000us");
        assert_eq!(SimDuration::from_millis(12).to_string(), "12.000ms");
        assert_eq!(SimDuration::from_secs(12).to_string(), "12.000s");
    }

    #[test]
    fn duration_sum_and_scale() {
        let total: SimDuration = [1u64, 2, 3]
            .iter()
            .map(|&n| SimDuration::from_nanos(n))
            .sum();
        assert_eq!(total.as_nanos(), 6);
        assert_eq!((SimDuration::from_nanos(6) / 2).as_nanos(), 3);
        assert_eq!((SimDuration::from_nanos(6) * 2).as_nanos(), 12);
    }
}
