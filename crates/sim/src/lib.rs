//! Virtual-time simulation substrate for the KV-SSD characterization study.
//!
//! Every device and host model in this workspace runs on a deterministic
//! *virtual clock* measured in nanoseconds. Instead of a classic
//! discrete-event simulator with callbacks, components are modeled as
//! **resource timelines**: an operation arriving at time `t` reserves the
//! resources it needs (a controller CPU, a flash die, a bus) and its
//! completion time falls out of when those resources were available. This
//! style composes well — a key-value store calls a filesystem which calls a
//! device, and each layer simply threads `SimTime` through — while still
//! producing queue-depth effects, parallelism, and interference.
//!
//! The crate provides:
//!
//! * [`SimTime`] / [`SimDuration`] — the virtual clock arithmetic,
//! * [`Resource`] / [`ResourcePool`] — FIFO busy-until timelines,
//! * [`QueueRunner`] — an outstanding-operation scheduler that models a
//!   host issuing requests at a fixed queue depth,
//! * [`rng`] — deterministic RNG and a Zipfian distribution for workloads,
//! * [`stats`] — latency histograms with percentiles, bandwidth time
//!   series, and helper counters.
//!
//! # Example
//!
//! ```
//! use kvssd_sim::{Resource, SimDuration, SimTime};
//!
//! // A single flash die serving two reads that arrive at the same time:
//! let mut die = Resource::new();
//! let t0 = SimTime::ZERO;
//! let first = die.acquire(t0, SimDuration::from_micros(90));
//! let second = die.acquire(t0, SimDuration::from_micros(90));
//! assert_eq!(first.end, SimTime::ZERO + SimDuration::from_micros(90));
//! // The second read waits for the first to finish:
//! assert_eq!(second.start, first.end);
//! ```

pub mod prehash;
pub mod resource;
pub mod rng;
pub mod runner;
pub mod stats;
pub mod time;

pub use prehash::{PrehashHasher, PrehashedMap, PrehashedSet};
pub use resource::{Resource, ResourcePool, Window};
pub use rng::{mix64, DeterministicRng, ZipfianDistribution};
pub use runner::{FanIn, OpTiming, QueueRunner};
pub use stats::{BandwidthSeries, Counter, LatencyHistogram, RatioSummary};
pub use time::{SimDuration, SimTime};
