//! Measurement primitives: latency histograms, bandwidth time series, and
//! small counters — the simulator's replacements for the paper's
//! KVbench logs, `dstat`, and `iostat`.

mod histogram;
mod series;

pub use histogram::LatencyHistogram;
pub use series::{BandwidthPoint, BandwidthSeries};

use std::fmt;

/// A named monotonic event counter.
#[derive(Debug, Clone, Default)]
pub struct Counter {
    value: u64,
}

impl Counter {
    /// Creates a zeroed counter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one.
    pub fn bump(&mut self) {
        self.value += 1;
    }

    /// Adds `n`.
    pub fn add(&mut self, n: u64) {
        self.value += n;
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value
    }
}

/// A compact summary of "ours vs. baseline" used in the experiment tables.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RatioSummary {
    /// The subject's measurement (e.g. KV-SSD latency in us).
    pub subject: f64,
    /// The baseline's measurement (e.g. block-SSD latency in us).
    pub baseline: f64,
}

impl RatioSummary {
    /// Creates a summary; the baseline must be positive.
    pub fn new(subject: f64, baseline: f64) -> Self {
        assert!(baseline > 0.0, "baseline must be positive");
        RatioSummary { subject, baseline }
    }

    /// subject / baseline. Values below 1.0 favor the subject for costs
    /// (latency) and the baseline for throughputs.
    pub fn ratio(&self) -> f64 {
        self.subject / self.baseline
    }
}

impl fmt::Display for RatioSummary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:.2} vs {:.2} ({:.2}x)",
            self.subject,
            self.baseline,
            self.ratio()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_accumulates() {
        let mut c = Counter::new();
        c.bump();
        c.add(4);
        assert_eq!(c.get(), 5);
    }

    #[test]
    fn ratio_math() {
        let r = RatioSummary::new(5.0, 2.0);
        assert!((r.ratio() - 2.5).abs() < 1e-12);
        assert_eq!(r.to_string(), "5.00 vs 2.00 (2.50x)");
    }

    #[test]
    #[should_panic(expected = "baseline")]
    fn ratio_rejects_zero_baseline() {
        let _ = RatioSummary::new(1.0, 0.0);
    }
}
