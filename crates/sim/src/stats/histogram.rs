//! Log-bucketed latency histogram.
//!
//! An HdrHistogram-style structure: values are bucketed by (exponent,
//! mantissa-slice), giving a bounded relative error (~1.5 % with 64
//! sub-buckets) at any magnitude from nanoseconds to minutes, in constant
//! memory. This is what the experiment harness records every operation
//! latency into.

use std::fmt;

use crate::time::SimDuration;

const SUB_BUCKET_BITS: u32 = 6; // 64 sub-buckets per power of two
const SUB_BUCKETS: usize = 1 << SUB_BUCKET_BITS;
const BUCKETS: usize = 64 - SUB_BUCKET_BITS as usize; // enough for any u64

/// A latency histogram with percentile queries.
///
/// # Example
///
/// ```
/// use kvssd_sim::{LatencyHistogram, SimDuration};
///
/// let mut h = LatencyHistogram::new();
/// for us in 1..=100 {
///     h.record(SimDuration::from_micros(us));
/// }
/// assert_eq!(h.count(), 100);
/// let p50 = h.percentile(50.0).as_micros_f64();
/// assert!((p50 - 50.0).abs() / 50.0 < 0.05, "p50 was {p50}");
/// ```
#[derive(Clone)]
pub struct LatencyHistogram {
    counts: Vec<u32>,
    count: u64,
    sum_ns: u128,
    min_ns: u64,
    max_ns: u64,
}

impl LatencyHistogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        LatencyHistogram {
            counts: vec![0; BUCKETS * SUB_BUCKETS],
            count: 0,
            sum_ns: 0,
            min_ns: u64::MAX,
            max_ns: 0,
        }
    }

    /// Records one latency sample.
    pub fn record(&mut self, latency: SimDuration) {
        let ns = latency.as_nanos();
        let idx = Self::index_of(ns);
        self.counts[idx] = self.counts[idx].saturating_add(1);
        self.count += 1;
        self.sum_ns += ns as u128;
        self.min_ns = self.min_ns.min(ns);
        self.max_ns = self.max_ns.max(ns);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// True if no samples were recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Arithmetic mean of all samples (exact, not bucketed).
    pub fn mean(&self) -> SimDuration {
        if self.count == 0 {
            return SimDuration::ZERO;
        }
        SimDuration::from_nanos((self.sum_ns / self.count as u128) as u64)
    }

    /// Smallest recorded sample (exact).
    pub fn min(&self) -> SimDuration {
        if self.count == 0 {
            SimDuration::ZERO
        } else {
            SimDuration::from_nanos(self.min_ns)
        }
    }

    /// Largest recorded sample (exact).
    pub fn max(&self) -> SimDuration {
        SimDuration::from_nanos(self.max_ns)
    }

    /// Value at the given percentile in `[0, 100]`, to bucket precision
    /// (~1.5 % relative error).
    pub fn percentile(&self, p: f64) -> SimDuration {
        assert!((0.0..=100.0).contains(&p), "percentile out of range: {p}");
        if self.count == 0 {
            return SimDuration::ZERO;
        }
        let target = ((p / 100.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (idx, &c) in self.counts.iter().enumerate() {
            if c == 0 {
                continue;
            }
            seen += c as u64;
            if seen >= target {
                return SimDuration::from_nanos(Self::value_of(idx).min(self.max_ns));
            }
        }
        self.max()
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &LatencyHistogram) {
        self.merge_from(other);
    }

    /// Merges `other` into `self` without allocating: both histograms
    /// have the same fixed bucket layout, so this is a pure element-wise
    /// add. Callers that aggregate many histograms repeatedly (e.g. the
    /// cluster's per-shard merges) keep one accumulator and `clear` +
    /// `merge_from` instead of rebuilding.
    pub fn merge_from(&mut self, other: &LatencyHistogram) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a = a.saturating_add(*b);
        }
        self.count += other.count;
        self.sum_ns += other.sum_ns;
        if other.count > 0 {
            self.min_ns = self.min_ns.min(other.min_ns);
            self.max_ns = self.max_ns.max(other.max_ns);
        }
    }

    /// Resets to empty in place, keeping the bucket storage.
    pub fn clear(&mut self) {
        self.counts.fill(0);
        self.count = 0;
        self.sum_ns = 0;
        self.min_ns = u64::MAX;
        self.max_ns = 0;
    }

    /// One-line summary used by the report tables.
    pub fn summary(&self) -> String {
        if self.count == 0 {
            return "(no samples)".to_string();
        }
        format!(
            "n={} mean={} p50={} p95={} p99={} max={}",
            self.count,
            self.mean(),
            self.percentile(50.0),
            self.percentile(95.0),
            self.percentile(99.0),
            self.max()
        )
    }

    fn index_of(ns: u64) -> usize {
        if ns < SUB_BUCKETS as u64 {
            return ns as usize;
        }
        let msb = 63 - ns.leading_zeros();
        let bucket = (msb - SUB_BUCKET_BITS + 1) as usize;
        let sub = (ns >> (bucket as u32 - 1)) as usize - SUB_BUCKETS;
        debug_assert!(sub < SUB_BUCKETS);
        bucket * SUB_BUCKETS + sub
    }

    fn value_of(idx: usize) -> u64 {
        let bucket = idx / SUB_BUCKETS;
        let sub = idx % SUB_BUCKETS;
        if bucket == 0 {
            return sub as u64;
        }
        // Upper edge of the bucket (conservative for percentiles).
        ((SUB_BUCKETS + sub + 1) as u64) << (bucket - 1) as u32
    }
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl fmt::Debug for LatencyHistogram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("LatencyHistogram")
            .field("count", &self.count)
            .field("mean", &self.mean())
            .field("max", &self.max())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn us(n: u64) -> SimDuration {
        SimDuration::from_micros(n)
    }

    #[test]
    fn empty_histogram_is_zeroes() {
        let h = LatencyHistogram::new();
        assert!(h.is_empty());
        assert_eq!(h.mean(), SimDuration::ZERO);
        assert_eq!(h.percentile(99.0), SimDuration::ZERO);
        assert_eq!(h.summary(), "(no samples)");
    }

    #[test]
    fn mean_min_max_are_exact() {
        let mut h = LatencyHistogram::new();
        h.record(us(10));
        h.record(us(20));
        h.record(us(90));
        assert_eq!(h.mean(), us(40));
        assert_eq!(h.min(), us(10));
        assert_eq!(h.max(), us(90));
    }

    #[test]
    fn percentiles_bounded_relative_error() {
        let mut h = LatencyHistogram::new();
        for i in 1..=10_000u64 {
            h.record(SimDuration::from_nanos(i * 137));
        }
        for &p in &[10.0f64, 50.0, 90.0, 99.0, 99.9] {
            let exact = (p / 100.0 * 10_000.0).ceil() as u64 * 137;
            let got = h.percentile(p).as_nanos();
            let err = (got as f64 - exact as f64).abs() / exact as f64;
            assert!(err < 0.05, "p{p}: exact {exact} got {got} err {err}");
        }
    }

    #[test]
    fn p100_is_max() {
        let mut h = LatencyHistogram::new();
        h.record(us(3));
        h.record(us(7_000));
        assert_eq!(h.percentile(100.0), us(7_000));
    }

    #[test]
    fn tiny_values_are_exact() {
        let mut h = LatencyHistogram::new();
        for ns in 0..SUB_BUCKETS as u64 {
            h.record(SimDuration::from_nanos(ns));
        }
        assert_eq!(h.percentile(0.0).as_nanos(), 0);
        assert_eq!(h.max().as_nanos(), SUB_BUCKETS as u64 - 1);
    }

    #[test]
    fn merge_combines_counts() {
        let mut a = LatencyHistogram::new();
        let mut b = LatencyHistogram::new();
        a.record(us(10));
        b.record(us(30));
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert_eq!(a.mean(), us(20));
        assert_eq!(a.max(), us(30));
    }

    #[test]
    fn merge_from_then_clear_reuses_storage() {
        let mut acc = LatencyHistogram::new();
        let mut b = LatencyHistogram::new();
        b.record(us(5));
        b.record(us(15));
        acc.merge_from(&b);
        assert_eq!(acc.count(), 2);
        assert_eq!(acc.mean(), us(10));
        acc.clear();
        assert!(acc.is_empty());
        assert_eq!(acc.mean(), SimDuration::ZERO);
        acc.merge_from(&b);
        assert_eq!(acc.count(), 2);
        assert_eq!(acc.max(), us(15));
    }

    #[test]
    fn index_value_round_trip_monotone() {
        let mut last = 0;
        for exp in 0..40u32 {
            let v = 1u64 << exp;
            let idx = LatencyHistogram::index_of(v);
            assert!(idx >= last, "index must be monotone in value");
            last = idx;
            let upper = LatencyHistogram::value_of(idx);
            assert!(upper >= v);
            // Relative bucket width bound.
            assert!((upper - v) as f64 / v as f64 <= 0.04, "v={v} upper={upper}");
        }
    }
}
