//! Windowed bandwidth time series.
//!
//! The paper's Figs. 5–6 and 8 report device bandwidth over time or per
//! configuration. [`BandwidthSeries`] buckets completed bytes into fixed
//! virtual-time windows so a run can be rendered as a `MB/s` series and
//! drops (e.g. foreground GC stalls) show up as low-valued windows.

use crate::time::{SimDuration, SimTime};

/// One reporting window of a bandwidth series.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BandwidthPoint {
    /// Start of the window.
    pub at: SimTime,
    /// Bytes completed during the window.
    pub bytes: u64,
    /// Operations completed during the window.
    pub ops: u64,
    /// Mean bandwidth across the window in MB/s (decimal megabytes).
    pub mbps: f64,
}

/// Buckets completed I/O bytes into fixed-width virtual-time windows.
#[derive(Debug, Clone)]
pub struct BandwidthSeries {
    window: SimDuration,
    bytes: Vec<u64>,
    ops: Vec<u64>,
    total_bytes: u64,
    total_ops: u64,
    last_at: SimTime,
}

impl BandwidthSeries {
    /// Creates a series with the given window width.
    ///
    /// # Panics
    ///
    /// Panics if `window` is zero.
    pub fn new(window: SimDuration) -> Self {
        assert!(!window.is_zero(), "window must be positive");
        BandwidthSeries {
            window,
            bytes: Vec::new(),
            ops: Vec::new(),
            total_bytes: 0,
            total_ops: 0,
            last_at: SimTime::ZERO,
        }
    }

    /// Records `bytes` completed at time `at`.
    pub fn record(&mut self, at: SimTime, bytes: u64) {
        let idx = (at.as_nanos() / self.window.as_nanos()) as usize;
        if idx >= self.bytes.len() {
            self.bytes.resize(idx + 1, 0);
            self.ops.resize(idx + 1, 0);
        }
        self.bytes[idx] += bytes;
        self.ops[idx] += 1;
        self.total_bytes += bytes;
        self.total_ops += 1;
        self.last_at = self.last_at.max(at);
    }

    /// The configured window width.
    pub fn window(&self) -> SimDuration {
        self.window
    }

    /// Total bytes recorded.
    pub fn total_bytes(&self) -> u64 {
        self.total_bytes
    }

    /// Total operations recorded.
    pub fn total_ops(&self) -> u64 {
        self.total_ops
    }

    /// Overall mean bandwidth in MB/s from t=0 to the last completion.
    pub fn mean_mbps(&self) -> f64 {
        let secs = self.last_at.as_secs_f64();
        if secs == 0.0 {
            return 0.0;
        }
        self.total_bytes as f64 / 1e6 / secs
    }

    /// The per-window series (includes empty windows between activity).
    pub fn points(&self) -> Vec<BandwidthPoint> {
        let wsec = self.window.as_secs_f64();
        self.bytes
            .iter()
            .zip(&self.ops)
            .enumerate()
            .map(|(i, (&bytes, &ops))| BandwidthPoint {
                at: SimTime::from_nanos(i as u64 * self.window.as_nanos()),
                bytes,
                ops,
                mbps: bytes as f64 / 1e6 / wsec,
            })
            .collect()
    }

    /// Minimum and maximum window bandwidth (MB/s) over the active range,
    /// ignoring the possibly-partial final window. Returns `None` when
    /// fewer than two windows are populated.
    pub fn min_max_mbps(&self) -> Option<(f64, f64)> {
        if self.bytes.len() < 2 {
            return None;
        }
        let wsec = self.window.as_secs_f64();
        let complete = &self.bytes[..self.bytes.len() - 1];
        let min = complete.iter().min().copied()? as f64 / 1e6 / wsec;
        let max = complete.iter().max().copied()? as f64 / 1e6 / wsec;
        Some((min, max))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(n: u64) -> SimDuration {
        SimDuration::from_millis(n)
    }

    #[test]
    fn buckets_by_window() {
        let mut s = BandwidthSeries::new(ms(10));
        s.record(SimTime::ZERO + ms(1), 1_000);
        s.record(SimTime::ZERO + ms(5), 2_000);
        s.record(SimTime::ZERO + ms(15), 4_000);
        let p = s.points();
        assert_eq!(p.len(), 2);
        assert_eq!(p[0].bytes, 3_000);
        assert_eq!(p[0].ops, 2);
        assert_eq!(p[1].bytes, 4_000);
        // 4000 bytes in a 10 ms window = 0.4 MB/s.
        assert!((p[1].mbps - 0.4).abs() < 1e-9);
    }

    #[test]
    fn mean_uses_elapsed_time() {
        let mut s = BandwidthSeries::new(ms(10));
        s.record(SimTime::ZERO + SimDuration::from_secs(1), 10_000_000);
        assert!((s.mean_mbps() - 10.0).abs() < 1e-9);
    }

    #[test]
    fn gaps_show_as_empty_windows() {
        let mut s = BandwidthSeries::new(ms(10));
        s.record(SimTime::ZERO + ms(1), 100);
        s.record(SimTime::ZERO + ms(35), 100);
        let p = s.points();
        assert_eq!(p.len(), 4);
        assert_eq!(p[1].bytes, 0);
        assert_eq!(p[2].bytes, 0);
    }

    #[test]
    fn min_max_ignores_partial_tail() {
        let mut s = BandwidthSeries::new(ms(10));
        s.record(SimTime::ZERO + ms(1), 1_000);
        s.record(SimTime::ZERO + ms(11), 5_000);
        s.record(SimTime::ZERO + ms(21), 50); // partial tail window
        let (min, max) = s.min_max_mbps().unwrap();
        assert!((min - 0.1).abs() < 1e-9);
        assert!((max - 0.5).abs() < 1e-9);
    }

    #[test]
    fn empty_series_behaves() {
        let s = BandwidthSeries::new(ms(10));
        assert_eq!(s.mean_mbps(), 0.0);
        assert!(s.points().is_empty());
        assert!(s.min_max_mbps().is_none());
    }
}
