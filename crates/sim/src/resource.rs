//! FIFO resource timelines.
//!
//! A [`Resource`] models anything that serves one request at a time — a
//! flash die, a channel, a firmware CPU, a host core. Requests reserve the
//! resource in arrival order: a request arriving at `t` starts at
//! `max(t, busy_until)` and pushes `busy_until` forward. This is exactly an
//! M/G/1-style FIFO queue evaluated lazily, which is all the queueing the
//! device models in this workspace need.
//!
//! A [`ResourcePool`] models `n` identical servers (e.g. four index-manager
//! cores); requests are dispatched to the earliest-available server.

use crate::time::{SimDuration, SimTime};

/// The interval during which a request held a resource.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Window {
    /// When service began (>= arrival time).
    pub start: SimTime,
    /// When service finished and the resource became free again.
    pub end: SimTime,
}

impl Window {
    /// Time spent waiting plus being served, measured from `arrival`.
    pub fn latency_from(&self, arrival: SimTime) -> SimDuration {
        self.end.since(arrival)
    }
}

/// A single-server FIFO resource timeline.
#[derive(Debug, Clone, Default)]
pub struct Resource {
    busy_until: SimTime,
    busy_total: SimDuration,
    served: u64,
}

impl Resource {
    /// Creates an idle resource.
    pub fn new() -> Self {
        Self::default()
    }

    /// Reserves the resource for `service` starting no earlier than `now`.
    ///
    /// Returns the service window. Zero-length services are accounted but
    /// do not advance the timeline.
    pub fn acquire(&mut self, now: SimTime, service: SimDuration) -> Window {
        let start = now.max(self.busy_until);
        let end = start + service;
        self.busy_until = end;
        self.busy_total += service;
        self.served += 1;
        Window { start, end }
    }

    /// Reserves the resource but does not start before `not_before`
    /// (e.g. a die op that must wait for a bus transfer to finish).
    pub fn acquire_after(
        &mut self,
        now: SimTime,
        not_before: SimTime,
        service: SimDuration,
    ) -> Window {
        self.acquire(now.max(not_before), service)
    }

    /// The earliest instant a new request could begin service.
    pub fn available_at(&self) -> SimTime {
        self.busy_until
    }

    /// Total busy time accumulated so far.
    pub fn busy_total(&self) -> SimDuration {
        self.busy_total
    }

    /// Number of requests served.
    pub fn served(&self) -> u64 {
        self.served
    }

    /// Fraction of `[SimTime::ZERO, until]` this resource spent busy.
    pub fn utilization(&self, until: SimTime) -> f64 {
        if until == SimTime::ZERO {
            return 0.0;
        }
        self.busy_total.as_nanos() as f64 / until.as_nanos() as f64
    }
}

/// A pool of `n` identical single-server resources with earliest-available
/// dispatch.
#[derive(Debug, Clone)]
pub struct ResourcePool {
    servers: Vec<Resource>,
}

impl ResourcePool {
    /// Creates a pool of `n` idle servers.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn new(n: usize) -> Self {
        assert!(n > 0, "a ResourcePool needs at least one server");
        ResourcePool {
            servers: vec![Resource::new(); n],
        }
    }

    /// Number of servers in the pool.
    pub fn len(&self) -> usize {
        self.servers.len()
    }

    /// Always false: pools have at least one server.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Dispatches to the earliest-available server.
    pub fn acquire(&mut self, now: SimTime, service: SimDuration) -> Window {
        let idx = self.earliest();
        self.servers[idx].acquire(now, service)
    }

    /// Dispatches to a *specific* server (e.g. requests hash-partitioned
    /// across index managers).
    pub fn acquire_on(&mut self, idx: usize, now: SimTime, service: SimDuration) -> Window {
        self.servers[idx].acquire(now, service)
    }

    /// Total busy time across all servers.
    pub fn busy_total(&self) -> SimDuration {
        self.servers.iter().map(Resource::busy_total).sum()
    }

    /// Total requests served across all servers.
    pub fn served(&self) -> u64 {
        self.servers.iter().map(Resource::served).sum()
    }

    /// Mean utilization over `[0, until]` across servers.
    pub fn utilization(&self, until: SimTime) -> f64 {
        if until == SimTime::ZERO {
            return 0.0;
        }
        self.busy_total().as_nanos() as f64 / (until.as_nanos() as f64 * self.servers.len() as f64)
    }

    fn earliest(&self) -> usize {
        let mut best = 0;
        for (i, s) in self.servers.iter().enumerate().skip(1) {
            if s.available_at() < self.servers[best].available_at() {
                best = i;
            }
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn us(n: u64) -> SimDuration {
        SimDuration::from_micros(n)
    }

    #[test]
    fn fifo_serializes_contending_requests() {
        let mut r = Resource::new();
        let a = r.acquire(SimTime::ZERO, us(10));
        let b = r.acquire(SimTime::ZERO, us(10));
        assert_eq!(a.start, SimTime::ZERO);
        assert_eq!(b.start, a.end);
        assert_eq!(b.end.since(SimTime::ZERO), us(20));
    }

    #[test]
    fn idle_gaps_are_not_busy_time() {
        let mut r = Resource::new();
        r.acquire(SimTime::ZERO, us(10));
        // Arrives long after the first finished: a 90 us idle gap.
        let w = r.acquire(SimTime::ZERO + us(100), us(10));
        assert_eq!(w.start, SimTime::ZERO + us(100));
        assert_eq!(r.busy_total(), us(20));
        assert!((r.utilization(SimTime::ZERO + us(200)) - 0.1).abs() < 1e-9);
    }

    #[test]
    fn acquire_after_honors_dependency() {
        let mut r = Resource::new();
        let w = r.acquire_after(SimTime::ZERO, SimTime::ZERO + us(50), us(10));
        assert_eq!(w.start, SimTime::ZERO + us(50));
    }

    #[test]
    fn pool_runs_in_parallel() {
        let mut p = ResourcePool::new(2);
        let a = p.acquire(SimTime::ZERO, us(10));
        let b = p.acquire(SimTime::ZERO, us(10));
        let c = p.acquire(SimTime::ZERO, us(10));
        // Two run immediately in parallel, the third queues.
        assert_eq!(a.start, SimTime::ZERO);
        assert_eq!(b.start, SimTime::ZERO);
        assert_eq!(c.start, SimTime::ZERO + us(10));
        assert_eq!(p.served(), 3);
    }

    #[test]
    fn pool_partitioned_dispatch() {
        let mut p = ResourcePool::new(2);
        let a = p.acquire_on(0, SimTime::ZERO, us(10));
        let b = p.acquire_on(0, SimTime::ZERO, us(10));
        assert_eq!(b.start, a.end, "same partition must serialize");
    }

    #[test]
    fn window_latency_includes_queueing() {
        let mut r = Resource::new();
        r.acquire(SimTime::ZERO, us(10));
        let w = r.acquire(SimTime::ZERO, us(5));
        assert_eq!(w.latency_from(SimTime::ZERO), us(15));
    }

    #[test]
    #[should_panic(expected = "at least one server")]
    fn empty_pool_rejected() {
        let _ = ResourcePool::new(0);
    }
}
