//! Property tests for the simulation substrate.
//!
//! The default (offline) suite drives the same properties with the
//! in-repo [`DeterministicRng`] as the case generator; the original
//! proptest versions — with shrinking — stay available behind the
//! non-default `proptest` feature (restore the `proptest` dev-dependency
//! to enable).

use kvssd_sim::{
    DeterministicRng, LatencyHistogram, QueueRunner, Resource, ResourcePool, SimDuration, SimTime,
    ZipfianDistribution,
};

/// Histogram percentiles stay within the structure's relative-error
/// bound against exact order statistics, for arbitrary samples.
#[test]
fn histogram_percentiles_bounded_error() {
    let mut rng = DeterministicRng::seed_from(0x5151_0001);
    for _ in 0..48 {
        let len = rng.between(1, 400) as usize;
        let mut samples: Vec<u64> = (0..len).map(|_| rng.between(1, 10_000_000_000)).collect();
        let p = 1.0 + rng.unit() * 99.0;
        let mut h = LatencyHistogram::new();
        for &s in &samples {
            h.record(SimDuration::from_nanos(s));
        }
        samples.sort_unstable();
        let rank = ((p / 100.0 * samples.len() as f64).ceil() as usize).clamp(1, samples.len());
        let exact = samples[rank - 1];
        let got = h.percentile(p).as_nanos();
        // Bucketed value is an upper edge: never below the exact value's
        // bucket, never more than ~4 % above the true max of that rank.
        assert!(got as f64 >= exact as f64 * 0.96, "got {got} exact {exact}");
        assert!(got <= h.max().as_nanos());
    }
}

/// Histogram mean/min/max are exact regardless of bucketing.
#[test]
fn histogram_exact_moments() {
    let mut rng = DeterministicRng::seed_from(0x5151_0002);
    for _ in 0..48 {
        let len = rng.between(1, 200) as usize;
        let samples: Vec<u64> = (0..len).map(|_| rng.below(1_000_000_000)).collect();
        let mut h = LatencyHistogram::new();
        for &s in &samples {
            h.record(SimDuration::from_nanos(s));
        }
        let sum: u128 = samples.iter().map(|&s| s as u128).sum();
        assert_eq!(h.mean().as_nanos() as u128, sum / samples.len() as u128);
        assert_eq!(h.min().as_nanos(), *samples.iter().min().unwrap());
        assert_eq!(h.max().as_nanos(), *samples.iter().max().unwrap());
    }
}

/// A FIFO resource conserves busy time and never overlaps service
/// windows, for arbitrary arrivals.
#[test]
fn resource_windows_never_overlap() {
    let mut rng = DeterministicRng::seed_from(0x5151_0003);
    for _ in 0..48 {
        let n = rng.between(1, 100) as usize;
        let mut r = Resource::new();
        let mut windows = Vec::new();
        let mut total = 0u64;
        for _ in 0..n {
            let at = rng.below(1_000_000);
            let dur = rng.between(1, 9_999);
            let w = r.acquire(SimTime::from_nanos(at), SimDuration::from_nanos(dur));
            assert_eq!(w.end.since(w.start).as_nanos(), dur);
            assert!(w.start >= SimTime::from_nanos(at));
            windows.push(w);
            total += dur;
        }
        assert_eq!(r.busy_total().as_nanos(), total);
        for pair in windows.windows(2) {
            assert!(pair[1].start >= pair[0].end, "service overlapped");
        }
    }
}

/// A pool of n servers is never slower than a single server and never
/// faster than perfect n-way splitting.
#[test]
fn pool_speedup_is_bounded() {
    let mut rng = DeterministicRng::seed_from(0x5151_0004);
    for _ in 0..48 {
        let n = rng.between(1, 7) as usize;
        let jobs: Vec<u64> = (0..rng.between(1, 80))
            .map(|_| rng.between(1, 9_999))
            .collect();
        let mut single = Resource::new();
        let mut pool = ResourcePool::new(n);
        let mut single_end = SimTime::ZERO;
        let mut pool_end = SimTime::ZERO;
        for &j in &jobs {
            single_end = single
                .acquire(SimTime::ZERO, SimDuration::from_nanos(j))
                .end;
            pool_end = pool_end.max(pool.acquire(SimTime::ZERO, SimDuration::from_nanos(j)).end);
        }
        let total: u64 = jobs.iter().sum();
        assert_eq!(single_end.as_nanos(), total);
        assert!(pool_end <= single_end);
        assert!(pool_end.as_nanos() >= total / n as u64);
    }
}

/// The queue runner respects its depth: with QD d over one server,
/// makespan equals total service regardless of d, and latencies are
/// bounded by d x service.
#[test]
fn queue_runner_conservation() {
    let mut rng = DeterministicRng::seed_from(0x5151_0005);
    for _ in 0..48 {
        let qd = rng.between(1, 15) as usize;
        let services: Vec<u64> = (0..rng.between(1, 80))
            .map(|_| rng.between(1, 4_999))
            .collect();
        let mut server = Resource::new();
        let mut runner = QueueRunner::new(qd);
        let max_service = *services.iter().max().unwrap();
        for &s in &services {
            let t = runner.submit(|issue| server.acquire(issue, SimDuration::from_nanos(s)).end);
            assert!(
                t.latency().as_nanos() <= qd as u64 * max_service,
                "latency exceeded QD x max service"
            );
        }
        let total: u64 = services.iter().sum();
        assert_eq!(runner.drain().as_nanos(), total);
    }
}

/// Zipfian samples always land in range and the distribution is
/// monotone-ish: the hottest decile gets at least its uniform share.
#[test]
fn zipf_in_range_and_skewed() {
    let mut gen_rng = DeterministicRng::seed_from(0x5151_0006);
    for _ in 0..24 {
        let n = gen_rng.between(10, 5_000);
        let theta = 0.05 + gen_rng.unit() * 0.94;
        let seed = gen_rng.below(1_000);
        let zipf = ZipfianDistribution::new(n, theta);
        let mut rng = DeterministicRng::seed_from(seed);
        let draws = 2_000;
        let mut hot = 0u64;
        for _ in 0..draws {
            let r = zipf.sample(&mut rng);
            assert!(r < n);
            if r < n.div_ceil(10) {
                hot += 1;
            }
        }
        assert!(
            hot * 100 >= draws * 8,
            "hot decile under uniform share: {hot}"
        );
    }
}

/// The original proptest suite (with shrinking), behind the non-default
/// `proptest` feature. Restore `proptest = "1"` under [dev-dependencies]
/// before enabling.
#[cfg(feature = "proptest")]
mod with_proptest {
    use proptest::prelude::*;

    use kvssd_sim::{
        LatencyHistogram, QueueRunner, Resource, ResourcePool, SimDuration, SimTime,
        ZipfianDistribution,
    };

    proptest! {
        #[test]
        fn histogram_percentiles_bounded_error(
            mut samples in prop::collection::vec(1u64..10_000_000_000, 1..400),
            p in 1.0f64..100.0,
        ) {
            let mut h = LatencyHistogram::new();
            for &s in &samples {
                h.record(SimDuration::from_nanos(s));
            }
            samples.sort_unstable();
            let rank = ((p / 100.0 * samples.len() as f64).ceil() as usize)
                .clamp(1, samples.len());
            let exact = samples[rank - 1];
            let got = h.percentile(p).as_nanos();
            prop_assert!(got as f64 >= exact as f64 * 0.96, "got {got} exact {exact}");
            prop_assert!(got <= h.max().as_nanos());
        }

        #[test]
        fn histogram_exact_moments(samples in prop::collection::vec(0u64..1_000_000_000, 1..200)) {
            let mut h = LatencyHistogram::new();
            for &s in &samples {
                h.record(SimDuration::from_nanos(s));
            }
            let sum: u128 = samples.iter().map(|&s| s as u128).sum();
            prop_assert_eq!(h.mean().as_nanos() as u128, sum / samples.len() as u128);
            prop_assert_eq!(h.min().as_nanos(), *samples.iter().min().unwrap());
            prop_assert_eq!(h.max().as_nanos(), *samples.iter().max().unwrap());
        }

        #[test]
        fn resource_windows_never_overlap(
            arrivals in prop::collection::vec((0u64..1_000_000, 1u64..10_000), 1..100),
        ) {
            let mut r = Resource::new();
            let mut windows = Vec::new();
            let mut total = 0u64;
            for &(at, dur) in &arrivals {
                let w = r.acquire(SimTime::from_nanos(at), SimDuration::from_nanos(dur));
                prop_assert_eq!(w.end.since(w.start).as_nanos(), dur);
                prop_assert!(w.start >= SimTime::from_nanos(at));
                windows.push(w);
                total += dur;
            }
            prop_assert_eq!(r.busy_total().as_nanos(), total);
            for pair in windows.windows(2) {
                prop_assert!(pair[1].start >= pair[0].end, "service overlapped");
            }
        }

        #[test]
        fn pool_speedup_is_bounded(
            n in 1usize..8,
            jobs in prop::collection::vec(1u64..10_000, 1..80),
        ) {
            let mut single = Resource::new();
            let mut pool = ResourcePool::new(n);
            let mut single_end = SimTime::ZERO;
            let mut pool_end = SimTime::ZERO;
            for &j in &jobs {
                single_end = single.acquire(SimTime::ZERO, SimDuration::from_nanos(j)).end;
                pool_end = pool_end.max(pool.acquire(SimTime::ZERO, SimDuration::from_nanos(j)).end);
            }
            let total: u64 = jobs.iter().sum();
            prop_assert_eq!(single_end.as_nanos(), total);
            prop_assert!(pool_end <= single_end);
            prop_assert!(pool_end.as_nanos() >= total / n as u64);
        }

        #[test]
        fn queue_runner_conservation(
            qd in 1usize..16,
            services in prop::collection::vec(1u64..5_000, 1..80),
        ) {
            let mut server = Resource::new();
            let mut runner = QueueRunner::new(qd);
            let max_service = *services.iter().max().unwrap();
            for &s in &services {
                let t = runner.submit(|issue| {
                    server.acquire(issue, SimDuration::from_nanos(s)).end
                });
                prop_assert!(
                    t.latency().as_nanos() <= qd as u64 * max_service,
                    "latency exceeded QD x max service"
                );
            }
            let total: u64 = services.iter().sum();
            prop_assert_eq!(runner.drain().as_nanos(), total);
        }

        #[test]
        fn zipf_in_range_and_skewed(n in 10u64..5_000, theta in 0.05f64..0.99, seed in 0u64..1_000) {
            let zipf = ZipfianDistribution::new(n, theta);
            let mut rng = kvssd_sim::DeterministicRng::seed_from(seed);
            let draws = 2_000;
            let mut hot = 0u64;
            for _ in 0..draws {
                let r = zipf.sample(&mut rng);
                prop_assert!(r < n);
                if r < n.div_ceil(10) {
                    hot += 1;
                }
            }
            prop_assert!(hot * 100 >= draws * 8, "hot decile under uniform share: {hot}");
        }
    }
}
