//! Property tests: the block-SSD keeps exact mapping/validity accounting
//! through buffering, GC, TRIM, and write streams.
//!
//! The default (offline) suite generates operation sequences with the
//! in-repo [`kvssd_sim::DeterministicRng`]; the original proptest
//! versions — with shrinking — stay available behind the non-default
//! `proptest` feature (restore the `proptest` dev-dependency to enable).

use kvssd_sim::PrehashedSet;

use kvssd_block_ftl::{BlockFtlConfig, BlockSsd};
use kvssd_flash::{FlashTiming, Geometry};
use kvssd_sim::{DeterministicRng, SimTime};

#[derive(Debug, Clone, Copy)]
enum BlkOp {
    Write { cluster: u16, clusters: u8 },
    Read { cluster: u16, clusters: u8 },
    Trim { cluster: u16, clusters: u8 },
}

fn random_op(rng: &mut DeterministicRng) -> BlkOp {
    let cluster = rng.next_u64() as u16;
    let clusters = rng.between(1, 3) as u8;
    match rng.below(3) {
        0 => BlkOp::Write { cluster, clusters },
        1 => BlkOp::Read { cluster, clusters },
        _ => BlkOp::Trim { cluster, clusters },
    }
}

fn small_device() -> BlockSsd {
    BlockSsd::new(
        Geometry::small(),
        FlashTiming::pm983_like(),
        BlockFtlConfig::pm983_like(),
    )
}

/// Valid-byte accounting equals the reference set of written (and
/// not-trimmed) clusters under arbitrary mixes of I/O — through GC
/// relocations and buffer flushes.
#[test]
fn validity_matches_reference() {
    let mut rng = DeterministicRng::seed_from(0xB10C_0001);
    for _ in 0..48 {
        let mut dev = small_device();
        let total_clusters = (dev.capacity_bytes() / 4096) as u16;
        let mut model: PrehashedSet<u16> = PrehashedSet::default();
        let mut t = SimTime::ZERO;
        for _ in 0..rng.between(1, 150) {
            match random_op(&mut rng) {
                BlkOp::Write { cluster, clusters } => {
                    let c = cluster % total_clusters;
                    let n = (clusters as u16).min(total_clusters - c).max(1);
                    t = dev.write(t, c as u64 * 4096, n as u64 * 4096).unwrap();
                    for i in 0..n {
                        model.insert(c + i);
                    }
                }
                BlkOp::Read { cluster, clusters } => {
                    let c = cluster % total_clusters;
                    let n = (clusters as u16).min(total_clusters - c).max(1);
                    t = dev.read(t, c as u64 * 4096, n as u64 * 4096).unwrap();
                }
                BlkOp::Trim { cluster, clusters } => {
                    let c = cluster % total_clusters;
                    let n = (clusters as u16).min(total_clusters - c).max(1);
                    t = dev.trim(t, c as u64 * 4096, n as u64 * 4096).unwrap();
                    for i in 0..n {
                        model.remove(&(c + i));
                    }
                }
            }
            assert_eq!(
                dev.valid_bytes(),
                model.len() as u64 * 4096,
                "validity accounting diverged"
            );
        }
        // A final flush must not change logical validity.
        dev.flush(t);
        assert_eq!(dev.valid_bytes(), model.len() as u64 * 4096);
    }
}

/// Virtual time never runs backwards across any op mix, and completions
/// are causal with issues.
#[test]
fn completions_are_causal() {
    let mut rng = DeterministicRng::seed_from(0xB10C_0002);
    for _ in 0..48 {
        let mut dev = small_device();
        let total_clusters = (dev.capacity_bytes() / 4096) as u16;
        let mut t = SimTime::ZERO;
        for _ in 0..rng.between(1, 100) {
            let before = t;
            t = match random_op(&mut rng) {
                BlkOp::Write { cluster, clusters } => {
                    let c = (cluster % total_clusters) as u64;
                    let n = (clusters as u64).min(total_clusters as u64 - c).max(1);
                    dev.write(t, c * 4096, n * 4096).unwrap()
                }
                BlkOp::Read { cluster, clusters } => {
                    let c = (cluster % total_clusters) as u64;
                    let n = (clusters as u64).min(total_clusters as u64 - c).max(1);
                    dev.read(t, c * 4096, n * 4096).unwrap()
                }
                BlkOp::Trim { cluster, clusters } => {
                    let c = (cluster % total_clusters) as u64;
                    let n = (clusters as u64).min(total_clusters as u64 - c).max(1);
                    dev.trim(t, c * 4096, n * 4096).unwrap()
                }
            };
            assert!(t >= before, "completion preceded its issue");
        }
    }
}

/// Capacity overwrite churn: writing the whole logical space several
/// times over never wedges and never loses accounting.
#[test]
fn full_device_churn_survives() {
    for seed in [0u64, 97, 251, 499] {
        let mut dev = small_device();
        let clusters = dev.capacity_bytes() / 4096;
        let mut rng = DeterministicRng::seed_from(seed);
        let mut t = SimTime::ZERO;
        // First fill everything, then churn 1.5x capacity randomly.
        for c in 0..clusters {
            t = dev.write(t, c * 4096, 4096).unwrap();
        }
        for _ in 0..clusters * 3 / 2 {
            let c = rng.below(clusters);
            t = dev.write(t, c * 4096, 4096).unwrap();
        }
        assert_eq!(dev.valid_bytes(), clusters * 4096);
        assert!(dev.stats().gc_erases > 0, "churn must have forced GC");
    }
}

/// The original proptest suite (with shrinking), behind the non-default
/// `proptest` feature. Restore `proptest = "1"` under [dev-dependencies]
/// before enabling.
#[cfg(feature = "proptest")]
mod with_proptest {
    use kvssd_sim::PrehashedSet;

    use proptest::prelude::*;

    use kvssd_block_ftl::{BlockFtlConfig, BlockSsd};
    use kvssd_flash::{FlashTiming, Geometry};
    use kvssd_sim::SimTime;

    use super::BlkOp;

    fn op_strategy() -> impl Strategy<Value = BlkOp> {
        prop_oneof![
            (any::<u16>(), 1u8..4).prop_map(|(c, n)| BlkOp::Write {
                cluster: c,
                clusters: n
            }),
            (any::<u16>(), 1u8..4).prop_map(|(c, n)| BlkOp::Read {
                cluster: c,
                clusters: n
            }),
            (any::<u16>(), 1u8..4).prop_map(|(c, n)| BlkOp::Trim {
                cluster: c,
                clusters: n
            }),
        ]
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        #[test]
        fn validity_matches_reference(ops in prop::collection::vec(op_strategy(), 1..150)) {
            let mut dev = BlockSsd::new(
                Geometry::small(),
                FlashTiming::pm983_like(),
                BlockFtlConfig::pm983_like(),
            );
            let total_clusters = (dev.capacity_bytes() / 4096) as u16;
            let mut model: PrehashedSet<u16> = PrehashedSet::default();
            let mut t = SimTime::ZERO;
            for op in ops {
                match op {
                    BlkOp::Write { cluster, clusters } => {
                        let c = cluster % total_clusters;
                        let n = (clusters as u16).min(total_clusters - c).max(1);
                        t = dev
                            .write(t, c as u64 * 4096, n as u64 * 4096)
                            .unwrap();
                        for i in 0..n {
                            model.insert(c + i);
                        }
                    }
                    BlkOp::Read { cluster, clusters } => {
                        let c = cluster % total_clusters;
                        let n = (clusters as u16).min(total_clusters - c).max(1);
                        t = dev.read(t, c as u64 * 4096, n as u64 * 4096).unwrap();
                    }
                    BlkOp::Trim { cluster, clusters } => {
                        let c = cluster % total_clusters;
                        let n = (clusters as u16).min(total_clusters - c).max(1);
                        t = dev.trim(t, c as u64 * 4096, n as u64 * 4096).unwrap();
                        for i in 0..n {
                            model.remove(&(c + i));
                        }
                    }
                }
                prop_assert_eq!(
                    dev.valid_bytes(),
                    model.len() as u64 * 4096,
                    "validity accounting diverged"
                );
            }
            dev.flush(t);
            prop_assert_eq!(dev.valid_bytes(), model.len() as u64 * 4096);
        }

        #[test]
        fn completions_are_causal(ops in prop::collection::vec(op_strategy(), 1..100)) {
            let mut dev = BlockSsd::new(
                Geometry::small(),
                FlashTiming::pm983_like(),
                BlockFtlConfig::pm983_like(),
            );
            let total_clusters = (dev.capacity_bytes() / 4096) as u16;
            let mut t = SimTime::ZERO;
            for op in ops {
                let before = t;
                t = match op {
                    BlkOp::Write { cluster, clusters } => {
                        let c = (cluster % total_clusters) as u64;
                        let n = (clusters as u64).min(total_clusters as u64 - c).max(1);
                        dev.write(t, c * 4096, n * 4096).unwrap()
                    }
                    BlkOp::Read { cluster, clusters } => {
                        let c = (cluster % total_clusters) as u64;
                        let n = (clusters as u64).min(total_clusters as u64 - c).max(1);
                        dev.read(t, c * 4096, n * 4096).unwrap()
                    }
                    BlkOp::Trim { cluster, clusters } => {
                        let c = (cluster % total_clusters) as u64;
                        let n = (clusters as u64).min(total_clusters as u64 - c).max(1);
                        dev.trim(t, c * 4096, n * 4096).unwrap()
                    }
                };
                prop_assert!(t >= before, "completion preceded its issue");
            }
        }

        #[test]
        fn full_device_churn_survives(seed in 0u64..500) {
            let mut dev = BlockSsd::new(
                Geometry::small(),
                FlashTiming::pm983_like(),
                BlockFtlConfig::pm983_like(),
            );
            let clusters = dev.capacity_bytes() / 4096;
            let mut rng = kvssd_sim::DeterministicRng::seed_from(seed);
            let mut t = SimTime::ZERO;
            for c in 0..clusters {
                t = dev.write(t, c * 4096, 4096).unwrap();
            }
            for _ in 0..clusters * 3 / 2 {
                let c = rng.below(clusters);
                t = dev.write(t, c * 4096, 4096).unwrap();
            }
            prop_assert_eq!(dev.valid_bytes(), clusters * 4096);
            prop_assert!(dev.stats().gc_erases > 0, "churn must have forced GC");
        }
    }
}
