//! Property tests: the block-SSD keeps exact mapping/validity accounting
//! through buffering, GC, TRIM, and write streams.

use std::collections::HashSet;

use proptest::prelude::*;

use kvssd_block_ftl::{BlockFtlConfig, BlockSsd};
use kvssd_flash::{FlashTiming, Geometry};
use kvssd_sim::SimTime;

#[derive(Debug, Clone)]
enum BlkOp {
    Write { cluster: u16, clusters: u8 },
    Read { cluster: u16, clusters: u8 },
    Trim { cluster: u16, clusters: u8 },
}

fn op_strategy() -> impl Strategy<Value = BlkOp> {
    prop_oneof![
        (any::<u16>(), 1u8..4).prop_map(|(c, n)| BlkOp::Write { cluster: c, clusters: n }),
        (any::<u16>(), 1u8..4).prop_map(|(c, n)| BlkOp::Read { cluster: c, clusters: n }),
        (any::<u16>(), 1u8..4).prop_map(|(c, n)| BlkOp::Trim { cluster: c, clusters: n }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Valid-byte accounting equals the reference set of written (and
    /// not-trimmed) clusters under arbitrary mixes of I/O — through GC
    /// relocations and buffer flushes.
    #[test]
    fn validity_matches_reference(ops in prop::collection::vec(op_strategy(), 1..150)) {
        let mut dev = BlockSsd::new(
            Geometry::small(),
            FlashTiming::pm983_like(),
            BlockFtlConfig::pm983_like(),
        );
        let total_clusters = (dev.capacity_bytes() / 4096) as u16;
        let mut model: HashSet<u16> = HashSet::new();
        let mut t = SimTime::ZERO;
        for op in ops {
            match op {
                BlkOp::Write { cluster, clusters } => {
                    let c = cluster % total_clusters;
                    let n = (clusters as u16).min(total_clusters - c).max(1);
                    t = dev
                        .write(t, c as u64 * 4096, n as u64 * 4096)
                        .unwrap();
                    for i in 0..n {
                        model.insert(c + i);
                    }
                }
                BlkOp::Read { cluster, clusters } => {
                    let c = cluster % total_clusters;
                    let n = (clusters as u16).min(total_clusters - c).max(1);
                    t = dev.read(t, c as u64 * 4096, n as u64 * 4096).unwrap();
                }
                BlkOp::Trim { cluster, clusters } => {
                    let c = cluster % total_clusters;
                    let n = (clusters as u16).min(total_clusters - c).max(1);
                    t = dev.trim(t, c as u64 * 4096, n as u64 * 4096).unwrap();
                    for i in 0..n {
                        model.remove(&(c + i));
                    }
                }
            }
            prop_assert_eq!(
                dev.valid_bytes(),
                model.len() as u64 * 4096,
                "validity accounting diverged"
            );
        }
        // A final flush must not change logical validity.
        dev.flush(t);
        prop_assert_eq!(dev.valid_bytes(), model.len() as u64 * 4096);
    }

    /// Virtual time never runs backwards across any op mix, and
    /// completions are causal with issues.
    #[test]
    fn completions_are_causal(ops in prop::collection::vec(op_strategy(), 1..100)) {
        let mut dev = BlockSsd::new(
            Geometry::small(),
            FlashTiming::pm983_like(),
            BlockFtlConfig::pm983_like(),
        );
        let total_clusters = (dev.capacity_bytes() / 4096) as u16;
        let mut t = SimTime::ZERO;
        for op in ops {
            let before = t;
            t = match op {
                BlkOp::Write { cluster, clusters } => {
                    let c = (cluster % total_clusters) as u64;
                    let n = (clusters as u64).min(total_clusters as u64 - c).max(1);
                    dev.write(t, c * 4096, n * 4096).unwrap()
                }
                BlkOp::Read { cluster, clusters } => {
                    let c = (cluster % total_clusters) as u64;
                    let n = (clusters as u64).min(total_clusters as u64 - c).max(1);
                    dev.read(t, c * 4096, n * 4096).unwrap()
                }
                BlkOp::Trim { cluster, clusters } => {
                    let c = (cluster % total_clusters) as u64;
                    let n = (clusters as u64).min(total_clusters as u64 - c).max(1);
                    dev.trim(t, c * 4096, n * 4096).unwrap()
                }
            };
            prop_assert!(t >= before, "completion preceded its issue");
        }
    }

    /// Capacity overwrite churn: writing the whole logical space several
    /// times over never wedges and never loses accounting.
    #[test]
    fn full_device_churn_survives(seed in 0u64..500) {
        let mut dev = BlockSsd::new(
            Geometry::small(),
            FlashTiming::pm983_like(),
            BlockFtlConfig::pm983_like(),
        );
        let clusters = dev.capacity_bytes() / 4096;
        let mut rng = kvssd_sim::DeterministicRng::seed_from(seed);
        let mut t = SimTime::ZERO;
        // First fill everything, then churn 1.5x capacity randomly.
        for c in 0..clusters {
            t = dev.write(t, c * 4096, 4096).unwrap();
        }
        for _ in 0..clusters * 3 / 2 {
            let c = rng.below(clusters);
            t = dev.write(t, c * 4096, 4096).unwrap();
        }
        prop_assert_eq!(dev.valid_bytes(), clusters * 4096);
        prop_assert!(dev.stats().gc_erases > 0, "churn must have forced GC");
    }
}
