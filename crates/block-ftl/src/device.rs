//! The block-SSD device: NVMe link + page-mapped FTL over shared NAND.
//!
//! See the crate docs for the firmware policies modeled here. The
//! implementation keeps *exact* mapping/validity state (via
//! [`MappingTable`]) while timing falls out of the shared flash, link,
//! and buffer resources.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

use kvssd_flash::{BlockId, FlashDevice, FlashTiming, Geometry, PageAddr};
use kvssd_nvme::NvmeLink;
use kvssd_sim::{PrehashedMap, SimDuration, SimTime};

use crate::config::BlockFtlConfig;
use crate::mapping::{MappingTable, PhysLoc};

/// Host-visible I/O errors (contract violations by the host).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BlockIoError {
    /// Offset or length not sector-aligned.
    Unaligned {
        /// The offending byte offset.
        offset: u64,
        /// The offending byte length.
        len: u64,
    },
    /// Access past the end of the logical address space.
    OutOfRange {
        /// Requested end offset.
        end: u64,
        /// Logical capacity in bytes.
        capacity: u64,
    },
    /// Zero-length I/O.
    ZeroLength,
}

impl std::fmt::Display for BlockIoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BlockIoError::Unaligned { offset, len } => {
                write!(f, "unaligned access at offset {offset}, len {len}")
            }
            BlockIoError::OutOfRange { end, capacity } => {
                write!(f, "access ends at {end} past capacity {capacity}")
            }
            BlockIoError::ZeroLength => write!(f, "zero-length access"),
        }
    }
}

impl std::error::Error for BlockIoError {}

/// Device-level counters.
#[derive(Debug, Clone, Default)]
pub struct BlockSsdStats {
    /// Host write commands.
    pub host_writes: u64,
    /// Host read commands.
    pub host_reads: u64,
    /// Host bytes written.
    pub host_bytes_written: u64,
    /// Host bytes read.
    pub host_bytes_read: u64,
    /// Read-modify-write flash reads caused by sub-cluster writes.
    pub rmw_reads: u64,
    /// Clusters copied by garbage collection.
    pub gc_copied_clusters: u64,
    /// Blocks erased by garbage collection.
    pub gc_erases: u64,
    /// Synchronous (foreground) GC episodes host writes waited on.
    pub foreground_gc_events: u64,
    /// Total virtual time host writes spent stalled on buffer/GC.
    pub stall_time: SimDuration,
    /// Reads satisfied from the device read buffer (page already
    /// fetched by a neighboring cluster read).
    pub read_buffer_hits: u64,
    /// Reads satisfied from the volatile write buffer.
    pub write_buffer_hits: u64,
    /// Multi-plane stripe programs issued for sequential data.
    pub stripe_programs: u64,
    /// Clusters re-placed after an injected program failure.
    pub replaced_after_failure: u64,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum BlockState {
    Free,
    Open,
    Closed,
    Dead,
}

#[derive(Debug)]
struct Stream {
    /// Block(s) of the unit currently being filled. Sequential streams
    /// hold sibling-plane pairs for multi-plane stripes; random/GC
    /// streams hold one block per unit.
    blocks: Vec<BlockId>,
    next_page: u32,
    /// Clusters waiting for the current page(s): (lcn, arrival).
    pending: Vec<(u32, SimTime)>,
    first_arrival: SimTime,
    /// Partially filled units parked for round-robin striping: after
    /// each page programs, the stream moves to the next unit so
    /// consecutive pages land on different dies (the parallelism real
    /// FTL superblocks provide).
    parked: VecDeque<(Vec<BlockId>, u32)>,
}

impl Stream {
    fn empty() -> Self {
        Stream {
            blocks: Vec::new(),
            next_page: 0,
            pending: Vec::new(),
            first_arrival: SimTime::ZERO,
            parked: VecDeque::new(),
        }
    }
}

/// The simulated block-firmware SSD (see crate docs).
#[derive(Debug)]
pub struct BlockSsd {
    config: BlockFtlConfig,
    flash: FlashDevice,
    link: NvmeLink,
    map: MappingTable,
    state: Vec<BlockState>,
    /// Free (erased) blocks, per die-plane, for stripe-aware allocation.
    free: Vec<VecDeque<BlockId>>,
    seq: Stream,
    rand: Stream,
    gc: Stream,
    /// Known departure times of buffered clusters.
    buffer_leaves: BinaryHeap<Reverse<(SimTime, u32)>>,
    /// Buffered clusters whose page has not been programmed yet.
    buffer_unassigned: u32,
    /// lcn -> time its data leaves the volatile buffer. LCNs are
    /// low-entropy integers; the pre-hashed map's multiply spreads them.
    buffer_resident: PrehashedMap<u32, SimTime>,
    /// Recently fetched physical pages (FIFO read buffer).
    read_buffer: VecDeque<(BlockId, u32)>,
    /// End byte offset of the last host write (sequential detection).
    last_written_end: Option<u64>,
    gc_victim: Option<BlockId>,
    in_gc: bool,
    in_fg_gc: bool,
    pair_cursor: usize,
    logical_clusters: u64,
    stats: BlockSsdStats,
}

impl BlockSsd {
    /// Creates a device over fresh flash.
    pub fn new(geometry: Geometry, timing: FlashTiming, config: BlockFtlConfig) -> Self {
        Self::over(FlashDevice::new(geometry, timing), config)
    }

    /// Creates a device over an existing flash substrate (e.g. one with a
    /// fault plan installed). GC watermarks are clamped to the geometry
    /// so small test devices do not spend their lives in the GC band.
    pub fn over(flash: FlashDevice, mut config: BlockFtlConfig) -> Self {
        let g = *flash.geometry();
        let blocks = g.total_blocks();
        config.gc_soft_free_blocks = config.gc_soft_free_blocks.min((blocks / 8).max(3));
        config.gc_hard_free_blocks = config
            .gc_hard_free_blocks
            .min((blocks / 16).max(1))
            .min(config.gc_soft_free_blocks - 1);
        let cpp = config.clusters_per_page(g.page_bytes);
        let total_clusters = g.total_blocks() as u64 * g.pages_per_block as u64 * cpp as u64;
        let logical_clusters = total_clusters * (100 - config.overprovision_pct as u64) / 100;
        let mut free = vec![VecDeque::new(); (g.dies() * g.planes_per_die) as usize];
        for die in 0..g.dies() {
            for plane in 0..g.planes_per_die {
                for idx in 0..g.blocks_per_plane {
                    free[(die * g.planes_per_die + plane) as usize]
                        .push_back(g.block_at(die, plane, idx));
                }
            }
        }
        let map = MappingTable::new(logical_clusters, &g, cpp);
        BlockSsd {
            config,
            state: vec![BlockState::Free; g.total_blocks() as usize],
            free,
            seq: Stream::empty(),
            rand: Stream::empty(),
            gc: Stream::empty(),
            buffer_leaves: BinaryHeap::new(),
            buffer_unassigned: 0,
            buffer_resident: PrehashedMap::default(),
            read_buffer: VecDeque::new(),
            last_written_end: None,
            gc_victim: None,
            in_gc: false,
            in_fg_gc: false,
            pair_cursor: 0,
            logical_clusters,
            map,
            flash,
            link: NvmeLink::new(config.nvme),
            stats: BlockSsdStats::default(),
        }
    }

    /// Logical capacity in bytes (physical minus over-provisioning).
    pub fn capacity_bytes(&self) -> u64 {
        self.logical_clusters * self.config.cluster_bytes as u64
    }

    /// Device counters.
    pub fn stats(&self) -> &BlockSsdStats {
        &self.stats
    }

    /// The underlying flash (for die-utilization reporting).
    pub fn flash(&self) -> &FlashDevice {
        &self.flash
    }

    /// The FTL configuration.
    pub fn config(&self) -> &BlockFtlConfig {
        &self.config
    }

    /// Free (erased) blocks currently available.
    pub fn free_blocks(&self) -> u32 {
        self.free.iter().map(|q| q.len() as u32).sum()
    }

    /// Reads `len` bytes at byte offset `offset`. Returns completion time.
    pub fn read(&mut self, now: SimTime, offset: u64, len: u64) -> Result<SimTime, BlockIoError> {
        self.check_range(offset, len)?;
        let t = self.link.submit(now, 1, 0);
        let t = t + self.config.per_cmd_firmware;
        let mut finish = t;
        let clusters: Vec<_> = self.clusters_of(offset, len).collect();
        for (lcn, _, _) in clusters {
            let done = self.read_cluster(t, lcn);
            finish = finish.max(done);
        }
        self.stats.host_reads += 1;
        self.stats.host_bytes_read += len;
        Ok(self.link.complete(finish, len))
    }

    /// Writes `len` bytes at byte offset `offset`. Returns completion time
    /// (data durable in the device's protected write buffer, as on real
    /// enterprise SSDs with power-loss capacitors).
    pub fn write(&mut self, now: SimTime, offset: u64, len: u64) -> Result<SimTime, BlockIoError> {
        self.check_range(offset, len)?;
        let t = self.link.submit(now, 1, len);
        let mut t = t + self.config.per_cmd_firmware;
        // Timer-driven flush: stale partial pages from *any* stream are
        // programmed out (a real FTL's flush timer; here piggybacked on
        // host activity so an idle stream cannot hold a unit hostage).
        self.flush_stale(now);
        // Full-page-sized writes need no coalescing: the FTL programs
        // them directly at full stripe parallelism even at random
        // offsets. Smaller random writes pay the reorganization path.
        let sequential =
            self.is_sequential(offset, len) || len >= self.flash.geometry().page_bytes as u64;
        let clusters: Vec<_> = self.clusters_of(offset, len).collect();
        for &(lcn, _, bytes) in &clusters {
            t = self.write_cluster(t, lcn, bytes, sequential);
        }
        self.last_written_end = Some(offset + len);
        // Background GC band: steal die time without blocking the host.
        // Large writes consume many clusters at once, so the background
        // effort scales with the write size.
        if self.free_blocks() < self.config.gc_soft_free_blocks {
            let cpp = self
                .config
                .clusters_per_page(self.flash.geometry().page_bytes) as usize;
            for _ in 0..(1 + clusters.len() / cpp) {
                self.background_gc_step(t);
            }
        }
        self.stats.host_writes += 1;
        self.stats.host_bytes_written += len;
        Ok(self.link.complete(t, 0))
    }

    /// Deallocates (TRIMs) the given range; cluster-aligned sub-ranges are
    /// unmapped. Returns completion time.
    pub fn trim(&mut self, now: SimTime, offset: u64, len: u64) -> Result<SimTime, BlockIoError> {
        self.check_range(offset, len)?;
        let t = self.link.submit(now, 1, 0);
        let mut ops = 0u64;
        let clusters: Vec<_> = self.clusters_of(offset, len).collect();
        for (lcn, off_in, bytes) in clusters {
            if off_in == 0 && bytes == self.config.cluster_bytes as u64 {
                self.map.invalidate(lcn);
                ops += 1;
            }
        }
        let t = t + self.config.map_op * ops.max(1);
        Ok(self.link.complete(t, 0))
    }

    /// Forces all partially filled buffer pages to flash (end-of-phase
    /// barrier for experiments). Returns when the last program completes.
    pub fn flush(&mut self, now: SimTime) -> SimTime {
        let mut end = now;
        for which in [WhichStream::Seq, WhichStream::Rand, WhichStream::Gc] {
            if let Some(done) = self.program_stream(now, which, true) {
                end = end.max(done);
            }
        }
        end
    }

    /// Bytes of valid data currently mapped (for space accounting).
    pub fn valid_bytes(&self) -> u64 {
        self.map.total_valid() * self.config.cluster_bytes as u64
    }

    // ----- internals -------------------------------------------------

    fn check_range(&self, offset: u64, len: u64) -> Result<(), BlockIoError> {
        if len == 0 {
            return Err(BlockIoError::ZeroLength);
        }
        let s = self.config.sector_bytes as u64;
        if !offset.is_multiple_of(s) || !len.is_multiple_of(s) {
            return Err(BlockIoError::Unaligned { offset, len });
        }
        let cap = self.capacity_bytes();
        if offset + len > cap {
            return Err(BlockIoError::OutOfRange {
                end: offset + len,
                capacity: cap,
            });
        }
        Ok(())
    }

    /// Yields (lcn, offset-within-cluster, bytes) for a byte range.
    fn clusters_of(&self, offset: u64, len: u64) -> impl Iterator<Item = (u32, u64, u64)> {
        let cb = self.config.cluster_bytes as u64;
        let first = offset / cb;
        let last = (offset + len - 1) / cb;
        (first..=last).map(move |c| {
            let start = (offset).max(c * cb);
            let end = (offset + len).min((c + 1) * cb);
            (c as u32, start - c * cb, end - start)
        })
    }

    fn is_sequential(&self, offset: u64, _len: u64) -> bool {
        let cb = self.config.cluster_bytes as u64;
        // Sequential = byte-contiguous (or nearly so) with the previous
        // write. Random writes of any size go through the reorganizing
        // random stream — the "block-SSD FTL ... hold[s] data in buffer
        // much longer" behavior the paper infers (Sec. IV).
        match self.last_written_end {
            Some(end) => offset >= end && offset - end < cb,
            None => offset == 0,
        }
    }

    fn read_cluster(&mut self, t: SimTime, lcn: u32) -> SimTime {
        let t = t + self.config.map_op;
        self.drain_buffer(t);
        // Volatile write-buffer hit: data not yet drained to flash.
        if self.buffer_resident.contains_key(&lcn) {
            self.stats.write_buffer_hits += 1;
            return t + SimDuration::from_micros(1);
        }
        let Some(loc) = self.map.lookup(lcn) else {
            // Unmapped: return zeros straight from the controller.
            return t;
        };
        // Mechanical buffer check: a cluster mapped to a page that has
        // not reached flash yet is still in the volatile buffer (the
        // residency map can be clobbered by a stale overwrite's leave).
        if self.flash.written_pages(loc.block) <= loc.page {
            self.stats.write_buffer_hits += 1;
            return t + SimDuration::from_micros(1);
        }
        let page = (loc.block, loc.page);
        if self.read_buffer.contains(&page) {
            self.stats.read_buffer_hits += 1;
            return t + SimDuration::from_micros(1);
        }
        let addr = PageAddr {
            block: loc.block,
            page: loc.page,
        };
        let done = self
            .flash
            .read_page(t, addr, self.config.cluster_bytes as u64)
            .expect("FTL mapped cluster must be readable");
        self.read_buffer.push_back(page);
        if self.read_buffer.len() > self.config.read_buffer_pages as usize {
            self.read_buffer.pop_front();
        }
        done
    }

    fn write_cluster(&mut self, t: SimTime, lcn: u32, bytes: u64, sequential: bool) -> SimTime {
        let mut t = t + self.config.map_op;
        // Sub-cluster writes of mapped data pay a read-modify-write.
        if bytes < self.config.cluster_bytes as u64 && self.map.lookup(lcn).is_some() {
            let in_buffer = self.buffer_resident.contains_key(&lcn);
            if !in_buffer {
                self.stats.rmw_reads += 1;
                t = self.read_cluster(t, lcn);
            }
        }
        // Buffer admission: wait for a slot when the buffer is full.
        self.drain_buffer(t);
        let capacity = self.config.write_buffer_clusters;
        if self.occupancy() >= capacity {
            let stall_until = match self.buffer_leaves.pop() {
                Some(Reverse((leave, gone))) => {
                    self.buffer_resident.remove(&gone);
                    leave
                }
                None => {
                    // Entire buffer is pending pages: force a flush.
                    self.program_stream(t, WhichStream::Rand, true)
                        .or_else(|| self.program_stream(t, WhichStream::Seq, true))
                        .unwrap_or(t)
                }
            };
            if stall_until > t {
                self.stats.stall_time += stall_until.since(t);
                t = stall_until;
            }
        }
        // Admit into the chosen stream and assign its physical slot now.
        let which = if sequential {
            WhichStream::Seq
        } else {
            WhichStream::Rand
        };
        self.admit(t, lcn, which);
        // DRAM copy of the cluster into the buffer.
        t + SimDuration::from_micros(1)
    }

    fn occupancy(&self) -> u32 {
        self.buffer_leaves.len() as u32 + self.buffer_unassigned
    }

    fn drain_buffer(&mut self, now: SimTime) {
        while let Some(&Reverse((leave, lcn))) = self.buffer_leaves.peek() {
            if leave <= now {
                self.buffer_leaves.pop();
                if self.buffer_resident.get(&lcn) == Some(&leave) {
                    self.buffer_resident.remove(&lcn);
                }
            } else {
                break;
            }
        }
    }

    fn admit(&mut self, now: SimTime, lcn: u32, which: WhichStream) {
        self.ensure_stream_open(now, which);
        let cpp = self
            .config
            .clusters_per_page(self.flash.geometry().page_bytes) as usize;
        let (stream, target_pending) = match which {
            WhichStream::Seq => {
                let n = self.seq.blocks.len().max(1);
                (&mut self.seq, cpp * n)
            }
            WhichStream::Rand => (&mut self.rand, cpp),
            WhichStream::Gc => (&mut self.gc, cpp),
        };
        if stream.pending.is_empty() {
            stream.first_arrival = now;
        }
        // Assign the physical slot immediately so the mapping (and GC
        // validity accounting) is always current.
        let idx = stream.pending.len();
        let block = stream.blocks[idx / cpp];
        let loc = PhysLoc {
            block,
            page: stream.next_page,
            slot: (idx % cpp) as u32,
        };
        stream.pending.push((lcn, now));
        self.map.update(lcn, loc);
        self.buffer_unassigned += 1;
        self.buffer_resident
            .insert(lcn, SimTime::from_nanos(u64::MAX));
        let full = stream.pending.len() >= target_pending;
        let first = stream.first_arrival;
        let timed_out = now.saturating_since(first) >= self.config.partial_flush_timeout;
        if full || timed_out {
            self.program_stream(now, which, !full);
        }
    }

    /// How many units a stream stripes across. The open set is budgeted
    /// against the over-provisioning margin: partially filled open
    /// blocks are unusable capacity, and a tiny device that pins its
    /// whole OP margin in open stripes cannot absorb overwrite churn.
    fn unit_target(&self, which: WhichStream) -> usize {
        let g = self.flash.geometry();
        let budget_blocks =
            (g.total_blocks() as usize * self.config.overprovision_pct as usize / 100 / 4).max(1);
        match which {
            WhichStream::Seq => (g.dies() as usize).min((budget_blocks / 2).max(1)),
            // Random data is held and reorganized before programming;
            // the effective program parallelism is roughly halved.
            WhichStream::Rand => (g.dies() as usize / 2).max(1).min(budget_blocks),
            WhichStream::Gc => 1,
        }
    }

    /// Opens (allocates or rotates units for) a stream if needed.
    fn ensure_stream_open(&mut self, now: SimTime, which: WhichStream) {
        let g = *self.flash.geometry();
        let want_pair = matches!(which, WhichStream::Seq) && g.planes_per_die >= 2;
        let need_open = {
            let s = self.stream(which);
            s.blocks.is_empty() || s.next_page >= g.pages_per_block
        };
        if !need_open {
            return;
        }
        // Close out a fully written unit.
        let old: Vec<BlockId> = self.stream(which).blocks.clone();
        if self.stream(which).next_page >= g.pages_per_block {
            for b in old {
                if self.state[b.0 as usize] == BlockState::Open {
                    self.state[b.0 as usize] = BlockState::Closed;
                }
            }
        }
        // Grow the striped set up to its target while blocks are
        // plentiful; otherwise rotate to the next parked unit; allocate
        // fresh only when nothing is parked.
        let target = self.unit_target(which);
        let grow = self.stream(which).parked.len() < target.saturating_sub(1)
            && self.free_blocks() > self.config.gc_soft_free_blocks;
        fn fresh_unit(dev: &mut BlockSsd, now: SimTime, want_pair: bool) -> Option<Vec<BlockId>> {
            if want_pair {
                if let Some(pair) = dev.alloc_pair(now) {
                    return Some(vec![pair.0, pair.1]);
                }
            }
            dev.alloc_block(now).map(|b| vec![b])
        }
        let unit = if grow {
            fresh_unit(self, now, want_pair)
        } else {
            None
        };
        let (blocks, next_page) = match unit {
            Some(blocks) => {
                for &b in &blocks {
                    self.state[b.0 as usize] = BlockState::Open;
                }
                (blocks, 0)
            }
            None => match self.stream_mut(which).parked.pop_front() {
                Some(parked) => parked,
                None => match fresh_unit(self, now, want_pair) {
                    Some(blocks) => {
                        for &b in &blocks {
                            self.state[b.0 as usize] = BlockState::Open;
                        }
                        (blocks, 0)
                    }
                    None => {
                        // Last resort: steal an open unit from another
                        // stream (after a fresh sequential fill, all the
                        // free page slack sits in the filler's open or
                        // parked stripes). Parked units first, then idle
                        // current units (no pending data).
                        let others = [WhichStream::Seq, WhichStream::Rand, WhichStream::Gc];
                        // Desperation flush: push other streams' partial
                        // pages out so their units become reclaimable.
                        for w in others.into_iter().filter(|&w| w != which) {
                            if !self.stream(w).pending.is_empty() {
                                self.program_stream(now, w, true);
                            }
                        }
                        let mut stolen = others
                            .into_iter()
                            .filter(|&w| w != which)
                            .find_map(|w| self.stream_mut(w).parked.pop_front());
                        if stolen.is_none() {
                            let ppb = g.pages_per_block;
                            for w in others.into_iter().filter(|&w| w != which) {
                                let s = self.stream_mut(w);
                                if !s.blocks.is_empty() && s.pending.is_empty() && s.next_page < ppb
                                {
                                    let unit = (std::mem::take(&mut s.blocks), s.next_page);
                                    s.next_page = 0;
                                    stolen = Some(unit);
                                    break;
                                }
                            }
                        }
                        stolen.unwrap_or_else(|| {
                            panic!(
                                "no block for {which:?} stream: free={}, seq=({:?},np{},p{},pk{}) rand=({:?},np{},p{},pk{}) gc=({:?},np{},p{},pk{})",
                                self.free_blocks(),
                                self.seq.blocks, self.seq.next_page, self.seq.pending.len(), self.seq.parked.len(),
                                self.rand.blocks, self.rand.next_page, self.rand.pending.len(), self.rand.parked.len(),
                                self.gc.blocks, self.gc.next_page, self.gc.pending.len(), self.gc.parked.len(),
                            )
                        })
                    }
                },
            },
        };
        let s = self.stream_mut(which);
        s.blocks = blocks;
        s.next_page = next_page;
        debug_assert!(s.pending.is_empty());
    }

    fn stream(&self, which: WhichStream) -> &Stream {
        match which {
            WhichStream::Seq => &self.seq,
            WhichStream::Rand => &self.rand,
            WhichStream::Gc => &self.gc,
        }
    }

    fn stream_mut(&mut self, which: WhichStream) -> &mut Stream {
        match which {
            WhichStream::Seq => &mut self.seq,
            WhichStream::Rand => &mut self.rand,
            WhichStream::Gc => &mut self.gc,
        }
    }

    /// Programs any stream's pending page whose oldest cluster has been
    /// waiting longer than the partial-flush timeout.
    fn flush_stale(&mut self, now: SimTime) {
        for which in [WhichStream::Seq, WhichStream::Rand, WhichStream::Gc] {
            let stale = {
                let s = self.stream(which);
                !s.pending.is_empty()
                    && now.saturating_since(s.first_arrival) >= self.config.partial_flush_timeout
            };
            if stale {
                self.program_stream(now, which, true);
            }
        }
    }

    /// Programs the current page(s) of a stream. Returns the program
    /// completion time, or `None` if there was nothing pending.
    ///
    /// Random pages honor the coalescing hold; sequential and GC pages
    /// program immediately (sequential as multi-plane stripes when the
    /// stream holds a sibling-plane pair).
    fn program_stream(
        &mut self,
        now: SimTime,
        which: WhichStream,
        partial: bool,
    ) -> Option<SimTime> {
        let cpp = self
            .config
            .clusters_per_page(self.flash.geometry().page_bytes) as usize;
        let (pending, blocks, next_page, first_arrival) = {
            let s = self.stream_mut(which);
            if s.pending.is_empty() {
                return None;
            }
            let pending = std::mem::take(&mut s.pending);
            let out = (pending, s.blocks.clone(), s.next_page, s.first_arrival);
            s.next_page += 1;
            out
        };
        let _ = partial;
        let start = match which {
            WhichStream::Rand => now.max(first_arrival + self.config.coalesce_hold),
            _ => now,
        };
        let page_bytes = self.flash.geometry().page_bytes as u64;
        let results = if blocks.len() >= 2 && pending.len() > cpp {
            // Multi-plane stripe across the pair.
            let addrs: Vec<PageAddr> = blocks
                .iter()
                .take(pending.len().div_ceil(cpp))
                .map(|&b| PageAddr {
                    block: b,
                    page: next_page,
                })
                .collect();
            self.stats.stripe_programs += 1;
            let rs = self
                .flash
                .program_multiplane(start, &addrs, page_bytes)
                .expect("stripe program on open pair");
            // Pair blocks advance in lockstep; program any skipped block
            // too so next_page stays aligned.
            let mut rs = rs;
            for &b in blocks.iter().skip(addrs.len()) {
                let r = self
                    .flash
                    .program_page(
                        start,
                        PageAddr {
                            block: b,
                            page: next_page,
                        },
                        0,
                    )
                    .expect("pad program on open pair");
                rs.push(r);
            }
            rs
        } else {
            let mut rs = Vec::new();
            for (i, &b) in blocks.iter().enumerate() {
                let has_data = i * cpp < pending.len();
                let bytes = if has_data { page_bytes } else { 0 };
                let r = self
                    .flash
                    .program_page(
                        start,
                        PageAddr {
                            block: b,
                            page: next_page,
                        },
                        bytes,
                    )
                    .expect("program on open block");
                rs.push(r);
            }
            rs
        };
        let done = results.iter().map(|r| r.done).max().expect("nonempty");
        // Settle buffer accounting and handle injected failures.
        let mut lost: Vec<u32> = Vec::new();
        for (i, &(lcn, _)) in pending.iter().enumerate() {
            let block = blocks[i / cpp];
            let failed = results
                .iter()
                .zip(&blocks)
                .find(|(_, &b)| b == block)
                .map(|(r, _)| r.failed)
                .unwrap_or(false);
            self.buffer_unassigned -= 1;
            if failed {
                // Data still in buffer; it must be re-placed.
                if let Some(cur) = self.map.lookup(lcn) {
                    if cur.block == block && cur.page == next_page {
                        lost.push(lcn);
                    }
                }
                continue;
            }
            // Leaves the buffer when the program completes (only if the
            // mapping still points here — it may have been overwritten
            // while pending).
            self.buffer_leaves.push(Reverse((done, lcn)));
            self.buffer_resident.insert(lcn, done);
        }
        for (r, &b) in results.iter().zip(&blocks) {
            if r.failed {
                lost.extend(self.retire_block(b));
            }
        }
        if !lost.is_empty() {
            self.stats.replaced_after_failure += lost.len() as u64;
            for lcn in lost {
                self.map.invalidate(lcn);
                self.admit(done, lcn, WhichStream::Rand);
            }
        }
        // Rotate: park the unit (or close it when full) so the next page
        // lands on a different die.
        let ppb = self.flash.geometry().pages_per_block;
        let s = self.stream_mut(which);
        if !s.blocks.is_empty() {
            let unit = std::mem::take(&mut s.blocks);
            let np = s.next_page;
            s.next_page = 0;
            if np < ppb {
                s.parked.push_back((unit, np));
            } else {
                for b in unit {
                    if self.state[b.0 as usize] == BlockState::Open {
                        self.state[b.0 as usize] = BlockState::Closed;
                    }
                }
            }
        }
        Some(done)
    }

    fn retire_block(&mut self, b: BlockId) -> Vec<u32> {
        self.state[b.0 as usize] = BlockState::Dead;
        // Pull it out of every stream so nothing programs it again, and
        // re-place any clusters still pending on the torn-down unit
        // (their slots were assigned but never programmed).
        let mut replace: Vec<u32> = Vec::new();
        for which in [WhichStream::Seq, WhichStream::Rand, WhichStream::Gc] {
            let s = self.stream_mut(which);
            let in_current = s.blocks.contains(&b);
            if in_current {
                for &blk in &s.blocks.clone() {
                    if self.state[blk.0 as usize] == BlockState::Open {
                        self.state[blk.0 as usize] = BlockState::Closed;
                    }
                }
                let s = self.stream_mut(which);
                s.blocks.clear();
                s.next_page = 0;
                for (lcn, _) in std::mem::take(&mut s.pending) {
                    self.buffer_unassigned -= 1;
                    replace.push(lcn);
                }
            } else {
                // Parked units never hold pending clusters; drop the
                // dead block's unit from the rotation if present.
                let s = self.stream_mut(which);
                s.parked.retain(|(unit, _)| !unit.contains(&b));
            }
        }
        for &lcn in &replace {
            self.map.invalidate(lcn);
        }
        // The caller re-admits these (their data is still buffered).
        replace
    }

    /// Pops a free block. Host streams always leave one block in
    /// reserve for the collector — handing GC's working space to a data
    /// stream would deadlock relocation the moment the device fills.
    fn alloc_block(&mut self, now: SimTime) -> Option<BlockId> {
        if !self.in_gc && self.free_blocks() <= self.config.gc_hard_free_blocks {
            self.foreground_gc(now);
        }
        let reserve = if self.in_gc { 0 } else { 1 };
        if self.free_blocks() <= reserve && !self.in_gc {
            // One more synchronous attempt before giving up.
            self.foreground_gc(now);
        }
        if self.free_blocks() <= reserve {
            return None;
        }
        // Round-robin over die-planes for parallelism.
        for i in 0..self.free.len() {
            let q = (self.pair_cursor * 2 + i) % self.free.len();
            if let Some(b) = self.free[q].pop_front() {
                self.pair_cursor = (self.pair_cursor + 1) % self.free.len().max(1);
                return Some(b);
            }
        }
        None
    }

    fn alloc_pair(&mut self, now: SimTime) -> Option<(BlockId, BlockId)> {
        if !self.in_gc && self.free_blocks() <= self.config.gc_hard_free_blocks {
            self.foreground_gc(now);
        }
        let g = *self.flash.geometry();
        let planes = g.planes_per_die as usize;
        let dies = g.dies() as usize;
        let dpc = g.dies_per_channel as usize;
        let chans = g.channels as usize;
        // Round-robin across dies channel-major, so consecutive stripes
        // land on different channels (transfer parallelism) as well as
        // different dies (program parallelism).
        for i in 0..dies {
            let c = self.pair_cursor + i;
            let die = (c % chans) * dpc + (c / chans) % dpc;
            let p0 = die * planes;
            let p1 = die * planes + 1;
            if !self.free[p0].is_empty() && !self.free[p1].is_empty() {
                let a = self.free[p0].pop_front().expect("checked");
                let b = self.free[p1].pop_front().expect("checked");
                self.pair_cursor = (self.pair_cursor + i + 1) % dies;
                return Some((a, b));
            }
        }
        None
    }

    /// One background GC increment: copy a few clusters off the current
    /// victim. Runs on die time but does not extend host latency.
    fn background_gc_step(&mut self, now: SimTime) {
        for _ in 0..self.config.gc_copies_per_write {
            if !self.gc_copy_one(now) {
                break;
            }
        }
    }

    /// Synchronous GC until the hard watermark clears, or until two
    /// victim cycles make no progress (nothing reclaimable — e.g. blocks
    /// retired by faults shrank the pool).
    fn foreground_gc(&mut self, now: SimTime) {
        self.stats.foreground_gc_events += 1;
        self.in_gc = true;
        let mut t = now;
        self.in_fg_gc = true;
        let mut futile = 0u32;
        // Reclaim with hysteresis so back-to-back writes do not re-enter
        // foreground GC immediately.
        let target = self.config.gc_hard_free_blocks + 2;
        while self.free_blocks() <= target && futile < 3 {
            let before = self.free_blocks();
            if self.gc_victim.is_none() && !self.select_victim(1) {
                break;
            }
            let v = self.gc_victim.expect("victim selected");
            let mut guard = 0u32;
            while self.map.valid_in(v) > 0 {
                if !self.gc_copy_one(t) {
                    break;
                }
                guard += 1;
                assert!(guard < 1_000_000, "GC failed to drain block b{}", v.0);
            }
            t = self.finish_victim(t);
            if self.free_blocks() > before {
                futile = 0;
            } else {
                futile += 1;
            }
        }
        self.in_gc = false;
        self.in_fg_gc = false;
        // The host write that triggered us resumes after the reclaim.
        if t > now {
            self.stats.stall_time += t.since(now);
        }
    }

    /// Copies one live cluster off the current victim (selecting one if
    /// needed). Returns false when no victim work exists.
    fn gc_copy_one(&mut self, now: SimTime) -> bool {
        // Guard against reentrancy: the copy's own block allocation must
        // not trigger a nested foreground-GC episode.
        let was = self.in_gc;
        self.in_gc = true;
        let r = self.gc_copy_one_inner(now);
        self.in_gc = was;
        r
    }

    fn gc_copy_one_inner(&mut self, now: SimTime) -> bool {
        let min_gain = if self.in_fg_gc {
            1
        } else {
            self.config
                .clusters_per_page(self.flash.geometry().page_bytes)
        };
        if self.gc_victim.is_none() && !self.select_victim(min_gain) {
            return false;
        }
        let v = self.gc_victim.expect("victim selected");
        let live = self.map.live_clusters(v);
        match live.first() {
            Some(&(lcn, loc)) => {
                let addr = PageAddr {
                    block: loc.block,
                    page: loc.page,
                };
                let _ = self
                    .flash
                    .read_page(now, addr, self.config.cluster_bytes as u64)
                    .expect("GC read of live cluster");
                self.admit(now, lcn, WhichStream::Gc);
                self.stats.gc_copied_clusters += 1;
                true
            }
            None => {
                self.finish_victim(now);
                false
            }
        }
    }

    /// Erases the drained victim and returns it to the free pool.
    fn finish_victim(&mut self, now: SimTime) -> SimTime {
        let Some(v) = self.gc_victim.take() else {
            return now;
        };
        // A victim handle that went stale (block erased and reused while
        // the handle lingered) must never take down a live block.
        if self.state[v.0 as usize] != BlockState::Closed {
            return now;
        }
        if self.map.valid_in(v) > 0 {
            // Still has live data (copies pending elsewhere) — put back.
            self.gc_victim = Some(v);
            return now;
        }
        self.map.on_erase(v);
        let r = self.flash.erase_block(now, v).expect("erase closed victim");
        self.stats.gc_erases += 1;
        if r.failed {
            self.state[v.0 as usize] = BlockState::Dead;
            return r.done;
        }
        self.state[v.0 as usize] = BlockState::Free;
        let g = self.flash.geometry();
        let dp = (g.die_of(v) * g.planes_per_die + g.plane_of(v)) as usize;
        self.free[dp].push_back(v);
        r.done
    }

    /// Greedy victim selection: the closed block with the fewest valid
    /// clusters, and only when erasing it would actually gain space (at
    /// least a page's worth of dead clusters) — copying fully valid
    /// blocks around is pure write amplification.
    fn select_victim(&mut self, min_gain: u32) -> bool {
        let cpp = self
            .config
            .clusters_per_page(self.flash.geometry().page_bytes);
        let slots = self.flash.geometry().pages_per_block * cpp;
        let mut best: Option<(u32, BlockId)> = None;
        for b in 0..self.state.len() {
            if self.state[b] != BlockState::Closed {
                continue;
            }
            let id = BlockId(b as u32);
            let v = self.map.valid_in(id);
            let written = self.flash.written_pages(id) * cpp;
            if written.min(slots).saturating_sub(v) < min_gain {
                continue; // not enough reclaimable space
            }
            // Greedy on valid count; ties go to the least-worn block (a
            // light static wear-leveling policy).
            let wear = self.flash.erase_count(id);
            if best.is_none_or(|(bv, bid): (u32, BlockId)| {
                v < bv || (v == bv && wear < self.flash.erase_count(bid))
            }) {
                best = Some((v, id));
            }
        }
        match best {
            Some((_, id)) => {
                self.gc_victim = Some(id);
                true
            }
            None => false,
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum WhichStream {
    Seq,
    Rand,
    Gc,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ssd() -> BlockSsd {
        BlockSsd::new(
            Geometry::small(),
            FlashTiming::pm983_like(),
            BlockFtlConfig::pm983_like(),
        )
    }

    fn bigger() -> BlockSsd {
        let g = Geometry {
            channels: 2,
            dies_per_channel: 2,
            planes_per_die: 2,
            blocks_per_plane: 16,
            pages_per_block: 16,
            page_bytes: 32 * 1024,
        };
        let mut cfg = BlockFtlConfig::pm983_like();
        cfg.gc_soft_free_blocks = 12;
        cfg.gc_hard_free_blocks = 4;
        BlockSsd::new(g, FlashTiming::pm983_like(), cfg)
    }

    #[test]
    fn write_then_read_round_trips() {
        let mut d = ssd();
        let w = d.write(SimTime::ZERO, 0, 4096).unwrap();
        let r = d.read(w, 0, 4096).unwrap();
        assert!(r > w);
        assert_eq!(d.stats().host_writes, 1);
        assert_eq!(d.stats().host_reads, 1);
    }

    #[test]
    fn writes_complete_in_buffer_quickly() {
        let mut d = ssd();
        let w = d.write(SimTime::ZERO, 0, 4096).unwrap();
        // Buffered completion: far less than a page program (~700 us).
        assert!(
            w.since(SimTime::ZERO) < SimDuration::from_micros(100),
            "buffered write took {}",
            w.since(SimTime::ZERO)
        );
    }

    #[test]
    fn read_of_unwritten_range_returns_fast_zeros() {
        let mut d = ssd();
        let r = d.read(SimTime::ZERO, 1 << 20, 4096).unwrap();
        assert!(r.since(SimTime::ZERO) < SimDuration::from_micros(50));
    }

    #[test]
    fn buffered_data_is_readable_before_programming() {
        let mut d = ssd();
        let w = d.write(SimTime::ZERO, 0, 4096).unwrap();
        let r = d.read(w, 0, 4096).unwrap();
        assert!(r.since(w) < SimDuration::from_micros(50));
        assert!(d.stats().write_buffer_hits >= 1);
    }

    #[test]
    fn unaligned_io_rejected() {
        let mut d = ssd();
        assert!(matches!(
            d.write(SimTime::ZERO, 3, 512),
            Err(BlockIoError::Unaligned { .. })
        ));
        assert!(matches!(
            d.read(SimTime::ZERO, 0, 100),
            Err(BlockIoError::Unaligned { .. })
        ));
        assert!(matches!(
            d.read(SimTime::ZERO, 0, 0),
            Err(BlockIoError::ZeroLength)
        ));
    }

    #[test]
    fn out_of_range_rejected() {
        let mut d = ssd();
        let cap = d.capacity_bytes();
        assert!(matches!(
            d.write(SimTime::ZERO, cap - 512, 1024),
            Err(BlockIoError::OutOfRange { .. })
        ));
    }

    #[test]
    fn sub_cluster_write_of_mapped_data_pays_rmw() {
        let mut d = ssd();
        // Map the cluster with a full write, flush it to flash, drain
        // the buffer residency by advancing far in time.
        let w = d.write(SimTime::ZERO, 0, 4096).unwrap();
        let f = d.flush(w);
        let far = f + SimDuration::from_secs(1);
        d.drain_buffer(far);
        let before = d.stats().rmw_reads;
        d.write(far, 0, 512).unwrap();
        assert_eq!(d.stats().rmw_reads, before + 1);
    }

    #[test]
    fn sequential_fill_uses_stripes() {
        let mut d = ssd();
        let mut t = SimTime::ZERO;
        // 64 sequential clusters = several stripes.
        for i in 0..64u64 {
            t = d.write(t, i * 4096, 4096).unwrap();
        }
        d.flush(t);
        assert!(d.stats().stripe_programs > 0);
    }

    #[test]
    fn sequential_reads_hit_read_buffer() {
        let mut d = bigger();
        let n = 256u64;
        let mut t = SimTime::ZERO;
        for i in 0..n {
            t = d.write(t, i * 4096, 4096).unwrap();
        }
        t = d.flush(t) + SimDuration::from_secs(1);
        d.drain_buffer(t);
        d.buffer_resident.clear();
        let hits_at_start = d.stats().read_buffer_hits;
        for i in 0..n {
            t = d.read(t, i * 4096, 4096).unwrap();
        }
        let seq_hits = d.stats().read_buffer_hits - hits_at_start;
        // Eight 4 KiB clusters share a 32 KiB page: ~7/8 of sequential
        // reads should be buffer hits.
        assert!(seq_hits >= n * 3 / 4, "only {seq_hits} read-buffer hits");
        // Scattered reads across many pages mostly miss.
        let hits_mid = d.stats().read_buffer_hits;
        let mut scattered = 0u64;
        let mut idx = 5u64;
        for _ in 0..n / 2 {
            idx = idx.wrapping_mul(6364136223846793005).wrapping_add(7) % n;
            t = d.read(t, idx * 4096, 4096).unwrap();
            scattered += 1;
        }
        let rand_hits = d.stats().read_buffer_hits - hits_mid;
        assert!(
            rand_hits * 2 < scattered,
            "random reads should mostly miss ({rand_hits}/{scattered})"
        );
    }

    #[test]
    fn overwrites_reclaim_space_via_gc() {
        let mut d = bigger();
        let cap = d.capacity_bytes();
        let mut t = SimTime::ZERO;
        // Fill logical space twice over with 4 KiB writes.
        for round in 0..3u64 {
            for off in (0..cap).step_by(4096) {
                t = d.write(t, off, 4096).unwrap();
            }
            let _ = round;
        }
        assert!(d.stats().gc_erases > 0, "GC never ran");
        assert_eq!(d.valid_bytes(), cap);
    }

    #[test]
    fn random_overwrites_trigger_foreground_gc_copies() {
        let mut d = bigger();
        let cap = d.capacity_bytes();
        let clusters = cap / 4096;
        let mut t = SimTime::ZERO;
        for off in (0..cap).step_by(4096) {
            t = d.write(t, off, 4096).unwrap();
        }
        // Pseudo-random overwrites: stride pattern leaves every block
        // partially valid, forcing copy work.
        let mut idx = 1u64;
        for _ in 0..clusters * 2 {
            idx = idx.wrapping_mul(2_862_933_555_777_941_757).wrapping_add(3) % clusters;
            t = d.write(t, idx * 4096, 4096).unwrap();
        }
        assert!(
            d.stats().gc_copied_clusters > 0,
            "random overwrites must force GC copies"
        );
    }

    #[test]
    fn trim_invalidates_and_makes_gc_cheap() {
        let mut d = bigger();
        let cap = d.capacity_bytes();
        let mut t = SimTime::ZERO;
        for off in (0..cap).step_by(4096) {
            t = d.write(t, off, 4096).unwrap();
        }
        t = d.flush(t);
        let valid_before = d.valid_bytes();
        t = d.trim(t, 0, cap / 2).unwrap();
        assert!(d.valid_bytes() < valid_before);
        // Rewriting the trimmed half should cause few or no GC copies:
        // victims are fully invalid.
        let copies_before = d.stats().gc_copied_clusters;
        for off in (0..cap / 2).step_by(4096) {
            t = d.write(t, off, 4096).unwrap();
        }
        let copies = d.stats().gc_copied_clusters - copies_before;
        assert!(
            copies < (cap / 2 / 4096) / 4,
            "trimmed rewrite caused {copies} copies"
        );
    }

    #[test]
    fn capacity_reflects_overprovisioning() {
        let d = ssd();
        let raw = d.flash().geometry().capacity_bytes();
        assert!(d.capacity_bytes() < raw);
        assert!(d.capacity_bytes() > raw / 2);
    }

    #[test]
    fn flush_programs_partial_pages() {
        let mut d = ssd();
        let w = d.write(SimTime::ZERO, 0, 4096).unwrap();
        let f = d.flush(w);
        assert!(f > w);
        assert!(d.flash().stats().programs > 0);
    }

    #[test]
    fn buffer_pressure_stalls_writes() {
        let mut d = ssd();
        // Slam many random 4 KiB writes at t=0-ish: the write buffer
        // must fill and later writes must stall.
        let mut t = SimTime::ZERO;
        let mut worst = SimDuration::ZERO;
        let cap = d.capacity_bytes();
        let clusters = cap / 4096;
        let mut idx = 7u64;
        for _ in 0..1_500 {
            idx = (idx
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407))
                % clusters;
            let done = d.write(t, idx * 4096, 4096).unwrap();
            worst = worst.max(done.since(t));
            t += SimDuration::from_nanos(100); // near-open-loop arrivals
        }
        assert!(
            d.stats().stall_time > SimDuration::ZERO,
            "no stalls recorded"
        );
        assert!(worst > SimDuration::from_micros(300), "worst {worst}");
    }

    #[test]
    fn fault_injection_replaces_lost_clusters() {
        use kvssd_flash::FaultPlan;
        let flash = FlashDevice::with_faults(
            Geometry::small(),
            FlashTiming::pm983_like(),
            FaultPlan {
                program_fail_one_in: Some(10),
                erase_fail_one_in: None,
            },
        );
        let mut d = BlockSsd::over(flash, BlockFtlConfig::pm983_like());
        let mut t = SimTime::ZERO;
        for i in 0..256u64 {
            t = d.write(t, (i % 128) * 4096, 4096).unwrap();
        }
        d.flush(t);
        // Some programs failed and their clusters were re-placed; all
        // logical data must still be mapped or buffered.
        assert!(d.flash().stats().program_failures > 0);
        assert!(d.stats().replaced_after_failure > 0);
    }
}
