//! Block-SSD firmware personality.
//!
//! This is the *baseline* device of the study: the same NAND substrate as
//! the KV personality (`kvssd-core`), but running a conventional
//! page-mapped FTL with the host-visible behaviors the paper leans on:
//!
//! * fixed-granularity logical blocks (4 KiB mapping/ECC clusters over
//!   512 B sectors; sub-cluster writes pay read-modify-write),
//! * a DRAM write buffer that *reorganizes*: sequential runs are flushed
//!   immediately as multi-plane stripes, random pages are held for a
//!   coalescing window (the "block-SSD FTL tries to reorganize data
//!   and/or hold data in buffer much longer" mechanism of Sec. IV),
//! * a device read buffer, which makes sequential reads cheap because
//!   eight neighboring 4 KiB clusters share one 32 KiB physical page,
//! * greedy garbage collection with background and foreground modes, and
//!   TRIM support (whole-file deallocation is what keeps GC invisible
//!   under RocksDB in Fig. 6a),
//! * a full mapping table resident in device DRAM — the reason block-SSD
//!   latency stays flat in Fig. 3 while the KV index overflows.
//!
//! # Example
//!
//! ```
//! use kvssd_block_ftl::{BlockFtlConfig, BlockSsd};
//! use kvssd_flash::{FlashTiming, Geometry};
//! use kvssd_sim::SimTime;
//!
//! let mut ssd = BlockSsd::new(Geometry::small(), FlashTiming::pm983_like(),
//!                             BlockFtlConfig::pm983_like());
//! let done = ssd.write(SimTime::ZERO, 0, 4096).unwrap();
//! let read_done = ssd.read(done, 0, 4096).unwrap();
//! assert!(read_done >= done);
//! ```

pub mod config;
pub mod device;
pub mod mapping;

pub use config::BlockFtlConfig;
pub use device::{BlockIoError, BlockSsd, BlockSsdStats};
pub use mapping::{MappingTable, PhysLoc};
