//! Block-FTL tuning knobs and their calibration rationale.

use kvssd_nvme::NvmeConfig;
use kvssd_sim::SimDuration;

/// Configuration of the block firmware personality.
///
/// Defaults are PM983-class; see `DESIGN.md` ("Calibration"). The values
/// are mechanism inputs — the figure shapes emerge from policy, and the
/// ablation benches sweep the interesting ones.
#[derive(Debug, Clone, Copy)]
pub struct BlockFtlConfig {
    /// Host-visible sector size (bytes). NVMe namespaces expose 512 B.
    pub sector_bytes: u32,
    /// Mapping / ECC cluster size (bytes). Reads and RMWs happen at this
    /// granularity; 4 KiB is the ubiquitous choice.
    pub cluster_bytes: u32,
    /// Fraction of physical blocks held back as over-provisioning, in
    /// percent of total blocks. 12 % is enterprise-class.
    pub overprovision_pct: u32,
    /// Free-block count at which background GC starts stealing die time.
    pub gc_soft_free_blocks: u32,
    /// Free-block count at which writes stall behind foreground GC.
    pub gc_hard_free_blocks: u32,
    /// Clusters of GC copy-work performed per host write while in the
    /// background-GC band.
    pub gc_copies_per_write: u32,
    /// DRAM mapping-table lookup cost (the whole table fits in device
    /// DRAM: ~4 B per 4 KiB cluster, so 1 GiB DRAM covers 1 TiB media —
    /// this is why Fig. 3's block lines are flat).
    pub map_op: SimDuration,
    /// Fixed firmware time per host command after NVMe front-end fetch.
    pub per_cmd_firmware: SimDuration,
    /// Write-buffer capacity in clusters. Host writes complete on buffer
    /// insertion; when the buffer is full they wait for drain.
    pub write_buffer_clusters: u32,
    /// How long the FTL holds a *random* (non-sequential) page before
    /// programming, hoping to coalesce/reorder — the Sec. IV
    /// "reorganization" incentive. Sequential stripes skip the hold.
    pub coalesce_hold: SimDuration,
    /// Idle time after which a partially filled buffer page is flushed
    /// with padding.
    pub partial_flush_timeout: SimDuration,
    /// Device read-buffer capacity in physical pages (sequential reads
    /// hit pages fetched by their neighbors).
    pub read_buffer_pages: u32,
    /// NVMe link parameters.
    pub nvme: NvmeConfig,
}

impl BlockFtlConfig {
    /// PM983-class defaults.
    pub fn pm983_like() -> Self {
        BlockFtlConfig {
            sector_bytes: 512,
            cluster_bytes: 4096,
            overprovision_pct: 12,
            gc_soft_free_blocks: 24,
            gc_hard_free_blocks: 6,
            gc_copies_per_write: 8,
            map_op: SimDuration::from_nanos(300),
            per_cmd_firmware: SimDuration::from_micros(2),
            write_buffer_clusters: 1024,
            coalesce_hold: SimDuration::from_micros(300),
            partial_flush_timeout: SimDuration::from_millis(1),
            read_buffer_pages: 8,
            nvme: NvmeConfig::pm983_like(),
        }
    }

    /// Clusters per physical page for a given page size.
    pub fn clusters_per_page(&self, page_bytes: u32) -> u32 {
        assert!(
            page_bytes.is_multiple_of(self.cluster_bytes),
            "page size must be a multiple of the cluster size"
        );
        page_bytes / self.cluster_bytes
    }
}

impl Default for BlockFtlConfig {
    fn default() -> Self {
        Self::pm983_like()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_consistent() {
        let c = BlockFtlConfig::pm983_like();
        assert!(c.gc_hard_free_blocks < c.gc_soft_free_blocks);
        assert_eq!(c.cluster_bytes % c.sector_bytes, 0);
        assert_eq!(c.clusters_per_page(32 * 1024), 8);
    }

    #[test]
    #[should_panic(expected = "multiple")]
    fn odd_page_size_rejected() {
        let c = BlockFtlConfig::pm983_like();
        let _ = c.clusters_per_page(5000);
    }
}
