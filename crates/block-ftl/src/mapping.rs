//! Cluster-granularity mapping table with validity accounting.
//!
//! Maps logical cluster numbers (LCN, 4 KiB units) to physical slots
//! (block, page, slot-within-page) and keeps the per-block valid-cluster
//! counts plus reverse maps that garbage collection needs. The whole
//! structure models the FTL's DRAM-resident tables; its *timing* cost is
//! charged by the device (`BlockFtlConfig::map_op`), its *behavior* is
//! exact.

use kvssd_flash::{BlockId, Geometry};

/// A physical cluster slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PhysLoc {
    /// The erase block.
    pub block: BlockId,
    /// Page within the block.
    pub page: u32,
    /// Cluster slot within the page.
    pub slot: u32,
}

/// Logical-to-physical mapping plus GC bookkeeping (see module docs).
#[derive(Debug)]
pub struct MappingTable {
    forward: Vec<Option<PhysLoc>>,
    /// For each block: reverse map slot-index -> LCN (None = invalid/pad).
    reverse: Vec<Vec<Option<u32>>>,
    valid: Vec<u32>,
    clusters_per_page: u32,
}

impl MappingTable {
    /// Creates an empty table for `logical_clusters` LCNs over `geometry`.
    pub fn new(logical_clusters: u64, geometry: &Geometry, clusters_per_page: u32) -> Self {
        let slots_per_block = geometry.pages_per_block * clusters_per_page;
        MappingTable {
            clusters_per_page,
            forward: vec![None; logical_clusters as usize],
            reverse: vec![vec![None; slots_per_block as usize]; geometry.total_blocks() as usize],
            valid: vec![0; geometry.total_blocks() as usize],
        }
    }

    /// Number of logical clusters.
    pub fn logical_clusters(&self) -> u64 {
        self.forward.len() as u64
    }

    /// Current physical location of `lcn`, if mapped.
    pub fn lookup(&self, lcn: u32) -> Option<PhysLoc> {
        self.forward[lcn as usize]
    }

    /// Points `lcn` at a new location, invalidating the old one.
    pub fn update(&mut self, lcn: u32, loc: PhysLoc) {
        self.invalidate(lcn);
        self.forward[lcn as usize] = Some(loc);
        let slot = self.slot_index(loc);
        let rev = &mut self.reverse[loc.block.0 as usize];
        debug_assert!(rev[slot].is_none(), "slot written twice without erase");
        rev[slot] = Some(lcn);
        self.valid[loc.block.0 as usize] += 1;
    }

    /// Unmaps `lcn` (overwrite or TRIM), decrementing its old block's
    /// valid count. Idempotent.
    pub fn invalidate(&mut self, lcn: u32) {
        if let Some(old) = self.forward[lcn as usize].take() {
            let slot = self.slot_index(old);
            self.reverse[old.block.0 as usize][slot] = None;
            self.valid[old.block.0 as usize] -= 1;
        }
    }

    /// Valid clusters currently living in `block`.
    pub fn valid_in(&self, block: BlockId) -> u32 {
        self.valid[block.0 as usize]
    }

    /// The LCNs still valid in `block`, with their slots (GC's work list).
    pub fn live_clusters(&self, block: BlockId) -> Vec<(u32, PhysLoc)> {
        self.reverse[block.0 as usize]
            .iter()
            .enumerate()
            .filter_map(|(i, &lcn)| {
                lcn.map(|l| {
                    (
                        l,
                        PhysLoc {
                            block,
                            page: i as u32 / self.clusters_per_page,
                            slot: i as u32 % self.clusters_per_page,
                        },
                    )
                })
            })
            .collect()
    }

    /// Clears all reverse-map entries of `block` after its erase.
    ///
    /// # Panics
    ///
    /// Panics if the block still holds valid clusters — erasing it would
    /// lose data, i.e. a GC bug.
    pub fn on_erase(&mut self, block: BlockId) {
        assert_eq!(
            self.valid[block.0 as usize], 0,
            "erasing block b{} with valid data",
            block.0
        );
        for s in &mut self.reverse[block.0 as usize] {
            *s = None;
        }
    }

    /// Total valid clusters across the device.
    pub fn total_valid(&self) -> u64 {
        self.valid.iter().map(|&v| v as u64).sum()
    }

    fn slot_index(&self, loc: PhysLoc) -> usize {
        debug_assert!(loc.slot < self.clusters_per_page);
        (loc.page * self.clusters_per_page + loc.slot) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table() -> MappingTable {
        let g = Geometry::small();
        MappingTable::new(1024, &g, 8)
    }

    fn loc(block: u32, page: u32, slot: u32) -> PhysLoc {
        PhysLoc {
            block: BlockId(block),
            page,
            slot,
        }
    }

    #[test]
    fn update_then_lookup() {
        let mut t = table();
        t.update(7, loc(1, 2, 3));
        assert_eq!(t.lookup(7), Some(loc(1, 2, 3)));
        assert_eq!(t.valid_in(BlockId(1)), 1);
    }

    #[test]
    fn overwrite_invalidates_old_location() {
        let mut t = table();
        t.update(7, loc(1, 0, 0));
        t.update(7, loc(2, 0, 0));
        assert_eq!(t.valid_in(BlockId(1)), 0);
        assert_eq!(t.valid_in(BlockId(2)), 1);
        assert_eq!(t.lookup(7), Some(loc(2, 0, 0)));
    }

    #[test]
    fn invalidate_is_idempotent() {
        let mut t = table();
        t.update(3, loc(0, 0, 0));
        t.invalidate(3);
        t.invalidate(3);
        assert_eq!(t.lookup(3), None);
        assert_eq!(t.valid_in(BlockId(0)), 0);
    }

    #[test]
    fn live_clusters_lists_survivors() {
        let mut t = table();
        t.update(1, loc(0, 0, 0));
        t.update(2, loc(0, 0, 1));
        t.update(3, loc(0, 1, 0));
        t.invalidate(2);
        let live = t.live_clusters(BlockId(0));
        assert_eq!(live.len(), 2);
        assert!(live.iter().any(|&(l, _)| l == 1));
        assert!(live.iter().any(|&(l, p)| l == 3 && p.page == 1));
    }

    #[test]
    fn erase_requires_empty_block() {
        let mut t = table();
        t.update(1, loc(0, 0, 0));
        t.invalidate(1);
        t.on_erase(BlockId(0)); // fine: no valid data
        assert_eq!(t.total_valid(), 0);
    }

    #[test]
    #[should_panic(expected = "valid data")]
    fn erase_with_valid_data_panics() {
        let mut t = table();
        t.update(1, loc(0, 0, 0));
        t.on_erase(BlockId(0));
    }

    #[test]
    fn total_valid_tracks_all_blocks() {
        let mut t = table();
        t.update(1, loc(0, 0, 0));
        t.update(2, loc(5, 0, 0));
        assert_eq!(t.total_valid(), 2);
    }
}
