//! The shard router: N KV-SSDs behind one consistent-hash front-end.
//!
//! Every device keeps its own resource timelines, so operations routed
//! to different shards overlap in virtual time exactly as independent
//! hardware would; the cluster adds only the (configurable) submission
//! queue in front of each device. Flush and rebalance scatter to all
//! shards and fan back in on a [`FanIn`] barrier.
//!
//! With `replication_factor` R > 1 every key lives on the first R
//! distinct shards walking the ring from its hash
//! ([`HashRing::replica_set`]). Store/retrieve/delete fan out to the
//! whole replica set through each owner's submission queue and
//! acknowledge at the configured quorum: the operation's completion
//! time is when the `write_quorum`-th (resp. `read_quorum`-th) fastest
//! replica leg landed, while the straggler legs still occupy their
//! devices and are tracked by the per-shard completion lanes. Membership
//! changes repair placement: keys whose replica set lost a member are
//! re-replicated from a surviving copy, and replicas that fell out of a
//! set are demoted (dropped) — symmetric between `add_shard` and
//! `remove_shard`.
//!
//! Every replica leg crosses a [`Transport`] twice — request out,
//! completion back. The default [`InProcess`] transport is free and
//! lossless (byte-identical to the pre-transport cluster); a
//! fabric-backed transport charges link latency and can lose messages,
//! in which case operations that fail to assemble their quorum return
//! [`KvError::QuorumUnavailable`] carrying exactly which replica lanes
//! acknowledged. Flush stays control-plane work off the fabric, but
//! placement repair (copy and demotion legs) pays the wire like any
//! other replica traffic. With lean read fanout
//! ([`crate::transport::ReadFanout::Lean`]) retrieves send only
//! `read_quorum` legs and can hedge one spare leg when the quorum
//! acknowledgement runs past the hedge delay.
//!
//! The transport contract is deadline-aware
//! ([`crate::ClusterConfig::deadlines`]): a leg whose acknowledgement
//! has not arrived by `send + op_timeout` is re-issued up to
//! `max_retries` times with exponential backoff drawn from a seeded
//! per-cluster RNG stream, and only then counts as failed toward the
//! quorum. Hedged quorum *writes*
//! ([`crate::ClusterConfig::hedged_writes`]) symmetrize the read
//! hedge: when the write quorum has not assembled by `now + hedge`, a
//! spare (tied) leg re-sends the mutation to the slowest unacked
//! replica, skipping known-partitioned links. Replicas dedupe
//! re-delivered mutations by op id — the losing copy's device work is
//! cancelled and the recorded completion re-acknowledged — so retries,
//! wire duplicates, and tied legs are all idempotent.

use kvssd_core::hash::key_hash;
use kvssd_core::KeyBuf;
use kvssd_core::{KvError, KvSsd, KvSsdStats, Lookup, Payload, SpaceReport};
use kvssd_nvme::{SqStats, SubmissionQueue};
use kvssd_sim::{
    mix64, BandwidthSeries, DeterministicRng, FanIn, LatencyHistogram, PrehashedMap, SimDuration,
    SimTime,
};

use crate::config::ClusterConfig;
use crate::ring::{HashRing, RingDelta};
use crate::transport::{
    InProcess, ReadFanout, Transport, TransportStats, REQUEST_CAPSULE_BYTES, RESPONSE_CAPSULE_BYTES,
};

/// Live-key registry of one shard, keyed by the key's 64-bit hash.
///
/// The per-op store/delete path probes and updates this on every write
/// leg, so it must stay O(1); a `BTreeSet<Box<[u8]>>` here cost ~900 ns
/// per probe at a million resident keys (every tree descent is a chain
/// of cache misses). Rebalance is the only consumer that needs byte
/// order, and it is rare — it sorts a snapshot instead
/// ([`KvCluster::repair_placement`]), reproducing the tree's
/// enumeration order exactly. Distinct keys sharing a 64-bit hash are
/// kept in a spill list, so collisions stay correct (if essentially
/// unobserved).
#[derive(Debug, Default)]
struct KeyRegistry {
    by_hash: PrehashedMap<u64, KeySlot>,
    len: usize,
    /// Baseline leg of the `cluster_ops` microbench: when set, the
    /// registry routes every probe and update through the original
    /// byte-ordered tree instead of the hash map (the same
    /// keep-the-slow-path-measurable pattern as
    /// `KvSsd::set_legacy_gc_scan`). Host-side only; behavior-invisible.
    legacy: Option<std::collections::BTreeSet<Box<[u8]>>>,
}

#[derive(Debug)]
enum KeySlot {
    One(KeyBuf),
    Many(Vec<KeyBuf>),
}

impl KeySlot {
    fn as_slice(&self) -> &[KeyBuf] {
        match self {
            KeySlot::One(k) => std::slice::from_ref(k),
            KeySlot::Many(v) => v,
        }
    }
}

impl KeyRegistry {
    fn len(&self) -> usize {
        self.len
    }

    /// Switches between the hash-map fast path and the legacy tree
    /// (rebuilding the chosen structure from the other's contents).
    fn set_legacy(&mut self, on: bool) {
        if on == self.legacy.is_some() {
            return;
        }
        let snapshot: Vec<Box<[u8]>> = self.iter().map(Box::from).collect();
        self.by_hash.clear();
        self.len = 0;
        self.legacy = on.then(std::collections::BTreeSet::new);
        for key in &snapshot {
            self.insert(key);
        }
    }

    fn contains(&self, key: &[u8]) -> bool {
        self.contains_hashed(key_hash(key), key)
    }

    /// [`Self::contains`] with the key's hash precomputed — repair
    /// probes every shard's registry for the same key, and hashes it
    /// once instead of once per shard.
    fn contains_hashed(&self, h: u64, key: &[u8]) -> bool {
        if let Some(tree) = &self.legacy {
            return tree.contains(key);
        }
        self.by_hash
            .get(&h)
            .is_some_and(|slot| slot.as_slice().iter().any(|k| k.as_slice() == key))
    }

    /// Inserts a key copy; no-op when already present.
    fn insert(&mut self, key: &[u8]) {
        self.insert_hashed(key_hash(key), key);
    }

    /// Registry update for one executed store leg. The device just ran
    /// the store and reports whether the key existed; the registry
    /// mirrors the device's key set leg-for-leg (stores insert on both,
    /// deletes remove from both, repair keeps them in step, and a
    /// decommissioned shard is dropped whole), so an existing key is
    /// already registered and the fast path skips its probe entirely.
    /// The legacy tree still probes every leg — the microbench baseline
    /// keeps paying the baseline's costs.
    fn note_store(&mut self, h: u64, key: &[u8], existed: bool) {
        if self.legacy.is_some() {
            self.insert(key);
        } else if !existed {
            self.insert_hashed(h, key);
        }
    }

    /// [`Self::insert`] with the key's hash precomputed — the store
    /// fan-out hashes the key once for ring lookup and reuses it for
    /// every replica leg's registry update.
    fn insert_hashed(&mut self, h: u64, key: &[u8]) {
        use std::collections::hash_map::Entry;
        if let Some(tree) = &mut self.legacy {
            if tree.insert(key.into()) {
                self.len += 1;
            }
            return;
        }
        match self.by_hash.entry(h) {
            Entry::Vacant(v) => {
                v.insert(KeySlot::One(KeyBuf::new(key)));
                self.len += 1;
            }
            Entry::Occupied(mut o) => {
                if o.get().as_slice().iter().any(|k| k.as_slice() == key) {
                    return;
                }
                let slot = o.get_mut();
                if let KeySlot::One(first) = slot {
                    let first = std::mem::replace(first, KeyBuf::new(&[]));
                    *slot = KeySlot::Many(vec![first]);
                }
                let KeySlot::Many(v) = slot else {
                    unreachable!()
                };
                v.push(KeyBuf::new(key));
                self.len += 1;
            }
        }
    }

    /// Removes a key copy; no-op when absent.
    fn remove(&mut self, key: &[u8]) {
        self.remove_hashed(key_hash(key), key);
    }

    /// [`Self::remove`] with the key's hash precomputed (see
    /// [`Self::insert_hashed`]).
    fn remove_hashed(&mut self, h: u64, key: &[u8]) {
        use std::collections::hash_map::Entry;
        if let Some(tree) = &mut self.legacy {
            if tree.remove(key) {
                self.len -= 1;
            }
            return;
        }
        let Entry::Occupied(mut o) = self.by_hash.entry(h) else {
            return;
        };
        let gone = match o.get_mut() {
            KeySlot::One(k) => {
                if k.as_slice() != key {
                    return;
                }
                true
            }
            KeySlot::Many(v) => {
                let Some(i) = v.iter().position(|k| k.as_slice() == key) else {
                    return;
                };
                v.remove(i);
                v.is_empty()
            }
        };
        self.len -= 1;
        if gone {
            o.remove();
        }
    }

    /// All registered keys, in unspecified order.
    fn iter(&self) -> Box<dyn Iterator<Item = &[u8]> + '_> {
        if let Some(tree) = &self.legacy {
            return Box::new(tree.iter().map(|k| &**k));
        }
        Box::new(
            self.by_hash
                .values()
                .flat_map(|slot| slot.as_slice().iter().map(|k| k.as_slice())),
        )
    }
}

/// One device shard: the KV-SSD, its submission queue, its metrics, and
/// the key registry the rebalancer enumerates.
#[derive(Debug)]
pub struct Shard {
    id: usize,
    device: KvSsd,
    sq: SubmissionQueue,
    writes: LatencyHistogram,
    reads: LatencyHistogram,
    bandwidth: BandwidthSeries,
    /// Live keys; rebalance sorts a snapshot for deterministic order.
    keys: KeyRegistry,
    /// Last mutation executed on this replica, for idempotent
    /// re-delivery: `(op id, device completion, key existed before)`.
    /// The router is a synchronous closed loop — all deliveries of one
    /// op land before the next mutation starts — so one record per
    /// shard suffices to dedupe retries, wire duplicates, and tied
    /// hedge legs.
    last_exec: Option<(u64, SimTime, bool)>,
}

impl Shard {
    /// The shard's stable id (survives add/remove of other shards).
    pub fn id(&self) -> usize {
        self.id
    }

    /// The device behind this shard.
    pub fn device(&self) -> &KvSsd {
        &self.device
    }

    /// This shard's submission-queue counters.
    pub fn sq_stats(&self) -> &SqStats {
        self.sq.stats()
    }

    /// This shard's write-latency histogram.
    pub fn write_latency(&self) -> &LatencyHistogram {
        &self.writes
    }

    /// This shard's read-latency histogram.
    pub fn read_latency(&self) -> &LatencyHistogram {
        &self.reads
    }

    /// This shard's bandwidth series (stores + hit retrieves).
    pub fn bandwidth(&self) -> &BandwidthSeries {
        &self.bandwidth
    }

    /// Live keys on this shard.
    pub fn key_count(&self) -> usize {
        self.keys.len()
    }

    /// True when this shard holds a replica of `key`.
    pub fn holds(&self, key: &[u8]) -> bool {
        self.keys.contains(key)
    }
}

/// Summed device counters across all shards.
#[derive(Debug, Clone, Default)]
pub struct ClusterStats {
    /// Per-device counters, summed field by field.
    pub devices: KvSsdStats,
    /// Submission-queue stalls across shards.
    pub sq_full_stalls: u64,
    /// Total virtual time spent waiting on full submission queues.
    pub sq_stall_time: SimDuration,
    /// Keys moved by rebalances so far.
    pub rebalanced_keys: u64,
    /// Bytes moved by rebalances so far.
    pub rebalanced_bytes: u64,
    /// Router↔shard transport counters (all zero on the in-process
    /// transport).
    pub transport: TransportStats,
    /// Spare read legs launched by hedged lean reads.
    pub hedged_spares: u64,
    /// Leg re-issues after a missed per-op deadline.
    pub leg_retries: u64,
    /// Operations whose quorum only assembled thanks to a retried or
    /// hedged leg (the first attempts alone would have failed).
    pub retry_rescued_ops: u64,
    /// Spare (tied) legs launched by hedged quorum writes.
    pub hedged_write_spares: u64,
    /// Re-delivered mutations deduped at a replica (device work
    /// cancelled, recorded completion re-acknowledged).
    pub dup_suppressed: u64,
}

/// What one shard add/remove cost.
#[derive(Debug, Clone, Copy)]
pub struct RebalanceReport {
    /// Exact ring ownership change.
    pub ring: RingDelta,
    /// Keys that gained at least one new replica (at R = 1: keys
    /// migrated).
    pub moved_keys: u64,
    /// User bytes (key + value) actually copied between shards.
    pub moved_bytes: u64,
    /// Replica copy legs executed during repair; differs from
    /// `moved_keys` when one key re-replicates to several new holders.
    pub copied_replicas: u64,
    /// Replica copies demoted (deleted off shards that left the key's
    /// replica set). Copies on a shard being decommissioned leave with
    /// the device and are not counted.
    pub dropped_replicas: u64,
    /// Repair copy legs that never executed on their destination (the
    /// transport swallowed every attempt): the key is left
    /// under-replicated until the next repair. A key whose repair
    /// *read* failed on every surviving holder counts one failed copy
    /// per missing replica.
    pub failed_copies: u64,
    /// Demotion legs that never executed (the stale copy survives on
    /// its old holder; registry and device stay in step, so a later
    /// repair can retry the drop).
    pub failed_drops: u64,
    /// When the rebalance started.
    pub started: SimTime,
    /// Fan-in instant: when the last surviving-shard leg landed.
    pub completed: SimTime,
}

/// A byte-stable cluster summary table (integer fields only, so two
/// same-seed runs render identical bytes).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClusterReport {
    lines: Vec<String>,
}

impl ClusterReport {
    /// The rendered table.
    pub fn render(&self) -> String {
        self.lines.join("\n")
    }
}

impl std::fmt::Display for ClusterReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.render())
    }
}

/// The sharded multi-device store (see module and crate docs).
#[derive(Debug)]
pub struct KvCluster {
    config: ClusterConfig,
    ring: HashRing,
    shards: Vec<Shard>,
    /// Per-shard op-completion lanes, aligned with `shards` by index.
    completions: FanIn,
    /// Reusable per-operation fan-in over the current op's replica legs
    /// (reset each op, so the quorum path allocates nothing steady
    /// state).
    op_fan: FanIn,
    /// Reusable replica-set scratch (shard ids) for the same reason.
    replica_scratch: Vec<usize>,
    /// Router↔shard message transport; every replica leg crosses it
    /// twice (request out, completion back).
    transport: Box<dyn Transport>,
    /// Spare read legs launched by hedged lean reads.
    hedged_spares: u64,
    /// Monotonic mutation id; replicas dedupe re-deliveries by it.
    op_seq: u64,
    /// Backoff stream for deadline retries, seeded from the cluster
    /// seed. Consumed only when a leg actually retries, so fault-free
    /// runs never touch it and stay byte-identical.
    retry_rng: DeterministicRng,
    /// Leg re-issues after a missed deadline.
    leg_retries: u64,
    /// Ops whose quorum needed a retried or hedged leg to assemble.
    retry_rescued_ops: u64,
    /// Spare (tied) legs launched by hedged quorum writes.
    hedged_write_spares: u64,
    /// Re-delivered mutations deduped at a replica.
    dup_suppressed: u64,
    next_shard_id: usize,
    aggregate_bw: BandwidthSeries,
    rebalanced_keys: u64,
    rebalanced_bytes: u64,
}

impl KvCluster {
    /// Builds a cluster; `make_device(shard_id)` supplies each device.
    ///
    /// # Panics
    ///
    /// Panics if `config.shards` is zero, the replication factor is
    /// zero, or a quorum size is outside `1..=replication_factor`.
    pub fn new(config: ClusterConfig, make_device: impl FnMut(usize) -> KvSsd) -> Self {
        Self::with_transport(config, Box::new(InProcess), make_device)
    }

    /// Builds a cluster whose replica legs cross `transport` — the
    /// fabric-backed variant of [`Self::new`]. The transport must
    /// already expose one attachment point per shard (a
    /// [`kvssd_fabric::Fabric`] built with `links = config.shards`);
    /// membership changes keep the two aligned automatically.
    ///
    /// # Panics
    ///
    /// Panics as [`Self::new`] does on a malformed config.
    pub fn with_transport(
        config: ClusterConfig,
        transport: Box<dyn Transport>,
        mut make_device: impl FnMut(usize) -> KvSsd,
    ) -> Self {
        assert!(config.shards > 0, "a cluster needs at least one shard");
        assert!(
            config.replication_factor >= 1,
            "replication factor must be at least 1"
        );
        for (name, q) in [("write", config.write_quorum), ("read", config.read_quorum)] {
            assert!(
                q >= 1 && q <= config.replication_factor,
                "{name} quorum {q} outside 1..=R (R = {})",
                config.replication_factor
            );
        }
        let ids: Vec<usize> = (0..config.shards).collect();
        let ring = HashRing::new(config.seed, config.vnodes_per_shard, &ids);
        let shards = ids
            .iter()
            .map(|&id| Shard {
                id,
                device: make_device(id),
                sq: SubmissionQueue::new(config.sq),
                writes: LatencyHistogram::new(),
                reads: LatencyHistogram::new(),
                bandwidth: BandwidthSeries::new(config.bandwidth_window),
                keys: KeyRegistry::default(),
                last_exec: None,
            })
            .collect();
        KvCluster {
            completions: FanIn::new(config.shards),
            op_fan: FanIn::new(1),
            replica_scratch: Vec::with_capacity(config.replication_factor),
            transport,
            hedged_spares: 0,
            op_seq: 0,
            // Domain-tagged so the retry stream never collides with the
            // fabric's per-channel streams derived from the same seed.
            retry_rng: DeterministicRng::seed_from(mix64(config.seed ^ mix64(0x52_4554_5259))),
            leg_retries: 0,
            retry_rescued_ops: 0,
            hedged_write_spares: 0,
            dup_suppressed: 0,
            next_shard_id: config.shards,
            aggregate_bw: BandwidthSeries::new(config.bandwidth_window),
            rebalanced_keys: 0,
            rebalanced_bytes: 0,
            config,
            ring,
            shards,
        }
    }

    /// A small-geometry cluster for tests and doctests.
    pub fn for_test(shards: usize) -> Self {
        Self::new(ClusterConfig::new(shards, 42), |_| {
            KvSsd::new(
                kvssd_flash::Geometry::small(),
                kvssd_flash::FlashTiming::pm983_like(),
                kvssd_core::KvConfig::small(),
            )
        })
    }

    /// A small-geometry cluster with R-way replication (majority
    /// quorums) for tests and doctests.
    pub fn for_test_replicated(shards: usize, r: usize) -> Self {
        Self::new(ClusterConfig::new(shards, 42).replication(r), |_| {
            KvSsd::new(
                kvssd_flash::Geometry::small(),
                kvssd_flash::FlashTiming::pm983_like(),
                kvssd_core::KvConfig::small(),
            )
        })
    }

    /// The cluster configuration.
    pub fn config(&self) -> &ClusterConfig {
        &self.config
    }

    /// The placement ring.
    pub fn ring(&self) -> &HashRing {
        &self.ring
    }

    /// Current shard count.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The shards (index order, not id order).
    pub fn shards(&self) -> &[Shard] {
        &self.shards
    }

    /// Total live pairs across all devices. With replication each copy
    /// counts: R healthy replicas of one key contribute R.
    pub fn len(&self) -> u64 {
        self.shards.iter().map(|s| s.device.len()).sum()
    }

    /// True when no shard holds data.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Resolves a ring shard id to its slot in `self.shards`. The ring
    /// only ever names live members, so a miss is a membership-tracking
    /// bug, surfaced as a typed error rather than an abort.
    fn index_of(&self, id: usize) -> Result<usize, KvError> {
        self.shards
            .iter()
            .position(|s| s.id == id)
            .ok_or(KvError::Internal {
                what: "ring named a shard id not in the cluster",
            })
    }

    /// Routes every shard's key registry through the legacy byte-ordered
    /// tree (`true`) or the hash-map fast path (`false`, the default).
    /// Purely host-side bookkeeping — virtual-time behavior is identical
    /// either way; the `cluster_ops` microbench uses the legacy mode as
    /// its measured baseline.
    pub fn set_legacy_key_registry(&mut self, on: bool) {
        for shard in &mut self.shards {
            shard.keys.set_legacy(on);
        }
    }

    /// The shard index a key's primary replica routes to.
    pub fn route(&self, key: &[u8]) -> Result<usize, KvError> {
        self.index_of(self.ring.shard_for(key_hash(key)))
    }

    /// The shard indices holding replicas of `key`, in replica-set
    /// order (the primary first). Holds `min(R, shard_count)` entries.
    pub fn replica_routes(&self, key: &[u8]) -> Result<Vec<usize>, KvError> {
        self.ring
            .replica_set(key_hash(key), self.config.replication_factor)
            .into_iter()
            .map(|id| self.index_of(id))
            .collect()
    }

    /// Fills `replica_scratch` with the key's replica shard *indices*
    /// and empties `op_fan` (legs push their acknowledgement times as
    /// they land, so lost legs simply never appear). Returns the
    /// replica count and the key's hash, so the per-leg registry
    /// updates reuse it instead of rehashing the key once per replica.
    fn begin_replicated_op(&mut self, key: &[u8]) -> Result<(usize, u64), KvError> {
        let h = key_hash(key);
        let mut ids = std::mem::take(&mut self.replica_scratch);
        self.ring
            .replica_set_into(h, self.config.replication_factor, &mut ids);
        for id in ids.iter_mut() {
            match self.index_of(*id) {
                Ok(idx) => *id = idx,
                Err(e) => {
                    // Hand the scratch buffer back before bailing.
                    self.replica_scratch = ids;
                    return Err(e);
                }
            }
        }
        let k = ids.len();
        self.replica_scratch = ids;
        self.op_fan.reset_empty();
        Ok((k, h))
    }

    /// The next mutation id; replicas dedupe re-deliveries by it.
    fn next_op_id(&mut self) -> u64 {
        self.op_seq += 1;
        self.op_seq
    }

    /// Attempts allowed per leg: one, plus `max_retries` once deadlines
    /// are armed.
    fn leg_attempts(&self) -> u32 {
        match self.config.op_timeout {
            Some(_) => 1 + self.config.max_retries,
            None => 1,
        }
    }

    /// Seeded exponential backoff added before retry `attempt`
    /// (0-based): uniform in `[0, timeout << min(attempt, 16)]`. Drawn
    /// only when a retry actually fires, so fault-free runs never
    /// advance the stream.
    fn retry_backoff(&mut self, attempt: u32, timeout: SimDuration) -> SimDuration {
        let span = timeout.as_nanos().saturating_mul(1u64 << attempt.min(16));
        SimDuration::from_nanos(self.retry_rng.below(span.saturating_add(1)))
    }

    /// Executes a store request arriving at replica `idx` at `arrival`.
    /// A re-delivery of a mutation this replica already ran (a retry
    /// after a lost ack, a wire duplicate, a tied hedge leg) is deduped
    /// by op id: the device work is cancelled and the recorded
    /// completion re-acknowledged once the re-delivery is in hand.
    fn exec_store_replica(
        &mut self,
        idx: usize,
        op_id: u64,
        arrival: SimTime,
        h: u64,
        key: &[u8],
        value: &Payload,
    ) -> Result<SimTime, KvError> {
        let bytes = key.len() as u64 + value.len();
        if let Some((last, completed, _)) = self.shards[idx].last_exec {
            if last == op_id {
                self.dup_suppressed += 1;
                return Ok(completed.max(arrival));
            }
        }
        let shard = &mut self.shards[idx];
        let Shard { device, sq, .. } = shard;
        let v = value.clone();
        let mut res: Option<Result<SimTime, KvError>> = None;
        let timing = sq.submit(arrival, |issue| match device.store(issue, key, v) {
            Ok(done) => {
                res = Some(Ok(done));
                done
            }
            Err(e) => {
                res = Some(Err(e));
                issue
            }
        });
        res.ok_or(KvError::Internal {
            what: "submit ran the store leg synchronously",
        })??;
        shard.writes.record(timing.latency());
        shard.bandwidth.record(timing.completed, bytes);
        let existed = shard.device.last_store_was_update();
        shard.keys.note_store(h, key, existed);
        shard.last_exec = Some((op_id, timing.completed, existed));
        self.aggregate_bw.record(timing.completed, bytes);
        self.completions.record(idx, timing.completed);
        Ok(timing.completed)
    }

    /// [`Self::exec_store_replica`]'s delete counterpart; also reports
    /// whether the key existed on this replica.
    fn exec_delete_replica(
        &mut self,
        idx: usize,
        op_id: u64,
        arrival: SimTime,
        h: u64,
        key: &[u8],
    ) -> Result<(SimTime, bool), KvError> {
        if let Some((last, completed, existed)) = self.shards[idx].last_exec {
            if last == op_id {
                self.dup_suppressed += 1;
                return Ok((completed.max(arrival), existed));
            }
        }
        let shard = &mut self.shards[idx];
        let Shard { device, sq, .. } = shard;
        let mut res: Option<Result<(SimTime, bool), KvError>> = None;
        let timing = sq.submit(arrival, |issue| match device.delete(issue, key) {
            Ok((done, existed)) => {
                res = Some(Ok((done, existed)));
                done
            }
            Err(e) => {
                res = Some(Err(e));
                issue
            }
        });
        let (_, existed) = res.ok_or(KvError::Internal {
            what: "submit ran the delete leg synchronously",
        })??;
        if existed {
            shard.keys.remove_hashed(h, key);
        }
        shard.last_exec = Some((op_id, timing.completed, existed));
        self.completions.record(idx, timing.completed);
        Ok((timing.completed, existed))
    }

    /// One store leg against replica `idx` under the deadline/retry
    /// budget: each attempt crosses the transport out, executes (or
    /// dedupes) on the replica, and crosses back. An attempt whose
    /// acknowledgement misses `send + op_timeout` is re-issued with
    /// seeded backoff; a late ack still counts when it arrives. Returns
    /// the leg's earliest acknowledgement and the attempt that produced
    /// it (0 = first try), or `None` when no attempt acked.
    fn store_leg(
        &mut self,
        issue_at: SimTime,
        idx: usize,
        op_id: u64,
        h: u64,
        key: &[u8],
        value: &Payload,
    ) -> Result<Option<(SimTime, u32)>, KvError> {
        let bytes = key.len() as u64 + value.len();
        let attempts = self.leg_attempts();
        let mut best: Option<(SimTime, u32)> = None;
        let mut send_at = issue_at;
        for attempt in 0..attempts {
            if attempt > 0 {
                self.leg_retries += 1;
            }
            let d = self
                .transport
                .request(send_at, idx, REQUEST_CAPSULE_BYTES + bytes);
            for arrival in [d.delivered, d.duplicate].into_iter().flatten() {
                let completed = self.exec_store_replica(idx, op_id, arrival, h, key, value)?;
                if let Some(a) = self
                    .transport
                    .response(completed, idx, RESPONSE_CAPSULE_BYTES)
                    .first_arrival()
                {
                    if best.is_none_or(|(b, _)| a < b) {
                        best = Some((a, attempt));
                    }
                }
            }
            let Some(timeout) = self.config.op_timeout else {
                break; // no deadline armed: a lost leg stays lost
            };
            if best.is_some_and(|(b, _)| b <= send_at + timeout) {
                break; // acked within this attempt's deadline
            }
            if attempt + 1 < attempts {
                send_at = send_at + timeout + self.retry_backoff(attempt, timeout);
            }
        }
        Ok(best)
    }

    /// [`Self::store_leg`]'s delete counterpart; flags `existed_any`
    /// when the key existed on the replica (known at execution, like
    /// the pre-deadline path).
    fn delete_leg(
        &mut self,
        issue_at: SimTime,
        idx: usize,
        op_id: u64,
        h: u64,
        key: &[u8],
        existed_any: &mut bool,
    ) -> Result<Option<(SimTime, u32)>, KvError> {
        let attempts = self.leg_attempts();
        let mut best: Option<(SimTime, u32)> = None;
        let mut send_at = issue_at;
        for attempt in 0..attempts {
            if attempt > 0 {
                self.leg_retries += 1;
            }
            let d = self
                .transport
                .request(send_at, idx, REQUEST_CAPSULE_BYTES + key.len() as u64);
            for arrival in [d.delivered, d.duplicate].into_iter().flatten() {
                let (completed, existed) = self.exec_delete_replica(idx, op_id, arrival, h, key)?;
                if existed {
                    *existed_any = true;
                }
                if let Some(a) = self
                    .transport
                    .response(completed, idx, RESPONSE_CAPSULE_BYTES)
                    .first_arrival()
                {
                    if best.is_none_or(|(b, _)| a < b) {
                        best = Some((a, attempt));
                    }
                }
            }
            let Some(timeout) = self.config.op_timeout else {
                break;
            };
            if best.is_some_and(|(b, _)| b <= send_at + timeout) {
                break;
            }
            if attempt + 1 < attempts {
                send_at = send_at + timeout + self.retry_backoff(attempt, timeout);
            }
        }
        Ok(best)
    }

    /// One retrieve leg against replica `idx` under the deadline/retry
    /// budget. Reads are side-effect-free, so re-deliveries simply
    /// execute again (no dedupe needed). Fills `value` from the first
    /// acked hit in call order; returns the leg's earliest
    /// acknowledgement and its attempt, or `None`.
    fn retrieve_leg(
        &mut self,
        issue_at: SimTime,
        idx: usize,
        key: &[u8],
        value: &mut Option<Payload>,
    ) -> Result<Option<(SimTime, u32)>, KvError> {
        let attempts = self.leg_attempts();
        let mut best: Option<(SimTime, u32)> = None;
        let mut send_at = issue_at;
        for attempt in 0..attempts {
            if attempt > 0 {
                self.leg_retries += 1;
            }
            let d = self
                .transport
                .request(send_at, idx, REQUEST_CAPSULE_BYTES + key.len() as u64);
            for arrival in [d.delivered, d.duplicate].into_iter().flatten() {
                let shard = &mut self.shards[idx];
                let Shard { device, sq, .. } = shard;
                let mut res: Option<Result<Lookup, KvError>> = None;
                let timing = sq.submit(arrival, |issue| match device.retrieve(issue, key) {
                    Ok(l) => {
                        let at = l.at;
                        res = Some(Ok(l));
                        at
                    }
                    Err(e) => {
                        res = Some(Err(e));
                        issue
                    }
                });
                let lookup = res.ok_or(KvError::Internal {
                    what: "submit ran the read leg synchronously",
                })??;
                shard.reads.record(timing.latency());
                let mut resp_bytes = RESPONSE_CAPSULE_BYTES;
                if let Some(v) = &lookup.value {
                    let vbytes = key.len() as u64 + v.len();
                    shard.bandwidth.record(timing.completed, vbytes);
                    self.aggregate_bw.record(timing.completed, vbytes);
                    resp_bytes += vbytes;
                }
                self.completions.record(idx, timing.completed);
                let Some(a) = self
                    .transport
                    .response(timing.completed, idx, resp_bytes)
                    .first_arrival()
                else {
                    continue; // completion lost: value never reached the router
                };
                if best.is_none_or(|(b, _)| a < b) {
                    best = Some((a, attempt));
                }
                if value.is_none() {
                    *value = lookup.value;
                }
            }
            let Some(timeout) = self.config.op_timeout else {
                break;
            };
            if best.is_some_and(|(b, _)| b <= send_at + timeout) {
                break;
            }
            if attempt + 1 < attempts {
                send_at = send_at + timeout + self.retry_backoff(attempt, timeout);
            }
        }
        Ok(best)
    }

    /// The lane a hedged write re-sends to: the first replica with no
    /// acknowledgement whose link is not known-partitioned (a spare
    /// down a cut link could only be wasted). `None` when every lane
    /// acked — a slow-but-acked quorum would re-pay the same slow
    /// link — or only partitioned lanes remain.
    fn tied_write_lane(&self, k: usize, acked_lanes: u64) -> Option<usize> {
        (0..k).find(|&lane| {
            acked_lanes & (1u64 << (lane as u32 & 63)) == 0
                && !self.transport.is_partitioned(self.replica_scratch[lane])
        })
    }

    /// Stores one pair on every replica shard; completes at the write
    /// quorum.
    ///
    /// Each replica leg crosses the transport to its owner, goes
    /// through the owner's submission queue, and crosses back; the
    /// returned time is when the `write_quorum`-th fastest
    /// acknowledgement arrived at the router. Straggler legs still
    /// occupy their devices and land in the completion tracker. Legs
    /// unacked by their deadline retry per
    /// [`crate::ClusterConfig::deadlines`]; with
    /// [`crate::ClusterConfig::hedged_writes`] armed, a quorum still
    /// missing or late at `now + hedge` launches one spare (tied) leg
    /// to the slowest unacked replica, deduped by op id at the
    /// replica. On a device error the error is returned immediately;
    /// if fewer than `write_quorum` acknowledgements arrive after all
    /// that, [`KvError::QuorumUnavailable`] reports exactly which
    /// lanes acked — in both cases legs already executed stay applied
    /// (the repair pass of the next membership change re-converges
    /// placement).
    pub fn store(&mut self, now: SimTime, key: &[u8], value: Payload) -> Result<SimTime, KvError> {
        let (k, h) = self.begin_replicated_op(key)?;
        let op_id = self.next_op_id();
        let wq = self.config.write_quorum.min(k);
        let mut acked_lanes = 0u64;
        let mut first_try_acks = 0usize;
        for lane in 0..k {
            let idx = self.replica_scratch[lane];
            if let Some((acked, attempt)) = self.store_leg(now, idx, op_id, h, key, &value)? {
                self.op_fan.push(acked);
                acked_lanes |= 1u64 << (lane as u32 & 63);
                if attempt == 0 {
                    first_try_acks += 1;
                }
            }
        }
        if let Some(hedge) = self.config.write_hedge {
            // Hedge once: the write quorum is missing or late and an
            // unacked, un-partitioned replica remains to tie.
            let late = self.op_fan.len() < wq || self.op_fan.quorum(wq) > now + hedge;
            if late {
                if let Some(lane) = self.tied_write_lane(k, acked_lanes) {
                    let idx = self.replica_scratch[lane];
                    self.hedged_write_spares += 1;
                    if let Some((acked, _)) =
                        self.store_leg(now + hedge, idx, op_id, h, key, &value)?
                    {
                        self.op_fan.push(acked);
                        acked_lanes |= 1u64 << (lane as u32 & 63);
                    }
                }
            }
        }
        self.finish_quorum(wq, acked_lanes, first_try_acks, true)
    }

    /// Looks a key up on its replica set; completes at the read quorum
    /// (the returned `Lookup::at` is when the `read_quorum`-th fastest
    /// acknowledgement arrived). With the default
    /// [`ReadFanout::All`] every replica gets a leg; with
    /// [`ReadFanout::Lean`] only the first `read_quorum` replicas do,
    /// plus — when hedging is configured and the quorum ack would land
    /// after `now + hedge` — one spare leg to the next unused replica
    /// whose link is not known-partitioned, issued at `now + hedge`.
    /// The value comes from the first acked replica in leg order that
    /// holds one; if fewer than `read_quorum` legs acknowledge,
    /// [`KvError::QuorumUnavailable`] is returned.
    pub fn retrieve(&mut self, now: SimTime, key: &[u8]) -> Result<Lookup, KvError> {
        let (k, _) = self.begin_replicated_op(key)?;
        let rq = self.config.read_quorum.min(k);
        let legs = match self.config.read_fanout {
            ReadFanout::All => k,
            ReadFanout::Lean { .. } => rq,
        };
        let mut value: Option<Payload> = None;
        let mut acked_lanes = 0u64;
        let mut first_try_acks = 0usize;
        for lane in 0..legs {
            let idx = self.replica_scratch[lane];
            if let Some((acked, attempt)) = self.retrieve_leg(now, idx, key, &mut value)? {
                self.op_fan.push(acked);
                acked_lanes |= 1u64 << (lane as u32 & 63);
                if attempt == 0 {
                    first_try_acks += 1;
                }
            }
        }
        if let ReadFanout::Lean { hedge: Some(hedge) } = self.config.read_fanout {
            // Hedge once: the quorum is late (or short a leg) and an
            // unused replica with a live link remains — a spare down a
            // known-partitioned link could only be wasted.
            let late = self.op_fan.len() < rq || self.op_fan.quorum(rq) > now + hedge;
            if late {
                if let Some(lane) =
                    (legs..k).find(|&l| !self.transport.is_partitioned(self.replica_scratch[l]))
                {
                    self.hedged_spares += 1;
                    let idx = self.replica_scratch[lane];
                    if let Some((acked, _)) =
                        self.retrieve_leg(now + hedge, idx, key, &mut value)?
                    {
                        self.op_fan.push(acked);
                        acked_lanes |= 1u64 << (lane as u32 & 63);
                    }
                }
            }
        }
        match self.finish_quorum(rq, acked_lanes, first_try_acks, false) {
            Ok(at) => Ok(Lookup { at, value }),
            Err(e) => Err(e),
        }
    }

    /// Deletes a key on every replica shard; completes at the write
    /// quorum, with the same deadline/retry/hedge machinery as
    /// [`Self::store`]. Returns whether any replica held it.
    pub fn delete(&mut self, now: SimTime, key: &[u8]) -> Result<(SimTime, bool), KvError> {
        let (k, h) = self.begin_replicated_op(key)?;
        let op_id = self.next_op_id();
        let wq = self.config.write_quorum.min(k);
        let mut existed_any = false;
        let mut acked_lanes = 0u64;
        let mut first_try_acks = 0usize;
        for lane in 0..k {
            let idx = self.replica_scratch[lane];
            if let Some((acked, attempt)) =
                self.delete_leg(now, idx, op_id, h, key, &mut existed_any)?
            {
                self.op_fan.push(acked);
                acked_lanes |= 1u64 << (lane as u32 & 63);
                if attempt == 0 {
                    first_try_acks += 1;
                }
            }
        }
        if let Some(hedge) = self.config.write_hedge {
            let late = self.op_fan.len() < wq || self.op_fan.quorum(wq) > now + hedge;
            if late {
                if let Some(lane) = self.tied_write_lane(k, acked_lanes) {
                    let idx = self.replica_scratch[lane];
                    self.hedged_write_spares += 1;
                    if let Some((acked, _)) =
                        self.delete_leg(now + hedge, idx, op_id, h, key, &mut existed_any)?
                    {
                        self.op_fan.push(acked);
                        acked_lanes |= 1u64 << (lane as u32 & 63);
                    }
                }
            }
        }
        match self.finish_quorum(wq, acked_lanes, first_try_acks, true) {
            Ok(at) => Ok((at, existed_any)),
            Err(e) => Err(e),
        }
    }

    /// The quorum acknowledgement instant over the current op's acked
    /// legs, or [`KvError::QuorumUnavailable`] — carrying the acked
    /// lane mask and the mutation flag — when fewer than `quorum` legs
    /// made it back. An op whose quorum only assembled thanks to
    /// retried or hedged legs counts as rescued.
    fn finish_quorum(
        &mut self,
        quorum: usize,
        acked_lanes: u64,
        first_try_acks: usize,
        write: bool,
    ) -> Result<SimTime, KvError> {
        let acked = self.op_fan.len();
        if acked < quorum {
            return Err(KvError::QuorumUnavailable {
                acked,
                quorum,
                acked_replicas: acked_lanes,
                write,
            });
        }
        if first_try_acks < quorum {
            self.retry_rescued_ops += 1;
        }
        Ok(self.op_fan.quorum(quorum))
    }

    /// Flushes every shard; returns the fan-in barrier (when the last
    /// shard finished).
    pub fn flush(&mut self, now: SimTime) -> Result<SimTime, KvError> {
        let mut fan = FanIn::new(self.shards.len());
        for (lane, shard) in self.shards.iter_mut().enumerate() {
            let done = shard.device.flush(now)?;
            fan.record(lane, done);
            self.completions.record(lane, done);
        }
        Ok(fan.barrier())
    }

    /// When every completion recorded so far has landed on every shard.
    pub fn quiesce_time(&self) -> SimTime {
        self.completions.barrier()
    }

    /// Adds a shard and repairs placement: keys the ring now hands the
    /// new shard are copied onto it, and replicas demoted out of their
    /// key's set are dropped. Returns the new shard's id and the
    /// rebalance accounting.
    pub fn add_shard(
        &mut self,
        now: SimTime,
        device: KvSsd,
    ) -> Result<(usize, RebalanceReport), KvError> {
        let id = self.next_shard_id;
        self.next_shard_id += 1;
        let ring_delta = self.ring.add_shard(id);
        self.shards.push(Shard {
            id,
            device,
            sq: SubmissionQueue::new(self.config.sq),
            writes: LatencyHistogram::new(),
            reads: LatencyHistogram::new(),
            bandwidth: BandwidthSeries::new(self.config.bandwidth_window),
            keys: KeyRegistry::default(),
            last_exec: None,
        });
        self.completions.add_lane();
        self.transport.on_add_shard();
        let report = self.repair_placement(now, ring_delta, None)?;
        Ok((id, report))
    }

    /// Removes a shard: every key whose replica set lost the member is
    /// re-replicated onto its new holder from a surviving copy. The
    /// departing device is decommissioned wholesale — its copies leave
    /// with it instead of being deleted one timed op at a time — so the
    /// report's `completed` barrier covers exactly the legs that
    /// survivors executed, and `quiesce_time()` always covers it.
    ///
    /// # Panics
    ///
    /// Panics when asked to remove the last shard of a cluster.
    ///
    /// # Errors
    ///
    /// Returns [`KvError::Internal`] for an unknown shard id or a
    /// broken repair invariant.
    pub fn remove_shard(&mut self, now: SimTime, id: usize) -> Result<RebalanceReport, KvError> {
        assert!(
            self.shards.len() > 1,
            "cannot remove the last shard of a cluster"
        );
        let idx = self.index_of(id)?;
        let ring_delta = self.ring.remove_shard(id);
        let report = self.repair_placement(now, ring_delta, Some(id))?;
        debug_assert_eq!(self.shards[idx].keys.len(), 0);
        self.shards.remove(idx);
        self.completions.remove_lane(idx);
        self.transport.on_remove_shard(idx);
        Ok(report)
    }

    /// One repair read over the fabric: fetch `key`'s payload off
    /// holder `src` under the deadline/retry budget. Returns the
    /// payload and the instant the router holds it, or `Ok(None)` when
    /// the link swallowed every attempt (the caller fails over to
    /// another holder).
    fn repair_read_leg(
        &mut self,
        now: SimTime,
        src: usize,
        key: &[u8],
    ) -> Result<Option<(Payload, SimTime)>, KvError> {
        let attempts = self.leg_attempts();
        let mut best: Option<(Payload, SimTime)> = None;
        let mut send_at = now;
        for attempt in 0..attempts {
            if attempt > 0 {
                self.leg_retries += 1;
            }
            let d = self
                .transport
                .request(send_at, src, REQUEST_CAPSULE_BYTES + key.len() as u64);
            // Reads are idempotent: one device pass per delivered
            // attempt suffices (duplicates just re-ack).
            if let Some(arrival) = d.first_arrival() {
                let (payload, read_done) = {
                    let Shard { device, sq, .. } = &mut self.shards[src];
                    let mut res: Option<Result<Lookup, KvError>> = None;
                    let read = sq.submit(arrival, |issue| match device.retrieve(issue, key) {
                        Ok(l) => {
                            let at = l.at;
                            res = Some(Ok(l));
                            at
                        }
                        Err(e) => {
                            res = Some(Err(e));
                            issue
                        }
                    });
                    let lookup = res.ok_or(KvError::Internal {
                        what: "submit ran the repair read synchronously",
                    })??;
                    let payload = lookup.value.ok_or(KvError::Internal {
                        what: "registry said the repaired key was live",
                    })?;
                    (payload, read.completed)
                };
                self.completions.record(src, read_done);
                let resp_bytes = RESPONSE_CAPSULE_BYTES + key.len() as u64 + payload.len();
                if let Some(a) = self
                    .transport
                    .response(read_done, src, resp_bytes)
                    .first_arrival()
                {
                    if best.as_ref().is_none_or(|(_, b)| a < *b) {
                        best = Some((payload, a));
                    }
                }
            }
            let Some(timeout) = self.config.op_timeout else {
                break;
            };
            if best.as_ref().is_some_and(|(_, b)| *b <= send_at + timeout) {
                break;
            }
            if attempt + 1 < attempts {
                send_at = send_at + timeout + self.retry_backoff(attempt, timeout);
            }
        }
        Ok(best)
    }

    /// One repair copy over the fabric: store `key`/`payload` onto
    /// `dst`. Returns the instant the copy is known durable when it
    /// executed (registry updated; an executed-but-unacked copy still
    /// counts — the device holds it), or `Ok(None)` when no attempt's
    /// request ever arrived.
    fn repair_copy_leg(
        &mut self,
        send_from: SimTime,
        dst: usize,
        op_id: u64,
        key: &[u8],
        payload: &Payload,
    ) -> Result<Option<SimTime>, KvError> {
        let bytes = REQUEST_CAPSULE_BYTES + key.len() as u64 + payload.len();
        let attempts = self.leg_attempts();
        let mut durable: Option<SimTime> = None;
        let mut send_at = send_from;
        for attempt in 0..attempts {
            if attempt > 0 {
                self.leg_retries += 1;
            }
            let d = self.transport.request(send_at, dst, bytes);
            let mut acked: Option<SimTime> = None;
            for arrival in [d.delivered, d.duplicate].into_iter().flatten() {
                let completed = match self.shards[dst].last_exec {
                    Some((last, completed, _)) if last == op_id => {
                        self.dup_suppressed += 1;
                        completed.max(arrival)
                    }
                    _ => {
                        let Shard { device, sq, .. } = &mut self.shards[dst];
                        let mut res: Option<Result<SimTime, KvError>> = None;
                        let write = sq.submit(arrival, |issue| {
                            match device.store(issue, key, payload.clone()) {
                                Ok(done) => {
                                    res = Some(Ok(done));
                                    done
                                }
                                Err(e) => {
                                    res = Some(Err(e));
                                    issue
                                }
                            }
                        });
                        res.ok_or(KvError::Internal {
                            what: "submit ran the repair copy synchronously",
                        })??;
                        let done = write.completed;
                        self.shards[dst].keys_insert(key);
                        self.shards[dst].last_exec = Some((op_id, done, false));
                        self.completions.record(dst, done);
                        done
                    }
                };
                durable = Some(match durable {
                    Some(p) => p.max(completed),
                    None => completed,
                });
                if let Some(a) = self
                    .transport
                    .response(completed, dst, RESPONSE_CAPSULE_BYTES)
                    .first_arrival()
                {
                    acked = Some(match acked {
                        Some(p) => p.min(a),
                        None => a,
                    });
                }
            }
            if let Some(a) = acked {
                // The router heard the copy land; the ack instant is
                // when it may safely demote the replica it replaces.
                return Ok(Some(match durable {
                    Some(p) => p.max(a),
                    None => a,
                }));
            }
            let Some(timeout) = self.config.op_timeout else {
                break;
            };
            if attempt + 1 < attempts {
                send_at = send_at + timeout + self.retry_backoff(attempt, timeout);
            }
        }
        Ok(durable)
    }

    /// One demotion over the fabric: delete `key` off holder `holder`.
    /// Returns the instant the drop is known complete when it executed
    /// (registry updated), or `Ok(None)` when no attempt's request ever
    /// arrived — the stale copy survives on its old holder.
    fn repair_drop_leg(
        &mut self,
        send_from: SimTime,
        holder: usize,
        op_id: u64,
        key: &[u8],
    ) -> Result<Option<SimTime>, KvError> {
        let attempts = self.leg_attempts();
        let mut durable: Option<SimTime> = None;
        let mut send_at = send_from;
        for attempt in 0..attempts {
            if attempt > 0 {
                self.leg_retries += 1;
            }
            let d =
                self.transport
                    .request(send_at, holder, REQUEST_CAPSULE_BYTES + key.len() as u64);
            let mut acked: Option<SimTime> = None;
            for arrival in [d.delivered, d.duplicate].into_iter().flatten() {
                let completed = match self.shards[holder].last_exec {
                    Some((last, completed, _)) if last == op_id => {
                        self.dup_suppressed += 1;
                        completed.max(arrival)
                    }
                    _ => {
                        let Shard { device, sq, .. } = &mut self.shards[holder];
                        let mut res: Option<Result<SimTime, KvError>> = None;
                        let drop_leg =
                            sq.submit(arrival, |issue| match device.delete(issue, key) {
                                Ok((done, _)) => {
                                    res = Some(Ok(done));
                                    done
                                }
                                Err(e) => {
                                    res = Some(Err(e));
                                    issue
                                }
                            });
                        res.ok_or(KvError::Internal {
                            what: "submit ran the repair drop synchronously",
                        })??;
                        let done = drop_leg.completed;
                        self.shards[holder].keys.remove(key);
                        self.shards[holder].last_exec = Some((op_id, done, true));
                        self.completions.record(holder, done);
                        done
                    }
                };
                durable = Some(match durable {
                    Some(p) => p.max(completed),
                    None => completed,
                });
                if let Some(a) = self
                    .transport
                    .response(completed, holder, RESPONSE_CAPSULE_BYTES)
                    .first_arrival()
                {
                    acked = Some(match acked {
                        Some(p) => p.min(a),
                        None => a,
                    });
                }
            }
            if let Some(a) = acked {
                return Ok(Some(match durable {
                    Some(p) => p.max(a),
                    None => a,
                }));
            }
            let Some(timeout) = self.config.op_timeout else {
                break;
            };
            if attempt + 1 < attempts {
                send_at = send_at + timeout + self.retry_backoff(attempt, timeout);
            }
        }
        Ok(durable)
    }

    /// Re-converges every key onto its current replica set after a
    /// membership change. For each key (deterministic order: the union
    /// of all shard registries, BTreeSet byte order):
    ///
    /// 1. missing replicas are copied from one surviving holder — a
    ///    fabric read off the preferred source at `now` (failing over
    ///    across holders when a link swallows every attempt), then a
    ///    fabric store per new holder once the router has the payload;
    /// 2. holders no longer in the replica set are demoted — a fabric
    ///    delete issued once the key's new copies have landed (so a
    ///    replica is never dropped before its replacement is durable;
    ///    when any copy failed, the demotion is skipped and counted as
    ///    a failed drop instead), except on a shard being
    ///    decommissioned (`decommission`), whose copies leave with the
    ///    device.
    ///
    /// Repair traffic pays the fabric like any data-path leg — request
    /// out, completion back, deadline retries included — so a
    /// partitioned link makes repair legs *fail* (counted in the
    /// report) instead of silently teleporting data. Every
    /// surviving-shard leg lands in the completion tracker; the
    /// report's `completed` is the fan-in barrier over those legs. At
    /// R = 1 on the in-process transport this reduces to the classic
    /// read → store → delete key migration, byte for byte.
    fn repair_placement(
        &mut self,
        now: SimTime,
        ring_delta: RingDelta,
        decommission: Option<usize>,
    ) -> Result<RebalanceReport, KvError> {
        let mut moved_keys = 0u64;
        let mut moved_bytes = 0u64;
        let mut copied_replicas = 0u64;
        let mut dropped_replicas = 0u64;
        let mut failed_copies = 0u64;
        let mut failed_drops = 0u64;
        let mut barrier = now;

        // Snapshot every registered key in ascending byte order — the
        // same sequence the former per-shard BTreeSet union produced, at
        // a one-time sort cost instead of a per-op tree insert.
        let mut all_keys: Vec<Box<[u8]>> = Vec::new();
        for s in &self.shards {
            all_keys.extend(s.keys.iter().map(Box::from));
        }
        all_keys.sort_unstable();
        all_keys.dedup();

        let mut desired_ids: Vec<usize> = Vec::new();
        let mut desired: Vec<usize> = Vec::new();
        let mut holders: Vec<usize> = Vec::new();
        let mut missing: Vec<usize> = Vec::new();
        let mut sources: Vec<usize> = Vec::new();

        for key in &all_keys {
            let key: &[u8] = key;
            let h = key_hash(key);
            self.ring
                .replica_set_into(h, self.config.replication_factor, &mut desired_ids);
            desired.clear();
            for &id in &desired_ids {
                desired.push(self.index_of(id)?);
            }
            holders.clear();
            holders.extend(
                (0..self.shards.len()).filter(|&i| self.shards[i].keys.contains_hashed(h, key)),
            );
            missing.clear();
            missing.extend(desired.iter().copied().filter(|d| !holders.contains(d)));
            let demote_any = holders.iter().any(|h| !desired.contains(h));
            if missing.is_empty() && !demote_any {
                continue;
            }

            // Copy legs: one fabric read off the preferred source (a
            // holder staying in the set first, then any other holder —
            // failing over when a link swallows every attempt), then a
            // fabric store per missing replica once the router has the
            // payload.
            let mut write_barrier = now;
            let mut copies_ok = true;
            if !missing.is_empty() {
                sources.clear();
                sources.extend(holders.iter().copied().filter(|h| desired.contains(h)));
                sources.extend(holders.iter().copied().filter(|h| !desired.contains(h)));
                debug_assert!(
                    !sources.is_empty(),
                    "a registered key has at least one holder"
                );
                let mut read: Option<(Payload, SimTime)> = None;
                for &src in &sources {
                    read = self.repair_read_leg(now, src, key)?;
                    if read.is_some() {
                        break;
                    }
                }
                match read {
                    Some((payload, have_at)) => {
                        let mut copied = 0u64;
                        for &dst in &missing {
                            let op_id = self.next_op_id();
                            match self.repair_copy_leg(have_at, dst, op_id, key, &payload)? {
                                Some(done) => {
                                    write_barrier = write_barrier.max(done);
                                    moved_bytes += key.len() as u64 + payload.len();
                                    copied_replicas += 1;
                                    copied += 1;
                                }
                                None => failed_copies += 1,
                            }
                        }
                        if copied > 0 {
                            moved_keys += 1;
                            barrier = barrier.max(write_barrier);
                        }
                        copies_ok = copied == missing.len() as u64;
                    }
                    None => {
                        // No surviving link produced the payload: every
                        // missing replica goes unfilled until the next
                        // repair.
                        failed_copies += missing.len() as u64;
                        copies_ok = false;
                    }
                }
            }

            // Demotion legs: never before the new copies are durable.
            for h in 0..self.shards.len() {
                if !holders.contains(&h) || desired.contains(&h) {
                    continue;
                }
                if decommission == Some(self.shards[h].id) {
                    // The decommissioned device leaves wholesale; its
                    // registry entries go with it (any unfilled replica
                    // is already counted as a failed copy).
                    self.shards[h].keys.remove(key);
                    continue;
                }
                if !copies_ok {
                    // A replacement copy is missing: keep the stale
                    // replica rather than shrink redundancy further.
                    failed_drops += 1;
                    continue;
                }
                let op_id = self.next_op_id();
                match self.repair_drop_leg(write_barrier, h, op_id, key)? {
                    Some(done) => {
                        barrier = barrier.max(done);
                        dropped_replicas += 1;
                    }
                    None => failed_drops += 1,
                }
            }
        }

        self.rebalanced_keys += moved_keys;
        self.rebalanced_bytes += moved_bytes;
        Ok(RebalanceReport {
            ring: ring_delta,
            moved_keys,
            moved_bytes,
            copied_replicas,
            dropped_replicas,
            failed_copies,
            failed_drops,
            started: now,
            completed: barrier,
        })
    }

    /// Summed counters across devices and submission queues.
    pub fn stats(&self) -> ClusterStats {
        let mut d = KvSsdStats::default();
        let mut sq_full_stalls = 0;
        let mut sq_stall_time = SimDuration::ZERO;
        for s in &self.shards {
            let t = s.device.stats();
            d.stores += t.stores;
            d.retrieves += t.retrieves;
            d.deletes += t.deletes;
            d.exists += t.exists;
            d.not_found += t.not_found;
            d.bloom_negatives += t.bloom_negatives;
            d.split_stores += t.split_stores;
            d.write_through += t.write_through;
            d.gc_copied_segments += t.gc_copied_segments;
            d.gc_erases += t.gc_erases;
            d.foreground_gc_events += t.foreground_gc_events;
            d.stall_time += t.stall_time;
            d.write_buffer_hits += t.write_buffer_hits;
            d.replaced_after_failure += t.replaced_after_failure;
            d.merges += t.merges;
            sq_full_stalls += s.sq.stats().full_stalls;
            sq_stall_time += s.sq.stats().stall_time;
        }
        ClusterStats {
            devices: d,
            sq_full_stalls,
            sq_stall_time,
            rebalanced_keys: self.rebalanced_keys,
            rebalanced_bytes: self.rebalanced_bytes,
            transport: self.transport.stats(),
            hedged_spares: self.hedged_spares,
            leg_retries: self.leg_retries,
            retry_rescued_ops: self.retry_rescued_ops,
            hedged_write_spares: self.hedged_write_spares,
            dup_suppressed: self.dup_suppressed,
        }
    }

    /// The router↔shard transport counters (all zero on the default
    /// in-process transport).
    pub fn transport_stats(&self) -> TransportStats {
        self.transport.stats()
    }

    /// Spare read legs launched by hedged lean reads so far.
    pub fn hedged_spares(&self) -> u64 {
        self.hedged_spares
    }

    /// Leg re-issues after a missed per-op deadline so far.
    pub fn leg_retries(&self) -> u64 {
        self.leg_retries
    }

    /// Ops whose quorum only assembled thanks to a retried or hedged
    /// leg so far.
    pub fn retry_rescued_ops(&self) -> u64 {
        self.retry_rescued_ops
    }

    /// Spare (tied) legs launched by hedged quorum writes so far.
    pub fn hedged_write_spares(&self) -> u64 {
        self.hedged_write_spares
    }

    /// Re-delivered mutations deduped at a replica so far.
    pub fn dup_suppressed(&self) -> u64 {
        self.dup_suppressed
    }

    /// The underlying fabric, when this cluster runs on one — the hook
    /// experiments use to reshape or partition links mid-run. `None` on
    /// the in-process transport.
    pub fn fabric_mut(&mut self) -> Option<&mut kvssd_fabric::Fabric> {
        self.transport.fabric_mut()
    }

    /// Summed space report across devices.
    pub fn space(&self) -> SpaceReport {
        let mut out = SpaceReport {
            user_bytes: 0,
            allocated_bytes: 0,
            capacity_bytes: 0,
            kvp_count: 0,
            max_kvps: 0,
            waste_bytes: 0,
        };
        for s in &self.shards {
            let r = s.device.space();
            out.user_bytes += r.user_bytes;
            out.allocated_bytes += r.allocated_bytes;
            out.capacity_bytes += r.capacity_bytes;
            out.kvp_count += r.kvp_count;
            out.max_kvps += r.max_kvps;
            out.waste_bytes += r.waste_bytes;
        }
        out
    }

    /// All shards' write-latency histograms merged.
    pub fn merged_write_latency(&self) -> LatencyHistogram {
        let mut h = LatencyHistogram::new();
        self.merged_write_latency_into(&mut h);
        h
    }

    /// Merges all shards' write histograms into `out` (cleared first).
    /// Allocation-free: callers polling latency repeatedly reuse one
    /// accumulator instead of rebuilding a histogram per call.
    pub fn merged_write_latency_into(&self, out: &mut LatencyHistogram) {
        out.clear();
        for s in &self.shards {
            out.merge_from(&s.writes);
        }
    }

    /// All shards' read-latency histograms merged.
    pub fn merged_read_latency(&self) -> LatencyHistogram {
        let mut h = LatencyHistogram::new();
        self.merged_read_latency_into(&mut h);
        h
    }

    /// Merges all shards' read histograms into `out` (cleared first);
    /// the allocation-free counterpart of [`Self::merged_read_latency`].
    pub fn merged_read_latency_into(&self, out: &mut LatencyHistogram) {
        out.clear();
        for s in &self.shards {
            out.merge_from(&s.reads);
        }
    }

    /// The cluster-wide bandwidth series.
    pub fn aggregate_bandwidth(&self) -> &BandwidthSeries {
        &self.aggregate_bw
    }

    /// A byte-stable summary: integer counters only, so two same-seed
    /// runs produce identical bytes (the determinism test's contract).
    pub fn report(&self) -> ClusterReport {
        let mut lines = Vec::new();
        lines.push(format!(
            "cluster shards={} vnodes={} seed={}",
            self.shards.len(),
            self.config.vnodes_per_shard,
            self.config.seed
        ));
        // Only rendered when replication is on, so R = 1 reports stay
        // byte-identical to the pre-replication layout.
        if self.config.replication_factor > 1 {
            lines.push(format!(
                "replication r={} wq={} rq={}",
                self.config.replication_factor, self.config.write_quorum, self.config.read_quorum
            ));
        }
        lines.push(
            "shard  stores  retrieves  deletes  fg_gc  gc_copies  sq_stalls  kvps  bw_bytes"
                .to_string(),
        );
        for s in &self.shards {
            let t = s.device.stats();
            lines.push(format!(
                "{:>5}  {:>6}  {:>9}  {:>7}  {:>5}  {:>9}  {:>9}  {:>4}  {:>8}",
                s.id,
                t.stores,
                t.retrieves,
                t.deletes,
                t.foreground_gc_events,
                t.gc_copied_segments,
                s.sq.stats().full_stalls,
                s.device.len(),
                s.bandwidth.total_bytes(),
            ));
        }
        let w = self.merged_write_latency();
        let r = self.merged_read_latency();
        let pct = |h: &LatencyHistogram, p: f64| {
            if h.is_empty() {
                0
            } else {
                h.percentile(p).as_nanos()
            }
        };
        lines.push(format!(
            "write_ns p50={} p99={} p999={}",
            pct(&w, 50.0),
            pct(&w, 99.0),
            pct(&w, 99.9)
        ));
        lines.push(format!(
            "read_ns p50={} p99={} p999={}",
            pct(&r, 50.0),
            pct(&r, 99.0),
            pct(&r, 99.9)
        ));
        lines.push(format!(
            "agg_bytes={} rebalanced_keys={} rebalanced_bytes={}",
            self.aggregate_bw.total_bytes(),
            self.rebalanced_keys,
            self.rebalanced_bytes
        ));
        // Only rendered when the transport actually counted something,
        // so in-process reports stay byte-identical to the pre-fabric
        // layout.
        let ts = self.transport.stats();
        if ts != TransportStats::default() || self.hedged_spares > 0 {
            lines.push(format!(
                "transport req={} resp={} dropped={} partition_drops={} dup={} stalls={} \
                 bytes={} hedged_spares={}",
                ts.requests,
                ts.responses,
                ts.dropped,
                ts.partition_drops,
                ts.duplicated,
                ts.queue_stalls,
                ts.bytes,
                self.hedged_spares
            ));
        }
        // Likewise gated: rendered only once a deadline, hedge, or
        // dedupe actually fired, so pre-deadline reports keep their
        // exact byte layout.
        if self.leg_retries > 0
            || self.retry_rescued_ops > 0
            || self.hedged_write_spares > 0
            || self.dup_suppressed > 0
        {
            lines.push(format!(
                "deadlines retries={} rescued={} write_spares={} dup_suppressed={}",
                self.leg_retries,
                self.retry_rescued_ops,
                self.hedged_write_spares,
                self.dup_suppressed
            ));
        }
        ClusterReport { lines }
    }
}

impl Shard {
    fn keys_insert(&mut self, key: &[u8]) {
        self.keys.insert(key);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn payload(len: u32, tag: u64) -> Payload {
        Payload::synthetic(len, tag)
    }

    fn fill(cluster: &mut KvCluster, n: u64) -> SimTime {
        let mut t = SimTime::ZERO;
        for i in 0..n {
            t = cluster
                .store(t, format!("key{i:08}").as_bytes(), payload(512, i))
                .unwrap();
        }
        t
    }

    #[test]
    fn round_trips_across_shards() {
        let mut c = KvCluster::for_test(4);
        let t = fill(&mut c, 100);
        assert_eq!(c.len(), 100);
        for i in 0..100u64 {
            let l = c.retrieve(t, format!("key{i:08}").as_bytes()).unwrap();
            assert!(l.value.is_some(), "lost key{i:08}");
        }
        // Keys actually spread over all four shards.
        for s in c.shards() {
            assert!(s.key_count() > 0, "shard {} got nothing", s.id());
        }
    }

    #[test]
    fn delete_removes_from_owner() {
        let mut c = KvCluster::for_test(2);
        let t = fill(&mut c, 20);
        let (t, existed) = c.delete(t, b"key00000007").unwrap();
        assert!(existed);
        let l = c.retrieve(t, b"key00000007").unwrap();
        assert!(l.value.is_none());
        assert_eq!(c.len(), 19);
        let (_, again) = c.delete(t, b"key00000007").unwrap();
        assert!(!again);
    }

    #[test]
    fn one_shard_matches_bare_device_exactly() {
        // The degenerate-equivalence anchor: a 1-shard cluster behind the
        // pass-through SQ must produce the same completion times as the
        // same device driven directly.
        let mut bare = KvSsd::new(
            kvssd_flash::Geometry::small(),
            kvssd_flash::FlashTiming::pm983_like(),
            kvssd_core::KvConfig::small(),
        );
        let mut c = KvCluster::for_test(1);
        let mut tb = SimTime::ZERO;
        let mut tc = SimTime::ZERO;
        for i in 0..200u64 {
            let k = format!("key{i:08}");
            tb = bare.store(tb, k.as_bytes(), payload(768, i)).unwrap();
            tc = c.store(tc, k.as_bytes(), payload(768, i)).unwrap();
            assert_eq!(tb, tc, "diverged at store {i}");
        }
        let lb = bare.retrieve(tb, b"key00000042").unwrap();
        let lc = c.retrieve(tc, b"key00000042").unwrap();
        assert_eq!(lb.at, lc.at);
        assert_eq!(bare.flush(tb), c.flush(tc));
    }

    #[test]
    fn shards_overlap_in_virtual_time() {
        // Two ops on different shards issued at the same instant must
        // not serialize: total elapsed stays near one op's latency, not
        // two. Find two keys on different shards first.
        let mut c = KvCluster::for_test(2);
        let a = b"overlap-key-a".as_slice();
        let mut b_key = None;
        for i in 0..50u64 {
            let cand = format!("overlap-key-b{i}");
            if c.route(cand.as_bytes()) != c.route(a) {
                b_key = Some(cand);
                break;
            }
        }
        let b_key = b_key.expect("some key lands on the other shard");
        let ta = c.store(SimTime::ZERO, a, payload(4096, 1)).unwrap();
        let tb = c
            .store(SimTime::ZERO, b_key.as_bytes(), payload(4096, 2))
            .unwrap();
        let solo = ta.since(SimTime::ZERO);
        let both = ta.max(tb).since(SimTime::ZERO);
        assert!(
            both.as_nanos() < solo.as_nanos() * 3 / 2,
            "cross-shard ops serialized: solo {solo}, both {both}"
        );
    }

    #[test]
    fn flush_fans_in_across_shards() {
        let mut c = KvCluster::for_test(3);
        let t = fill(&mut c, 30);
        let done = c.flush(t).unwrap();
        assert!(done >= t);
        assert_eq!(c.quiesce_time(), done);
    }

    #[test]
    fn add_shard_migrates_only_its_share() {
        let mut c = KvCluster::for_test(3);
        let t = fill(&mut c, 300);
        let before = c.len();
        let (id, rep) = c
            .add_shard(
                t,
                KvSsd::new(
                    kvssd_flash::Geometry::small(),
                    kvssd_flash::FlashTiming::pm983_like(),
                    kvssd_core::KvConfig::small(),
                ),
            )
            .unwrap();
        assert_eq!(id, 3);
        assert_eq!(c.len(), before, "rebalance must not lose keys");
        assert!(rep.moved_keys > 0, "a new shard should receive keys");
        // Moved keys track the ring's exact moved fraction, loosely
        // (small population; ±1 percentage points of slack per key).
        let expect = rep.ring.moved_fraction * 300.0;
        assert!(
            (rep.moved_keys as f64) < expect * 2.0 + 20.0,
            "moved {} expected ~{expect}",
            rep.moved_keys
        );
        assert!(rep.completed >= rep.started);
        // Every key still readable after the move.
        let t2 = rep.completed;
        for i in 0..300u64 {
            let l = c.retrieve(t2, format!("key{i:08}").as_bytes()).unwrap();
            assert!(l.value.is_some(), "rebalance lost key{i:08}");
        }
    }

    #[test]
    fn remove_shard_drains_it_completely() {
        let mut c = KvCluster::for_test(3);
        let t = fill(&mut c, 200);
        let victim = c.shards()[1].id();
        let held = c.shards()[1].key_count() as u64;
        let rep = c.remove_shard(t, victim).unwrap();
        assert_eq!(c.shard_count(), 2);
        assert_eq!(rep.moved_keys, held);
        assert_eq!(c.len(), 200);
        for i in 0..200u64 {
            let l = c
                .retrieve(rep.completed, format!("key{i:08}").as_bytes())
                .unwrap();
            assert!(l.value.is_some(), "drain lost key{i:08}");
        }
    }

    #[test]
    fn report_is_deterministic() {
        let run = || {
            let mut c = KvCluster::for_test(4);
            let t = fill(&mut c, 150);
            let _ = c.flush(t);
            c.report().render()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn stats_and_space_aggregate() {
        let mut c = KvCluster::for_test(2);
        fill(&mut c, 50);
        let st = c.stats();
        assert_eq!(st.devices.stores, 50);
        let sp = c.space();
        assert_eq!(sp.kvp_count, 50);
        assert!(sp.user_bytes > 0);
        assert!(sp.capacity_bytes > 0);
    }

    #[test]
    #[should_panic(expected = "last shard")]
    fn cannot_remove_last_shard() {
        let mut c = KvCluster::for_test(1);
        let id = c.shards()[0].id();
        let _ = c.remove_shard(SimTime::ZERO, id);
    }
}
